//! Integration tests for Theorem 2: `(deg+1)`-list-coloring across list
//! regimes, universes, and token interleavings.

use sc_graph::{generators, Color, Graph};
use sc_stream::{StoredStream, StreamItem};
use streamcolor::{list_coloring, ListConfig};

fn check(g: &Graph, lists: &[Vec<Color>], universe: u64) -> streamcolor::ListReport {
    let stream = StoredStream::from_graph_with_lists(g, lists);
    let r = list_coloring(&stream, g.n(), g.max_degree(), universe, &ListConfig::default());
    assert!(r.coloring.is_proper_total(g), "improper");
    assert!(r.coloring.respects_lists(lists), "list violation");
    r
}

#[test]
fn grid_of_random_instances() {
    for n in [50usize, 150] {
        for delta in [4usize, 10] {
            for seed in 0..2u64 {
                let g = generators::gnp_with_max_degree(n, delta, 0.3, seed);
                let universe = (4 * delta) as u64;
                let lists = generators::random_deg_plus_one_lists(&g, universe, seed + 7);
                check(&g, &lists, universe);
            }
        }
    }
}

#[test]
fn quadratic_universe() {
    let n = 80usize;
    let g = generators::gnp_with_max_degree(n, 8, 0.3, 1);
    let universe = (n * n) as u64; // the theorem's |C| = O(n²)
    let lists = generators::random_deg_plus_one_lists(&g, universe, 3);
    check(&g, &lists, universe);
}

#[test]
fn oversized_lists_are_fine() {
    // Lists larger than deg+1 only make the problem easier.
    let g = generators::gnp_with_max_degree(60, 6, 0.4, 2);
    let lists: Vec<Vec<Color>> = (0..60u64)
        .map(|x| (0..20u64).map(|i| (x * 31 + i * 7) % 500).collect::<Vec<_>>())
        .map(|mut l| {
            l.sort_unstable();
            l.dedup();
            l
        })
        .collect();
    check(&g, &lists, 500);
}

#[test]
fn exactly_tight_lists_on_cliques() {
    // K_k with identical lists of size k: forced to use all of them.
    for k in [5usize, 9] {
        let g = generators::complete(k);
        let lists: Vec<Vec<Color>> = (0..k).map(|_| (10..10 + k as u64).collect()).collect();
        let r = check(&g, &lists, 10 + k as u64);
        assert_eq!(r.coloring.num_distinct_colors(), k);
    }
}

#[test]
fn heterogeneous_degrees_and_lists() {
    // Star: center has a big list, leaves tiny disjoint-ish lists.
    let n = 60usize;
    let g = generators::star(n);
    let mut lists: Vec<Vec<Color>> = Vec::new();
    lists.push((0..n as u64).collect()); // center, deg n−1
    for x in 1..n as u64 {
        lists.push(vec![x % 7, 100 + x % 5]); // leaves, deg 1
    }
    check(&g, &lists, 200);
}

#[test]
fn token_interleavings() {
    let g = generators::gnp_with_max_degree(40, 5, 0.4, 6);
    let lists = generators::random_deg_plus_one_lists(&g, 60, 8);
    let edges: Vec<_> = g.edges().collect();

    // Lists after edges; lists interleaved every other token; lists first.
    let mut orders: Vec<Vec<StreamItem>> = Vec::new();
    let mut after: Vec<StreamItem> = edges.iter().map(|&e| StreamItem::Edge(e)).collect();
    after.extend(lists.iter().enumerate().map(|(x, l)| StreamItem::ColorList(x as u32, l.clone())));
    orders.push(after);

    let mut interleaved = Vec::new();
    let mut ei = edges.iter();
    for (x, l) in lists.iter().enumerate() {
        interleaved.push(StreamItem::ColorList(x as u32, l.clone()));
        if let Some(&e) = ei.next() {
            interleaved.push(StreamItem::Edge(e));
        }
    }
    interleaved.extend(ei.map(|&e| StreamItem::Edge(e)));
    orders.push(interleaved);

    for items in orders {
        let stream = StoredStream::new(items);
        let r = list_coloring(&stream, 40, g.max_degree(), 60, &ListConfig::default());
        assert!(r.coloring.is_proper_total(&g));
        assert!(r.coloring.respects_lists(&lists));
    }
}

#[test]
fn matches_theorem1_when_lists_are_the_palette() {
    // With L_x = [∆+1] the guarantees coincide with Theorem 1's.
    let g = generators::gnp_with_max_degree(100, 7, 0.3, 4);
    let delta = g.max_degree();
    let palette: Vec<Color> = (0..=delta as u64).collect();
    let lists: Vec<Vec<Color>> = (0..100).map(|_| palette.clone()).collect();
    let r = check(&g, &lists, delta as u64 + 1);
    assert!(r.coloring.palette_span() <= delta as u64 + 1);
}

#[test]
fn passes_stay_polylogarithmic() {
    let n = 512usize;
    let g = generators::random_with_exact_max_degree(n, 16, 11);
    let lists = generators::random_deg_plus_one_lists(&g, 64, 12);
    let r = check(&g, &lists, 64);
    // Very generous polylog budget; the point is ≪ ∆ passes per epoch-free
    // methods and ≪ m.
    assert!(r.passes < 400, "{} passes is not polylogarithmic-ish", r.passes);
    assert!(!r.fallback_used);
}
