//! Contract tests: the algorithms really are streaming algorithms.
//!
//! Uses `TracingSource` to certify that every pass Algorithm 1 / the
//! list-colorer starts is consumed to the end (the model's definition of a
//! pass), cross-checks pass counters, and audits outputs through the
//! diagnostic layers (`audit`, `GraphStats`).

use sc_graph::{audit, audit_lists, generators, GraphStats};
use sc_stream::{StoredStream, StreamSource, TracingSource};
use streamcolor::{deterministic_coloring, list_coloring, DetConfig, ListConfig};

#[test]
fn det_algorithm_reads_whole_passes_only() {
    let g = generators::gnp_with_max_degree(120, 8, 0.3, 1);
    let stored = StoredStream::from_graph(&g);
    let traced = TracingSource::new(&stored);
    let r = deterministic_coloring(&traced, 120, 8, &DetConfig::default());
    assert!(r.coloring.is_proper_total(&g));
    let trace = traced.report();
    assert!(trace.all_passes_complete(), "a pass was abandoned: {:?}", trace.per_pass);
    assert_eq!(trace.passes() as u64, r.passes, "trace and counter disagree");
    // Total tokens read = passes × stream length.
    assert_eq!(trace.total_tokens(), trace.passes() * stored.len());
}

#[test]
fn list_algorithm_reads_whole_passes_only() {
    let g = generators::gnp_with_max_degree(60, 5, 0.4, 2);
    let lists = generators::random_deg_plus_one_lists(&g, 40, 3);
    let stored = StoredStream::from_graph_with_lists(&g, &lists);
    let traced = TracingSource::new(&stored);
    let r = list_coloring(&traced, 60, 5, 40, &ListConfig::default());
    assert!(r.coloring.is_proper_total(&g));
    let trace = traced.report();
    assert!(trace.all_passes_complete());
    assert_eq!(trace.passes() as u64, r.passes);
}

#[test]
fn audit_layer_agrees_with_checkers() {
    let g = generators::random_with_exact_max_degree(150, 12, 4);
    let stream = StoredStream::from_graph(&g);
    let r = deterministic_coloring(&stream, 150, 12, &DetConfig::default());
    let a = audit(&g, &r.coloring);
    assert!(a.is_proper_total());
    assert!(a.violations.is_empty());
    assert_eq!(a.distinct_colors, r.colors_used);
    assert!(a.largest_class >= 150 / 13, "pigeonhole on ∆+1 classes");
    assert!(a.verdict().starts_with("proper"));
}

#[test]
fn list_audit_layer_agrees() {
    let g = generators::gnp_with_max_degree(50, 6, 0.4, 5);
    let lists = generators::random_deg_plus_one_lists(&g, 48, 6);
    let stream = StoredStream::from_graph_with_lists(&g, &lists);
    let r = list_coloring(&stream, 50, 6, 48, &ListConfig::default());
    assert!(audit_lists(&r.coloring, &lists).is_empty());
    assert!(audit(&g, &r.coloring).is_proper_total());
}

#[test]
fn stats_describe_experiment_workloads() {
    let g = generators::random_with_exact_max_degree(500, 24, 9);
    let s = GraphStats::of(&g);
    assert_eq!(s.max_degree, 24);
    assert_eq!(s.n, 500);
    assert_eq!(s.m, g.m());
    // The generator targets ~∆/2 mean degree around its density cap.
    assert!(s.mean_degree > 2.0);
    assert!(s.degree_percentile(100.0) == 24);
}

#[test]
fn replaying_a_traced_stream_is_stable() {
    // The tracing wrapper must not perturb the algorithm's behavior.
    let g = generators::gnp_with_max_degree(80, 7, 0.35, 8);
    let stored = StoredStream::from_graph(&g);
    let plain = deterministic_coloring(&stored, 80, 7, &DetConfig::default());
    let traced_src = TracingSource::new(&stored);
    let traced = deterministic_coloring(&traced_src, 80, 7, &DetConfig::default());
    assert_eq!(plain.coloring, traced.coloring);
    assert_eq!(plain.passes, traced.passes);
    assert_eq!(plain.peak_space_bits, traced.peak_space_bits);
}
