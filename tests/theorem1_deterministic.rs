//! Integration tests for Theorem 1: the deterministic multi-pass
//! `(∆+1)`-coloring, validated across a grid of graph families, sizes,
//! degree bounds and arrival orders, with its complexity claims checked
//! quantitatively.

use sc_graph::{generators, Graph};
use sc_stream::StoredStream;
use streamcolor::{deterministic_coloring, DetConfig};

fn check(g: &Graph, cfg: &DetConfig) -> streamcolor::DetReport {
    let delta = g.max_degree();
    let stream = StoredStream::from_graph(g);
    let r = deterministic_coloring(&stream, g.n(), delta, cfg);
    assert!(r.coloring.is_proper_total(g), "improper (n={}, ∆={delta})", g.n());
    assert!(
        r.coloring.palette_span() <= delta as u64 + 1,
        "palette {} exceeds ∆+1 = {}",
        r.coloring.palette_span(),
        delta + 1
    );
    r
}

#[test]
fn grid_of_random_graphs() {
    for n in [64usize, 200, 500] {
        for delta in [4usize, 12, 31] {
            for seed in 0..2u64 {
                let g = generators::gnp_with_max_degree(n, delta, 0.3, seed);
                let r = check(&g, &DetConfig::default());
                assert!(!r.fallback_used, "n={n} ∆={delta} seed={seed}");
            }
        }
    }
}

#[test]
fn structured_extremes() {
    check(&generators::complete(33), &DetConfig::default());
    check(&generators::cycle(101), &DetConfig::default());
    check(&generators::star(300), &DetConfig::default());
    check(&generators::path(257), &DetConfig::default());
    check(&generators::complete_bipartite(31, 64), &DetConfig::default());
    check(&generators::clique_union(10, 9), &DetConfig::default());
    check(&generators::preferential_attachment(300, 3, 40, 5), &DetConfig::default());
}

#[test]
fn arrival_order_invariance_of_correctness() {
    let g = generators::gnp_with_max_degree(150, 10, 0.3, 3);
    for seed in 0..5u64 {
        let stream = StoredStream::from_edges(generators::shuffled_edges(&g, seed));
        let r = deterministic_coloring(&stream, 150, g.max_degree(), &DetConfig::default());
        assert!(r.coloring.is_proper_total(&g), "order seed {seed}");
    }
}

#[test]
fn pass_bound_log_delta_loglog_delta() {
    // Quantitative shape: passes / (log∆·loglog∆) bounded by a modest
    // constant across a ∆ sweep at fixed n.
    let n = 1024usize;
    for delta in [8usize, 16, 32, 64] {
        let g = generators::random_with_exact_max_degree(n, delta, delta as u64);
        let stream = StoredStream::from_graph(&g);
        let r = deterministic_coloring(&stream, n, delta, &DetConfig::default());
        assert!(r.coloring.is_proper_total(&g));
        let log_d = (delta as f64).log2();
        let bound = 16.0 * log_d * log_d.log2().max(1.0) + 8.0;
        assert!(
            (r.passes as f64) <= bound,
            "∆={delta}: {} passes > 16·log∆·loglog∆ + 8 = {bound:.0}",
            r.passes
        );
    }
}

#[test]
fn space_bound_n_log_squared() {
    for n in [256usize, 1024] {
        let g = generators::gnp_with_max_degree(n, 16, 0.2, 9);
        let stream = StoredStream::from_graph(&g);
        let r = deterministic_coloring(&stream, n, g.max_degree(), &DetConfig::default());
        let log_n = (n as f64).log2();
        let bound = 64.0 * n as f64 * log_n * log_n;
        assert!(
            (r.peak_space_bits as f64) <= bound,
            "n={n}: {} bits > 64·n·log²n",
            r.peak_space_bits
        );
    }
}

#[test]
fn epoch_progress_matches_lemma_3_8() {
    // Every epoch shrinks |U| to ≤ 2/3|U| when |F| ≤ |U| holds.
    let g = generators::gnp_with_max_degree(400, 16, 0.2, 4);
    let stream = StoredStream::from_graph(&g);
    let r = deterministic_coloring(&stream, 400, g.max_degree(), &DetConfig::default());
    for out in &r.epoch_outcomes {
        if !out.f_bound_violated {
            assert!(
                out.committed * 3 >= out.u_size,
                "epoch committed {} of {} (< 1/3)",
                out.committed,
                out.u_size
            );
        }
    }
}

#[test]
fn tiny_graphs_and_degenerate_cases() {
    // n = 1, no edges.
    let stream = StoredStream::new(vec![]);
    let r = deterministic_coloring(&stream, 1, 0, &DetConfig::default());
    assert!(r.coloring.is_total());

    // Single edge, two vertices.
    let g = Graph::from_edges(2, [sc_graph::Edge::new(0, 1)]);
    check(&g, &DetConfig::default());

    // Perfect matching (∆ = 1).
    let mut pm = Graph::empty(20);
    for i in 0..10u32 {
        pm.add_edge(sc_graph::Edge::new(2 * i, 2 * i + 1));
    }
    let r = check(&pm, &DetConfig::default());
    assert!(r.coloring.palette_span() <= 2);

    // Isolated vertices mixed with a clique.
    let mut g = generators::complete(6);
    for _ in 0..4 {
        g = Graph::from_edges(10, g.edges());
    }
    check(&g, &DetConfig::default());
}

#[test]
fn full_family_theory_mode_small() {
    // The paper-verbatim tournament, feasible only for tiny n.
    for n in [4usize, 6] {
        let g = generators::complete(n);
        let r = check(&g, &DetConfig::theory());
        assert_eq!(r.colors_used, n);
    }
}

#[test]
fn duplicate_edges_in_stream_are_tolerated() {
    // Streams may repeat an edge; the algorithm must not break.
    let g = generators::cycle(12);
    let mut edges: Vec<_> = g.edges().collect();
    let dup = edges.clone();
    edges.extend(dup);
    let stream = StoredStream::from_edges(edges);
    let r = deterministic_coloring(&stream, 12, 4, &DetConfig::default());
    assert!(r.coloring.is_proper_total(&g));
}
