//! Integration tests for Theorems 3–4 and Corollary 4.7: the robust
//! colorers under oblivious streams, mid-stream queries, β tradeoffs, and
//! color/space bound checks.

use sc_graph::{generators, Graph};
use sc_stream::{run_oblivious, StreamingColorer};
use streamcolor::{Cgs22Colorer, RandEfficientColorer, RobustColorer, RobustParams};

#[test]
fn alg2_grid_of_instances() {
    for n in [80usize, 250] {
        for delta in [6usize, 16] {
            for seed in 0..2u64 {
                let g = generators::gnp_with_max_degree(n, delta, 0.4, seed);
                let mut colorer = RobustColorer::new(n, delta, seed * 31 + 1);
                let c = run_oblivious(&mut colorer, generators::shuffled_edges(&g, seed));
                assert!(c.is_proper_total(&g), "alg2 n={n} ∆={delta} seed={seed}");
            }
        }
    }
}

#[test]
fn alg3_grid_of_instances() {
    for n in [80usize, 250] {
        for delta in [6usize, 16] {
            for seed in 0..2u64 {
                let g = generators::gnp_with_max_degree(n, delta, 0.4, seed);
                let mut colorer = RandEfficientColorer::new(n, delta, seed * 17 + 2);
                let c = run_oblivious(&mut colorer, generators::shuffled_edges(&g, seed));
                assert!(c.is_proper_total(&g), "alg3 n={n} ∆={delta} seed={seed}");
                assert_eq!(colorer.failures(), 0);
            }
        }
    }
}

#[test]
fn color_bounds_hold_with_constants() {
    let n = 500usize;
    let delta = 25usize;
    let g = generators::random_with_exact_max_degree(n, delta, 5);
    let edges = generators::shuffled_edges(&g, 5);

    let mut alg2 = RobustColorer::new(n, delta, 1);
    let c2 = run_oblivious(&mut alg2, edges.iter().copied());
    assert!(c2.is_proper_total(&g));
    assert!(
        (c2.num_distinct_colors() as f64) <= 4.0 * (delta as f64).powf(2.5),
        "alg2 used {} colors",
        c2.num_distinct_colors()
    );

    let mut alg3 = RandEfficientColorer::new(n, delta, 2);
    let c3 = run_oblivious(&mut alg3, edges.iter().copied());
    assert!(c3.is_proper_total(&g));
    // Palette is literally [∆+1] × [ℓ²] ⊆ [(∆+1)∆²].
    assert!(c3.palette_span() <= (delta as u64 + 1) * (delta as u64) * (delta as u64));

    let mut cgs = Cgs22Colorer::new(n, delta, 3);
    let cc = run_oblivious(&mut cgs, edges.iter().copied());
    assert!(cc.is_proper_total(&g));
}

#[test]
fn beta_sweep_tradeoff_shape() {
    // More space (larger β) should never cost dramatically more colors;
    // the trend across the sweep is downward.
    let n = 600usize;
    let delta = 36usize;
    let g = generators::random_with_exact_max_degree(n, delta, 8);
    let edges = generators::shuffled_edges(&g, 8);
    let mut colors = Vec::new();
    for &beta in &[0.0, 0.25, 0.5] {
        let params = RobustParams::with_beta(n, delta, beta);
        let mut colorer = RobustColorer::with_params(params, 9);
        let c = run_oblivious(&mut colorer, edges.iter().copied());
        assert!(c.is_proper_total(&g), "β = {beta}");
        colors.push(c.num_distinct_colors());
    }
    assert!(
        colors[2] <= colors[0],
        "β = 1/2 ({}) should use no more colors than β = 0 ({})",
        colors[2],
        colors[0]
    );
}

#[test]
fn space_is_near_linear_not_linear_in_m() {
    let n = 400usize;
    let delta = 32usize;
    let g = generators::random_with_exact_max_degree(n, delta, 3);
    let m = g.m();
    let mut alg2 = RobustColorer::new(n, delta, 4);
    run_oblivious(&mut alg2, generators::shuffled_edges(&g, 3));
    // Stored edges ≤ buffer (n) + Õ(n) sketch edges, well below m.
    assert!(alg2.stored_edges() < m, "{} stored vs m = {m}", alg2.stored_edges());
    assert!(alg2.stored_edges() <= 30 * n);

    let mut alg3 = RandEfficientColorer::new(n, delta, 5);
    run_oblivious(&mut alg3, generators::shuffled_edges(&g, 3));
    assert!(alg3.stored_edges() <= 40 * n, "{} stored", alg3.stored_edges());
}

#[test]
fn every_prefix_is_properly_colored() {
    // The robust contract: a proper coloring after *every* insertion.
    let n = 120usize;
    let delta = 9usize;
    let g = generators::gnp_with_max_degree(n, delta, 0.4, 6);
    let edges = generators::shuffled_edges(&g, 6);
    let mut alg2 = RobustColorer::new(n, delta, 7);
    let mut alg3 = RandEfficientColorer::new(n, delta, 8);
    let mut prefix = Graph::empty(n);
    for &e in &edges {
        alg2.process(e);
        alg3.process(e);
        prefix.add_edge(e);
        assert!(alg2.query().is_proper_total(&prefix));
        assert!(alg3.query().is_proper_total(&prefix));
    }
}

#[test]
fn structured_streams() {
    // Clique unions arriving clique-by-clique stress block recoloring;
    // bipartite bursts stress the level machinery.
    let delta = 7usize;
    let g1 = generators::clique_union(12, delta + 1);
    let mut c1 = RobustColorer::new(g1.n(), delta, 10);
    let out1 = run_oblivious(&mut c1, g1.edges());
    assert!(out1.is_proper_total(&g1));

    let g2 = generators::complete_bipartite(20, 20);
    let mut c2 = RandEfficientColorer::new(40, 20, 11);
    let out2 = run_oblivious(&mut c2, g2.edges());
    assert!(out2.is_proper_total(&g2));
}

#[test]
fn store_all_fallback_detection() {
    assert!(RobustParams::theorem3(100_000, 8).store_all_fallback());
    assert!(!RobustParams::theorem3(100, 64).store_all_fallback());
}
