//! Edge-case and failure-injection tests across the whole stack:
//! degenerate graph shapes, boundary parameters, buffer-boundary streams,
//! and input-contract violations (which must fail loudly, not silently).

use sc_graph::{generators, Coloring, Edge, Graph};
use sc_stream::{run_oblivious, StoredStream, StreamingColorer};
use streamcolor::robust::{auto_robust_colorer, StoreAllColorer};
use streamcolor::{
    batch_greedy_coloring, deterministic_coloring, list_coloring, Bg18Colorer, DetConfig,
    ListConfig, RandEfficientColorer, RobustColorer, RobustParams,
};

// ---------- degenerate shapes ----------

#[test]
fn one_vertex_universe() {
    let stream = StoredStream::new(vec![]);
    let r = deterministic_coloring(&stream, 1, 0, &DetConfig::default());
    assert!(r.coloring.is_proper_total(&Graph::empty(1)));

    let mut alg2 = RobustColorer::new(1, 1, 0);
    assert!(alg2.query().is_total());
    let mut alg3 = RandEfficientColorer::new(1, 1, 0);
    assert!(alg3.query().is_total());
}

#[test]
fn two_vertices_one_edge_everywhere() {
    let g = Graph::from_edges(2, [Edge::new(0, 1)]);
    let stream = StoredStream::from_graph(&g);

    let det = deterministic_coloring(&stream, 2, 1, &DetConfig::default());
    assert!(det.coloring.is_proper_total(&g));

    let bg = batch_greedy_coloring(&stream, 2, 1);
    assert!(bg.coloring.is_proper_total(&g));

    for seed in 0..3 {
        let mut a2 = RobustColorer::new(2, 1, seed);
        assert!(run_oblivious(&mut a2, g.edges()).is_proper_total(&g));
        let mut a3 = RandEfficientColorer::new(2, 1, seed);
        assert!(run_oblivious(&mut a3, g.edges()).is_proper_total(&g));
        let mut bg18 = Bg18Colorer::new(2, 1, seed);
        assert!(run_oblivious(&mut bg18, g.edges()).is_proper_total(&g));
    }
}

#[test]
fn delta_equal_n_minus_one_clique() {
    // The extreme ∆: every algorithm must still deliver.
    let n = 12usize;
    let g = generators::complete(n);
    let stream = StoredStream::from_graph(&g);
    let det = deterministic_coloring(&stream, n, n - 1, &DetConfig::default());
    assert!(det.coloring.is_proper_total(&g));
    assert_eq!(det.colors_used, n);

    let mut a2 = RobustColorer::new(n, n - 1, 1);
    assert!(run_oblivious(&mut a2, g.edges()).is_proper_total(&g));
    let mut a3 = RandEfficientColorer::new(n, n - 1, 1);
    assert!(run_oblivious(&mut a3, g.edges()).is_proper_total(&g));
}

#[test]
fn declared_delta_larger_than_actual() {
    // Algorithms may be run with a loose ∆ bound; correctness must hold
    // (palettes are then measured against the declared bound).
    let g = generators::cycle(20); // actual ∆ = 2
    let stream = StoredStream::from_graph(&g);
    let det = deterministic_coloring(&stream, 20, 10, &DetConfig::default());
    assert!(det.coloring.is_proper_total(&g));
    assert!(det.coloring.palette_span() <= 11);

    let mut a2 = RobustColorer::new(20, 10, 2);
    assert!(run_oblivious(&mut a2, g.edges()).is_proper_total(&g));
}

// ---------- buffer-boundary streams ----------

#[test]
fn stream_length_exactly_at_buffer_boundaries() {
    // Robust algorithms rotate buffers at exactly `capacity` edges; feed
    // streams whose length is 1 below, exactly at, and 1 above multiples
    // of the capacity (= n for alg2/alg3 at β = 0).
    let n = 24usize;
    let delta = 10usize;
    let g = generators::gnp_with_max_degree(n, delta, 0.9, 3);
    let edges: Vec<Edge> = generators::shuffled_edges(&g, 3);
    assert!(edges.len() > 2 * n, "need multiple buffer rotations");
    for cut in [n - 1, n, n + 1, 2 * n - 1, 2 * n] {
        let prefix: Vec<Edge> = edges.iter().copied().take(cut).collect();
        let prefix_graph = Graph::from_edges(n, prefix.iter().copied());
        let mut a2 = RobustColorer::new(n, delta, 5);
        let c2 = run_oblivious(&mut a2, prefix.iter().copied());
        assert!(c2.is_proper_total(&prefix_graph), "alg2 cut = {cut}");
        let mut a3 = RandEfficientColorer::new(n, delta, 5);
        let c3 = run_oblivious(&mut a3, prefix.iter().copied());
        assert!(c3.is_proper_total(&prefix_graph), "alg3 cut = {cut}");
    }
}

#[test]
fn queries_straddling_a_rotation() {
    let n = 16usize;
    let delta = 8usize;
    let g = generators::gnp_with_max_degree(n, delta, 0.9, 1);
    let edges: Vec<Edge> = generators::shuffled_edges(&g, 1);
    let mut a2 = RobustColorer::new(n, delta, 9);
    let mut prefix = Graph::empty(n);
    for (i, &e) in edges.iter().enumerate() {
        a2.process(e);
        prefix.add_edge(e);
        // Query densely around the first rotation point.
        if (n - 3..n + 3).contains(&i) || i % 5 == 0 {
            assert!(a2.query().is_proper_total(&prefix), "query after edge {i}");
        }
    }
}

// ---------- parameter boundaries ----------

#[test]
fn robust_params_level_boundaries_are_exact() {
    // √∆ = 8; degrees exactly at multiples of the threshold.
    let p = RobustParams::theorem3(100, 64);
    for (d, expected) in [(1u64, 1usize), (8, 1), (9, 2), (16, 2), (17, 3), (64, 8)] {
        assert_eq!(p.level_of(d), expected, "degree {d}");
    }
}

#[test]
fn store_all_colorer_handles_every_shape() {
    for g in [
        generators::complete(8),
        generators::star(15),
        Graph::empty(5),
        generators::clique_union(3, 4),
    ] {
        let mut c = StoreAllColorer::new(g.n());
        let out = run_oblivious(&mut c, g.edges());
        assert!(out.is_proper_total(&g));
        assert!(out.palette_span() <= g.max_degree() as u64 + 1);
    }
}

#[test]
fn auto_dispatch_boundary() {
    // log²(1024) = 100: ∆ = 99 → store-all; ∆ = 101 → alg2.
    assert_eq!(auto_robust_colorer(1024, 99, 0).name(), "auto(store-all)");
    assert_eq!(auto_robust_colorer(1024, 101, 0).name(), "auto(alg2)");
}

// ---------- determinism under replays ----------

#[test]
fn repeated_runs_are_bit_identical() {
    let g = generators::gnp_with_max_degree(64, 7, 0.4, 6);
    let stream = StoredStream::from_graph(&g);
    let runs: Vec<Coloring> = (0..3)
        .map(|_| deterministic_coloring(&stream, 64, 7, &DetConfig::default()).coloring)
        .collect();
    assert_eq!(runs[0], runs[1]);
    assert_eq!(runs[1], runs[2]);

    let lists = generators::random_deg_plus_one_lists(&g, 50, 2);
    let lstream = StoredStream::from_graph_with_lists(&g, &lists);
    let l1 = list_coloring(&lstream, 64, 7, 50, &ListConfig::default());
    let l2 = list_coloring(&lstream, 64, 7, 50, &ListConfig::default());
    assert_eq!(l1.coloring, l2.coloring);
}

// ---------- contract violations fail loudly ----------

#[test]
#[should_panic(expected = "out of range")]
fn robust_rejects_oversized_vertex_ids() {
    let mut c = RobustColorer::new(4, 2, 0);
    c.process(Edge::new(1, 7));
}

#[test]
#[should_panic(expected = "epoch overflow")]
fn robust_rejects_budget_violations() {
    // ∆ = 1 promises ≤ n/2 edges; a clique stream breaks the promise and
    // must be rejected rather than silently miscolored.
    let g = generators::complete(20);
    let mut c = RobustColorer::new(20, 1, 0);
    for e in g.edges() {
        c.process(e);
    }
}

#[test]
#[should_panic(expected = "self-loop")]
fn edges_reject_self_loops() {
    let _ = Edge::new(3, 3);
}

// ---------- new-module boundary behaviour ----------

mod new_module_edges {
    use super::*;
    use sc_graph::{
        bipartition, brooks_bound, brooks_coloring, chromatic_number, connected_components, io,
        k_colorable,
    };
    use streamcolor::verify::{stream_from_coloring, ExactConflictCounter};
    use streamcolor::{Bcg20Colorer, Hknt22Colorer};

    #[test]
    fn offline_theory_on_empty_and_singleton_graphs() {
        let empty = Graph::empty(0);
        assert_eq!(chromatic_number(&empty).0, 0);
        assert_eq!(brooks_bound(&empty), 0);
        assert!(brooks_coloring(&empty).is_total());
        assert_eq!(connected_components(&empty).len(), 0);
        assert!(bipartition(&empty).is_some());

        let single = Graph::empty(1);
        assert_eq!(chromatic_number(&single).0, 1);
        assert_eq!(brooks_bound(&single), 1);
        let c = brooks_coloring(&single);
        assert!(c.is_proper_total(&single));
    }

    #[test]
    fn k_colorable_zero_and_overflow_palettes() {
        let g = generators::complete(3);
        assert!(k_colorable(&g, 0).is_none());
        assert!(k_colorable(&Graph::empty(0), 0).is_some());
        assert!(k_colorable(&g, 64).is_some(), "k = 64 must be supported");
        let r = std::panic::catch_unwind(|| k_colorable(&g, 65));
        assert!(r.is_err(), "k > 64 must be rejected loudly");
    }

    #[test]
    fn verify_on_empty_graph_and_isolated_vertices() {
        let g = Graph::empty(5);
        let mut c = Coloring::empty(5);
        for v in 0..5 {
            c.set(v, 0); // same color everywhere is fine with no edges
        }
        let order: Vec<u32> = (0..5).collect();
        let stream = stream_from_coloring(&g, &c, &order);
        let mut counter = ExactConflictCounter::new(5, 1);
        for a in &stream {
            counter.process(a);
        }
        assert!(counter.is_proper());
    }

    #[test]
    fn bcg20_on_edgeless_and_single_edge_graphs() {
        let g = Graph::empty(10);
        let mut c = Bcg20Colorer::new(10, 0, 0.5, 4, 1);
        let out = run_oblivious(&mut c, g.edges());
        assert!(out.is_proper_total(&g));
        assert_eq!(c.failures(), 0);

        let mut g2 = Graph::empty(2);
        g2.add_edge(Edge::new(0, 1));
        let mut c2 = Bcg20Colorer::for_graph(&g2, 0.0, 2);
        let out2 = run_oblivious(&mut c2, g2.edges());
        assert!(out2.is_proper_total(&g2));
    }

    #[test]
    fn hknt22_with_singleton_lists_on_isolated_vertices() {
        // deg 0 ⇒ lists of size 1 are legal and must succeed.
        let g = Graph::empty(4);
        let mut c = Hknt22Colorer::new(4, 3, 5);
        for x in 0..4u32 {
            c.process_item(&sc_stream::StreamItem::ColorList(x, vec![x as u64]));
        }
        let out = c.query();
        assert_eq!(c.failures(), 0);
        assert!(out.is_total());
        assert!(out.is_proper_total(&g));
    }

    #[test]
    fn io_rejects_truncated_and_binary_garbage() {
        assert!(io::read_edge_list("n".as_bytes()).is_err());
        assert!(io::read_dimacs("p edge".as_bytes()).is_err());
        assert!(io::read_auto("\u{0}\u{1}\u{2}").is_err());
        // Whitespace-only input has no header.
        assert!(io::read_auto("   \n\t\n").is_err());
    }

    #[test]
    fn stream_orders_on_single_edge_graphs() {
        let mut g = Graph::empty(2);
        g.add_edge(Edge::new(0, 1));
        for order in sc_stream::StreamOrder::sweep(3) {
            assert_eq!(order.arrange(&g), vec![Edge::new(0, 1)], "{}", order.label());
        }
    }

    #[test]
    fn brooks_on_two_vertex_graph_uses_two_colors() {
        let mut g = Graph::empty(2);
        g.add_edge(Edge::new(0, 1));
        // K2 is a clique: Brooks bound is 2, not ∆ = 1.
        assert_eq!(brooks_bound(&g), 2);
        let c = brooks_coloring(&g);
        assert!(c.is_proper_total(&g));
    }
}
