//! Property-based tests (proptest) over the core invariants:
//! every algorithm, on arbitrary ∆-bounded random graphs and arrival
//! orders, produces a proper coloring within its palette bound; the
//! supporting structures (slack tables, subcubes, Turán sets) obey their
//! defining laws on arbitrary inputs.

use proptest::prelude::*;
use sc_graph::{generators, turan_independent_set, Coloring, Edge, Graph};
use sc_stream::{run_oblivious, StoredStream};
use streamcolor::det::Subcube;
use streamcolor::{
    deterministic_coloring, list_coloring, DetConfig, ListConfig, RandEfficientColorer,
    RobustColorer,
};

/// Strategy: a ∆-bounded random graph described by (n, ∆, density-seed).
fn graph_params() -> impl Strategy<Value = (usize, usize, u64)> {
    (8usize..80, 2usize..10, any::<u64>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn det_coloring_always_proper_and_tight((n, delta, seed) in graph_params()) {
        let g = generators::gnp_with_max_degree(n, delta, 0.4, seed);
        let stream = StoredStream::from_edges(generators::shuffled_edges(&g, seed ^ 1));
        let r = deterministic_coloring(&stream, n, delta, &DetConfig::default());
        prop_assert!(r.coloring.is_proper_total(&g));
        prop_assert!(r.coloring.palette_span() <= delta as u64 + 1);
    }

    #[test]
    fn robust_alg2_always_proper((n, delta, seed) in graph_params()) {
        let g = generators::gnp_with_max_degree(n, delta, 0.4, seed);
        let mut colorer = RobustColorer::new(n, delta, seed ^ 2);
        let c = run_oblivious(&mut colorer, generators::shuffled_edges(&g, seed ^ 3));
        prop_assert!(c.is_proper_total(&g));
    }

    #[test]
    fn robust_alg3_always_proper((n, delta, seed) in graph_params()) {
        let g = generators::gnp_with_max_degree(n, delta, 0.4, seed);
        let mut colorer = RandEfficientColorer::new(n, delta, seed ^ 4);
        let c = run_oblivious(&mut colorer, generators::shuffled_edges(&g, seed ^ 5));
        prop_assert!(c.is_proper_total(&g));
        prop_assert!(c.palette_span() <= (delta as u64 + 1) * (delta as u64).pow(2).max(1));
    }

    #[test]
    fn list_coloring_always_proper_and_list_respecting(
        (n, delta, seed) in (8usize..50, 2usize..7, any::<u64>())
    ) {
        let g = generators::gnp_with_max_degree(n, delta, 0.4, seed);
        let universe = 6 * delta as u64;
        let lists = generators::random_deg_plus_one_lists(&g, universe, seed ^ 6);
        let stream = StoredStream::from_graph_with_lists(&g, &lists);
        let r = list_coloring(&stream, n, delta, universe, &ListConfig::default());
        prop_assert!(r.coloring.is_proper_total(&g));
        prop_assert!(r.coloring.respects_lists(&lists));
    }

    #[test]
    fn turan_always_meets_bound((n, delta, seed) in graph_params()) {
        let g = generators::gnp_with_max_degree(n, delta, 0.5, seed);
        let all: Vec<u32> = (0..n as u32).collect();
        let is = turan_independent_set(&g, &all);
        // Independence.
        for (i, &u) in is.iter().enumerate() {
            for &v in &is[i + 1..] {
                prop_assert!(!g.has_edge(u, v));
            }
        }
        // Caro–Wei size bound.
        let bound = n * n / (2 * g.m() + n);
        prop_assert!(is.len() >= bound);
    }

    #[test]
    fn subcube_laws(width in 1u32..16, pattern_bits in 1u32..4, seed in any::<u64>()) {
        let bw = pattern_bits.min(width);
        let full = Subcube::full(width);
        let pattern = seed % (1u64 << bw);
        let child = full.child(bw, pattern);
        // Child size halves per fixed bit.
        prop_assert_eq!(child.len(), 1u64 << (width - bw));
        // Membership consistency on a sample of colors.
        for i in 0..64u64 {
            let c = (seed ^ (i.wrapping_mul(0x9E3779B97F4A7C15))) % (1u64 << width);
            if child.contains(c) {
                prop_assert!(full.contains(c));
                prop_assert_eq!(full.block_of(c, bw), pattern);
            }
        }
        // count_at_most is monotone and bounded.
        let mut prev = 0;
        for limit in (0..(1u64 << width)).step_by(7) {
            let cnt = child.count_at_most(limit);
            prop_assert!(cnt >= prev);
            prop_assert!(cnt <= child.len());
            prev = cnt;
        }
    }

    #[test]
    fn coloring_extend_disjoint_is_union(n in 2usize..40, seed in any::<u64>()) {
        let mut a = Coloring::empty(n);
        let mut b = Coloring::empty(n);
        for x in 0..n {
            match (seed >> (x % 60)) & 3 {
                0 => a.set(x as u32, x as u64),
                1 => b.set(x as u32, 100 + x as u64),
                _ => {}
            }
        }
        let before_a = a.assignments().count();
        let before_b = b.assignments().count();
        a.extend_disjoint(&b);
        prop_assert_eq!(a.assignments().count(), before_a + before_b);
    }

    #[test]
    fn graph_from_edges_is_simple(edges in prop::collection::vec((0u32..30, 0u32..30), 0..200)) {
        let valid: Vec<Edge> = edges
            .into_iter()
            .filter(|(a, b)| a != b)
            .map(|(a, b)| Edge::new(a, b))
            .collect();
        let g = Graph::from_edges(30, valid.iter().copied());
        // m equals the number of distinct normalized edges.
        let distinct: std::collections::HashSet<_> = valid.iter().collect();
        prop_assert_eq!(g.m(), distinct.len());
        // Degree sums to 2m.
        let degsum: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degsum, 2 * g.m());
    }
}

// ---- new-module properties: verification, baselines, analysis ----

use streamcolor::verify::{stream_from_coloring, ExactConflictCounter};
use streamcolor::{Bcg20Colorer, Bg18Colorer};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The exact vertex-arrival conflict counter agrees with brute force
    /// for arbitrary (possibly improper) announced colorings and orders.
    #[test]
    fn conflict_counter_matches_brute_force(
        (n, delta, seed) in graph_params(),
        palette in 2u64..6,
    ) {
        let g = generators::gnp_with_max_degree(n, delta, 0.4, seed);
        // Announce an arbitrary (improper) coloring.
        let mut c = Coloring::empty(n);
        for v in 0..n as u32 {
            c.set(v, (v as u64 * 2654435761 + seed) % palette);
        }
        let truth = g.edges().filter(|e| c.get(e.u()) == c.get(e.v())).count() as u64;
        let order: Vec<u32> = (0..n as u32).rev().collect();
        let stream = stream_from_coloring(&g, &c, &order);
        let mut counter = ExactConflictCounter::new(n, palette);
        for a in &stream {
            counter.process(a);
        }
        prop_assert_eq!(counter.conflicts(), truth);
        prop_assert_eq!(counter.is_proper(), truth == 0);
    }

    /// BG18 and BCG20 are proper on arbitrary ∆-bounded random streams.
    #[test]
    fn new_baselines_always_proper((n, delta, seed) in graph_params()) {
        let g = generators::gnp_with_max_degree(n, delta, 0.4, seed);
        let edges = generators::shuffled_edges(&g, seed ^ 5);

        let mut bg = Bg18Colorer::new(n, delta as u64, seed ^ 6);
        let c = run_oblivious(&mut bg, edges.iter().copied());
        prop_assert!(c.is_proper_total(&g));

        let mut bcg = Bcg20Colorer::for_graph(&g, 1.0, seed ^ 7);
        let c = run_oblivious(&mut bcg, edges.iter().copied());
        prop_assert!(c.is_proper_total(&g));
        prop_assert_eq!(bcg.failures(), 0);
    }

    /// Algorithm 3's candidate census: caps respected and the survival
    /// guarantee of Lemma 4.8 holds on arbitrary oblivious streams.
    #[test]
    fn alg3_census_invariants((n, delta, seed) in graph_params()) {
        let g = generators::gnp_with_max_degree(n, delta, 0.4, seed);
        let mut colorer = RandEfficientColorer::new(n, delta, seed ^ 9);
        run_oblivious(&mut colorer, generators::shuffled_edges(&g, seed ^ 10));
        let census = streamcolor::robust::candidate_census(&colorer);
        prop_assert!(census.valid >= 1, "all candidates wiped");
        for &s in &census.sizes {
            prop_assert!(s <= census.cap);
        }
    }
}
