//! Contract tests for every baseline colorer: proper colorings across
//! graph families, arrival orders, and seeds; palette ordering between
//! parameterizations; and honest failure reporting.

use sc_graph::{degeneracy_ordering, generators, Graph};
use sc_stream::{run_oblivious, StreamOrder, StreamingColorer};
use streamcolor::{
    Bcg20Colorer, Bg18Colorer, Cgs22Colorer, Hknt22Colorer, PaletteSparsification,
    RandEfficientColorer, RobustColorer,
};

fn families(seed: u64) -> Vec<(&'static str, Graph)> {
    vec![
        ("gnp", generators::gnp_with_max_degree(150, 12, 0.3, seed)),
        ("exact", generators::random_with_exact_max_degree(150, 12, seed)),
        ("pa", generators::preferential_attachment(150, 2, 24, seed)),
        ("cliques", generators::clique_union(10, 8)),
        ("bipartite", generators::random_bipartite(70, 80, 0.2, 12, seed)),
        ("star", generators::star(120)),
    ]
}

/// Builds each one-pass colorer for a given (n, ∆, seed).
fn one_pass_colorers(g: &Graph, seed: u64) -> Vec<Box<dyn StreamingColorer>> {
    let n = g.n();
    let delta = g.max_degree().max(1);
    vec![
        Box::new(RobustColorer::new(n, delta, seed)),
        Box::new(RandEfficientColorer::new(n, delta, seed)),
        Box::new(Cgs22Colorer::new(n, delta, seed)),
        Box::new(Bg18Colorer::new(n, delta as u64, seed)),
        Box::new(Bcg20Colorer::for_graph(g, 0.5, seed)),
        Box::new(PaletteSparsification::with_theory_lists(n, delta, seed)),
    ]
}

/// Every one-pass colorer is proper on every family (oblivious streams).
#[test]
fn every_colorer_proper_on_every_family() {
    for (name, g) in families(3) {
        for mut colorer in one_pass_colorers(&g, 11) {
            let c = run_oblivious(colorer.as_mut(), generators::shuffled_edges(&g, 5));
            assert!(c.is_proper_total(&g), "{} improper on {name}", colorer.name());
        }
    }
}

/// Arrival order never affects properness (it may shift palettes).
#[test]
fn order_insensitive_properness() {
    let g = generators::random_with_exact_max_degree(120, 10, 7);
    for order in StreamOrder::sweep(13) {
        for mut colorer in one_pass_colorers(&g, 19) {
            let c = run_oblivious(colorer.as_mut(), order.arrange(&g));
            assert!(c.is_proper_total(&g), "{} improper under {}", colorer.name(), order.label());
        }
    }
}

/// Space-accounting sanity: every colorer reports nonzero peak space that
/// is far below storing the full stream for dense-enough graphs.
#[test]
fn space_reports_are_sane() {
    let g = generators::random_with_exact_max_degree(400, 24, 1);
    let full_graph_bits = g.m() as u64 * 64;
    for mut colorer in one_pass_colorers(&g, 5) {
        run_oblivious(colorer.as_mut(), generators::shuffled_edges(&g, 2));
        let bits = colorer.peak_space_bits();
        assert!(bits > 0, "{} reported zero space", colorer.name());
        assert!(
            bits < 4 * full_graph_bits,
            "{} reported {bits} bits — worse than storing everything",
            colorer.name()
        );
    }
}

/// Palette ordering on sparse skewed graphs: κ-based ≤ Õ(∆)-based ≤
/// poly(∆)-robust (the motivating hierarchy).
#[test]
fn palette_hierarchy_on_sparse_graphs() {
    let g = generators::preferential_attachment(800, 2, 60, 4);
    let delta = g.max_degree();
    let all: Vec<u32> = (0..g.n() as u32).collect();
    let kappa = degeneracy_ordering(&g, &all).degeneracy;
    assert!(kappa < delta / 4, "workload must be skewed (κ = {kappa}, ∆ = {delta})");
    let edges = generators::shuffled_edges(&g, 8);

    let mut bcg = Bcg20Colorer::for_graph(&g, 0.5, 2);
    let c_k = run_oblivious(&mut bcg, edges.iter().copied());
    let mut bg = Bg18Colorer::new(g.n(), delta as u64, 3);
    let c_d = run_oblivious(&mut bg, edges.iter().copied());
    let mut a2 = RobustColorer::new(g.n(), delta, 4);
    let c_r = run_oblivious(&mut a2, edges.iter().copied());
    for (c, gname) in [(&c_k, "bcg20"), (&c_d, "bg18"), (&c_r, "alg2")] {
        assert!(c.is_proper_total(&g), "{gname}");
    }
    assert!(
        c_k.num_distinct_colors() < c_d.num_distinct_colors(),
        "κ-palette ({}) should beat Õ(∆)-palette ({})",
        c_k.num_distinct_colors(),
        c_d.num_distinct_colors()
    );
    assert!(
        c_d.num_distinct_colors() < c_r.num_distinct_colors(),
        "Õ(∆)-palette ({}) should beat the robust poly(∆)-palette ({})",
        c_d.num_distinct_colors(),
        c_r.num_distinct_colors()
    );
}

/// HKNT22 list sparsification: proper and list-respecting on both list
/// orders, across seeds.
#[test]
fn hknt22_contract() {
    use sc_stream::{StoredStream, StreamItem, StreamSource};
    for seed in 0..3u64 {
        let g = generators::gnp_with_max_degree(100, 9, 0.3, seed);
        let lists = generators::random_deg_plus_one_lists(&g, 300, seed + 40);
        // Lists before edges and lists after edges.
        let mut first: Vec<StreamItem> = lists
            .iter()
            .enumerate()
            .map(|(x, l)| StreamItem::ColorList(x as u32, l.clone()))
            .collect();
        let edge_items: Vec<StreamItem> = g.edges().map(StreamItem::Edge).collect();
        let mut after = edge_items.clone();
        after.extend(first.clone());
        first.extend(edge_items);

        for (label, items) in [("lists-first", first), ("lists-last", after)] {
            let mut c = Hknt22Colorer::with_theory_lists(100, seed + 7);
            for item in StoredStream::new(items.clone()).pass() {
                c.process_item(&item);
            }
            let out = c.query();
            assert!(out.is_proper_total(&g), "{label} seed {seed}");
            assert!(out.respects_lists(&lists), "{label} seed {seed}");
            assert_eq!(c.failures(), 0, "{label} seed {seed}");
        }
    }
}

/// Failure honesty: deliberately under-provisioned baselines report
/// failures and produce detectably improper colorings — never silent
/// corruption.
#[test]
fn failures_are_loud_not_silent() {
    let g = generators::complete(24);
    let edges: Vec<_> = g.edges().collect();

    let mut ps = PaletteSparsification::new(24, 23, 1, 1);
    let c = run_oblivious(&mut ps, edges.iter().copied());
    assert!(ps.failures() > 0);
    assert!(c.monochromatic_edge(&g).is_some(), "break must be visible in the output");

    let mut bcg = Bcg20Colorer::new(24, 2, 0.0, 1, 2);
    let c = run_oblivious(&mut bcg, edges.iter().copied());
    assert!(bcg.failures() > 0);
    assert!(!c.is_proper_total(&g));
}

/// Determinism-by-seed: same seed ⇒ identical coloring; different seed ⇒
/// (almost surely) different internal choices for the randomized colorers.
#[test]
fn seed_reproducibility() {
    let g = generators::random_with_exact_max_degree(90, 8, 2);
    let edges = generators::shuffled_edges(&g, 3);
    for make in [
        |s: u64| -> Box<dyn StreamingColorer> { Box::new(RobustColorer::new(90, 8, s)) },
        |s: u64| -> Box<dyn StreamingColorer> { Box::new(RandEfficientColorer::new(90, 8, s)) },
        |s: u64| -> Box<dyn StreamingColorer> { Box::new(Cgs22Colorer::new(90, 8, s)) },
        |s: u64| -> Box<dyn StreamingColorer> { Box::new(Bg18Colorer::new(90, 8, s)) },
    ] {
        let mut a = make(42);
        let mut b = make(42);
        let ca = run_oblivious(a.as_mut(), edges.iter().copied());
        let cb = run_oblivious(b.as_mut(), edges.iter().copied());
        assert_eq!(ca, cb, "{} not seed-deterministic", a.name());
    }
}
