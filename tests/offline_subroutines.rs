//! Cross-module integration tests for the offline graph machinery the
//! streaming algorithms lean on: Brooks coloring, exact chromatic
//! numbers, connectivity, I/O round trips, and their interaction with the
//! streaming layer's arrival orders.

use sc_graph::{
    bipartition, brooks_bound, brooks_coloring, chromatic_number, connected_components,
    degeneracy_ordering, generators, greedy_clique, io, Graph,
};
use sc_stream::{StoredStream, StreamOrder};
use streamcolor::{deterministic_coloring, DetConfig};

/// χ(G) sandwich: clique ≤ χ ≤ Brooks bound ≤ ∆+1, with every witness
/// proper, across families.
#[test]
fn chromatic_sandwich_across_families() {
    let graphs: Vec<(&str, Graph)> = vec![
        ("petersen", generators::petersen()),
        ("grötzsch", generators::mycielski(&generators::cycle(5))),
        ("gnp", generators::gnp_with_max_degree(40, 7, 0.3, 1)),
        ("bipartite", generators::random_bipartite(15, 15, 0.4, 8, 2)),
        ("multipartite", generators::complete_multipartite(3, 4)),
        ("pa", generators::preferential_attachment(35, 2, 10, 3)),
    ];
    for (name, g) in &graphs {
        let (chi, witness) = chromatic_number(g);
        assert!(witness.is_proper_total(g), "{name}: χ witness improper");
        assert_eq!(witness.num_distinct_colors(), chi, "{name}");
        let clique = greedy_clique(g).len();
        assert!(clique <= chi, "{name}: clique {clique} > χ {chi}");
        if g.m() > 0 {
            let bb = brooks_bound(g);
            assert!(chi <= bb, "{name}: χ {chi} > Brooks {bb}");
            assert!(bb <= g.max_degree() + 1, "{name}");
            let bc = brooks_coloring(g);
            assert!(bc.is_proper_total(g), "{name}: Brooks coloring improper");
            assert!(bc.palette_span() as usize <= bb, "{name}");
        }
    }
}

/// The known chromatic numbers of the new structured generators.
#[test]
fn structured_family_chromatic_numbers() {
    assert_eq!(chromatic_number(&generators::petersen()).0, 3);
    assert_eq!(chromatic_number(&generators::complete_multipartite(4, 3)).0, 4);
    assert_eq!(chromatic_number(&generators::blowup(&generators::cycle(5), 3)).0, 3);
    // Iterated Mycielski: χ grows by one per step, triangle-free from C5.
    let mut g = generators::cycle(5);
    for expect in [4usize, 5] {
        g = generators::mycielski(&g);
        assert_eq!(chromatic_number(&g).0, expect);
    }
}

/// I/O round trips compose with the coloring pipeline: write → read →
/// color gives the same palette bound as coloring the original.
#[test]
fn io_round_trip_preserves_coloring_behaviour() {
    let g = generators::random_with_exact_max_degree(120, 10, 5);
    let mut buf = Vec::new();
    io::write_dimacs(&g, &mut buf).unwrap();
    let g2 = io::read_dimacs(buf.as_slice()).unwrap();
    assert_eq!(g.n(), g2.n());
    assert_eq!(g.m(), g2.m());
    assert_eq!(g.max_degree(), g2.max_degree());

    let stream = StoredStream::from_graph(&g2);
    let report = deterministic_coloring(&stream, g2.n(), g2.max_degree(), &DetConfig::default());
    assert!(
        report.coloring.is_proper_total(&g),
        "coloring of the reread graph must fit the original"
    );
    assert!(report.coloring.palette_span() <= 11);
}

/// Components and bipartition agree with generator structure, and survive
/// the stream order policies (orders are permutations, so rebuilt graphs
/// are identical as edge sets).
#[test]
fn components_survive_all_stream_orders() {
    let g = generators::clique_union(4, 5); // 4 components of 5
    for order in StreamOrder::sweep(9) {
        let rebuilt = Graph::from_edges(g.n(), order.arrange(&g));
        let comps = connected_components(&rebuilt);
        assert_eq!(comps.len(), 4, "{}", order.label());
        assert!(comps.iter().all(|c| c.len() == 5));
    }
    assert!(bipartition(&generators::random_bipartite(20, 25, 0.3, 6, 1)).is_some());
}

/// Degeneracy ordering invariant: each vertex has ≤ κ neighbors after it.
#[test]
fn degeneracy_ordering_invariant_on_random_graphs() {
    for seed in 0..4u64 {
        let g = generators::preferential_attachment(80, 3, 20, seed);
        let all: Vec<u32> = (0..80u32).collect();
        let info = degeneracy_ordering(&g, &all);
        let pos: std::collections::HashMap<u32, usize> =
            info.order.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        for &v in &info.order {
            let later = g.neighbors(v).iter().filter(|&&y| pos[&y] > pos[&v]).count();
            assert!(
                later <= info.degeneracy,
                "vertex {v} has {later} later neighbors > κ = {}",
                info.degeneracy
            );
        }
    }
}

/// Brooks on every family the generators produce, including regular and
/// block-decomposed shapes.
#[test]
fn brooks_is_proper_and_within_bound_everywhere() {
    let graphs: Vec<Graph> = vec![
        generators::complete(7),
        generators::cycle(11),
        generators::cycle(12),
        generators::star(30),
        generators::petersen(),
        generators::circulant(15, 3),
        generators::blowup(&generators::complete(3), 4),
        generators::complete_multipartite(4, 3),
        generators::clique_union(3, 5),
        generators::preferential_attachment(60, 2, 15, 1),
        generators::gnp_with_max_degree(70, 9, 0.3, 2),
    ];
    for (i, g) in graphs.iter().enumerate() {
        let c = brooks_coloring(g);
        assert!(c.is_proper_total(g), "graph #{i} improper");
        assert!(
            c.palette_span() as usize <= brooks_bound(g).max(1),
            "graph #{i}: span {} > bound {}",
            c.palette_span(),
            brooks_bound(g)
        );
    }
}

/// Exact chromatic number on a DIMACS-serialized instance matches the
/// original (end-to-end file pipeline).
#[test]
fn chromatic_agrees_across_serialization() {
    let g = generators::mycielski(&generators::cycle(5)); // Grötzsch, χ = 4
    let mut buf = Vec::new();
    io::write_edge_list(&g, &mut buf).unwrap();
    let g2 = io::read_edge_list(buf.as_slice()).unwrap();
    assert_eq!(chromatic_number(&g).0, 4);
    assert_eq!(chromatic_number(&g2).0, 4);
}
