//! Integration tests for the adversarial game: robustness of the paper's
//! algorithms under adaptive attacks, and the separation from non-robust
//! baselines (the empirical content of the §1 trichotomy).

use sc_adversary::{
    run_game, CliqueBuilder, MonochromaticAttacker, ObliviousReplay, RandomAdversary,
};
use sc_graph::generators;
use streamcolor::{
    Cgs22Colorer, PaletteSparsification, RandEfficientColorer, RobustColorer, TrivialColorer,
};

#[test]
fn all_robust_algorithms_survive_monochromatic_attack() {
    let n = 200usize;
    let delta = 12usize;
    let rounds = 3 * n;
    for seed in 0..3u64 {
        let mut a2 = MonochromaticAttacker::new(n, delta, seed);
        let mut c2 = RobustColorer::new(n, delta, 100 + seed);
        assert!(run_game(&mut c2, &mut a2, n, rounds).survived(), "alg2 seed {seed}");

        let mut a3 = MonochromaticAttacker::new(n, delta, seed);
        let mut c3 = RandEfficientColorer::new(n, delta, 200 + seed);
        assert!(run_game(&mut c3, &mut a3, n, rounds).survived(), "alg3 seed {seed}");

        let mut ac = MonochromaticAttacker::new(n, delta, seed);
        let mut cc = Cgs22Colorer::new(n, delta, 300 + seed);
        assert!(run_game(&mut cc, &mut ac, n, rounds).survived(), "cgs22 seed {seed}");
    }
}

#[test]
fn deterministic_trivial_is_robust_by_definition() {
    let n = 100usize;
    let mut adv = MonochromaticAttacker::new(n, 8, 1);
    let mut t = TrivialColorer::new(n);
    let r = run_game(&mut t, &mut adv, n, 500);
    assert!(r.survived());
}

#[test]
fn palette_sparsification_survives_oblivious_but_not_adaptive() {
    let n = 200usize;
    let delta = 16usize;

    // Oblivious: fine.
    let g = generators::gnp_with_max_degree(n, delta, 0.4, 9);
    let mut obl = ObliviousReplay::new(generators::shuffled_edges(&g, 9));
    let mut ps = PaletteSparsification::with_theory_lists(n, delta, 5);
    let r = run_game(&mut ps, &mut obl, n, 10 * n);
    assert!(r.survived(), "oblivious replay should succeed w.h.p.");

    // Adaptive with small lists: broken in at least one of a few trials.
    let mut broken = false;
    for seed in 0..6u64 {
        let mut adv = MonochromaticAttacker::new(n, delta, seed);
        let mut ps = PaletteSparsification::new(n, delta, 4, seed + 60);
        let r = run_game(&mut ps, &mut adv, n, n * delta);
        if !r.survived() {
            broken = true;
            break;
        }
    }
    assert!(broken, "adaptive attack should break small-list sparsification");
}

#[test]
fn attack_respects_the_degree_budget() {
    let n = 150usize;
    let delta = 10usize;
    let mut adv = MonochromaticAttacker::new(n, delta, 4);
    let mut c = RobustColorer::new(n, delta, 4);
    let r = run_game(&mut c, &mut adv, n, 2000);
    assert!(r.final_graph.max_degree() <= delta);
}

#[test]
fn clique_builder_forces_full_palettes() {
    let n = 120usize;
    let delta = 5usize;
    let mut adv = CliqueBuilder::new(n, delta);
    let mut c = RobustColorer::new(n, delta, 8);
    let r = run_game(&mut c, &mut adv, n, 10_000);
    assert!(r.survived());
    // Disjoint (∆+1)-cliques need at least ∆+1 colors.
    assert!(r.max_colors > delta);
    assert_eq!(r.final_graph.max_degree(), delta);
}

#[test]
fn random_adversary_is_no_worse_than_oblivious() {
    let n = 150usize;
    let delta = 8usize;
    for seed in 0..2u64 {
        let mut adv = RandomAdversary::new(n, delta, seed);
        let mut c2 = RobustColorer::new(n, delta, 70 + seed);
        assert!(run_game(&mut c2, &mut adv, n, 3 * n).survived());

        let mut adv = RandomAdversary::new(n, delta, seed);
        let mut c3 = RandEfficientColorer::new(n, delta, 80 + seed);
        assert!(run_game(&mut c3, &mut adv, n, 3 * n).survived());
    }
}

#[test]
fn attack_against_beta_traded_variants() {
    use streamcolor::RobustParams;
    let n = 150usize;
    let delta = 9usize;
    for &beta in &[0.25, 0.5] {
        let mut adv = MonochromaticAttacker::new(n, delta, 3);
        let params = RobustParams::with_beta(n, delta, beta);
        let mut c = RobustColorer::with_params(params, 33);
        let r = run_game(&mut c, &mut adv, n, 3 * n);
        assert!(r.survived(), "β = {beta}");
    }
}
