#!/usr/bin/env bash
# A turnstile (insert/delete) session against a live `serve --reactor`
# listener: a churny stream — edges inserted, a third of them retracted,
# some oscillated — pushed over raw TCP through both signed
# vocabularies (`"sign":"delete"` on push, `±u-v` tokens on
# push_batch), with the coloring observed after the deletions and
# verified proper for the *live* graph client-side. Needs bash for
# /dev/tcp (the raw protocol client).
set -eu
cd "$(dirname "$0")/.."

cargo build --release --bin streamcolor

LOG=$(mktemp)
trap 'rm -f "$LOG"; kill "$SERVER_PID" 2>/dev/null || true' EXIT
target/release/streamcolor serve --listen 127.0.0.1:0 --reactor --accept 1 > "$LOG" &
SERVER_PID=$!
for _ in $(seq 100); do
    grep -q 'listening on' "$LOG" 2>/dev/null && break
    sleep 0.1
done
ADDR=$(sed -n 's/^listening on //p' "$LOG")
[ -n "$ADDR" ] || { echo "server never listened" >&2; exit 1; }
echo "reactor listening on $ADDR"

exec 3<>"/dev/tcp/${ADDR%:*}/${ADDR##*:}"
ask() { # REQUEST_LINE — prints the one response line
    printf '%s\n' "$1" >&3
    IFS= read -r response <&3
    printf '%s\n' "$response"
}

echo
echo "== open a dynamic (sparse-recovery) session and churn it =="
ask '{"cmd":"open","session":"churn","n":12,"delta":4,"colorer":"dynamic-sr","seed":11}'
# Build a path, then churn: retract 2-3 and 0-1, oscillate 4-5
# (delete + re-insert), extend the live graph past the retractions.
ask '{"cmd":"push_batch","session":"churn","edges":"0-1 1-2 2-3 3-4 4-5"}'
ask '{"cmd":"push","session":"churn","edge":"2-3","sign":"delete"}'
ask '{"cmd":"push_batch","session":"churn","edges":"-0-1 -4-5 +4-5 +5-6 +6-7"}'
echo
echo "== the coloring after deletions covers exactly the live graph =="
OBSERVE=$(ask '{"cmd":"observe","session":"churn"}')
echo "$OBSERVE"

# Live edges after the churn above: 1-2, 3-4, 4-5, 5-6, 6-7.
COLORING=$(printf '%s' "$OBSERVE" | sed 's/.*"coloring":"\([^"]*\)".*/\1/')
IFS=',' read -r -a COLOR <<< "$COLORING"
for e in "1 2" "3 4" "4 5" "5 6" "6 7"; do
    set -- $e
    if [ "${COLOR[$1]}" = "${COLOR[$2]}" ]; then
        echo "IMPROPER: live edge $1-$2 is monochromatic (${COLOR[$1]})" >&2
        exit 1
    fi
    echo "live edge $1-$2: colors ${COLOR[$1]} vs ${COLOR[$2]} — proper"
done

echo
echo "== deleting a never-inserted edge errors loudly, state untouched =="
ask '{"cmd":"push","session":"churn","edge":"9-10","sign":"delete"}'
AGAIN=$(ask '{"cmd":"observe","session":"churn"}')
[ "$OBSERVE" = "$AGAIN" ] || { echo "rejected delete perturbed the session" >&2; exit 1; }
echo "observe re-answers byte-identically after the rejected delete"

ask '{"cmd":"finish","session":"churn"}' > /dev/null
exec 3<&- 3>&-
wait "$SERVER_PID"
echo
echo "turnstile demo complete: coloring stayed proper across deletions"
