//! Parallel query scheduling via list coloring.
//!
//! ```sh
//! cargo run --release --example parallel_query_scheduling
//! ```
//!
//! Hasan–Motwani (VLDB 1995), the database application the paper's intro
//! highlights: operators of a parallel query plan that contend for the
//! same resource cannot run in the same time slot. Each operator also has
//! its own *availability list* of slots (data-arrival constraints), which
//! makes this a (deg+1)-list-coloring instance — Theorem 2's setting.
//! Contention edges stream from the plan analyzer; availability lists
//! stream from the catalog, interleaved.

use sc_graph::{Color, Edge, Graph};
use sc_stream::{StoredStream, StreamItem};
use streamcolor::{list_coloring, ListConfig};

fn main() {
    // 400 operators in 50 query plans; operators in the same plan stage
    // contend pairwise; some cross-plan operators contend on shared tables.
    let n = 400usize;
    let mut edges = Vec::new();
    for plan in 0..50u32 {
        let base = plan * 8;
        for i in 0..8u32 {
            for j in (i + 1)..8 {
                if (i + j) % 3 != 0 {
                    edges.push(Edge::new(base + i, base + j));
                }
            }
        }
        // Cross-plan contention on a shared hot table.
        if plan > 0 {
            edges.push(Edge::new(base, base - 8));
        }
    }
    let graph = Graph::from_edges(n, edges.iter().copied());
    let delta = graph.max_degree();

    // Availability lists: each operator may run in deg+1 slots drawn from
    // a 64-slot schedule, biased toward its plan's arrival window.
    let slots = 64u64;
    let lists: Vec<Vec<Color>> = (0..n)
        .map(|x| {
            let deg = graph.degree(x as u32);
            let window = (x as u64 * 13) % slots;
            (0..=deg as u64).map(|i| (window + i * 5) % slots).collect()
        })
        .collect();

    // Interleave edges and lists as they would arrive from two catalogs.
    let mut items: Vec<StreamItem> = Vec::new();
    let mut ei = edges.iter();
    for (x, l) in lists.iter().enumerate() {
        items.push(StreamItem::ColorList(x as u32, l.clone()));
        for _ in 0..2 {
            if let Some(&e) = ei.next() {
                items.push(StreamItem::Edge(e));
            }
        }
    }
    items.extend(ei.map(|&e| StreamItem::Edge(e)));

    let stream = StoredStream::new(items);
    let report = list_coloring(&stream, n, delta, slots, &ListConfig::default());
    assert!(report.coloring.is_proper_total(&graph));
    assert!(report.coloring.respects_lists(&lists));

    println!(
        "scheduled {} operators (∆ = {delta}) into {} distinct time slots, {} passes",
        n,
        report.coloring.num_distinct_colors(),
        report.passes
    );
    println!(
        "every operator runs inside its availability window; no contention pair shares a slot."
    );
    for op in 0..5u32 {
        println!(
            "  operator {op}: slot {} (window {:?})",
            report.coloring.get(op).unwrap(),
            &lists[op as usize]
        );
    }
}
