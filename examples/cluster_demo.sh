#!/usr/bin/env sh
# The cluster determinism law in one shell session: start a TCP
# listener (`streamcolor serve --listen`), run the smoke grid sharded
# against it over real sockets — plus the stdio and loopback transports
# and a skewed fleet exercising work stealing + speculative
# re-dispatch — and diff every merged JSON against the single-process
# reference. All five files are byte-identical.
set -eu
cd "$(dirname "$0")/.."

cargo build --release --bin streamcolor --bin shard_worker

OUT=/tmp/cluster_demo
mkdir -p "$OUT"

echo "== single-process reference =="
target/release/streamcolor shard --smoke --in-process --out "$OUT/single.json"
echo "wrote $OUT/single.json"

echo
echo "== loopback (process) and spawned (stdio) transports =="
target/release/streamcolor shard --smoke --transport process --workers 3 --out "$OUT/process.json"
target/release/streamcolor shard --smoke --transport stdio --workers 3 --out "$OUT/stdio.json"

echo
echo "== TCP: a listener serving remote shard workers =="
target/release/streamcolor serve --listen 127.0.0.1:0 --max-sessions 64 --accept 3 \
    > "$OUT/listener.log" &
LISTENER=$!
# The listener announces its resolved address; wait for it.
for _ in $(seq 1 50); do
    grep -q "listening on" "$OUT/listener.log" 2>/dev/null && break
    sleep 0.1
done
ADDR=$(sed -n 's/^listening on //p' "$OUT/listener.log")
echo "listener up on $ADDR"
target/release/streamcolor shard --smoke --transport tcp --connect "$ADDR" --workers 3 \
    --out "$OUT/tcp.json"
wait "$LISTENER"

echo
echo "== skewed fleet: stealing + speculation route around a straggler =="
# One worker answers 500 ms late; work stealing keeps it from bounding
# the dispatch and its last slice is speculatively re-dispatched after
# 5% of the timeout. Scheduling is byte-invisible: same merged JSON.
target/release/streamcolor shard --smoke --transport process --workers 3 \
    --skew-ms 500 --timeout-ms 8000 --speculate-after 0.05 \
    --out "$OUT/skew.json"

echo
echo "== every transport and schedule merged byte-identically =="
diff "$OUT/single.json" "$OUT/process.json"
diff "$OUT/single.json" "$OUT/stdio.json"
diff "$OUT/single.json" "$OUT/tcp.json"
diff "$OUT/single.json" "$OUT/skew.json"
echo "single == process == stdio == tcp == skewed"
