//! Register allocation via streaming graph coloring.
//!
//! ```sh
//! cargo run --release --example register_allocation
//! ```
//!
//! The classic compiler application (Chaitin 1982, cited in the paper's
//! intro): virtual registers are vertices, simultaneously-live pairs are
//! edges, and a proper coloring is a register assignment. Interference
//! edges are discovered while scanning the program — a natural edge
//! stream. We synthesize a program trace of basic blocks with overlapping
//! live ranges, stream the interference edges, and allocate with the
//! deterministic (∆+1)-colorer so the allocation is reproducible across
//! compiler runs (the determinism requirement is exactly why Theorem 1
//! matters: rerunning the compiler must not shuffle registers).

use sc_graph::{Edge, Graph};
use sc_stream::StoredStream;
use streamcolor::{deterministic_coloring, DetConfig};

/// Synthesizes interference edges: `blocks` basic blocks, each with a
/// window of `live` simultaneously live virtual registers drawn from a
/// rotating window over `n` registers (deterministic trace).
fn interference_stream(n: usize, blocks: usize, live: usize) -> Vec<Edge> {
    let mut edges = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for b in 0..blocks {
        // Window of registers live in this block.
        let base = (b * 7) % n;
        let window: Vec<u32> = (0..live).map(|i| ((base + i * 3) % n) as u32).collect();
        for i in 0..window.len() {
            for j in (i + 1)..window.len() {
                if window[i] != window[j] {
                    let e = Edge::new(window[i], window[j]);
                    if seen.insert(e) {
                        edges.push(e);
                    }
                }
            }
        }
    }
    edges
}

fn main() {
    let virtual_registers = 600;
    let edges = interference_stream(virtual_registers, 900, 9);
    let graph = Graph::from_edges(virtual_registers, edges.iter().copied());
    let delta = graph.max_degree();
    println!(
        "interference graph: {} virtual registers, {} interferences, ∆ = {delta}",
        virtual_registers,
        graph.m()
    );

    let stream = StoredStream::from_edges(edges.clone());
    let report = deterministic_coloring(&stream, virtual_registers, delta, &DetConfig::default());
    assert!(report.coloring.is_proper_total(&graph));

    println!(
        "allocated {} machine registers (offline lower bound would need ≥ {}), {} passes over the trace",
        report.colors_used,
        // A clique in the interference graph forces at least that many.
        graph.vertices().map(|v| graph.degree(v)).min().unwrap_or(0) + 1,
        report.passes
    );

    // Determinism demo: a second compile run yields the identical map.
    // The guarantee is per *stream*: the recompile replays the same
    // interference trace in the same discovery order (adjacency order
    // would be a different stream and may legitimately color differently).
    let stream2 = StoredStream::from_edges(edges);
    let report2 = deterministic_coloring(&stream2, virtual_registers, delta, &DetConfig::default());
    assert_eq!(report.coloring, report2.coloring);
    println!("re-compilation produced a bit-identical register map (deterministic).");

    // Show a few assignments.
    for reg in 0..5u32 {
        println!("  v{reg} -> r{}", report.coloring.get(reg).unwrap());
    }
}
