//! Coloring a skewed "web-graph" stream: degeneracy beats ∆, robustness
//! costs poly(∆).
//!
//! ```sh
//! cargo run --release --example sparse_web_degeneracy
//! ```
//!
//! Web/social graphs have a few huge hubs (∆ large) but shallow cores
//! (degeneracy κ small). This example streams a preferential-attachment
//! graph through three one-pass colorers and contrasts their palettes:
//!
//! * **BCG20-style** `κ(1+ε)`-colorer — smallest palette, but *non-robust*
//!   (its sampled lists are fixed up front);
//! * **BG18-style** `Õ(∆)`-colorer — simple and ∆-bounded, also non-robust;
//! * **Algorithm 2** (`O(∆^{5/2})`) — the price of withstanding an
//!   *adaptive* stream, per the paper's `Ω(∆²)` robust lower bound.
//!
//! Then it replays the adaptive-adversary game to show the cheap palettes
//! are not robust: the feedback attack breaks the BCG20-style colorer
//! while Algorithm 2 survives.

use sc_adversary::{run_game, MonochromaticAttacker};
use sc_graph::{degeneracy_ordering, generators};
use sc_stream::run_oblivious;
use streamcolor::{Bcg20Colorer, Bg18Colorer, RobustColorer};

fn main() {
    let n = 3000usize;
    let g = generators::preferential_attachment(n, 3, 150, 9);
    let delta = g.max_degree();
    let all: Vec<u32> = (0..n as u32).collect();
    let kappa = degeneracy_ordering(&g, &all).degeneracy;
    println!("web graph: {n} pages, {} links, ∆ = {delta} (hubs), κ = {kappa} (core depth)", g.m());

    let edges = generators::shuffled_edges(&g, 4);

    let mut bcg = Bcg20Colorer::for_graph(&g, 0.5, 1);
    let c1 = run_oblivious(&mut bcg, edges.iter().copied());
    assert!(c1.is_proper_total(&g));
    println!("  bcg20 (κ-based, non-robust):  {:>5} colors", c1.num_distinct_colors());

    let mut bg = Bg18Colorer::new(n, delta as u64, 2);
    let c2 = run_oblivious(&mut bg, edges.iter().copied());
    assert!(c2.is_proper_total(&g));
    println!("  bg18  (∆-based, non-robust):  {:>5} colors", c2.num_distinct_colors());

    let mut a2 = RobustColorer::new(n, delta, 3);
    let c3 = run_oblivious(&mut a2, edges.iter().copied());
    assert!(c3.is_proper_total(&g));
    println!("  alg2  (robust, O(∆^2.5)):     {:>5} colors", c3.num_distinct_colors());

    // Now the adaptive game: a crawler that chooses which links to reveal
    // next based on the colorings we publish (e.g. a SEO adversary).
    println!("\nadaptive stream (feedback attack, degree budget 24):");
    let (an, adelta, rounds) = (300usize, 24usize, 2400usize);

    let mut victim = Bcg20Colorer::new(an, adelta, 0.5, 4, 5);
    let mut attacker = MonochromaticAttacker::new(an, adelta, 6);
    let r = run_game(&mut victim, &mut attacker, an, rounds);
    println!(
        "  bcg20 small lists: {}",
        match r.first_failure_round {
            Some(round) => format!("BROKEN at round {round} (improper timetable published)"),
            None => "survived (lucky seed — rerun with another)".into(),
        }
    );

    let mut robust = RobustColorer::new(an, adelta, 7);
    let mut attacker = MonochromaticAttacker::new(an, adelta, 6);
    let r = run_game(&mut robust, &mut attacker, an, rounds);
    assert!(r.survived(), "Algorithm 2 must survive the feedback attack");
    println!("  alg2 robust:       survived all {} rounds (max {} colors)", r.rounds, r.max_colors);
    println!(
        "\nmoral: κ-palettes are ideal for fixed crawls; pay the poly(∆) palette \
         only when the stream can react to your outputs."
    );
}
