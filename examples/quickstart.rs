//! Quickstart: color a streamed graph three ways.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Demonstrates the three headline algorithms of the paper on one random
//! bounded-degree graph: the deterministic multi-pass `(∆+1)`-coloring
//! (Theorem 1), the adversarially robust single-pass `O(∆^{5/2})`-coloring
//! (Theorem 3), and the randomness-efficient robust `O(∆³)`-coloring
//! (Theorem 4).

use sc_graph::generators;
use sc_stream::{run_oblivious, StoredStream};
use streamcolor::{deterministic_coloring, DetConfig, RandEfficientColorer, RobustColorer};

fn main() {
    let n = 1000;
    let delta = 24;
    let graph = generators::random_with_exact_max_degree(n, delta, 42);
    let edges = generators::shuffled_edges(&graph, 7);
    println!("graph: n = {n}, m = {}, ∆ = {delta}\n", graph.m());

    // --- Theorem 1: deterministic (∆+1)-coloring, multiple passes. ---
    let stream = StoredStream::from_edges(edges.clone());
    let det = deterministic_coloring(&stream, n, delta, &DetConfig::default());
    assert!(det.coloring.is_proper_total(&graph));
    println!(
        "deterministic (Thm 1): {} colors (≤ ∆+1 = {}), {} passes, {} epochs",
        det.colors_used,
        delta + 1,
        det.passes,
        det.epochs
    );

    // --- Theorem 3: robust single-pass colorer. ---
    let mut robust = RobustColorer::new(n, delta, 123);
    let coloring = run_oblivious(&mut robust, edges.iter().copied());
    assert!(coloring.is_proper_total(&graph));
    println!(
        "robust ∆^2.5  (Thm 3): {} colors (bound ≈ ∆^2.5 = {:.0}), 1 pass",
        coloring.num_distinct_colors(),
        (delta as f64).powf(2.5)
    );

    // --- Theorem 4: randomness-efficient robust colorer. ---
    let mut eff = RandEfficientColorer::new(n, delta, 456);
    let coloring = run_oblivious(&mut eff, edges.iter().copied());
    assert!(coloring.is_proper_total(&graph));
    println!(
        "robust ∆^3    (Thm 4): {} colors (bound ≈ ∆^3 = {}), 1 pass, Õ(n) bits incl. randomness",
        coloring.num_distinct_colors(),
        delta * delta * delta
    );

    println!("\nAll three colorings validated as proper.");
}
