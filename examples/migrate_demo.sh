#!/usr/bin/env bash
# Live session migration in one shell session: open a session on one
# reactor listener, `streamcolor migrate` it to a second listener, keep
# talking to it there — and byte-diff the stitched transcript against
# an uninterrupted run of the same commands. Needs bash for /dev/tcp
# (the raw protocol client); everything else is the built binary.
set -eu
cd "$(dirname "$0")/.."

cargo build --release --bin streamcolor

OUT=/tmp/migrate_demo
rm -rf "$OUT"
mkdir -p "$OUT"

# The session's command stream, cut at the migration point. Both
# halves address the same name; responses never mention the host.
cat > "$OUT/first_half.commands" <<'EOF'
{"cmd":"open","session":"demo","n":24,"delta":4,"colorer":"robust","seed":7}
{"cmd":"push_batch","session":"demo","edges":"0-1 1-2 2-3 3-4 4-5"}
{"cmd":"observe","session":"demo"}
{"cmd":"checkpoint","session":"demo"}
EOF
cat > "$OUT/second_half.commands" <<'EOF'
{"cmd":"push_batch","session":"demo","edges":"5-6 6-7 7-8"}
{"cmd":"observe","session":"demo"}
{"cmd":"finish","session":"demo"}
EOF
cat "$OUT/first_half.commands" "$OUT/second_half.commands" > "$OUT/full.commands"

echo "== uninterrupted reference (one host, no migration) =="
target/release/streamcolor serve --script "$OUT/full.commands" > "$OUT/reference.out"
echo "wrote $OUT/reference.out"

echo
echo "== two reactor listeners, shared session namespace =="
# --shared-sessions lets a later connection (the migrate CLI, the
# verifying client) address a session an earlier connection opened.
target/release/streamcolor serve --listen 127.0.0.1:0 --reactor --shared-sessions \
    --accept 2 > "$OUT/source.log" &
SOURCE=$!
target/release/streamcolor serve --listen 127.0.0.1:0 --reactor --shared-sessions \
    --accept 2 > "$OUT/target.log" &
TARGET=$!
for log in source.log target.log; do
    for _ in $(seq 1 50); do
        grep -q "listening on" "$OUT/$log" 2>/dev/null && break
        sleep 0.1
    done
done
FROM=$(sed -n 's/^listening on //p' "$OUT/source.log")
TO=$(sed -n 's/^listening on //p' "$OUT/target.log")
echo "source on $FROM, target on $TO"

# Raw protocol client: one request line out, one response line back.
drive() { # ADDR COMMANDS_FILE >> responses
    exec 3<>"/dev/tcp/${1%:*}/${1##*:}"
    while IFS= read -r line; do
        printf '%s\n' "$line" >&3
        IFS= read -r response <&3
        printf '%s\n' "$response"
    done < "$2"
    exec 3<&- 3>&-
}

echo
echo "== first half on the source, migrate, second half on the target =="
drive "$FROM" "$OUT/first_half.commands" > "$OUT/migrated.out"
target/release/streamcolor migrate --session demo --from "$FROM" --to "$TO"
drive "$TO" "$OUT/second_half.commands" >> "$OUT/migrated.out"
wait "$SOURCE" "$TARGET"

echo
echo "== the migration is byte-invisible =="
diff "$OUT/reference.out" "$OUT/migrated.out"
echo "uninterrupted == migrated (every observation byte-identical)"
