#!/usr/bin/env sh
# Drives `streamcolor serve` over the flat-JSON line protocol, both in
# script mode (parallel across sessions, byte-identical for every
# --threads value) and as a plain stdin pipe — then shows that all
# three transcripts are identical, which is the protocol's determinism
# law in one shell session.
set -eu
cd "$(dirname "$0")/.."

cargo build --release --bin streamcolor

echo "== script mode (--threads 1) =="
target/release/streamcolor serve --script examples/serve_demo.commands | tee /tmp/serve_demo_1.out

echo
echo "== script mode (--threads 4) and stdin pipe produce identical bytes =="
target/release/streamcolor serve --script examples/serve_demo.commands --threads 4 > /tmp/serve_demo_4.out
target/release/streamcolor serve < examples/serve_demo.commands > /tmp/serve_demo_stdin.out
diff /tmp/serve_demo_1.out /tmp/serve_demo_4.out
diff /tmp/serve_demo_1.out /tmp/serve_demo_stdin.out
echo "byte-identical across modes and thread counts"
