//! Exam timetabling via streaming (deg+1)-list-coloring (Theorem 2).
//!
//! ```sh
//! cargo run --release --example exam_timetabling
//! ```
//!
//! The scheduling application (Lotfi–Sarin 1986, cited in the paper's
//! intro): exams are vertices, an edge joins two exams sharing a student,
//! and a proper coloring is a clash-free timetable. Real timetabling is a
//! *list*-coloring problem — each exam has its own set of admissible slots
//! (instructor availability, room constraints) — which is exactly
//! Theorem 2's setting: a stream of conflict edges interleaved with
//! `(exam, allowed-slots)` tokens, colored deterministically in
//! `O(log ∆ log log ∆)` passes.
//!
//! Lists must satisfy `|L_x| ≥ deg(x) + 1`; the synthesizer below builds
//! availability lists of exactly that size around each exam's preferred
//! time-of-day band, so the instance is tight.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sc_graph::{Edge, Graph};
use sc_stream::{StoredStream, StreamItem};
use streamcolor::{list_coloring, ListConfig};

/// Synthesizes a co-enrollment conflict graph: `students` students each
/// take `per_student` of the `exams` exams; two exams clash if some
/// student takes both. Degrees are capped so the slot universe stays
/// realistic.
fn conflict_graph(exams: usize, students: usize, per_student: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::empty(exams);
    let cap = 40; // max clashes per exam
    for _ in 0..students {
        let mut picks: Vec<u32> = (0..exams as u32).collect();
        picks.shuffle(&mut rng);
        let courses = &picks[..per_student];
        for (i, &a) in courses.iter().enumerate() {
            for &b in courses.iter().skip(i + 1) {
                if g.degree(a) < cap && g.degree(b) < cap {
                    g.add_edge(Edge::new(a, b));
                }
            }
        }
    }
    g
}

/// Availability lists: exam `x` prefers a contiguous band of slots around
/// `hash(x) % slots` and gets exactly `deg(x) + 1` admissible slots.
fn availability_lists(g: &Graph, slots: u64, seed: u64) -> Vec<Vec<u64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..g.n() as u32)
        .map(|x| {
            let need = g.degree(x) + 1;
            assert!((slots as usize) >= need, "not enough slots for exam {x}");
            let start = rng.gen_range(0..slots);
            (0..need as u64).map(|i| (start + i) % slots).collect()
        })
        .collect()
}

fn main() {
    let exams = 500usize;
    let g = conflict_graph(exams, 1500, 4, 42);
    let delta = g.max_degree();
    let slots = 64u64; // 8 days × 8 periods
    println!(
        "conflict graph: {exams} exams, {} clashes, busiest exam clashes with {delta} others",
        g.m()
    );

    let lists = availability_lists(&g, slots, 7);
    // Interleave list tokens among the edges (lists first is the easy
    // case; Theorem 2 allows any order — shuffle to prove it).
    let mut items: Vec<StreamItem> =
        lists.iter().enumerate().map(|(x, l)| StreamItem::ColorList(x as u32, l.clone())).collect();
    items.extend(g.edges().map(StreamItem::Edge));
    items.shuffle(&mut StdRng::seed_from_u64(3));
    let stream = StoredStream::new(items);

    let report = list_coloring(&stream, exams, delta, slots, &ListConfig::default());
    assert!(report.coloring.is_proper_total(&g), "timetable has a clash");
    assert!(report.coloring.respects_lists(&lists), "an exam left its availability");

    println!(
        "timetabled into {} of {slots} slots, {} passes over the enrollment stream",
        report.coloring.num_distinct_colors(),
        report.passes
    );

    // Per-slot load (room planning).
    let mut load = vec![0usize; slots as usize];
    for (_, c) in report.coloring.assignments() {
        load[c as usize] += 1;
    }
    let busiest = load.iter().enumerate().max_by_key(|(_, l)| **l).expect("nonempty");
    println!("busiest slot: #{} with {} exams", busiest.0, busiest.1);
    for x in 0..5u32 {
        println!(
            "  exam {x}: slot {} (allowed {:?})",
            report.coloring.get(x).expect("total"),
            &lists[x as usize][..lists[x as usize].len().min(5)]
        );
    }
}
