//! The adaptive-adversary separation, live.
//!
//! ```sh
//! cargo run --release --example adversarial_demo
//! ```
//!
//! Pits the monochromatic feedback attacker against (a) the non-robust
//! palette-sparsification colorer and (b) the paper's robust Algorithm 2,
//! printing the round at which the non-robust algorithm first emits an
//! improper coloring — the behaviour that motivates the entire
//! adversarially-robust model.

use sc_adversary::{run_game, MonochromaticAttacker};
use streamcolor::{PaletteSparsification, RobustColorer};

fn main() {
    let n = 500;
    let delta = 40;
    let rounds = n * delta / 4;
    println!("attack arena: n = {n}, degree budget ∆ = {delta}, up to {rounds} insertions\n");

    // (a) Non-robust: palette sparsification with Θ(log n) lists.
    let mut adversary = MonochromaticAttacker::new(n, delta, 7);
    let mut victim = PaletteSparsification::new(n, delta, 8, 99);
    let report = run_game(&mut victim, &mut adversary, n, rounds);
    match report.first_failure_round {
        Some(r) => println!(
            "palette sparsification: BROKEN at round {r} ({} improper outputs of {} rounds; \
             {} completion failures)",
            report.improper_outputs,
            report.rounds,
            victim.failures()
        ),
        None => println!(
            "palette sparsification survived {} rounds (try a larger ∆/list ratio)",
            report.rounds
        ),
    }

    // (b) Robust: Algorithm 2 under the same attack.
    let mut adversary = MonochromaticAttacker::new(n, delta, 7);
    let mut robust = RobustColorer::new(n, delta, 99);
    let report = run_game(&mut robust, &mut adversary, n, rounds);
    assert!(report.survived());
    println!(
        "robust Algorithm 2:     survived all {} rounds, max {} colors (bound ≈ ∆^2.5 = {:.0})",
        report.rounds,
        report.max_colors,
        (delta as f64).powf(2.5)
    );
    println!("\nThe separation: adaptivity breaks oblivious guarantees; robustness costs colors.");
}
