//! Multi-tenant sessions through the `sc-service` host — the in-process
//! twin of `examples/serve_demo.sh` (which drives the same protocol
//! through the `streamcolor serve` binary).
//!
//! Three clients stream three different graphs into three different
//! algorithms concurrently; each observes mid-stream colorings of its
//! own prefix, oblivious to its neighbors. Run with:
//!
//! ```text
//! cargo run --release --example service_sessions
//! ```

use sc_engine::flatjson::{parse_object, Scalar};
use sc_engine::wire;
use sc_graph::generators;
use sc_service::Service;

fn main() {
    let mut service = Service::new();

    // Three tenants: different algorithms, different streams, one host.
    let tenants = [
        ("ring", "robust", generators::cycle(24)),
        ("web", "store-all", generators::gnp_with_max_degree(24, 5, 0.4, 9)),
        ("hub", "bg18", generators::star(24)),
    ];
    for (name, algo, g) in &tenants {
        let open = format!(
            r#"{{"cmd":"open","session":"{name}","n":{},"delta":{},"colorer":"{algo}","seed":3}}"#,
            g.n(),
            g.max_degree(),
        );
        let response = service.respond(&open).expect("open responds");
        println!("open {name:>4}: {response}");
    }

    // Interleave edge insertions round-robin and observe each prefix —
    // the adversarially robust contract, multiplexed.
    let streams: Vec<Vec<_>> = tenants.iter().map(|(_, _, g)| g.edges().collect()).collect();
    let rounds = streams.iter().map(Vec::len).max().unwrap();
    for i in 0..rounds {
        for ((name, _, _), edges) in tenants.iter().zip(&streams) {
            if let Some(e) = edges.get(i) {
                let push =
                    format!(r#"{{"cmd":"push","session":"{name}","edge":"{}-{}"}}"#, e.u(), e.v());
                assert!(service.respond(&push).expect("push responds").contains("\"ok\":true"));
            }
        }
    }

    for ((name, _, g), _) in tenants.iter().zip(&streams) {
        let observe = format!(r#"{{"cmd":"observe","session":"{name}"}}"#);
        let response = service.respond(&observe).expect("observe responds");
        let obj = parse_object(&response).expect("canonical response parses");
        let coloring = sc_service::service::parse_coloring(
            obj["coloring"].as_str().expect("coloring field"),
            g.n(),
        )
        .expect("coloring parses");
        assert!(coloring.is_proper_total(g), "{name}: service coloring must be proper");
        println!(
            "{name:>4}: m = {}, colors = {}, space = {} bits — proper ✓",
            g.m(),
            obj["colors"].as_u64().expect("colors"),
            obj["space_bits"].as_u64().expect("space_bits"),
        );
        let finish = format!(r#"{{"cmd":"finish","session":"{name}"}}"#);
        service.respond(&finish).expect("finish responds");
    }
    assert!(service.session_names().is_empty());

    // The same vocabulary the shard wire format uses works here too:
    // build an `open` command for any ColorerSpec programmatically.
    let mut open = sc_engine::flatjson::FlatObject::new();
    open.insert("cmd".into(), Scalar::Str("open".into()));
    open.insert("session".into(), Scalar::Str("spec".into()));
    open.insert("n".into(), Scalar::Uint(12));
    open.insert("delta".into(), Scalar::Uint(3));
    wire::colorer_to_wire(&sc_engine::ColorerSpec::Trivial, &mut open);
    let line = sc_engine::flatjson::encode_object(&open);
    println!("spec-built open: {}", service.respond(&line).expect("responds"));
    service.respond(r#"{"cmd":"finish","session":"spec"}"#).expect("cleanup");
}
