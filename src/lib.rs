//! Workspace umbrella for the `streamcolor` reproduction of
//! Assadi–Chakrabarti–Ghosh–Stoeckl, *Coloring in Graph Streams via
//! Deterministic and Adversarially Robust Algorithms* (PODS 2023).
//!
//! This package carries no library code of its own; it exists so the
//! cross-crate integration tests in `tests/` and the runnable examples in
//! `examples/` have a home at the workspace root. The actual layers:
//!
//! * `sc-graph` / `sc-hash` — offline graph and hashing substrates
//! * `sc-stream` — streaming model: sources, space meters, the
//!   `StreamingColorer` contract (scratch + incremental query paths),
//!   the epoch-keyed `QueryCache`, and the batched `StreamEngine`
//! * `streamcolor` — the paper's algorithms and baselines
//! * `sc-adversary` — adaptive adversaries and the robustness game
//! * `sc-engine` — declarative `Scenario`/`Runner` experiment layer
//! * `sc-service` — multi-tenant session host behind the flat-JSON
//!   line protocol (`streamcolor serve`)
//! * `sc-bench` / `streamcolor-cli` — experiment binaries and the CLI
