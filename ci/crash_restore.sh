#!/usr/bin/env bash
# Crash-restore leg of the service smoke: run the smoke script up to
# (but not including) its finish lines against a --reactor listener,
# snapshot every open session over the wire, SIGKILL the server, bring
# up a fresh one, restore the sessions from the client-held blobs, and
# run the finishes there. The stitched responses must byte-diff clean
# against ci/service_smoke.golden — a crash plus restore is invisible
# at the protocol level (the persistence law, across a real process
# boundary). Needs bash for /dev/tcp (the raw protocol client).
#
# Every artifact (stitched responses, snapshot blobs, server logs)
# lives in a mktemp dir removed on exit — a local run leaves the repo
# clean. CI passes an explicit output path as $1 when it wants to keep
# the stitched responses for its diff/upload steps.
set -eu
cd "$(dirname "$0")/.."

BIN=target/release/streamcolor
SESSIONS="alpha beta gamma delta epsilon zeta eta theta iota"
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
OUT=${1:-$WORK/serve-crashrestore.json}

# The smoke script ends with one finish per session; everything before
# them — ingest, queries, the error block, stats — runs pre-crash.
# stats stays pre-crash by construction: cache counters are
# warm-vs-cold dependent and sit outside the persistence law.
grep -v -e '^#' -e '^$' ci/service_smoke.commands > "$WORK/all.commands"
head -n -9 "$WORK/all.commands" > "$WORK/before.commands"
tail -n 9 "$WORK/all.commands" > "$WORK/after.commands"
if [ "$(grep -c '"cmd":"finish"' "$WORK/after.commands")" -ne 9 ]; then
    echo "service_smoke.commands no longer ends with the nine finish lines" >&2
    exit 1
fi

start_server() { # LOGFILE [EXTRA_ARGS...] — sets ADDR and SERVER_PID
    local log=$1
    shift
    # --shared-sessions makes the namespace host-global, so a later
    # connection (here: the post-crash restorer) can address sessions
    # it did not open.
    "$BIN" serve --listen 127.0.0.1:0 --reactor --shared-sessions --accept 1 "$@" \
        > "$log" &
    SERVER_PID=$!
    for _ in $(seq 100); do
        grep -q 'listening on' "$log" 2>/dev/null && break
        sleep 0.1
    done
    ADDR=$(sed -n 's/^listening on //p' "$log")
    [ -n "$ADDR" ] || { echo "server never listened (log: $log)" >&2; exit 1; }
}

connect() { exec 3<>"/dev/tcp/${ADDR%:*}/${ADDR##*:}"; }

ask() { # REQUEST_LINE — prints the one response line
    printf '%s\n' "$1" >&3
    IFS= read -r response <&3
    printf '%s\n' "$response"
}

echo "== pre-crash: ingest + queries, then snapshot every session =="
start_server "$WORK/source.log"
connect
while IFS= read -r line; do ask "$line"; done \
    < "$WORK/before.commands" > "$OUT"
for s in $SESSIONS; do
    response=$(ask "{\"cmd\":\"snapshot\",\"session\":\"$s\"}")
    case "$response" in
        *'"ok":true'*) ;;
        *) echo "snapshot $s failed: $response" >&2; exit 1 ;;
    esac
    # "snapshot" sorts last in the response, and the blob between its
    # quotes is already wire-escaped — it pastes verbatim into a
    # restore request.
    printf '%s\n' "$response" | sed 's/.*"snapshot":"\(.*\)"}$/\1/' > "$WORK/$s.blob"
done
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
exec 3<&- 3>&-
echo "killed the server with $(echo "$SESSIONS" | wc -w) live sessions snapshotted client-side"

echo "== post-crash: restore the blobs into a fresh server, finish there =="
start_server "$WORK/target.log" --snapshot-dir "$WORK/snapshots"
connect
for s in $SESSIONS; do
    response=$(ask "{\"cmd\":\"restore\",\"session\":\"$s\",\"snapshot\":\"$(cat "$WORK/$s.blob")\"}")
    case "$response" in
        *'"ok":true'*) ;;
        *) echo "restore $s failed: $response" >&2; exit 1 ;;
    esac
done
while IFS= read -r line; do ask "$line"; done \
    < "$WORK/after.commands" >> "$OUT"
exec 3<&- 3>&-
wait "$SERVER_PID"

echo "== the crash is byte-invisible =="
diff ci/service_smoke.golden "$OUT"
echo "all $(wc -l < "$OUT") stitched responses match the golden"
