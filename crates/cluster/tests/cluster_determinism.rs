//! The cluster determinism law, end to end with real worker processes
//! and sockets.
//!
//! `shard_determinism.rs` (crates/bench) pinned the law for the
//! file-based PR 3 coordinator; this suite extends it to the transport
//! layer: a [`WorkerPool`] dispatching over stdio children and TCP
//! connections — including runs where a worker dies mid-job, straggles
//! past the deadline, or is killed outright — must merge to bytes
//! identical to [`run_in_process`]. `CARGO_BIN_EXE_cluster_worker`
//! names the worker binary cargo built for this test, so the stdio
//! cases cross the same process boundary CI's `cluster-smoke` job does.

use sc_cluster::{
    ChildStdio, ClusterCoordinator, InProcess, Tcp, TcpServer, Transport, TransportSpec,
    Unreliable, WorkerPool,
};
use sc_engine::shard::{run_in_process, ShardJob};
use sc_engine::{AdversarySpec, AttackScenario, ColorerSpec, Scenario, SourceSpec};
use sc_graph::generators;
use sc_stream::{QuerySchedule, StreamOrder};
use std::time::Duration;

const WORKER: &str = env!("CARGO_BIN_EXE_cluster_worker");

/// Healthy-worker deadline: far above any slice's runtime, so the only
/// timeouts these tests see are the deliberately injected ones.
const PATIENT: Duration = Duration::from_secs(120);

/// A small mixed grid: streaming + offline specs, a stored source
/// (exercising wire canonicalization of adjacency order), dynamic
/// (turnstile) sources under the sparse-recovery colorer, varied
/// arrival orders and checkpoint schedules.
fn grid_job() -> ShardJob {
    let family = SourceSpec::exact_degree(60, 6, 3);
    let stored = SourceSpec::stored(generators::gnp_with_max_degree(50, 5, 0.4, 2));
    ShardJob::Grid(vec![
        Scenario::new(family.clone(), ColorerSpec::Robust { beta: None })
            .with_order(StreamOrder::Shuffled(1))
            .with_seed(11)
            .with_schedule(QuerySchedule::EveryEdges(13)),
        Scenario::new(stored.clone(), ColorerSpec::RandEfficient)
            .with_order(StreamOrder::Interleaved(4))
            .with_seed(12),
        Scenario::new(family.clone(), ColorerSpec::Bg18 { buckets: None }).with_seed(13),
        Scenario::new(stored.clone(), ColorerSpec::StoreAll)
            .with_seed(14)
            .with_schedule(QuerySchedule::AtPrefixes(vec![9, 30, 9])),
        Scenario::new(family.clone(), ColorerSpec::PaletteSparsification { lists: Some(6) })
            .with_order(StreamOrder::HubsLast)
            .with_seed(15),
        Scenario::new(stored, ColorerSpec::OfflineGreedy).with_seed(16),
        Scenario::new(SourceSpec::churn(48, 5, 17, 4), ColorerSpec::DynamicSr { sparsity: None })
            .with_seed(17)
            .with_schedule(QuerySchedule::EveryEdges(19)),
        Scenario::new(
            SourceSpec::sliding_window(40, 5, 18, 24),
            ColorerSpec::DynamicSr { sparsity: None },
        )
        .with_seed(18),
    ])
}

fn attack_job() -> ShardJob {
    ShardJob::Attack {
        scenario: AttackScenario::new(
            ColorerSpec::PaletteSparsification { lists: Some(3) },
            AdversarySpec::Monochromatic,
            50,
            12,
        )
        .with_rounds(300)
        .with_seed(70),
        trials: 7,
    }
}

fn stdio_fleet(workers: usize) -> Vec<Box<dyn Transport>> {
    (0..workers)
        .map(|_| {
            Box::new(ChildStdio::spawn(WORKER, &[] as &[&str]).expect("spawn cluster_worker"))
                as Box<dyn Transport>
        })
        .collect()
}

#[test]
fn stdio_fleets_merge_byte_identically() {
    for job in [grid_job(), attack_job()] {
        let reference = run_in_process(&job, 1).unwrap().encode();
        for workers in [1usize, 2, 7] {
            let report =
                WorkerPool::new(stdio_fleet(workers)).with_timeout(PATIENT).dispatch(&job).unwrap();
            assert_eq!(
                report.outcome.encode(),
                reference,
                "{workers} stdio worker(s) diverged from the single-process run"
            );
            assert_eq!(report.retries, 0, "healthy fleet must not retry");
        }
    }
}

#[test]
fn tcp_fleets_merge_byte_identically() {
    let job = grid_job();
    let reference = run_in_process(&job, 1).unwrap().encode();
    let connections = 3usize;
    let server = TcpServer::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let listener = std::thread::spawn(move || server.run(Some(connections)).unwrap());

    let coordinator =
        ClusterCoordinator::new(TransportSpec::Tcp { addr, connections }).with_timeout(PATIENT);
    let report = coordinator.run(&job).unwrap();
    assert_eq!(report.outcome.encode(), reference, "tcp fleet diverged");
    assert_eq!(report.shards, connections);
    listener.join().unwrap();
}

#[test]
#[cfg(unix)]
fn worker_dying_mid_job_is_retried_byte_identically() {
    // The satellite case: a ChildStdio worker that *accepts* its
    // dispatch line and then dies before answering — `read` consumes the
    // job, `exit 3` is the crash. The pool must detect the closed pipe
    // and re-dispatch the orphaned slice to a healthy worker with
    // byte-identical merged output.
    for job in [grid_job(), attack_job()] {
        let reference = run_in_process(&job, 1).unwrap().encode();
        let mut fleet = stdio_fleet(2);
        fleet.insert(
            1,
            Box::new(
                ChildStdio::spawn("sh", &["-c", "read line; exit 3"]).expect("spawn sh worker"),
            ),
        );
        let mut pool = WorkerPool::new(fleet).with_timeout(PATIENT);
        let report = pool.dispatch(&job).unwrap();
        assert_eq!(report.outcome.encode(), reference, "retried merge diverged");
        assert_eq!(report.retries, 1, "{:?}", report.failures);
        assert_eq!(report.failures.len(), 1, "{:?}", report.failures);
        assert!(report.failures[0].contains("closed"), "{:?}", report.failures);
        assert_eq!(pool.live_workers(), 2);
        // The pool stays serviceable after the death.
        let again = pool.dispatch(&job).unwrap();
        assert_eq!(again.outcome.encode(), reference);
        assert_eq!(again.retries, 0);
    }
}

#[test]
fn killed_worker_is_detected_and_its_shard_re_dispatched() {
    let job = grid_job();
    let reference = run_in_process(&job, 1).unwrap().encode();
    // Kill one worker outright (machine loss) before dispatch: its pipe
    // may still accept the job bytes, but no response ever comes.
    let mut doomed = ChildStdio::spawn(WORKER, &[] as &[&str]).expect("spawn cluster_worker");
    doomed.kill();
    let fleet: Vec<Box<dyn Transport>> = vec![
        Box::new(ChildStdio::spawn(WORKER, &[] as &[&str]).expect("spawn cluster_worker")),
        Box::new(doomed),
        Box::new(ChildStdio::spawn(WORKER, &[] as &[&str]).expect("spawn cluster_worker")),
    ];
    let mut pool = WorkerPool::new(fleet).with_timeout(PATIENT);
    let report = pool.dispatch(&job).unwrap();
    assert_eq!(report.outcome.encode(), reference, "merge after kill diverged");
    // The death surfaced at *send* time (closed pipe), so the slice was
    // reassigned before it ever ran — a failure, not a retry…
    assert_eq!(report.retries, 0, "{:?}", report.failures);
    assert!(!report.failures.is_empty(), "the kill must be recorded");
    // …and the shard count was fixed from the live-worker count before
    // the death was discovered (the partition never re-shrinks).
    assert_eq!(report.shards, 3);
    assert_eq!(pool.live_workers(), 2);
}

#[test]
#[cfg(unix)]
fn straggler_times_out_and_its_shard_is_re_dispatched() {
    let job = grid_job();
    let reference = run_in_process(&job, 1).unwrap().encode();
    // One worker that never answers: the pool's deadline must fire and
    // move its slice, not hang the merge.
    let fleet: Vec<Box<dyn Transport>> = vec![
        Box::new(ChildStdio::spawn(WORKER, &[] as &[&str]).expect("spawn cluster_worker")),
        // `exec` so the kill on drop reaches the sleeper itself — a
        // forked grandchild would outlive the test holding its pipes.
        Box::new(
            ChildStdio::spawn("sh", &["-c", "exec sleep 600"]).expect("spawn sleeping worker"),
        ),
    ];
    let mut pool = WorkerPool::new(fleet).with_timeout(Duration::from_millis(400));
    let report = pool.dispatch(&job).unwrap();
    assert_eq!(report.outcome.encode(), reference, "post-straggler merge diverged");
    assert_eq!(report.retries, 1, "{:?}", report.failures);
    assert!(report.failures[0].contains("no response within"), "{:?}", report.failures);
}

#[test]
fn heterogeneous_fleets_mix_transports_freely() {
    // One pool, three transport kinds — the pool only sees lines.
    let job = grid_job();
    let reference = run_in_process(&job, 1).unwrap().encode();
    let server = TcpServer::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let listener = std::thread::spawn(move || server.run(Some(1)).unwrap());
    let fleet: Vec<Box<dyn Transport>> = vec![
        Box::new(InProcess::new()),
        Box::new(ChildStdio::spawn(WORKER, &[] as &[&str]).expect("spawn cluster_worker")),
        Box::new(Tcp::connect(&addr).expect("connect")),
        Box::new(Unreliable::dying_after(InProcess::new(), 0)),
    ];
    let mut pool = WorkerPool::new(fleet).with_timeout(PATIENT);
    let report = pool.dispatch(&job).unwrap();
    assert_eq!(report.outcome.encode(), reference, "mixed fleet diverged");
    assert_eq!(report.retries, 1, "the unreliable member must have died");
    drop(pool);
    listener.join().unwrap();
}

#[test]
fn attack_sweeps_survive_tcp_with_a_dying_connection() {
    // The adversarial-trial shape over TCP, with one connection served
    // then dropped by the remote end mid-fleet: merge still exact.
    let job = attack_job();
    let reference = run_in_process(&job, 1).unwrap().encode();
    let server = TcpServer::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let listener = std::thread::spawn(move || server.run(Some(2)).unwrap());
    let fleet: Vec<Box<dyn Transport>> = vec![
        Box::new(Tcp::connect(&addr).expect("connect")),
        Box::new(Unreliable::dying_after(Tcp::connect(&addr).expect("connect"), 0)),
    ];
    let mut pool = WorkerPool::new(fleet).with_timeout(PATIENT);
    let report = pool.dispatch(&job).unwrap();
    assert_eq!(report.outcome.encode(), reference, "tcp merge with death diverged");
    assert_eq!(report.retries, 1);
    drop(pool);
    listener.join().unwrap();
}

#[test]
fn oversized_fleets_clamp_shards_and_leave_extras_idle() {
    // More workers than items: the shard count clamps to the job size,
    // the surplus workers never receive a line, and the merge is exact.
    let job = ShardJob::Grid(vec![
        Scenario::new(SourceSpec::exact_degree(40, 4, 1), ColorerSpec::Trivial),
        Scenario::new(SourceSpec::exact_degree(40, 4, 2), ColorerSpec::StoreAll),
    ]);
    let reference = run_in_process(&job, 1).unwrap().encode();
    let fleet: Vec<Box<dyn Transport>> =
        (0..5).map(|_| Box::new(InProcess::new()) as Box<dyn Transport>).collect();
    let mut pool = WorkerPool::new(fleet).with_timeout(PATIENT);
    let report = pool.dispatch(&job).unwrap();
    assert_eq!(report.outcome.encode(), reference, "oversized fleet diverged");
    assert_eq!(report.shards, 2, "shards must clamp to the job size");
    assert_eq!(report.retries, 0);
    assert_eq!(pool.live_workers(), 5, "idle workers must stay healthy");
}

#[test]
fn single_shard_jobs_ride_one_worker_of_many() {
    let job = ShardJob::Grid(vec![Scenario::new(
        SourceSpec::exact_degree(40, 4, 9),
        ColorerSpec::Robust { beta: None },
    )]);
    let reference = run_in_process(&job, 1).unwrap().encode();
    let report = WorkerPool::new(stdio_fleet(3)).with_timeout(PATIENT).dispatch(&job).unwrap();
    assert_eq!(report.outcome.encode(), reference, "single-shard merge diverged");
    assert_eq!(report.shards, 1);
    assert_eq!(report.retries, 0);
}

#[test]
#[cfg(unix)]
fn all_but_one_worker_dying_mid_steal_still_merges() {
    // Three of four real processes accept their first line and crash;
    // the lone survivor steals every orphaned slice.
    let job = grid_job();
    let reference = run_in_process(&job, 1).unwrap().encode();
    let mut fleet = stdio_fleet(1);
    for _ in 0..3 {
        fleet.push(Box::new(
            ChildStdio::spawn("sh", &["-c", "read line; exit 3"]).expect("spawn sh worker"),
        ));
    }
    let mut pool = WorkerPool::new(fleet).with_timeout(PATIENT);
    let report = pool.dispatch(&job).unwrap();
    assert_eq!(report.outcome.encode(), reference, "survivor's merge diverged");
    assert_eq!(report.shards, 4, "shards are fixed before the deaths surface");
    assert_eq!(report.retries, 3, "{:?}", report.failures);
    assert_eq!(report.failures.len(), 3, "{:?}", report.failures);
    assert_eq!(pool.live_workers(), 1);
}

#[test]
#[cfg(unix)]
fn ssh_transport_reaches_a_worker_through_a_stand_in_client() {
    // End-to-end over the Ssh transport with a stand-in `ssh` client: a
    // shell script that accepts the client arguments (-o BatchMode=yes
    // -T host path serve) and execs the real worker binary, exactly as a
    // remote `ssh host streamcolor serve` would land on a serve loop.
    use std::io::Write;
    use std::os::unix::fs::PermissionsExt;
    let script = std::env::temp_dir().join(format!("fake-ssh-{}.sh", std::process::id()));
    {
        let mut f = std::fs::File::create(&script).expect("write fake ssh");
        writeln!(f, "#!/bin/sh\nexec \"{WORKER}\"").unwrap();
        f.set_permissions(std::fs::Permissions::from_mode(0o755)).unwrap();
    }
    let job = grid_job();
    let reference = run_in_process(&job, 1).unwrap().encode();
    let fleet: Vec<Box<dyn Transport>> = (0..2)
        .map(|_| {
            Box::new(
                sc_cluster::Ssh::connect_via(script.to_str().unwrap(), "builder@localhost")
                    .expect("fake ssh spawn"),
            ) as Box<dyn Transport>
        })
        .collect();
    let describe = fleet[0].describe();
    assert!(describe.contains("ssh://builder@localhost"), "{describe}");
    let report = WorkerPool::new(fleet).with_timeout(PATIENT).dispatch(&job).unwrap();
    std::fs::remove_file(&script).ok();
    assert_eq!(report.outcome.encode(), reference, "ssh fleet diverged");
    assert_eq!(report.retries, 0, "{:?}", report.failures);
}
