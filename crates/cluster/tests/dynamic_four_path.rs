//! The turnstile four-path byte-identity law.
//!
//! One deletion-bearing (churn) scenario, property-tested across seeds,
//! must produce the same answers through every route the workspace can
//! run it:
//!
//! 1. the in-process [`Runner`] (signed engine route),
//! 2. `streamcolor serve` behind the single-threaded [`Reactor`],
//! 3. `streamcolor serve` behind the per-connection [`TcpServer`],
//! 4. `streamcolor shard --transport tcp` (a [`ClusterCoordinator`]
//!    dispatching the scenario over sockets),
//!
//! plus a snapshot/restore of the serve session at a **random cut** —
//! possibly between a delete and the re-insert it pairs with — onto a
//! fresh host. Paths 2, 3, and the restored run are compared line by
//! line (byte-for-byte) against an isolated `Service`; path 1's final
//! coloring is compared against the wire coloring parsed back out of
//! the serve transcript; path 4 is compared against the single-process
//! shard reference, whose outcome embeds path 1's bytes.

use proptest::prelude::*;
use sc_cluster::transport::{Tcp, Transport as _};
use sc_cluster::{ClusterCoordinator, Reactor, TcpServer, TransportSpec};
use sc_engine::flatjson::{encode_object, parse_object, FlatObject, Scalar};
use sc_engine::shard::{run_in_process, ShardJob};
use sc_engine::{ColorerSpec, Runner, Scenario, SourceSpec};
use sc_service::service::parse_coloring;
use sc_service::Service;
use sc_stream::encode_signed_list;
use std::time::Duration;

const TICK: Duration = Duration::from_secs(120);

/// SplitMix64, for deriving scenario parameters from one proptest seed.
struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        ((self.next() as u128 * n as u128) >> 64) as u64
    }
}

/// The serve-side transcript of the scenario: open with the same
/// `(n, delta, seed)` the runner's signed route uses, then the exact
/// token sequence chunked arbitrarily across both signed vocabularies
/// (single tokens ride `push` with a `"sign"` field, runs ride
/// `push_batch` with `±u-v` tokens), then observe/stats/finish.
fn serve_script(name: &str, source: &SourceSpec, victim_seed: u64, rng: &mut Gen) -> Vec<String> {
    let tokens = source.signed_tokens();
    let n = source.materialize().n();
    let delta = source.stream_delta();
    let mut lines = vec![format!(
        r#"{{"cmd":"open","session":"{name}","n":{n},"delta":{delta},"colorer":"dynamic-sr","seed":{victim_seed}}}"#
    )];
    let mut i = 0;
    while i < tokens.len() {
        let k = 1 + rng.below(5) as usize;
        let end = (i + k).min(tokens.len());
        if end == i + 1 && rng.below(2) == 0 {
            let t = tokens[i];
            let sign = if t.is_insert() { "insert" } else { "delete" };
            lines.push(format!(
                r#"{{"cmd":"push","session":"{name}","edge":"{}-{}","sign":"{sign}"}}"#,
                t.edge.u(),
                t.edge.v()
            ));
        } else {
            lines.push(format!(
                r#"{{"cmd":"push_batch","session":"{name}","edges":"{}"}}"#,
                encode_signed_list(&tokens[i..end])
            ));
        }
        i = end;
    }
    lines.push(format!(r#"{{"cmd":"observe","session":"{name}"}}"#));
    lines.push(format!(r#"{{"cmd":"stats","session":"{name}"}}"#));
    lines.push(format!(r#"{{"cmd":"finish","session":"{name}"}}"#));
    lines
}

/// Runs the script lock-step over one TCP connection against whatever
/// listener is behind `addr`: each line waits for its response.
fn run_over_wire(addr: &str, lines: &[String]) -> Vec<String> {
    let mut t = Tcp::connect(addr).unwrap();
    lines
        .iter()
        .map(|line| {
            t.send(line).unwrap();
            t.recv(TICK).unwrap()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn deletion_bearing_scenarios_agree_across_all_four_paths(seed in any::<u64>()) {
        let mut rng = Gen::new(seed);
        let n = 20 + rng.below(12) as usize;
        let delta = 3 + rng.below(3) as usize;
        let rounds = 1 + rng.below(3) as usize;
        let victim_seed = rng.next();
        let source = SourceSpec::churn(n, delta, rng.next(), rounds);
        prop_assert!(
            source.signed_tokens().iter().any(|t| !t.is_insert()),
            "churn with oscillation rounds must carry deletions"
        );

        // Path 1: the in-process runner's signed route.
        let scenario = Scenario::new(source.clone(), ColorerSpec::DynamicSr { sparsity: None })
            .with_seed(victim_seed);
        let outcome = Runner::sequential().run(&scenario);
        prop_assert!(outcome.proper, "dynamic run must color the live graph properly");

        // Isolated serve reference: the same tokens as protocol lines
        // against one fresh in-process Service.
        let lines = serve_script("t", &source, victim_seed, &mut rng);
        let mut isolated = Service::new();
        let reference: Vec<String> =
            lines.iter().map(|l| isolated.respond(l).expect("script lines answer")).collect();

        // The serve transcript's final coloring is the runner's, byte
        // for byte through the wire encoding.
        let observed = parse_object(&reference[lines.len() - 3]).unwrap();
        let text = observed.get("coloring").and_then(Scalar::as_str).unwrap();
        let colors = observed.get("colors").and_then(Scalar::as_u64).unwrap() as usize;
        prop_assert_eq!(parse_coloring(text, n).unwrap(), outcome.coloring.clone());
        prop_assert_eq!(colors, outcome.colors);

        // Path 2: the reactor (one thread, shared Service).
        let mut reactor = Reactor::bind("127.0.0.1:0").unwrap();
        let reactor_addr = reactor.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || reactor.run(Some(1)).unwrap());
        let via_reactor = run_over_wire(&reactor_addr, &lines);
        handle.join().unwrap();
        prop_assert_eq!(&via_reactor, &reference, "reactor diverged from isolated service");

        // Path 3: the per-connection TcpServer.
        let server = TcpServer::bind("127.0.0.1:0").unwrap();
        let server_addr = server.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || server.run(Some(1)).unwrap());
        let via_threads = run_over_wire(&server_addr, &lines);
        handle.join().unwrap();
        prop_assert_eq!(&via_threads, &reference, "per-connection server diverged");

        // Snapshot/restore at a random cut — possibly mid-oscillation,
        // between a delete and its re-insert — onto a fresh host. The
        // tail of the restored transcript must match the uninterrupted
        // reference byte for byte.
        let cut = 1 + rng.below(lines.len() as u64 - 1) as usize;
        let mut before = Service::new();
        for line in &lines[..cut] {
            before.respond(line).unwrap();
        }
        let snap = before.respond(r#"{"cmd":"snapshot","session":"t"}"#).unwrap();
        let blob = parse_object(&snap).unwrap()["snapshot"].as_str().unwrap().to_string();
        let mut after = Service::new();
        let mut restore = FlatObject::new();
        restore.insert("cmd".into(), Scalar::Str("restore".into()));
        restore.insert("session".into(), Scalar::Str("t".into()));
        restore.insert("snapshot".into(), Scalar::Str(blob));
        let restored = after.respond(&encode_object(&restore)).unwrap();
        prop_assert!(restored.contains("\"ok\":true"), "restore failed: {}", restored);
        let tail: Vec<String> =
            lines[cut..].iter().map(|l| after.respond(l).unwrap()).collect();
        prop_assert_eq!(
            &tail[..],
            &reference[cut..],
            "restored session diverged after cut {}",
            cut
        );

        // Path 4: the cluster coordinator dispatching the same scenario
        // over a real TCP worker, merged bytes identical to the
        // single-process shard run (which embeds path 1's outcome).
        let job = ShardJob::Grid(vec![scenario]);
        let shard_reference = run_in_process(&job, 1).unwrap().encode();
        let server = TcpServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let listener = std::thread::spawn(move || server.run(Some(1)).unwrap());
        let report = ClusterCoordinator::new(TransportSpec::Tcp { addr, connections: 1 })
            .with_timeout(TICK)
            .run(&job)
            .unwrap();
        listener.join().unwrap();
        prop_assert_eq!(report.outcome.encode(), shard_reference, "tcp shard diverged");
    }
}
