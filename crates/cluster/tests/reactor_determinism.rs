//! The reactor's multi-tenant determinism law, proven over real
//! sockets: K sessions interleaved over **one** reactor (one thread,
//! one shared `Service`) answer byte-for-byte what K isolated runs
//! answer — under any connection interleaving — plus the eviction
//! behaviors (idle timeout with an injected clock, LRU at the session
//! cap, evict-then-reopen replay) and a ≥256-connection soak diffed
//! against the per-connection `TcpServer` reference.

use sc_cluster::transport::{Tcp, Transport as _};
use sc_cluster::{Reactor, TcpServer};
use sc_service::Service;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const TICK: Duration = Duration::from_secs(30);

/// The per-session scripts the interleaving tests run: distinct
/// algorithms, engine configs, and edge streams so a cross-session state
/// leak cannot cancel out.
fn session_scripts() -> Vec<Vec<String>> {
    let mut scripts = Vec::new();
    for (i, (colorer, extra)) in [
        ("robust", ""),
        ("store-all", r#","engine":"chunk=4;schedule=every:5;incremental=true""#),
        ("bg18", ""),
        ("trivial", ""),
    ]
    .iter()
    .enumerate()
    {
        let name = format!("s{i}");
        let seed = 21 + i as u64;
        let mut lines = vec![format!(
            r#"{{"cmd":"open","session":"{name}","n":16,"delta":4,"colorer":"{colorer}","seed":{seed}{extra}}}"#
        )];
        for (u, v) in [(0, 1), (1, 2), (2, 3), (0, 4), (4, 5), (3 + i, 7 + i)] {
            lines.push(format!(r#"{{"cmd":"push","session":"{name}","edge":"{u}-{v}"}}"#));
        }
        lines.push(format!(r#"{{"cmd":"observe","session":"{name}"}}"#));
        lines.push(format!(r#"{{"cmd":"push_batch","session":"{name}","edges":"8-9 9-10"}}"#));
        lines.push(format!(r#"{{"cmd":"stats","session":"{name}"}}"#));
        lines.push(format!(r#"{{"cmd":"finish","session":"{name}"}}"#));
        scripts.push(lines);
    }
    // A fifth, turnstile tenant: the dynamic colorer fed through both
    // signed vocabularies (`"sign":"delete"` on push, `±u-v` tokens on
    // push_batch), so cross-session isolation is proven with deletions
    // in the interleaving. Every delete targets a then-live edge.
    scripts.push(
        [
            r#"{"cmd":"open","session":"s4","n":16,"delta":4,"colorer":"dynamic-sr","seed":25}"#,
            r#"{"cmd":"push","session":"s4","edge":"0-1"}"#,
            r#"{"cmd":"push","session":"s4","edge":"1-2"}"#,
            r#"{"cmd":"push_batch","session":"s4","edges":"+2-3 -1-2 +3-4"}"#,
            r#"{"cmd":"push","session":"s4","edge":"0-1","sign":"delete"}"#,
            r#"{"cmd":"observe","session":"s4"}"#,
            r#"{"cmd":"push_batch","session":"s4","edges":"8-9 9-10"}"#,
            r#"{"cmd":"stats","session":"s4"}"#,
            r#"{"cmd":"finish","session":"s4"}"#,
        ]
        .map(String::from)
        .to_vec(),
    );
    scripts
}

/// The isolated reference: each script against its own fresh `Service`.
fn isolated_reference(scripts: &[Vec<String>]) -> Vec<Vec<String>> {
    scripts
        .iter()
        .map(|lines| {
            let mut service = Service::new();
            lines.iter().map(|l| service.respond(l).expect("command lines answer")).collect()
        })
        .collect()
}

/// Interleaves script line indices: round-robin, reversed session order,
/// and a deterministic skewed shuffle (session i advances i+1 lines per
/// visit).
fn interleavings(scripts: &[Vec<String>]) -> Vec<Vec<(usize, usize)>> {
    let k = scripts.len();
    let mut plans = Vec::new();
    // Round-robin.
    let mut plan = Vec::new();
    let mut cursors = vec![0usize; k];
    loop {
        let mut progressed = false;
        for (s, cursor) in cursors.iter_mut().enumerate() {
            if *cursor < scripts[s].len() {
                plan.push((s, *cursor));
                *cursor += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    plans.push(plan);
    // Reverse session order, bursts of 2.
    let mut plan = Vec::new();
    let mut cursors = vec![0usize; k];
    loop {
        let mut progressed = false;
        for s in (0..k).rev() {
            for _ in 0..2 {
                if cursors[s] < scripts[s].len() {
                    plan.push((s, cursors[s]));
                    cursors[s] += 1;
                    progressed = true;
                }
            }
        }
        if !progressed {
            break;
        }
    }
    plans.push(plan);
    // Skewed: session i advances i+1 lines per visit.
    let mut plan = Vec::new();
    let mut cursors = vec![0usize; k];
    loop {
        let mut progressed = false;
        for (s, cursor) in cursors.iter_mut().enumerate() {
            for _ in 0..=s {
                if *cursor < scripts[s].len() {
                    plan.push((s, *cursor));
                    *cursor += 1;
                    progressed = true;
                }
            }
        }
        if !progressed {
            break;
        }
    }
    plans.push(plan);
    plans
}

#[test]
fn interleaved_reactor_sessions_match_isolated_runs_byte_for_byte() {
    let scripts = session_scripts();
    let reference = isolated_reference(&scripts);
    for plan in interleavings(&scripts) {
        let mut reactor = Reactor::bind("127.0.0.1:0").unwrap();
        let addr = reactor.local_addr().unwrap().to_string();
        let k = scripts.len();
        let handle = std::thread::spawn(move || reactor.run(Some(k)).unwrap());

        // One connection per session, lock-step: each command waits for
        // its response before the next command (of any session) is sent
        // — so the service really does see this exact interleaving.
        let mut conns: Vec<Tcp> = (0..k).map(|_| Tcp::connect(&addr).unwrap()).collect();
        let mut got: Vec<Vec<String>> = vec![Vec::new(); k];
        for (s, line_idx) in plan {
            conns[s].send(&scripts[s][line_idx]).unwrap();
            got[s].push(conns[s].recv(TICK).unwrap());
        }
        drop(conns);
        handle.join().unwrap();
        assert_eq!(got, reference, "interleaved run diverged from isolated reference");
    }
}

#[test]
fn soak_256_connections_match_per_connection_reference() {
    // Each of 256 clients runs a tiny distinct session script,
    // pipelined; the responses must be identical whether a reactor (one
    // thread, shared Service) or the per-connection TcpServer (a thread
    // and private Service each) answers.
    const CLIENTS: usize = 256;
    let scripts: Vec<Vec<String>> = (0..CLIENTS)
        .map(|i| {
            let name = format!("c{i}");
            let colorer = ["trivial", "store-all", "robust", "dynamic-sr"][i % 4];
            let mut lines = vec![
                format!(
                    r#"{{"cmd":"open","session":"{name}","n":12,"delta":3,"colorer":"{colorer}","seed":{i}}}"#
                ),
                format!(r#"{{"cmd":"push","session":"{name}","edge":"{}-{}"}}"#, i % 4, 4 + i % 5),
            ];
            if colorer == "dynamic-sr" {
                // Turnstile clients retract and re-insert their edge, so
                // a quarter of the soak carries live deletions.
                lines.push(format!(
                    r#"{{"cmd":"push","session":"{name}","edge":"{}-{}","sign":"delete"}}"#,
                    i % 4,
                    4 + i % 5
                ));
                lines.push(format!(
                    r#"{{"cmd":"push_batch","session":"{name}","edges":"+{}-{}"}}"#,
                    i % 4,
                    4 + i % 5
                ));
            }
            lines.push(format!(r#"{{"cmd":"observe","session":"{name}"}}"#));
            lines.push(format!(r#"{{"cmd":"finish","session":"{name}"}}"#));
            lines
        })
        .collect();

    let run_against = |addr: String, scripts: &[Vec<String>]| -> Vec<Vec<String>> {
        let workers: Vec<_> = scripts
            .iter()
            .cloned()
            .map(|lines| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let mut t = Tcp::connect(&addr).unwrap();
                    for line in &lines {
                        t.send(line).unwrap();
                    }
                    lines.iter().map(|_| t.recv(TICK).unwrap()).collect::<Vec<_>>()
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    };

    let mut reactor = Reactor::bind("127.0.0.1:0").unwrap();
    let reactor_addr = reactor.local_addr().unwrap().to_string();
    let reactor_handle = std::thread::spawn(move || reactor.run(Some(CLIENTS)).unwrap());
    let from_reactor = run_against(reactor_addr, &scripts);
    reactor_handle.join().unwrap();

    let server = TcpServer::bind("127.0.0.1:0").unwrap();
    let server_addr = server.local_addr().unwrap().to_string();
    let server_handle = std::thread::spawn(move || server.run(Some(CLIENTS)).unwrap());
    let from_threads = run_against(server_addr, &scripts);
    server_handle.join().unwrap();

    assert_eq!(from_reactor, from_threads, "reactor and per-connection responses diverged");
}

#[test]
fn idle_connections_are_evicted_on_the_injected_clock() {
    // A fake clock: an atomic tick count layered on a fixed origin. The
    // reactor samples it on every loop wake, so advancing it past the
    // timeout evicts the idle connection without any real waiting.
    let origin = Instant::now();
    let offset = Arc::new(AtomicU64::new(0));
    let clock_offset = Arc::clone(&offset);
    let mut reactor = Reactor::bind("127.0.0.1:0")
        .unwrap()
        .with_idle_timeout(Duration::from_secs(3600))
        .with_clock(Arc::new(move || {
            origin + Duration::from_secs(clock_offset.load(Ordering::SeqCst))
        }));
    let addr = reactor.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || reactor.run(Some(1)).unwrap());

    let mut t = Tcp::connect(&addr).unwrap();
    t.send(r#"{"cmd":"open","session":"x","n":10,"colorer":"trivial"}"#).unwrap();
    assert!(t.recv(TICK).unwrap().contains("\"ok\":true"));

    // One hour and one second of fake time, then silence: the reactor's
    // next periodic sweep (a real-time tick, fake-time comparison) must
    // evict the connection — the client sees a close, never a hang.
    offset.store(3601, Ordering::SeqCst);
    let err = t.recv(TICK).unwrap_err();
    assert!(
        matches!(err, sc_cluster::TransportError::Closed(_)),
        "idle eviction must close the connection: got {err:?}"
    );
    handle.join().unwrap();
}

#[test]
fn lru_eviction_over_the_wire_errors_then_replays_on_reopen() {
    let mut reactor = Reactor::bind("127.0.0.1:0").unwrap().with_max_sessions(2);
    let addr = reactor.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || reactor.run(Some(1)).unwrap());

    let mut t = Tcp::connect(&addr).unwrap();
    let open = |name: &str| {
        format!(
            r#"{{"cmd":"open","session":"{name}","n":10,"delta":3,"colorer":"store-all","seed":5}}"#
        )
    };
    let ask = |t: &mut Tcp, line: &str| -> String {
        t.send(line).unwrap();
        t.recv(TICK).unwrap()
    };

    assert!(ask(&mut t, &open("a")).contains("\"ok\":true"));
    assert!(ask(&mut t, &open("b")).contains("\"ok\":true"));
    // Touch "a" so "b" is oldest, then open "c" at the cap: "b" is
    // evicted, the open succeeds (never an error, never an abort).
    assert!(ask(&mut t, r#"{"cmd":"push","session":"a","edge":"0-1"}"#).contains("\"ok\":true"));
    assert!(ask(&mut t, &open("c")).contains("\"ok\":true"));

    let tomb = ask(&mut t, r#"{"cmd":"push","session":"b","edge":"0-1"}"#);
    assert!(tomb.contains("\"ok\":false") && tomb.contains("session evicted (lru)"), "{tomb}");

    // host_stats (reactor-only counters) sees the eviction.
    let stats = ask(&mut t, r#"{"cmd":"host_stats","session":"probe"}"#);
    assert!(stats.contains("\"sessions_evicted\":1"), "{stats}");
    assert!(stats.contains("\"connections_open\":1"), "{stats}");

    // Reopening the evicted name replays byte-identically against a
    // fresh isolated service ("c" is evicted in turn — LRU).
    let replay_lines = [
        open("b"),
        r#"{"cmd":"push","session":"b","edge":"2-3"}"#.to_string(),
        r#"{"cmd":"observe","session":"b"}"#.to_string(),
        r#"{"cmd":"finish","session":"b"}"#.to_string(),
    ];
    let over_wire: Vec<String> = replay_lines.iter().map(|l| ask(&mut t, l)).collect();
    let mut isolated = Service::new();
    let reference: Vec<String> =
        replay_lines.iter().map(|l| isolated.respond(l).unwrap()).collect();
    assert_eq!(over_wire, reference, "evicted-then-reopened session must replay");

    drop(t);
    handle.join().unwrap();
}
