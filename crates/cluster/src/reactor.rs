//! The nonblocking serving core: one event loop, one shared
//! [`Service`], thousands of connections.
//!
//! [`TcpServer`](crate::TcpServer) (PR 5) spends a thread and a private
//! `Service` per connection — perfect isolation, but a thousand idle
//! dashboards cost a thousand stacks. The [`Reactor`] multiplexes every
//! accepted connection onto **one** thread with the `polling` readiness
//! API (see `crates/compat/README.md`): nonblocking accept, nonblocking
//! reads into per-connection line buffers, nonblocking writes out of
//! per-connection response queues.
//!
//! ## How isolation survives the sharing
//!
//! The per-connection listener's determinism law — K sessions
//! interleaved over one host answer byte-for-byte what K isolated runs
//! answer — survives because session keys are **owner-scoped**: the
//! shared [`Service`] keys tenants by `(connection id, name)`
//! ([`Service::respond_as`]), so two connections both opening `"alpha"`
//! own disjoint tenants, exactly as if each had a private host. A
//! connection's lines are applied in arrival order by a single thread,
//! so each session's state is a function of its own command sequence
//! alone. Proven in `tests/reactor_determinism.rs` (including a
//! 256-connection soak diffed against the per-connection reference).
//!
//! ## Backpressure and eviction
//!
//! * A connection's pending responses live in its own write buffer;
//!   when the buffer passes a high watermark the reactor **stops
//!   reading from that connection** (its interest drops to
//!   write-only) until the peer drains it below the low watermark. A
//!   slow reader stalls only its own pipeline, never the loop.
//! * [`Reactor::with_idle_timeout`] evicts connections whose last
//!   activity is older than the timeout (their sessions drop with
//!   them, like a disconnect). The clock is injected
//!   ([`Reactor::with_clock`]) so tests fire the timeout
//!   deterministically.
//! * [`Reactor::with_max_sessions`] bounds *total* open sessions
//!   across all connections; at the cap an `open` evicts the
//!   least-recently-used session ([`Service::with_lru_eviction`]) and
//!   the evicted owner gets an error response — never an abort — on
//!   its next command for that session.
//! * [`Reactor::with_shared_sessions`] drops the owner-scoping: every
//!   connection acts as one host-wide owner, session names become
//!   global, and sessions **outlive their connections**. This is the
//!   mode `streamcolor migrate` and reconnect-after-snapshot flows
//!   need — a fresh connection can address a session an earlier one
//!   opened.

use polling::{Event, Events, Poller};
use sc_service::Service;
use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Pause reading from a connection once this many response bytes are
/// queued for it…
const WRITE_HIGH_WATERMARK: usize = 1 << 20;
/// …and resume once the queue drains below this.
const WRITE_LOW_WATERMARK: usize = 1 << 18;
/// Nonblocking read chunk size.
const READ_CHUNK: usize = 16 * 1024;
/// The poller key reserved for the listener (connection ids start at 1).
const LISTENER_KEY: usize = 0;

/// A clock the reactor samples for idle-connection eviction — injected
/// so tests control time instead of sleeping through it.
pub type Clock = Arc<dyn Fn() -> Instant + Send + Sync>;

/// One multiplexed connection: its socket, its partial-line read buffer,
/// its pending-response write buffer, and its idle clock.
struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet terminated by `\n`.
    rbuf: Vec<u8>,
    /// Response bytes not yet accepted by the socket; `wpos` marks how
    /// far the front has been written (drained wholesale once the
    /// buffer empties, so no per-write memmove).
    wbuf: Vec<u8>,
    wpos: usize,
    last_activity: Instant,
    /// Peer half-closed its sending side; the connection closes once
    /// the write buffer drains.
    eof: bool,
    /// Reading is suspended (write buffer passed the high watermark)
    /// until the peer drains it below the low watermark.
    paused: bool,
}

impl Conn {
    fn pending_write(&self) -> usize {
        self.wbuf.len() - self.wpos
    }
}

/// The event-loop server behind `streamcolor serve --listen ADDR
/// --reactor`.
///
/// ```no_run
/// let mut reactor = sc_cluster::Reactor::bind("127.0.0.1:0").unwrap();
/// println!("listening on {}", reactor.local_addr().unwrap());
/// reactor.run(None).unwrap(); // serve forever
/// ```
pub struct Reactor {
    listener: TcpListener,
    max_sessions: Option<usize>,
    idle_timeout: Option<Duration>,
    clock: Clock,
    threads: usize,
    snapshot_dir: Option<std::path::PathBuf>,
    shared_sessions: bool,
}

impl Reactor {
    /// Binds `addr` (port 0 lets the OS pick; read it back with
    /// [`Reactor::local_addr`]).
    ///
    /// # Errors
    /// Propagates the bind failure.
    pub fn bind(addr: &str) -> std::io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            max_sessions: None,
            idle_timeout: None,
            clock: Arc::new(Instant::now),
            threads: 1,
            snapshot_dir: None,
            shared_sessions: false,
        })
    }

    /// Bounds open sessions across **all** connections; at the cap an
    /// `open` evicts the least-recently-used session (any connection)
    /// rather than erroring — the shared-host policy. See
    /// [`Service::with_lru_eviction`].
    #[must_use]
    pub fn with_max_sessions(mut self, limit: usize) -> Self {
        self.max_sessions = Some(limit);
        self
    }

    /// Evicts connections idle (no bytes received) for longer than
    /// `timeout`; their sessions drop exactly as on disconnect.
    #[must_use]
    pub fn with_idle_timeout(mut self, timeout: Duration) -> Self {
        self.idle_timeout = Some(timeout);
        self
    }

    /// Substitutes the idle-eviction clock (tests advance a fake clock
    /// instead of sleeping).
    #[must_use]
    pub fn with_clock(mut self, clock: Clock) -> Self {
        self.clock = clock;
        self
    }

    /// Thread count handed to the shared [`Service`] (only `run_job`
    /// fan-out uses it; session commands are always loop-serial).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Upgrades LRU eviction from evict-to-tombstone to evict-to-disk
    /// ([`Service::with_snapshot_dir`]): the victim's snapshot blob
    /// lands in `dir` and its next command transparently restores it —
    /// `serve --reactor --snapshot-dir DIR`.
    #[must_use]
    pub fn with_snapshot_dir(mut self, dir: std::path::PathBuf) -> Self {
        self.snapshot_dir = Some(dir);
        self
    }

    /// Makes session names host-global instead of per-connection: every
    /// connection speaks as one shared owner, and sessions survive
    /// their opener's disconnect (they end only on `finish`, eviction,
    /// or process exit). Two clients opening the same name now collide
    /// — that is the point: `streamcolor migrate` can dial in fresh and
    /// address a session another client opened —
    /// `serve --reactor --shared-sessions`.
    #[must_use]
    pub fn with_shared_sessions(mut self) -> Self {
        self.shared_sessions = true;
        self
    }

    /// The bound address.
    ///
    /// # Errors
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the event loop. With `accept_limit: Some(n)` it stops
    /// accepting after `n` connections and returns once the last of
    /// them closes (tests and demos); with `None` it serves forever.
    ///
    /// Transient accept failures retry with the same classification as
    /// [`TcpServer::run`](crate::TcpServer::run); per-connection I/O
    /// errors close only that connection.
    ///
    /// # Errors
    /// Propagates fatal listener errors and poller failures.
    pub fn run(&mut self, accept_limit: Option<usize>) -> std::io::Result<()> {
        let mut service = Service::with_threads(self.threads);
        if let Some(limit) = self.max_sessions {
            service = service.with_max_sessions(limit).with_lru_eviction();
        }
        if let Some(dir) = &self.snapshot_dir {
            service = service.with_snapshot_dir(dir.clone());
        }

        self.listener.set_nonblocking(true)?;
        let poller = Poller::new()?;
        poller.add(&self.listener, Event::readable(LISTENER_KEY))?;

        let mut conns: BTreeMap<usize, Conn> = BTreeMap::new();
        let mut events = Events::with_capacity(256);
        let mut accepted = 0usize;
        let mut next_id = 1usize;

        loop {
            if let Some(limit) = accept_limit {
                if accepted >= limit && conns.is_empty() {
                    poller.delete(&self.listener)?;
                    return Ok(());
                }
            }

            // Sleep at most a tick when idle eviction is on, so the
            // sweep below runs even with no socket activity.
            let timeout = self.idle_timeout.map(|t| (t / 4).min(Duration::from_millis(25)));
            events.clear();
            poller.wait(&mut events, timeout)?;

            let mut touched: Vec<usize> = Vec::new();
            for event in events.iter() {
                if event.key == LISTENER_KEY {
                    self.accept_ready(
                        &poller,
                        &mut conns,
                        &mut next_id,
                        &mut accepted,
                        accept_limit,
                        &mut service,
                    )?;
                } else {
                    touched.push(event.key);
                }
            }

            let now = (self.clock)();
            for id in touched {
                let Some(conn) = conns.get_mut(&id) else { continue };
                let owner = if self.shared_sessions { 0 } else { id as u64 };
                let gone = step_conn(conn, owner, &mut service, now);
                if gone {
                    self.close_conn(&poller, &mut conns, id, &mut service, accepted);
                } else {
                    rearm(&poller, &mut conns, id)?;
                }
            }

            if let Some(idle) = self.idle_timeout {
                let now = (self.clock)();
                let doomed: Vec<usize> = conns
                    .iter()
                    .filter(|(_, c)| now.duration_since(c.last_activity) >= idle)
                    .map(|(id, _)| *id)
                    .collect();
                for id in doomed {
                    self.close_conn(&poller, &mut conns, id, &mut service, accepted);
                }
            }
        }
    }

    /// Drains the accept queue (the listener is armed oneshot, so it is
    /// re-armed afterwards — unless the accept limit is reached, which
    /// leaves it disarmed for good).
    fn accept_ready(
        &self,
        poller: &Poller,
        conns: &mut BTreeMap<usize, Conn>,
        next_id: &mut usize,
        accepted: &mut usize,
        accept_limit: Option<usize>,
        service: &mut Service,
    ) -> std::io::Result<()> {
        loop {
            if accept_limit.is_some_and(|limit| *accepted >= limit) {
                return Ok(());
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(true)?;
                    let _ = stream.set_nodelay(true);
                    let id = *next_id;
                    *next_id += 1;
                    *accepted += 1;
                    let conn = Conn {
                        stream,
                        rbuf: Vec::new(),
                        wbuf: Vec::new(),
                        wpos: 0,
                        last_activity: (self.clock)(),
                        eof: false,
                        paused: false,
                    };
                    poller.add(&conn.stream, Event::readable(id))?;
                    conns.insert(id, conn);
                    service.record_connections(conns.len() as u64, *accepted as u64);
                }
                Err(err) if err.kind() == ErrorKind::WouldBlock => break,
                // Transient per-attempt failures: skip this attempt; the
                // loop's poller wait is the backoff.
                Err(err) if crate::listener::is_transient_accept_error(&err) => break,
                Err(err) => return Err(err),
            }
        }
        if accept_limit.is_none_or(|limit| *accepted < limit) {
            poller.modify(&self.listener, Event::readable(LISTENER_KEY))?;
        }
        Ok(())
    }

    /// Closes a connection: deregisters the socket, drops its sessions
    /// ([`Service::drop_owner`] — same fate as a per-connection
    /// `Service` dying with its thread; skipped under
    /// [`Reactor::with_shared_sessions`], where sessions outlive
    /// connections), updates the host's connection gauge.
    fn close_conn(
        &self,
        poller: &Poller,
        conns: &mut BTreeMap<usize, Conn>,
        id: usize,
        service: &mut Service,
        accepted: usize,
    ) {
        if let Some(conn) = conns.remove(&id) {
            let _ = poller.delete(&conn.stream);
            if !self.shared_sessions {
                service.drop_owner(id as u64);
            }
            service.record_connections(conns.len() as u64, accepted as u64);
        }
    }
}

/// Services one readiness event on `conn`: drain the socket, answer
/// every complete line through the shared service (owner = connection
/// id, or 0 for every connection under shared sessions), flush
/// opportunistically. Returns `true` when the connection is finished
/// (peer gone, I/O error, or clean EOF with an empty write buffer).
fn step_conn(conn: &mut Conn, owner: u64, service: &mut Service, now: Instant) -> bool {
    // Read until the socket runs dry — but not while the peer refuses
    // to drain our responses (backpressure).
    let mut chunk = [0u8; READ_CHUNK];
    while !conn.eof && !conn.paused {
        match conn.stream.read(&mut chunk) {
            Ok(0) => conn.eof = true,
            Ok(n) => {
                conn.rbuf.extend_from_slice(&chunk[..n]);
                conn.last_activity = now;
            }
            Err(err) if err.kind() == ErrorKind::WouldBlock => break,
            Err(err) if err.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return true,
        }
    }

    // Answer complete lines in arrival order.
    while let Some(pos) = conn.rbuf.iter().position(|&b| b == b'\n') {
        let line: Vec<u8> = conn.rbuf.drain(..=pos).collect();
        let line = String::from_utf8_lossy(&line[..pos]);
        if let Some(response) = service.respond_as(owner, line.trim_end_matches('\r')) {
            conn.wbuf.extend_from_slice(response.as_bytes());
            conn.wbuf.push(b'\n');
        }
    }

    // Flush what the socket will take right now; leftovers arm write
    // interest in `rearm`.
    while conn.pending_write() > 0 {
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => return true,
            Ok(n) => conn.wpos += n,
            Err(err) if err.kind() == ErrorKind::WouldBlock => break,
            Err(err) if err.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return true,
        }
    }
    if conn.pending_write() == 0 {
        conn.wbuf.clear();
        conn.wpos = 0;
    }

    // Watermark hysteresis: pause reads above HIGH, resume below LOW.
    if conn.pending_write() >= WRITE_HIGH_WATERMARK {
        conn.paused = true;
    } else if conn.pending_write() < WRITE_LOW_WATERMARK {
        conn.paused = false;
    }

    conn.eof && conn.pending_write() == 0
}

/// Re-arms oneshot interest to match the connection's state: readable
/// unless backpressured, writable while responses are queued.
fn rearm(poller: &Poller, conns: &mut BTreeMap<usize, Conn>, id: usize) -> std::io::Result<()> {
    let Some(conn) = conns.get(&id) else { return Ok(()) };
    let read = !conn.eof && !conn.paused;
    let write = conn.pending_write() > 0;
    let interest = Event { key: id, readable: read, writable: write };
    poller.modify(&conn.stream, interest)
}
