//! The minimal cluster worker: `sc_service::Service` over stdin/stdout.
//!
//! Everything a remote shard worker needs is the service line protocol —
//! the coordinator dispatches `run_job` lines and this loop answers them
//! (plus the full session vocabulary, since it is the same `Service`).
//! `streamcolor serve` and `shard_worker --serve` are equivalent
//! endpoints; this binary exists so `sc-cluster`'s own tests and demos
//! can spawn a worker without depending on the CLI crate.
//!
//! ```text
//! cluster_worker [--max-sessions N]
//! ```

use std::process::ExitCode;

fn run() -> Result<(), String> {
    let mut service = sc_service::Service::new();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--max-sessions" => {
                let raw = it.next().ok_or("--max-sessions needs a value")?;
                let limit: usize =
                    raw.parse().map_err(|e| format!("bad --max-sessions {raw:?}: {e}"))?;
                service = service.with_max_sessions(limit);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    service.serve(stdin.lock(), &mut out).map_err(|e| e.to_string())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cluster_worker: {e}");
            ExitCode::FAILURE
        }
    }
}
