//! Drives a `streamcolor serve --listen` host (reactor or
//! per-connection) with a protocol script fanned across many concurrent
//! TCP connections, and reassembles the responses **in script order** so
//! the output is byte-comparable to `streamcolor serve --script` — the
//! CI `service-smoke` job diffs exactly that.
//!
//! ```text
//! reactor_client ADDR SCRIPT_FILE CONNECTIONS
//! ```
//!
//! Lines are routed to connections by session name (first-appearance
//! round-robin), so every session's commands travel one connection in
//! order — the determinism law then promises the same bytes the
//! single-host script run produces, whichever server mode answers.

use sc_cluster::transport::{Tcp, Transport as _};
use sc_engine::flatjson::parse_object;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [addr, script_path, conn_count] = args.as_slice() else {
        eprintln!("usage: reactor_client ADDR SCRIPT_FILE CONNECTIONS");
        std::process::exit(2);
    };
    let conn_count: usize = match conn_count.parse() {
        Ok(n) if n > 0 => n,
        _ => {
            eprintln!("CONNECTIONS must be a positive integer");
            std::process::exit(2);
        }
    };
    let script = match std::fs::read_to_string(script_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {script_path}: {e}");
            std::process::exit(2);
        }
    };

    // Route: responding lines (everything but blanks and comments) go to
    // the connection owning their session name, assigned round-robin by
    // first appearance. Unparseable lines have no session; they ride
    // connection 0 (any fixed choice works — reassembly is by index).
    let mut route_of: std::collections::BTreeMap<String, usize> = std::collections::BTreeMap::new();
    let mut per_conn: Vec<Vec<(usize, String)>> = vec![Vec::new(); conn_count];
    for (idx, line) in script.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let session = parse_object(line)
            .ok()
            .and_then(|obj| obj.get("session").and_then(|s| s.as_str().map(String::from)))
            .unwrap_or_default();
        let assigned = route_of.len() % conn_count;
        let conn = *route_of.entry(session).or_insert(assigned);
        per_conn[conn].push((idx, line.to_string()));
    }

    // One thread per connection: send every line, then collect exactly
    // one response per line, tagged with its script index.
    let workers: Vec<_> = per_conn
        .into_iter()
        .filter(|lines| !lines.is_empty())
        .map(|lines| {
            let addr = addr.clone();
            std::thread::spawn(move || -> Result<Vec<(usize, String)>, String> {
                let mut t = Tcp::connect(&addr)?;
                for (_, line) in &lines {
                    t.send(line).map_err(|e| e.to_string())?;
                }
                let mut out = Vec::with_capacity(lines.len());
                for (idx, _) in &lines {
                    let response =
                        t.recv(Duration::from_secs(60)).map_err(|e| format!("line {idx}: {e}"))?;
                    out.push((*idx, response));
                }
                Ok(out)
            })
        })
        .collect();

    let mut responses: Vec<Option<String>> = vec![None; script.lines().count()];
    for worker in workers {
        match worker.join().expect("client thread must not panic") {
            Ok(pairs) => {
                for (idx, response) in pairs {
                    responses[idx] = Some(response);
                }
            }
            Err(e) => {
                eprintln!("reactor_client: {e}");
                std::process::exit(1);
            }
        }
    }
    let mut stdout = String::new();
    for response in responses.into_iter().flatten() {
        stdout.push_str(&response);
        stdout.push('\n');
    }
    print!("{stdout}");
}
