//! The TCP serving surface: a socket listener wrapping
//! [`Service::serve`].
//!
//! Each accepted connection gets its **own fresh [`Service`]** on its
//! own thread — connections share nothing, so the per-session
//! determinism law carries over to the socket unchanged, and a client
//! crash can only ever take down its own tenants. This is the back end
//! of `streamcolor serve --listen ADDR`, and the endpoint
//! [`Tcp`](crate::transport::Tcp) transports dial.

use sc_service::Service;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};

/// A bound listener hosting one [`Service`] per connection.
///
/// ```no_run
/// let server = sc_cluster::TcpServer::bind("127.0.0.1:0").unwrap();
/// println!("listening on {}", server.local_addr().unwrap());
/// server.run(None).unwrap(); // serve forever
/// ```
pub struct TcpServer {
    listener: TcpListener,
    max_sessions: Option<usize>,
}

impl TcpServer {
    /// Binds `addr` (use port 0 to let the OS pick; read it back with
    /// [`TcpServer::local_addr`]).
    ///
    /// # Errors
    /// Propagates the bind failure.
    pub fn bind(addr: &str) -> std::io::Result<Self> {
        Ok(Self { listener: TcpListener::bind(addr)?, max_sessions: None })
    }

    /// Bounds open sessions per connection (see
    /// [`Service::with_max_sessions`]) — the "rogue client on a shared
    /// listener" guard.
    #[must_use]
    pub fn with_max_sessions(mut self, limit: usize) -> Self {
        self.max_sessions = Some(limit);
        self
    }

    /// The bound address.
    ///
    /// # Errors
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts connections, serving each on its own thread with a fresh
    /// [`Service`]. With `accept_limit: Some(n)` the loop returns after
    /// `n` connections, joining their serving threads first (tests and
    /// demos); with `None` it accepts forever.
    ///
    /// # Errors
    /// Propagates accept failures; per-connection I/O errors end only
    /// that connection.
    pub fn run(&self, accept_limit: Option<usize>) -> std::io::Result<()> {
        let mut handles = Vec::new();
        let mut accepted = 0usize;
        for stream in self.listener.incoming() {
            let stream = stream?;
            let max_sessions = self.max_sessions;
            let handle = std::thread::spawn(move || {
                // A dropped client mid-command is that client's problem
                // only — never the listener's.
                let _ = serve_connection(stream, max_sessions);
            });
            accepted += 1;
            match accept_limit {
                Some(limit) => {
                    handles.push(handle);
                    if accepted >= limit {
                        break;
                    }
                }
                None => drop(handle), // detach; the loop never ends
            }
        }
        for handle in handles {
            let _ = handle.join();
        }
        Ok(())
    }
}

fn serve_connection(stream: TcpStream, max_sessions: Option<usize>) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    let mut service = Service::new();
    if let Some(limit) = max_sessions {
        service = service.with_max_sessions(limit);
    }
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    service.serve(reader, &mut writer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{Tcp, Transport as _};
    use std::time::Duration;

    const TICK: Duration = Duration::from_secs(10);

    #[test]
    fn each_connection_is_an_isolated_service() {
        let server = TcpServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || server.run(Some(2)).unwrap());

        let mut a = Tcp::connect(&addr).unwrap();
        let mut b = Tcp::connect(&addr).unwrap();
        a.send(r#"{"cmd":"open","session":"x","n":10,"colorer":"trivial"}"#).unwrap();
        assert!(a.recv(TICK).unwrap().contains("\"ok\":true"));
        // The same name on another connection is a different service.
        b.send(r#"{"cmd":"open","session":"x","n":10,"colorer":"trivial"}"#).unwrap();
        assert!(b.recv(TICK).unwrap().contains("\"ok\":true"));
        b.send(r#"{"cmd":"finish","session":"x"}"#).unwrap();
        assert!(b.recv(TICK).unwrap().contains("\"ok\":true"));
        // a's tenant is untouched by b's finish.
        a.send(r#"{"cmd":"stats","session":"x"}"#).unwrap();
        assert!(a.recv(TICK).unwrap().contains("\"ok\":true"));
        drop(a);
        drop(b);
        handle.join().unwrap();
    }

    #[test]
    fn session_limit_is_enforced_per_connection() {
        let server = TcpServer::bind("127.0.0.1:0").unwrap().with_max_sessions(1);
        let addr = server.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || server.run(Some(1)).unwrap());

        let mut t = Tcp::connect(&addr).unwrap();
        t.send(r#"{"cmd":"open","session":"one","n":10,"colorer":"trivial"}"#).unwrap();
        assert!(t.recv(TICK).unwrap().contains("\"ok\":true"));
        t.send(r#"{"cmd":"open","session":"two","n":10,"colorer":"trivial"}"#).unwrap();
        let rejected = t.recv(TICK).unwrap();
        assert!(
            rejected.contains("\"ok\":false") && rejected.contains("session limit reached"),
            "{rejected}"
        );
        drop(t);
        handle.join().unwrap();
    }
}
