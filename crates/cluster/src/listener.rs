//! The TCP serving surface: a socket listener wrapping
//! [`Service::serve`].
//!
//! Each accepted connection gets its **own fresh [`Service`]** on its
//! own thread — connections share nothing, so the per-session
//! determinism law carries over to the socket unchanged, and a client
//! crash can only ever take down its own tenants. This is the back end
//! of `streamcolor serve --listen ADDR`, and the endpoint
//! [`Tcp`](crate::transport::Tcp) transports dial.

use sc_service::Service;
use std::io::{BufReader, ErrorKind};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

/// A bound listener hosting one [`Service`] per connection.
///
/// ```no_run
/// let server = sc_cluster::TcpServer::bind("127.0.0.1:0").unwrap();
/// println!("listening on {}", server.local_addr().unwrap());
/// server.run(None).unwrap(); // serve forever
/// ```
pub struct TcpServer {
    listener: TcpListener,
    max_sessions: Option<usize>,
}

impl TcpServer {
    /// Binds `addr` (use port 0 to let the OS pick; read it back with
    /// [`TcpServer::local_addr`]).
    ///
    /// # Errors
    /// Propagates the bind failure.
    pub fn bind(addr: &str) -> std::io::Result<Self> {
        Ok(Self { listener: TcpListener::bind(addr)?, max_sessions: None })
    }

    /// Bounds open sessions per connection (see
    /// [`Service::with_max_sessions`]) — the "rogue client on a shared
    /// listener" guard.
    #[must_use]
    pub fn with_max_sessions(mut self, limit: usize) -> Self {
        self.max_sessions = Some(limit);
        self
    }

    /// The bound address.
    ///
    /// # Errors
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts connections, serving each on its own thread with a fresh
    /// [`Service`]. With `accept_limit: Some(n)` the loop returns after
    /// `n` connections, joining their serving threads first (tests and
    /// demos); with `None` it accepts forever.
    ///
    /// Transient accept failures (a client resetting mid-handshake, a
    /// signal, a momentary fd or buffer shortage — see
    /// [`should_retry_accept`]) are retried with capped backoff instead
    /// of killing the listener: one flaky client must never take the
    /// serving surface down for everyone else.
    ///
    /// # Errors
    /// Propagates fatal (listener-level) accept failures; per-connection
    /// I/O errors end only that connection.
    pub fn run(&self, accept_limit: Option<usize>) -> std::io::Result<()> {
        let mut handles = Vec::new();
        let mut accepted = 0usize;
        let mut backoff = ACCEPT_BACKOFF_FLOOR;
        for stream in self.listener.incoming() {
            let stream = match stream {
                Ok(stream) => {
                    backoff = ACCEPT_BACKOFF_FLOOR;
                    stream
                }
                Err(err) if is_transient_accept_error(&err) => {
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(ACCEPT_BACKOFF_CEIL);
                    continue;
                }
                Err(err) => return Err(err),
            };
            let max_sessions = self.max_sessions;
            let handle = std::thread::spawn(move || {
                // A dropped client mid-command is that client's problem
                // only — never the listener's.
                let _ = serve_connection(stream, max_sessions);
            });
            accepted += 1;
            match accept_limit {
                Some(limit) => {
                    handles.push(handle);
                    if accepted >= limit {
                        break;
                    }
                }
                None => drop(handle), // detach; the loop never ends
            }
        }
        for handle in handles {
            let _ = handle.join();
        }
        Ok(())
    }
}

/// First sleep after a transient accept failure; doubles per
/// consecutive failure up to [`ACCEPT_BACKOFF_CEIL`], resets on the next
/// successful accept.
const ACCEPT_BACKOFF_FLOOR: Duration = Duration::from_millis(1);
/// Backoff cap — an fd-exhausted process retries forever at this pace
/// rather than exiting, since the condition clears when connections
/// close.
const ACCEPT_BACKOFF_CEIL: Duration = Duration::from_millis(250);

/// Is this `accept(2)` failure about *one connection attempt* (retry)
/// rather than the listening socket itself (fatal)?
///
/// Retryable: the peer aborted mid-handshake (`ECONNABORTED`,
/// `ECONNRESET`), a signal interrupted the call (`EINTR`), the process
/// or system momentarily ran out of descriptors or buffers (`EMFILE`,
/// `ENFILE`, `ENOBUFS`, `ENOMEM` — these clear as other connections
/// close), or a spurious wakeup (`EAGAIN`). Anything else — `EBADF`,
/// `EINVAL`, a closed listener — means the listening socket is broken
/// and looping would spin forever.
#[must_use]
pub fn should_retry_accept(kind: ErrorKind) -> bool {
    matches!(
        kind,
        ErrorKind::ConnectionAborted
            | ErrorKind::ConnectionReset
            | ErrorKind::Interrupted
            | ErrorKind::WouldBlock
            | ErrorKind::TimedOut
            | ErrorKind::OutOfMemory
    )
}

/// [`should_retry_accept`] plus the descriptor/buffer-exhaustion errnos
/// that map to `ErrorKind::Uncategorized` on stable (`EMFILE`, `ENFILE`,
/// `ENOBUFS`).
pub(crate) fn is_transient_accept_error(err: &std::io::Error) -> bool {
    const EMFILE: i32 = 24;
    const ENFILE: i32 = 23;
    const ENOBUFS: i32 = 105;
    should_retry_accept(err.kind()) || matches!(err.raw_os_error(), Some(EMFILE | ENFILE | ENOBUFS))
}

fn serve_connection(stream: TcpStream, max_sessions: Option<usize>) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    let mut service = Service::new();
    if let Some(limit) = max_sessions {
        service = service.with_max_sessions(limit);
    }
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    service.serve(reader, &mut writer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{Tcp, Transport as _};
    use std::time::Duration;

    const TICK: Duration = Duration::from_secs(10);

    #[test]
    fn each_connection_is_an_isolated_service() {
        let server = TcpServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || server.run(Some(2)).unwrap());

        let mut a = Tcp::connect(&addr).unwrap();
        let mut b = Tcp::connect(&addr).unwrap();
        a.send(r#"{"cmd":"open","session":"x","n":10,"colorer":"trivial"}"#).unwrap();
        assert!(a.recv(TICK).unwrap().contains("\"ok\":true"));
        // The same name on another connection is a different service.
        b.send(r#"{"cmd":"open","session":"x","n":10,"colorer":"trivial"}"#).unwrap();
        assert!(b.recv(TICK).unwrap().contains("\"ok\":true"));
        b.send(r#"{"cmd":"finish","session":"x"}"#).unwrap();
        assert!(b.recv(TICK).unwrap().contains("\"ok\":true"));
        // a's tenant is untouched by b's finish.
        a.send(r#"{"cmd":"stats","session":"x"}"#).unwrap();
        assert!(a.recv(TICK).unwrap().contains("\"ok\":true"));
        drop(a);
        drop(b);
        handle.join().unwrap();
    }

    #[test]
    fn session_limit_is_enforced_per_connection() {
        let server = TcpServer::bind("127.0.0.1:0").unwrap().with_max_sessions(1);
        let addr = server.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || server.run(Some(1)).unwrap());

        let mut t = Tcp::connect(&addr).unwrap();
        t.send(r#"{"cmd":"open","session":"one","n":10,"colorer":"trivial"}"#).unwrap();
        assert!(t.recv(TICK).unwrap().contains("\"ok\":true"));
        t.send(r#"{"cmd":"open","session":"two","n":10,"colorer":"trivial"}"#).unwrap();
        let rejected = t.recv(TICK).unwrap();
        assert!(
            rejected.contains("\"ok\":false") && rejected.contains("session limit reached"),
            "{rejected}"
        );
        drop(t);
        handle.join().unwrap();
    }

    #[test]
    fn transient_accept_errors_are_retryable_fatal_ones_are_not() {
        for kind in [
            ErrorKind::ConnectionAborted,
            ErrorKind::ConnectionReset,
            ErrorKind::Interrupted,
            ErrorKind::WouldBlock,
            ErrorKind::TimedOut,
            ErrorKind::OutOfMemory,
        ] {
            assert!(should_retry_accept(kind), "{kind:?} must be retried");
        }
        for kind in [
            ErrorKind::InvalidInput,
            ErrorKind::PermissionDenied,
            ErrorKind::NotFound,
            ErrorKind::BrokenPipe,
            ErrorKind::AddrInUse,
            ErrorKind::Unsupported,
        ] {
            assert!(!should_retry_accept(kind), "{kind:?} must stay fatal");
        }
    }

    #[test]
    fn fd_exhaustion_errnos_are_transient_via_raw_os_codes() {
        for errno in [23, 24, 105] {
            let err = std::io::Error::from_raw_os_error(errno);
            assert!(is_transient_accept_error(&err), "errno {errno} ({err}) must be retried");
        }
        // EBADF / EINVAL: the listener itself is broken — fatal.
        for errno in [9, 22] {
            let err = std::io::Error::from_raw_os_error(errno);
            assert!(!is_transient_accept_error(&err), "errno {errno} ({err}) must stay fatal");
        }
    }

    #[test]
    fn listener_survives_a_client_aborting_mid_handshake() {
        // A client that connects and vanishes immediately (RST via
        // linger-0 close) must not take the listener down: the next
        // well-behaved client still gets served. On most kernels the
        // aborted attempt surfaces as a short-lived connection rather
        // than an accept error — either way the accept loop must reach
        // the second client.
        let server = TcpServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || server.run(Some(2)).unwrap());

        let aborter = std::net::TcpStream::connect(&addr).unwrap();
        drop(aborter);

        let mut t = Tcp::connect(&addr).unwrap();
        t.send(r#"{"cmd":"open","session":"ok","n":10,"colorer":"trivial"}"#).unwrap();
        assert!(t.recv(TICK).unwrap().contains("\"ok\":true"));
        drop(t);
        handle.join().unwrap();
    }
}
