//! # `sc-cluster` — the machines half of sharding
//!
//! PR 3 fanned scenario grids and attack-trial sweeps across OS
//! *processes* (`sc_engine::shard`: spec files, `shard_worker`, a
//! file-based [`Coordinator`](sc_engine::Coordinator)); PR 4 proved the
//! whole interactive session vocabulary survives a byte-stable wire
//! (`sc-service`'s flat-JSON line protocol). This crate is the layer
//! those two were pointing at: ship a shard of a
//! [`ShardJob`](sc_engine::shard::ShardJob) to a **remote worker** over
//! a transport, fetch its output, survive stragglers and dead workers,
//! and merge **byte-identically** to the single-process reference.
//!
//! ```text
//!  ClusterCoordinator ─► WorkerPool ──┬─ Transport: InProcess  (loopback Service)
//!   (TransportSpec,      (work-       ├─ Transport: ChildStdio (spawn `streamcolor
//!    merge = shard        stealing    │     serve` / `shard_worker --serve` /
//!    determinism law)     slice queue │     `cluster_worker`, speak over its pipes)
//!                         + straggler ├─ Transport: Tcp        (connect to
//!                         timeout +   │     `streamcolor serve --listen ADDR`)
//!                         speculative └─ Transport: Ssh        (spawn `ssh host
//!                         re-dispatch)      streamcolor serve`, same pipes)
//! ```
//!
//! **Ownership contract** (see `ROADMAP.md`, "which layer owns what"):
//! this crate owns *placement and failure handling* — which worker runs
//! which `(spec, shard, of)` slice, when a slice is re-dispatched,
//! stolen, or speculated, and how transports carry protocol lines. It
//! owns **no wire vocabulary** (that is `sc-service`'s line protocol,
//! documented in `docs/PROTOCOL.md`) and **no job semantics** (what a
//! slice computes is fixed by `sc_engine::shard`'s deterministic
//! partition, which is what makes every scheduling decision
//! byte-invisible).
//!
//! ## The transport wire contract
//!
//! A cluster worker is **any `sc_service::Service` endpoint** — there is
//! no cluster-specific wire format. One dispatch is one protocol line in
//! each direction, both canonical [`sc_engine::flatjson`] objects:
//!
//! ```text
//! → {"cmd":"run_job","session":"shard-2","spec":"[\n  {…}\n]\n","shard":2,"of":4}
//! ← {"cmd":"run_job","of":4,"ok":true,"output":"[\n  {…}\n]\n","session":"shard-2","shard":2}
//! ```
//!
//! * `"spec"` is a whole [`ShardJob::encode`](sc_engine::shard::ShardJob::encode)
//!   spec file carried as a JSON string (the line codec escapes its
//!   newlines), so the sharding and serving vocabularies never fork —
//!   the same bytes a PR 3 spec *file* holds travel in the line.
//! * `"shard"`/`"of"` select the deterministic
//!   [`partition`](sc_engine::shard::partition) slice. Because shard `i`
//!   of `N` always owns the same items, **re-dispatching a shard to any
//!   other worker reproduces the same bytes** — the retry path needs no
//!   new wire format, only the `excluded`-style rule "never hand a shard
//!   back to a worker that failed it".
//! * `"output"` is the
//!   [`encode_worker_output`](sc_engine::shard::encode_worker_output)
//!   file verbatim (a `shard-result` header + outcome objects), so the
//!   pool validates the embedded `(shard, of)` header exactly like the
//!   file-based coordinator does.
//! * An `"ok":false` response is a **job error** (malformed spec, bad
//!   slice) and aborts the dispatch — every worker would answer the
//!   same. A transport failure (closed pipe, dead process, timeout) or
//!   a malformed/desynced response is a **worker error** and triggers
//!   re-dispatch to a healthy worker.
//! * Session ids are **tagged per dispatch** (`job3-shard-2`): a
//!   response still in flight when a dispatch aborts is recognized by
//!   its stale tag on the next dispatch and discarded, never merged.
//!
//! ## The determinism law, extended
//!
//! The merged output of a [`WorkerPool`] dispatch — for every transport,
//! every worker count, every scheduling mode (work stealing, static
//! partition, speculation on or off), and every schedule of worker
//! deaths, stragglers and re-dispatches that leaves at least one worker
//! alive — is byte-identical to [`sc_engine::shard::run_in_process`].
//! Work stealing and speculative duplicates are free determinism-wise
//! because a slice's bytes depend only on `(spec, shard, of)`, never on
//! which worker ran it or how many times. Tested in
//! `tests/cluster_determinism.rs` (including a worker killed mid-job)
//! and gated by CI's `cluster-smoke` job, which diffs
//! `streamcolor shard --transport {process,stdio,tcp}` — plus a
//! skewed-fleet stealing run — against the single-process JSON.

pub mod coordinator;
pub mod listener;
pub mod migrate;
pub mod pool;
pub mod reactor;
pub mod transport;

pub use coordinator::{ClusterCoordinator, TransportSpec};
pub use listener::{should_retry_accept, TcpServer};
pub use migrate::{migrate_session, MigrationReport};
pub use pool::{DispatchReport, WorkerPool};
pub use reactor::Reactor;
pub use transport::{ChildStdio, InProcess, Ssh, Tcp, Transport, TransportError, Unreliable};
