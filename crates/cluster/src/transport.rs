//! Transports: how one protocol line reaches a worker and its response
//! comes back.
//!
//! A transport is deliberately tiny — [`Transport::send`] one line,
//! [`Transport::recv`] one line with a deadline — because the whole
//! cluster vocabulary lives in the `sc-service` line protocol, not here.
//! Three real implementations cover the deployment spectrum
//! ([`InProcess`] loopback, [`ChildStdio`] pipes, [`Tcp`] sockets), and
//! [`Unreliable`] injects deterministic worker death for tests and the
//! `exp_cluster` retry-cost measurement.

use sc_service::Service;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Why a transport operation failed — the pool's retry logic branches on
/// this (every variant is a *worker* failure; job-level errors travel as
/// `"ok":false` protocol responses instead).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The other end is gone: closed pipe, dead process, dropped socket.
    Closed(String),
    /// No response line arrived within the deadline (a straggler).
    Timeout(Duration),
    /// The channel works but carried something unusable (bad UTF-8, a
    /// response to a line we never sent).
    Protocol(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Closed(why) => write!(f, "closed: {why}"),
            TransportError::Timeout(t) => write!(f, "no response within {t:?}"),
            TransportError::Protocol(why) => write!(f, "protocol: {why}"),
        }
    }
}

/// A bidirectional line channel to one worker endpoint.
///
/// Implementations must preserve line order (the pool correlates FIFO)
/// and must never block forever in [`Transport::recv`] — a straggling
/// worker surfaces as [`TransportError::Timeout`] so the pool can
/// re-dispatch its shard.
pub trait Transport: Send {
    /// A human-readable endpoint name for failure reports.
    fn describe(&self) -> String;

    /// Sends one protocol line (no trailing newline; the transport adds
    /// its own framing).
    ///
    /// # Errors
    /// [`TransportError::Closed`] when the worker is gone.
    fn send(&mut self, line: &str) -> Result<(), TransportError>;

    /// Receives the next response line, waiting at most `timeout`.
    ///
    /// # Errors
    /// [`TransportError::Timeout`] for stragglers, [`TransportError::Closed`]
    /// when the worker died, [`TransportError::Protocol`] for garbage.
    fn recv(&mut self, timeout: Duration) -> Result<String, TransportError>;
}

// ---------------------------------------------------------------------
// InProcess: a loopback Service.
// ---------------------------------------------------------------------

/// The loopback transport: a private [`Service`] answering in the
/// calling thread. `send` computes the response synchronously and queues
/// it; `recv` pops. Zero concurrency, full protocol fidelity — the
/// reference endpoint for tests and the overhead floor `exp_cluster`
/// measures against.
pub struct InProcess {
    service: Service,
    queue: VecDeque<String>,
}

impl Default for InProcess {
    fn default() -> Self {
        Self::new()
    }
}

impl InProcess {
    /// A fresh loopback worker.
    pub fn new() -> Self {
        Self { service: Service::new(), queue: VecDeque::new() }
    }
}

impl Transport for InProcess {
    fn describe(&self) -> String {
        "in-process".to_string()
    }

    fn send(&mut self, line: &str) -> Result<(), TransportError> {
        if let Some(response) = self.service.respond(line) {
            self.queue.push_back(response);
        }
        Ok(())
    }

    fn recv(&mut self, _timeout: Duration) -> Result<String, TransportError> {
        self.queue
            .pop_front()
            .ok_or_else(|| TransportError::Protocol("no pending response".to_string()))
    }
}

// ---------------------------------------------------------------------
// ChildStdio: a spawned worker process.
// ---------------------------------------------------------------------

/// A worker process speaking the protocol over its stdin/stdout — spawn
/// `streamcolor serve`, `shard_worker --serve`, or `cluster_worker`. A
/// background thread drains stdout into a channel so `recv` can time
/// out; stderr is inherited so worker diagnostics stay visible. The
/// child is killed and reaped on drop.
pub struct ChildStdio {
    child: Child,
    stdin: Option<ChildStdin>,
    rx: mpsc::Receiver<String>,
    label: String,
}

impl ChildStdio {
    /// Spawns `program args…` with piped stdin/stdout.
    ///
    /// # Errors
    /// Returns a message naming the program when the spawn fails.
    pub fn spawn(
        program: impl AsRef<std::ffi::OsStr>,
        args: &[impl AsRef<std::ffi::OsStr>],
    ) -> Result<Self, String> {
        let program = program.as_ref();
        let mut child = Command::new(program)
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| format!("cannot spawn {program:?}: {e}"))?;
        let stdin = child.stdin.take().expect("stdin was piped");
        let stdout = child.stdout.take().expect("stdout was piped");
        let (tx, rx) = mpsc::channel();
        // The reader thread ends at EOF (worker exit or kill); if the
        // transport was dropped first, the failed send ends it too.
        std::thread::spawn(move || {
            for line in BufReader::new(stdout).lines() {
                let Ok(line) = line else { break };
                if tx.send(line).is_err() {
                    break;
                }
            }
        });
        let label = format!("{} (pid {})", program.to_string_lossy(), child.id());
        Ok(Self { child, stdin: Some(stdin), rx, label })
    }

    /// The worker's process id.
    pub fn pid(&self) -> u32 {
        self.child.id()
    }

    /// Kills the worker outright (tests use this to simulate machine
    /// loss; the pool then sees [`TransportError::Closed`]).
    pub fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ChildStdio {
    fn drop(&mut self) {
        // Closing stdin first lets a serve loop exit cleanly; the kill
        // catches wedged workers, and wait reaps the zombie either way.
        self.stdin.take();
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Transport for ChildStdio {
    fn describe(&self) -> String {
        self.label.clone()
    }

    fn send(&mut self, line: &str) -> Result<(), TransportError> {
        let stdin = self
            .stdin
            .as_mut()
            .ok_or_else(|| TransportError::Closed("stdin already closed".to_string()))?;
        writeln!(stdin, "{line}")
            .and_then(|()| stdin.flush())
            .map_err(|e| TransportError::Closed(format!("worker stdin: {e}")))
    }

    fn recv(&mut self, timeout: Duration) -> Result<String, TransportError> {
        match self.rx.recv_timeout(timeout) {
            Ok(line) => Ok(line),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(TransportError::Timeout(timeout)),
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                Err(TransportError::Closed("worker stdout closed (process exited?)".to_string()))
            }
        }
    }
}

// ---------------------------------------------------------------------
// Tcp: a socket to a listener.
// ---------------------------------------------------------------------

/// A connection to a `streamcolor serve --listen` endpoint (or any
/// socket speaking the line protocol). Reads keep a persistent buffer,
/// so a deadline that fires mid-line loses nothing — though the pool
/// abandons a timed-out worker anyway.
pub struct Tcp {
    stream: TcpStream,
    buf: Vec<u8>,
    label: String,
}

impl Tcp {
    /// Connects to `addr` (e.g. `127.0.0.1:7841`).
    ///
    /// # Errors
    /// Returns a message naming the address when the connection fails.
    pub fn connect(addr: &str) -> Result<Self, String> {
        let stream =
            TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        stream.set_nodelay(true).map_err(|e| format!("set_nodelay({addr}): {e}"))?;
        Ok(Self { stream, buf: Vec::new(), label: format!("tcp://{addr}") })
    }
}

impl Transport for Tcp {
    fn describe(&self) -> String {
        self.label.clone()
    }

    fn send(&mut self, line: &str) -> Result<(), TransportError> {
        self.stream
            .write_all(line.as_bytes())
            .and_then(|()| self.stream.write_all(b"\n"))
            .and_then(|()| self.stream.flush())
            .map_err(|e| TransportError::Closed(format!("socket write: {e}")))
    }

    fn recv(&mut self, timeout: Duration) -> Result<String, TransportError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
                line.pop(); // the newline
                return String::from_utf8(line)
                    .map_err(|_| TransportError::Protocol("response is not UTF-8".to_string()));
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(TransportError::Timeout(timeout));
            }
            self.stream
                .set_read_timeout(Some(remaining))
                .map_err(|e| TransportError::Closed(format!("set_read_timeout: {e}")))?;
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(TransportError::Closed("connection closed".to_string())),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Err(TransportError::Timeout(timeout));
                }
                Err(e) => return Err(TransportError::Closed(format!("socket read: {e}"))),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Unreliable: deterministic failure injection.
// ---------------------------------------------------------------------

/// Wraps a transport and kills it after a fixed number of answered
/// receives — the deterministic stand-in for "the worker accepted the
/// job, then the machine died". `Unreliable::dying_after(t, 0)` dies on
/// its first answer, which is exactly the mid-job death the pool's
/// re-dispatch path must absorb.
pub struct Unreliable<T: Transport> {
    inner: T,
    answers_left: usize,
}

impl<T: Transport> Unreliable<T> {
    /// Answers `answers` receives, then reports [`TransportError::Closed`]
    /// forever.
    pub fn dying_after(inner: T, answers: usize) -> Self {
        Self { inner, answers_left: answers }
    }
}

impl<T: Transport> Transport for Unreliable<T> {
    fn describe(&self) -> String {
        format!("{} [unreliable]", self.inner.describe())
    }

    fn send(&mut self, line: &str) -> Result<(), TransportError> {
        // A dying worker's pipe still buffers the request — the failure
        // surfaces where it does in production, on the missing response.
        self.inner.send(line)
    }

    fn recv(&mut self, timeout: Duration) -> Result<String, TransportError> {
        if self.answers_left == 0 {
            return Err(TransportError::Closed("injected worker death".to_string()));
        }
        let response = self.inner.recv(timeout)?;
        self.answers_left -= 1;
        Ok(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_process_answers_protocol_lines() {
        let mut t = InProcess::new();
        t.send(r#"{"cmd":"open","session":"a","n":10,"colorer":"trivial"}"#).unwrap();
        let response = t.recv(Duration::from_secs(1)).unwrap();
        assert!(response.contains("\"ok\":true"), "{response}");
        // Comments produce no response; recv reports that as protocol
        // misuse rather than blocking.
        t.send("# comment").unwrap();
        assert_eq!(
            t.recv(Duration::from_secs(1)),
            Err(TransportError::Protocol("no pending response".to_string()))
        );
    }

    #[test]
    fn unreliable_dies_after_its_answer_budget() {
        let mut t = Unreliable::dying_after(InProcess::new(), 1);
        t.send(r#"{"cmd":"open","session":"a","n":10,"colorer":"trivial"}"#).unwrap();
        assert!(t.recv(Duration::from_secs(1)).is_ok());
        t.send(r#"{"cmd":"stats","session":"a"}"#).unwrap();
        assert!(matches!(t.recv(Duration::from_secs(1)), Err(TransportError::Closed(_))));
        assert!(t.describe().contains("unreliable"));
    }

    #[test]
    fn errors_render_for_failure_reports() {
        assert_eq!(TransportError::Closed("pipe".into()).to_string(), "closed: pipe");
        assert!(TransportError::Timeout(Duration::from_millis(250)).to_string().contains("250ms"));
        assert!(TransportError::Protocol("junk".into()).to_string().starts_with("protocol"));
    }
}
