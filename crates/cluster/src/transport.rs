//! Transports: how one protocol line reaches a worker and its response
//! comes back.
//!
//! A transport is deliberately tiny — [`Transport::send`] one line,
//! [`Transport::recv`] one line with a deadline — because the whole
//! cluster vocabulary lives in the `sc-service` line protocol, not here.
//! Four real implementations cover the deployment spectrum
//! ([`InProcess`] loopback, [`ChildStdio`] pipes, [`Tcp`] sockets,
//! [`Ssh`] remote processes over `ChildStdio`'s pipe machinery), and
//! [`Unreliable`] injects deterministic worker death
//! ([`Unreliable::dying_after`]) or slowness
//! ([`Unreliable::slowed_by`]) for tests and the `exp_cluster`
//! retry-cost and skewed-fleet measurements.

use sc_service::Service;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Why a transport operation failed — the pool's retry logic branches on
/// this (every variant is a *worker* failure; job-level errors travel as
/// `"ok":false` protocol responses instead).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The other end is gone: closed pipe, dead process, dropped socket.
    Closed(String),
    /// No response line arrived within the deadline (a straggler).
    Timeout(Duration),
    /// The channel works but carried something unusable (bad UTF-8, a
    /// response to a line we never sent).
    Protocol(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Closed(why) => write!(f, "closed: {why}"),
            TransportError::Timeout(t) => write!(f, "no response within {t:?}"),
            TransportError::Protocol(why) => write!(f, "protocol: {why}"),
        }
    }
}

/// A bidirectional line channel to one worker endpoint.
///
/// Implementations must preserve line order (the pool correlates FIFO)
/// and must never block forever in [`Transport::recv`] — a straggling
/// worker surfaces as [`TransportError::Timeout`] so the pool can
/// re-dispatch its shard.
pub trait Transport: Send {
    /// A human-readable endpoint name for failure reports.
    fn describe(&self) -> String;

    /// Sends one protocol line (no trailing newline; the transport adds
    /// its own framing).
    ///
    /// # Errors
    /// [`TransportError::Closed`] when the worker is gone.
    fn send(&mut self, line: &str) -> Result<(), TransportError>;

    /// Receives the next response line, waiting at most `timeout`.
    ///
    /// # Errors
    /// [`TransportError::Timeout`] for stragglers, [`TransportError::Closed`]
    /// when the worker died, [`TransportError::Protocol`] for garbage.
    fn recv(&mut self, timeout: Duration) -> Result<String, TransportError>;
}

// A boxed transport is a transport, so wrappers like `Unreliable` can
// decorate an already-built `Box<dyn Transport>` fleet member (the
// coordinator's skewed-worker path relies on this).
impl<T: Transport + ?Sized> Transport for Box<T> {
    fn describe(&self) -> String {
        (**self).describe()
    }

    fn send(&mut self, line: &str) -> Result<(), TransportError> {
        (**self).send(line)
    }

    fn recv(&mut self, timeout: Duration) -> Result<String, TransportError> {
        (**self).recv(timeout)
    }
}

// ---------------------------------------------------------------------
// InProcess: a loopback Service.
// ---------------------------------------------------------------------

/// The loopback transport: a private [`Service`] answering in the
/// calling thread. `send` computes the response synchronously and queues
/// it; `recv` pops. Zero concurrency, full protocol fidelity — the
/// reference endpoint for tests and the overhead floor `exp_cluster`
/// measures against.
pub struct InProcess {
    service: Service,
    queue: VecDeque<String>,
}

impl Default for InProcess {
    fn default() -> Self {
        Self::new()
    }
}

impl InProcess {
    /// A fresh loopback worker.
    pub fn new() -> Self {
        Self { service: Service::new(), queue: VecDeque::new() }
    }
}

impl Transport for InProcess {
    fn describe(&self) -> String {
        "in-process".to_string()
    }

    fn send(&mut self, line: &str) -> Result<(), TransportError> {
        if let Some(response) = self.service.respond(line) {
            self.queue.push_back(response);
        }
        Ok(())
    }

    fn recv(&mut self, _timeout: Duration) -> Result<String, TransportError> {
        self.queue
            .pop_front()
            .ok_or_else(|| TransportError::Protocol("no pending response".to_string()))
    }
}

// ---------------------------------------------------------------------
// ChildStdio: a spawned worker process.
// ---------------------------------------------------------------------

/// A worker process speaking the protocol over its stdin/stdout — spawn
/// `streamcolor serve`, `shard_worker --serve`, or `cluster_worker`. A
/// background thread drains stdout into a channel so `recv` can time
/// out; stderr is inherited so worker diagnostics stay visible. The
/// child is killed and reaped on drop.
pub struct ChildStdio {
    child: Child,
    stdin: Option<ChildStdin>,
    rx: mpsc::Receiver<String>,
    label: String,
}

impl ChildStdio {
    /// Spawns `program args…` with piped stdin/stdout.
    ///
    /// # Errors
    /// Returns a message naming the program when the spawn fails.
    pub fn spawn(
        program: impl AsRef<std::ffi::OsStr>,
        args: &[impl AsRef<std::ffi::OsStr>],
    ) -> Result<Self, String> {
        let program = program.as_ref();
        let mut child = Command::new(program)
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| format!("cannot spawn {program:?}: {e}"))?;
        let stdin = child.stdin.take().expect("stdin was piped");
        let stdout = child.stdout.take().expect("stdout was piped");
        let (tx, rx) = mpsc::channel();
        // The reader thread ends at EOF (worker exit or kill); if the
        // transport was dropped first, the failed send ends it too.
        std::thread::spawn(move || {
            for line in BufReader::new(stdout).lines() {
                let Ok(line) = line else { break };
                if tx.send(line).is_err() {
                    break;
                }
            }
        });
        let label = format!("{} (pid {})", program.to_string_lossy(), child.id());
        Ok(Self { child, stdin: Some(stdin), rx, label })
    }

    /// The worker's process id.
    pub fn pid(&self) -> u32 {
        self.child.id()
    }

    /// Kills the worker outright (tests use this to simulate machine
    /// loss; the pool then sees [`TransportError::Closed`]).
    pub fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ChildStdio {
    fn drop(&mut self) {
        // Closing stdin first lets a serve loop exit cleanly; the kill
        // catches wedged workers, and wait reaps the zombie either way.
        self.stdin.take();
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Transport for ChildStdio {
    fn describe(&self) -> String {
        self.label.clone()
    }

    fn send(&mut self, line: &str) -> Result<(), TransportError> {
        let stdin = self
            .stdin
            .as_mut()
            .ok_or_else(|| TransportError::Closed("stdin already closed".to_string()))?;
        writeln!(stdin, "{line}")
            .and_then(|()| stdin.flush())
            .map_err(|e| TransportError::Closed(format!("worker stdin: {e}")))
    }

    fn recv(&mut self, timeout: Duration) -> Result<String, TransportError> {
        match self.rx.recv_timeout(timeout) {
            Ok(line) => Ok(line),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(TransportError::Timeout(timeout)),
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                Err(TransportError::Closed("worker stdout closed (process exited?)".to_string()))
            }
        }
    }
}

// ---------------------------------------------------------------------
// Tcp: a socket to a listener.
// ---------------------------------------------------------------------

/// A connection to a `streamcolor serve --listen` endpoint (or any
/// socket speaking the line protocol). Reads keep a persistent buffer,
/// so a deadline that fires mid-line loses nothing — though the pool
/// abandons a timed-out worker anyway.
pub struct Tcp {
    stream: TcpStream,
    buf: Vec<u8>,
    label: String,
}

impl Tcp {
    /// Connects to `addr` (e.g. `127.0.0.1:7841`).
    ///
    /// # Errors
    /// Returns a message naming the address when the connection fails.
    pub fn connect(addr: &str) -> Result<Self, String> {
        let stream =
            TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        stream.set_nodelay(true).map_err(|e| format!("set_nodelay({addr}): {e}"))?;
        Ok(Self { stream, buf: Vec::new(), label: format!("tcp://{addr}") })
    }
}

impl Transport for Tcp {
    fn describe(&self) -> String {
        self.label.clone()
    }

    fn send(&mut self, line: &str) -> Result<(), TransportError> {
        self.stream
            .write_all(line.as_bytes())
            .and_then(|()| self.stream.write_all(b"\n"))
            .and_then(|()| self.stream.flush())
            .map_err(|e| TransportError::Closed(format!("socket write: {e}")))
    }

    fn recv(&mut self, timeout: Duration) -> Result<String, TransportError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
                line.pop(); // the newline
                return String::from_utf8(line)
                    .map_err(|_| TransportError::Protocol("response is not UTF-8".to_string()));
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(TransportError::Timeout(timeout));
            }
            self.stream
                .set_read_timeout(Some(remaining))
                .map_err(|e| TransportError::Closed(format!("set_read_timeout: {e}")))?;
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                // A close with bytes still buffered means the peer died
                // mid-line: surface how much was lost instead of
                // silently discarding the partial response.
                Ok(0) if !self.buf.is_empty() => {
                    return Err(TransportError::Closed(format!(
                        "connection closed with {} unterminated bytes",
                        self.buf.len()
                    )));
                }
                Ok(0) => return Err(TransportError::Closed("connection closed".to_string())),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Err(TransportError::Timeout(timeout));
                }
                Err(e) => return Err(TransportError::Closed(format!("socket read: {e}"))),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Ssh: a remote worker process over the ssh client's pipes.
// ---------------------------------------------------------------------

/// A worker on a remote machine: `ssh host streamcolor serve`, spoken to
/// over the ssh client's stdin/stdout exactly like a local [`ChildStdio`]
/// child — the fleet reaches real machines with zero new wire
/// vocabulary. `BatchMode=yes` makes an auth problem a fast clean
/// [`TransportError::Closed`] instead of a password prompt wedging the
/// dispatch.
pub struct Ssh {
    inner: ChildStdio,
    label: String,
}

impl Ssh {
    /// Connects to `dest` = `user@host[:path]` by spawning the `ssh`
    /// client; `path` is the remote `streamcolor` binary (default:
    /// `streamcolor` on the remote `PATH`), run as `<path> serve`.
    ///
    /// # Errors
    /// Returns a message naming the destination when it is malformed or
    /// the ssh client cannot be spawned.
    pub fn connect(dest: &str) -> Result<Self, String> {
        Self::connect_via("ssh", dest)
    }

    /// [`Ssh::connect`] through an explicit client `program` — tests
    /// substitute a local stand-in script so the transport machinery is
    /// exercised without a real remote host.
    ///
    /// # Errors
    /// As [`Ssh::connect`].
    pub fn connect_via(program: &str, dest: &str) -> Result<Self, String> {
        let (host, path) = split_dest(dest)?;
        let args = [
            "-o".to_string(),
            "BatchMode=yes".to_string(),
            "-T".to_string(),
            host,
            path,
            "serve".to_string(),
        ];
        let inner = ChildStdio::spawn(program, &args)?;
        Ok(Self { inner, label: format!("ssh://{dest}") })
    }

    /// The local ssh client's process id.
    pub fn pid(&self) -> u32 {
        self.inner.pid()
    }
}

impl Transport for Ssh {
    fn describe(&self) -> String {
        self.label.clone()
    }

    fn send(&mut self, line: &str) -> Result<(), TransportError> {
        self.inner.send(line)
    }

    fn recv(&mut self, timeout: Duration) -> Result<String, TransportError> {
        self.inner.recv(timeout)
    }
}

/// Splits `user@host[:path]` into the ssh host argument and the remote
/// binary path (validated before any process is spawned).
///
/// IPv6 hosts contain colons (`user@::1`, `fe80::1`), so a lone
/// `split_once(':')` would shear the address apart. The rules:
///
/// * `[addr]:path` / `user@[addr]:path` — brackets delimit the host
///   (ssh's own literal-IPv6 syntax); the path follows the `]:`.
///   Brackets are stripped before handing the host to the ssh client.
/// * exactly one `:` and no brackets — `host:path`, as before.
/// * two or more `:` and no brackets — the whole destination is a bare
///   IPv6 host; the path defaults. (A path would need brackets.)
fn split_dest(dest: &str) -> Result<(String, String), String> {
    let after_user = dest.rsplit_once('@').map_or(dest, |(_, host)| host);
    if let Some(rest) = after_user.strip_prefix('[') {
        let Some((addr, tail)) = rest.split_once(']') else {
            return Err(format!("ssh destination {dest:?} has an unclosed '[' (want [addr]:path)"));
        };
        if addr.is_empty() {
            return Err(format!("ssh destination {dest:?} has no host (want user@host[:path])"));
        }
        let user = dest.rsplit_once('@').map_or("", |(user, _)| user);
        let host = if user.is_empty() { addr.to_string() } else { format!("{user}@{addr}") };
        return match tail {
            "" => Ok((host, "streamcolor".to_string())),
            ":" => Err(format!("ssh destination {dest:?} has an empty remote path after ':'")),
            tail => match tail.strip_prefix(':') {
                Some(path) => Ok((host, path.to_string())),
                None => Err(format!(
                    "ssh destination {dest:?} has trailing garbage after ']' (want [addr]:path)"
                )),
            },
        };
    }
    let (host, path) = match after_user.matches(':').count() {
        0 => (dest, "streamcolor"),
        1 => match dest.split_once(':') {
            Some((_, "")) => {
                return Err(format!("ssh destination {dest:?} has an empty remote path after ':'"));
            }
            Some((h, p)) => (h, p),
            None => unreachable!("count said one colon"),
        },
        // Multiple colons, no brackets: a bare IPv6 address.
        _ => (dest, "streamcolor"),
    };
    if host.is_empty() {
        return Err(format!("ssh destination {dest:?} has no host (want user@host[:path])"));
    }
    Ok((host.to_string(), path.to_string()))
}

// ---------------------------------------------------------------------
// Unreliable: deterministic failure and slowness injection.
// ---------------------------------------------------------------------

/// Wraps a transport and injects deterministic misbehavior:
/// [`Unreliable::dying_after`] kills it after a fixed number of answered
/// receives (the stand-in for "the worker accepted the job, then the
/// machine died" — `dying_after(t, 0)` dies on its first answer, exactly
/// the mid-job death the pool's re-dispatch path must absorb), and
/// [`Unreliable::slowed_by`] delays every answer by a fixed wall-clock
/// duration (the stand-in for a loaded or underpowered machine — the
/// straggler the pool's stealing and speculation paths must route
/// around).
pub struct Unreliable<T: Transport> {
    inner: T,
    answers_left: usize,
    delay: Duration,
    /// Send times of requests whose answers are still delayed (FIFO,
    /// only tracked when `delay` is non-zero).
    sent: VecDeque<Instant>,
    /// Die immediately after delivering one successful `snapshot`
    /// response (the migration-failure stand-in).
    die_after_snapshot: bool,
}

impl<T: Transport> Unreliable<T> {
    /// Answers `answers` receives, then reports [`TransportError::Closed`]
    /// forever.
    pub fn dying_after(inner: T, answers: usize) -> Self {
        Self {
            inner,
            answers_left: answers,
            delay: Duration::ZERO,
            sent: VecDeque::new(),
            die_after_snapshot: false,
        }
    }

    /// Answers normally until one **successful `snapshot` response**
    /// passes through, then reports [`TransportError::Closed`] forever —
    /// the worst-case migration timing: the snapshot blob escapes the
    /// machine, then the machine dies before the source session can be
    /// finished. Migration must treat this as copy-then-drop: the target
    /// restores, the source (if it ever comes back) still holds its
    /// session.
    pub fn dying_after_snapshot(inner: T) -> Self {
        Self {
            inner,
            answers_left: usize::MAX,
            delay: Duration::ZERO,
            sent: VecDeque::new(),
            die_after_snapshot: true,
        }
    }

    /// Never dies, but holds every answer until `delay` after its
    /// request was sent — `recv` sleeps (never past its deadline) and
    /// reports [`TransportError::Timeout`] while an answer is pending,
    /// so to the pool the worker is indistinguishable from a genuinely
    /// slow machine.
    pub fn slowed_by(inner: T, delay: Duration) -> Self {
        Self {
            inner,
            answers_left: usize::MAX,
            delay,
            sent: VecDeque::new(),
            die_after_snapshot: false,
        }
    }

    /// Unwraps the inner transport — tests pry open a "dead" endpoint
    /// to prove the injected failure never destroyed its real state.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

impl<T: Transport> Transport for Unreliable<T> {
    fn describe(&self) -> String {
        if self.die_after_snapshot {
            format!("{} [dies after snapshot]", self.inner.describe())
        } else if self.delay.is_zero() {
            format!("{} [unreliable]", self.inner.describe())
        } else {
            format!("{} [slowed {:?}]", self.inner.describe(), self.delay)
        }
    }

    fn send(&mut self, line: &str) -> Result<(), TransportError> {
        // A dying worker's pipe still buffers the request — the failure
        // surfaces where it does in production, on the missing response.
        if !self.delay.is_zero() {
            self.sent.push_back(Instant::now());
        }
        self.inner.send(line)
    }

    fn recv(&mut self, timeout: Duration) -> Result<String, TransportError> {
        if self.answers_left == 0 {
            return Err(TransportError::Closed("injected worker death".to_string()));
        }
        if !self.delay.is_zero() {
            if let Some(&first) = self.sent.front() {
                let ready = first + self.delay;
                let now = Instant::now();
                if ready > now {
                    let wait = ready - now;
                    if wait >= timeout {
                        // Consume the caller's budget like a real slow
                        // worker would, then report the straggle.
                        std::thread::sleep(timeout);
                        return Err(TransportError::Timeout(timeout));
                    }
                    std::thread::sleep(wait);
                }
                self.sent.pop_front();
            }
        }
        let response = self.inner.recv(timeout)?;
        if self.die_after_snapshot
            && response.contains("\"cmd\":\"snapshot\"")
            && response.contains("\"ok\":true")
        {
            // The snapshot escapes; everything after is dead air.
            self.answers_left = 0;
        } else {
            self.answers_left = self.answers_left.saturating_sub(1);
        }
        Ok(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_process_answers_protocol_lines() {
        let mut t = InProcess::new();
        t.send(r#"{"cmd":"open","session":"a","n":10,"colorer":"trivial"}"#).unwrap();
        let response = t.recv(Duration::from_secs(1)).unwrap();
        assert!(response.contains("\"ok\":true"), "{response}");
        // Comments produce no response; recv reports that as protocol
        // misuse rather than blocking.
        t.send("# comment").unwrap();
        assert_eq!(
            t.recv(Duration::from_secs(1)),
            Err(TransportError::Protocol("no pending response".to_string()))
        );
    }

    #[test]
    fn unreliable_dies_after_its_answer_budget() {
        let mut t = Unreliable::dying_after(InProcess::new(), 1);
        t.send(r#"{"cmd":"open","session":"a","n":10,"colorer":"trivial"}"#).unwrap();
        assert!(t.recv(Duration::from_secs(1)).is_ok());
        t.send(r#"{"cmd":"stats","session":"a"}"#).unwrap();
        assert!(matches!(t.recv(Duration::from_secs(1)), Err(TransportError::Closed(_))));
        assert!(t.describe().contains("unreliable"));
    }

    #[test]
    fn slowed_transports_straggle_then_answer() {
        let mut t = Unreliable::slowed_by(InProcess::new(), Duration::from_millis(80));
        let started = Instant::now();
        t.send(r#"{"cmd":"open","session":"a","n":10,"colorer":"trivial"}"#).unwrap();
        // Short deadlines burn their whole budget and report a straggle…
        assert_eq!(
            t.recv(Duration::from_millis(10)),
            Err(TransportError::Timeout(Duration::from_millis(10)))
        );
        // …until the delay elapses and the answer comes through intact.
        let response = t.recv(Duration::from_secs(5)).unwrap();
        assert!(response.contains("\"ok\":true"), "{response}");
        assert!(started.elapsed() >= Duration::from_millis(80), "answer arrived early");
        assert!(t.describe().contains("slowed"), "{}", t.describe());
    }

    #[test]
    fn ssh_destinations_are_validated_before_any_spawn() {
        assert_eq!(
            split_dest("user@host:opt/streamcolor").unwrap(),
            ("user@host".to_string(), "opt/streamcolor".to_string())
        );
        assert_eq!(
            split_dest("worker7").unwrap(),
            ("worker7".to_string(), "streamcolor".to_string())
        );
        assert!(split_dest("").unwrap_err().contains("no host"));
        assert!(split_dest(":bin/streamcolor").unwrap_err().contains("no host"));
        assert!(split_dest("host:").unwrap_err().contains("empty remote path"));
        // A malformed destination must fail before the client spawns.
        assert!(Ssh::connect("host:").is_err());

        // IPv6: multiple colons without brackets are all host, never a
        // path split at the first colon.
        assert_eq!(
            split_dest("user@::1").unwrap(),
            ("user@::1".to_string(), "streamcolor".to_string())
        );
        assert_eq!(
            split_dest("fe80::1").unwrap(),
            ("fe80::1".to_string(), "streamcolor".to_string())
        );
        // Brackets (ssh's literal-IPv6 syntax) delimit the host and
        // reopen the `:path` suffix; they are stripped for the client.
        assert_eq!(
            split_dest("user@[::1]:opt/streamcolor").unwrap(),
            ("user@::1".to_string(), "opt/streamcolor".to_string())
        );
        assert_eq!(
            split_dest("[fe80::1]").unwrap(),
            ("fe80::1".to_string(), "streamcolor".to_string())
        );
        assert!(split_dest("user@[::1").unwrap_err().contains("unclosed"));
        assert!(split_dest("user@[::1]:").unwrap_err().contains("empty remote path"));
        assert!(split_dest("[::1]junk").unwrap_err().contains("trailing garbage"));
        assert!(split_dest("user@[]").unwrap_err().contains("no host"));
    }

    #[test]
    fn tcp_recv_names_unterminated_bytes_on_close() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            // A partial line — no terminating newline — then close.
            stream.write_all(b"{\"truncated\":tr").unwrap();
        });
        let mut t = Tcp::connect(&addr).unwrap();
        server.join().unwrap();
        let err = t.recv(Duration::from_secs(10)).unwrap_err();
        match err {
            TransportError::Closed(msg) => {
                assert_eq!(msg, "connection closed with 15 unterminated bytes");
            }
            other => panic!("want Closed, got {other:?}"),
        }
        // A clean close (no buffered bytes) keeps the plain message.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            drop(stream);
        });
        let mut t = Tcp::connect(&addr).unwrap();
        server.join().unwrap();
        match t.recv(Duration::from_secs(10)).unwrap_err() {
            TransportError::Closed(msg) => assert_eq!(msg, "connection closed"),
            other => panic!("want Closed, got {other:?}"),
        }
    }

    #[test]
    fn boxed_transports_forward() {
        let mut t: Box<dyn Transport> = Box::new(InProcess::new());
        t.send(r#"{"cmd":"open","session":"a","n":10,"colorer":"trivial"}"#).unwrap();
        assert!(t.recv(Duration::from_secs(1)).unwrap().contains("\"ok\":true"));
        let mut wrapped = Unreliable::dying_after(t, 0);
        assert!(matches!(wrapped.recv(Duration::from_secs(1)), Err(TransportError::Closed(_))));
        assert!(wrapped.describe().contains("unreliable"));
    }

    #[test]
    fn errors_render_for_failure_reports() {
        assert_eq!(TransportError::Closed("pipe".into()).to_string(), "closed: pipe");
        assert!(TransportError::Timeout(Duration::from_millis(250)).to_string().contains("250ms"));
        assert!(TransportError::Protocol("junk".into()).to_string().starts_with("protocol"));
    }
}
