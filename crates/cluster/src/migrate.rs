//! Live session migration: move one named session from one endpoint to
//! another over any two [`Transport`]s.
//!
//! Migration is **copy-then-drop**, never destructive: the source is
//! snapshotted (non-destructive — the session keeps answering), the
//! target restores the blob, and only after the target holds the
//! session is the source's copy finished. Every failure mode leaves at
//! least one live copy:
//!
//! * snapshot fails → nothing changed anywhere;
//! * restore fails → the source still holds the session, untouched;
//! * the final `finish` on the source fails (endpoint died the instant
//!   the blob escaped — [`crate::Unreliable::dying_after_snapshot`]
//!   injects exactly this) → the migration still **succeeds**
//!   ([`MigrationReport::source_dropped`]
//!   is `false`): the target owns a good copy, and the source's
//!   leftover is a stale duplicate, not a loss.
//!
//! The restored session answers byte-identically to the original from
//! the hand-off point on (the persistence law,
//! `crates/service/tests/snapshot_determinism.rs`), so a client that
//! reconnects to the target cannot tell the migration happened.

use crate::transport::{Transport, TransportError};
use sc_engine::flatjson::{encode_object, parse_object, FlatObject, Scalar};
use std::time::Duration;

/// What [`migrate_session`] accomplished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationReport {
    /// The migrated session's name (on both endpoints).
    pub name: String,
    /// Size of the snapshot blob that crossed the wire, in bytes.
    pub snapshot_bytes: usize,
    /// Whether the source's copy was successfully finished. `false`
    /// means the target holds the session but the source endpoint died
    /// (or errored) before its duplicate could be dropped — the
    /// migration itself still succeeded.
    pub source_dropped: bool,
}

/// One request/response exchange, with correlation checks: the response
/// must echo the command and be addressed to our session.
fn exchange(
    endpoint: &mut dyn Transport,
    line: &FlatObject,
    cmd: &str,
    name: &str,
    timeout: Duration,
) -> Result<FlatObject, TransportError> {
    endpoint.send(&encode_object(line))?;
    let response = endpoint.recv(timeout)?;
    let obj = parse_object(&response)
        .map_err(|e| TransportError::Protocol(format!("unparseable response: {e}")))?;
    if obj.get("cmd").and_then(Scalar::as_str) != Some(cmd)
        || obj.get("session").and_then(Scalar::as_str) != Some(name)
    {
        return Err(TransportError::Protocol(format!(
            "response {response:?} does not answer {cmd} for session {name:?}"
        )));
    }
    Ok(obj)
}

fn command(cmd: &str, name: &str) -> FlatObject {
    let mut obj = FlatObject::new();
    obj.insert("cmd".into(), Scalar::Str(cmd.to_string()));
    obj.insert("session".into(), Scalar::Str(name.to_string()));
    obj
}

/// Moves session `name` from `from` to `to`: snapshot on the source,
/// restore on the target, then — only once the target holds it —
/// finish the source's copy.
///
/// # Errors
/// A message naming the failing stage and endpoint. On error the source
/// session is **intact** (snapshot is non-destructive and the source is
/// only finished after a successful restore); a failed `finish` is not
/// an error — see [`MigrationReport::source_dropped`].
pub fn migrate_session(
    from: &mut dyn Transport,
    to: &mut dyn Transport,
    name: &str,
    timeout: Duration,
) -> Result<MigrationReport, String> {
    // 1. Snapshot the source (non-destructive).
    let snap = exchange(from, &command("snapshot", name), "snapshot", name, timeout)
        .map_err(|e| format!("snapshot on {}: {e}", from.describe()))?;
    if snap.get("ok").and_then(Scalar::as_bool) != Some(true) {
        let why = snap.get("error").and_then(Scalar::as_str).unwrap_or("unknown error");
        return Err(format!("snapshot on {}: {why}", from.describe()));
    }
    let blob = snap
        .get("snapshot")
        .and_then(Scalar::as_str)
        .ok_or_else(|| format!("snapshot on {}: response carries no blob", from.describe()))?
        .to_string();

    // 2. Restore on the target. Failure leaves the source untouched.
    let mut restore = command("restore", name);
    restore.insert("snapshot".into(), Scalar::Str(blob.clone()));
    let restored = exchange(to, &restore, "restore", name, timeout)
        .map_err(|e| format!("restore on {}: {e}", to.describe()))?;
    if restored.get("ok").and_then(Scalar::as_bool) != Some(true) {
        let why = restored.get("error").and_then(Scalar::as_str).unwrap_or("unknown error");
        return Err(format!("restore on {}: {why}", to.describe()));
    }

    // 3. The target owns the session; drop the source's copy. A failure
    //    here (the endpoint died right after the blob escaped) degrades
    //    the report, never the migration.
    let source_dropped = matches!(
        exchange(from, &command("finish", name), "finish", name, timeout),
        Ok(obj) if obj.get("ok").and_then(Scalar::as_bool) == Some(true)
    );

    Ok(MigrationReport { name: name.to_string(), snapshot_bytes: blob.len(), source_dropped })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{InProcess, Unreliable};

    const TIMEOUT: Duration = Duration::from_secs(5);

    fn drive(t: &mut impl Transport, line: &str) -> String {
        t.send(line).unwrap();
        t.recv(TIMEOUT).unwrap()
    }

    fn open_and_push(t: &mut impl Transport) {
        drive(t, r#"{"cmd":"open","session":"m","n":20,"delta":4,"colorer":"robust","seed":3}"#);
        drive(t, r#"{"cmd":"push_batch","session":"m","edges":"0-1 1-2 2-3"}"#);
    }

    #[test]
    fn migrate_moves_the_session_and_drops_the_source() {
        let mut from = InProcess::new();
        let mut to = InProcess::new();
        open_and_push(&mut from);
        // The uninterrupted reference session.
        let mut reference = InProcess::new();
        open_and_push(&mut reference);

        let report = migrate_session(&mut from, &mut to, "m", TIMEOUT).unwrap();
        assert_eq!(report.name, "m");
        assert!(report.source_dropped, "healthy source must be finished");
        assert!(report.snapshot_bytes > 0);

        // Source no longer holds the session…
        let gone = drive(&mut from, r#"{"cmd":"stats","session":"m"}"#);
        assert!(gone.contains("unknown session"), "{gone}");
        // …the target answers byte-identically to the uninterrupted run.
        for line in [
            r#"{"cmd":"push","session":"m","edge":"3-4"}"#,
            r#"{"cmd":"observe","session":"m"}"#,
            r#"{"cmd":"finish","session":"m"}"#,
        ] {
            assert_eq!(drive(&mut to, line), drive(&mut reference, line), "diverged on {line}");
        }
    }

    #[test]
    fn migrate_to_dead_target_leaves_source_intact() {
        let mut from = InProcess::new();
        open_and_push(&mut from);
        // A target that dies before it can answer anything.
        let mut to = Unreliable::dying_after(InProcess::new(), 0);

        let err = migrate_session(&mut from, &mut to, "m", TIMEOUT).unwrap_err();
        assert!(err.contains("restore on"), "{err}");

        // The source session survived the failed migration untouched.
        let stats = drive(&mut from, r#"{"cmd":"stats","session":"m"}"#);
        assert!(stats.contains("\"edges\":3"), "{stats}");
    }

    #[test]
    fn source_death_after_snapshot_still_migrates_without_dropping() {
        let mut from = Unreliable::dying_after_snapshot(InProcess::new());
        open_and_push(&mut from);
        let mut to = InProcess::new();

        let report = migrate_session(&mut from, &mut to, "m", TIMEOUT).unwrap();
        assert!(!report.source_dropped, "dead source cannot be finished");

        // The target holds a working copy…
        let stats = drive(&mut to, r#"{"cmd":"stats","session":"m"}"#);
        assert!(stats.contains("\"edges\":3"), "{stats}");
        // …and the source's real state was never destroyed: pry open the
        // wrapper and the duplicate session is still there.
        let mut inner = from.into_inner();
        let stale = drive(&mut inner, r#"{"cmd":"stats","session":"m"}"#);
        assert!(stale.contains("\"edges\":3"), "source copy destroyed: {stale}");
    }

    #[test]
    fn migrating_a_missing_session_is_an_error_not_a_panic() {
        let mut from = InProcess::new();
        let mut to = InProcess::new();
        let err = migrate_session(&mut from, &mut to, "ghost", TIMEOUT).unwrap_err();
        assert!(err.contains("snapshot on") && err.contains("unknown session"), "{err}");
    }
}
