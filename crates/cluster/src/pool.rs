//! The retrying worker pool: dispatch shard slices, absorb dead workers
//! and stragglers, merge byte-identically.
//!
//! The pool owns N [`Transport`]s and one invariant: **worker failures
//! never change the merged bytes**. That holds because the unit of
//! dispatch is a deterministic [`partition`](sc_engine::shard::partition)
//! slice — `(spec, shard, of)` names the same work on every worker — so
//! the retry path is just "send the same line to a different worker,
//! excluding the dead one". Shard count is fixed at dispatch time (it
//! determines the partition), which is why re-dispatch re-uses slices
//! instead of re-partitioning around the dead worker.

use crate::transport::Transport;
use sc_engine::flatjson::{encode_object, parse_object, FlatObject, Scalar};
use sc_engine::shard::{decode_worker_output, ShardJob, ShardOutcome};
use std::collections::VecDeque;
use std::time::Duration;

/// What a dispatch produced, beyond the merged outcome: the observability
/// the straggler/retry machinery owes its caller.
#[derive(Debug)]
pub struct DispatchReport {
    /// The merged job result — byte-identical to
    /// [`run_in_process`](sc_engine::shard::run_in_process).
    pub outcome: ShardOutcome,
    /// Shards the job was split into (`min(live workers, job items)`,
    /// at least 1).
    pub shards: usize,
    /// Shard slices re-dispatched after a worker failure.
    pub retries: usize,
    /// Human-readable worker-failure log, in detection order.
    pub failures: Vec<String>,
}

struct Worker {
    transport: Box<dyn Transport>,
    alive: bool,
    /// Shard ids awaiting responses from this worker, FIFO.
    queue: VecDeque<usize>,
}

/// N transports + a straggler deadline.
///
/// ```no_run
/// use sc_cluster::{InProcess, WorkerPool};
/// use sc_engine::shard::{smoke_grid, ShardJob};
///
/// let transports: Vec<_> = (0..4)
///     .map(|_| Box::new(InProcess::new()) as Box<dyn sc_cluster::Transport>)
///     .collect();
/// let report = WorkerPool::new(transports).dispatch(&ShardJob::Grid(smoke_grid())).unwrap();
/// println!("{}", report.outcome.encode());
/// ```
pub struct WorkerPool {
    workers: Vec<Worker>,
    timeout: Duration,
    /// Dispatches run so far — the per-dispatch session tag (`jobN-…`)
    /// that lets the collector recognize and discard stale responses
    /// left in-flight by an aborted earlier dispatch.
    dispatches: usize,
}

/// Default straggler deadline: generous, because a false positive costs
/// a duplicate slice run while a false negative only delays the merge.
const DEFAULT_TIMEOUT: Duration = Duration::from_secs(600);

enum CollectError {
    /// The worker is unusable; re-dispatch its shards elsewhere.
    Worker(String),
    /// The job itself is bad; every worker would answer the same.
    Fatal(String),
}

impl WorkerPool {
    /// A pool over `transports`.
    pub fn new(transports: Vec<Box<dyn Transport>>) -> Self {
        let workers = transports
            .into_iter()
            .map(|transport| Worker { transport, alive: true, queue: VecDeque::new() })
            .collect();
        Self { workers, timeout: DEFAULT_TIMEOUT, dispatches: 0 }
    }

    /// Sets the per-response straggler deadline.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Workers still considered healthy.
    pub fn live_workers(&self) -> usize {
        self.workers.iter().filter(|w| w.alive).count()
    }

    /// Runs the whole job across the pool and merges the shard outputs.
    ///
    /// Dead workers and stragglers are survivable: their slices are
    /// re-dispatched to healthy workers (never back to a failed one).
    /// The pool stays usable afterwards — dead workers stay excluded
    /// from later dispatches.
    ///
    /// # Errors
    /// Errors when no workers remain for an outstanding shard or on an
    /// `"ok":false` job response (every worker would answer the same) —
    /// both with messages embedding the failure log. Malformed or
    /// desynced responses are *worker* failures and re-dispatch instead.
    pub fn dispatch(&mut self, job: &ShardJob) -> Result<DispatchReport, String> {
        let job = job.canonicalize()?;
        let spec = job.encode();
        // The dispatch tag namespaces this round's session ids, so a
        // response left in-flight by an aborted earlier dispatch can be
        // recognized and discarded instead of merged into this job.
        self.dispatches += 1;
        let tag = format!("job{}", self.dispatches);
        for w in &mut self.workers {
            w.queue.clear();
        }
        let live = self.live_workers();
        if live == 0 {
            return Err("worker pool has no live workers".to_string());
        }
        let shards = live.min(job.len()).max(1);

        let mut parts: Vec<Option<ShardOutcome>> = (0..shards).map(|_| None).collect();
        let mut retries = 0usize;
        let mut failures: Vec<String> = Vec::new();
        for shard in 0..shards {
            self.assign(shard, shards, &spec, &tag, &mut failures, &mut retries)?;
        }

        while parts.iter().any(Option::is_none) {
            let Some(w) = (0..self.workers.len())
                .find(|&i| self.workers[i].alive && !self.workers[i].queue.is_empty())
            else {
                return Err(format!(
                    "shards outstanding but no live worker holds them ({})",
                    failures.join("; ")
                ));
            };
            let expected = *self.workers[w].queue.front().expect("queue checked non-empty");
            match self.collect_one(w, expected, shards, &tag) {
                Ok(outcome) => {
                    self.workers[w].queue.pop_front();
                    parts[expected] = Some(outcome);
                }
                Err(CollectError::Fatal(message)) => return Err(message),
                Err(CollectError::Worker(message)) => {
                    failures.push(format!("{}: {message}", self.workers[w].transport.describe()));
                    self.workers[w].alive = false;
                    let orphaned: Vec<usize> = self.workers[w].queue.drain(..).collect();
                    for shard in orphaned {
                        retries += 1;
                        self.assign(shard, shards, &spec, &tag, &mut failures, &mut retries)?;
                    }
                }
            }
        }

        let outcome =
            ShardOutcome::merge(parts.into_iter().map(|p| p.expect("loop filled every part")))?;
        Ok(DispatchReport { outcome, shards, retries, failures })
    }

    /// Sends `shard` to the healthiest worker (shortest queue, lowest
    /// index — deterministic), excluding dead ones. A failed send marks
    /// that worker dead, re-queues any shards it was already holding
    /// (they were dispatched once, so they count as retries), and moves
    /// on.
    fn assign(
        &mut self,
        shard: usize,
        shards: usize,
        spec: &str,
        tag: &str,
        failures: &mut Vec<String>,
        retries: &mut usize,
    ) -> Result<(), String> {
        let mut pending = vec![shard];
        while let Some(shard) = pending.pop() {
            loop {
                let target = (0..self.workers.len())
                    .filter(|&i| self.workers[i].alive)
                    .min_by_key(|&i| (self.workers[i].queue.len(), i));
                let Some(w) = target else {
                    return Err(format!(
                        "no live worker left for shard {shard} ({})",
                        failures.join("; ")
                    ));
                };
                match self.workers[w].transport.send(&job_line(spec, shard, shards, tag)) {
                    Ok(()) => {
                        self.workers[w].queue.push_back(shard);
                        break;
                    }
                    Err(e) => {
                        failures.push(format!("{}: {e}", self.workers[w].transport.describe()));
                        self.workers[w].alive = false;
                        // Shards this worker already held would be
                        // silently lost otherwise — orphan them too.
                        let orphaned = self.workers[w].queue.drain(..);
                        *retries += orphaned.len();
                        pending.extend(orphaned);
                    }
                }
            }
        }
        Ok(())
    }

    /// Receives and validates one response from worker `w`, discarding
    /// stale lines left over from an aborted earlier dispatch.
    fn collect_one(
        &mut self,
        w: usize,
        expected: usize,
        shards: usize,
        tag: &str,
    ) -> Result<ShardOutcome, CollectError> {
        let want = format!("{tag}-shard-{expected}");
        loop {
            let line = self.workers[w]
                .transport
                .recv(self.timeout)
                .map_err(|e| CollectError::Worker(e.to_string()))?;
            let obj = parse_object(&line)
                .map_err(|e| CollectError::Worker(format!("unparseable response: {e}")))?;
            // Correlate before anything else: a response tagged by an
            // earlier dispatch is stale in-flight data (that dispatch
            // aborted before collecting it) — drop it and read on. Only
            // a mistag *within* this dispatch means the worker stream
            // is desynced beyond use.
            let session = obj.get("session").and_then(Scalar::as_str).unwrap_or_default();
            if !session.starts_with(&format!("{tag}-")) {
                continue;
            }
            if session != want {
                return Err(CollectError::Worker(format!(
                    "response for {session:?} arrived while {want:?} was expected (worker stream \
                     desynced)"
                )));
            }
            match obj.get("ok").and_then(Scalar::as_bool) {
                Some(true) => {}
                // An explicit rejection is a *job* error: the worker
                // followed the protocol, and every healthy worker would
                // answer the same — abort instead of retrying.
                Some(false) => {
                    let why = obj.get("error").and_then(Scalar::as_str).unwrap_or("unspecified");
                    return Err(CollectError::Fatal(format!(
                        "worker rejected shard {expected}: {why}"
                    )));
                }
                None => {
                    return Err(CollectError::Worker(format!("response without \"ok\": {line}")));
                }
            }
            // From here every malformation is a corrupt worker (an
            // honest endpoint built this output with
            // `encode_worker_output`) — retry the slice elsewhere.
            let output = obj.get("output").and_then(Scalar::as_str).ok_or_else(|| {
                CollectError::Worker(format!("ok response without an \"output\" field: {line}"))
            })?;
            let (shard, of, outcome) = decode_worker_output(output)
                .map_err(|e| CollectError::Worker(format!("shard {expected} output: {e}")))?;
            if (shard, of) != (expected, shards) {
                return Err(CollectError::Worker(format!(
                    "worker output claims shard {shard} of {of} (expected {expected} of {shards})"
                )));
            }
            return Ok(outcome);
        }
    }
}

/// The dispatch line for one shard: the `run_job` command with the whole
/// spec file as a string field, session-tagged per dispatch (see the
/// crate docs for the contract).
fn job_line(spec: &str, shard: usize, of: usize, tag: &str) -> String {
    let mut obj = FlatObject::new();
    obj.insert("cmd".into(), Scalar::Str("run_job".into()));
    obj.insert("session".into(), Scalar::Str(format!("{tag}-shard-{shard}")));
    obj.insert("spec".into(), Scalar::Str(spec.to_string()));
    obj.insert("shard".into(), Scalar::Uint(shard as u64));
    obj.insert("of".into(), Scalar::Uint(of as u64));
    encode_object(&obj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{InProcess, Unreliable};
    use sc_engine::shard::run_in_process;
    use sc_engine::{ColorerSpec, Scenario, SourceSpec};

    fn small_grid() -> ShardJob {
        ShardJob::Grid(
            (0..5)
                .map(|i| {
                    Scenario::new(SourceSpec::exact_degree(40, 4, i), ColorerSpec::StoreAll)
                        .with_seed(i)
                })
                .collect(),
        )
    }

    fn loopback_pool(workers: usize) -> WorkerPool {
        WorkerPool::new(
            (0..workers).map(|_| Box::new(InProcess::new()) as Box<dyn Transport>).collect(),
        )
    }

    #[test]
    fn loopback_dispatch_matches_in_process_bytes() {
        let job = small_grid();
        let reference = run_in_process(&job, 1).unwrap().encode();
        for workers in [1usize, 2, 3, 7] {
            let report = loopback_pool(workers).dispatch(&job).unwrap();
            assert_eq!(report.outcome.encode(), reference, "{workers} loopback workers diverged");
            assert_eq!(report.shards, workers.min(5));
            assert_eq!(report.retries, 0);
            assert!(report.failures.is_empty());
        }
    }

    #[test]
    fn empty_jobs_dispatch_to_one_empty_shard() {
        let job = ShardJob::Grid(Vec::new());
        let report = loopback_pool(3).dispatch(&job).unwrap();
        assert_eq!(report.outcome.encode(), "[]\n");
        assert_eq!(report.shards, 1);
    }

    #[test]
    fn injected_worker_death_triggers_retry_with_identical_bytes() {
        let job = small_grid();
        let reference = run_in_process(&job, 1).unwrap().encode();
        // Worker 1 dies before answering its first shard.
        let transports: Vec<Box<dyn Transport>> = vec![
            Box::new(InProcess::new()),
            Box::new(Unreliable::dying_after(InProcess::new(), 0)),
            Box::new(InProcess::new()),
        ];
        let mut pool = WorkerPool::new(transports);
        let report = pool.dispatch(&job).unwrap();
        assert_eq!(report.outcome.encode(), reference, "retried merge diverged");
        assert_eq!(report.retries, 1);
        assert_eq!(report.failures.len(), 1, "{:?}", report.failures);
        assert!(report.failures[0].contains("injected worker death"));
        assert_eq!(pool.live_workers(), 2);
        // The pool survives: a second dispatch excludes the dead worker.
        let again = pool.dispatch(&job).unwrap();
        assert_eq!(again.outcome.encode(), reference);
        assert_eq!(again.shards, 2, "dead worker must stay excluded");
        assert_eq!(again.retries, 0);
    }

    /// Send succeeds `sends_left` times, then the pipe is dead — the
    /// deterministic stand-in for a worker lost *between* dispatches to
    /// it (its already-queued shards must not be orphaned).
    struct FlakySend {
        inner: InProcess,
        sends_left: usize,
    }

    impl Transport for FlakySend {
        fn describe(&self) -> String {
            "flaky-send".to_string()
        }

        fn send(&mut self, line: &str) -> Result<(), crate::transport::TransportError> {
            if self.sends_left == 0 {
                return Err(crate::transport::TransportError::Closed("flaky pipe".to_string()));
            }
            self.sends_left -= 1;
            self.inner.send(line)
        }

        fn recv(
            &mut self,
            timeout: std::time::Duration,
        ) -> Result<String, crate::transport::TransportError> {
            self.inner.recv(timeout)
        }
    }

    #[test]
    fn send_failure_requeues_the_dead_workers_held_shards() {
        // w0 accepts one send then dies; w1 is dead from the start; w2
        // is healthy. Assignment: shard 0 → w0, shard 1 → (w1 fails) →
        // w2, shard 2 → w0 whose send now fails *while it still holds
        // shard 0* — both must land on w2, not be orphaned.
        let job = small_grid();
        let reference = run_in_process(&job, 1).unwrap().encode();
        let fleet: Vec<Box<dyn Transport>> = vec![
            Box::new(FlakySend { inner: InProcess::new(), sends_left: 1 }),
            Box::new(FlakySend { inner: InProcess::new(), sends_left: 0 }),
            Box::new(InProcess::new()),
        ];
        let mut pool = WorkerPool::new(fleet);
        let report = pool.dispatch(&job).unwrap();
        assert_eq!(report.outcome.encode(), reference, "requeued merge diverged");
        assert_eq!(report.shards, 3);
        // Shard 0 had been dispatched once, so its re-send is a retry;
        // shard 2 was being assigned for the first time and is not.
        assert_eq!(report.retries, 1, "{:?}", report.failures);
        assert_eq!(report.failures.len(), 2, "{:?}", report.failures);
        assert_eq!(pool.live_workers(), 1);
    }

    #[test]
    fn stale_inflight_lines_are_discarded_not_merged() {
        // A response already sitting in the transport when a dispatch
        // starts (the residue of an aborted earlier dispatch) must be
        // recognized by its missing dispatch tag and skipped — merging
        // it would silently corrupt this job's bytes.
        let job = small_grid();
        let reference = run_in_process(&job, 1).unwrap().encode();
        let mut polluted = InProcess::new();
        polluted.send(r#"{"cmd":"stats","session":"stale"}"#).unwrap();
        let mut pool = WorkerPool::new(vec![Box::new(polluted) as Box<dyn Transport>]);
        let report = pool.dispatch(&job).unwrap();
        assert_eq!(report.outcome.encode(), reference, "stale line leaked into the merge");
        assert!(report.failures.is_empty(), "{:?}", report.failures);
    }

    /// Refuses its first dispatch with a protocol-correct `ok:false`
    /// (echoing the session tag), then behaves like a loopback worker.
    struct RefuseOnce {
        inner: InProcess,
        refusal: Option<String>,
        refused: bool,
    }

    impl Transport for RefuseOnce {
        fn describe(&self) -> String {
            "refuse-once".to_string()
        }

        fn send(&mut self, line: &str) -> Result<(), crate::transport::TransportError> {
            if self.refused {
                return self.inner.send(line);
            }
            let session = parse_object(line).unwrap()["session"].as_str().unwrap().to_string();
            self.refusal =
                Some(format!(r#"{{"error":"refused","ok":false,"session":"{session}"}}"#));
            Ok(())
        }

        fn recv(
            &mut self,
            timeout: std::time::Duration,
        ) -> Result<String, crate::transport::TransportError> {
            match self.refusal.take() {
                Some(line) => {
                    self.refused = true;
                    Ok(line)
                }
                None => self.inner.recv(timeout),
            }
        }
    }

    #[test]
    fn explicit_rejection_is_fatal_and_the_pool_recovers_afterwards() {
        let job = small_grid();
        let reference = run_in_process(&job, 1).unwrap().encode();
        let fleet: Vec<Box<dyn Transport>> = vec![
            Box::new(RefuseOnce { inner: InProcess::new(), refusal: None, refused: false }),
            Box::new(InProcess::new()),
        ];
        let mut pool = WorkerPool::new(fleet);
        // An ok:false is a job error: aborted, not retried.
        let e = pool.dispatch(&job).unwrap_err();
        assert!(e.contains("worker rejected shard 0: refused"), "{e}");
        assert_eq!(pool.live_workers(), 2, "a rejection is not a worker death");
        // The abort left w1's un-collected response in flight; the next
        // dispatch must discard it by its stale tag and merge cleanly.
        let report = pool.dispatch(&job).unwrap();
        assert_eq!(report.outcome.encode(), reference, "post-abort merge diverged");
    }

    #[test]
    fn all_workers_dead_is_an_error_naming_the_failures() {
        let job = small_grid();
        let transports: Vec<Box<dyn Transport>> =
            vec![Box::new(Unreliable::dying_after(InProcess::new(), 0))];
        let e = WorkerPool::new(transports).dispatch(&job).unwrap_err();
        assert!(e.contains("no live worker"), "{e}");
        assert!(e.contains("injected worker death"), "{e}");
    }

    #[test]
    fn empty_pool_is_an_error() {
        let e = WorkerPool::new(Vec::new()).dispatch(&small_grid()).unwrap_err();
        assert!(e.contains("no live workers"), "{e}");
    }
}
