//! The work-stealing worker pool: dispatch shard slices to whichever
//! worker is idle, absorb dead workers and stragglers, speculate on the
//! slow ones, merge byte-identically.
//!
//! The pool owns N [`Transport`]s and one invariant: **scheduling never
//! changes the merged bytes**. That holds because the unit of dispatch
//! is a deterministic [`partition`](sc_engine::shard::partition) slice —
//! `(spec, shard, of)` names the same work on every worker — so steals,
//! retries, and speculative duplicates are all just "send the same line
//! to another worker". Shard count is fixed before the first send (it
//! determines the partition), which is why re-dispatch re-uses slices
//! instead of re-partitioning around a dead worker.
//!
//! Two scheduling modes:
//!
//! * **stealing** (default) — each live worker holds at most one
//!   outstanding slice; idle workers pull the next slice from a shared
//!   queue, so a slow or loaded worker bounds only its own slice, not
//!   the dispatch. With [`WorkerPool::with_speculation`], a slice held
//!   past a *soft* deadline (a fraction of the straggler timeout) is
//!   additionally launched on an idle healthy worker and the first
//!   answer wins — free, because both answers carry identical bytes.
//! * **static** ([`WorkerPool::with_static_dispatch`]) — the PR 5
//!   fixed-partition shape: every slice is assigned up front to the
//!   shortest queue. Kept as the baseline `exp_cluster`'s skewed-fleet
//!   comparison measures stealing against.

use crate::transport::{Transport, TransportError};
use sc_engine::flatjson::{encode_object, parse_object, FlatObject, Scalar};
use sc_engine::shard::{decode_worker_output, ShardJob, ShardOutcome};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// What a dispatch produced, beyond the merged outcome: the observability
/// the stealing/straggler/retry machinery owes its caller.
#[derive(Debug)]
pub struct DispatchReport {
    /// The merged job result — byte-identical to
    /// [`run_in_process`](sc_engine::shard::run_in_process).
    pub outcome: ShardOutcome,
    /// Shards the job was split into (`min(live workers, job items)`,
    /// at least 1).
    pub shards: usize,
    /// Shard slices re-dispatched after a worker failure.
    pub retries: usize,
    /// Speculative duplicate launches (a slice held past the soft
    /// deadline sent to a second worker; zero unless
    /// [`WorkerPool::with_speculation`] enabled them).
    pub speculative: usize,
    /// Duplicate answers observed for slices already merged — the cost
    /// side of speculation. Undercounts duplicates still in flight when
    /// the dispatch completes (they are discarded by tag next dispatch).
    pub wasted: usize,
    /// Human-readable worker-failure log, in detection order.
    pub failures: Vec<String>,
}

struct Worker {
    transport: Box<dyn Transport>,
    alive: bool,
    /// Shard ids awaiting responses from this worker, FIFO.
    queue: VecDeque<usize>,
    /// When the current queue head became this worker's oldest
    /// outstanding slice — the anchor for both the hard straggler
    /// deadline and the soft speculation deadline.
    head_since: Instant,
}

/// Everything one `dispatch` call tracks, threaded through the helpers.
struct DispatchState {
    spec: String,
    tag: String,
    shards: usize,
    parts: Vec<Option<ShardOutcome>>,
    /// Slices not yet handed to any worker, FIFO.
    pending: VecDeque<usize>,
    /// Slices that already got their one speculative duplicate.
    speculated: Vec<bool>,
    retries: usize,
    speculative: usize,
    wasted: usize,
    failures: Vec<String>,
}

/// N transports + a straggler deadline.
///
/// ```no_run
/// use sc_cluster::{InProcess, WorkerPool};
/// use sc_engine::shard::{smoke_grid, ShardJob};
///
/// let transports: Vec<_> = (0..4)
///     .map(|_| Box::new(InProcess::new()) as Box<dyn sc_cluster::Transport>)
///     .collect();
/// let report = WorkerPool::new(transports).dispatch(&ShardJob::Grid(smoke_grid())).unwrap();
/// println!("{}", report.outcome.encode());
/// ```
pub struct WorkerPool {
    workers: Vec<Worker>,
    timeout: Duration,
    /// Soft deadline as a fraction of `timeout`; `None` disables
    /// speculative re-dispatch.
    speculate_after: Option<f64>,
    /// Eager fixed-partition assignment instead of work stealing.
    static_dispatch: bool,
    /// Dispatches run so far — the per-dispatch session tag (`jobN-…`)
    /// that lets the collector recognize and discard stale responses
    /// left in-flight by an aborted earlier dispatch.
    dispatches: usize,
}

/// Default straggler deadline: generous, because a false positive costs
/// a duplicate slice run while a false negative only delays the merge.
const DEFAULT_TIMEOUT: Duration = Duration::from_secs(600);

/// How long one poll of a busy worker waits before moving to the next.
/// Bounds steal/deadline-detection latency at `busy workers × tick`
/// without hot-spinning (transports sleep inside `recv`).
const POLL_TICK: Duration = Duration::from_millis(5);

impl WorkerPool {
    /// A pool over `transports`.
    pub fn new(transports: Vec<Box<dyn Transport>>) -> Self {
        let workers = transports
            .into_iter()
            .map(|transport| Worker {
                transport,
                alive: true,
                queue: VecDeque::new(),
                head_since: Instant::now(),
            })
            .collect();
        Self {
            workers,
            timeout: DEFAULT_TIMEOUT,
            speculate_after: None,
            static_dispatch: false,
            dispatches: 0,
        }
    }

    /// Sets the per-slice straggler deadline.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Enables speculative re-dispatch: a slice held past
    /// `fraction × timeout` is also launched on an idle healthy worker,
    /// first answer wins. At most one duplicate per slice; pending
    /// (never-launched) slices always take priority over duplicates.
    ///
    /// # Panics
    /// `fraction` must be in `(0, 1]` — a duplicate before the work is
    /// even expected to finish, or after the hard deadline already
    /// fired, is a configuration bug.
    #[must_use]
    pub fn with_speculation(mut self, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "speculation fraction must be in (0, 1], got {fraction}"
        );
        self.speculate_after = Some(fraction);
        self
    }

    /// Switches to eager fixed-partition assignment (every slice placed
    /// on the shortest queue before collection starts) — the PR 5
    /// baseline that skewed-fleet benchmarks compare stealing against.
    #[must_use]
    pub fn with_static_dispatch(mut self) -> Self {
        self.static_dispatch = true;
        self
    }

    /// Workers still considered healthy.
    pub fn live_workers(&self) -> usize {
        self.workers.iter().filter(|w| w.alive).count()
    }

    /// Runs the whole job across the pool and merges the shard outputs.
    ///
    /// Dead workers and stragglers are survivable: their slices are
    /// re-dispatched to healthy workers (never back to a failed one).
    /// The pool stays usable afterwards — dead workers stay excluded
    /// from later dispatches.
    ///
    /// # Errors
    /// Errors when no workers remain for an outstanding shard or on an
    /// `"ok":false` job response (every worker would answer the same) —
    /// both with messages embedding the failure log. Malformed or
    /// desynced responses are *worker* failures and re-dispatch instead.
    pub fn dispatch(&mut self, job: &ShardJob) -> Result<DispatchReport, String> {
        let job = job.canonicalize()?;
        let spec = job.encode();
        // The dispatch tag namespaces this round's session ids, so a
        // response left in-flight by an aborted earlier dispatch can be
        // recognized and discarded instead of merged into this job.
        self.dispatches += 1;
        let tag = format!("job{}", self.dispatches);
        for w in &mut self.workers {
            w.queue.clear();
        }
        let live = self.live_workers();
        if live == 0 {
            return Err("worker pool has no live workers".to_string());
        }
        let shards = live.min(job.len()).max(1);

        let mut st = DispatchState {
            spec,
            tag,
            shards,
            parts: (0..shards).map(|_| None).collect(),
            pending: (0..shards).collect(),
            speculated: vec![false; shards],
            retries: 0,
            speculative: 0,
            wasted: 0,
            failures: Vec::new(),
        };

        while st.parts.iter().any(Option::is_none) {
            self.fill(&mut st)?;
            let busy: Vec<usize> = (0..self.workers.len())
                .filter(|&i| self.workers[i].alive && !self.workers[i].queue.is_empty())
                .collect();
            if busy.is_empty() {
                let shard = match st.pending.front() {
                    Some(&s) => s,
                    None => st.parts.iter().position(Option::is_none).expect("loop guard"),
                };
                return Err(format!(
                    "no live worker left for shard {shard} ({})",
                    st.failures.join("; ")
                ));
            }
            let tick = POLL_TICK.min(self.timeout);
            for w in busy {
                // Earlier polls this round may have killed or drained
                // this worker (a desync report, a speculative send).
                if !self.workers[w].alive || self.workers[w].queue.is_empty() {
                    continue;
                }
                match self.workers[w].transport.recv(tick) {
                    Ok(line) => self.accept(w, &line, &mut st)?,
                    Err(TransportError::Timeout(_)) => {
                        let waited = self.workers[w].head_since.elapsed();
                        if waited >= self.timeout {
                            let msg = TransportError::Timeout(self.timeout).to_string();
                            self.fail_worker(w, &msg, &mut st);
                        } else if let Some(fraction) = self.speculate_after {
                            let head = *self.workers[w].queue.front().expect("busy worker");
                            if !st.speculated[head]
                                && st.parts[head].is_none()
                                && waited >= self.timeout.mul_f64(fraction)
                            {
                                self.speculate(head, w, &mut st);
                            }
                        }
                    }
                    Err(e) => {
                        let msg = e.to_string();
                        self.fail_worker(w, &msg, &mut st);
                    }
                }
            }
        }

        let outcome =
            ShardOutcome::merge(st.parts.into_iter().map(|p| p.expect("loop filled every part")))?;
        Ok(DispatchReport {
            outcome,
            shards,
            retries: st.retries,
            speculative: st.speculative,
            wasted: st.wasted,
            failures: st.failures,
        })
    }

    /// Hands pending slices to workers: stealing mode gives one slice to
    /// each idle live worker; static mode eagerly drains the queue onto
    /// the shortest queues (the fixed-partition baseline).
    fn fill(&mut self, st: &mut DispatchState) -> Result<(), String> {
        if self.static_dispatch {
            while let Some(shard) = st.pending.pop_front() {
                self.assign(shard, st)?;
            }
            return Ok(());
        }
        while !st.pending.is_empty() {
            let Some(w) = (0..self.workers.len())
                .find(|&i| self.workers[i].alive && self.workers[i].queue.is_empty())
            else {
                return Ok(());
            };
            let shard = st.pending.pop_front().expect("checked non-empty");
            match self.workers[w].transport.send(&job_line(&st.spec, shard, st.shards, &st.tag)) {
                Ok(()) => {
                    self.workers[w].queue.push_back(shard);
                    self.workers[w].head_since = Instant::now();
                }
                Err(e) => {
                    // The slice never reached a worker — hand it to the
                    // next idle one without counting a retry.
                    let msg = e.to_string();
                    self.fail_worker(w, &msg, st);
                    st.pending.push_front(shard);
                }
            }
        }
        Ok(())
    }

    /// Static-mode placement: sends `shard` to the healthiest worker
    /// (shortest queue, lowest index — deterministic), excluding dead
    /// ones. A failed send marks that worker dead, re-queues any shards
    /// it was already holding (they were dispatched once, so they count
    /// as retries), and moves on.
    fn assign(&mut self, shard: usize, st: &mut DispatchState) -> Result<(), String> {
        let mut pending = vec![shard];
        while let Some(shard) = pending.pop() {
            loop {
                let target = (0..self.workers.len())
                    .filter(|&i| self.workers[i].alive)
                    .min_by_key(|&i| (self.workers[i].queue.len(), i));
                let Some(w) = target else {
                    return Err(format!(
                        "no live worker left for shard {shard} ({})",
                        st.failures.join("; ")
                    ));
                };
                match self.workers[w].transport.send(&job_line(&st.spec, shard, st.shards, &st.tag))
                {
                    Ok(()) => {
                        if self.workers[w].queue.is_empty() {
                            self.workers[w].head_since = Instant::now();
                        }
                        self.workers[w].queue.push_back(shard);
                        break;
                    }
                    Err(e) => {
                        st.failures.push(format!("{}: {e}", self.workers[w].transport.describe()));
                        self.workers[w].alive = false;
                        // Shards this worker already held would be
                        // silently lost otherwise — orphan them too.
                        let orphaned = self.workers[w].queue.drain(..);
                        st.retries += orphaned.len();
                        pending.extend(orphaned);
                    }
                }
            }
        }
        Ok(())
    }

    /// Launches a speculative duplicate of `shard` (held by `holder`) on
    /// an idle healthy worker, if one exists. At most one duplicate per
    /// slice; a failed duplicate send kills only the idle worker and
    /// leaves the slice eligible for the next tick.
    fn speculate(&mut self, shard: usize, holder: usize, st: &mut DispatchState) {
        let Some(v) = (0..self.workers.len())
            .find(|&i| i != holder && self.workers[i].alive && self.workers[i].queue.is_empty())
        else {
            return;
        };
        match self.workers[v].transport.send(&job_line(&st.spec, shard, st.shards, &st.tag)) {
            Ok(()) => {
                self.workers[v].queue.push_back(shard);
                self.workers[v].head_since = Instant::now();
                st.speculated[shard] = true;
                st.speculative += 1;
            }
            Err(e) => {
                let msg = e.to_string();
                self.fail_worker(v, &msg, st);
            }
        }
    }

    /// Validates one response line from worker `w`: discard stale lines
    /// from aborted dispatches, fail the worker on malformed/desynced
    /// responses, merge (or count as wasted) a valid slice output.
    ///
    /// # Errors
    /// Only for the fatal `"ok":false` job rejection — every other
    /// malformation is a *worker* failure handled internally.
    fn accept(&mut self, w: usize, line: &str, st: &mut DispatchState) -> Result<(), String> {
        let head = *self.workers[w].queue.front().expect("busy worker has a head");
        let want = format!("{}-shard-{head}", st.tag);
        let obj = match parse_object(line) {
            Ok(obj) => obj,
            Err(e) => {
                self.fail_worker(w, &format!("unparseable response: {e}"), st);
                return Ok(());
            }
        };
        // Correlate before anything else: a response tagged by an
        // earlier dispatch is stale in-flight data (that dispatch
        // aborted before collecting it) — drop it and poll on. Only a
        // mistag *within* this dispatch means the worker stream is
        // desynced beyond use.
        let session = obj.get("session").and_then(Scalar::as_str).unwrap_or_default().to_string();
        if !session.starts_with(&format!("{}-", st.tag)) {
            return Ok(());
        }
        if session != want {
            self.fail_worker(
                w,
                &format!(
                    "response for {session:?} arrived while {want:?} was expected (worker stream \
                     desynced)"
                ),
                st,
            );
            return Ok(());
        }
        match obj.get("ok").and_then(Scalar::as_bool) {
            Some(true) => {}
            // An explicit rejection is a *job* error: the worker
            // followed the protocol, and every healthy worker would
            // answer the same — abort instead of retrying.
            Some(false) => {
                let why = obj.get("error").and_then(Scalar::as_str).unwrap_or("unspecified");
                return Err(format!("worker rejected shard {head}: {why}"));
            }
            None => {
                self.fail_worker(w, &format!("response without \"ok\": {line}"), st);
                return Ok(());
            }
        }
        // From here every malformation is a corrupt worker (an honest
        // endpoint built this output with `encode_worker_output`) —
        // retry the slice elsewhere.
        let Some(output) = obj.get("output").and_then(Scalar::as_str) else {
            self.fail_worker(w, &format!("ok response without an \"output\" field: {line}"), st);
            return Ok(());
        };
        let (shard, of, outcome) = match decode_worker_output(output) {
            Ok(decoded) => decoded,
            Err(e) => {
                self.fail_worker(w, &format!("shard {head} output: {e}"), st);
                return Ok(());
            }
        };
        if (shard, of) != (head, st.shards) {
            self.fail_worker(
                w,
                &format!(
                    "worker output claims shard {shard} of {of} (expected {head} of {})",
                    st.shards
                ),
                st,
            );
            return Ok(());
        }
        self.workers[w].queue.pop_front();
        self.workers[w].head_since = Instant::now();
        if st.parts[head].is_none() {
            st.parts[head] = Some(outcome);
        } else {
            // A speculative twin already merged this slice; identical
            // bytes, so the only loss is the duplicate compute.
            st.wasted += 1;
        }
        Ok(())
    }

    /// Records `w`'s failure, marks it dead, and re-queues its orphaned
    /// slices — except ones already merged or still held by a live
    /// speculative twin (re-running those would only add waste).
    fn fail_worker(&mut self, w: usize, message: &str, st: &mut DispatchState) {
        st.failures.push(format!("{}: {message}", self.workers[w].transport.describe()));
        self.workers[w].alive = false;
        let orphaned: Vec<usize> = self.workers[w].queue.drain(..).collect();
        for shard in orphaned {
            if st.parts[shard].is_some() {
                continue;
            }
            let held_by_twin = self.workers.iter().any(|v| v.alive && v.queue.contains(&shard));
            if held_by_twin {
                continue;
            }
            st.retries += 1;
            st.pending.push_back(shard);
        }
    }
}

/// The dispatch line for one shard: the `run_job` command with the whole
/// spec file as a string field, session-tagged per dispatch (see the
/// crate docs for the contract).
fn job_line(spec: &str, shard: usize, of: usize, tag: &str) -> String {
    let mut obj = FlatObject::new();
    obj.insert("cmd".into(), Scalar::Str("run_job".into()));
    obj.insert("session".into(), Scalar::Str(format!("{tag}-shard-{shard}")));
    obj.insert("spec".into(), Scalar::Str(spec.to_string()));
    obj.insert("shard".into(), Scalar::Uint(shard as u64));
    obj.insert("of".into(), Scalar::Uint(of as u64));
    encode_object(&obj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{InProcess, Unreliable};
    use sc_engine::shard::run_in_process;
    use sc_engine::{ColorerSpec, Scenario, SourceSpec};

    fn small_grid() -> ShardJob {
        ShardJob::Grid(
            (0..5)
                .map(|i| {
                    Scenario::new(SourceSpec::exact_degree(40, 4, i), ColorerSpec::StoreAll)
                        .with_seed(i)
                })
                .collect(),
        )
    }

    fn loopback_pool(workers: usize) -> WorkerPool {
        WorkerPool::new(
            (0..workers).map(|_| Box::new(InProcess::new()) as Box<dyn Transport>).collect(),
        )
    }

    #[test]
    fn loopback_dispatch_matches_in_process_bytes() {
        let job = small_grid();
        let reference = run_in_process(&job, 1).unwrap().encode();
        for workers in [1usize, 2, 3, 7] {
            let report = loopback_pool(workers).dispatch(&job).unwrap();
            assert_eq!(report.outcome.encode(), reference, "{workers} loopback workers diverged");
            assert_eq!(report.shards, workers.min(5));
            assert_eq!(report.retries, 0);
            assert_eq!(report.speculative, 0, "speculation must be off by default");
            assert!(report.failures.is_empty());
        }
    }

    #[test]
    fn static_dispatch_matches_in_process_bytes() {
        let job = small_grid();
        let reference = run_in_process(&job, 1).unwrap().encode();
        for workers in [1usize, 3, 7] {
            let report = loopback_pool(workers).with_static_dispatch().dispatch(&job).unwrap();
            assert_eq!(report.outcome.encode(), reference, "{workers} static workers diverged");
            assert_eq!(report.shards, workers.min(5));
            assert_eq!(report.retries, 0);
        }
    }

    #[test]
    fn empty_jobs_dispatch_to_one_empty_shard() {
        let job = ShardJob::Grid(Vec::new());
        let report = loopback_pool(3).dispatch(&job).unwrap();
        assert_eq!(report.outcome.encode(), "[]\n");
        assert_eq!(report.shards, 1);
    }

    #[test]
    fn single_item_jobs_dispatch_to_one_shard_with_idle_workers() {
        // A 1-item job across 4 workers: one shard, three workers never
        // touched, merge still byte-identical (the stealing queue must
        // not invent work for idle workers).
        let job = ShardJob::Grid(vec![Scenario::new(
            SourceSpec::exact_degree(40, 4, 9),
            ColorerSpec::StoreAll,
        )]);
        let reference = run_in_process(&job, 1).unwrap().encode();
        let report = loopback_pool(4).dispatch(&job).unwrap();
        assert_eq!(report.outcome.encode(), reference);
        assert_eq!(report.shards, 1);
        assert_eq!(report.retries, 0);
        assert!(report.failures.is_empty());
    }

    #[test]
    fn injected_worker_death_triggers_retry_with_identical_bytes() {
        let job = small_grid();
        let reference = run_in_process(&job, 1).unwrap().encode();
        // Worker 1 dies before answering its first shard.
        let transports: Vec<Box<dyn Transport>> = vec![
            Box::new(InProcess::new()),
            Box::new(Unreliable::dying_after(InProcess::new(), 0)),
            Box::new(InProcess::new()),
        ];
        let mut pool = WorkerPool::new(transports);
        let report = pool.dispatch(&job).unwrap();
        assert_eq!(report.outcome.encode(), reference, "retried merge diverged");
        assert_eq!(report.retries, 1);
        assert_eq!(report.failures.len(), 1, "{:?}", report.failures);
        assert!(report.failures[0].contains("injected worker death"));
        assert_eq!(pool.live_workers(), 2);
        // The pool survives: a second dispatch excludes the dead worker.
        let again = pool.dispatch(&job).unwrap();
        assert_eq!(again.outcome.encode(), reference);
        assert_eq!(again.shards, 2, "dead worker must stay excluded");
        assert_eq!(again.retries, 0);
    }

    #[test]
    fn all_but_one_worker_dead_mid_steal_still_merges_identically() {
        // Four workers, three die on their first answer: every orphaned
        // slice must funnel to the one survivor through the steal queue.
        let job = small_grid();
        let reference = run_in_process(&job, 1).unwrap().encode();
        let transports: Vec<Box<dyn Transport>> = vec![
            Box::new(InProcess::new()),
            Box::new(Unreliable::dying_after(InProcess::new(), 0)),
            Box::new(Unreliable::dying_after(InProcess::new(), 0)),
            Box::new(Unreliable::dying_after(InProcess::new(), 0)),
        ];
        let mut pool = WorkerPool::new(transports);
        let report = pool.dispatch(&job).unwrap();
        assert_eq!(report.outcome.encode(), reference, "survivor merge diverged");
        assert_eq!(report.shards, 4);
        assert_eq!(report.retries, 3, "{:?}", report.failures);
        assert_eq!(report.failures.len(), 3, "{:?}", report.failures);
        assert_eq!(pool.live_workers(), 1);
    }

    /// Computes answers eagerly (an [`InProcess`] loopback) but reports
    /// a straggle on its first `polls_left` receives, without consuming
    /// wall-clock time — so speculation races play out deterministically
    /// in poll-round order instead of depending on sleep timing.
    struct CountedDelay {
        inner: InProcess,
        polls_left: usize,
    }

    impl Transport for CountedDelay {
        fn describe(&self) -> String {
            "counted-delay".to_string()
        }

        fn send(&mut self, line: &str) -> Result<(), crate::transport::TransportError> {
            self.inner.send(line)
        }

        fn recv(
            &mut self,
            timeout: std::time::Duration,
        ) -> Result<String, crate::transport::TransportError> {
            if self.polls_left > 0 {
                self.polls_left -= 1;
                return Err(crate::transport::TransportError::Timeout(timeout));
            }
            self.inner.recv(timeout)
        }
    }

    #[test]
    fn speculation_races_the_original_and_first_answer_wins() {
        // A near-zero soft deadline makes every straggling slice
        // speculation-eligible on its first timed-out poll, so the race
        // unfolds deterministically in poll-round order:
        //   round 1 — w1 answers its slice; w2's slice (6 polls of
        //             delay) speculates onto the now-idle w1;
        //   round 2 — w1's duplicate answers first: the *duplicate*
        //             wins, w2's eventual answer is left in flight;
        //   round 3 — w0's slice (3 polls) speculates onto w1;
        //   round 4 — w0's own answer lands first, then w1's duplicate:
        //             the *original* wins and the duplicate is wasted.
        // Both race directions resolve to byte-identical merges.
        let job = small_grid();
        let reference = run_in_process(&job, 1).unwrap().encode();
        let transports: Vec<Box<dyn Transport>> = vec![
            Box::new(CountedDelay { inner: InProcess::new(), polls_left: 3 }),
            Box::new(InProcess::new()),
            Box::new(CountedDelay { inner: InProcess::new(), polls_left: 6 }),
        ];
        let mut pool = WorkerPool::new(transports)
            .with_timeout(Duration::from_secs(600))
            .with_speculation(1e-9);
        let report = pool.dispatch(&job).unwrap();
        assert_eq!(report.outcome.encode(), reference, "speculative merge diverged");
        assert_eq!(report.shards, 3);
        assert_eq!(report.retries, 0, "{:?}", report.failures);
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        assert_eq!(report.speculative, 2, "both stragglers must speculate");
        assert_eq!(report.wasted, 1, "w1's late duplicate must be counted, not merged");
        assert_eq!(pool.live_workers(), 3, "slow is not dead");
        // The pool stays clean: w2's answer was still in flight when the
        // dispatch completed; the next dispatch must discard it by its
        // stale tag, not merge it.
        let again = pool.dispatch(&job).unwrap();
        assert_eq!(again.outcome.encode(), reference, "post-speculation merge diverged");
    }

    #[test]
    #[should_panic(expected = "speculation fraction")]
    fn out_of_range_speculation_fractions_are_rejected() {
        let _ = loopback_pool(1).with_speculation(1.5);
    }

    /// Send succeeds `sends_left` times, then the pipe is dead — the
    /// deterministic stand-in for a worker lost *between* dispatches to
    /// it (its already-queued shards must not be orphaned).
    struct FlakySend {
        inner: InProcess,
        sends_left: usize,
    }

    impl Transport for FlakySend {
        fn describe(&self) -> String {
            "flaky-send".to_string()
        }

        fn send(&mut self, line: &str) -> Result<(), crate::transport::TransportError> {
            if self.sends_left == 0 {
                return Err(crate::transport::TransportError::Closed("flaky pipe".to_string()));
            }
            self.sends_left -= 1;
            self.inner.send(line)
        }

        fn recv(
            &mut self,
            timeout: std::time::Duration,
        ) -> Result<String, crate::transport::TransportError> {
            self.inner.recv(timeout)
        }
    }

    #[test]
    fn send_failure_requeues_the_dead_workers_held_shards() {
        // Static (eager) mode, where a worker holds several shards at
        // once: w0 accepts one send then dies; w1 is dead from the
        // start; w2 is healthy. Assignment: shard 0 → w0, shard 1 →
        // (w1 fails) → w2, shard 2 → w0 whose send now fails *while it
        // still holds shard 0* — both must land on w2, not be orphaned.
        let job = small_grid();
        let reference = run_in_process(&job, 1).unwrap().encode();
        let fleet: Vec<Box<dyn Transport>> = vec![
            Box::new(FlakySend { inner: InProcess::new(), sends_left: 1 }),
            Box::new(FlakySend { inner: InProcess::new(), sends_left: 0 }),
            Box::new(InProcess::new()),
        ];
        let mut pool = WorkerPool::new(fleet).with_static_dispatch();
        let report = pool.dispatch(&job).unwrap();
        assert_eq!(report.outcome.encode(), reference, "requeued merge diverged");
        assert_eq!(report.shards, 3);
        // Shard 0 had been dispatched once, so its re-send is a retry;
        // shard 2 was being assigned for the first time and is not.
        assert_eq!(report.retries, 1, "{:?}", report.failures);
        assert_eq!(report.failures.len(), 2, "{:?}", report.failures);
        assert_eq!(pool.live_workers(), 1);
    }

    #[test]
    fn stealing_send_failure_hands_the_undispatched_slice_onward() {
        // The stealing analogue: a send failure before the slice ever
        // ran is a failure but *not* a retry — the slice just moves to
        // the next idle worker.
        let job = small_grid();
        let reference = run_in_process(&job, 1).unwrap().encode();
        let fleet: Vec<Box<dyn Transport>> = vec![
            Box::new(FlakySend { inner: InProcess::new(), sends_left: 0 }),
            Box::new(InProcess::new()),
        ];
        let mut pool = WorkerPool::new(fleet);
        let report = pool.dispatch(&job).unwrap();
        assert_eq!(report.outcome.encode(), reference, "handed-on merge diverged");
        assert_eq!(report.shards, 2);
        assert_eq!(report.retries, 0, "{:?}", report.failures);
        assert_eq!(report.failures.len(), 1, "{:?}", report.failures);
        assert_eq!(pool.live_workers(), 1);
    }

    #[test]
    fn stale_inflight_lines_are_discarded_not_merged() {
        // A response already sitting in the transport when a dispatch
        // starts (the residue of an aborted earlier dispatch) must be
        // recognized by its missing dispatch tag and skipped — merging
        // it would silently corrupt this job's bytes.
        let job = small_grid();
        let reference = run_in_process(&job, 1).unwrap().encode();
        let mut polluted = InProcess::new();
        polluted.send(r#"{"cmd":"stats","session":"stale"}"#).unwrap();
        let mut pool = WorkerPool::new(vec![Box::new(polluted) as Box<dyn Transport>]);
        let report = pool.dispatch(&job).unwrap();
        assert_eq!(report.outcome.encode(), reference, "stale line leaked into the merge");
        assert!(report.failures.is_empty(), "{:?}", report.failures);
    }

    /// Refuses its first dispatch with a protocol-correct `ok:false`
    /// (echoing the session tag), then behaves like a loopback worker.
    struct RefuseOnce {
        inner: InProcess,
        refusal: Option<String>,
        refused: bool,
    }

    impl Transport for RefuseOnce {
        fn describe(&self) -> String {
            "refuse-once".to_string()
        }

        fn send(&mut self, line: &str) -> Result<(), crate::transport::TransportError> {
            if self.refused {
                return self.inner.send(line);
            }
            let session = parse_object(line).unwrap()["session"].as_str().unwrap().to_string();
            self.refusal =
                Some(format!(r#"{{"error":"refused","ok":false,"session":"{session}"}}"#));
            Ok(())
        }

        fn recv(
            &mut self,
            timeout: std::time::Duration,
        ) -> Result<String, crate::transport::TransportError> {
            match self.refusal.take() {
                Some(line) => {
                    self.refused = true;
                    Ok(line)
                }
                None => self.inner.recv(timeout),
            }
        }
    }

    #[test]
    fn explicit_rejection_is_fatal_and_the_pool_recovers_afterwards() {
        let job = small_grid();
        let reference = run_in_process(&job, 1).unwrap().encode();
        let fleet: Vec<Box<dyn Transport>> = vec![
            Box::new(RefuseOnce { inner: InProcess::new(), refusal: None, refused: false }),
            Box::new(InProcess::new()),
        ];
        let mut pool = WorkerPool::new(fleet);
        // An ok:false is a job error: aborted, not retried.
        let e = pool.dispatch(&job).unwrap_err();
        assert!(e.contains("worker rejected shard 0: refused"), "{e}");
        assert_eq!(pool.live_workers(), 2, "a rejection is not a worker death");
        // The abort left w1's un-collected response in flight; the next
        // dispatch must discard it by its stale tag and merge cleanly.
        let report = pool.dispatch(&job).unwrap();
        assert_eq!(report.outcome.encode(), reference, "post-abort merge diverged");
    }

    #[test]
    fn all_workers_dead_is_an_error_naming_the_failures() {
        let job = small_grid();
        let transports: Vec<Box<dyn Transport>> =
            vec![Box::new(Unreliable::dying_after(InProcess::new(), 0))];
        let e = WorkerPool::new(transports).dispatch(&job).unwrap_err();
        assert!(e.contains("no live worker"), "{e}");
        assert!(e.contains("injected worker death"), "{e}");
    }

    #[test]
    fn empty_pool_is_an_error() {
        let e = WorkerPool::new(Vec::new()).dispatch(&small_grid()).unwrap_err();
        assert!(e.contains("no live workers"), "{e}");
    }
}
