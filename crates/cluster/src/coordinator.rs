//! The cluster coordinator: declarative transport fleets, one-call runs.
//!
//! [`TransportSpec`] names a fleet the way [`sc_engine::ColorerSpec`]
//! names an algorithm — plain data a CLI flag can select — and
//! [`ClusterCoordinator::run`] builds it, dispatches through a
//! [`WorkerPool`], and returns the merged [`DispatchReport`]. This is
//! the `streamcolor shard --transport {process,stdio,tcp}` back end.

use crate::pool::{DispatchReport, WorkerPool};
use crate::transport::{ChildStdio, InProcess, Tcp, Transport};
use sc_engine::shard::ShardJob;
use std::time::Duration;

/// Which worker fleet to build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportSpec {
    /// `workers` loopback services in this process — full protocol
    /// fidelity, no spawn cost, no parallelism. The overhead floor.
    InProcess {
        /// Loopback workers to host.
        workers: usize,
    },
    /// `workers` child processes of `command` (program + args), each
    /// speaking the protocol over its stdin/stdout — e.g.
    /// `["streamcolor", "serve"]` or `["shard_worker", "--serve"]`.
    ChildStdio {
        /// Program and arguments to spawn per worker.
        command: Vec<String>,
        /// Worker processes to spawn.
        workers: usize,
    },
    /// `connections` sockets to a `streamcolor serve --listen` endpoint
    /// (each connection is an independent worker; the listener serves
    /// them on its own threads).
    Tcp {
        /// The listener address, e.g. `127.0.0.1:7841`.
        addr: String,
        /// Concurrent connections (= workers) to open.
        connections: usize,
    },
}

impl TransportSpec {
    /// Builds the fleet.
    ///
    /// # Errors
    /// Errors on a zero-sized fleet, an empty command, a failed spawn,
    /// or a failed connection — with a message naming the endpoint.
    pub fn build(&self) -> Result<Vec<Box<dyn Transport>>, String> {
        let count = match self {
            TransportSpec::InProcess { workers } | TransportSpec::ChildStdio { workers, .. } => {
                *workers
            }
            TransportSpec::Tcp { connections, .. } => *connections,
        };
        if count == 0 {
            return Err("transport fleet needs at least 1 worker".to_string());
        }
        (0..count)
            .map(|_| -> Result<Box<dyn Transport>, String> {
                match self {
                    TransportSpec::InProcess { .. } => Ok(Box::new(InProcess::new())),
                    TransportSpec::ChildStdio { command, .. } => {
                        let (program, args) =
                            command.split_first().ok_or("child command is empty")?;
                        Ok(Box::new(ChildStdio::spawn(program, args)?))
                    }
                    TransportSpec::Tcp { addr, .. } => Ok(Box::new(Tcp::connect(addr)?)),
                }
            })
            .collect()
    }
}

/// Builds a fleet per run and dispatches a job through it.
///
/// The determinism law this layer adds (tested in
/// `tests/cluster_determinism.rs`, gated by CI's `cluster-smoke` job):
/// for every [`TransportSpec`] and worker count, and under any worker
/// deaths the pool survives, [`ClusterCoordinator::run`] merges to bytes
/// identical to [`sc_engine::shard::run_in_process`].
#[derive(Debug, Clone)]
pub struct ClusterCoordinator {
    /// The fleet to build.
    pub spec: TransportSpec,
    /// Straggler deadline per response (see [`WorkerPool::with_timeout`]).
    pub timeout: Duration,
}

impl ClusterCoordinator {
    /// A coordinator over `spec` with the pool's default deadline.
    pub fn new(spec: TransportSpec) -> Self {
        Self { spec, timeout: Duration::from_secs(600) }
    }

    /// Sets the straggler deadline.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Builds the fleet, dispatches, merges.
    ///
    /// # Errors
    /// Propagates fleet-build and dispatch errors.
    pub fn run(&self, job: &ShardJob) -> Result<DispatchReport, String> {
        let transports = self.spec.build()?;
        WorkerPool::new(transports).with_timeout(self.timeout).dispatch(job)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_engine::shard::run_in_process;
    use sc_engine::{ColorerSpec, Scenario, SourceSpec};

    #[test]
    fn in_process_fleet_reproduces_the_reference() {
        let job = ShardJob::Grid(vec![
            Scenario::new(SourceSpec::exact_degree(40, 4, 1), ColorerSpec::Trivial),
            Scenario::new(SourceSpec::exact_degree(40, 4, 2), ColorerSpec::StoreAll),
        ]);
        let coordinator = ClusterCoordinator::new(TransportSpec::InProcess { workers: 2 });
        let report = coordinator.run(&job).unwrap();
        assert_eq!(report.outcome.encode(), run_in_process(&job, 1).unwrap().encode());
    }

    #[test]
    fn degenerate_fleets_are_errors() {
        let build_err = |spec: TransportSpec| spec.build().err().expect("fleet must fail");
        assert!(build_err(TransportSpec::InProcess { workers: 0 }).contains("at least 1"));
        assert!(build_err(TransportSpec::ChildStdio { command: Vec::new(), workers: 1 })
            .contains("empty"));
        assert!(build_err(TransportSpec::ChildStdio {
            command: vec!["/nonexistent/worker-binary".into()],
            workers: 1
        })
        .contains("cannot spawn"));
        assert!(build_err(TransportSpec::Tcp { addr: "127.0.0.1:1".into(), connections: 1 })
            .contains("cannot connect"));
    }
}
