//! The cluster coordinator: declarative transport fleets, one-call runs.
//!
//! [`TransportSpec`] names a fleet the way [`sc_engine::ColorerSpec`]
//! names an algorithm — plain data a CLI flag can select — and
//! [`ClusterCoordinator::run`] builds it, dispatches through a
//! [`WorkerPool`], and returns the merged [`DispatchReport`]. This is
//! the `streamcolor shard --transport {process,stdio,tcp,ssh}` back
//! end; the scheduling knobs ([`ClusterCoordinator::with_speculation`],
//! [`ClusterCoordinator::with_static_dispatch`],
//! [`ClusterCoordinator::with_skewed_worker`]) are the
//! `--speculate-after` / `--dispatch` / `--skew-ms` flags.

use crate::pool::{DispatchReport, WorkerPool};
use crate::transport::{ChildStdio, InProcess, Ssh, Tcp, Transport, Unreliable};
use sc_engine::shard::ShardJob;
use std::time::Duration;

/// Which worker fleet to build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportSpec {
    /// `workers` loopback services in this process — full protocol
    /// fidelity, no spawn cost, no parallelism. The overhead floor.
    InProcess {
        /// Loopback workers to host.
        workers: usize,
    },
    /// `workers` child processes of `command` (program + args), each
    /// speaking the protocol over its stdin/stdout — e.g.
    /// `["streamcolor", "serve"]` or `["shard_worker", "--serve"]`.
    ChildStdio {
        /// Program and arguments to spawn per worker.
        command: Vec<String>,
        /// Worker processes to spawn.
        workers: usize,
    },
    /// `connections` sockets to a `streamcolor serve --listen` endpoint
    /// (each connection is an independent worker; the listener serves
    /// them on its own threads).
    Tcp {
        /// The listener address, e.g. `127.0.0.1:7841`.
        addr: String,
        /// Concurrent connections (= workers) to open.
        connections: usize,
    },
    /// `connections` remote workers on one host, each an
    /// `ssh host streamcolor serve` process spoken to over the ssh
    /// client's pipes ([`Ssh`]).
    Ssh {
        /// The destination, `user@host[:path]` (`path` defaults to
        /// `streamcolor` on the remote `PATH`).
        dest: String,
        /// Remote worker processes (= ssh connections) to start.
        connections: usize,
    },
}

impl TransportSpec {
    /// Builds the fleet.
    ///
    /// # Errors
    /// Errors on a zero-sized fleet, an empty command, a malformed ssh
    /// destination, a failed spawn, or a failed connection — with a
    /// message naming the endpoint.
    pub fn build(&self) -> Result<Vec<Box<dyn Transport>>, String> {
        let count = match self {
            TransportSpec::InProcess { workers } | TransportSpec::ChildStdio { workers, .. } => {
                *workers
            }
            TransportSpec::Tcp { connections, .. } | TransportSpec::Ssh { connections, .. } => {
                *connections
            }
        };
        if count == 0 {
            return Err("transport fleet needs at least 1 worker".to_string());
        }
        (0..count)
            .map(|_| -> Result<Box<dyn Transport>, String> {
                match self {
                    TransportSpec::InProcess { .. } => Ok(Box::new(InProcess::new())),
                    TransportSpec::ChildStdio { command, .. } => {
                        let (program, args) =
                            command.split_first().ok_or("child command is empty")?;
                        Ok(Box::new(ChildStdio::spawn(program, args)?))
                    }
                    TransportSpec::Tcp { addr, .. } => Ok(Box::new(Tcp::connect(addr)?)),
                    TransportSpec::Ssh { dest, .. } => Ok(Box::new(Ssh::connect(dest)?)),
                }
            })
            .collect()
    }
}

/// Builds a fleet per run and dispatches a job through it.
///
/// The determinism law this layer adds (tested in
/// `tests/cluster_determinism.rs`, gated by CI's `cluster-smoke` job):
/// for every [`TransportSpec`], worker count, and scheduling mode —
/// work stealing, static partition, speculation on or off, a skewed
/// worker injected or not — and under any worker deaths the pool
/// survives, [`ClusterCoordinator::run`] merges to bytes identical to
/// [`sc_engine::shard::run_in_process`].
#[derive(Debug, Clone)]
pub struct ClusterCoordinator {
    /// The fleet to build.
    pub spec: TransportSpec,
    /// Straggler deadline per slice (see [`WorkerPool::with_timeout`]).
    pub timeout: Duration,
    /// Soft speculation deadline as a fraction of `timeout`; `None`
    /// disables speculative re-dispatch.
    pub speculate_after: Option<f64>,
    /// Eager fixed-partition assignment instead of work stealing.
    pub static_dispatch: bool,
    /// When set, the last fleet member is wrapped in
    /// [`Unreliable::slowed_by`] with this delay — the reproducible
    /// skewed fleet CI and `exp_cluster` measure scheduling against.
    pub skew: Option<Duration>,
}

impl ClusterCoordinator {
    /// A coordinator over `spec` with the pool's default deadline.
    pub fn new(spec: TransportSpec) -> Self {
        Self {
            spec,
            timeout: Duration::from_secs(600),
            speculate_after: None,
            static_dispatch: false,
            skew: None,
        }
    }

    /// Sets the straggler deadline.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Enables speculative re-dispatch past `fraction × timeout` (see
    /// [`WorkerPool::with_speculation`]; `fraction` must be in `(0, 1]`).
    #[must_use]
    pub fn with_speculation(mut self, fraction: f64) -> Self {
        self.speculate_after = Some(fraction);
        self
    }

    /// Switches the pool to eager fixed-partition assignment (see
    /// [`WorkerPool::with_static_dispatch`]).
    #[must_use]
    pub fn with_static_dispatch(mut self) -> Self {
        self.static_dispatch = true;
        self
    }

    /// Slows the last fleet member's answers by `delay` — deterministic
    /// heterogeneity for benchmarks and smoke gates.
    #[must_use]
    pub fn with_skewed_worker(mut self, delay: Duration) -> Self {
        self.skew = Some(delay);
        self
    }

    /// Builds the fleet, dispatches, merges.
    ///
    /// # Errors
    /// Propagates fleet-build and dispatch errors.
    pub fn run(&self, job: &ShardJob) -> Result<DispatchReport, String> {
        let mut transports = self.spec.build()?;
        if let Some(delay) = self.skew {
            let last = transports.pop().expect("build rejects empty fleets");
            transports.push(Box::new(Unreliable::slowed_by(last, delay)));
        }
        let mut pool = WorkerPool::new(transports).with_timeout(self.timeout);
        if self.static_dispatch {
            pool = pool.with_static_dispatch();
        }
        if let Some(fraction) = self.speculate_after {
            pool = pool.with_speculation(fraction);
        }
        pool.dispatch(job)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_engine::shard::run_in_process;
    use sc_engine::{ColorerSpec, Scenario, SourceSpec};

    fn two_scenario_job() -> ShardJob {
        ShardJob::Grid(vec![
            Scenario::new(SourceSpec::exact_degree(40, 4, 1), ColorerSpec::Trivial),
            Scenario::new(SourceSpec::exact_degree(40, 4, 2), ColorerSpec::StoreAll),
        ])
    }

    #[test]
    fn in_process_fleet_reproduces_the_reference() {
        let job = two_scenario_job();
        let coordinator = ClusterCoordinator::new(TransportSpec::InProcess { workers: 2 });
        let report = coordinator.run(&job).unwrap();
        assert_eq!(report.outcome.encode(), run_in_process(&job, 1).unwrap().encode());
    }

    #[test]
    fn skewed_fleets_reproduce_the_reference_in_both_scheduling_modes() {
        // The skewed-worker wrapper must change timing only: static and
        // stealing+speculation dispatches both merge byte-identically.
        let job = two_scenario_job();
        let reference = run_in_process(&job, 1).unwrap().encode();
        let base = ClusterCoordinator::new(TransportSpec::InProcess { workers: 2 })
            .with_timeout(Duration::from_secs(4))
            .with_skewed_worker(Duration::from_millis(500));
        let stealing = base.clone().with_speculation(0.01).run(&job).unwrap();
        assert_eq!(stealing.outcome.encode(), reference, "skewed stealing merge diverged");
        assert_eq!(stealing.speculative, 1, "the slowed slice must be speculated");
        let fixed = base.with_static_dispatch().run(&job).unwrap();
        assert_eq!(fixed.outcome.encode(), reference, "skewed static merge diverged");
        assert_eq!(fixed.speculative, 0);
    }

    #[test]
    fn degenerate_fleets_are_errors() {
        let build_err = |spec: TransportSpec| spec.build().err().expect("fleet must fail");
        assert!(build_err(TransportSpec::InProcess { workers: 0 }).contains("at least 1"));
        assert!(build_err(TransportSpec::ChildStdio { command: Vec::new(), workers: 1 })
            .contains("empty"));
        assert!(build_err(TransportSpec::ChildStdio {
            command: vec!["/nonexistent/worker-binary".into()],
            workers: 1
        })
        .contains("cannot spawn"));
        assert!(build_err(TransportSpec::Tcp { addr: "127.0.0.1:1".into(), connections: 1 })
            .contains("cannot connect"));
        assert!(build_err(TransportSpec::Ssh { dest: String::new(), connections: 1 })
            .contains("no host"));
        assert!(build_err(TransportSpec::Ssh { dest: "host:".into(), connections: 0 })
            .contains("at least 1"));
    }
}
