//! # `streamcolor` — semi-streaming graph coloring
//!
//! Reproduction of **"Coloring in Graph Streams via Deterministic and
//! Adversarially Robust Algorithms"** (Assadi, Chakrabarti, Ghosh,
//! Stoeckl; PODS 2023, arXiv:2212.10641).
//!
//! Four algorithms, one crate:
//!
//! | API | Paper result | Colors | Passes |
//! |---|---|---|---|
//! | [`deterministic_coloring`] | Theorem 1 | `∆+1` | `O(log ∆ log log ∆)` |
//! | [`list_coloring`] | Theorem 2 | from `(deg+1)`-lists | `O(log ∆ log log ∆)` |
//! | [`RobustColorer`] | Theorem 3 / Cor 4.7 | `O(∆^{(5−3β)/2})` | 1, adversarially robust |
//! | [`RandEfficientColorer`] | Theorem 4 | `O(∆³)` | 1, robust, `Õ(n)` bits incl. randomness |
//!
//! Supporting modules: [`baselines`] (every prior-work comparator the
//! paper cites — ACK19 palette sparsification, BG18 bucketing, BCG20
//! degeneracy palettes, HKNT22 list sparsification, CGS22 sketch
//! switching, batch greedy), [`robust::analysis`] (live measurement of
//! the concentration lemmas behind Theorems 3–4), and [`verify`]
//! (the BBMU21 vertex-arrival coloring-verification problem).
//!
//! **Ownership contract** (see ROADMAP.md, "which layer owns what"):
//! this crate owns the *algorithms* and nothing around them. Each
//! colorer is single-threaded, self-reports its space through
//! `sc_stream::SpaceMeter` (the engine snapshots, never guesses), must
//! be observationally identical under every `process_batch` chunking,
//! and owns its epoch-keyed `QueryCache` with the law *incremental ≡
//! scratch at every prefix*. Chunking, pass counting, and checkpoint
//! schedules belong to `sc-stream`; parallelism, grids, and wire
//! formats belong to `sc-engine` and above.
//!
//! ```
//! use sc_graph::generators;
//! use sc_stream::{run_oblivious, StoredStream, StreamingColorer};
//! use streamcolor::{deterministic_coloring, DetConfig, RobustColorer};
//!
//! let graph = generators::random_with_exact_max_degree(200, 12, 42);
//!
//! // Theorem 1: deterministic (∆+1)-coloring over a multi-pass stream.
//! let stream = StoredStream::from_graph(&graph);
//! let report = deterministic_coloring(&stream, 200, 12, &DetConfig::default());
//! assert!(report.coloring.is_proper_total(&graph));
//! assert!(report.coloring.palette_span() <= 13);
//!
//! // Theorem 3: robust single-pass coloring, queryable anywhere.
//! let mut robust = RobustColorer::new(200, 12, 7);
//! let coloring = run_oblivious(&mut robust, graph.edges());
//! assert!(coloring.is_proper_total(&graph));
//! ```

pub mod baselines;
pub mod det;
pub mod dynamic;
pub mod listcolor;
pub mod robust;
pub mod verify;

pub use baselines::{
    batch_greedy_coloring, offline_greedy, Bcg20Colorer, Bg18Colorer, Cgs22Colorer, Hknt22Colorer,
    PaletteSparsification, TrivialColorer,
};
pub use det::{deterministic_coloring, DerandStrategy, DetConfig, DetReport};
pub use dynamic::{DynamicColorer, SparseRecovery};
pub use listcolor::{list_coloring, ListConfig, ListReport};
pub use robust::{AutoRobust, RandEfficientColorer, RobustColorer, RobustParams, StoreAllColorer};
