//! Dynamic (turnstile) streaming: sparse-recovery sketching and the
//! deletion-supporting colorer built on it.
//!
//! See [`sparse_recovery`] for the `(id, ±1)` recovery primitive and
//! [`colorer`] for the [`DynamicColorer`] that stores nothing but such
//! a sketch over the edge universe.

pub mod colorer;
pub mod sparse_recovery;

pub use colorer::DynamicColorer;
pub use sparse_recovery::SparseRecovery;
