//! The dynamic (turnstile) streaming colorer.
//!
//! The robust-coloring line (Chakrabarti–Ghosh–Stoeckl 2021; paper §4's
//! natural adversarial playground) extends naturally to streams with
//! **deletions**. This colorer stores *only* an [`SparseRecovery`]
//! sketch over the edge universe `{(u,v) : u < v}` — `O(s · log n)`
//! bits, independent of stream length — and answers queries by decoding
//! the live edge multiset and first-fit coloring it. On churn streams
//! whose live support stays within the sparsity budget `s = o(n²/log n)`
//! this is `o(n²)` bits where the insert-only store-all baseline grows
//! linearly with the *stream*, deletions and all.
//!
//! Contract notes:
//!
//! * **Sparsity is a promise.** Queries decode the sketch; if the live
//!   support exceeds `s`, the decode [fails loudly](SparseRecovery::decode)
//!   and the query panics with that message rather than answer wrongly.
//!   Scenario sizing (and the engine's [`DynamicSupport`] referee,
//!   observable via session stats) keeps honest runs within budget.
//! * **Determinism.** All hashing derives from the constructor seed via
//!   `sc-hash`, so equal token streams produce byte-identical sketches,
//!   colorings, and state blobs — the property the four-path
//!   equivalence suite pins down.
//! * **Persistence.** [`encode_state`]/[`decode_state`] carry the cell
//!   array canonically and inherit the PR 9 law: a restored colorer is
//!   observationally identical to the uninterrupted one at every
//!   subsequent prefix.
//!
//! [`DynamicSupport`]: sc_stream::DynamicSupport
//! [`encode_state`]: sc_stream::StreamingColorer::encode_state
//! [`decode_state`]: sc_stream::StreamingColorer::decode_state

use crate::dynamic::sparse_recovery::SparseRecovery;
use sc_graph::{greedy_complete, greedy_repair_ascending, Coloring, Edge, Graph};
use sc_stream::{
    counter_bits, CacheStats, QueryCache, Sign, SignedEdge, SpaceMeter, StateReader, StateWriter,
    StreamingColorer,
};

/// The incremental-query artifact: the decoded live graph, its
/// first-fit coloring, and the sorted live edge list it was decoded
/// from. Harness bookkeeping — never charged to the meter (any query
/// can rebuild it from the sketch).
#[derive(Debug, Clone)]
struct DynamicArtifact {
    mirror: Graph,
    chi: Coloring,
    /// Live edges at install time, ascending (the sketch decode order).
    live: Vec<Edge>,
}

/// Sketch-backed dynamic colorer (`s`-sparse recovery over edges).
#[derive(Debug, Clone)]
pub struct DynamicColorer {
    n: usize,
    sketch: SparseRecovery,
    meter: SpaceMeter,
    cache: QueryCache<DynamicArtifact>,
    /// Whether any deletion arrived since the cached artifact was
    /// installed. Insertion-only gaps are patchable (first-fit repair);
    /// a deletion can only be reflected by a from-scratch decode.
    deleted_since_install: bool,
}

impl DynamicColorer {
    /// A dynamic colorer on `n` vertices with live-support budget
    /// `sparsity`, all hashing derived from `seed`.
    pub fn new(n: usize, sparsity: usize, seed: u64) -> Self {
        let universe = (n as u64) * (n as u64);
        let sketch = SparseRecovery::new(universe.max(1), sparsity, seed);
        let mut meter = SpaceMeter::new();
        // The colorer's entire storage is the sketch: cells plus the
        // handful of hash keys. Charged once — updates never grow it.
        meter.charge(sketch.cell_bits() + 8 * counter_bits(u64::MAX));
        Self { n, sketch, meter, cache: QueryCache::new(), deleted_since_install: false }
    }

    /// The sparsity budget `s`.
    pub fn sparsity(&self) -> usize {
        self.sketch.sparsity()
    }

    fn edge_id(&self, e: Edge) -> u64 {
        (e.u() as u64) * (self.n as u64) + e.v() as u64
    }

    fn id_edge(&self, id: u64) -> Edge {
        Edge::new((id / self.n as u64) as u32, (id % self.n as u64) as u32)
    }

    /// Decodes the live edge list (ascending), panicking with the
    /// sketch's loud message if the support exceeds the budget.
    fn decode_live(&self) -> Vec<Edge> {
        let support = self
            .sketch
            .decode()
            .unwrap_or_else(|e| panic!("{}: {e}", self.name()));
        support
            .into_iter()
            .map(|(id, count)| {
                assert!(
                    count > 0,
                    "{}: edge {} decoded with net multiplicity {count} \
                     (stream deleted more than it inserted)",
                    self.name(),
                    self.id_edge(id)
                );
                self.id_edge(id)
            })
            .collect()
    }

    fn rebuild(&self) -> DynamicArtifact {
        let live = self.decode_live();
        let mirror = Graph::from_edges(self.n, live.iter().copied());
        let mut chi = Coloring::empty(self.n);
        greedy_complete(&mirror, &mut chi);
        DynamicArtifact { mirror, chi, live }
    }

    /// Brings an insertion-only-stale artifact up to date: decodes the
    /// current live list, grafts the new edges into the mirror, and
    /// first-fit-repairs from their higher endpoints. Returns the
    /// number of recolored vertices.
    fn patch(&self, artifact: &mut DynamicArtifact) -> u64 {
        let live = self.decode_live();
        debug_assert!(
            artifact.live.len() <= live.len(),
            "patch path requires an insertion-only gap"
        );
        let mut seeds = Vec::new();
        let mut old = artifact.live.iter().peekable();
        for &e in &live {
            if old.peek() == Some(&&e) {
                old.next();
                continue;
            }
            if artifact.mirror.add_edge(e) {
                seeds.push(e.u().max(e.v()));
            }
        }
        artifact.live = live;
        greedy_repair_ascending(&artifact.mirror, &mut artifact.chi, seeds).len() as u64
    }
}

impl StreamingColorer for DynamicColorer {
    fn process(&mut self, e: Edge) {
        assert!((e.v() as usize) < self.n, "edge {e} out of range");
        self.sketch.update(self.edge_id(e), 1);
        self.cache.advance(1);
    }

    fn process_batch(&mut self, edges: &[Edge]) {
        for &e in edges {
            assert!((e.v() as usize) < self.n, "edge {e} out of range");
            self.sketch.update(self.edge_id(e), 1);
        }
        self.cache.advance(edges.len() as u64);
    }

    fn supports_deletions(&self) -> bool {
        true
    }

    fn process_signed(&mut self, t: SignedEdge) -> Result<(), String> {
        assert!((t.edge.v() as usize) < self.n, "edge {} out of range", t.edge);
        self.sketch.update(self.edge_id(t.edge), t.sign.unit());
        if t.sign == Sign::Delete {
            self.deleted_since_install = true;
        }
        self.cache.advance(1);
        Ok(())
    }

    fn process_signed_batch(&mut self, tokens: &[SignedEdge]) -> Result<(), String> {
        for &t in tokens {
            assert!((t.edge.v() as usize) < self.n, "edge {} out of range", t.edge);
            self.sketch.update(self.edge_id(t.edge), t.sign.unit());
            if t.sign == Sign::Delete {
                self.deleted_since_install = true;
            }
        }
        self.cache.advance(tokens.len() as u64);
        Ok(())
    }

    fn query(&mut self) -> Coloring {
        self.rebuild().chi
    }

    fn query_incremental(&mut self) -> Coloring {
        if let Some(a) = self.cache.fresh() {
            return a.chi.clone();
        }
        if self.deleted_since_install {
            // A deletion invalidates the first-fit repair argument (it
            // only covers edge additions); decode from scratch.
            self.cache.invalidate();
        }
        let artifact = match self.cache.take_for_patch() {
            Some((_, mut a)) => {
                let recolored = self.patch(&mut a);
                self.cache.note_patched(recolored);
                a
            }
            None => self.rebuild(),
        };
        let out = artifact.chi.clone();
        self.cache.install(artifact);
        self.deleted_since_install = false;
        out
    }

    fn query_cache_stats(&self) -> Option<CacheStats> {
        Some(self.cache.stats())
    }

    fn peak_space_bits(&self) -> u64 {
        self.meter.peak_bits()
    }

    fn encode_state(&self) -> Result<String, String> {
        let mut w = StateWriter::new();
        w.field("algo", self.name());
        w.field("cells", self.sketch.encode_cells());
        w.field("space_cur", self.meter.current_bits());
        w.field("space_peak", self.meter.peak_bits());
        w.field("epoch", self.cache.epoch());
        Ok(w.finish())
    }

    fn decode_state(&mut self, state: &str) -> Result<(), String> {
        let mut r = StateReader::new(state);
        let algo = r.expect("algo")?;
        if algo != self.name() {
            return Err(format!("state: algo {algo:?} is not {:?}", self.name()));
        }
        let cells = r.expect("cells")?;
        let space_cur = r.u64_field("space_cur")?;
        let space_peak = r.u64_field("space_peak")?;
        let epoch = r.u64_field("epoch")?;
        r.done()?;
        self.sketch.decode_cells(cells).map_err(|e| format!("state: cells: {e}"))?;
        self.meter =
            SpaceMeter::restored(space_cur, space_peak).map_err(|e| format!("state: {e}"))?;
        self.cache.restore_at_epoch(epoch);
        // The restored cache is cold, so the next query decodes from
        // scratch regardless; the flag only gates the patch path.
        self.deleted_since_install = false;
        Ok(())
    }

    fn name(&self) -> &'static str {
        "dynamic-sr"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_graph::generators;
    use sc_stream::run_oblivious;

    /// Inserts a gnp graph's edges and deletes every third one again.
    fn churn(n: usize, seed: u64) -> (Graph, Vec<SignedEdge>) {
        let g = generators::gnp_with_max_degree(n, 6, 0.4, seed);
        let edges = generators::shuffled_edges(&g, seed);
        let mut tokens = Vec::new();
        let mut deleted = Vec::new();
        for (i, &e) in edges.iter().enumerate() {
            tokens.push(SignedEdge::insert(e));
            if i % 3 == 2 {
                tokens.push(SignedEdge::delete(e));
                deleted.push(e);
            }
        }
        let live = Graph::from_edges(n, edges.iter().copied().filter(|e| !deleted.contains(e)));
        (live, tokens)
    }

    #[test]
    fn insert_only_streams_color_properly() {
        let g = generators::gnp_with_max_degree(40, 6, 0.4, 1);
        let mut c = DynamicColorer::new(40, g.m() + 4, 7);
        let out = run_oblivious(&mut c, generators::shuffled_edges(&g, 1));
        assert!(out.is_proper_total(&g));
        assert!(out.palette_span() <= g.max_degree() as u64 + 1);
    }

    #[test]
    fn churny_streams_color_the_live_graph() {
        let (live, tokens) = churn(40, 2);
        let mut c = DynamicColorer::new(40, live.m() + 8, 3);
        for &t in &tokens {
            c.process_signed(t).unwrap();
        }
        let out = c.query();
        assert!(out.is_proper_total(&live));
    }

    #[test]
    fn space_is_stream_length_independent() {
        let mut c = DynamicColorer::new(1000, 16, 5);
        let fixed = c.peak_space_bits();
        let e = Edge::new(1, 2);
        for _ in 0..10_000 {
            c.process_signed(SignedEdge::insert(e)).unwrap();
            c.process_signed(SignedEdge::delete(e)).unwrap();
        }
        assert_eq!(c.peak_space_bits(), fixed, "sketch space never grows with the stream");
    }

    #[test]
    fn incremental_matches_scratch_under_churn() {
        let (_, tokens) = churn(30, 4);
        let budget = tokens.len() + 4;
        let mut inc = DynamicColorer::new(30, budget, 9);
        let mut scr = DynamicColorer::new(30, budget, 9);
        for (i, &t) in tokens.iter().enumerate() {
            inc.process_signed(t).unwrap();
            scr.process_signed(t).unwrap();
            assert_eq!(inc.query_incremental(), scr.query(), "prefix {}", i + 1);
        }
        let stats = inc.query_cache_stats().unwrap();
        assert!(stats.patches > 0, "insert gaps must take the patch path: {stats:?}");
        assert!(stats.misses > 1, "deletions must force scratch decodes: {stats:?}");
    }

    #[test]
    fn over_budget_queries_fail_loudly() {
        let g = generators::gnp_with_max_degree(30, 6, 0.5, 6);
        assert!(g.m() > 8, "need enough edges to bust the budget");
        let mut c = DynamicColorer::new(30, 2, 1);
        for e in g.edges() {
            c.process(e);
        }
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| c.query()))
            .expect_err("over-budget decode must not answer");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("dynamic-sr") && msg.contains("s=2"), "{msg}");
    }

    #[test]
    fn state_round_trips_mid_churn() {
        let (_, tokens) = churn(25, 8);
        let budget = tokens.len() + 4;
        let cut = tokens.len() / 2;
        let mut reference = DynamicColorer::new(25, budget, 4);
        let mut snapped = DynamicColorer::new(25, budget, 4);
        for &t in &tokens[..cut] {
            reference.process_signed(t).unwrap();
            snapped.process_signed(t).unwrap();
        }
        let blob = snapped.encode_state().unwrap();
        let mut restored = DynamicColorer::new(25, budget, 4);
        restored.decode_state(&blob).unwrap();
        assert_eq!(restored.encode_state().unwrap(), blob, "canonical re-encoding");
        for &t in &tokens[cut..] {
            reference.process_signed(t).unwrap();
            restored.process_signed(t).unwrap();
        }
        assert_eq!(restored.query(), reference.query());
        assert_eq!(restored.peak_space_bits(), reference.peak_space_bits());
    }

    #[test]
    fn decode_state_rejects_foreign_blobs() {
        let mut c = DynamicColorer::new(10, 2, 1);
        assert!(c.decode_state("algo=store-all;edges=").is_err());
        assert!(c.decode_state("algo=dynamic-sr;cells=x;space_cur=1;space_peak=1;epoch=0").is_err());
    }
}
