//! `s`-sparse recovery over a signed-update universe.
//!
//! The classic turnstile-stream primitive (Ganguly; Cormode–Firmani;
//! the invertible-Bloom-lookup-table line): maintain `O(s)` counter
//! cells under arbitrary `(id, ±1)` updates so that, whenever the net
//! frequency vector has at most `s` nonzero coordinates, the *exact*
//! multiset can be recovered by peeling. This is the entire storage of
//! the dynamic colorer — the sketch size depends on `s` and the id
//! width, never on the stream length, which is what makes the dynamic
//! colorer's space `o(n²)` bits on churn streams where store-all grows
//! with every insertion.
//!
//! Layout: [`ROWS`] hash rows of `2s` cells each. Every update lands in
//! one cell per row (seeded [`prf2`] bucketing), maintaining per cell
//!
//! * `count` — the signed number of live ids hashed here,
//! * `id_sum` — the count-weighted sum of ids,
//! * `fp_sum` — a count-weighted fingerprint sum (mod `2^64`).
//!
//! A cell holding exactly one live id is **pure**: `id_sum / count`
//! names it and the fingerprint re-check rejects accidental collisions.
//! Peeling extracts a pure cell's id everywhere and repeats; with
//! `≥ 2s` columns per row the standard argument gives failure
//! probability `2^{-Ω(ROWS)}` per decode at support `≤ s`. Decoding
//! *fails loudly* — an [`Err`] naming the sparsity budget — when
//! peeling strands residue, so an over-budget support is never silently
//! mis-reported.

use sc_hash::prf::prf2;
use sc_hash::SplitMix64;

/// Hash rows per sketch. Each row is an independent chance to find a
/// pure cell, so peeling fails with probability `2^{-Ω(ROWS)}`.
const ROWS: usize = 6;

/// One counter cell (see module docs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Cell {
    count: i64,
    id_sum: i128,
    fp_sum: u64,
}

impl Cell {
    fn is_zero(&self) -> bool {
        self.count == 0 && self.id_sum == 0 && self.fp_sum == 0
    }
}

/// An `s`-sparse recovery sketch over ids in `[0, universe)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseRecovery {
    universe: u64,
    sparsity: usize,
    cols: usize,
    /// Per-row bucketing keys, derived deterministically from the seed.
    row_keys: Vec<u64>,
    /// Fingerprint key (shared by all rows).
    fp_key: u64,
    /// `ROWS × cols`, row-major.
    cells: Vec<Cell>,
}

impl SparseRecovery {
    /// A sketch for supports of at most `sparsity` ids drawn from
    /// `[0, universe)`, with all hashing derived from `seed`.
    pub fn new(universe: u64, sparsity: usize, seed: u64) -> Self {
        let sparsity = sparsity.max(1);
        let cols = 2 * sparsity;
        let mut rng = SplitMix64::new(seed);
        let row_keys: Vec<u64> = (0..ROWS).map(|_| rng.next_u64()).collect();
        let fp_key = rng.next_u64();
        Self { universe, sparsity, cols, row_keys, fp_key, cells: vec![Cell::default(); ROWS * cols] }
    }

    /// The sparsity budget `s`.
    pub fn sparsity(&self) -> usize {
        self.sparsity
    }

    /// The id universe size.
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// Model-bits footprint of the cell array: the quantity a dynamic
    /// colorer charges its meter at construction. Keys are charged by
    /// the caller alongside (a handful of 64-bit words).
    pub fn cell_bits(&self) -> u64 {
        // count (64) + id_sum (128) + fp_sum (64) per cell.
        (self.cells.len() as u64) * 256
    }

    fn fingerprint(&self, id: u64) -> u64 {
        prf2(self.fp_key, id)
    }

    /// Applies one signed update to `id`.
    ///
    /// # Panics
    /// If `id` is outside the universe.
    pub fn update(&mut self, id: u64, delta: i64) {
        assert!(id < self.universe, "id {id} outside universe {}", self.universe);
        let fp = self.fingerprint(id);
        for row in 0..ROWS {
            let col = (prf2(self.row_keys[row], id) % self.cols as u64) as usize;
            let cell = &mut self.cells[row * self.cols + col];
            cell.count += delta;
            cell.id_sum += delta as i128 * id as i128;
            // Mod-2^64 arithmetic: two's-complement wrapping makes the
            // signed weight exact.
            cell.fp_sum = cell.fp_sum.wrapping_add(fp.wrapping_mul(delta as u64));
        }
    }

    /// Whether every cell is zero (the empty frequency vector).
    pub fn is_empty(&self) -> bool {
        self.cells.iter().all(Cell::is_zero)
    }

    /// Recovers the exact `(id, net_count)` support, ascending by id.
    ///
    /// # Errors
    /// Fails loudly — naming the sparsity budget — when peeling cannot
    /// finish. That is the guaranteed outcome when the support exceeds
    /// `s` beyond the sketch's slack, and a `2^{-Ω(ROWS)}` fluke
    /// otherwise; it never silently returns a wrong multiset (every
    /// extraction is fingerprint-checked).
    pub fn decode(&self) -> Result<Vec<(u64, i64)>, String> {
        let mut cells = self.cells.clone();
        let mut out: Vec<(u64, i64)> = Vec::new();
        loop {
            let Some((id, count)) = self.find_pure(&cells) else { break };
            // Remove the id everywhere (its own row cells included).
            let fp = self.fingerprint(id);
            for row in 0..ROWS {
                let col = (prf2(self.row_keys[row], id) % self.cols as u64) as usize;
                let cell = &mut cells[row * self.cols + col];
                cell.count -= count;
                cell.id_sum -= count as i128 * id as i128;
                cell.fp_sum = cell.fp_sum.wrapping_sub(fp.wrapping_mul(count as u64));
            }
            out.push((id, count));
        }
        if cells.iter().all(Cell::is_zero) {
            out.sort_unstable();
            debug_assert!(out.windows(2).all(|w| w[0].0 < w[1].0), "each id peels once");
            Ok(out)
        } else {
            Err(format!(
                "sparse-recovery decode failed: support exceeds the sparsity budget s={} \
                 (or a {ROWS}-row peeling fluke); refusing to answer rather than guess",
                self.sparsity
            ))
        }
    }

    /// Finds a pure cell: a cell whose contents are consistent with
    /// exactly one live id (division + range + fingerprint checks).
    fn find_pure(&self, cells: &[Cell]) -> Option<(u64, i64)> {
        for cell in cells {
            if cell.count == 0 {
                continue;
            }
            if cell.id_sum % cell.count as i128 != 0 {
                continue;
            }
            let id = cell.id_sum / cell.count as i128;
            if id < 0 || id >= self.universe as i128 {
                continue;
            }
            let id = id as u64;
            let fp = self.fingerprint(id);
            if cell.fp_sum == fp.wrapping_mul(cell.count as u64) {
                return Some((id, cell.count));
            }
        }
        None
    }

    /// Canonical cell-array encoding: ascending `idx:count:id_sum:fp_sum`
    /// entries for the non-zero cells, space-joined (empty string for an
    /// empty sketch). Free of `;` and `=`, so it embeds in state blobs.
    pub fn encode_cells(&self) -> String {
        let parts: Vec<String> = self
            .cells
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_zero())
            .map(|(i, c)| format!("{}:{}:{}:{}", i, c.count, c.id_sum, c.fp_sum))
            .collect();
        parts.join(" ")
    }

    /// Replays an [`SparseRecovery::encode_cells`] string into this
    /// freshly built sketch (same constructor parameters — keys are
    /// re-derived from the seed, never serialized).
    ///
    /// # Errors
    /// Names the malformed entry; entries must be strictly ascending by
    /// index (the canonical order).
    pub fn decode_cells(&mut self, text: &str) -> Result<(), String> {
        let mut cells = vec![Cell::default(); ROWS * self.cols];
        if !text.is_empty() {
            let mut last: Option<usize> = None;
            for part in text.split(' ') {
                let fields: Vec<&str> = part.split(':').collect();
                let [idx, count, id_sum, fp_sum] = fields[..] else {
                    return Err(format!("sketch cell {part:?} is not idx:count:id_sum:fp_sum"));
                };
                let idx: usize =
                    idx.parse().map_err(|e| format!("sketch cell {part:?}: idx: {e}"))?;
                if idx >= cells.len() {
                    return Err(format!("sketch cell {part:?}: idx out of range"));
                }
                if last.is_some_and(|l| l >= idx) {
                    return Err(format!("sketch cell {part:?}: indices must ascend"));
                }
                last = Some(idx);
                let cell = Cell {
                    count: count
                        .parse()
                        .map_err(|e| format!("sketch cell {part:?}: count: {e}"))?,
                    id_sum: id_sum
                        .parse()
                        .map_err(|e| format!("sketch cell {part:?}: id_sum: {e}"))?,
                    fp_sum: fp_sum
                        .parse()
                        .map_err(|e| format!("sketch cell {part:?}: fp_sum: {e}"))?,
                };
                if cell.is_zero() {
                    return Err(format!("sketch cell {part:?} is all-zero (not canonical)"));
                }
                cells[idx] = cell;
            }
        }
        self.cells = cells;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_small_supports_exactly() {
        let mut sk = SparseRecovery::new(10_000, 8, 42);
        let support = [(3u64, 2i64), (17, 1), (999, 5), (9_999, 1)];
        for &(id, c) in &support {
            for _ in 0..c {
                sk.update(id, 1);
            }
        }
        assert_eq!(sk.decode().unwrap(), support.to_vec());
    }

    #[test]
    fn deletions_cancel_to_empty() {
        let mut sk = SparseRecovery::new(1000, 4, 7);
        for id in [5u64, 6, 7, 5] {
            sk.update(id, 1);
        }
        for id in [5u64, 5, 6, 7] {
            sk.update(id, -1);
        }
        assert!(sk.is_empty());
        assert_eq!(sk.decode().unwrap(), Vec::new());
    }

    #[test]
    fn churn_far_beyond_s_decodes_once_support_shrinks() {
        // Stream length >> s, live support ≤ s at the end: the whole
        // point of the turnstile model.
        let mut sk = SparseRecovery::new(100_000, 6, 11);
        let mut rng = SplitMix64::new(3);
        for _ in 0..5_000 {
            let id = rng.below(100_000);
            sk.update(id, 1);
            sk.update(id, -1);
        }
        for id in [10u64, 20, 30] {
            sk.update(id, 1);
        }
        assert_eq!(sk.decode().unwrap(), vec![(10, 1), (20, 1), (30, 1)]);
    }

    #[test]
    fn oversubscribed_support_fails_loudly() {
        let mut sk = SparseRecovery::new(1_000_000, 2, 5);
        for id in 0..200u64 {
            sk.update(id * 31 + 7, 1);
        }
        let err = sk.decode().unwrap_err();
        assert!(err.contains("s=2") && err.contains("refusing"), "{err}");
    }

    #[test]
    fn cells_round_trip_canonically() {
        let mut sk = SparseRecovery::new(5_000, 5, 99);
        for id in [1u64, 2, 3, 4999] {
            sk.update(id, 1);
        }
        sk.update(2, -1);
        let text = sk.encode_cells();
        let mut fresh = SparseRecovery::new(5_000, 5, 99);
        fresh.decode_cells(&text).unwrap();
        assert_eq!(fresh, sk);
        assert_eq!(fresh.encode_cells(), text, "re-encoding must be stable");
        // Empty sketch encodes to the empty string.
        assert_eq!(SparseRecovery::new(10, 1, 0).encode_cells(), "");
    }

    #[test]
    fn decode_cells_rejects_malformed_entries() {
        let mut sk = SparseRecovery::new(100, 2, 1);
        for bad in [
            "x:1:1:1",
            "0:1:1",
            "999999:1:1:1",
            "0:0:0:0",
            "1:1:2:3 1:1:2:3",
            "2:1:2:3 1:1:2:3",
        ] {
            assert!(sk.decode_cells(bad).is_err(), "{bad:?} must not decode");
        }
    }

    #[test]
    fn different_seeds_hash_differently_but_both_decode() {
        for seed in [1u64, 2, 3, 4, 5] {
            let mut sk = SparseRecovery::new(50_000, 10, seed);
            let ids: Vec<u64> = (0..10).map(|i| i * 4999 + 13).collect();
            for &id in &ids {
                sk.update(id, 1);
            }
            let got: Vec<u64> = sk.decode().unwrap().into_iter().map(|(id, _)| id).collect();
            assert_eq!(got, ids, "seed {seed}");
        }
    }
}
