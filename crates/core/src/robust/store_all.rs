//! The store-everything fallback for small `∆` (paper §4, preamble).
//!
//! "We also assume that `∆ = Ω(log² n)`; if `∆` is smaller, we can store
//! the entire graph in semi-streaming space and then color it optimally."
//! A graph of maximum degree `∆` has at most `n∆/2` edges, so for
//! `∆ = O(log² n)` storing them all costs `O(n log² n · log n)` bits —
//! semi-streaming — and greedy gives the optimal-palette `(∆+1)`-coloring.
//! Trivially robust (deterministic given the stream; no randomness for the
//! adversary to learn).
//!
//! [`auto_robust_colorer`] packages the paper's complete recipe: this
//! fallback when [`RobustParams::store_all_fallback`] holds, Algorithm 2
//! otherwise.

use crate::robust::alg2::RobustColorer;
use crate::robust::params::RobustParams;
use sc_graph::{greedy_complete, greedy_repair_ascending, Coloring, Edge, Graph};
use sc_stream::{
    edge_bits, CacheStats, QueryCache, SpaceMeter, StateReader, StateWriter, StreamingColorer,
};

/// The incremental-query artifact: a mirror of the stored graph plus the
/// first-fit coloring it produced, repairable edge by edge.
///
/// Harness bookkeeping, not algorithm state — it is never charged to the
/// [`SpaceMeter`] (queries may rebuild it from the stored edges at any
/// time).
#[derive(Debug, Clone)]
struct StoreAllArtifact {
    /// `Graph::from_edges` over the stored prefix, maintained by
    /// appending — identical adjacency order to a scratch rebuild.
    mirror: Graph,
    /// First-fit-ascending coloring of `mirror` (the query answer).
    chi: Coloring,
    /// Stored edges already reflected in `mirror`.
    synced: usize,
}

/// Stores every edge; queries greedily `(∆+1)`-color the stored graph.
#[derive(Debug, Clone)]
pub struct StoreAllColorer {
    n: usize,
    edges: Vec<Edge>,
    meter: SpaceMeter,
    cache: QueryCache<StoreAllArtifact>,
}

impl StoreAllColorer {
    /// Creates the colorer on `n` vertices.
    pub fn new(n: usize) -> Self {
        Self { n, edges: Vec::new(), meter: SpaceMeter::new(), cache: QueryCache::new() }
    }

    /// Number of stored edges.
    pub fn stored_edges(&self) -> usize {
        self.edges.len()
    }

    /// Brings `artifact` up to date with the stored edges, repairing the
    /// coloring only around the insertions. Returns the number of
    /// vertices the repair recolored (the dirty-frontier size).
    fn patch(&self, artifact: &mut StoreAllArtifact) -> u64 {
        let mut seeds = Vec::new();
        for &e in &self.edges[artifact.synced..] {
            if artifact.mirror.add_edge(e) {
                // Only the higher endpoint's first-fit choice can change.
                seeds.push(e.u().max(e.v()));
            }
        }
        artifact.synced = self.edges.len();
        greedy_repair_ascending(&artifact.mirror, &mut artifact.chi, seeds).len() as u64
    }
}

impl StreamingColorer for StoreAllColorer {
    fn process(&mut self, e: Edge) {
        assert!((e.v() as usize) < self.n, "edge {e} out of range");
        self.edges.push(e);
        self.meter.charge(edge_bits(self.n));
        self.cache.advance(1);
    }

    fn process_batch(&mut self, edges: &[Edge]) {
        for &e in edges {
            assert!((e.v() as usize) < self.n, "edge {e} out of range");
        }
        self.edges.extend_from_slice(edges);
        self.meter.charge(edges.len() as u64 * edge_bits(self.n));
        self.cache.advance(edges.len() as u64);
    }

    fn query(&mut self) -> Coloring {
        let g = Graph::from_edges(self.n, self.edges.iter().copied());
        let mut c = Coloring::empty(self.n);
        greedy_complete(&g, &mut c);
        c
    }

    fn query_incremental(&mut self) -> Coloring {
        if let Some(a) = self.cache.fresh() {
            return a.chi.clone();
        }
        let artifact = match self.cache.take_for_patch() {
            Some((_, mut a)) => {
                let recolored = self.patch(&mut a);
                self.cache.note_patched(recolored);
                a
            }
            None => {
                let mirror = Graph::from_edges(self.n, self.edges.iter().copied());
                let mut chi = Coloring::empty(self.n);
                greedy_complete(&mirror, &mut chi);
                StoreAllArtifact { mirror, chi, synced: self.edges.len() }
            }
        };
        let out = artifact.chi.clone();
        self.cache.install(artifact);
        out
    }

    fn query_cache_stats(&self) -> Option<CacheStats> {
        Some(self.cache.stats())
    }

    fn peak_space_bits(&self) -> u64 {
        self.meter.peak_bits()
    }

    fn encode_state(&self) -> Result<String, String> {
        let mut w = StateWriter::new();
        w.field("algo", self.name());
        w.edges("edges", &self.edges);
        w.field("space_cur", self.meter.current_bits());
        w.field("space_peak", self.meter.peak_bits());
        w.field("epoch", self.cache.epoch());
        Ok(w.finish())
    }

    fn decode_state(&mut self, state: &str) -> Result<(), String> {
        let mut r = StateReader::new(state);
        let algo = r.expect("algo")?;
        if algo != self.name() {
            return Err(format!("state: algo {algo:?} is not {:?}", self.name()));
        }
        let edges = r.edges_field("edges", self.n)?;
        let space_cur = r.u64_field("space_cur")?;
        let space_peak = r.u64_field("space_peak")?;
        let epoch = r.u64_field("epoch")?;
        r.done()?;
        self.edges = edges;
        self.meter =
            SpaceMeter::restored(space_cur, space_peak).map_err(|e| format!("state: {e}"))?;
        self.cache.restore_at_epoch(epoch);
        Ok(())
    }

    fn name(&self) -> &'static str {
        "store-all"
    }
}

/// Either side of the paper's small-`∆` dichotomy.
pub enum AutoRobust {
    /// `∆ < log² n`: store everything, color optimally.
    StoreAll(StoreAllColorer),
    /// Otherwise: Algorithm 2.
    Alg2(Box<RobustColorer>),
}

/// The complete Theorem 3 recipe: picks the fallback exactly when the
/// paper's `∆ = Ω(log² n)` assumption fails.
pub fn auto_robust_colorer(n: usize, delta: usize, seed: u64) -> AutoRobust {
    let params = RobustParams::theorem3(n, delta);
    if params.store_all_fallback() {
        AutoRobust::StoreAll(StoreAllColorer::new(n))
    } else {
        AutoRobust::Alg2(Box::new(RobustColorer::with_params(params, seed)))
    }
}

impl StreamingColorer for AutoRobust {
    fn process(&mut self, e: Edge) {
        match self {
            AutoRobust::StoreAll(c) => c.process(e),
            AutoRobust::Alg2(c) => c.process(e),
        }
    }

    fn process_batch(&mut self, edges: &[Edge]) {
        match self {
            AutoRobust::StoreAll(c) => c.process_batch(edges),
            AutoRobust::Alg2(c) => c.process_batch(edges),
        }
    }

    fn query(&mut self) -> Coloring {
        match self {
            AutoRobust::StoreAll(c) => c.query(),
            AutoRobust::Alg2(c) => c.query(),
        }
    }

    fn query_incremental(&mut self) -> Coloring {
        match self {
            AutoRobust::StoreAll(c) => c.query_incremental(),
            AutoRobust::Alg2(c) => c.query_incremental(),
        }
    }

    fn query_cache_stats(&self) -> Option<CacheStats> {
        match self {
            AutoRobust::StoreAll(c) => c.query_cache_stats(),
            AutoRobust::Alg2(c) => c.query_cache_stats(),
        }
    }

    fn peak_space_bits(&self) -> u64 {
        match self {
            AutoRobust::StoreAll(c) => c.peak_space_bits(),
            AutoRobust::Alg2(c) => c.peak_space_bits(),
        }
    }

    // State codecs delegate: the variant is a pure function of (n, ∆),
    // so a rebuilt colorer picks the same side and the inner `algo` tag
    // validates the match.
    fn encode_state(&self) -> Result<String, String> {
        match self {
            AutoRobust::StoreAll(c) => c.encode_state(),
            AutoRobust::Alg2(c) => c.encode_state(),
        }
    }

    fn decode_state(&mut self, state: &str) -> Result<(), String> {
        match self {
            AutoRobust::StoreAll(c) => c.decode_state(state),
            AutoRobust::Alg2(c) => c.decode_state(state),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            AutoRobust::StoreAll(_) => "auto(store-all)",
            AutoRobust::Alg2(_) => "auto(alg2)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_graph::generators;
    use sc_stream::run_oblivious;

    #[test]
    fn store_all_gives_optimal_palette() {
        let g = generators::gnp_with_max_degree(100, 5, 0.3, 1);
        let mut c = StoreAllColorer::new(100);
        let out = run_oblivious(&mut c, g.edges());
        assert!(out.is_proper_total(&g));
        assert!(out.palette_span() <= g.max_degree() as u64 + 1);
        assert_eq!(c.stored_edges(), g.m());
    }

    #[test]
    fn auto_picks_store_all_for_tiny_delta() {
        // n = 4096 ⇒ log²n = 144; ∆ = 8 falls below.
        let auto = auto_robust_colorer(4096, 8, 1);
        assert_eq!(auto.name(), "auto(store-all)");
    }

    #[test]
    fn auto_picks_alg2_for_large_delta() {
        let auto = auto_robust_colorer(256, 100, 1);
        assert_eq!(auto.name(), "auto(alg2)");
    }

    #[test]
    fn auto_colorer_works_both_sides() {
        for (n, delta) in [(300usize, 4usize), (120, 64)] {
            let g = generators::gnp_with_max_degree(n, delta, 0.5, 2);
            let mut auto = auto_robust_colorer(n, delta, 3);
            let out = run_oblivious(&mut auto, generators::shuffled_edges(&g, 2));
            assert!(out.is_proper_total(&g), "n={n} ∆={delta}");
        }
    }

    #[test]
    fn incremental_queries_match_scratch_and_reuse_the_cache() {
        let g = generators::gnp_with_max_degree(60, 7, 0.5, 9);
        let edges: Vec<_> = generators::shuffled_edges(&g, 9);
        let mut inc = StoreAllColorer::new(60);
        let mut scr = StoreAllColorer::new(60);
        for (i, &e) in edges.iter().enumerate() {
            inc.process(e);
            scr.process(e);
            assert_eq!(inc.query_incremental(), scr.query(), "prefix {}", i + 1);
        }
        // Back-to-back query with no new edges: a pure hit.
        let again = inc.query_incremental();
        assert_eq!(again, scr.query());
        let stats = inc.query_cache_stats().unwrap();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.patches, edges.len() as u64 - 1);
        // Caching never shows up in the space report.
        assert_eq!(inc.peak_space_bits(), scr.peak_space_bits());
    }

    #[test]
    fn store_all_is_robust_under_attack() {
        // Deterministic ⇒ robust: mid-stream queries always proper.
        let g = generators::gnp_with_max_degree(50, 6, 0.5, 3);
        let mut c = StoreAllColorer::new(50);
        let mut prefix = Graph::empty(50);
        for e in g.edges() {
            c.process(e);
            prefix.add_edge(e);
            assert!(c.query().is_proper_total(&prefix));
        }
    }
}
