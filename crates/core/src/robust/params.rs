//! Parameters of the robust colorer, generalized over the tradeoff
//! exponent `β` of Corollary 4.7.
//!
//! | quantity | paper value | `β = 0` (Theorem 3) |
//! |---|---|---|
//! | buffer capacity | `n·∆^β` | `n` |
//! | epochs / `h` sketches | `∆^{1−β}` | `∆` |
//! | `h` range (slow blocks) | `∆^{2−2β}` | `∆²` |
//! | fast threshold | `∆^{(1+β)/2}` | `√∆` |
//! | levels / `g` sketches | `∆^{(1−β)/2}` | `√∆` |
//! | `g` range (fast blocks) | `∆^{3(1−β)/2}` | `∆^{3/2}` |
//!
//! yielding `O(∆^{(5−3β)/2})` colors in `O(n∆^β)` space. All fractional
//! powers are rounded **up** and clamped to `≥ 1` (DESIGN.md substitution
//! S3), so tiny `∆` degrades gracefully.

/// Derived integer parameters for Algorithm 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RobustParams {
    /// Number of vertices `n`.
    pub n: usize,
    /// Degree bound `∆` the adversary promises to respect.
    pub delta: usize,
    /// Buffer capacity (`n·∆^β` edges).
    pub buffer_capacity: usize,
    /// Number of epochs = number of `h` sketches (`∆^{1−β}`).
    pub num_epochs: usize,
    /// Range of each `h_i` (`∆^{2−2β}` slow blocks).
    pub h_range: u64,
    /// Buffer-degree threshold beyond which a vertex is *fast*
    /// (`∆^{(1+β)/2}`).
    pub fast_threshold: u64,
    /// Number of degree levels = number of `g` sketches (`∆^{(1−β)/2}`).
    pub num_levels: usize,
    /// Range of each `g_ℓ` (`∆^{3(1−β)/2}` fast blocks).
    pub g_range: u64,
}

/// `⌈∆^e⌉`, clamped to at least 1.
fn pow_ceil(delta: usize, e: f64) -> u64 {
    if delta == 0 {
        return 1;
    }
    ((delta as f64).powf(e).ceil() as u64).max(1)
}

impl RobustParams {
    /// Theorem 3 parameters (`β = 0`): `O(∆^{5/2})` colors, `Õ(n)` space.
    pub fn theorem3(n: usize, delta: usize) -> Self {
        Self::with_beta(n, delta, 0.0)
    }

    /// Corollary 4.7 parameters for tradeoff exponent `β ∈ [0, 1]`.
    pub fn with_beta(n: usize, delta: usize, beta: f64) -> Self {
        assert!((0.0..=1.0).contains(&beta), "β must lie in [0, 1], got {beta}");
        assert!(n >= 1, "need at least one vertex");
        Self {
            n,
            delta,
            buffer_capacity: (n as u64 * pow_ceil(delta, beta)) as usize,
            num_epochs: pow_ceil(delta, 1.0 - beta) as usize,
            h_range: pow_ceil(delta, 2.0 - 2.0 * beta),
            fast_threshold: pow_ceil(delta, (1.0 + beta) / 2.0),
            num_levels: pow_ceil(delta, (1.0 - beta) / 2.0) as usize,
            g_range: pow_ceil(delta, 3.0 * (1.0 - beta) / 2.0),
        }
    }

    /// The degree level of a vertex with overall degree `d`:
    /// `⌈d / ∆^{(1+β)/2}⌉`, clamped to `[1, num_levels]` for `d ≥ 1`
    /// (level 0 means degree 0).
    #[inline]
    pub fn level_of(&self, d: u64) -> usize {
        if d == 0 {
            0
        } else {
            (d.div_ceil(self.fast_threshold) as usize).min(self.num_levels)
        }
    }

    /// The paper's theoretical color bound `∆^{(5−3β)/2}`, for reporting.
    pub fn color_bound(&self, beta: f64) -> f64 {
        (self.delta as f64).powf((5.0 - 3.0 * beta) / 2.0)
    }

    /// Whether `∆` is so small that the store-everything fallback the
    /// paper prescribes (`∆ = O(log² n)` regime) applies.
    pub fn store_all_fallback(&self) -> bool {
        let log_n = (self.n.max(2) as f64).log2();
        (self.delta as f64) < log_n * log_n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem3_values_for_square_delta() {
        let p = RobustParams::theorem3(1000, 64);
        assert_eq!(p.buffer_capacity, 1000);
        assert_eq!(p.num_epochs, 64);
        assert_eq!(p.h_range, 64 * 64);
        assert_eq!(p.fast_threshold, 8);
        assert_eq!(p.num_levels, 8);
        assert_eq!(p.g_range, 512); // 64^{3/2}
    }

    #[test]
    fn beta_half_matches_corollary() {
        // β = 1/2: buffer n√∆, epochs √∆, h range ∆, threshold ∆^{3/4},
        // levels ∆^{1/4}, g range ∆^{3/4}; colors O(∆^{7/4}).
        let p = RobustParams::with_beta(100, 256, 0.5);
        assert_eq!(p.buffer_capacity, 100 * 16);
        assert_eq!(p.num_epochs, 16);
        assert_eq!(p.h_range, 256);
        assert_eq!(p.fast_threshold, 64); // 256^{3/4}
        assert_eq!(p.num_levels, 4); // 256^{1/4}
        assert_eq!(p.g_range, 64);
        let bound = p.color_bound(0.5);
        assert!((bound - (256f64).powf(1.75)).abs() < 1e-6);
    }

    #[test]
    fn beta_third_gives_delta_squared_colors() {
        let p = RobustParams::with_beta(100, 64, 1.0 / 3.0);
        // colors bound ∆^{(5-1)/2} = ∆²
        assert!((p.color_bound(1.0 / 3.0) - 4096.0).abs() < 1e-6);
    }

    #[test]
    fn levels_partition_the_degree_range() {
        let p = RobustParams::theorem3(100, 49); // √∆ = 7
        assert_eq!(p.level_of(0), 0);
        assert_eq!(p.level_of(1), 1);
        assert_eq!(p.level_of(7), 1);
        assert_eq!(p.level_of(8), 2);
        assert_eq!(p.level_of(49), 7);
        // Degrees above ∆ clamp to the top level (adversary violation guard).
        assert_eq!(p.level_of(1000), 7);
    }

    #[test]
    fn tiny_delta_is_safe() {
        for d in 0..4usize {
            let p = RobustParams::theorem3(10, d);
            assert!(p.num_epochs >= 1);
            assert!(p.h_range >= 1);
            assert!(p.fast_threshold >= 1);
            assert!(p.num_levels >= 1);
            assert!(p.g_range >= 1);
        }
    }

    #[test]
    fn store_all_fallback_regime() {
        assert!(RobustParams::theorem3(1 << 20, 10).store_all_fallback());
        assert!(!RobustParams::theorem3(256, 64).store_all_fallback());
    }

    #[test]
    #[should_panic(expected = "β must lie")]
    fn rejects_bad_beta() {
        RobustParams::with_beta(10, 10, 1.5);
    }
}
