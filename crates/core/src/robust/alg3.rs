//! Algorithm 3: randomness-efficient adversarially robust
//! `O(∆³)`-coloring (Theorem 4).
//!
//! Unlike Algorithm 2, whose random functions need `Õ(n∆)` oracle bits,
//! this algorithm's entire randomness is `∆ · P` hash functions drawn from
//! a **4-independent** family (`P = ⌈10 log n⌉`), i.e. `O(∆ log² n)` bits
//! stored in working memory — the space bound *includes* the random bits.
//!
//! Per epoch `i` (buffer of `n` edges) it keeps `P` candidate sketches
//! `D_{i,j}` of `h_{i,j}`-monochromatic edges, each capped at `7n/∆` edges
//! and **invalidated to ⊥ on overflow**. Lemma 4.8 (a Chebyshev argument
//! powered by 4-independence) shows each candidate overflows with
//! probability `≤ 1/2` on any fixed prefix, so some `D_{curr,j}` survives
//! w.h.p. The query greedily `(∆+1)`-colors `D_{curr,k} ∪ B` and outputs
//! the pair `(χ(y), h_{curr,k}(y)) ∈ [∆+1] × [ℓ²]` — any monochromatic
//! edge under the pair coloring would have to be `h_{curr,k}`-mono *and*
//! missing from `D_{curr,k} ∪ B`, which cannot happen for a valid `k`.

use crate::robust::sketch::BlockMemo;
use sc_graph::{greedy_color_in_order, greedy_repair_ascending, Coloring, Edge, Graph};
use sc_hash::{PolynomialFamily, PolynomialHash, SplitMix64, VertexSlotTable};
use sc_stream::{
    counter_bits, edge_bits, CacheStats, QueryCache, SpaceMeter, StateReader, StateWriter,
    StreamingColorer,
};

/// Metadata of the cached incremental decode; the heavyweight artifacts
/// (mirror graph, colorings) live in the colorer's [`DecodeArena`] and
/// are valid exactly while the [`QueryCache`] holds this meta. Harness
/// bookkeeping — never charged to the [`SpaceMeter`].
#[derive(Debug, Clone)]
struct DecodeMeta {
    /// The epoch (`curr`) this decode belongs to; a rotation obsoletes it
    /// (different buffer, different candidate row).
    era: usize,
    /// Global index of the surviving candidate slot, or `None` for the
    /// all-`⊥` failure state (both frozen within an epoch: epoch-`curr`
    /// candidate sets only mutate while *earlier* epochs ingest).
    slot: Option<usize>,
    /// Buffer edges already mirrored into the arena.
    b_synced: usize,
}

/// Reusable decode workspace: the pooled buffers behind the cached
/// [`DecodeMeta`]. Replaces the old per-rebuild fresh allocations
/// (`Graph::empty` + two `Coloring::empty`s + thousands of adjacency-list
/// `Vec` growths per rotation) with buffers that live as long as the
/// colorer — 8 interleaved serving sessions stop thrashing the allocator.
///
/// # Reuse / stamping invariants
///
/// * While the colorer's cache holds a [`DecodeMeta`], `mirror`, `chi`
///   and `out` are exactly the decode of `D_{curr,k} ∪ B` (first
///   `b_synced` buffer edges) for that meta. `mirror` receives edges in
///   the same order a scratch `Graph::from_edges` build would insert
///   them, so adjacency order — and hence every first-fit color — matches
///   the from-scratch [`RandEfficientColorer::query`] bit-for-bit.
/// * When the cache is empty the arena's contents are stale; the next
///   rebuild clears them in `O(|touched|)` (not `O(n)`, and with zero
///   frees) via [`Graph::clear_incident`] / [`Coloring::reset`].
///   `touched` always covers every endpoint inserted since the last
///   clear — the `clear_incident` contract — maintained by
///   [`DecodeArena::add_edge`] through the `is_touched` flags.
/// * Buffers only grow; in the steady state a rebuild or patch allocates
///   nothing. Like the [`QueryCache`] itself this is harness
///   bookkeeping, never charged to the [`SpaceMeter`].
#[derive(Debug, Clone)]
struct DecodeArena {
    /// Pooled mirror of `Graph::from_edges(n, D_{curr,k} ∪ B)`.
    mirror: Graph,
    /// Endpoints inserted since the last clear (clears the mirror in
    /// `O(|touched|)`).
    touched: Vec<u32>,
    /// Membership flags for `touched`.
    is_touched: Vec<bool>,
    /// First-fit-ascending coloring `χ` of `mirror`.
    chi: Coloring,
    /// Pair-encoded output `(χ(y), h(y))`.
    out: Coloring,
    /// The ascending vertex order `0..n`, built once for greedy passes.
    order: Vec<u32>,
    /// Second components `h_{curr,k}(y)` for the decode's surviving slot,
    /// refilled on every rebuild. The slot is frozen within an epoch, so
    /// patches read this dense column (a few KB, cache-resident) instead
    /// of gathering one strided `u16` per changed vertex out of the
    /// multi-megabyte value matrix; rebuilds fill it with one
    /// [`PolynomialHash::eval_batch`] sweep (sequential arithmetic, no
    /// memory stalls) rather than `n` gathers.
    second: Vec<u64>,
}

impl DecodeArena {
    fn new(n: usize) -> Self {
        Self {
            mirror: Graph::empty(n),
            touched: Vec::new(),
            is_touched: vec![false; n],
            chi: Coloring::empty(n),
            out: Coloring::empty(n),
            order: (0..n as u32).collect(),
            second: vec![0; n],
        }
    }

    /// Empties the mirror in `O(|touched|)`, keeping all allocations.
    fn clear_mirror(&mut self) {
        self.mirror.clear_incident(&self.touched);
        for &v in &self.touched {
            self.is_touched[v as usize] = false;
        }
        self.touched.clear();
    }

    /// [`Graph::add_edge`] plus touched-endpoint tracking.
    fn add_edge(&mut self, e: Edge) -> bool {
        for w in [e.u(), e.v()] {
            if !self.is_touched[w as usize] {
                self.is_touched[w as usize] = true;
                self.touched.push(w);
            }
        }
        self.mirror.add_edge(e)
    }
}

/// The randomness-efficient robust colorer of Theorem 4.
#[derive(Debug, Clone)]
pub struct RandEfficientColorer {
    n: usize,
    delta: usize,
    /// `ℓ = 2^⌊log ∆⌋`; hash range is `ℓ²`.
    ell: u64,
    /// Candidates per epoch, `P = ⌈10 log n⌉`.
    p_copies: usize,
    /// Cap `⌈7n/∆⌉` on each `D_{i,j}`.
    cap: usize,
    /// `h_{i,j}`, row-major `[epoch][copy]`.
    hashes: Vec<PolynomialHash>,
    /// `D_{i,j}`; `None` = ⊥ (invalidated).
    d_sets: Vec<Option<Vec<Edge>>>,
    buffer: Vec<Edge>,
    curr: usize,
    num_epochs: usize,
    meter: SpaceMeter,
    /// Per-chunk hash memo for the generic batched ingestion tier.
    memo: BlockMemo,
    /// Table-driven evaluation tier: `tbl[v][slot] = h_slot(v)` as `u16`,
    /// built once at construction when the configuration fits (range
    /// `ℓ² ≤ 2^16` and the matrix under [`sc_hash::MAX_TABLE_BYTES`]);
    /// `None` falls back to the memoized generic tier. A pure cache of
    /// the stored hash coefficients — never charged to the meter.
    table: Option<VertexSlotTable>,
    /// Ingest scratch: `(edge index, slot)` match pairs, edge-major.
    pairs: Vec<(u32, u32)>,
    /// Pooled decode buffers for the incremental query path.
    arena: DecodeArena,
    /// Queries that found every `D_{curr,j} = ⊥` (the `1/poly(n)` failure
    /// event of Lemma 4.8); such queries fall back to coloring `B` alone
    /// and may be improper.
    failures: u64,
    /// Epoch-keyed decode metadata for the incremental query path.
    cache: QueryCache<DecodeMeta>,
}

impl RandEfficientColorer {
    /// Creates the colorer for an `n`-vertex stream with degree bound `∆`.
    pub fn new(n: usize, delta: usize, seed: u64) -> Self {
        assert!(n >= 1);
        let delta = delta.max(1);
        let log_n = (n.max(2) as f64).log2();
        let p_copies = (10.0 * log_n).ceil() as usize;
        let ell = 1u64 << (delta as u64).ilog2(); // greatest power of 2 ≤ ∆
        let range = ell * ell;
        // A max-degree-∆ graph has at most n∆/2 edges (handshake), and
        // the buffer rotates once per n ingested edges, so the epoch
        // counter never passes ⌈∆/2⌉; one spare epoch absorbs the
        // boundary. Provisioning ∆ epochs (one per buffer, read loosely)
        // would double the randomness charge and the value matrix, and —
        // on the ingest hot path — double the live slot suffix every
        // edge is scanned against.
        let num_epochs = delta.div_ceil(2) + 1;
        let cap = (7 * n).div_ceil(delta).max(1);
        let family = PolynomialFamily::for_domain(n as u64, range, 4);
        let mut rng = SplitMix64::new(seed);
        let mut meter = SpaceMeter::new();
        let hashes: Vec<PolynomialHash> = (0..num_epochs * p_copies)
            .map(|_| {
                meter.charge(family.bits_per_sample()); // randomness IS space here
                family.sample(&mut rng)
            })
            .collect();
        let d_sets = vec![Some(Vec::new()); num_epochs * p_copies];
        meter.charge(128); // curr + buffer counters
        let table = VertexSlotTable::build(&hashes, n);
        Self {
            n,
            delta,
            ell,
            p_copies,
            cap,
            hashes,
            d_sets,
            buffer: Vec::new(),
            curr: 1,
            num_epochs,
            meter,
            memo: BlockMemo::new(n),
            table,
            pairs: Vec::new(),
            arena: DecodeArena::new(n),
            failures: 0,
            cache: QueryCache::new(),
        }
    }

    #[inline]
    fn idx(&self, epoch_1based: usize, j: usize) -> usize {
        (epoch_1based - 1) * self.p_copies + j
    }

    /// Whether the table-driven evaluation tier is active (see the
    /// `table` field; small-range configurations always tabulate).
    pub fn has_table_tier(&self) -> bool {
        self.table.is_some()
    }

    /// Drops the table-driven evaluation tier, forcing the generic
    /// memoized tier from here on. The tiers are bit-identical by
    /// construction; this exists so tests and benchmarks can compare
    /// them on one configuration.
    pub fn force_generic_tier(&mut self) {
        self.table = None;
    }

    /// Number of all-⊥ query failures so far.
    pub fn failures(&self) -> u64 {
        self.failures
    }

    /// `P`, the candidates per epoch.
    pub fn copies(&self) -> usize {
        self.p_copies
    }

    /// The cap `⌈7n/∆⌉` after which a candidate set is invalidated.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Current epoch number (1-based).
    pub fn current_epoch(&self) -> usize {
        self.curr
    }

    /// Number of epochs provisioned (`∆`).
    pub fn num_epochs(&self) -> usize {
        self.num_epochs
    }

    /// Sizes of the candidate sets `D_{epoch,j}` (`None` = ⊥) — the
    /// concentration Lemma 4.8 argues about. `epoch` is 1-based.
    pub fn candidate_sizes(&self, epoch: usize) -> Vec<Option<usize>> {
        assert!((1..=self.num_epochs).contains(&epoch));
        (0..self.p_copies).map(|j| self.d_sets[self.idx(epoch, j)].as_ref().map(Vec::len)).collect()
    }

    /// Total edges stored across buffers and candidate sets.
    pub fn stored_edges(&self) -> usize {
        self.buffer.len()
            + self.d_sets.iter().map(|d| d.as_ref().map_or(0, Vec::len)).sum::<usize>()
    }

    /// Lines 6–7: clears the full buffer and advances the epoch.
    fn rotate_buffer(&mut self) {
        self.meter.release(self.buffer.len() as u64 * edge_bits(self.n));
        self.buffer.clear();
        self.curr += 1;
        assert!(
            self.curr <= self.num_epochs,
            "epoch overflow: stream exceeded the n·∆/2 edge budget"
        );
        // The decode cache mirrors D_{curr,k} ∪ B; both just changed.
        self.cache.invalidate();
    }

    /// The first surviving candidate of the current epoch (line 15), as a
    /// global slot index.
    fn surviving_slot(&self) -> Option<usize> {
        (0..self.p_copies).map(|j| self.idx(self.curr, j)).find(|&s| self.d_sets[s].is_some())
    }

    /// Decodes the current epoch's sketch into the pooled [`DecodeArena`]
    /// (the cache-miss path; also bumps the failure counter exactly as a
    /// scratch query would). Allocation-free in the steady state: the
    /// arena is cleared in `O(|touched|)` and refilled in place.
    fn rebuild_decode(&mut self) -> DecodeMeta {
        let slot = self.surviving_slot();
        if slot.is_none() {
            self.failures += 1;
        }
        let arena = &mut self.arena;
        arena.clear_mirror();
        if let Some(s) = slot {
            for &e in self.d_sets[s].as_ref().expect("surviving slot is Some") {
                arena.add_edge(e);
            }
        }
        for &e in &self.buffer {
            arena.add_edge(e);
        }
        arena.chi.reset();
        greedy_color_in_order(&arena.mirror, &mut arena.chi, &arena.order, 0);
        // Refill the second-component column for this epoch's slot; the
        // batched tier is bit-identical to scalar `eval` (and to the value
        // matrix), so the pair encoding matches the scratch query exactly.
        match slot {
            Some(s) => self.hashes[s].eval_batch(&arena.order, &mut arena.second),
            None => arena.second.fill(0),
        }
        let range = self.ell * self.ell;
        for y in 0..self.n as u32 {
            let chi_y = arena.chi.get(y).expect("greedy colored everything");
            arena.out.set(y, chi_y * range + arena.second[y as usize]);
        }
        DecodeMeta { era: self.curr, slot, b_synced: self.buffer.len() }
    }

    /// Batched ingestion of a run of edges within one epoch.
    ///
    /// Candidate membership (`h_{i,j}`-monochromaticity) is a pure
    /// function of the endpoints, so phase 1 computes the edge-major
    /// `(edge, slot)` match pairs up front. In the table tier that is one
    /// [`VertexSlotTable::equal_slots`] row scan per edge — packed `u16`
    /// compares over exactly the live slot suffix `[curr·P, ∆·P)`, which
    /// shrinks as epochs advance. The generic tier keeps the sketch-major
    /// [`BlockMemo`] sweep (skipping `⊥` slots, one evaluation per
    /// distinct endpoint) and sorts its pairs into the same edge-major
    /// order. Phase 2 replays insertions edge-major so the
    /// cap/invalidate state machine and the space meter evolve exactly as
    /// per-edge processing: unlike Algorithm 2's, this meter *releases*
    /// mid-run (overflow wipes), so charge order matters for the reported
    /// peak.
    /// Scalar ingestion of a single in-epoch edge (lines 8–14) — the
    /// reference path. [`StreamingColorer::process`] and single-edge
    /// batch runs land here: a one-edge chunk gives the table tier
    /// nothing to amortize over, and keeping it on the scalar routine
    /// means the engine's per-edge configuration measures the unbatched
    /// algorithm rather than a degenerate batch.
    fn ingest_edge(&mut self, e: Edge) {
        assert!((e.v() as usize) < self.n, "edge {e} out of range");
        let eb = edge_bits(self.n);

        self.buffer.push(e);
        self.meter.charge(eb);

        // Lines 9–14: feed the candidate sketches of future epochs.
        let (u, v) = e.endpoints();
        for i in (self.curr + 1)..=self.num_epochs {
            for j in 0..self.p_copies {
                let h = &self.hashes[self.idx(i, j)];
                if h.eval(u as u64) != h.eval(v as u64) {
                    continue;
                }
                let slot = self.idx(i, j);
                match &mut self.d_sets[slot] {
                    Some(d) if d.len() < self.cap => {
                        d.push(e);
                        self.meter.charge(eb);
                    }
                    Some(d) => {
                        // Overflow: wipe to ⊥ (lines 13–14).
                        self.meter.release(d.len() as u64 * eb);
                        self.d_sets[slot] = None;
                    }
                    None => {}
                }
            }
        }
    }

    fn ingest_run(&mut self, run: &[Edge]) {
        let eb = edge_bits(self.n);
        for &e in run {
            assert!((e.v() as usize) < self.n, "edge {e} out of range");
        }

        // Phase 1: (edge, slot) match pairs over live future slots.
        self.pairs.clear();
        let base = self.curr * self.p_copies; // first slot of epoch curr+1
        let total = self.num_epochs * self.p_copies;
        if base < total {
            match &self.table {
                Some(t) => {
                    let pairs = &mut self.pairs;
                    let d_sets = &self.d_sets;
                    for (k, &e) in run.iter().enumerate() {
                        // Overlap the next edge's row-stream startup
                        // latency with the current scan (pure hint).
                        if let Some(ne) = run.get(k + 1) {
                            t.prefetch_rows(ne.u(), ne.v(), base);
                        }
                        t.equal_slots(e.u(), e.v(), base, |slot| {
                            // ⊥ never revives: matches on slots dead
                            // before the run are dropped here, mid-run
                            // deaths by phase 2's state machine.
                            if d_sets[slot].is_some() {
                                pairs.push((k as u32, slot as u32));
                            }
                        });
                    }
                }
                None => {
                    for slot in base..total {
                        if self.d_sets[slot].is_none() {
                            continue; // ⊥ never revives; skip its hashing
                        }
                        self.memo.reset();
                        let h = &self.hashes[slot];
                        for (k, &e) in run.iter().enumerate() {
                            if self.memo.get(e.u(), |x| h.eval(x))
                                == self.memo.get(e.v(), |x| h.eval(x))
                            {
                                self.pairs.push((k as u32, slot as u32));
                            }
                        }
                    }
                    // Sketch-major discovery order → edge-major replay order.
                    self.pairs.sort_unstable();
                }
            }
        }

        // Phase 2: edge-major state replay (lines 6–14 semantics).
        self.buffer.reserve(run.len());
        let mut cursor = 0;
        for (k, &e) in run.iter().enumerate() {
            self.buffer.push(e);
            self.meter.charge(eb);
            while cursor < self.pairs.len() && self.pairs[cursor].0 == k as u32 {
                let slot = self.pairs[cursor].1 as usize;
                cursor += 1;
                match &mut self.d_sets[slot] {
                    Some(d) if d.len() < self.cap => {
                        d.push(e);
                        self.meter.charge(eb);
                    }
                    Some(d) => {
                        // Overflow: wipe to ⊥ (lines 13–14).
                        self.meter.release(d.len() as u64 * eb);
                        self.d_sets[slot] = None;
                    }
                    None => {}
                }
            }
        }
    }
}

impl StreamingColorer for RandEfficientColorer {
    fn process(&mut self, e: Edge) {
        // Lines 6–7: epoch rotation.
        if self.buffer.len() == self.n {
            self.rotate_buffer();
        }
        self.cache.advance(1);
        self.ingest_edge(e);
    }

    fn process_batch(&mut self, edges: &[Edge]) {
        self.cache.advance(edges.len() as u64);
        let mut start = 0;
        while start < edges.len() {
            if self.buffer.len() == self.n {
                self.rotate_buffer();
            }
            // Split at epoch boundaries so each run sees a fixed `curr`.
            let room = self.n.saturating_sub(self.buffer.len()).max(1);
            let end = (start + room).min(edges.len());
            if end - start == 1 {
                self.ingest_edge(edges[start]);
            } else {
                self.ingest_run(&edges[start..end]);
            }
            start = end;
        }
    }

    fn query(&mut self) -> Coloring {
        // Line 15: first surviving candidate.
        let k = (0..self.p_copies).find(|&j| self.d_sets[self.idx(self.curr, j)].is_some());
        let (edges, h): (Vec<Edge>, Option<&PolynomialHash>) = match k {
            Some(j) => {
                let d = self.d_sets[self.idx(self.curr, j)].as_ref().unwrap();
                (
                    d.iter().chain(self.buffer.iter()).copied().collect(),
                    Some(&self.hashes[self.idx(self.curr, j)]),
                )
            }
            None => {
                // All candidates invalidated — the low-probability failure
                // event. Color what we can see (the buffer alone).
                self.failures += 1;
                (self.buffer.clone(), None)
            }
        };

        // Line 16: greedy (∆+1)-coloring χ of the stored subgraph.
        let g = Graph::from_edges(self.n, edges);
        let mut chi = Coloring::empty(self.n);
        let order: Vec<u32> = (0..self.n as u32).collect();
        greedy_color_in_order(&g, &mut chi, &order, 0);

        // Line 17: output pair (χ(y), h(y)) encoded as χ(y)·ℓ² + h(y).
        let range = self.ell * self.ell;
        let mut out = Coloring::empty(self.n);
        for y in 0..self.n as u32 {
            let chi_y = chi.get(y).expect("greedy colored everything");
            let second = h.map_or(0, |h| h.eval(y as u64));
            out.set(y, chi_y * range + second);
        }
        out
    }

    fn query_incremental(&mut self) -> Coloring {
        // Fresh: nothing ingested since the last decode.
        if let Some(meta) = self.cache.fresh() {
            let failed = meta.slot.is_none();
            let out = self.arena.out.clone();
            if failed {
                self.failures += 1; // each query observes the failure anew
            }
            return out;
        }
        match self.cache.take_for_patch() {
            Some((_, mut meta)) => {
                debug_assert_eq!(meta.era, self.curr, "rotation must invalidate the decode cache");
                // Within an epoch only buffer edges join D_{curr,k} ∪ B:
                // append them to the arena mirror and repair χ around them.
                // Seed the repair only where an inserted edge actually
                // conflicts. For a new edge {u, v} with u < v, first-fit's
                // choice at v can change only if χ(u) = χ(v): a smaller
                // χ(u) was already forbidden at v (else first-fit would
                // have picked it), and a larger one never lowers the
                // smallest non-forbidden color. If the cascade later
                // recolors u, it re-enqueues v itself.
                let mut seeds = Vec::new();
                for &e in &self.buffer[meta.b_synced..] {
                    if self.arena.add_edge(e)
                        && self.arena.chi.get(e.u()) == self.arena.chi.get(e.v())
                    {
                        seeds.push(e.u().max(e.v()));
                    }
                }
                meta.b_synced = self.buffer.len();
                let arena = &mut self.arena;
                let changed = greedy_repair_ascending(&arena.mirror, &mut arena.chi, seeds);
                self.cache.note_patched(changed.len() as u64);
                let range = self.ell * self.ell;
                for v in changed {
                    let chi_v = arena.chi.get(v).expect("repair keeps χ total");
                    // `second` holds this epoch's slot values (the slot is
                    // frozen between rebuilds), so patching the pair
                    // encoding is two cache-resident reads per vertex.
                    arena.out.set(v, chi_v * range + arena.second[v as usize]);
                }
                if meta.slot.is_none() {
                    self.failures += 1;
                }
                let out = arena.out.clone();
                self.cache.install(meta);
                out
            }
            None => {
                let meta = self.rebuild_decode();
                let out = self.arena.out.clone();
                self.cache.install(meta);
                out
            }
        }
    }

    fn query_cache_stats(&self) -> Option<CacheStats> {
        Some(self.cache.stats())
    }

    fn peak_space_bits(&self) -> u64 {
        self.meter.peak_bits() + self.n as u64 * counter_bits(self.delta as u64)
        // deg-free: no counters needed, but charge χ scratch
    }

    fn encode_state(&self) -> Result<String, String> {
        let mut w = StateWriter::new();
        w.field("algo", self.name());
        w.field("curr", self.curr);
        w.edges("buffer", &self.buffer);
        // `-` marks an invalidated (⊥) candidate; `⊥` never revives, so
        // the marker is all a restore needs.
        let dsets = self
            .d_sets
            .iter()
            .map(|d| match d {
                Some(edges) => sc_stream::encode_edge_list(edges),
                None => "-".to_string(),
            })
            .collect::<Vec<_>>()
            .join("|");
        w.field("dsets", dsets);
        w.field("space_cur", self.meter.current_bits());
        w.field("space_peak", self.meter.peak_bits());
        w.field("failures", self.failures);
        w.field("epoch", self.cache.epoch());
        Ok(w.finish())
    }

    fn decode_state(&mut self, state: &str) -> Result<(), String> {
        let mut r = StateReader::new(state);
        let algo = r.expect("algo")?;
        if algo != self.name() {
            return Err(format!("state: algo {algo:?} is not {:?}", self.name()));
        }
        let curr = r.usize_field("curr")?;
        if !(1..=self.num_epochs).contains(&curr) {
            return Err(format!("state: curr={curr} outside 1..={}", self.num_epochs));
        }
        let buffer = r.edges_field("buffer", self.n)?;
        if buffer.len() > self.n {
            return Err(format!(
                "state: buffer holds {} edges over capacity {}",
                buffer.len(),
                self.n
            ));
        }
        let dsets_text = r.expect("dsets")?;
        let lists: Vec<&str> = dsets_text.split('|').collect();
        if lists.len() != self.d_sets.len() {
            return Err(format!(
                "state: dsets: {} candidate lists for {} slots",
                lists.len(),
                self.d_sets.len()
            ));
        }
        let mut d_sets: Vec<Option<Vec<Edge>>> = Vec::with_capacity(lists.len());
        for (slot, list) in lists.into_iter().enumerate() {
            if list == "-" {
                d_sets.push(None);
                continue;
            }
            let edges = sc_stream::decode_edge_list(list, self.n)
                .map_err(|e| format!("state: dsets: {e}"))?;
            if edges.len() > self.cap {
                return Err(format!(
                    "state: dsets: slot {slot} holds {} edges over cap {}",
                    edges.len(),
                    self.cap
                ));
            }
            let h = &self.hashes[slot];
            for &e in &edges {
                if h.eval(e.u() as u64) != h.eval(e.v() as u64) {
                    return Err(format!(
                        "state: dsets: edge {e} is not monochromatic under slot {slot}"
                    ));
                }
            }
            d_sets.push(Some(edges));
        }
        let space_cur = r.u64_field("space_cur")?;
        let space_peak = r.u64_field("space_peak")?;
        let failures = r.u64_field("failures")?;
        let epoch = r.u64_field("epoch")?;
        r.done()?;
        self.curr = curr;
        self.buffer = buffer;
        self.d_sets = d_sets;
        self.meter =
            SpaceMeter::restored(space_cur, space_peak).map_err(|e| format!("state: {e}"))?;
        self.failures = failures;
        self.cache.restore_at_epoch(epoch);
        Ok(())
    }

    fn name(&self) -> &'static str {
        "robust-alg3"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_graph::generators;
    use sc_stream::run_oblivious;

    #[test]
    fn proper_coloring_on_random_streams() {
        for seed in 0..3u64 {
            let g = generators::gnp_with_max_degree(50, 8, 0.5, seed);
            let mut colorer = RandEfficientColorer::new(50, 8, seed + 77);
            let c = run_oblivious(&mut colorer, generators::shuffled_edges(&g, seed));
            assert!(c.is_proper_total(&g), "seed {seed}");
            assert_eq!(colorer.failures(), 0);
        }
    }

    #[test]
    fn palette_within_delta_cubed() {
        let g = generators::gnp_with_max_degree(120, 16, 0.5, 2);
        let mut colorer = RandEfficientColorer::new(120, 16, 5);
        let c = run_oblivious(&mut colorer, generators::shuffled_edges(&g, 2));
        assert!(c.is_proper_total(&g));
        // Palette is [∆+1] × [ℓ²] with ℓ ≤ ∆.
        let bound = (16u64 + 1) * 16 * 16;
        assert!(c.palette_span() <= bound, "span {} > (∆+1)∆²", c.palette_span());
    }

    #[test]
    fn pair_encoding_separates_hash_blocks() {
        // Any two vertices with different h values must differ mod ℓ².
        let g = generators::complete(12);
        let mut colorer = RandEfficientColorer::new(12, 11, 3);
        let c = run_oblivious(&mut colorer, g.edges());
        assert!(c.is_proper_total(&g));
        let range = colorer.ell * colorer.ell;
        assert!(range >= 64); // ℓ = 8 for ∆ = 11
        for v in 0..12u32 {
            assert!(c.get(v).unwrap() < (11 + 1) * range + range);
        }
    }

    #[test]
    fn mid_stream_queries_proper() {
        let g = generators::gnp_with_max_degree(40, 6, 0.5, 11);
        let edges = generators::shuffled_edges(&g, 11);
        let mut colorer = RandEfficientColorer::new(40, 6, 13);
        let mut prefix = Graph::empty(40);
        for (i, &e) in edges.iter().enumerate() {
            colorer.process(e);
            prefix.add_edge(e);
            if i % 9 == 0 {
                let c = colorer.query();
                assert!(c.is_proper_total(&prefix), "after {} edges", i + 1);
            }
        }
    }

    #[test]
    fn candidate_caps_are_enforced() {
        let g = generators::gnp_with_max_degree(60, 10, 0.5, 4);
        let mut colorer = RandEfficientColorer::new(60, 10, 21);
        run_oblivious(&mut colorer, generators::shuffled_edges(&g, 4));
        for d in colorer.d_sets.iter().flatten() {
            assert!(d.len() <= colorer.cap);
        }
    }

    #[test]
    fn space_includes_randomness() {
        let colorer = RandEfficientColorer::new(100, 8, 1);
        // ∆·P hash functions at 4 coefficients each must be charged.
        let min_random_bits = (colorer.num_epochs * colorer.p_copies) as u64 * 4;
        assert!(colorer.peak_space_bits() > min_random_bits);
    }

    #[test]
    fn determinism_in_seed() {
        let g = generators::gnp_with_max_degree(30, 5, 0.5, 8);
        let edges = generators::shuffled_edges(&g, 8);
        let mut a = RandEfficientColorer::new(30, 5, 55);
        let mut b = RandEfficientColorer::new(30, 5, 55);
        assert_eq!(
            run_oblivious(&mut a, edges.iter().copied()),
            run_oblivious(&mut b, edges.iter().copied())
        );
    }

    #[test]
    fn generic_tier_matches_table_tier() {
        // Force the BlockMemo fallback on one of two identically seeded
        // colorers: ingestion, incremental queries, and scratch queries
        // must stay bit-identical across evaluation tiers.
        let g = generators::gnp_with_max_degree(60, 8, 0.5, 3);
        let edges = generators::shuffled_edges(&g, 3);
        let mut tabled = RandEfficientColorer::new(60, 8, 99);
        let mut generic = RandEfficientColorer::new(60, 8, 99);
        assert!(tabled.table.is_some(), "this configuration should tabulate");
        generic.table = None;
        for chunk in edges.chunks(7) {
            tabled.process_batch(chunk);
            generic.process_batch(chunk);
            assert_eq!(tabled.query_incremental(), generic.query_incremental());
        }
        assert_eq!(tabled.query(), generic.query());
        assert_eq!(tabled.peak_space_bits(), generic.peak_space_bits());
        assert_eq!(tabled.candidate_sizes(tabled.curr), generic.candidate_sizes(generic.curr));
    }

    #[test]
    fn arena_decode_matches_scratch_queries() {
        // The pooled-arena incremental path against the from-scratch
        // reference, across epoch rotations and back-to-back queries.
        let g = generators::gnp_with_max_degree(45, 7, 0.6, 14);
        let edges = generators::shuffled_edges(&g, 14);
        let mut colorer = RandEfficientColorer::new(45, 7, 31);
        for (i, &e) in edges.iter().enumerate() {
            colorer.process(e);
            if i % 5 == 0 {
                assert_eq!(colorer.query_incremental(), colorer.query(), "prefix {}", i + 1);
                // Immediately again: a pure cache hit must not drift.
                assert_eq!(colorer.query_incremental(), colorer.query());
            }
        }
        let stats = colorer.query_cache_stats().unwrap();
        assert!(stats.hits > 0 && stats.patches > 0);
    }

    #[test]
    fn query_on_empty_stream() {
        let mut colorer = RandEfficientColorer::new(8, 3, 9);
        let c = colorer.query();
        assert!(c.is_total());
    }

    #[test]
    fn delta_one_graphs() {
        // A perfect matching: ∆ = 1 exercises ℓ = 1.
        let mut g = Graph::empty(10);
        for i in 0..5u32 {
            g.add_edge(Edge::new(2 * i, 2 * i + 1));
        }
        let mut colorer = RandEfficientColorer::new(10, 1, 2);
        let c = run_oblivious(&mut colorer, g.edges());
        assert!(c.is_proper_total(&g));
    }
}
