//! `f`-sketches: the storage primitive of the robust algorithms.
//!
//! §4.1 of the paper: "for a function `f` we call the underlying sketch of
//! the algorithm, which receives edges of the graph and stores it only if
//! it is `f`-monochromatic, as an `f`-sketch." The `f`-blocks (color
//! classes of `f`) partition `V`; intra-block edges are exactly the
//! `f`-monochromatic ones, so a sketch holds every intra-block edge of the
//! substream it processed.

use sc_graph::Edge;
use sc_hash::OracleFn;

/// Stores the `f`-monochromatic edges among those offered to it.
#[derive(Debug, Clone)]
pub struct MonoSketch {
    f: OracleFn,
    edges: Vec<Edge>,
}

impl MonoSketch {
    /// A sketch over the coloring function `f`.
    pub fn new(f: OracleFn) -> Self {
        Self { f, edges: Vec::new() }
    }

    /// The block (color under `f`) of vertex `v`.
    #[inline]
    pub fn block_of(&self, v: u32) -> u64 {
        self.f.eval(v as u64)
    }

    /// Offers an edge; stores it iff it is `f`-monochromatic. Returns
    /// whether it was stored.
    #[inline]
    pub fn offer(&mut self, e: Edge) -> bool {
        if self.f.eval(e.u() as u64) == self.f.eval(e.v() as u64) {
            self.edges.push(e);
            true
        } else {
            false
        }
    }

    /// The stored edges.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The underlying oracle function (batched paths hash through a
    /// [`BlockMemo`] instead of calling [`MonoSketch::offer`]).
    #[inline]
    pub fn oracle(&self) -> &OracleFn {
        &self.f
    }

    /// Stores an edge the caller has already checked is monochromatic
    /// (via memoized evaluations of [`MonoSketch::oracle`]).
    #[inline]
    pub(crate) fn push_mono(&mut self, e: Edge) {
        debug_assert_eq!(
            self.block_of(e.u()),
            self.block_of(e.v()),
            "push_mono on a bichromatic edge"
        );
        self.edges.push(e);
    }

    /// Number of stored edges.
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edges are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The range of `f` (number of blocks).
    #[inline]
    pub fn num_blocks(&self) -> u64 {
        self.f.range()
    }

    /// Offers a whole chunk, memoizing `f` through `memo` so each distinct
    /// endpoint is hashed once per chunk instead of once per edge. Returns
    /// the number of edges stored. Equivalent to offering the chunk's
    /// edges one at a time, in order.
    pub fn offer_batch(&mut self, edges: &[Edge], memo: &mut BlockMemo) -> usize {
        memo.reset();
        let f = self.f; // `OracleFn` is `Copy`; detach from `self.edges`.
        let before = self.edges.len();
        for &e in edges {
            if memo.get(e.u(), |x| f.eval(x)) == memo.get(e.v(), |x| f.eval(x)) {
                self.edges.push(e);
            }
        }
        self.edges.len() - before
    }
}

/// Per-chunk memo table for vertex-keyed hash evaluations.
///
/// The batched ingestion paths evaluate each sketch function at every
/// endpoint of every chunk edge; a vertex of multiplicity `r` in the chunk
/// would pay `r` evaluations. The memo caches by vertex id with
/// generation stamping, so [`BlockMemo::reset`] is `O(1)` and a chunk pays
/// one evaluation per *distinct* endpoint per sketch.
#[derive(Debug, Clone)]
pub struct BlockMemo {
    vals: Vec<u64>,
    stamp: Vec<u32>,
    generation: u32,
}

impl BlockMemo {
    /// A memo for vertex ids below `n`.
    pub fn new(n: usize) -> Self {
        Self { vals: vec![0; n], stamp: vec![0; n], generation: 0 }
    }

    /// Invalidates all cached values (constant time).
    #[inline]
    pub fn reset(&mut self) {
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // Stamp wrap-around: stale stamps could alias, so clear.
            self.stamp.fill(0);
            self.generation = 1;
        }
    }

    /// The cached value of `f(v)`, computing it on first use.
    #[inline]
    pub fn get(&mut self, v: u32, f: impl Fn(u64) -> u64) -> u64 {
        let i = v as usize;
        if self.stamp[i] != self.generation {
            self.vals[i] = f(v as u64);
            self.stamp[i] = self.generation;
        }
        self.vals[i]
    }
}

/// Groups `vertices` by their sketch block, returning only nonempty
/// groups as `(block, members)` pairs, sorted by block id.
///
/// Query time in Algorithm 2 iterates blocks; grouping nonempty ones keeps
/// that `O(|V| log |V|)` instead of `O(∆²)` when most blocks are empty.
pub fn group_by_block(sketch: &MonoSketch, vertices: &[u32]) -> Vec<(u64, Vec<u32>)> {
    let mut tagged: Vec<(u64, u32)> = vertices.iter().map(|&v| (sketch.block_of(v), v)).collect();
    tagged.sort_unstable();
    let mut out: Vec<(u64, Vec<u32>)> = Vec::new();
    for (b, v) in tagged {
        match out.last_mut() {
            Some((block, members)) if *block == b => members.push(v),
            _ => out.push((b, vec![v])),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sketch(range: u64) -> MonoSketch {
        MonoSketch::new(OracleFn::new(42, 7, range))
    }

    #[test]
    fn stores_only_monochromatic_edges() {
        let mut s = sketch(4);
        let mut stored = 0;
        let mut total = 0;
        for u in 0..30u32 {
            for v in (u + 1)..30 {
                total += 1;
                let mono = s.block_of(u) == s.block_of(v);
                assert_eq!(s.offer(Edge::new(u, v)), mono);
                stored += usize::from(mono);
            }
        }
        assert_eq!(s.len(), stored);
        assert!(stored > 0, "range 4 over 30 vertices must have collisions");
        assert!(stored < total);
        // Every stored edge really is monochromatic.
        for e in s.edges() {
            assert_eq!(s.block_of(e.u()), s.block_of(e.v()));
        }
    }

    #[test]
    fn block_of_is_stable() {
        let s = sketch(16);
        for v in 0..100u32 {
            assert_eq!(s.block_of(v), s.block_of(v));
            assert!(s.block_of(v) < 16);
        }
    }

    #[test]
    fn grouping_partitions_the_vertex_set() {
        let s = sketch(4);
        let vertices: Vec<u32> = (0..50).collect();
        let groups = group_by_block(&s, &vertices);
        let total: usize = groups.iter().map(|(_, m)| m.len()).sum();
        assert_eq!(total, 50);
        for (b, members) in &groups {
            assert!(!members.is_empty());
            for &v in members {
                assert_eq!(s.block_of(v), *b);
            }
        }
        // Blocks sorted and distinct.
        let ids: Vec<u64> = groups.iter().map(|(b, _)| *b).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn empty_inputs() {
        let s = sketch(8);
        assert!(s.is_empty());
        assert_eq!(s.num_blocks(), 8);
        assert!(group_by_block(&s, &[]).is_empty());
    }
}
