//! `f`-sketches: the storage primitive of the robust algorithms.
//!
//! §4.1 of the paper: "for a function `f` we call the underlying sketch of
//! the algorithm, which receives edges of the graph and stores it only if
//! it is `f`-monochromatic, as an `f`-sketch." The `f`-blocks (color
//! classes of `f`) partition `V`; intra-block edges are exactly the
//! `f`-monochromatic ones, so a sketch holds every intra-block edge of the
//! substream it processed.

use sc_graph::Edge;
use sc_hash::OracleFn;

/// Stores the `f`-monochromatic edges among those offered to it.
#[derive(Debug, Clone)]
pub struct MonoSketch {
    f: OracleFn,
    edges: Vec<Edge>,
}

impl MonoSketch {
    /// A sketch over the coloring function `f`.
    pub fn new(f: OracleFn) -> Self {
        Self { f, edges: Vec::new() }
    }

    /// The block (color under `f`) of vertex `v`.
    #[inline]
    pub fn block_of(&self, v: u32) -> u64 {
        self.f.eval(v as u64)
    }

    /// Offers an edge; stores it iff it is `f`-monochromatic. Returns
    /// whether it was stored.
    #[inline]
    pub fn offer(&mut self, e: Edge) -> bool {
        if self.f.eval(e.u() as u64) == self.f.eval(e.v() as u64) {
            self.edges.push(e);
            true
        } else {
            false
        }
    }

    /// The stored edges.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The underlying oracle function (batched paths hash through an
    /// [`EvalScratch`] or [`BlockMemo`] instead of calling
    /// [`MonoSketch::offer`]).
    #[inline]
    pub fn oracle(&self) -> &OracleFn {
        &self.f
    }

    /// Number of stored edges.
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edges are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The range of `f` (number of blocks).
    #[inline]
    pub fn num_blocks(&self) -> u64 {
        self.f.range()
    }

    /// Offers a whole chunk through the batched evaluation tier: loads
    /// the chunk's presplit columns into `scratch`, then runs the fused
    /// per-lane monochromaticity check. Returns the number of edges
    /// stored. Equivalent to offering the chunk's edges one at a time,
    /// in order (`eval_presplit ∘ presplit` is bit-identical to `eval`).
    pub fn offer_batch(&mut self, edges: &[Edge], scratch: &mut EvalScratch) -> usize {
        scratch.load(edges);
        self.offer_preloaded(edges, scratch)
    }

    /// [`MonoSketch::offer_batch`] over a chunk whose presplit columns
    /// are already loaded — callers with several sketches over the same
    /// chunk (Algorithm 2's per-epoch loop) load once and share.
    ///
    /// The check is fused: each lane's two outer rounds complete in
    /// registers and compare immediately, with no hash-value columns
    /// materialized. (The earlier structure-of-arrays tier stored both
    /// endpoint hashes per lane and re-read them in a second pass; the
    /// memory round trip made it ~3× slower than the scalar loop, which
    /// LLVM already keeps register-resident.)
    pub fn offer_preloaded(&mut self, edges: &[Edge], scratch: &EvalScratch) -> usize {
        self.offer_preloaded_where(edges, scratch, |_| true)
    }

    /// [`MonoSketch::offer_preloaded`] restricted to the chunk lanes
    /// accepted by `keep` (Algorithm 2's level filter) — rejected lanes
    /// are never hashed. Lanes are visited in chunk order, so stored
    /// edges land in exactly the per-edge insertion order.
    pub fn offer_preloaded_where(
        &mut self,
        edges: &[Edge],
        scratch: &EvalScratch,
        mut keep: impl FnMut(usize) -> bool,
    ) -> usize {
        let before = self.edges.len();
        for (k, &e) in edges.iter().enumerate() {
            if keep(k) && self.f.eval_presplit(scratch.su(k)) == self.f.eval_presplit(scratch.sv(k))
            {
                self.edges.push(e);
            }
        }
        self.edges.len() - before
    }
}

/// Encodes a bank of sketches' stored edge lists as `|`-joined
/// [`sc_stream::state::encode_edge_list`] strings (state-codec
/// vocabulary; the oracle functions are rebuilt from the seed, so only
/// the edges travel).
pub(crate) fn encode_sketch_bank(sketches: &[MonoSketch]) -> String {
    sketches.iter().map(|s| sc_stream::encode_edge_list(s.edges())).collect::<Vec<_>>().join("|")
}

/// Replays an [`encode_sketch_bank`] string into freshly built sketches,
/// re-offering every edge so monochromaticity is *validated*, not
/// trusted — a tampered blob fails naming the sketch and edge. `key`
/// names the state field in errors.
pub(crate) fn decode_sketch_bank(
    sketches: &mut [MonoSketch],
    text: &str,
    n: usize,
    key: &str,
) -> Result<(), String> {
    let lists: Vec<&str> = text.split('|').collect();
    if lists.len() != sketches.len() {
        return Err(format!(
            "state: {key}: {} sketch lists for {} sketches",
            lists.len(),
            sketches.len()
        ));
    }
    for (i, (sketch, list)) in sketches.iter_mut().zip(lists).enumerate() {
        for e in sc_stream::decode_edge_list(list, n).map_err(|e| format!("state: {key}: {e}"))? {
            if !sketch.offer(e) {
                return Err(format!(
                    "state: {key}: edge {e} is not monochromatic under sketch {i}"
                ));
            }
        }
    }
    Ok(())
}

/// Pooled presplit-endpoint columns for batched sketch evaluation.
///
/// [`OracleFn::eval`] factors into a key-independent inner mixing round
/// ([`OracleFn::presplit`]) and a cheap per-key outer round
/// ([`OracleFn::eval_presplit`]). [`EvalScratch::load`] runs the inner
/// round once per chunk endpoint; every sketch offered the same chunk
/// ([`MonoSketch::offer_preloaded`]) then pays only outer rounds, however
/// many sketches there are — Algorithm 2 shares one load across its
/// per-epoch `h` sketches *and* its level `g` sketches. Buffers keep
/// their capacity across chunks, so the steady state allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct EvalScratch {
    /// Presplit values of the chunk's `u` endpoints.
    su: Vec<u64>,
    /// Presplit values of the chunk's `v` endpoints.
    sv: Vec<u64>,
}

impl EvalScratch {
    /// An empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads a chunk: one inner mixing round per endpoint.
    pub fn load(&mut self, edges: &[Edge]) {
        self.su.clear();
        self.sv.clear();
        self.su.extend(edges.iter().map(|e| OracleFn::presplit(e.u() as u64)));
        self.sv.extend(edges.iter().map(|e| OracleFn::presplit(e.v() as u64)));
    }

    /// Presplit value of lane `k`'s `u` endpoint.
    #[inline]
    pub fn su(&self, k: usize) -> u64 {
        self.su[k]
    }

    /// Presplit value of lane `k`'s `v` endpoint.
    #[inline]
    pub fn sv(&self, k: usize) -> u64 {
        self.sv[k]
    }
}

/// Per-chunk memo table for vertex-keyed hash evaluations.
///
/// The batched ingestion paths evaluate each sketch function at every
/// endpoint of every chunk edge; a vertex of multiplicity `r` in the chunk
/// would pay `r` evaluations. The memo caches by vertex id with
/// generation stamping, so [`BlockMemo::reset`] is `O(1)` and a chunk pays
/// one evaluation per *distinct* endpoint per sketch.
#[derive(Debug, Clone)]
pub struct BlockMemo {
    vals: Vec<u64>,
    stamp: Vec<u32>,
    generation: u32,
}

impl BlockMemo {
    /// A memo for vertex ids below `n`.
    pub fn new(n: usize) -> Self {
        Self { vals: vec![0; n], stamp: vec![0; n], generation: 0 }
    }

    /// Invalidates all cached values (constant time).
    #[inline]
    pub fn reset(&mut self) {
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // Stamp wrap-around: stale stamps could alias, so clear.
            self.stamp.fill(0);
            self.generation = 1;
        }
    }

    /// The cached value of `f(v)`, computing it on first use.
    #[inline]
    pub fn get(&mut self, v: u32, f: impl Fn(u64) -> u64) -> u64 {
        let i = v as usize;
        if self.stamp[i] != self.generation {
            self.vals[i] = f(v as u64);
            self.stamp[i] = self.generation;
        }
        self.vals[i]
    }
}

/// Groups `vertices` by their sketch block, returning only nonempty
/// groups as `(block, members)` pairs, sorted by block id.
///
/// Query time in Algorithm 2 iterates blocks; grouping nonempty ones keeps
/// that `O(|V| log |V|)` instead of `O(∆²)` when most blocks are empty.
pub fn group_by_block(sketch: &MonoSketch, vertices: &[u32]) -> Vec<(u64, Vec<u32>)> {
    group_by_block_with(|v| sketch.block_of(v), vertices)
}

/// [`group_by_block`] over an arbitrary block function — incremental
/// query paths pass a [`BlockMemo`]-backed closure so each distinct
/// vertex hashes at most once per phase.
pub fn group_by_block_with(
    mut block: impl FnMut(u32) -> u64,
    vertices: &[u32],
) -> Vec<(u64, Vec<u32>)> {
    let mut tagged: Vec<(u64, u32)> = vertices.iter().map(|&v| (block(v), v)).collect();
    tagged.sort_unstable();
    let mut out: Vec<(u64, Vec<u32>)> = Vec::new();
    for (b, v) in tagged {
        match out.last_mut() {
            Some((block, members)) if *block == b => members.push(v),
            _ => out.push((b, vec![v])),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sketch(range: u64) -> MonoSketch {
        MonoSketch::new(OracleFn::new(42, 7, range))
    }

    #[test]
    fn stores_only_monochromatic_edges() {
        let mut s = sketch(4);
        let mut stored = 0;
        let mut total = 0;
        for u in 0..30u32 {
            for v in (u + 1)..30 {
                total += 1;
                let mono = s.block_of(u) == s.block_of(v);
                assert_eq!(s.offer(Edge::new(u, v)), mono);
                stored += usize::from(mono);
            }
        }
        assert_eq!(s.len(), stored);
        assert!(stored > 0, "range 4 over 30 vertices must have collisions");
        assert!(stored < total);
        // Every stored edge really is monochromatic.
        for e in s.edges() {
            assert_eq!(s.block_of(e.u()), s.block_of(e.v()));
        }
    }

    #[test]
    fn block_of_is_stable() {
        let s = sketch(16);
        for v in 0..100u32 {
            assert_eq!(s.block_of(v), s.block_of(v));
            assert!(s.block_of(v) < 16);
        }
    }

    #[test]
    fn grouping_partitions_the_vertex_set() {
        let s = sketch(4);
        let vertices: Vec<u32> = (0..50).collect();
        let groups = group_by_block(&s, &vertices);
        let total: usize = groups.iter().map(|(_, m)| m.len()).sum();
        assert_eq!(total, 50);
        for (b, members) in &groups {
            assert!(!members.is_empty());
            for &v in members {
                assert_eq!(s.block_of(v), *b);
            }
        }
        // Blocks sorted and distinct.
        let ids: Vec<u64> = groups.iter().map(|(b, _)| *b).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn empty_inputs() {
        let s = sketch(8);
        assert!(s.is_empty());
        assert_eq!(s.num_blocks(), 8);
        assert!(group_by_block(&s, &[]).is_empty());
    }
}
