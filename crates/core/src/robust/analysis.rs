//! Empirical verification of the robust algorithms' concentration lemmas.
//!
//! The paper's robust space and color bounds all rest on three
//! concentration claims:
//!
//! * **Lemmas 4.2 / 4.3** — every vertex has `Σ_ℓ d_{C_ℓ}(v) = O(log n)`
//!   and `Σ_i d_{A_i}(v) = O(log n)` w.h.p., even against adaptive
//!   adversaries (this is what keeps total storage at `Õ(n)`).
//! * **Lemma 4.5** — each fast block induced on `C_ℓ ∪ B` has degeneracy
//!   `O(∆^{(1+β)/2})` (this is what caps the per-block palettes).
//! * **Lemma 4.8** — each `D_{i,j}` of Algorithm 3 stays under `7n/∆` with
//!   probability `≥ 1/2`, so w.h.p. some candidate survives per epoch.
//!
//! This module measures all three on live colorer states; experiment F8
//! and the failure-injection tests consume it.

use crate::robust::alg2::RobustColorer;
use crate::robust::alg3::RandEfficientColorer;
use sc_graph::{degeneracy_ordering, Graph};

/// Summary statistics of a per-vertex quantity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Concentration {
    /// Largest per-vertex value.
    pub max: u64,
    /// Mean over all vertices.
    pub mean: f64,
    /// 99th-percentile value.
    pub p99: u64,
}

impl Concentration {
    /// Computes the summary of a per-vertex series.
    pub fn of(values: &[u64]) -> Self {
        if values.is_empty() {
            return Self { max: 0, mean: 0.0, p99: 0 };
        }
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        let max = *sorted.last().expect("nonempty");
        let mean = sorted.iter().sum::<u64>() as f64 / sorted.len() as f64;
        let p99 = sorted[(sorted.len() - 1) * 99 / 100];
        Self { max, mean, p99 }
    }
}

impl std::fmt::Display for Concentration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "max {} / p99 {} / mean {:.2}", self.max, self.p99, self.mean)
    }
}

/// The Lemma 4.2 / 4.3 measurements for a live Algorithm 2 state.
#[derive(Debug, Clone, Copy)]
pub struct SketchConcentration {
    /// `Σ_i d_{A_i}(v)` over epoch sketches (Lemma 4.3).
    pub h_totals: Concentration,
    /// `Σ_ℓ d_{C_ℓ}(v)` over level sketches (Lemma 4.2).
    pub g_totals: Concentration,
}

/// Measures per-vertex sketch-degree totals of a live Algorithm 2 state.
pub fn sketch_concentration(colorer: &RobustColorer) -> SketchConcentration {
    SketchConcentration {
        h_totals: Concentration::of(&colorer.h_sketch_degree_totals()),
        g_totals: Concentration::of(&colorer.g_sketch_degree_totals()),
    }
}

/// One fast block's measured degeneracy (Lemma 4.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastBlockDegeneracy {
    /// Level `ℓ` (1-based).
    pub level: usize,
    /// `g_ℓ`-block id.
    pub block: u64,
    /// Number of fast vertices in the block.
    pub size: usize,
    /// Degeneracy of the block induced on `C_ℓ ∪ B`.
    pub degeneracy: usize,
}

/// Measures the degeneracy of every nonempty fast block of a live
/// Algorithm 2 state — Lemma 4.5 bounds each by `O(∆^{(1+β)/2})`.
pub fn fast_block_degeneracies(colorer: &RobustColorer) -> Vec<FastBlockDegeneracy> {
    let params = colorer.params();
    let deg_b = colorer.buffer_degrees();
    let fast: Vec<u32> =
        (0..params.n as u32).filter(|&v| deg_b[v as usize] > params.fast_threshold).collect();
    let mut out = Vec::new();
    for level in 1..=params.num_levels {
        let level_fast: Vec<u32> = fast
            .iter()
            .copied()
            .filter(|&w| params.level_of(colorer.degree_of(w)) == level)
            .collect();
        if level_fast.is_empty() {
            continue;
        }
        let edges = colorer.level_edge_set(level);
        let mut by_block: std::collections::BTreeMap<u64, Vec<u32>> = Default::default();
        for &w in &level_fast {
            by_block.entry(colorer.g_block_of(level, w)).or_default().push(w);
        }
        for (block, members) in by_block {
            let g = Graph::from_edge_subset(params.n, edges.iter().copied(), &members);
            let info = degeneracy_ordering(&g, &members);
            out.push(FastBlockDegeneracy {
                level,
                block,
                size: members.len(),
                degeneracy: info.degeneracy,
            });
        }
    }
    out
}

/// The Lemma 4.8 census of Algorithm 3's candidate sets for one epoch.
#[derive(Debug, Clone)]
pub struct CandidateCensus {
    /// Epoch measured (1-based).
    pub epoch: usize,
    /// Number of still-valid candidates (`D ≠ ⊥`).
    pub valid: usize,
    /// Number of invalidated candidates.
    pub wiped: usize,
    /// Sizes of the valid candidates.
    pub sizes: Vec<usize>,
    /// The invalidation cap `⌈7n/∆⌉`.
    pub cap: usize,
}

impl CandidateCensus {
    /// Fraction of candidates that survived — Lemma 4.8 promises `≥ 1/2`
    /// in expectation per candidate, so `≈ P/2` survivors.
    pub fn survival_rate(&self) -> f64 {
        let total = self.valid + self.wiped;
        if total == 0 {
            return 1.0;
        }
        self.valid as f64 / total as f64
    }
}

/// Measures the candidate sets of the colorer's **current** epoch.
pub fn candidate_census(colorer: &RandEfficientColorer) -> CandidateCensus {
    let epoch = colorer.current_epoch();
    let sizes_raw = colorer.candidate_sizes(epoch);
    let sizes: Vec<usize> = sizes_raw.iter().filter_map(|s| *s).collect();
    let wiped = sizes_raw.iter().filter(|s| s.is_none()).count();
    CandidateCensus { epoch, valid: sizes.len(), wiped, sizes, cap: colorer.cap() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_graph::generators;
    use sc_stream::{run_oblivious, StreamingColorer};

    #[test]
    fn concentration_summary_math() {
        let c = Concentration::of(&[1, 2, 3, 4, 100]);
        assert_eq!(c.max, 100);
        // Index formula ⌊(n−1)·99/100⌋ lands on the 4th of 5 entries.
        assert_eq!(c.p99, 4);
        assert!((c.mean - 22.0).abs() < 1e-9);
        let empty = Concentration::of(&[]);
        assert_eq!(empty.max, 0);
        assert_eq!(format!("{c}"), "max 100 / p99 4 / mean 22.00");
        // On a long uniform series p99 ≈ max.
        let long: Vec<u64> = (0..1000).collect();
        assert_eq!(Concentration::of(&long).p99, 989);
    }

    #[test]
    fn sketch_degrees_stay_logarithmic() {
        // Lemmas 4.2/4.3: after a full ∆-bounded stream, per-vertex sketch
        // degree totals should be O(log n) — far below ∆.
        let (n, delta) = (300usize, 24usize);
        let g = generators::random_with_exact_max_degree(n, delta, 5);
        let mut colorer = crate::RobustColorer::new(n, delta, 77);
        run_oblivious(&mut colorer, generators::shuffled_edges(&g, 5));
        let sc = sketch_concentration(&colorer);
        let log_n = (n as f64).log2();
        assert!(
            (sc.h_totals.max as f64) <= 8.0 * log_n,
            "h-sketch degrees not concentrated: {}",
            sc.h_totals
        );
        assert!(
            (sc.g_totals.max as f64) <= 8.0 * log_n,
            "g-sketch degrees not concentrated: {}",
            sc.g_totals
        );
    }

    #[test]
    fn fast_block_degeneracy_is_o_sqrt_delta() {
        // Drive many edges into few vertices late in an epoch to create
        // fast vertices, then check Lemma 4.5's bound.
        let (n, delta) = (200usize, 36usize);
        let g = generators::random_with_exact_max_degree(n, delta, 9);
        let mut colorer = crate::RobustColorer::new(n, delta, 3);
        for e in generators::shuffled_edges(&g, 1) {
            colorer.process(e);
        }
        let blocks = fast_block_degeneracies(&colorer);
        let bound = 4.0 * (delta as f64).sqrt() + 8.0 * (n as f64).log2();
        for b in &blocks {
            assert!(
                (b.degeneracy as f64) <= bound,
                "level {} block {} degeneracy {} exceeds O(√∆) bound {bound}",
                b.level,
                b.block,
                b.degeneracy
            );
        }
    }

    #[test]
    fn alg3_candidates_mostly_survive() {
        let (n, delta) = (250usize, 16usize);
        let g = generators::random_with_exact_max_degree(n, delta, 2);
        let mut colorer = crate::RandEfficientColorer::new(n, delta, 8);
        run_oblivious(&mut colorer, generators::shuffled_edges(&g, 4));
        let census = candidate_census(&colorer);
        assert!(census.valid >= 1, "Lemma 4.8: some candidate must survive");
        assert!(
            census.survival_rate() >= 0.5,
            "survival {} below the Lemma 4.8 expectation",
            census.survival_rate()
        );
        for &s in &census.sizes {
            assert!(s <= census.cap, "valid candidate exceeds the cap");
        }
    }

    #[test]
    fn census_on_fresh_colorer_is_all_valid_and_empty() {
        let colorer = crate::RandEfficientColorer::new(50, 8, 1);
        let census = candidate_census(&colorer);
        assert_eq!(census.epoch, 1);
        assert_eq!(census.wiped, 0);
        assert!(census.sizes.iter().all(|&s| s == 0));
        assert_eq!(census.survival_rate(), 1.0);
    }
}
