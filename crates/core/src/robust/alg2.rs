//! Algorithm 2: adversarially robust `O(∆^{5/2})`-coloring in
//! semi-streaming space (Theorem 3), generalized to the `β` tradeoff of
//! Corollary 4.7.
//!
//! Structure (paper §4.1–4.2):
//! * a **buffer** `B` of the current epoch's edges (capacity `n·∆^β`);
//! * `∆^{1−β}` **epoch sketches** `h_i : V → [∆^{2−2β}]`; the `h_i`-sketch
//!   receives every edge inserted *before* epoch `i`, so at query time
//!   `A_curr ∪ B` contains all intra-block edges among **slow** vertices;
//! * `∆^{(1−β)/2}` **level sketches** `g_ℓ : V → [∆^{3(1−β)/2}]`; an edge
//!   goes to every `g_ℓ` with `ℓ` strictly above both endpoints' current
//!   levels, so `C_ℓ ∪ B` contains all intra-block edges among **fast**
//!   level-`ℓ` vertices (the pigeonhole argument of Lemma 4.6);
//! * at query: slow vertices are (degree+1)-colored per `h_curr`-block;
//!   fast vertices are (degeneracy+1)-colored per `(ℓ, g_ℓ)`-block
//!   (Lemma 4.5 bounds that degeneracy by `O(∆^{(1+β)/2})`); every block
//!   uses a fresh palette.
//!
//! Robustness comes from the sketches never *consulting* a function that
//! the algorithm's past outputs could have revealed: `h_i` only sees edges
//! from epochs `< i`, and `g_ℓ` only sees edges inserted while both
//! endpoints were below level `ℓ`.

use crate::robust::params::RobustParams;
use crate::robust::sketch::{
    decode_sketch_bank, encode_sketch_bank, group_by_block, group_by_block_with, BlockMemo,
    EvalScratch, MonoSketch,
};
use sc_graph::{degeneracy_coloring, greedy_color_in_order, Color, Coloring, Edge, Graph};
use sc_hash::{OracleFn, SplitMix64};
use sc_stream::{
    counter_bits, edge_bits, CacheStats, QueryCache, SpaceMeter, StateReader, StateWriter,
    StreamingColorer,
};

/// One hash block of one query phase as a reusable artifact. Every edge a
/// phase colors over is *intra-block* (the scratch query filters
/// `block_of(u) == block_of(v)`), so given its member list and the
/// era-frozen edge pools a block's sub-coloring is independent of every
/// other block: it can be recomputed alone, relative to palette base 0,
/// and re-chained into the absolute answer by offset translation.
#[derive(Debug, Clone)]
struct BlockArtifact {
    /// The hash value naming this block (`h_curr` or `g_ℓ` of its members).
    id: u64,
    /// The block's members, ascending — the exact group the scratch
    /// query's [`group_by_block`] would form. Never empty.
    members: Vec<u32>,
    /// `color − block_base`, parallel to `members`.
    rel: Vec<Color>,
    /// Colors this block used; the palette advances by `span.max(1)`.
    span: Color,
}

/// Dirtiness ledger of one phase between syncs.
#[derive(Debug, Clone)]
enum PhaseDirty {
    /// No artifacts yet (fresh state): rebuild the whole phase.
    All,
    /// Block ids whose members or induced edges may have changed since
    /// the artifacts were computed (unsorted, may repeat). Empty = clean.
    Blocks(Vec<u64>),
}

/// One query *phase* of Algorithm 2 — the slow pass (lines 20–22) or one
/// fast level (lines 23–26) — as a list of per-block artifacts plus the
/// ledgers that keep them honest. Phases chain deterministically (slow,
/// then levels ascending; blocks ascending by id within a phase), so a
/// query recomputes only the *blocks* whose inputs changed and re-chains
/// the rest by offset arithmetic.
#[derive(Debug, Clone)]
struct PhaseState {
    /// Per-block artifacts, ascending by `id`, all nonempty.
    blocks: Vec<BlockArtifact>,
    /// Membership moves recorded by sync, in order: `(block, v, joined)`.
    /// Applied (then drained) by the next repair; a full rebuild
    /// re-enumerates members instead and just drops them.
    pending: Vec<(u64, u32, bool)>,
    dirty: PhaseDirty,
}

impl PhaseState {
    fn invalid() -> Self {
        Self { blocks: Vec::new(), pending: Vec::new(), dirty: PhaseDirty::All }
    }
}

/// Incremental query state for the current epoch of Algorithm 2: the
/// patched buffer-degree census, the fast/slow partition (monotone within
/// an epoch — `deg_B` only grows), per-fast-vertex levels, and one
/// [`PhaseState`] of block artifacts per phase. A buffer rotation
/// obsoletes everything (new `h_curr`, empty buffer), which
/// [`RobustColorer::rotate_buffer`] signals by invalidating the cache.
/// Harness bookkeeping — never charged to the meter.
#[derive(Debug, Clone)]
struct Alg2QueryState {
    /// The epoch (`curr`) this state describes.
    era: usize,
    /// Incrementally patched census `deg_B(v)` (line 18's split key).
    deg_b: Vec<u64>,
    /// `deg_B(v) > fast_threshold` — the fast/slow partition.
    is_fast: Vec<bool>,
    /// For fast `v`: `level_of(d(v))` as of the last sync.
    fast_level: Vec<u32>,
    /// Buffer edges already censused.
    b_synced: usize,
    /// Per-`g_ℓ`-sketch lengths already reflected in the dirty ledgers.
    g_synced: Vec<usize>,
    /// `phases[0]` = slow phase; `phases[ℓ]` = fast level `ℓ`.
    phases: Vec<PhaseState>,
    /// The assembled absolute coloring (the query answer).
    out: Coloring,
}

/// The robust streaming colorer of Theorem 3 / Corollary 4.7.
#[derive(Debug, Clone)]
pub struct RobustColorer {
    params: RobustParams,
    /// Per-vertex degree counters `d(v)`.
    degrees: Vec<u64>,
    /// `h_i` sketches, index `i−1`.
    h_sketches: Vec<MonoSketch>,
    /// `g_ℓ` sketches, index `ℓ−1`.
    g_sketches: Vec<MonoSketch>,
    /// Current epoch's buffer `B`.
    buffer: Vec<Edge>,
    /// Current epoch (1-based).
    curr: usize,
    meter: SpaceMeter,
    /// Pooled presplit columns for the batched ingestion path and the
    /// incremental sync scan (one inner mixing round per chunk endpoint,
    /// shared by every sketch).
    scratch: EvalScratch,
    /// Pooled scratch for the incremental recompute passes.
    arena: PhaseArena,
    /// Epoch-keyed phase cache for the incremental query path.
    cache: QueryCache<Alg2QueryState>,
}

/// Pooled scratch for [`RobustColorer`]'s incremental phase recomputes —
/// the alg2 counterpart of alg3's decode arena. A phase rebuild needs a
/// conflict graph, a scratch coloring, a membership filter, and block
/// ids; allocating those per phase (`Graph::empty(n)` is `n` list
/// headers, plus one heap allocation per nonempty adjacency list) costs
/// more than the recoloring itself at query cadence. The pool keeps
/// every buffer warm across phases *and* queries:
///
/// - `graph` holds edges only transiently; `touched` covers both
///   endpoints of every inserted edge since the last clear, so
///   [`Graph::clear_incident`] resets it in `O(touched)` and re-inserts
///   push into already-grown lists.
/// - `coloring` keeps stale assignments between phases; users must
///   clear exactly their member set before coloring (members and their
///   phase-graph neighbors are the only vertices a greedy pass reads).
/// - `memo` is generation-stamped ([`BlockMemo::reset`] is `O(1)`), so
///   each distinct vertex hashes at most once per phase where the
///   scratch query pays per filtered edge endpoint.
#[derive(Debug, Clone)]
struct PhaseArena {
    memo: BlockMemo,
    graph: Graph,
    touched: Vec<u32>,
    coloring: Coloring,
}

impl PhaseArena {
    fn new(n: usize) -> Self {
        Self {
            memo: BlockMemo::new(n),
            graph: Graph::empty(n),
            touched: Vec::new(),
            coloring: Coloring::empty(n),
        }
    }
}

impl RobustColorer {
    /// Creates the colorer with Theorem 3 parameters (`β = 0`).
    pub fn new(n: usize, delta: usize, seed: u64) -> Self {
        Self::with_params(RobustParams::theorem3(n, delta), seed)
    }

    /// Creates the colorer with explicit (possibly `β`-traded) parameters.
    pub fn with_params(params: RobustParams, seed: u64) -> Self {
        let h_seed = SplitMix64::new(seed).fork(1).next_u64();
        let g_seed = SplitMix64::new(seed).fork(2).next_u64();
        let h_sketches = (0..params.num_epochs)
            .map(|i| MonoSketch::new(OracleFn::new(h_seed, i as u64, params.h_range)))
            .collect();
        let g_sketches = (0..params.num_levels)
            .map(|l| MonoSketch::new(OracleFn::new(g_seed, l as u64, params.g_range)))
            .collect();
        let mut meter = SpaceMeter::new();
        // Persistent: n degree counters + epoch/buffer counters. Oracle
        // randomness is charged to the oracle, per Theorem 3's model.
        meter.charge(params.n as u64 * counter_bits(params.delta as u64) + 128);
        Self {
            params,
            degrees: vec![0; params.n],
            h_sketches,
            g_sketches,
            buffer: Vec::new(),
            curr: 1,
            meter,
            scratch: EvalScratch::new(),
            arena: PhaseArena::new(params.n),
            cache: QueryCache::new(),
        }
    }

    /// The parameter set in force.
    pub fn params(&self) -> &RobustParams {
        &self.params
    }

    /// Current epoch number (diagnostics).
    pub fn current_epoch(&self) -> usize {
        self.curr
    }

    /// Total edges currently stored across all sketches and the buffer —
    /// the `Õ(n)` quantity of Lemma 4.4.
    pub fn stored_edges(&self) -> usize {
        self.buffer.len()
            + self.h_sketches.iter().map(MonoSketch::len).sum::<usize>()
            + self.g_sketches.iter().map(MonoSketch::len).sum::<usize>()
    }

    /// The union of one level sketch's edges with the buffer — the edge
    /// set `C_ℓ ∪ B` whose fast-block degeneracy Lemma 4.5 bounds by
    /// `O(∆^{(1+β)/2})`. Diagnostic for experiment F8.
    pub fn level_edge_set(&self, level: usize) -> Vec<Edge> {
        assert!((1..=self.params.num_levels).contains(&level));
        self.g_sketches[level - 1].edges().iter().chain(self.buffer.iter()).copied().collect()
    }

    /// Per-vertex totals `Σ_i d_{A_i}(v)` over the epoch sketches — the
    /// quantity Lemma 4.3 bounds by `O(log n)` w.h.p.
    pub fn h_sketch_degree_totals(&self) -> Vec<u64> {
        sketch_degree_totals(self.params.n, &self.h_sketches)
    }

    /// Per-vertex totals `Σ_ℓ d_{C_ℓ}(v)` over the level sketches — the
    /// quantity Lemma 4.2 bounds by `O(log n)` w.h.p.
    pub fn g_sketch_degree_totals(&self) -> Vec<u64> {
        sketch_degree_totals(self.params.n, &self.g_sketches)
    }

    /// The current stream degree `d(v)` of a vertex (diagnostics).
    pub fn degree_of(&self, v: u32) -> u64 {
        self.degrees[v as usize]
    }

    /// The `g_ℓ`-block of a vertex (diagnostics; `level` is 1-based).
    pub fn g_block_of(&self, level: usize, v: u32) -> u64 {
        assert!((1..=self.params.num_levels).contains(&level));
        self.g_sketches[level - 1].block_of(v)
    }

    /// Buffer degrees `deg_B(v)` — the fast/slow split key of line 18.
    pub fn buffer_degrees(&self) -> Vec<u64> {
        let mut deg_b = vec![0u64; self.params.n];
        for e in &self.buffer {
            deg_b[e.u() as usize] += 1;
            deg_b[e.v() as usize] += 1;
        }
        deg_b
    }

    /// Lines 10–12: clears the full buffer and advances the epoch.
    fn rotate_buffer(&mut self) {
        self.meter.release(self.buffer.len() as u64 * edge_bits(self.params.n));
        self.buffer.clear();
        self.curr += 1;
        assert!(
            self.curr <= self.params.num_epochs,
            "epoch overflow: the stream exceeded the n·∆/2 edge budget implied by ∆ = {}",
            self.params.delta
        );
        // New h_curr, empty buffer: every cached phase is obsolete.
        self.cache.invalidate();
    }

    /// Batched ingestion of a run of edges that all land in the current
    /// epoch (the caller guarantees the buffer has room, except in the
    /// degenerate capacity-0 configuration where runs are single edges).
    ///
    /// Equivalent to per-edge [`StreamingColorer::process`] on the run:
    /// every sketch receives the same edges in the same order, and since
    /// all in-run meter events are charges, the meter's peak and current
    /// values come out identical. The work is reorganized sketch-major
    /// over one [`EvalScratch`]: the chunk's key-independent presplit
    /// columns are loaded once, and each sketch pays only its per-key
    /// outer rounds (fused evaluate-and-compare, no hash-value columns).
    /// Scalar ingestion of a single in-epoch edge (lines 13–17) — the
    /// reference path. [`StreamingColorer::process`] and single-edge
    /// batch runs land here: a one-edge chunk gives the batched tier
    /// nothing to amortize over, and keeping it on the scalar routine
    /// means the engine's per-edge configuration measures the unbatched
    /// algorithm rather than a degenerate batch.
    fn ingest_edge(&mut self, e: Edge) {
        let n = self.params.n;
        assert!((e.v() as usize) < n, "edge {e} out of range for n = {n}");
        let eb = edge_bits(n);

        self.buffer.push(e);
        self.meter.charge(eb);

        // Line 13: degree counters.
        let (u, v) = e.endpoints();
        self.degrees[u as usize] += 1;
        self.degrees[v as usize] += 1;

        // Lines 14–15: h_i sketches for future epochs only.
        for i in self.curr..self.params.num_epochs {
            if self.h_sketches[i].offer(e) {
                self.meter.charge(eb);
            }
        }

        // Lines 16–17: g_ℓ sketches for levels strictly above both
        // endpoints' levels at insertion time.
        let lvl = self.params.level_of(self.degrees[u as usize].max(self.degrees[v as usize]));
        for l in lvl..self.params.num_levels {
            if self.g_sketches[l].offer(e) {
                self.meter.charge(eb);
            }
        }
    }

    fn ingest_run(&mut self, run: &[Edge]) {
        let n = self.params.n;
        let eb = edge_bits(n);

        // Per-edge state first: buffer, degree counters, and each edge's
        // insertion-time level (lines 13 and 16 — levels depend on the
        // running degrees, so this stays edge-major).
        let mut levels: Vec<usize> = Vec::with_capacity(run.len());
        self.buffer.reserve(run.len());
        for &e in run {
            assert!((e.v() as usize) < n, "edge {e} out of range for n = {n}");
            self.buffer.push(e);
            let (u, v) = e.endpoints();
            self.degrees[u as usize] += 1;
            self.degrees[v as usize] += 1;
            levels
                .push(self.params.level_of(self.degrees[u as usize].max(self.degrees[v as usize])));
        }
        let mut stored = run.len() as u64; // buffered edges

        // One presplit load serves every sketch below: the chunk's inner
        // mixing rounds are key-independent, so each sketch pays only its
        // per-key outer rounds.
        self.scratch.load(run);

        // Lines 14–15: h_i sketches for future epochs, sketch-major.
        for i in self.curr..self.params.num_epochs {
            stored += self.h_sketches[i].offer_preloaded(run, &self.scratch) as u64;
        }

        // Lines 16–17: g_ℓ sketches; an edge goes to every level strictly
        // above its insertion-time level. The level filter runs *before*
        // hashing (as the per-edge path's loop bounds do); lanes are
        // visited in chunk order, so sketches receive edges in exactly
        // the per-edge insertion order.
        for (l, sketch) in self.g_sketches.iter_mut().enumerate() {
            stored += sketch.offer_preloaded_where(run, &self.scratch, |k| levels[k] <= l) as u64;
        }
        self.meter.charge(stored * eb);
    }

    /// A query state for the current epoch with a full census and no
    /// computed phases (the cache-miss path).
    fn fresh_query_state(&self) -> Alg2QueryState {
        let n = self.params.n;
        let mut s = Alg2QueryState {
            era: self.curr,
            deg_b: vec![0; n],
            is_fast: vec![false; n],
            fast_level: vec![0; n],
            b_synced: self.buffer.len(),
            g_synced: self.g_sketches.iter().map(MonoSketch::len).collect(),
            phases: (0..=self.params.num_levels).map(|_| PhaseState::invalid()).collect(),
            out: Coloring::empty(n),
        };
        for e in &self.buffer {
            s.deg_b[e.u() as usize] += 1;
            s.deg_b[e.v() as usize] += 1;
        }
        for v in 0..n {
            if s.deg_b[v] > self.params.fast_threshold {
                s.is_fast[v] = true;
                s.fast_level[v] = self.params.level_of(self.degrees[v]) as u32;
            }
        }
        s
    }

    /// Patches the census with the buffer edges ingested since the last
    /// query and marks dirty exactly the *blocks* they can affect:
    ///
    /// * a new `g_ℓ`-sketch edge joins its block's pool at level `ℓ` (its
    ///   block id is the stored endpoints' shared hash value);
    /// * an `h`-monochromatic new buffer edge joins its `h_curr`-block's
    ///   slow pool, a `g_ℓ`-monochromatic one its block's level-`ℓ` pool
    ///   (conservative — whether it is *induced* depends on memberships);
    /// * a vertex crossing the fast threshold leaves its slow block and
    ///   joins its level's block; a fast vertex whose level grew moves
    ///   between two fast blocks. Both old and new blocks are dirtied and
    ///   the move is recorded so the repair can update member lists.
    ///
    /// These are the only ways a phase's inputs change within an era
    /// (`h_curr` is frozen — ingestion offers `h_i` only for `i > curr`),
    /// and block independence (every phase edge is intra-block) makes
    /// block-granular dirtying sound: an unmarked block has identical
    /// members and an identical induced edge pool, hence an identical
    /// relative sub-coloring. Marking is conservative the other way — a
    /// marked block is simply recomputed from its true inputs.
    ///
    /// The monochromaticity scans run sketch-major through the batched
    /// tier: one presplit load of the gap serves the `h_curr` scan and
    /// every level sketch, each paying only its per-key outer rounds —
    /// and the equal hash value the scan produces *is* the dirty block id.
    fn sync_query_state(&mut self, s: &mut Alg2QueryState) {
        debug_assert_eq!(s.era, self.curr, "rotation must reset the query state");
        for (l, sk) in self.g_sketches.iter().enumerate() {
            if s.g_synced[l] != sk.len() {
                if let PhaseDirty::Blocks(d) = &mut s.phases[l + 1].dirty {
                    let f = sk.oracle();
                    for e in &sk.edges()[s.g_synced[l]..] {
                        d.push(f.eval(e.u() as u64));
                    }
                }
                s.g_synced[l] = sk.len();
            }
        }
        let gap = &self.buffer[s.b_synced..];
        if gap.is_empty() {
            return;
        }
        self.scratch.load(gap);
        let scratch = &self.scratch;
        let mark_mono = |f: &OracleFn, ph: &mut PhaseState| {
            if let PhaseDirty::Blocks(d) = &mut ph.dirty {
                for k in 0..gap.len() {
                    let bu = f.eval_presplit(scratch.su(k));
                    if bu == f.eval_presplit(scratch.sv(k)) {
                        d.push(bu);
                    }
                }
            }
        };
        mark_mono(self.h_sketches[self.curr - 1].oracle(), &mut s.phases[0]);
        for (l, sk) in self.g_sketches.iter().enumerate() {
            mark_mono(sk.oracle(), &mut s.phases[l + 1]);
        }
        // Endpoint census bookkeeping (degrees, fast/slow and level
        // migrations), edge-major as before. Migrations are rare (the
        // partition is monotone within an era), so their block ids use
        // plain scalar evaluation.
        for &e in gap {
            let (u, v) = e.endpoints();
            for w in [u, v] {
                let wi = w as usize;
                s.deg_b[wi] += 1;
                let lvl = self.params.level_of(self.degrees[wi]);
                if !s.is_fast[wi] {
                    if s.deg_b[wi] > self.params.fast_threshold {
                        s.is_fast[wi] = true;
                        s.fast_level[wi] = lvl as u32;
                        let hb = self.h_sketches[self.curr - 1].oracle().eval(w as u64);
                        Self::move_member(&mut s.phases[0], hb, w, false);
                        let gb = self.g_sketches[lvl - 1].oracle().eval(w as u64);
                        Self::move_member(&mut s.phases[lvl], gb, w, true);
                    }
                } else if s.fast_level[wi] != lvl as u32 {
                    let old = s.fast_level[wi] as usize;
                    let ob = self.g_sketches[old - 1].oracle().eval(w as u64);
                    Self::move_member(&mut s.phases[old], ob, w, false);
                    let gb = self.g_sketches[lvl - 1].oracle().eval(w as u64);
                    Self::move_member(&mut s.phases[lvl], gb, w, true);
                    s.fast_level[wi] = lvl as u32;
                }
            }
        }
        s.b_synced = self.buffer.len();
    }

    /// Records a membership move in a phase's ledgers: dirties the block
    /// and queues the member edit for the next repair. A phase awaiting a
    /// full rebuild re-enumerates members from the census instead, so the
    /// move needs no record there.
    fn move_member(ph: &mut PhaseState, block: u64, v: u32, joined: bool) {
        if let PhaseDirty::Blocks(d) = &mut ph.dirty {
            d.push(block);
            ph.pending.push((block, v, joined));
        }
    }

    /// The edge pool of phase `p` (its sketch; the buffer is chained on
    /// by the callers): `A_curr` for the slow phase, `C_ℓ` for level `ℓ`.
    fn phase_sketch(&self, p: usize) -> &MonoSketch {
        if p == 0 {
            &self.h_sketches[self.curr - 1]
        } else {
            &self.g_sketches[p - 1]
        }
    }

    /// Colors one block's members relative to base 0: (degree+1)-greedy
    /// for the slow phase, (degeneracy+1) for fast levels. Sound at any
    /// base because every neighbor a pass reads is a same-block member —
    /// the phases are translation-invariant, so the artifacts store
    /// relative colors and [`RobustColorer::assemble`] adds the bases.
    fn color_block(p: usize, graph: &Graph, coloring: &mut Coloring, members: &[u32]) -> Color {
        if p == 0 {
            greedy_color_in_order(graph, coloring, members, 0)
        } else {
            degeneracy_coloring(graph, coloring, members, 0)
        }
    }

    /// Recomputes every block of phase `p` from the census — the slow
    /// pass (lines 18–22) for `p = 0`, fast level `p` (lines 23–26)
    /// otherwise. Same structure as the matching [`StreamingColorer::query`]
    /// section, but running entirely in the pooled [`PhaseArena`] and
    /// emitting per-block artifacts. Returns `(artifacts, recolored)`.
    fn rebuild_phase(
        &self,
        p: usize,
        is_fast: &[bool],
        fast_level: &[u32],
        arena: &mut PhaseArena,
    ) -> (Vec<BlockArtifact>, u64) {
        let n = self.params.n;
        let in_phase = |w: u32| {
            let wi = w as usize;
            if p == 0 {
                !is_fast[wi]
            } else {
                is_fast[wi] && fast_level[wi] as usize == p
            }
        };
        let members: Vec<u32> = (0..n as u32).filter(|&v| in_phase(v)).collect();
        if members.is_empty() {
            return (Vec::new(), 0);
        }
        let sketch = self.phase_sketch(p);
        let PhaseArena { memo, graph, touched, coloring } = arena;
        graph.clear_incident(touched);
        touched.clear();
        memo.reset();
        let f = sketch.oracle();
        let mut block = |v: u32| memo.get(v, |x| f.eval(x));
        for e in sketch.edges().iter().chain(self.buffer.iter()) {
            let (u, v) = e.endpoints();
            if in_phase(u) && in_phase(v) && block(u) == block(v) {
                graph.add_edge(*e);
                touched.push(u);
                touched.push(v);
            }
        }
        // Stale assignments from the arena's previous user are invisible
        // to this pass once the members are cleared: a coloring pass reads
        // only member colors and member-neighbor colors, and the phase
        // graph's vertices are all members.
        for &m in &members {
            coloring.unset(m);
        }
        let recolored = members.len() as u64;
        let mut blocks = Vec::new();
        for (id, members) in group_by_block_with(&mut block, &members) {
            let span = Self::color_block(p, graph, coloring, &members);
            let rel = members.iter().map(|&m| coloring.get(m).expect("member colored")).collect();
            blocks.push(BlockArtifact { id, members, rel, span });
        }
        (blocks, recolored)
    }

    /// Recomputes only the dirty blocks of phase `p`, reusing every clean
    /// artifact verbatim. Applies the pending membership moves first, then
    /// scans the phase's edge pool once — in the same order as a rebuild,
    /// so adjacency lists (and hence the degeneracy orderings built from
    /// them) come out identical — keeping only dirty-block edges, and
    /// recolors each dirty block relative to base 0. Returns the number
    /// of recolored vertices.
    fn repair_phase(
        &self,
        p: usize,
        is_fast: &[bool],
        fast_level: &[u32],
        ph: &mut PhaseState,
        arena: &mut PhaseArena,
    ) -> u64 {
        let PhaseDirty::Blocks(list) = &mut ph.dirty else {
            unreachable!("repair_phase runs only on block-granular dirty states");
        };
        let mut dirty = std::mem::take(list);
        dirty.sort_unstable();
        dirty.dedup();
        // Membership moves, in recorded order (a vertex can move twice in
        // one gap: slow → level a → level b). Joins insert a placeholder
        // relative color; the block is dirty, so it is recolored below.
        for (b, v, joined) in ph.pending.drain(..) {
            debug_assert!(dirty.binary_search(&b).is_ok(), "moves always dirty their blocks");
            match ph.blocks.binary_search_by_key(&b, |a| a.id) {
                Ok(i) => {
                    let a = &mut ph.blocks[i];
                    if joined {
                        let pos = a.members.binary_search(&v).unwrap_err();
                        a.members.insert(pos, v);
                        a.rel.insert(pos, 0);
                    } else {
                        let pos = a.members.binary_search(&v).expect("leaver was a member");
                        a.members.remove(pos);
                        a.rel.remove(pos);
                    }
                }
                Err(i) => {
                    debug_assert!(joined, "leaver's block must have an artifact");
                    let art = BlockArtifact { id: b, members: vec![v], rel: vec![0], span: 0 };
                    ph.blocks.insert(i, art);
                }
            }
        }
        if dirty.is_empty() {
            return 0;
        }
        let in_phase = |w: u32| {
            let wi = w as usize;
            if p == 0 {
                !is_fast[wi]
            } else {
                is_fast[wi] && fast_level[wi] as usize == p
            }
        };
        let sketch = self.phase_sketch(p);
        let PhaseArena { memo, graph, touched, coloring } = arena;
        graph.clear_incident(touched);
        touched.clear();
        memo.reset();
        let f = sketch.oracle();
        let mut block = |v: u32| memo.get(v, |x| f.eval(x));
        for e in sketch.edges().iter().chain(self.buffer.iter()) {
            let (u, v) = e.endpoints();
            if in_phase(u) && in_phase(v) {
                let bu = block(u);
                if bu == block(v) && dirty.binary_search(&bu).is_ok() {
                    graph.add_edge(*e);
                    touched.push(u);
                    touched.push(v);
                }
            }
        }
        let mut recolored = 0u64;
        for &b in &dirty {
            let Ok(i) = ph.blocks.binary_search_by_key(&b, |a| a.id) else {
                continue; // dirtied but memberless (e.g. a sketch edge between fast vertices)
            };
            let a = &mut ph.blocks[i];
            if a.members.is_empty() {
                continue; // every member left; dropped below
            }
            for &m in &a.members {
                coloring.unset(m);
            }
            a.span = Self::color_block(p, graph, coloring, &a.members);
            for (j, &m) in a.members.iter().enumerate() {
                a.rel[j] = coloring.get(m).expect("member colored");
            }
            recolored += a.members.len() as u64;
        }
        ph.blocks.retain(|a| !a.members.is_empty());
        recolored
    }

    /// Chains all phases' blocks into the absolute answer — phases in
    /// order, blocks ascending by id, the palette base advancing by
    /// `span.max(1)` per block — exactly the scratch query's offsets.
    fn assemble(&self, s: &mut Alg2QueryState) {
        s.out.reset();
        let mut base: Color = 0;
        for ph in &s.phases {
            for a in &ph.blocks {
                for (j, &v) in a.members.iter().enumerate() {
                    s.out.set(v, base + a.rel[j]);
                }
                base += a.span.max(1);
            }
        }
        debug_assert!(s.out.is_total(), "incremental query must color every vertex");
    }
}

fn sketch_degree_totals(n: usize, sketches: &[MonoSketch]) -> Vec<u64> {
    let mut totals = vec![0u64; n];
    for s in sketches {
        for e in s.edges() {
            totals[e.u() as usize] += 1;
            totals[e.v() as usize] += 1;
        }
    }
    totals
}

impl StreamingColorer for RobustColorer {
    fn process(&mut self, e: Edge) {
        // Lines 10–12: rotate the buffer when full.
        if self.buffer.len() == self.params.buffer_capacity {
            self.rotate_buffer();
        }
        self.cache.advance(1);
        self.ingest_edge(e);
    }

    fn process_batch(&mut self, edges: &[Edge]) {
        self.cache.advance(edges.len() as u64);
        let mut start = 0;
        while start < edges.len() {
            if self.buffer.len() == self.params.buffer_capacity {
                self.rotate_buffer();
            }
            // Split the chunk at epoch boundaries so each run sees a
            // fixed `curr` (matching the per-edge rotation points; the
            // `max(1)` keeps degenerate capacity-0 configurations moving
            // exactly as per-edge processing would).
            let room = self.params.buffer_capacity.saturating_sub(self.buffer.len()).max(1);
            let end = (start + room).min(edges.len());
            if end - start == 1 {
                self.ingest_edge(edges[start]);
            } else {
                self.ingest_run(&edges[start..end]);
            }
            start = end;
        }
    }

    fn query(&mut self) -> Coloring {
        let n = self.params.n;
        let mut coloring = Coloring::empty(n);
        let mut offset: u64 = 0;

        // Lines 18–19: fast/slow split by buffer degree.
        let mut deg_b = vec![0u64; n];
        for e in &self.buffer {
            deg_b[e.u() as usize] += 1;
            deg_b[e.v() as usize] += 1;
        }
        let fast: Vec<u32> =
            (0..n as u32).filter(|&v| deg_b[v as usize] > self.params.fast_threshold).collect();
        let slow: Vec<u32> =
            (0..n as u32).filter(|&v| deg_b[v as usize] <= self.params.fast_threshold).collect();

        // Lines 20–22: slow vertices, per h_curr-block, on A_curr ∪ B.
        let h_curr = &self.h_sketches[self.curr - 1];
        let mut is_slow = vec![false; n];
        for &v in &slow {
            is_slow[v as usize] = true;
        }
        let mut g_slow = Graph::empty(n);
        for e in h_curr.edges().iter().chain(self.buffer.iter()) {
            if is_slow[e.u() as usize]
                && is_slow[e.v() as usize]
                && h_curr.block_of(e.u()) == h_curr.block_of(e.v())
            {
                g_slow.add_edge(*e);
            }
        }
        for (_, members) in group_by_block(h_curr, &slow) {
            let span = greedy_color_in_order(&g_slow, &mut coloring, &members, offset);
            offset += span.max(1);
        }

        // Lines 23–26: fast vertices, per (level, g_ℓ-block), on C_ℓ ∪ B.
        for l in 1..=self.params.num_levels {
            let level_fast: Vec<u32> = fast
                .iter()
                .copied()
                .filter(|&w| self.params.level_of(self.degrees[w as usize]) == l)
                .collect();
            if level_fast.is_empty() {
                continue;
            }
            let g_l = &self.g_sketches[l - 1];
            let mut in_level = vec![false; n];
            for &v in &level_fast {
                in_level[v as usize] = true;
            }
            let mut g_fast = Graph::empty(n);
            for e in g_l.edges().iter().chain(self.buffer.iter()) {
                if in_level[e.u() as usize]
                    && in_level[e.v() as usize]
                    && g_l.block_of(e.u()) == g_l.block_of(e.v())
                {
                    g_fast.add_edge(*e);
                }
            }
            for (_, members) in group_by_block(g_l, &level_fast) {
                let span = degeneracy_coloring(&g_fast, &mut coloring, &members, offset);
                offset += span.max(1);
            }
        }

        debug_assert!(coloring.is_total(), "query must color every vertex");
        coloring
    }

    fn query_incremental(&mut self) -> Coloring {
        if let Some(s) = self.cache.fresh() {
            return s.out.clone();
        }
        // Cost-aware fallback. A patch pays O(gap) sync work (batched
        // monochromaticity scans plus the endpoint census walk) and then
        // recomputes only the *blocks* the gap dirtied — a few per sketch
        // per gap — where a scratch query recolors all n vertices. That
        // keeps the patch ahead of a rebuild at any in-era gap, so the
        // guard below only drops states from another era (rotation
        // already invalidates; this is defense in depth) or ones staler
        // than a full buffer turnover, where the census walk alone
        // matches the rebuild cost.
        let patch_limit = self.params.buffer_capacity.max(8) as u64;
        let epoch = self.cache.epoch();
        let curr = self.curr;
        let too_stale = self
            .cache
            .artifact_mut()
            .is_some_and(|(at, s)| s.era != curr || epoch - at > patch_limit);
        if too_stale {
            self.cache.invalidate();
        }
        let taken = self.cache.take_for_patch();
        let patched = taken.is_some();
        let mut state = match taken {
            // Rotations invalidate eagerly, so a cached state is always
            // this epoch's; the guard is defense in depth.
            Some((_, s)) if s.era == self.curr => s,
            _ => self.fresh_query_state(),
        };
        self.sync_query_state(&mut state);
        let mut recomputed = false;
        let mut recolored = 0u64;
        // The arena moves out of `self` for the recompute borrows; its
        // pooled buffers come back at the end either way.
        let mut arena = std::mem::replace(&mut self.arena, PhaseArena::new(0));
        {
            let Alg2QueryState { is_fast, fast_level, phases, .. } = &mut state;
            for (p, ph) in phases.iter_mut().enumerate() {
                let needs_repair = match &ph.dirty {
                    PhaseDirty::All => {
                        let (blocks, count) =
                            self.rebuild_phase(p, is_fast, fast_level, &mut arena);
                        ph.blocks = blocks;
                        ph.pending.clear();
                        ph.dirty = PhaseDirty::Blocks(Vec::new());
                        recolored += count;
                        recomputed = true;
                        false
                    }
                    PhaseDirty::Blocks(d) => !d.is_empty() || !ph.pending.is_empty(),
                };
                if needs_repair {
                    recolored += self.repair_phase(p, is_fast, fast_level, ph, &mut arena);
                    recomputed = true;
                }
            }
        }
        self.arena = arena;
        if recomputed {
            // Any recomputed phase can shift every later phase's base.
            self.assemble(&mut state);
        }
        if patched {
            self.cache.note_patched(recolored);
        }
        let out = state.out.clone();
        self.cache.install(state);
        out
    }

    fn query_cache_stats(&self) -> Option<CacheStats> {
        Some(self.cache.stats())
    }

    fn peak_space_bits(&self) -> u64 {
        self.meter.peak_bits()
    }

    fn encode_state(&self) -> Result<String, String> {
        let mut w = StateWriter::new();
        w.field("algo", self.name());
        w.field("deg", sc_stream::encode_u64_list(&self.degrees));
        w.field("curr", self.curr);
        w.edges("buffer", &self.buffer);
        w.field("h", encode_sketch_bank(&self.h_sketches));
        w.field("g", encode_sketch_bank(&self.g_sketches));
        w.field("space_cur", self.meter.current_bits());
        w.field("space_peak", self.meter.peak_bits());
        w.field("epoch", self.cache.epoch());
        Ok(w.finish())
    }

    fn decode_state(&mut self, state: &str) -> Result<(), String> {
        let mut r = StateReader::new(state);
        let algo = r.expect("algo")?;
        if algo != self.name() {
            return Err(format!("state: algo {algo:?} is not {:?}", self.name()));
        }
        let degrees =
            sc_stream::decode_u64_list(r.expect("deg")?).map_err(|e| format!("state: deg: {e}"))?;
        if degrees.len() != self.params.n {
            return Err(format!("state: deg: {} counters for n={}", degrees.len(), self.params.n));
        }
        let curr = r.usize_field("curr")?;
        if !(1..=self.params.num_epochs).contains(&curr) {
            return Err(format!("state: curr={curr} outside 1..={}", self.params.num_epochs));
        }
        let buffer = r.edges_field("buffer", self.params.n)?;
        if buffer.len() > self.params.buffer_capacity {
            return Err(format!(
                "state: buffer holds {} edges over capacity {}",
                buffer.len(),
                self.params.buffer_capacity
            ));
        }
        decode_sketch_bank(&mut self.h_sketches, r.expect("h")?, self.params.n, "h")?;
        decode_sketch_bank(&mut self.g_sketches, r.expect("g")?, self.params.n, "g")?;
        let space_cur = r.u64_field("space_cur")?;
        let space_peak = r.u64_field("space_peak")?;
        let epoch = r.u64_field("epoch")?;
        r.done()?;
        self.degrees = degrees;
        self.curr = curr;
        self.buffer = buffer;
        self.meter =
            SpaceMeter::restored(space_cur, space_peak).map_err(|e| format!("state: {e}"))?;
        self.cache.restore_at_epoch(epoch);
        Ok(())
    }

    fn name(&self) -> &'static str {
        "robust-alg2"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_graph::generators;
    use sc_stream::run_oblivious;

    fn check_oblivious(n: usize, delta: usize, seed: u64) -> (Coloring, sc_graph::Graph) {
        let g = generators::gnp_with_max_degree(n, delta, 0.5, seed);
        let mut colorer = RobustColorer::new(n, delta, seed ^ 0xABCD);
        let coloring = run_oblivious(&mut colorer, generators::shuffled_edges(&g, seed));
        (coloring, g)
    }

    #[test]
    fn proper_coloring_on_random_streams() {
        for seed in 0..4u64 {
            let (coloring, g) = check_oblivious(60, 8, seed);
            assert!(coloring.is_proper_total(&g), "seed {seed}");
        }
    }

    #[test]
    fn color_count_within_delta_5_2_bound() {
        let (coloring, g) = check_oblivious(200, 16, 1);
        assert!(coloring.is_proper_total(&g));
        let bound = (16f64).powf(2.5) * 4.0; // generous constant
        assert!(
            (coloring.num_distinct_colors() as f64) < bound,
            "{} colors exceeds 4·∆^2.5 = {bound}",
            coloring.num_distinct_colors()
        );
    }

    #[test]
    fn mid_stream_queries_are_proper_for_prefixes() {
        let g = generators::gnp_with_max_degree(50, 6, 0.5, 7);
        let edges = generators::shuffled_edges(&g, 7);
        let mut colorer = RobustColorer::new(50, 6, 99);
        let mut prefix = Graph::empty(50);
        for (i, &e) in edges.iter().enumerate() {
            colorer.process(e);
            prefix.add_edge(e);
            if i % 7 == 0 {
                let c = colorer.query();
                assert!(c.is_proper_total(&prefix), "query after {} edges is improper", i + 1);
            }
        }
    }

    #[test]
    fn buffer_rotation_across_epochs() {
        // Force several epochs with a small buffer via β parameters.
        // Shrinking the buffer forces rotations; epochs must scale to keep
        // the capacity·epochs ≥ |stream| contract.
        let params =
            RobustParams { buffer_capacity: 10, num_epochs: 64, ..RobustParams::theorem3(40, 12) };
        let g = generators::gnp_with_max_degree(40, 12, 0.6, 3);
        assert!(g.m() > 30, "need enough edges to rotate: {}", g.m());
        let mut colorer = RobustColorer::with_params(params, 5);
        let coloring = run_oblivious(&mut colorer, generators::shuffled_edges(&g, 3));
        assert!(colorer.current_epoch() > 1, "buffer never rotated");
        assert!(coloring.is_proper_total(&g));
    }

    #[test]
    fn beta_variants_all_proper() {
        let g = generators::gnp_with_max_degree(80, 9, 0.4, 2);
        for beta in [0.0, 0.25, 1.0 / 3.0, 0.5] {
            let params = RobustParams::with_beta(80, 9, beta);
            let mut colorer = RobustColorer::with_params(params, 17);
            let coloring = run_oblivious(&mut colorer, generators::shuffled_edges(&g, 2));
            assert!(coloring.is_proper_total(&g), "β = {beta}");
        }
    }

    #[test]
    fn space_stays_near_linear() {
        let (_, g) = check_oblivious(150, 12, 4);
        let mut colorer = RobustColorer::new(150, 12, 4 ^ 0xABCD);
        run_oblivious(&mut colorer, generators::shuffled_edges(&g, 4));
        // Stored edges should be O(n log n)-ish, not Θ(m·∆).
        assert!(colorer.stored_edges() <= 20 * 150, "stored {} edges", colorer.stored_edges());
        assert!(colorer.peak_space_bits() > 0);
    }

    #[test]
    fn empty_graph_query() {
        let mut colorer = RobustColorer::new(10, 4, 1);
        let c = colorer.query();
        assert!(c.is_total());
        assert!(c.is_proper_total(&Graph::empty(10)));
    }

    #[test]
    fn seed_determinism() {
        let g = generators::gnp_with_max_degree(40, 6, 0.5, 9);
        let edges = generators::shuffled_edges(&g, 9);
        let mut c1 = RobustColorer::new(40, 6, 123);
        let mut c2 = RobustColorer::new(40, 6, 123);
        let r1 = run_oblivious(&mut c1, edges.iter().copied());
        let r2 = run_oblivious(&mut c2, edges.iter().copied());
        assert_eq!(r1, r2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_edge() {
        let mut colorer = RobustColorer::new(5, 3, 0);
        colorer.process(Edge::new(0, 9));
    }
}
