//! Algorithm 2: adversarially robust `O(∆^{5/2})`-coloring in
//! semi-streaming space (Theorem 3), generalized to the `β` tradeoff of
//! Corollary 4.7.
//!
//! Structure (paper §4.1–4.2):
//! * a **buffer** `B` of the current epoch's edges (capacity `n·∆^β`);
//! * `∆^{1−β}` **epoch sketches** `h_i : V → [∆^{2−2β}]`; the `h_i`-sketch
//!   receives every edge inserted *before* epoch `i`, so at query time
//!   `A_curr ∪ B` contains all intra-block edges among **slow** vertices;
//! * `∆^{(1−β)/2}` **level sketches** `g_ℓ : V → [∆^{3(1−β)/2}]`; an edge
//!   goes to every `g_ℓ` with `ℓ` strictly above both endpoints' current
//!   levels, so `C_ℓ ∪ B` contains all intra-block edges among **fast**
//!   level-`ℓ` vertices (the pigeonhole argument of Lemma 4.6);
//! * at query: slow vertices are (degree+1)-colored per `h_curr`-block;
//!   fast vertices are (degeneracy+1)-colored per `(ℓ, g_ℓ)`-block
//!   (Lemma 4.5 bounds that degeneracy by `O(∆^{(1+β)/2})`); every block
//!   uses a fresh palette.
//!
//! Robustness comes from the sketches never *consulting* a function that
//! the algorithm's past outputs could have revealed: `h_i` only sees edges
//! from epochs `< i`, and `g_ℓ` only sees edges inserted while both
//! endpoints were below level `ℓ`.

use crate::robust::params::RobustParams;
use crate::robust::sketch::{group_by_block, BlockMemo, MonoSketch};
use sc_graph::{degeneracy_coloring, greedy_color_in_order, Color, Coloring, Edge, Graph};
use sc_hash::{OracleFn, SplitMix64};
use sc_stream::{counter_bits, edge_bits, CacheStats, QueryCache, SpaceMeter, StreamingColorer};

/// One query *phase* of Algorithm 2 — the slow pass (line 20–22) or one
/// fast level (lines 23–26) — as a reusable artifact: its assignments
/// relative to the phase's palette base, plus how far it advances the
/// palette. Phases chain deterministically (slow, then levels ascending),
/// so a query only recomputes the phases whose inputs changed and
/// re-chains the rest.
#[derive(Debug, Clone)]
struct PhaseColoring {
    /// `(vertex, color − phase_base)` for every vertex this phase colors.
    assigned: Vec<(u32, Color)>,
    /// Palette advance: `Σ span.max(1)` over the phase's nonempty blocks.
    advance: Color,
}

/// Incremental query state for the current epoch of Algorithm 2: the
/// patched buffer-degree census, the fast/slow partition (monotone within
/// an epoch — `deg_B` only grows), per-fast-vertex levels, and one cached
/// [`PhaseColoring`] per phase. A buffer rotation obsoletes everything
/// (new `h_curr`, empty buffer), which [`RobustColorer::rotate_buffer`]
/// signals by invalidating the cache. Harness bookkeeping — never charged
/// to the meter.
#[derive(Debug, Clone)]
struct Alg2QueryState {
    /// The epoch (`curr`) this state describes.
    era: usize,
    /// Incrementally patched census `deg_B(v)` (line 18's split key).
    deg_b: Vec<u64>,
    /// `deg_B(v) > fast_threshold` — the fast/slow partition.
    is_fast: Vec<bool>,
    /// For fast `v`: `level_of(d(v))` as of the last sync.
    fast_level: Vec<u32>,
    /// Buffer edges already censused.
    b_synced: usize,
    /// Per-`g_ℓ`-sketch lengths already reflected (defensive: every new
    /// sketch edge is also a new buffer edge, which invalidates anyway).
    g_synced: Vec<usize>,
    /// `phases[0]` = slow phase; `phases[ℓ]` = fast level `ℓ`.
    /// `None` = invalidated since last computed.
    phases: Vec<Option<PhaseColoring>>,
    /// The assembled absolute coloring (the query answer).
    out: Coloring,
}

/// The robust streaming colorer of Theorem 3 / Corollary 4.7.
#[derive(Debug, Clone)]
pub struct RobustColorer {
    params: RobustParams,
    /// Per-vertex degree counters `d(v)`.
    degrees: Vec<u64>,
    /// `h_i` sketches, index `i−1`.
    h_sketches: Vec<MonoSketch>,
    /// `g_ℓ` sketches, index `ℓ−1`.
    g_sketches: Vec<MonoSketch>,
    /// Current epoch's buffer `B`.
    buffer: Vec<Edge>,
    /// Current epoch (1-based).
    curr: usize,
    meter: SpaceMeter,
    /// Per-chunk hash memo for the batched ingestion path.
    memo: BlockMemo,
    /// Epoch-keyed phase cache for the incremental query path.
    cache: QueryCache<Alg2QueryState>,
}

impl RobustColorer {
    /// Creates the colorer with Theorem 3 parameters (`β = 0`).
    pub fn new(n: usize, delta: usize, seed: u64) -> Self {
        Self::with_params(RobustParams::theorem3(n, delta), seed)
    }

    /// Creates the colorer with explicit (possibly `β`-traded) parameters.
    pub fn with_params(params: RobustParams, seed: u64) -> Self {
        let h_seed = SplitMix64::new(seed).fork(1).next_u64();
        let g_seed = SplitMix64::new(seed).fork(2).next_u64();
        let h_sketches = (0..params.num_epochs)
            .map(|i| MonoSketch::new(OracleFn::new(h_seed, i as u64, params.h_range)))
            .collect();
        let g_sketches = (0..params.num_levels)
            .map(|l| MonoSketch::new(OracleFn::new(g_seed, l as u64, params.g_range)))
            .collect();
        let mut meter = SpaceMeter::new();
        // Persistent: n degree counters + epoch/buffer counters. Oracle
        // randomness is charged to the oracle, per Theorem 3's model.
        meter.charge(params.n as u64 * counter_bits(params.delta as u64) + 128);
        Self {
            params,
            degrees: vec![0; params.n],
            h_sketches,
            g_sketches,
            buffer: Vec::new(),
            curr: 1,
            meter,
            memo: BlockMemo::new(params.n),
            cache: QueryCache::new(),
        }
    }

    /// The parameter set in force.
    pub fn params(&self) -> &RobustParams {
        &self.params
    }

    /// Current epoch number (diagnostics).
    pub fn current_epoch(&self) -> usize {
        self.curr
    }

    /// Total edges currently stored across all sketches and the buffer —
    /// the `Õ(n)` quantity of Lemma 4.4.
    pub fn stored_edges(&self) -> usize {
        self.buffer.len()
            + self.h_sketches.iter().map(MonoSketch::len).sum::<usize>()
            + self.g_sketches.iter().map(MonoSketch::len).sum::<usize>()
    }

    /// The union of one level sketch's edges with the buffer — the edge
    /// set `C_ℓ ∪ B` whose fast-block degeneracy Lemma 4.5 bounds by
    /// `O(∆^{(1+β)/2})`. Diagnostic for experiment F8.
    pub fn level_edge_set(&self, level: usize) -> Vec<Edge> {
        assert!((1..=self.params.num_levels).contains(&level));
        self.g_sketches[level - 1].edges().iter().chain(self.buffer.iter()).copied().collect()
    }

    /// Per-vertex totals `Σ_i d_{A_i}(v)` over the epoch sketches — the
    /// quantity Lemma 4.3 bounds by `O(log n)` w.h.p.
    pub fn h_sketch_degree_totals(&self) -> Vec<u64> {
        sketch_degree_totals(self.params.n, &self.h_sketches)
    }

    /// Per-vertex totals `Σ_ℓ d_{C_ℓ}(v)` over the level sketches — the
    /// quantity Lemma 4.2 bounds by `O(log n)` w.h.p.
    pub fn g_sketch_degree_totals(&self) -> Vec<u64> {
        sketch_degree_totals(self.params.n, &self.g_sketches)
    }

    /// The current stream degree `d(v)` of a vertex (diagnostics).
    pub fn degree_of(&self, v: u32) -> u64 {
        self.degrees[v as usize]
    }

    /// The `g_ℓ`-block of a vertex (diagnostics; `level` is 1-based).
    pub fn g_block_of(&self, level: usize, v: u32) -> u64 {
        assert!((1..=self.params.num_levels).contains(&level));
        self.g_sketches[level - 1].block_of(v)
    }

    /// Buffer degrees `deg_B(v)` — the fast/slow split key of line 18.
    pub fn buffer_degrees(&self) -> Vec<u64> {
        let mut deg_b = vec![0u64; self.params.n];
        for e in &self.buffer {
            deg_b[e.u() as usize] += 1;
            deg_b[e.v() as usize] += 1;
        }
        deg_b
    }

    /// Lines 10–12: clears the full buffer and advances the epoch.
    fn rotate_buffer(&mut self) {
        self.meter.release(self.buffer.len() as u64 * edge_bits(self.params.n));
        self.buffer.clear();
        self.curr += 1;
        assert!(
            self.curr <= self.params.num_epochs,
            "epoch overflow: the stream exceeded the n·∆/2 edge budget implied by ∆ = {}",
            self.params.delta
        );
        // New h_curr, empty buffer: every cached phase is obsolete.
        self.cache.invalidate();
    }

    /// Batched ingestion of a run of edges that all land in the current
    /// epoch (the caller guarantees the buffer has room, except in the
    /// degenerate capacity-0 configuration where runs are single edges).
    ///
    /// Equivalent to per-edge [`StreamingColorer::process`] on the run:
    /// every sketch receives the same edges in the same order, and since
    /// all in-run meter events are charges, the meter's peak and current
    /// values come out identical. The work is reorganized sketch-major so
    /// one [`BlockMemo`] amortizes hashing over the chunk — each sketch
    /// pays one hash per *distinct* endpoint instead of one per edge slot.
    fn ingest_run(&mut self, run: &[Edge]) {
        let n = self.params.n;
        let eb = edge_bits(n);

        // Per-edge state first: buffer, degree counters, and each edge's
        // insertion-time level (lines 13 and 16 — levels depend on the
        // running degrees, so this stays edge-major).
        let mut levels: Vec<usize> = Vec::with_capacity(run.len());
        self.buffer.reserve(run.len());
        for &e in run {
            assert!((e.v() as usize) < n, "edge {e} out of range for n = {n}");
            self.buffer.push(e);
            let (u, v) = e.endpoints();
            self.degrees[u as usize] += 1;
            self.degrees[v as usize] += 1;
            levels
                .push(self.params.level_of(self.degrees[u as usize].max(self.degrees[v as usize])));
        }
        let mut stored = run.len() as u64; // buffered edges

        // Lines 14–15: h_i sketches for future epochs, sketch-major.
        for i in self.curr..self.params.num_epochs {
            stored += self.h_sketches[i].offer_batch(run, &mut self.memo) as u64;
        }

        // Lines 16–17: g_ℓ sketches; an edge goes to every level strictly
        // above its insertion-time level.
        for (l, sketch) in self.g_sketches.iter_mut().enumerate() {
            self.memo.reset();
            let f = *sketch.oracle();
            for (k, &e) in run.iter().enumerate() {
                if levels[k] <= l
                    && self.memo.get(e.u(), |x| f.eval(x)) == self.memo.get(e.v(), |x| f.eval(x))
                {
                    sketch.push_mono(e);
                    stored += 1;
                }
            }
        }
        self.meter.charge(stored * eb);
    }

    /// A query state for the current epoch with a full census and no
    /// computed phases (the cache-miss path).
    fn fresh_query_state(&self) -> Alg2QueryState {
        let n = self.params.n;
        let mut s = Alg2QueryState {
            era: self.curr,
            deg_b: vec![0; n],
            is_fast: vec![false; n],
            fast_level: vec![0; n],
            b_synced: self.buffer.len(),
            g_synced: self.g_sketches.iter().map(MonoSketch::len).collect(),
            phases: vec![None; self.params.num_levels + 1],
            out: Coloring::empty(n),
        };
        for e in &self.buffer {
            s.deg_b[e.u() as usize] += 1;
            s.deg_b[e.v() as usize] += 1;
        }
        for v in 0..n {
            if s.deg_b[v] > self.params.fast_threshold {
                s.is_fast[v] = true;
                s.fast_level[v] = self.params.level_of(self.degrees[v]) as u32;
            }
        }
        s
    }

    /// Patches the census with the buffer edges ingested since the last
    /// query and invalidates exactly the phases they can affect:
    ///
    /// * an `h`-monochromatic new edge joins the slow phase's edge pool;
    /// * a `g_ℓ`-monochromatic one joins level `ℓ`'s pool (conservative —
    ///   whether it is *induced* depends on memberships at query time);
    /// * a vertex crossing the fast threshold leaves the slow phase and
    ///   joins its level's; a fast vertex whose level grew moves between
    ///   two fast phases.
    ///
    /// Invalidation is conservative (a marked phase is recomputed from
    /// its true inputs), so properness of the equivalence only needs the
    /// converse: an *unmarked* phase has identical members and identical
    /// induced edge pools, hence an identical sub-coloring.
    fn sync_query_state(&self, s: &mut Alg2QueryState) {
        debug_assert_eq!(s.era, self.curr, "rotation must reset the query state");
        for (l, sk) in self.g_sketches.iter().enumerate() {
            if s.g_synced[l] != sk.len() {
                s.g_synced[l] = sk.len();
                s.phases[l + 1] = None;
            }
        }
        let h_curr = &self.h_sketches[self.curr - 1];
        for &e in &self.buffer[s.b_synced..] {
            let (u, v) = e.endpoints();
            if h_curr.block_of(u) == h_curr.block_of(v) {
                s.phases[0] = None;
            }
            for (l, sk) in self.g_sketches.iter().enumerate() {
                if sk.block_of(u) == sk.block_of(v) {
                    s.phases[l + 1] = None;
                }
            }
            for w in [u, v] {
                let wi = w as usize;
                s.deg_b[wi] += 1;
                let lvl = self.params.level_of(self.degrees[wi]);
                if !s.is_fast[wi] {
                    if s.deg_b[wi] > self.params.fast_threshold {
                        s.is_fast[wi] = true;
                        s.fast_level[wi] = lvl as u32;
                        s.phases[0] = None;
                        s.phases[lvl] = None;
                    }
                } else if s.fast_level[wi] != lvl as u32 {
                    s.phases[s.fast_level[wi] as usize] = None;
                    s.phases[lvl] = None;
                    s.fast_level[wi] = lvl as u32;
                }
            }
        }
        s.b_synced = self.buffer.len();
    }

    /// Recomputes the slow phase (lines 18–22) relative to palette base 0.
    /// Identical code path to [`StreamingColorer::query`]'s slow section;
    /// sharing the offset-0 base is sound because slow blocks only see
    /// slow same-block neighbors, making the phase translation-invariant.
    fn recompute_slow_phase(&self, s: &Alg2QueryState) -> PhaseColoring {
        let n = self.params.n;
        let h_curr = &self.h_sketches[self.curr - 1];
        let slow: Vec<u32> = (0..n as u32).filter(|&v| !s.is_fast[v as usize]).collect();
        let mut g_slow = Graph::empty(n);
        for e in h_curr.edges().iter().chain(self.buffer.iter()) {
            if !s.is_fast[e.u() as usize]
                && !s.is_fast[e.v() as usize]
                && h_curr.block_of(e.u()) == h_curr.block_of(e.v())
            {
                g_slow.add_edge(*e);
            }
        }
        let mut coloring = Coloring::empty(n);
        let mut offset: Color = 0;
        let mut assigned = Vec::with_capacity(slow.len());
        for (_, members) in group_by_block(h_curr, &slow) {
            let span = greedy_color_in_order(&g_slow, &mut coloring, &members, offset);
            for &m in &members {
                assigned.push((m, coloring.get(m).expect("slow member colored")));
            }
            offset += span.max(1);
        }
        PhaseColoring { assigned, advance: offset }
    }

    /// Recomputes fast level `l` (lines 23–26) relative to palette base 0
    /// (fast blocks only see same-level same-block neighbors, so the
    /// phase is translation-invariant like the slow one).
    fn recompute_fast_phase(&self, l: usize, s: &Alg2QueryState) -> PhaseColoring {
        let n = self.params.n;
        let level_fast: Vec<u32> = (0..n as u32)
            .filter(|&w| s.is_fast[w as usize] && s.fast_level[w as usize] as usize == l)
            .collect();
        if level_fast.is_empty() {
            return PhaseColoring { assigned: Vec::new(), advance: 0 };
        }
        let g_l = &self.g_sketches[l - 1];
        let mut in_level = vec![false; n];
        for &v in &level_fast {
            in_level[v as usize] = true;
        }
        let mut g_fast = Graph::empty(n);
        for e in g_l.edges().iter().chain(self.buffer.iter()) {
            if in_level[e.u() as usize]
                && in_level[e.v() as usize]
                && g_l.block_of(e.u()) == g_l.block_of(e.v())
            {
                g_fast.add_edge(*e);
            }
        }
        let mut coloring = Coloring::empty(n);
        let mut offset: Color = 0;
        let mut assigned = Vec::with_capacity(level_fast.len());
        for (_, members) in group_by_block(g_l, &level_fast) {
            let span = degeneracy_coloring(&g_fast, &mut coloring, &members, offset);
            for &m in &members {
                assigned.push((m, coloring.get(m).expect("fast member colored")));
            }
            offset += span.max(1);
        }
        PhaseColoring { assigned, advance: offset }
    }

    /// Chains all phases into the absolute answer, advancing the palette
    /// base by each phase's advance exactly as the scratch query does.
    fn assemble(&self, s: &mut Alg2QueryState) {
        let mut out = Coloring::empty(self.params.n);
        let mut base: Color = 0;
        for phase in s.phases.iter().flatten() {
            for &(v, c) in &phase.assigned {
                out.set(v, base + c);
            }
            base += phase.advance;
        }
        debug_assert!(out.is_total(), "incremental query must color every vertex");
        s.out = out;
    }
}

fn sketch_degree_totals(n: usize, sketches: &[MonoSketch]) -> Vec<u64> {
    let mut totals = vec![0u64; n];
    for s in sketches {
        for e in s.edges() {
            totals[e.u() as usize] += 1;
            totals[e.v() as usize] += 1;
        }
    }
    totals
}

impl StreamingColorer for RobustColorer {
    fn process(&mut self, e: Edge) {
        let n = self.params.n;
        assert!((e.v() as usize) < n, "edge {e} out of range for n = {n}");
        let eb = edge_bits(n);

        // Lines 10–12: rotate the buffer when full.
        if self.buffer.len() == self.params.buffer_capacity {
            self.rotate_buffer();
        }
        self.buffer.push(e);
        self.meter.charge(eb);

        // Line 13: degree counters.
        let (u, v) = e.endpoints();
        self.degrees[u as usize] += 1;
        self.degrees[v as usize] += 1;

        // Lines 14–15: h_i sketches for future epochs only.
        for i in self.curr..self.params.num_epochs {
            if self.h_sketches[i].offer(e) {
                self.meter.charge(eb);
            }
        }

        // Lines 16–17: g_ℓ sketches for levels strictly above both
        // endpoints' levels at insertion time.
        let lvl = self.params.level_of(self.degrees[u as usize].max(self.degrees[v as usize]));
        for l in lvl..self.params.num_levels {
            if self.g_sketches[l].offer(e) {
                self.meter.charge(eb);
            }
        }
        self.cache.advance(1);
    }

    fn process_batch(&mut self, edges: &[Edge]) {
        self.cache.advance(edges.len() as u64);
        let mut start = 0;
        while start < edges.len() {
            if self.buffer.len() == self.params.buffer_capacity {
                self.rotate_buffer();
            }
            // Split the chunk at epoch boundaries so each run sees a
            // fixed `curr` (matching the per-edge rotation points; the
            // `max(1)` keeps degenerate capacity-0 configurations moving
            // exactly as per-edge processing would).
            let room = self.params.buffer_capacity.saturating_sub(self.buffer.len()).max(1);
            let end = (start + room).min(edges.len());
            self.ingest_run(&edges[start..end]);
            start = end;
        }
    }

    fn query(&mut self) -> Coloring {
        let n = self.params.n;
        let mut coloring = Coloring::empty(n);
        let mut offset: u64 = 0;

        // Lines 18–19: fast/slow split by buffer degree.
        let mut deg_b = vec![0u64; n];
        for e in &self.buffer {
            deg_b[e.u() as usize] += 1;
            deg_b[e.v() as usize] += 1;
        }
        let fast: Vec<u32> =
            (0..n as u32).filter(|&v| deg_b[v as usize] > self.params.fast_threshold).collect();
        let slow: Vec<u32> =
            (0..n as u32).filter(|&v| deg_b[v as usize] <= self.params.fast_threshold).collect();

        // Lines 20–22: slow vertices, per h_curr-block, on A_curr ∪ B.
        let h_curr = &self.h_sketches[self.curr - 1];
        let mut is_slow = vec![false; n];
        for &v in &slow {
            is_slow[v as usize] = true;
        }
        let mut g_slow = Graph::empty(n);
        for e in h_curr.edges().iter().chain(self.buffer.iter()) {
            if is_slow[e.u() as usize]
                && is_slow[e.v() as usize]
                && h_curr.block_of(e.u()) == h_curr.block_of(e.v())
            {
                g_slow.add_edge(*e);
            }
        }
        for (_, members) in group_by_block(h_curr, &slow) {
            let span = greedy_color_in_order(&g_slow, &mut coloring, &members, offset);
            offset += span.max(1);
        }

        // Lines 23–26: fast vertices, per (level, g_ℓ-block), on C_ℓ ∪ B.
        for l in 1..=self.params.num_levels {
            let level_fast: Vec<u32> = fast
                .iter()
                .copied()
                .filter(|&w| self.params.level_of(self.degrees[w as usize]) == l)
                .collect();
            if level_fast.is_empty() {
                continue;
            }
            let g_l = &self.g_sketches[l - 1];
            let mut in_level = vec![false; n];
            for &v in &level_fast {
                in_level[v as usize] = true;
            }
            let mut g_fast = Graph::empty(n);
            for e in g_l.edges().iter().chain(self.buffer.iter()) {
                if in_level[e.u() as usize]
                    && in_level[e.v() as usize]
                    && g_l.block_of(e.u()) == g_l.block_of(e.v())
                {
                    g_fast.add_edge(*e);
                }
            }
            for (_, members) in group_by_block(g_l, &level_fast) {
                let span = degeneracy_coloring(&g_fast, &mut coloring, &members, offset);
                offset += span.max(1);
            }
        }

        debug_assert!(coloring.is_total(), "query must color every vertex");
        coloring
    }

    fn query_incremental(&mut self) -> Coloring {
        if let Some(s) = self.cache.fresh() {
            return s.out.clone();
        }
        // Patching pays per-new-edge hash checks against every sketch,
        // and a wide gap invalidates nearly every phase anyway — past
        // this limit a fresh census + full recompute (≈ one scratch
        // query) is cheaper than the patch bookkeeping.
        let patch_limit = (self.params.n as u64 / 8).max(64);
        let epoch = self.cache.epoch();
        let curr = self.curr;
        let too_stale = self
            .cache
            .artifact_mut()
            .is_some_and(|(at, s)| s.era != curr || epoch - at > patch_limit);
        if too_stale {
            self.cache.invalidate();
        }
        let mut state = match self.cache.take_for_patch() {
            // Rotations invalidate eagerly, so a cached state is always
            // this epoch's; the guard is defense in depth.
            Some((_, s)) if s.era == self.curr => s,
            _ => self.fresh_query_state(),
        };
        self.sync_query_state(&mut state);
        let mut recomputed = false;
        if state.phases[0].is_none() {
            state.phases[0] = Some(self.recompute_slow_phase(&state));
            recomputed = true;
        }
        for l in 1..=self.params.num_levels {
            if state.phases[l].is_none() {
                state.phases[l] = Some(self.recompute_fast_phase(l, &state));
                recomputed = true;
            }
        }
        if recomputed {
            // Any recomputed phase can shift every later phase's base.
            self.assemble(&mut state);
        }
        let out = state.out.clone();
        self.cache.install(state);
        out
    }

    fn query_cache_stats(&self) -> Option<CacheStats> {
        Some(self.cache.stats())
    }

    fn peak_space_bits(&self) -> u64 {
        self.meter.peak_bits()
    }

    fn name(&self) -> &'static str {
        "robust-alg2"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_graph::generators;
    use sc_stream::run_oblivious;

    fn check_oblivious(n: usize, delta: usize, seed: u64) -> (Coloring, sc_graph::Graph) {
        let g = generators::gnp_with_max_degree(n, delta, 0.5, seed);
        let mut colorer = RobustColorer::new(n, delta, seed ^ 0xABCD);
        let coloring = run_oblivious(&mut colorer, generators::shuffled_edges(&g, seed));
        (coloring, g)
    }

    #[test]
    fn proper_coloring_on_random_streams() {
        for seed in 0..4u64 {
            let (coloring, g) = check_oblivious(60, 8, seed);
            assert!(coloring.is_proper_total(&g), "seed {seed}");
        }
    }

    #[test]
    fn color_count_within_delta_5_2_bound() {
        let (coloring, g) = check_oblivious(200, 16, 1);
        assert!(coloring.is_proper_total(&g));
        let bound = (16f64).powf(2.5) * 4.0; // generous constant
        assert!(
            (coloring.num_distinct_colors() as f64) < bound,
            "{} colors exceeds 4·∆^2.5 = {bound}",
            coloring.num_distinct_colors()
        );
    }

    #[test]
    fn mid_stream_queries_are_proper_for_prefixes() {
        let g = generators::gnp_with_max_degree(50, 6, 0.5, 7);
        let edges = generators::shuffled_edges(&g, 7);
        let mut colorer = RobustColorer::new(50, 6, 99);
        let mut prefix = Graph::empty(50);
        for (i, &e) in edges.iter().enumerate() {
            colorer.process(e);
            prefix.add_edge(e);
            if i % 7 == 0 {
                let c = colorer.query();
                assert!(c.is_proper_total(&prefix), "query after {} edges is improper", i + 1);
            }
        }
    }

    #[test]
    fn buffer_rotation_across_epochs() {
        // Force several epochs with a small buffer via β parameters.
        // Shrinking the buffer forces rotations; epochs must scale to keep
        // the capacity·epochs ≥ |stream| contract.
        let params =
            RobustParams { buffer_capacity: 10, num_epochs: 64, ..RobustParams::theorem3(40, 12) };
        let g = generators::gnp_with_max_degree(40, 12, 0.6, 3);
        assert!(g.m() > 30, "need enough edges to rotate: {}", g.m());
        let mut colorer = RobustColorer::with_params(params, 5);
        let coloring = run_oblivious(&mut colorer, generators::shuffled_edges(&g, 3));
        assert!(colorer.current_epoch() > 1, "buffer never rotated");
        assert!(coloring.is_proper_total(&g));
    }

    #[test]
    fn beta_variants_all_proper() {
        let g = generators::gnp_with_max_degree(80, 9, 0.4, 2);
        for beta in [0.0, 0.25, 1.0 / 3.0, 0.5] {
            let params = RobustParams::with_beta(80, 9, beta);
            let mut colorer = RobustColorer::with_params(params, 17);
            let coloring = run_oblivious(&mut colorer, generators::shuffled_edges(&g, 2));
            assert!(coloring.is_proper_total(&g), "β = {beta}");
        }
    }

    #[test]
    fn space_stays_near_linear() {
        let (_, g) = check_oblivious(150, 12, 4);
        let mut colorer = RobustColorer::new(150, 12, 4 ^ 0xABCD);
        run_oblivious(&mut colorer, generators::shuffled_edges(&g, 4));
        // Stored edges should be O(n log n)-ish, not Θ(m·∆).
        assert!(colorer.stored_edges() <= 20 * 150, "stored {} edges", colorer.stored_edges());
        assert!(colorer.peak_space_bits() > 0);
    }

    #[test]
    fn empty_graph_query() {
        let mut colorer = RobustColorer::new(10, 4, 1);
        let c = colorer.query();
        assert!(c.is_total());
        assert!(c.is_proper_total(&Graph::empty(10)));
    }

    #[test]
    fn seed_determinism() {
        let g = generators::gnp_with_max_degree(40, 6, 0.5, 9);
        let edges = generators::shuffled_edges(&g, 9);
        let mut c1 = RobustColorer::new(40, 6, 123);
        let mut c2 = RobustColorer::new(40, 6, 123);
        let r1 = run_oblivious(&mut c1, edges.iter().copied());
        let r2 = run_oblivious(&mut c2, edges.iter().copied());
        assert_eq!(r1, r2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_edge() {
        let mut colorer = RobustColorer::new(5, 3, 0);
        colorer.process(Edge::new(0, 9));
    }
}
