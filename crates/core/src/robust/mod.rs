//! §4: adversarially robust single-pass coloring.
//!
//! * [`params`] — the β-generalized parameter derivations (Cor 4.7);
//! * [`sketch`] — `f`-sketches (store `f`-monochromatic edges);
//! * [`alg2`] — Algorithm 2: `O(∆^{5/2})` colors, `Õ(n)` space + oracle
//!   randomness (Theorem 3);
//! * [`alg3`] — Algorithm 3: `O(∆³)` colors, `Õ(n)` space *including*
//!   randomness (Theorem 4);
//! * [`analysis`] — live measurement of the concentration lemmas
//!   (4.2/4.3, 4.5, 4.8) that power the space and color bounds.

pub mod alg2;
pub mod alg3;
pub mod analysis;
pub mod params;
pub mod sketch;
pub mod store_all;

pub use alg2::RobustColorer;
pub use alg3::RandEfficientColorer;
pub use analysis::{
    candidate_census, fast_block_degeneracies, sketch_concentration, CandidateCensus,
    Concentration, FastBlockDegeneracy, SketchConcentration,
};
pub use params::RobustParams;
pub use sketch::MonoSketch;
pub use store_all::{auto_robust_colorer, AutoRobust, StoreAllColorer};
