//! Color-space partitions for list coloring (Lemma 3.10).
//!
//! Algorithm 1 partitions its color space `{0,1}^b` into bit-block
//! subcubes; that only works because every `L_x` is the same prefix
//! `[∆+1]`. For arbitrary lists, Theorem 2 instead partitions the universe
//! `C` by a **2-universal hash** `R : C → [s]` chosen *adaptively*: Lemma
//! 3.10 shows the family average of
//!
//! ```text
//! cost(R) = Σ_{x ∈ U} max_{cell S ∈ R} (|L_x ∩ P_x ∩ S| − 1)
//! ```
//!
//! is at most `(1/√s) · Σ_x (|L_x ∩ P_x| − 1)`, so a below-average member
//! shrinks the total list-mass by `√s` per stage. The paper finds one with
//! a 4-pass tournament over the full `O(|C|²)` family; we support both the
//! exhaustive search (tiny universes, ground truth in tests) and a
//! deterministic strided subsample (DESIGN.md substitution S1), each
//! evaluated in a single pass with one accumulator per candidate.

use sc_graph::Color;
use sc_hash::{TwoUniversalFamily, TwoUniversalHash};

/// How many candidate partitions the per-stage selection examines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionSearch {
    /// Enumerate the entire 2-universal family (`p(p−1)` members) in one
    /// pass with one accumulator each. Only feasible when the color
    /// universe is tiny.
    Exhaustive,
    /// A deterministic strided subsample of the family.
    Sampled(usize),
    /// The paper-literal 4-pass tournament over the full family
    /// ([`four_pass_partition_selection`]): `O(|F|^{1/4})` accumulators,
    /// four extra passes per stage. Tiny universes only.
    FourPass,
}

impl Default for PartitionSearch {
    fn default() -> Self {
        PartitionSearch::Sampled(16)
    }
}

/// Materializes the candidate list for a universe of size `universe` and
/// cell count `s`.
pub fn candidate_partitions(
    universe: u64,
    s: u64,
    search: PartitionSearch,
) -> Vec<TwoUniversalHash> {
    let family = TwoUniversalFamily::for_domain(universe, s);
    match search {
        PartitionSearch::Exhaustive => {
            let len = family.len();
            assert!(
                len <= 1 << 22,
                "exhaustive search over {len} partitions is infeasible; use Sampled"
            );
            (0..len).map(|i| family.member(i)).collect()
        }
        PartitionSearch::Sampled(l) => family.strided_sample(l),
        PartitionSearch::FourPass => {
            unreachable!("FourPass selection streams directly; no candidate list")
        }
    }
}

/// `a_R(S) = max_cell (|S ∩ cell| − 1)` for one vertex's effective list
/// `S = L_x ∩ P_x` under partition `R` with `s` cells.
///
/// `scratch` must be a zeroed `Vec` of length ≥ `s`; it is re-zeroed
/// before returning (the workhorse-buffer idiom — cost O(|S|), not O(s)).
pub fn partition_cost_for_list(
    r: &TwoUniversalHash,
    effective_list: &[Color],
    scratch: &mut [u32],
) -> u64 {
    let mut touched: Vec<usize> = Vec::with_capacity(effective_list.len());
    let mut best = 0u32;
    for &c in effective_list {
        let cell = r.eval(c) as usize;
        if scratch[cell] == 0 {
            touched.push(cell);
        }
        scratch[cell] += 1;
        best = best.max(scratch[cell]);
    }
    for cell in touched {
        scratch[cell] = 0;
    }
    u64::from(best.saturating_sub(1))
}

/// Exact total mass `Σ_x (|S_x| − 1)` — the quantity each stage must
/// shrink below `|U|` before the singleton stage can run.
pub fn total_list_mass(effective_lists: &[Vec<Color>]) -> u64 {
    effective_lists.iter().map(|l| (l.len() as u64).saturating_sub(1)).sum()
}

/// The paper-literal 4-pass tournament over the **full** 2-universal
/// family (Theorem 2's proof): pass `r` splits the surviving index range
/// into `⌈|F|^{1/4}⌉` parts and keeps the part with the smallest total
/// cost, so only `O(|F|^{1/4})` accumulators live at any time; after four
/// passes a single member remains.
///
/// `replay` is invoked once per pass and must feed every uncolored
/// vertex's *effective list* `L_x ∩ P_x` to the callback — the caller owns
/// the stream and the `P_x` membership state.
///
/// Time is `Θ(|F|)` work per token per pass (the model charges space, not
/// time), so this is practical only for small universes; the sampled
/// selection ([`PartitionSearch::Sampled`]) is the default.
pub fn four_pass_partition_selection<F>(universe: u64, s: u64, mut replay: F) -> TwoUniversalHash
where
    F: FnMut(&mut dyn FnMut(&[Color])),
{
    let family = TwoUniversalFamily::for_domain(universe, s);
    let len = family.len();
    assert!(len <= 1 << 22, "full-family tournament over {len} members is infeasible");
    let parts_per_round = (len as f64).powf(0.25).ceil() as u128;

    let mut lo: u128 = 0;
    let mut hi: u128 = len;
    for _round in 0..4 {
        if hi - lo <= 1 {
            break;
        }
        let width = hi - lo;
        let step = width.div_ceil(parts_per_round);
        let bounds: Vec<(u128, u128)> = (0..parts_per_round)
            .map(|p| (lo + p * step, (lo + (p + 1) * step).min(hi)))
            .filter(|(a, b)| a < b)
            .collect();
        let mut costs = vec![0u64; bounds.len()];
        let mut scratch = vec![0u32; s as usize];
        replay(&mut |eff: &[Color]| {
            for (pi, &(a, b)) in bounds.iter().enumerate() {
                for idx in a..b {
                    let r = family.member(idx);
                    costs[pi] += partition_cost_for_list(&r, eff, &mut scratch);
                }
            }
        });
        let best = costs
            .iter()
            .enumerate()
            .min_by_key(|&(_, &c)| c)
            .map(|(i, _)| i)
            .expect("at least one part");
        (lo, hi) = bounds[best];
    }
    family.member(lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_of_single_cell_partition() {
        // s = 1: everything collides; cost = |S| − 1.
        let fam = TwoUniversalFamily::for_domain(100, 1);
        let r = fam.member(0);
        let mut scratch = vec![0u32; 1];
        assert_eq!(partition_cost_for_list(&r, &[1, 5, 9, 20], &mut scratch), 3);
        assert_eq!(partition_cost_for_list(&r, &[7], &mut scratch), 0);
        assert_eq!(partition_cost_for_list(&r, &[], &mut scratch), 0);
    }

    #[test]
    fn cost_matches_brute_force() {
        let fam = TwoUniversalFamily::for_domain(64, 4);
        let list: Vec<Color> = vec![3, 17, 21, 40, 41, 63];
        let mut scratch = vec![0u32; 4];
        for idx in (0..fam.len()).step_by(97) {
            let r = fam.member(idx);
            // Brute force.
            let mut cells = [0u64; 4];
            for &c in &list {
                cells[r.eval(c) as usize] += 1;
            }
            let expect = cells.iter().map(|&k| k.saturating_sub(1)).max().unwrap();
            assert_eq!(partition_cost_for_list(&r, &list, &mut scratch), expect);
        }
    }

    #[test]
    fn scratch_is_rezeroed() {
        let fam = TwoUniversalFamily::for_domain(32, 4);
        let r = fam.member(5);
        let mut scratch = vec![0u32; 4];
        partition_cost_for_list(&r, &[1, 2, 3, 4, 5], &mut scratch);
        assert!(scratch.iter().all(|&x| x == 0));
    }

    #[test]
    fn exhaustive_candidates_cover_family() {
        let cands = candidate_partitions(10, 2, PartitionSearch::Exhaustive);
        let fam = TwoUniversalFamily::for_domain(10, 2);
        assert_eq!(cands.len() as u128, fam.len());
    }

    #[test]
    fn sampled_candidates_are_deterministic() {
        let a = candidate_partitions(1000, 8, PartitionSearch::Sampled(12));
        let b = candidate_partitions(1000, 8, PartitionSearch::Sampled(12));
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
    }

    /// Lemma 3.10's bound holds on the full family for a small universe:
    /// the family-average cost is ≤ (1/√s) · Σ (|L| − 1).
    #[test]
    fn lemma_3_10_average_bound_exhaustive() {
        let universe = 32u64;
        let s = 4u64;
        let lists: Vec<Vec<Color>> =
            vec![vec![0, 1, 2, 3, 4, 5, 6, 7], vec![8, 9, 10, 11], vec![12, 20, 28, 30, 31]];
        let cands = candidate_partitions(universe, s, PartitionSearch::Exhaustive);
        let mut scratch = vec![0u32; s as usize];
        let total_cost: u64 = cands
            .iter()
            .map(|r| lists.iter().map(|l| partition_cost_for_list(r, l, &mut scratch)).sum::<u64>())
            .sum();
        let avg = total_cost as f64 / cands.len() as f64;
        let mass = total_list_mass(&lists) as f64;
        let bound = mass / (s as f64).sqrt();
        assert!(avg <= bound + 1e-9, "family average {avg:.3} exceeds Lemma 3.10 bound {bound:.3}");
    }

    #[test]
    fn total_mass() {
        assert_eq!(total_list_mass(&[vec![1, 2, 3], vec![9], vec![]]), 2);
        assert_eq!(total_list_mass(&[]), 0);
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn exhaustive_guard() {
        candidate_partitions(1 << 20, 8, PartitionSearch::Exhaustive);
    }

    #[test]
    fn four_pass_matches_exhaustive_on_small_family() {
        let universe = 16u64;
        let s = 2u64;
        let lists: Vec<Vec<Color>> = vec![vec![0, 1, 2, 3], vec![4, 5, 6], vec![7, 8, 15]];
        let chosen = four_pass_partition_selection(universe, s, |f| {
            for l in &lists {
                f(l);
            }
        });
        // The chosen member's cost must be at most the family average
        // (each round keeps a below-average part).
        let fam = TwoUniversalFamily::for_domain(universe, s);
        let mut scratch = vec![0u32; s as usize];
        let cost_of = |r: &TwoUniversalHash, scratch: &mut Vec<u32>| -> u64 {
            lists.iter().map(|l| partition_cost_for_list(r, l, scratch)).sum()
        };
        let chosen_cost = cost_of(&chosen, &mut scratch);
        let total: u64 = (0..fam.len()).map(|i| cost_of(&fam.member(i), &mut scratch)).sum();
        let avg = total as f64 / fam.len() as f64;
        assert!(
            chosen_cost as f64 <= avg + 1e-9,
            "four-pass pick cost {chosen_cost} above family average {avg:.2}"
        );
    }

    #[test]
    fn four_pass_handles_empty_replay() {
        // No uncolored vertices: any member is fine; must not panic.
        let chosen = four_pass_partition_selection(8, 2, |_f| {});
        assert!(chosen.s == 2);
    }
}
