//! Theorem 2: deterministic semi-streaming `(deg+1)`-list-coloring.
//!
//! The driver mirrors Algorithm 1's epoch structure, with two changes
//! (paper §3.5):
//!
//! 1. **Adaptive partitions.** Color-space partitions are not bit-block
//!    subcubes but 2-universal hash partitions `C → [s]` (`s = 2^k`),
//!    selected each stage to have below-average cost per Lemma 3.10; each
//!    stage shrinks the total list mass `Σ_x (|L_x ∩ P_x| − 1)` by about
//!    `√s`, so `≈ ⌈2 log(∆+1)/k⌉` stages bring it below `|U|`.
//! 2. **Singleton last stage.** Once the mass is below `|U|`, a final
//!    stage materializes each vertex's surviving colors (`≤ 2|U|` bits in
//!    total), prunes those used by colored neighbors, and commits one
//!    surviving color per vertex via the same derandomized tournament —
//!    now directly minimizing the number of monochromatic edges `|F|`.
//!
//! A vertex's proposal set `P_x` is stored implicitly as the sequence of
//! chosen cells: `c ∈ P_x ⇔ R_i(c) = j_i(x)` for every completed stage
//! `i` — `O(log n)` bits per vertex, as the paper requires.

use crate::det::config::{DerandStrategy, DetConfig};
use crate::det::derand::select_hash;
use crate::det::tables::StageTables;
use crate::listcolor::partition::{candidate_partitions, partition_cost_for_list, PartitionSearch};
use sc_graph::{greedy_list_color, turan_independent_set, Color, Coloring, Graph, VertexId};
use sc_hash::affine::GridSubfamily;
use sc_hash::modp::ceil_log2;
use sc_hash::{prime_in_range, splitmix64, AffineFamily, TwoUniversalHash};
use sc_stream::{counter_bits, edge_bits, PassCounter, SpaceMeter, StreamSource};

/// Configuration for the list-coloring algorithm.
#[derive(Debug, Clone)]
pub struct ListConfig {
    /// Partition-candidate search per stage (Lemma 3.10 selection).
    pub partition_search: PartitionSearch,
    /// Hash-selection strategy for the per-stage tournament.
    pub derand: DerandStrategy,
    /// Safety cap on epochs (falls back to batch list-greedy).
    pub max_epochs: usize,
    /// Cap on stages per epoch, as a multiple of the nominal
    /// `⌈2 log(∆+1)/k⌉ + 1` (sampled partitions may need a few extra).
    pub max_stage_factor: usize,
}

impl Default for ListConfig {
    fn default() -> Self {
        Self {
            partition_search: PartitionSearch::default(),
            derand: DerandStrategy::default(),
            max_epochs: 200,
            max_stage_factor: 4,
        }
    }
}

/// Run report for Theorem 2 experiments.
#[derive(Debug, Clone)]
pub struct ListReport {
    /// The final proper list coloring.
    pub coloring: Coloring,
    /// Streaming passes used.
    pub passes: u64,
    /// Epochs run.
    pub epochs: usize,
    /// Total stages across epochs (including singleton stages).
    pub stages: usize,
    /// Peak self-reported space in bits.
    pub peak_space_bits: u64,
    /// Whether the safety fallback engaged.
    pub fallback_used: bool,
}

/// Deterministically `(deg+1)`-list-colors a streamed graph.
///
/// The stream interleaves edges and `(x, L_x)` tokens in any order;
/// `universe` bounds the color values (`L_x ⊆ [0, universe)`, the paper's
/// `C` with `|C| = O(n²)`); `delta` bounds the maximum degree.
///
/// # Panics
/// Panics if some vertex lacks a list, a list is smaller than `deg(x)+1`,
/// or an edge is out of range — all input-contract violations.
///
/// # Example
/// ```
/// use sc_graph::generators;
/// use sc_stream::StoredStream;
/// use streamcolor::{list_coloring, ListConfig};
///
/// let g = generators::gnp_with_max_degree(60, 6, 0.4, 1);
/// let lists = generators::random_deg_plus_one_lists(&g, 48, 2);
/// let stream = StoredStream::from_graph_with_lists(&g, &lists);
/// let report = list_coloring(&stream, 60, 6, 48, &ListConfig::default());
/// assert!(report.coloring.is_proper_total(&g));
/// assert!(report.coloring.respects_lists(&lists));
/// ```
pub fn list_coloring<S: StreamSource + ?Sized>(
    stream: &S,
    n: usize,
    delta: usize,
    universe: u64,
    config: &ListConfig,
) -> ListReport {
    let counted = PassCounter::new(stream);
    let mut meter = SpaceMeter::new();
    meter.charge(n as u64 * (counter_bits(universe.max(1)) + 1)); // χ + U bits

    let mut coloring = Coloring::empty(n);
    let mut u_set: Vec<VertexId> = (0..n as u32).collect();
    let mut epochs = 0usize;
    let mut stages = 0usize;
    let mut fallback_used = false;

    while !u_set.is_empty() && u_set.len() * delta.max(1) > n {
        if epochs >= config.max_epochs {
            fallback_used = true;
            break;
        }
        stages +=
            list_epoch(&counted, n, delta, universe, &mut coloring, &mut u_set, config, &mut meter);
        epochs += 1;
    }

    // Final phase: collect the residual subgraph and its lists, then
    // greedy-list-color (one pass; ≤ |U|·(∆+1) ≤ 2n stored values).
    if !u_set.is_empty() {
        let mut in_u = vec![false; n];
        for &x in &u_set {
            in_u[x as usize] = true;
        }
        let mut residual = Graph::empty(n);
        let mut lists: Vec<Vec<Color>> = vec![Vec::new(); n];
        for item in counted.pass() {
            match item {
                sc_stream::StreamItem::Edge(e) => {
                    if in_u[e.u() as usize] || in_u[e.v() as usize] {
                        residual.add_edge(e);
                    }
                }
                sc_stream::StreamItem::Deletion(e) => {
                    panic!("list colorer: insert-only algorithm cannot delete edge {e}")
                }
                sc_stream::StreamItem::ColorList(x, l) => {
                    if in_u[x as usize] {
                        lists[x as usize] = l;
                    }
                }
            }
        }
        let stored: u64 = lists.iter().map(|l| l.len() as u64).sum();
        meter.charge(residual.m() as u64 * edge_bits(n) + stored * counter_bits(universe.max(1)));
        for &x in &u_set {
            assert!(
                !lists[x as usize].is_empty(),
                "vertex {x} has no color list (input contract violation)"
            );
        }
        greedy_list_color(&residual, &mut coloring, &u_set, &lists)
            .unwrap_or_else(|x| panic!("list of vertex {x} exhausted: |L_x| < deg(x)+1?"));
        meter.release(residual.m() as u64 * edge_bits(n) + stored * counter_bits(universe.max(1)));
        u_set.clear();
    }

    ListReport {
        coloring,
        passes: counted.passes(),
        epochs,
        stages,
        peak_space_bits: meter.peak_bits(),
        fallback_used,
    }
}

/// One epoch; returns the number of stages it ran.
#[allow(clippy::too_many_arguments)]
fn list_epoch<S: StreamSource + ?Sized>(
    stream: &S,
    n: usize,
    delta: usize,
    universe: u64,
    coloring: &mut Coloring,
    u_set: &mut Vec<VertexId>,
    config: &ListConfig,
    meter: &mut SpaceMeter,
) -> usize {
    let u_size = u_set.len();
    let log_n = u64::from(ceil_log2(n as u64)).max(1);
    let k = (1 + (n as u64 / u_size as u64).ilog2()).max(1);
    let s = 1u64 << k.min(20);
    let b = ceil_log2(delta as u64 + 1).max(1);
    let nominal_stages = (2 * b).div_ceil(k) as usize + 1;
    let stage_cap = nominal_stages * config.max_stage_factor + 1;
    let p = prime_in_range(8 * n as u64 * log_n, 16 * n as u64 * log_n)
        .expect("Bertrand interval contains a prime");

    let mut in_u = vec![false; n];
    for &x in u_set.iter() {
        in_u[x as usize] = true;
    }
    let mut pos = vec![u32::MAX; n];
    for (i, &x) in u_set.iter().enumerate() {
        pos[x as usize] = i as u32;
    }

    // P_x is implicit: the chosen cell per completed stage.
    let mut stage_hashes: Vec<TwoUniversalHash> = Vec::new();
    // Stage-major, n entries per stage.
    let mut choices: Vec<Vec<u64>> = Vec::new();
    // Proposal-identity tokens (P_u = P_v ⇔ same cell history).
    let mut group: Vec<u64> = (0..n).map(|x| if in_u[x] { 0 } else { u64::MAX }).collect();
    meter.charge(u_size as u64 * 2 * log_n); // per-vertex cell history

    let in_px = |c: Color, x: usize, hs: &[TwoUniversalHash], ch: &[Vec<u64>]| -> bool {
        hs.iter().zip(ch.iter()).all(|(h, row)| h.eval(c) == row[x])
    };

    let mut ran_stages = 0usize;
    loop {
        ran_stages += 1;
        // ---- Pass A: current list mass (+ candidate costs when the
        // selection is single-pass). ----
        let four_pass = matches!(config.partition_search, PartitionSearch::FourPass);
        let candidates = if four_pass {
            Vec::new()
        } else {
            candidate_partitions(universe, s, config.partition_search)
        };
        meter.charge((candidates.len().max(1)) as u64 * 2 * log_n);
        let mut costs = vec![0u64; candidates.len()];
        let mut mass = 0u64;
        let mut scratch = vec![0u32; s as usize];
        for item in stream.pass() {
            let Some((x, l)) = item.as_color_list() else { continue };
            if !in_u[x as usize] {
                continue;
            }
            let eff: Vec<Color> = l
                .iter()
                .copied()
                .filter(|&c| in_px(c, x as usize, &stage_hashes, &choices))
                .collect();
            mass += (eff.len() as u64).saturating_sub(1);
            for (ci, r) in candidates.iter().enumerate() {
                costs[ci] += partition_cost_for_list(r, &eff, &mut scratch);
            }
        }
        meter.release((candidates.len().max(1)) as u64 * 2 * log_n);
        if mass <= u_size as u64 || ran_stages > stage_cap {
            break; // ready for the singleton stage
        }
        let r_star = if four_pass {
            // Paper-literal tournament: four more passes over the stream,
            // O(|F|^{1/4}) accumulators (Theorem 2's proof structure).
            crate::listcolor::partition::four_pass_partition_selection(universe, s, |feed| {
                for item in stream.pass() {
                    let Some((x, l)) = item.as_color_list() else { continue };
                    if !in_u[x as usize] {
                        continue;
                    }
                    let eff: Vec<Color> = l
                        .iter()
                        .copied()
                        .filter(|&c| in_px(c, x as usize, &stage_hashes, &choices))
                        .collect();
                    feed(&eff);
                }
            })
        } else {
            let best = costs
                .iter()
                .enumerate()
                .min_by_key(|&(_, &c)| c)
                .map(|(i, _)| i)
                .expect("candidate set is nonempty");
            candidates[best]
        };

        // ---- Pass B: slack counters for the chosen partition. ----
        let patterns = s as usize;
        meter.charge(u_size as u64 * s * counter_bits(delta as u64 + 1));
        let mut cnt_lx = vec![0u64; u_size * patterns];
        let mut used = vec![0u64; u_size * patterns];
        for item in stream.pass() {
            match item {
                sc_stream::StreamItem::ColorList(x, l) => {
                    if !in_u[x as usize] {
                        continue;
                    }
                    let row = pos[x as usize] as usize * patterns;
                    for &c in &l {
                        if in_px(c, x as usize, &stage_hashes, &choices) {
                            cnt_lx[row + r_star.eval(c) as usize] += 1;
                        }
                    }
                }
                sc_stream::StreamItem::Edge(e) => {
                    for (x, y) in [(e.u(), e.v()), (e.v(), e.u())] {
                        if !in_u[x as usize] || in_u[y as usize] {
                            continue;
                        }
                        if let Some(chi_y) = coloring.get(y) {
                            if in_px(chi_y, x as usize, &stage_hashes, &choices) {
                                let row = pos[x as usize] as usize * patterns;
                                used[row + r_star.eval(chi_y) as usize] += 1;
                            }
                        }
                    }
                }
                sc_stream::StreamItem::Deletion(e) => {
                    panic!("list colorer: insert-only algorithm cannot delete edge {e}")
                }
            }
        }
        let slack: Vec<u64> =
            cnt_lx.iter().zip(used.iter()).map(|(&a, &u)| a.saturating_sub(u)).collect();
        let tables = StageTables::build(n, u_set, patterns, slack, p, log_n);

        // ---- Passes C–D: tournament for h⋆, then tighten P_x. ----
        let sel = select_hash(stream, &group, &tables, config.derand);
        let mut row = vec![u64::MAX; n];
        for &x in u_set.iter() {
            let dense = tables.position(x).expect("uncolored");
            let j = tables.gw(dense, sel.hash.eval(x as u64)) as u64;
            row[x as usize] = j;
            group[x as usize] =
                splitmix64(group[x as usize] ^ j.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
        stage_hashes.push(r_star);
        choices.push(row);
        meter.release(u_size as u64 * s * counter_bits(delta as u64 + 1));
    }

    // ---- Singleton stage. ----
    // Pass S1: materialize surviving colors (≤ mass + |U| ≤ 2|U| values).
    let mut avail: Vec<Vec<Color>> = vec![Vec::new(); n];
    for item in stream.pass() {
        let Some((x, l)) = item.as_color_list() else { continue };
        if in_u[x as usize] {
            let mut eff: Vec<Color> = l
                .iter()
                .copied()
                .filter(|&c| in_px(c, x as usize, &stage_hashes, &choices))
                .collect();
            eff.sort_unstable();
            eff.dedup();
            avail[x as usize] = eff;
        }
    }
    let avail_total: u64 = avail.iter().map(|a| a.len() as u64).sum();
    meter.charge(avail_total * counter_bits(universe.max(1)));

    // Pass S2: prune colors used by colored neighbors.
    for item in stream.pass() {
        let Some(e) = item.as_edge() else { continue };
        for (x, y) in [(e.u(), e.v()), (e.v(), e.u())] {
            if in_u[x as usize] && !in_u[y as usize] {
                if let Some(chi_y) = coloring.get(y) {
                    avail[x as usize].retain(|&c| c != chi_y);
                }
            }
        }
    }
    for &x in u_set.iter() {
        assert!(
            !avail[x as usize].is_empty(),
            "vertex {x} has no surviving color (slack invariant violated)"
        );
    }

    // Passes S3–S4: tournament choosing final colors to minimize |F|.
    let final_color = select_singleton_colors(stream, &avail, &in_u, p, config.derand);

    // Pass S5: collect F.
    let mut f_edges = Vec::new();
    for item in stream.pass() {
        let Some(e) = item.as_edge() else { continue };
        if in_u[e.u() as usize]
            && in_u[e.v() as usize]
            && final_color[e.u() as usize] == final_color[e.v() as usize]
        {
            f_edges.push(e);
        }
    }
    meter.charge(f_edges.len() as u64 * edge_bits(n));
    let f_graph = Graph::from_edges(n, f_edges.iter().copied());
    let independent = turan_independent_set(&f_graph, u_set);
    for &x in &independent {
        coloring.set(x, final_color[x as usize]);
        in_u[x as usize] = false;
    }
    u_set.retain(|&x| in_u[x as usize]);
    meter.release(f_edges.len() as u64 * edge_bits(n));
    meter.release(avail_total * counter_bits(universe.max(1)));
    meter.release(u_size as u64 * 2 * log_n);

    ran_stages
}

/// The singleton-stage tournament: picks `h⋆` minimizing the number of
/// monochromatic commitments, and returns each uncolored vertex's final
/// color `avail[x][⌊h⋆(x)·|avail[x]|/p⌋]`.
fn select_singleton_colors<S: StreamSource + ?Sized>(
    stream: &S,
    avail: &[Vec<Color>],
    in_u: &[bool],
    p: u64,
    derand: DerandStrategy,
) -> Vec<Color> {
    let family = AffineFamily::new(p);
    let grid: GridSubfamily = match derand {
        DerandStrategy::FullFamily => family.grid(p as usize),
        DerandStrategy::Grid { l } => family.grid(l),
    };
    let pick = |h: &sc_hash::AffineHash, x: usize| -> Color {
        let list = &avail[x];
        let idx = ((h.eval(x as u64) as u128 * list.len() as u128) / p as u128) as usize;
        list[idx.min(list.len() - 1)]
    };

    // Pass S3: part sums of monochromatic counts.
    let mut part_sums = vec![0u64; grid.num_parts()];
    for item in stream.pass() {
        let Some(e) = item.as_edge() else { continue };
        let (u, v) = e.endpoints();
        if !in_u[u as usize] || !in_u[v as usize] {
            continue;
        }
        for (pi, sum) in part_sums.iter_mut().enumerate() {
            for h in grid.part(pi) {
                *sum += u64::from(pick(&h, u as usize) == pick(&h, v as usize));
            }
        }
    }
    let best_part = part_sums
        .iter()
        .enumerate()
        .min_by_key(|&(_, &c)| c)
        .map(|(i, _)| i)
        .expect("grid nonempty");

    // Pass S4: members of the best part.
    let members: Vec<sc_hash::AffineHash> = grid.part(best_part).collect();
    let mut member_sums = vec![0u64; members.len()];
    for item in stream.pass() {
        let Some(e) = item.as_edge() else { continue };
        let (u, v) = e.endpoints();
        if !in_u[u as usize] || !in_u[v as usize] {
            continue;
        }
        for (mi, h) in members.iter().enumerate() {
            member_sums[mi] += u64::from(pick(h, u as usize) == pick(h, v as usize));
        }
    }
    let best = member_sums
        .iter()
        .enumerate()
        .min_by_key(|&(_, &c)| c)
        .map(|(i, _)| i)
        .expect("part nonempty");
    let h_star = members[best];

    (0..avail.len())
        .map(|x| if in_u[x] && !avail[x].is_empty() { pick(&h_star, x) } else { 0 })
        .collect()
}

/// Convenience: derives a [`DetConfig`]-compatible tournament strategy.
impl From<&DetConfig> for ListConfig {
    fn from(c: &DetConfig) -> Self {
        Self { derand: c.derand, max_epochs: c.max_epochs, ..Self::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_graph::generators;
    use sc_stream::StoredStream;

    fn run(
        g: &sc_graph::Graph,
        lists: &[Vec<Color>],
        universe: u64,
        config: &ListConfig,
    ) -> ListReport {
        let stream = StoredStream::from_graph_with_lists(g, lists);
        let r = list_coloring(&stream, g.n(), g.max_degree(), universe, config);
        assert!(r.coloring.is_proper_total(g), "improper list coloring");
        assert!(r.coloring.respects_lists(lists), "coloring violates lists");
        r
    }

    #[test]
    fn random_graph_random_lists() {
        for seed in 0..3u64 {
            let g = generators::gnp_with_max_degree(40, 6, 0.4, seed);
            let lists = generators::random_deg_plus_one_lists(&g, 100, seed + 9);
            let r = run(&g, &lists, 100, &ListConfig::default());
            assert!(!r.fallback_used);
        }
    }

    #[test]
    fn large_universe_lists() {
        // |C| = O(n²) as in the theorem statement.
        let g = generators::gnp_with_max_degree(30, 5, 0.4, 4);
        let universe = (30 * 30) as u64;
        let lists = generators::random_deg_plus_one_lists(&g, universe, 2);
        run(&g, &lists, universe, &ListConfig::default());
    }

    #[test]
    fn identical_minimal_lists_reduce_to_delta_plus_one() {
        // L_x = [∆+1] for all x recovers Theorem 1 behaviour.
        let g = generators::gnp_with_max_degree(32, 5, 0.5, 7);
        let palette: Vec<Color> = (0..=g.max_degree() as Color).collect();
        let lists: Vec<Vec<Color>> = (0..32).map(|_| palette.clone()).collect();
        let r = run(&g, &lists, g.max_degree() as u64 + 1, &ListConfig::default());
        assert!(r.coloring.palette_span() <= g.max_degree() as u64 + 1);
    }

    #[test]
    fn clique_with_disjoint_heavy_lists() {
        let g = generators::complete(8);
        // Each vertex gets 8 private colors — trivially colorable, but the
        // machinery must still terminate cleanly.
        let lists: Vec<Vec<Color>> =
            (0..8u64).map(|x| (0..8).map(|i| x * 8 + i).collect()).collect();
        run(&g, &lists, 64, &ListConfig::default());
    }

    #[test]
    fn adversarial_shared_tight_lists() {
        // A clique where all lists are the same [n] — the tightest case.
        let g = generators::complete(10);
        let lists: Vec<Vec<Color>> = (0..10).map(|_| (0..10).collect()).collect();
        run(&g, &lists, 10, &ListConfig::default());
    }

    #[test]
    fn star_with_small_leaf_lists() {
        let g = generators::star(20);
        let mut lists: Vec<Vec<Color>> = vec![vec![]; 20];
        lists[0] = (0..20).collect(); // center: deg 19, list 20
        for leaf_list in lists.iter_mut().skip(1) {
            *leaf_list = vec![500, 501]; // leaves: deg 1, list 2
        }
        run(&g, &lists, 502, &ListConfig::default());
    }

    #[test]
    fn exhaustive_partition_search_tiny_universe() {
        let g = generators::cycle(12);
        let lists: Vec<Vec<Color>> = (0..12).map(|_| vec![0, 1, 2]).collect();
        let cfg =
            ListConfig { partition_search: PartitionSearch::Exhaustive, ..ListConfig::default() };
        run(&g, &lists, 3, &cfg);
    }

    #[test]
    fn four_pass_selection_tiny_universe() {
        // The paper-literal tournament end to end (small |C| keeps the
        // full family enumerable).
        let g = generators::cycle(14);
        let lists: Vec<Vec<Color>> = (0..14).map(|x| vec![x % 3, 3 + x % 2, 5]).collect();
        let cfg =
            ListConfig { partition_search: PartitionSearch::FourPass, ..ListConfig::default() };
        run(&g, &lists, 6, &cfg);
    }

    #[test]
    fn determinism() {
        let g = generators::gnp_with_max_degree(25, 4, 0.5, 3);
        let lists = generators::random_deg_plus_one_lists(&g, 50, 5);
        let stream = StoredStream::from_graph_with_lists(&g, &lists);
        let r1 = list_coloring(&stream, 25, 4, 50, &ListConfig::default());
        let r2 = list_coloring(&stream, 25, 4, 50, &ListConfig::default());
        assert_eq!(r1.coloring, r2.coloring);
        assert_eq!(r1.passes, r2.passes);
    }

    #[test]
    fn lists_interleaved_after_edges() {
        // Tokens may arrive in any order (theorem statement).
        let g = generators::cycle(9);
        let lists = generators::random_deg_plus_one_lists(&g, 30, 1);
        let mut items: Vec<sc_stream::StreamItem> =
            g.edges().map(sc_stream::StreamItem::Edge).collect();
        for (x, l) in lists.iter().enumerate() {
            items.push(sc_stream::StreamItem::ColorList(x as u32, l.clone()));
        }
        let stream = StoredStream::new(items);
        let r = list_coloring(&stream, 9, 2, 30, &ListConfig::default());
        assert!(r.coloring.is_proper_total(&g));
        assert!(r.coloring.respects_lists(&lists));
    }

    #[test]
    #[should_panic(expected = "no color list")]
    fn missing_list_rejected_in_final_phase() {
        // ∆ = 1 goes straight to the final phase, which checks lists.
        let mut g = sc_graph::Graph::empty(4);
        g.add_edge(sc_graph::Edge::new(0, 1));
        g.add_edge(sc_graph::Edge::new(2, 3));
        let stream = StoredStream::from_graph(&g); // no lists at all
        list_coloring(&stream, 4, 1, 20, &ListConfig::default());
    }

    #[test]
    #[should_panic(expected = "no surviving color")]
    fn missing_list_rejected_in_epoch() {
        // Dense graph: the epoch path notices empty effective lists.
        let g = generators::complete(12);
        let stream = StoredStream::from_graph(&g); // no lists at all
        list_coloring(&stream, 12, 11, 20, &ListConfig::default());
    }
}
