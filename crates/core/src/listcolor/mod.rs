//! Theorem 2: deterministic semi-streaming `(deg+1)`-list-coloring in
//! `O(log ∆ · log log ∆)` passes and `O(n log² n)` bits.
//!
//! * [`partition`] — the adaptive 2-universal partitions of Lemma 3.10;
//! * [`algorithm`] — the list-coloring epochs (adaptive stages + singleton
//!   last stage) and driver.

pub mod algorithm;
pub mod partition;

pub use algorithm::{list_coloring, ListConfig, ListReport};
pub use partition::PartitionSearch;
