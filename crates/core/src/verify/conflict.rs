//! Conflict counting/estimation over vertex-arrival streams.

use sc_graph::{Color, Coloring, Graph, VertexId};
use sc_hash::SplitMix64;
use sc_stream::{color_bits, counter_bits, SpaceMeter};

/// One vertex-arrival token: a vertex, its announced color, and its edges
/// to previously arrived vertices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VertexArrival {
    /// The arriving vertex.
    pub v: VertexId,
    /// Its announced color.
    pub color: Color,
    /// Neighbors among vertices that arrived earlier.
    pub back_edges: Vec<VertexId>,
}

/// Serializes a colored graph as a vertex-arrival stream in the given
/// vertex order (each vertex lists only neighbors earlier in the order).
///
/// # Panics
/// Panics if `coloring` is not total on `g` or `order` is not a
/// permutation of the vertices.
pub fn stream_from_coloring(
    g: &Graph,
    coloring: &Coloring,
    order: &[VertexId],
) -> Vec<VertexArrival> {
    assert_eq!(order.len(), g.n(), "order must cover every vertex");
    let mut position = vec![usize::MAX; g.n()];
    for (i, &v) in order.iter().enumerate() {
        assert_eq!(position[v as usize], usize::MAX, "duplicate vertex {v} in order");
        position[v as usize] = i;
    }
    order
        .iter()
        .map(|&v| VertexArrival {
            v,
            color: coloring.get(v).expect("coloring must be total"),
            back_edges: g
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&u| position[u as usize] < position[v as usize])
                .collect(),
        })
        .collect()
}

/// Exact monochromatic-edge counter: stores every announced color
/// (`O(n log|C|)` bits — the semi-streaming exact upper bound).
///
/// # Examples
/// ```
/// use sc_graph::{generators, greedy_complete, Coloring};
/// use streamcolor::verify::{stream_from_coloring, ExactConflictCounter};
///
/// let g = generators::cycle(6);
/// let mut coloring = Coloring::empty(6);
/// greedy_complete(&g, &mut coloring);
///
/// let order: Vec<u32> = (0..6).collect();
/// let mut counter = ExactConflictCounter::new(6, 2);
/// for arrival in stream_from_coloring(&g, &coloring, &order) {
///     counter.process(&arrival);
/// }
/// assert!(counter.is_proper());
/// ```
#[derive(Debug, Clone)]
pub struct ExactConflictCounter {
    colors: Vec<Option<Color>>,
    conflicts: u64,
    meter: SpaceMeter,
}

impl ExactConflictCounter {
    /// Creates the counter for `n` vertices with palette bound `c_max`.
    pub fn new(n: usize, c_max: Color) -> Self {
        let mut meter = SpaceMeter::new();
        meter.charge(n as u64 * color_bits(c_max.max(1)) + 64);
        Self { colors: vec![None; n], conflicts: 0, meter }
    }

    /// Processes one arrival.
    ///
    /// # Panics
    /// Panics on an out-of-range vertex, a repeated arrival, or a back
    /// edge to a vertex that has not arrived (malformed stream).
    pub fn process(&mut self, a: &VertexArrival) {
        assert!((a.v as usize) < self.colors.len(), "vertex {} out of range", a.v);
        assert!(self.colors[a.v as usize].is_none(), "vertex {} arrived twice", a.v);
        for &u in &a.back_edges {
            let cu =
                self.colors[u as usize].unwrap_or_else(|| panic!("back edge to unseen vertex {u}"));
            if cu == a.color {
                self.conflicts += 1;
            }
        }
        self.colors[a.v as usize] = Some(a.color);
    }

    /// Monochromatic edges seen so far.
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Whether the announced coloring is (so far) proper.
    pub fn is_proper(&self) -> bool {
        self.conflicts == 0
    }

    /// Model-accounted space.
    pub fn space_bits(&self) -> u64 {
        self.meter.peak_bits()
    }
}

/// Sampled conflict estimator: stores colors only for a seeded sample of
/// `k` vertices and scales visible conflicts by `n/k`.
///
/// An edge `{u, v}` (with `v` arriving later) is *visible* when `u` is in
/// the sample, which happens with probability `k/n`; scaling the visible
/// conflict count by `n/k` is therefore unbiased. Concentration gives
/// relative error `≈ √(n/(k·m_mono))` — a `(1±ε)` estimate once the true
/// count `m_mono` is `Ω(n/(k ε²))`, matching the BBMU21 regime where only
/// large conflict counts are estimable in small space.
#[derive(Debug, Clone)]
pub struct SampledConflictEstimator {
    n: usize,
    /// Sampled vertices' colors (`None` until they arrive).
    sample_colors: std::collections::HashMap<VertexId, Option<Color>>,
    visible_conflicts: u64,
    meter: SpaceMeter,
}

impl SampledConflictEstimator {
    /// Creates the estimator with a seeded uniform sample of `k` vertices.
    pub fn new(n: usize, k: usize, c_max: Color, seed: u64) -> Self {
        let k = k.clamp(1, n.max(1));
        let mut rng = SplitMix64::new(seed);
        let mut sample = std::collections::HashMap::with_capacity(k);
        while sample.len() < k {
            sample.insert(rng.below(n as u64) as VertexId, None);
        }
        let mut meter = SpaceMeter::new();
        meter.charge(k as u64 * (color_bits(c_max.max(1)) + counter_bits(n as u64)) + 64);
        Self { n, sample_colors: sample, visible_conflicts: 0, meter }
    }

    /// Number of sampled vertices.
    pub fn sample_size(&self) -> usize {
        self.sample_colors.len()
    }

    /// Processes one arrival.
    pub fn process(&mut self, a: &VertexArrival) {
        for &u in &a.back_edges {
            if let Some(Some(cu)) = self.sample_colors.get(&u) {
                if *cu == a.color {
                    self.visible_conflicts += 1;
                }
            }
        }
        if let Some(slot) = self.sample_colors.get_mut(&a.v) {
            assert!(slot.is_none(), "vertex {} arrived twice", a.v);
            *slot = Some(a.color);
        }
    }

    /// The scaled estimate of the number of monochromatic edges.
    pub fn estimate(&self) -> f64 {
        self.visible_conflicts as f64 * self.n as f64 / self.sample_size() as f64
    }

    /// Conflicts visible through the sample (diagnostics).
    pub fn visible_conflicts(&self) -> u64 {
        self.visible_conflicts
    }

    /// Model-accounted space.
    pub fn space_bits(&self) -> u64 {
        self.meter.peak_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_graph::{generators, Coloring};

    /// A coloring with a known number of planted conflicts: proper greedy
    /// coloring, then recolor `bad` vertices to a neighbor's color.
    fn planted(g: &Graph, bad: usize, seed: u64) -> (Coloring, u64) {
        let mut c = sc_graph::Coloring::empty(g.n());
        sc_graph::greedy_complete(g, &mut c);
        let mut rng = SplitMix64::new(seed);
        let mut changed = std::collections::HashSet::new();
        let mut attempts = 0;
        while changed.len() < bad && attempts < 50 * bad {
            attempts += 1;
            let v = rng.below(g.n() as u64) as VertexId;
            if changed.contains(&v) || g.degree(v) == 0 {
                continue;
            }
            // Only corrupt vertices whose neighborhood is untouched, so
            // the conflict count is exactly the sum of per-vertex clashes.
            if g.neighbors(v).iter().any(|u| changed.contains(u)) {
                continue;
            }
            let u = g.neighbors(v)[rng.below(g.degree(v) as u64) as usize];
            c.unset(v);
            c.set(v, c.get(u).expect("total"));
            changed.insert(v);
        }
        // Ground truth by brute force.
        let truth = g.edges().filter(|e| c.get(e.u()) == c.get(e.v())).count() as u64;
        (c, truth)
    }

    fn arrival_order(n: usize, seed: u64) -> Vec<VertexId> {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut order: Vec<VertexId> = (0..n as VertexId).collect();
        order.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
        order
    }

    #[test]
    fn exact_counter_matches_brute_force() {
        let g = generators::gnp_with_max_degree(120, 10, 0.3, 1);
        let (coloring, truth) = planted(&g, 15, 2);
        assert!(truth > 0);
        for order_seed in 0..3u64 {
            let stream = stream_from_coloring(&g, &coloring, &arrival_order(g.n(), order_seed));
            let mut counter = ExactConflictCounter::new(g.n(), 11);
            for a in &stream {
                counter.process(a);
            }
            assert_eq!(counter.conflicts(), truth, "order seed {order_seed}");
            assert!(!counter.is_proper());
        }
    }

    #[test]
    fn proper_coloring_verifies_clean() {
        let g = generators::random_with_exact_max_degree(100, 8, 3);
        let mut c = Coloring::empty(100);
        sc_graph::greedy_complete(&g, &mut c);
        let stream = stream_from_coloring(&g, &c, &arrival_order(100, 5));
        let mut counter = ExactConflictCounter::new(100, 9);
        for a in &stream {
            counter.process(a);
        }
        assert!(counter.is_proper());
        assert_eq!(counter.conflicts(), 0);
    }

    #[test]
    fn full_sample_estimator_is_exact() {
        let g = generators::gnp_with_max_degree(80, 8, 0.3, 4);
        let (coloring, truth) = planted(&g, 10, 5);
        let stream = stream_from_coloring(&g, &coloring, &arrival_order(80, 1));
        let mut est = SampledConflictEstimator::new(80, 80, 9, 7);
        for a in &stream {
            est.process(a);
        }
        assert_eq!(est.sample_size(), 80);
        assert!((est.estimate() - truth as f64).abs() < 1e-9);
    }

    #[test]
    fn sampled_estimate_concentrates() {
        // Many conflicts + a decent sample: averaged relative error over
        // seeds should be modest (the (1±ε) regime).
        let g = generators::gnp_with_max_degree(600, 20, 0.2, 6);
        let (coloring, truth) = planted(&g, 150, 7);
        assert!(truth >= 100, "need many conflicts, got {truth}");
        let stream = stream_from_coloring(&g, &coloring, &arrival_order(600, 2));
        let mut rel_errors = Vec::new();
        for seed in 0..10u64 {
            let mut est = SampledConflictEstimator::new(600, 200, 21, seed);
            for a in &stream {
                est.process(a);
            }
            rel_errors.push((est.estimate() - truth as f64).abs() / truth as f64);
        }
        let mean: f64 = rel_errors.iter().sum::<f64>() / rel_errors.len() as f64;
        assert!(mean < 0.35, "mean relative error {mean:.3} too large");
    }

    #[test]
    fn estimator_space_is_sublinear() {
        let exact = ExactConflictCounter::new(10_000, 100);
        let est = SampledConflictEstimator::new(10_000, 100, 100, 1);
        assert!(
            est.space_bits() * 10 < exact.space_bits(),
            "sampled {} vs exact {}",
            est.space_bits(),
            exact.space_bits()
        );
    }

    #[test]
    fn malformed_streams_panic() {
        let g = generators::path(3);
        let mut c = Coloring::empty(3);
        sc_graph::greedy_complete(&g, &mut c);
        let mut counter = ExactConflictCounter::new(3, 2);
        // Back edge to a vertex that has not arrived.
        let bad = VertexArrival { v: 0, color: 0, back_edges: vec![2] };
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            counter.process(&bad);
        }));
        assert!(r.is_err());
    }

    #[test]
    fn stream_serialization_covers_each_edge_once() {
        let g = generators::complete(7);
        let mut c = Coloring::empty(7);
        sc_graph::greedy_complete(&g, &mut c);
        let stream = stream_from_coloring(&g, &c, &arrival_order(7, 3));
        let total: usize = stream.iter().map(|a| a.back_edges.len()).sum();
        assert_eq!(total, g.m());
    }
}
