//! Streaming verification of vertex colorings (the BBMU21 problem).
//!
//! The paper's related work cites Bhattacharya–Bishnu–Mishra–Upasana
//! (ITCS 2021): in the **vertex-arrival** model, each vertex arrives with
//! its color and its edges to earlier vertices, and the task is to decide
//! whether the announced coloring is proper. Exact verification in `o(n)`
//! space is impossible, so they study the relaxation of estimating the
//! number of *conflicting* (monochromatic) edges to a `(1±ε)` factor.
//!
//! This module implements the model and both regimes:
//!
//! * [`ExactConflictCounter`] — the `O(n log|C|)`-space exact counter
//!   (the semi-streaming upper bound the hardness result is measured
//!   against);
//! * [`SampledConflictEstimator`] — an `O(k log|C|)`-space estimator that
//!   stores the colors of `k` sampled vertices and scales up the
//!   conflicts it can see, unbiased with relative error `≈ 1/√(εm_mono)`.
//!
//! The robust colorers' adversarial game uses exact properness checks
//! offline; this module is the *streaming-native* answer to the same
//! question, closing the loop on the last related-work problem family the
//! paper surveys.

pub mod conflict;

pub use conflict::{
    stream_from_coloring, ExactConflictCounter, SampledConflictEstimator, VertexArrival,
};
