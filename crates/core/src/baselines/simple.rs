//! Trivial baselines: offline greedy and the `n`-coloring.
//!
//! * [`offline_greedy`] — the classical `(∆+1)` first-fit on the whole
//!   graph; ground truth for "how many colors should this take offline".
//! * [`TrivialColorer`] — `χ(x) = x`: the `n`-color, zero-space,
//!   deterministic (hence trivially robust) single-pass algorithm the
//!   paper's lower-bound discussion keeps as the reference point
//!   (deterministic single-pass algorithms cannot beat `exp(∆^Ω(1))`
//!   colors, so for `∆ ≥ log n`-ish this is essentially optimal among
//!   them).

use sc_graph::{greedy_complete, Coloring, Edge, Graph};
use sc_stream::{StateReader, StateWriter, StreamingColorer};

/// Offline first-fit `(∆+1)`-coloring of a fully materialized graph.
pub fn offline_greedy(g: &Graph) -> Coloring {
    let mut c = Coloring::empty(g.n());
    greedy_complete(g, &mut c);
    c
}

/// The `n`-coloring: every vertex gets its own id as color.
#[derive(Debug, Clone)]
pub struct TrivialColorer {
    n: usize,
}

impl TrivialColorer {
    /// Creates the trivial colorer on `n` vertices.
    pub fn new(n: usize) -> Self {
        Self { n }
    }
}

impl StreamingColorer for TrivialColorer {
    fn process(&mut self, _e: Edge) {}

    fn query(&mut self) -> Coloring {
        let mut c = Coloring::empty(self.n);
        for x in 0..self.n as u32 {
            c.set(x, x as u64);
        }
        c
    }

    fn peak_space_bits(&self) -> u64 {
        0
    }

    // Stateless, but still round-trippable: a tagged empty state keeps
    // the persistence law uniform across every buildable spec.
    fn encode_state(&self) -> Result<String, String> {
        let mut w = StateWriter::new();
        w.field("algo", self.name());
        Ok(w.finish())
    }

    fn decode_state(&mut self, state: &str) -> Result<(), String> {
        let mut r = StateReader::new(state);
        let algo = r.expect("algo")?;
        if algo != self.name() {
            return Err(format!("state: algo {algo:?} is not {:?}", self.name()));
        }
        r.done()
    }

    fn name(&self) -> &'static str {
        "trivial-n-coloring"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_graph::generators;
    use sc_stream::run_oblivious;

    #[test]
    fn offline_greedy_within_delta_plus_one() {
        for seed in 0..3u64 {
            let g = generators::gnp_with_max_degree(60, 9, 0.4, seed);
            let c = offline_greedy(&g);
            assert!(c.is_proper_total(&g));
            assert!(c.palette_span() <= g.max_degree() as u64 + 1);
        }
    }

    #[test]
    fn trivial_is_always_proper_with_n_colors() {
        let g = generators::complete(15);
        let mut t = TrivialColorer::new(15);
        let c = run_oblivious(&mut t, g.edges());
        assert!(c.is_proper_total(&g));
        assert_eq!(c.num_distinct_colors(), 15);
        assert_eq!(t.peak_space_bits(), 0);
    }
}
