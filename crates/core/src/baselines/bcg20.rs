//! BCG20-style degeneracy-based palette sparsification: a randomized
//! one-pass `κ(1+ε)`-coloring (non-robust).
//!
//! Bera–Chakrabarti–Ghosh (ICALP 2020) showed that coloring against the
//! **degeneracy** `κ` instead of `∆` often shrinks palettes dramatically
//! on sparse graphs (`κ ≤ ∆` always; on preferential-attachment graphs
//! `κ ≪ ∆`). Their semi-streaming algorithm is palette sparsification over
//! a `κ(1+ε)`-size palette: each vertex samples `Θ(log n / ε)` colors,
//! only conflict edges are stored, and the conflict graph is list-colored
//! offline in reverse degeneracy order.
//!
//! The paper reproduced here cites BCG20 for two reasons we exercise:
//! its `(degeneracy+1)`-coloring is the offline subroutine of Algorithm
//! 2's fast-vertex blocks, and its κ-vs-∆ palette gap motivates the
//! degeneracy experiments. Like every palette-sparsification scheme it is
//! **non-robust** (the sampled lists are fixed before the stream).
//!
//! `κ` is a constructor parameter: the theory obtains it from a separate
//! estimation procedure; experiments here compute it offline (see
//! [`Bcg20Colorer::for_graph`]). Guessing `κ` too low surfaces as honest
//! completion failures, never as a silent bad coloring.

use sc_graph::{degeneracy_ordering, Color, Coloring, Edge, Graph};
use sc_hash::SplitMix64;
use sc_stream::{
    counter_bits, edge_bits, CacheStats, QueryCache, SpaceMeter, StateReader, StateWriter,
    StreamingColorer,
};

/// The incremental conflict-graph state. The answer is recomputed only
/// when the *conflict* graph grew — non-conflict insertions (the common
/// case: lists rarely intersect) reuse the previous answer verbatim.
///
/// Unlike the other colorers there is no sub-graph patch: the reverse
/// degeneracy order is a global, insertion-order-sensitive function of the
/// whole conflict graph, so any growth is "invalidation too large" and
/// falls back to a full recolor (on the incrementally maintained mirror,
/// which still saves the per-query graph rebuild). Harness bookkeeping —
/// never charged to the meter.
#[derive(Debug, Clone)]
struct ConflictState {
    /// Mirror of `Graph::from_edges` over the conflict edges
    /// (append-only, so adjacency order matches a scratch rebuild).
    mirror: Graph,
    /// The query answer for the mirrored conflict prefix.
    out: Coloring,
    /// Exhausted-list events in that answer (a scratch query re-observes
    /// them every time; the incremental path must too).
    failures_per_query: u64,
    /// Conflict edges already mirrored.
    synced: usize,
}

/// The BCG20-style degeneracy-palette colorer.
#[derive(Debug, Clone)]
pub struct Bcg20Colorer {
    n: usize,
    palette: u64,
    lists: Vec<Vec<Color>>,
    conflict_edges: Vec<Edge>,
    meter: SpaceMeter,
    failures: u64,
    /// Scratch bitset (one bit per palette color) for the batched path.
    scratch: Vec<u64>,
    cache: QueryCache<ConflictState>,
}

impl Bcg20Colorer {
    /// Creates the colorer for degeneracy (estimate) `kappa` and slack
    /// `epsilon`; each vertex samples `list_size` colors from the palette
    /// `[⌈(1+ε)(κ+1)⌉]`.
    pub fn new(n: usize, kappa: usize, epsilon: f64, list_size: usize, seed: u64) -> Self {
        assert!(epsilon >= 0.0, "negative slack");
        let palette = (((kappa + 1) as f64) * (1.0 + epsilon)).ceil() as u64;
        let list_size = list_size.max(1).min(palette as usize);
        let mut rng = SplitMix64::new(seed);
        let lists: Vec<Vec<Color>> = (0..n)
            .map(|_| {
                let mut l = std::collections::BTreeSet::new();
                while l.len() < list_size {
                    l.insert(rng.below(palette));
                }
                l.into_iter().collect()
            })
            .collect();
        let mut meter = SpaceMeter::new();
        meter.charge(n as u64 * list_size as u64 * counter_bits(palette));
        let scratch = vec![0u64; (palette as usize).div_ceil(64)];
        Self {
            n,
            palette,
            lists,
            conflict_edges: Vec::new(),
            meter,
            failures: 0,
            scratch,
            cache: QueryCache::new(),
        }
    }

    /// Convenience for experiments: computes the exact degeneracy of `g`
    /// offline and sizes the lists at `⌈4 log₂ n⌉` (the theory's
    /// `Θ(log n)` with a practical constant).
    pub fn for_graph(g: &Graph, epsilon: f64, seed: u64) -> Self {
        let all: Vec<u32> = (0..g.n() as u32).collect();
        let kappa = degeneracy_ordering(g, &all).degeneracy;
        let list_size = (4.0 * (g.n().max(2) as f64).log2()).ceil() as usize;
        Self::new(g.n(), kappa, epsilon, list_size, seed)
    }

    /// The palette size `⌈(1+ε)(κ+1)⌉` this instance colors within.
    pub fn palette(&self) -> u64 {
        self.palette
    }

    /// Completion failures observed so far (exhausted lists at query).
    pub fn failures(&self) -> u64 {
        self.failures
    }

    /// Number of stored conflict edges.
    pub fn stored_edges(&self) -> usize {
        self.conflict_edges.len()
    }

    /// Batched candidate census: decides `lists_intersect` for every
    /// chunk edge, loading each distinct left endpoint's list into the
    /// scratch bitset once per *group* of edges sharing it rather than
    /// merge-scanning both lists per edge.
    fn census(&mut self, edges: &[Edge]) -> Vec<bool> {
        let mut keep = vec![false; edges.len()];
        // Group by left endpoint, preserving nothing about order — the
        // results are written back positionally, so the caller's stream
        // order is untouched.
        let mut by_u: Vec<u32> = (0..edges.len() as u32).collect();
        by_u.sort_unstable_by_key(|&k| edges[k as usize].u());
        let mut loaded: Option<u32> = None;
        for &k in &by_u {
            let e = edges[k as usize];
            if loaded != Some(e.u()) {
                if let Some(prev) = loaded {
                    for &c in &self.lists[prev as usize] {
                        self.scratch[(c / 64) as usize] &= !(1u64 << (c % 64));
                    }
                }
                for &c in &self.lists[e.u() as usize] {
                    self.scratch[(c / 64) as usize] |= 1u64 << (c % 64);
                }
                loaded = Some(e.u());
            }
            keep[k as usize] = self.lists[e.v() as usize]
                .iter()
                .any(|&c| self.scratch[(c / 64) as usize] & (1u64 << (c % 64)) != 0);
        }
        if let Some(prev) = loaded {
            for &c in &self.lists[prev as usize] {
                self.scratch[(c / 64) as usize] &= !(1u64 << (c % 64));
            }
        }
        keep
    }

    /// Reverse-degeneracy list coloring of a conflict graph — the shared
    /// core of [`query`](StreamingColorer::query) and the incremental
    /// path. Returns the coloring and the exhausted-list count.
    fn color_conflicts(&self, g: &Graph) -> (Coloring, u64) {
        let all: Vec<u32> = (0..self.n as u32).collect();
        let order: Vec<u32> = degeneracy_ordering(g, &all).order.into_iter().rev().collect();
        let mut coloring = Coloring::empty(self.n);
        let mut failures = 0u64;
        for &x in &order {
            let taken: Vec<Color> =
                g.neighbors(x).iter().filter_map(|&y| coloring.get(y)).collect();
            match self.lists[x as usize].iter().find(|c| !taken.contains(c)) {
                Some(&c) => coloring.set(x, c),
                None => {
                    // Honest failure: the validator will catch the clash.
                    failures += 1;
                    coloring.set(x, self.lists[x as usize][0]);
                }
            }
        }
        (coloring, failures)
    }

    fn lists_intersect(&self, u: u32, v: u32) -> bool {
        let (a, b) = (&self.lists[u as usize], &self.lists[v as usize]);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Equal => return true,
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
            }
        }
        false
    }
}

impl StreamingColorer for Bcg20Colorer {
    fn process(&mut self, e: Edge) {
        assert!((e.v() as usize) < self.n, "edge {e} out of range");
        if self.lists_intersect(e.u(), e.v()) {
            self.conflict_edges.push(e);
            self.meter.charge(edge_bits(self.n));
        }
        self.cache.advance(1);
    }

    fn process_batch(&mut self, edges: &[Edge]) {
        for &e in edges {
            assert!((e.v() as usize) < self.n, "edge {e} out of range");
        }
        let keep = self.census(edges);
        let before = self.conflict_edges.len();
        self.conflict_edges.extend(edges.iter().zip(&keep).filter(|(_, &k)| k).map(|(&e, _)| e));
        let stored = (self.conflict_edges.len() - before) as u64;
        self.meter.charge(stored * edge_bits(self.n));
        self.cache.advance(edges.len() as u64);
    }

    fn query(&mut self) -> Coloring {
        let g = Graph::from_edges(self.n, self.conflict_edges.iter().copied());
        let (coloring, failures) = self.color_conflicts(&g);
        self.failures += failures;
        coloring
    }

    fn query_incremental(&mut self) -> Coloring {
        if let Some(s) = self.cache.fresh() {
            let out = s.out.clone();
            let f = s.failures_per_query;
            self.failures += f;
            return out;
        }
        let state = match self.cache.take_for_patch() {
            Some((_, mut s)) => {
                if s.synced == self.conflict_edges.len() {
                    // Edges arrived, but none survived the conflict
                    // filter: the answer is unchanged.
                    s
                } else {
                    for &e in &self.conflict_edges[s.synced..] {
                        s.mirror.add_edge(e);
                    }
                    s.synced = self.conflict_edges.len();
                    let (out, failures_per_query) = self.color_conflicts(&s.mirror);
                    ConflictState { out, failures_per_query, ..s }
                }
            }
            None => {
                let mirror = Graph::from_edges(self.n, self.conflict_edges.iter().copied());
                let (out, failures_per_query) = self.color_conflicts(&mirror);
                ConflictState { mirror, out, failures_per_query, synced: self.conflict_edges.len() }
            }
        };
        self.failures += state.failures_per_query;
        let out = state.out.clone();
        self.cache.install(state);
        out
    }

    fn query_cache_stats(&self) -> Option<CacheStats> {
        Some(self.cache.stats())
    }

    fn peak_space_bits(&self) -> u64 {
        self.meter.peak_bits()
    }

    fn encode_state(&self) -> Result<String, String> {
        let mut w = StateWriter::new();
        w.field("algo", self.name());
        w.edges("conflicts", &self.conflict_edges);
        w.field("space_cur", self.meter.current_bits());
        w.field("space_peak", self.meter.peak_bits());
        w.field("failures", self.failures);
        w.field("epoch", self.cache.epoch());
        Ok(w.finish())
    }

    fn decode_state(&mut self, state: &str) -> Result<(), String> {
        let mut r = StateReader::new(state);
        let algo = r.expect("algo")?;
        if algo != self.name() {
            return Err(format!("state: algo {algo:?} is not {:?}", self.name()));
        }
        let conflicts = r.edges_field("conflicts", self.n)?;
        let space_cur = r.u64_field("space_cur")?;
        let space_peak = r.u64_field("space_peak")?;
        let failures = r.u64_field("failures")?;
        let epoch = r.u64_field("epoch")?;
        r.done()?;
        // Every stored edge must really be a conflict edge under the
        // (seed-rebuilt) lists — validated, not trusted.
        for &e in &conflicts {
            if !self.lists_intersect(e.u(), e.v()) {
                return Err(format!("state: conflicts: edge {e} is not a conflict edge"));
            }
        }
        self.conflict_edges = conflicts;
        self.meter =
            SpaceMeter::restored(space_cur, space_peak).map_err(|e| format!("state: {e}"))?;
        self.failures = failures;
        self.cache.restore_at_epoch(epoch);
        Ok(())
    }

    fn name(&self) -> &'static str {
        "bcg20-degeneracy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_graph::generators;
    use sc_stream::run_oblivious;

    #[test]
    fn sparse_graphs_get_far_below_delta_palettes() {
        // Preferential attachment: κ ≈ k while ∆ can be much larger.
        let g = generators::preferential_attachment(400, 3, 60, 5);
        let all: Vec<u32> = (0..g.n() as u32).collect();
        let kappa = degeneracy_ordering(&g, &all).degeneracy;
        assert!(kappa * 3 < g.max_degree(), "workload not skewed enough");
        let mut c = Bcg20Colorer::for_graph(&g, 0.5, 9);
        let out = run_oblivious(&mut c, generators::shuffled_edges(&g, 2));
        assert!(out.is_proper_total(&g));
        assert_eq!(c.failures(), 0);
        assert!(out.palette_span() <= c.palette());
        assert!(
            (out.palette_span() as usize) < g.max_degree(),
            "degeneracy palette {} should beat ∆ = {}",
            out.palette_span(),
            g.max_degree()
        );
    }

    #[test]
    fn proper_on_random_streams() {
        for seed in 0..4u64 {
            let g = generators::gnp_with_max_degree(150, 10, 0.3, seed);
            let mut c = Bcg20Colorer::for_graph(&g, 1.0, seed + 3);
            let out = run_oblivious(&mut c, generators::shuffled_edges(&g, seed));
            assert!(out.is_proper_total(&g), "seed {seed}");
            assert_eq!(c.failures(), 0);
        }
    }

    #[test]
    fn trees_need_about_two_colors() {
        // A star is 1-degenerate: palette ⌈(1+ε)·2⌉.
        let g = generators::star(100);
        let mut c = Bcg20Colorer::for_graph(&g, 0.5, 1);
        assert_eq!(c.palette(), 3);
        let out = run_oblivious(&mut c, g.edges());
        assert!(out.is_proper_total(&g));
        assert_eq!(c.failures(), 0);
    }

    #[test]
    fn underestimating_kappa_fails_loudly() {
        // K10 has κ = 9; pretend κ = 1 with single-color lists.
        let g = generators::complete(10);
        let mut c = Bcg20Colorer::new(10, 1, 0.0, 1, 3);
        let out = run_oblivious(&mut c, g.edges());
        assert!(c.failures() > 0);
        assert!(!out.is_proper_total(&g));
    }

    #[test]
    fn stores_only_conflict_edges() {
        let g = generators::gnp_with_max_degree(300, 20, 0.3, 11);
        let mut c = Bcg20Colorer::new(300, 20, 0.5, 6, 4);
        run_oblivious(&mut c, g.edges());
        assert!(
            c.stored_edges() < g.m(),
            "conflict graph ({}) should be sparser than G ({})",
            c.stored_edges(),
            g.m()
        );
    }

    #[test]
    fn clique_with_exact_kappa_succeeds() {
        let g = generators::complete(12);
        let mut c = Bcg20Colorer::new(12, 11, 0.0, 12, 7);
        let out = run_oblivious(&mut c, g.edges());
        assert!(out.is_proper_total(&g));
        assert_eq!(out.num_distinct_colors(), 12);
    }
}
