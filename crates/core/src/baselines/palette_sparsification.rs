//! ACK19-style palette sparsification: the randomized, **non-robust**
//! single-pass `(∆+1)`-coloring baseline.
//!
//! Each vertex samples a list `L(v)` of `Θ(log n)` colors from `[∆+1]`;
//! the stream pass stores only *conflict edges* (`L(u) ∩ L(v) ≠ ∅`), of
//! which there are `Õ(n)` w.h.p.; at query time the conflict graph is
//! list-colored from the sampled lists offline.
//!
//! Against an **oblivious** stream this succeeds w.h.p. (Assadi–Chen–
//! Khanna 2019 prove a proper list-coloring of the conflict graph exists;
//! we complete greedily in a degeneracy order, which succeeds in practice
//! — failures are surfaced, not hidden). Against an **adaptive** adversary
//! it is provably breakable — robust algorithms need `Ω(∆²)` colors
//! CGS22 — and experiment F5 demonstrates the break: the adversary keeps
//! joining same-colored vertex pairs, draining the fixed sampled lists
//! until no proper completion exists.
//!
//! When a vertex's list is exhausted the query assigns its first sampled
//! color anyway (an *honest* failure: the returned coloring is improper
//! and the game validator catches it) and increments [`PaletteSparsification::failures`].

use sc_graph::{degeneracy_ordering, Color, Coloring, Edge, Graph};
use sc_hash::SplitMix64;
use sc_stream::{counter_bits, edge_bits, SpaceMeter, StateReader, StateWriter, StreamingColorer};

/// The palette-sparsification colorer.
#[derive(Debug, Clone)]
pub struct PaletteSparsification {
    n: usize,
    /// Sampled lists `L(v) ⊆ [∆+1]`, sorted.
    lists: Vec<Vec<Color>>,
    /// Stored conflict edges.
    conflict_edges: Vec<Edge>,
    meter: SpaceMeter,
    failures: u64,
}

impl PaletteSparsification {
    /// Creates the colorer: each vertex samples `list_size` colors from
    /// `[∆+1]` (the theory takes `list_size = Θ(log n)`).
    pub fn new(n: usize, delta: usize, list_size: usize, seed: u64) -> Self {
        let palette = delta as u64 + 1;
        let list_size = list_size.max(1).min(palette as usize);
        let mut rng = SplitMix64::new(seed);
        let lists: Vec<Vec<Color>> = (0..n)
            .map(|_| {
                let mut l = std::collections::BTreeSet::new();
                while l.len() < list_size {
                    l.insert(rng.below(palette));
                }
                l.into_iter().collect()
            })
            .collect();
        let mut meter = SpaceMeter::new();
        meter.charge(n as u64 * list_size as u64 * counter_bits(palette));
        Self { n, lists, conflict_edges: Vec::new(), meter, failures: 0 }
    }

    /// Standard theory sizing: `list_size = ⌈4 log₂ n⌉`.
    pub fn with_theory_lists(n: usize, delta: usize, seed: u64) -> Self {
        let list_size = (4.0 * (n.max(2) as f64).log2()).ceil() as usize;
        Self::new(n, delta, list_size, seed)
    }

    /// Sampled list of a vertex (diagnostics).
    pub fn list_of(&self, v: u32) -> &[Color] {
        &self.lists[v as usize]
    }

    /// Completion failures observed so far (exhausted lists at query).
    pub fn failures(&self) -> u64 {
        self.failures
    }

    /// Number of stored conflict edges.
    pub fn stored_edges(&self) -> usize {
        self.conflict_edges.len()
    }

    fn lists_intersect(&self, u: u32, v: u32) -> bool {
        // Both lists are sorted: linear merge.
        let (a, b) = (&self.lists[u as usize], &self.lists[v as usize]);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Equal => return true,
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
            }
        }
        false
    }
}

impl StreamingColorer for PaletteSparsification {
    fn process(&mut self, e: Edge) {
        assert!((e.v() as usize) < self.n, "edge {e} out of range");
        if self.lists_intersect(e.u(), e.v()) {
            self.conflict_edges.push(e);
            self.meter.charge(edge_bits(self.n));
        }
    }

    fn query(&mut self) -> Coloring {
        let g = Graph::from_edges(self.n, self.conflict_edges.iter().copied());
        let all: Vec<u32> = (0..self.n as u32).collect();
        // Color in reverse degeneracy order — each vertex then sees few
        // colored conflict neighbors, maximizing completion probability.
        let order: Vec<u32> = degeneracy_ordering(&g, &all).order.into_iter().rev().collect();
        let mut coloring = Coloring::empty(self.n);
        for &x in &order {
            let taken: Vec<Color> =
                g.neighbors(x).iter().filter_map(|&y| coloring.get(y)).collect();
            match self.lists[x as usize].iter().find(|c| !taken.contains(c)) {
                Some(&c) => coloring.set(x, c),
                None => {
                    // Honest failure: commit a conflicting color so the
                    // validator can see the break.
                    self.failures += 1;
                    coloring.set(x, self.lists[x as usize][0]);
                }
            }
        }
        coloring
    }

    fn peak_space_bits(&self) -> u64 {
        self.meter.peak_bits()
    }

    fn encode_state(&self) -> Result<String, String> {
        let mut w = StateWriter::new();
        w.field("algo", self.name());
        w.edges("conflicts", &self.conflict_edges);
        w.field("space_cur", self.meter.current_bits());
        w.field("space_peak", self.meter.peak_bits());
        w.field("failures", self.failures);
        Ok(w.finish())
    }

    fn decode_state(&mut self, state: &str) -> Result<(), String> {
        let mut r = StateReader::new(state);
        let algo = r.expect("algo")?;
        if algo != self.name() {
            return Err(format!("state: algo {algo:?} is not {:?}", self.name()));
        }
        let conflicts = r.edges_field("conflicts", self.n)?;
        let space_cur = r.u64_field("space_cur")?;
        let space_peak = r.u64_field("space_peak")?;
        let failures = r.u64_field("failures")?;
        r.done()?;
        for &e in &conflicts {
            if !self.lists_intersect(e.u(), e.v()) {
                return Err(format!("state: conflicts: edge {e} is not a conflict edge"));
            }
        }
        self.conflict_edges = conflicts;
        self.meter =
            SpaceMeter::restored(space_cur, space_peak).map_err(|e| format!("state: {e}"))?;
        self.failures = failures;
        Ok(())
    }

    fn name(&self) -> &'static str {
        "palette-sparsification"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_graph::generators;
    use sc_stream::run_oblivious;

    #[test]
    fn oblivious_streams_succeed_whp() {
        for seed in 0..4u64 {
            let g = generators::gnp_with_max_degree(80, 12, 0.4, seed);
            let mut ps = PaletteSparsification::with_theory_lists(80, 12, seed + 5);
            let c = run_oblivious(&mut ps, generators::shuffled_edges(&g, seed));
            assert!(c.is_proper_total(&g), "seed {seed}");
            assert_eq!(ps.failures(), 0);
            assert!(c.palette_span() <= 13, "palette must be [∆+1]");
        }
    }

    #[test]
    fn clique_with_full_lists_always_works() {
        let g = generators::complete(10);
        let mut ps = PaletteSparsification::new(10, 9, 10, 3);
        let c = run_oblivious(&mut ps, g.edges());
        assert!(c.is_proper_total(&g));
        // All lists are the whole palette ⇒ every edge is a conflict edge.
        assert_eq!(ps.stored_edges(), 45);
    }

    #[test]
    fn sparsification_stores_a_fraction() {
        let g = generators::gnp_with_max_degree(200, 32, 0.4, 7);
        let mut ps = PaletteSparsification::new(200, 32, 8, 11);
        run_oblivious(&mut ps, g.edges());
        assert!(
            ps.stored_edges() < g.m(),
            "conflict graph should be sparser than G ({} vs {})",
            ps.stored_edges(),
            g.m()
        );
    }

    #[test]
    fn tiny_lists_fail_loudly_on_dense_graphs() {
        // With 1-color lists a triangle cannot be properly completed.
        let g = generators::complete(30);
        let mut ps = PaletteSparsification::new(30, 29, 1, 1);
        let c = run_oblivious(&mut ps, g.edges());
        assert!(ps.failures() > 0, "1-color lists on K_30 must fail");
        assert!(!c.is_proper_total(&g));
    }

    #[test]
    fn lists_are_sorted_distinct_and_in_palette() {
        let ps = PaletteSparsification::new(50, 15, 6, 9);
        for v in 0..50u32 {
            let l = ps.list_of(v);
            assert_eq!(l.len(), 6);
            assert!(l.windows(2).all(|w| w[0] < w[1]));
            assert!(l.iter().all(|&c| c <= 15));
        }
    }

    #[test]
    fn seed_determinism() {
        let a = PaletteSparsification::new(20, 8, 4, 42);
        let b = PaletteSparsification::new(20, 8, 4, 42);
        for v in 0..20u32 {
            assert_eq!(a.list_of(v), b.list_of(v));
        }
    }
}
