//! BG18-style randomized one-pass `O(∆)`-coloring (non-robust).
//!
//! Bera–Ghosh (2018) opened the streaming-coloring line with a
//! semi-streaming `O(∆)`-coloring: hash every vertex into one of `∆`
//! buckets, store only intra-bucket (monochromatic) edges — in
//! expectation `m/∆ ≤ n/2` of them — and at query time color each bucket
//! with its own fresh palette by greedy first-fit on the stored subgraph.
//! Intra-bucket degrees are `O(log n / log log n)` w.h.p., so the total
//! palette is `∆ · O(log n / log log n) = Õ(∆)` (and `O(∆)` with a larger
//! bucket count).
//!
//! The paper quotes this algorithm twice: as the "quite simple
//! single-pass randomized `O(∆)`-coloring" contrasting with the hardness
//! of `(∆+1)` (§1.1), and implicitly as the structure its robust
//! algorithms harden (the `h`-sketches of Algorithm 2 are exactly this
//! bucket trick applied per epoch). Like palette sparsification it is
//! **non-robust**: the bucket hash is fixed up front, so an adaptive
//! adversary can flood one bucket.

use crate::robust::sketch::{group_by_block, BlockMemo, MonoSketch};
use sc_graph::{greedy_color_in_order, Coloring, Edge, Graph};
use sc_hash::{OracleFn, SplitMix64};
use sc_stream::{edge_bits, SpaceMeter, StreamingColorer};

/// The BG18-style one-pass colorer.
#[derive(Debug, Clone)]
pub struct Bg18Colorer {
    n: usize,
    sketch: MonoSketch,
    meter: SpaceMeter,
    /// Per-chunk hash memo for the batched ingestion path.
    memo: BlockMemo,
}

impl Bg18Colorer {
    /// Creates the colorer with `buckets` hash buckets (use `≈ ∆` for the
    /// `Õ(∆)`-color / `Õ(n)`-space point).
    pub fn new(n: usize, buckets: u64, seed: u64) -> Self {
        let f = OracleFn::new(SplitMix64::new(seed).fork(4).next_u64(), 0, buckets.max(1));
        Self { n, sketch: MonoSketch::new(f), meter: SpaceMeter::new(), memo: BlockMemo::new(n) }
    }

    /// Number of stored (intra-bucket) edges.
    pub fn stored_edges(&self) -> usize {
        self.sketch.len()
    }
}

impl StreamingColorer for Bg18Colorer {
    fn process(&mut self, e: Edge) {
        assert!((e.v() as usize) < self.n, "edge {e} out of range");
        if self.sketch.offer(e) {
            self.meter.charge(edge_bits(self.n));
        }
    }

    fn process_batch(&mut self, edges: &[Edge]) {
        for &e in edges {
            assert!((e.v() as usize) < self.n, "edge {e} out of range");
        }
        let stored = self.sketch.offer_batch(edges, &mut self.memo);
        self.meter.charge(stored as u64 * edge_bits(self.n));
    }

    fn query(&mut self) -> Coloring {
        let mut coloring = Coloring::empty(self.n);
        let mut offset = 0u64;
        let g = Graph::from_edges(self.n, self.sketch.edges().iter().copied());
        let all: Vec<u32> = (0..self.n as u32).collect();
        for (_, members) in group_by_block(&self.sketch, &all) {
            let span = greedy_color_in_order(&g, &mut coloring, &members, offset);
            offset += span.max(1);
        }
        coloring
    }

    fn peak_space_bits(&self) -> u64 {
        self.meter.peak_bits()
    }

    fn name(&self) -> &'static str {
        "bg18-bucket"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_graph::generators;
    use sc_stream::run_oblivious;

    #[test]
    fn proper_coloring_on_random_streams() {
        for seed in 0..4u64 {
            let g = generators::gnp_with_max_degree(120, 12, 0.4, seed);
            let mut c = Bg18Colorer::new(120, 12, seed + 1);
            let out = run_oblivious(&mut c, generators::shuffled_edges(&g, seed));
            assert!(out.is_proper_total(&g), "seed {seed}");
        }
    }

    #[test]
    fn palette_is_o_delta_not_delta_squared() {
        let delta = 32usize;
        let n = 800usize;
        let g = generators::random_with_exact_max_degree(n, delta, 3);
        let mut c = Bg18Colorer::new(n, delta as u64, 9);
        let out = run_oblivious(&mut c, g.edges());
        assert!(out.is_proper_total(&g));
        let colors = out.num_distinct_colors();
        assert!(colors < 20 * delta, "{colors} colors is not Õ(∆) for ∆ = {delta}");
    }

    #[test]
    fn stores_about_m_over_delta_edges() {
        let delta = 16usize;
        let g = generators::gnp_with_max_degree(400, delta, 0.3, 5);
        let mut c = Bg18Colorer::new(400, delta as u64, 2);
        run_oblivious(&mut c, g.edges());
        let expect = g.m() / delta;
        assert!(
            c.stored_edges() < 4 * expect + 40,
            "stored {} vs expected ≈ {expect}",
            c.stored_edges()
        );
    }

    #[test]
    fn single_bucket_degenerates_to_store_everything() {
        let g = generators::complete(10);
        let mut c = Bg18Colorer::new(10, 1, 1);
        let out = run_oblivious(&mut c, g.edges());
        assert!(out.is_proper_total(&g));
        assert_eq!(c.stored_edges(), 45);
        assert_eq!(out.num_distinct_colors(), 10);
    }
}
