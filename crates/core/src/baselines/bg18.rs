//! BG18-style randomized one-pass `O(∆)`-coloring (non-robust).
//!
//! Bera–Ghosh (2018) opened the streaming-coloring line with a
//! semi-streaming `O(∆)`-coloring: hash every vertex into one of `∆`
//! buckets, store only intra-bucket (monochromatic) edges — in
//! expectation `m/∆ ≤ n/2` of them — and at query time color each bucket
//! with its own fresh palette by greedy first-fit on the stored subgraph.
//! Intra-bucket degrees are `O(log n / log log n)` w.h.p., so the total
//! palette is `∆ · O(log n / log log n) = Õ(∆)` (and `O(∆)` with a larger
//! bucket count).
//!
//! The paper quotes this algorithm twice: as the "quite simple
//! single-pass randomized `O(∆)`-coloring" contrasting with the hardness
//! of `(∆+1)` (§1.1), and implicitly as the structure its robust
//! algorithms harden (the `h`-sketches of Algorithm 2 are exactly this
//! bucket trick applied per epoch). Like palette sparsification it is
//! **non-robust**: the bucket hash is fixed up front, so an adaptive
//! adversary can flood one bucket.

use crate::robust::sketch::{group_by_block, EvalScratch, MonoSketch};
use sc_graph::{greedy_color_in_order, Color, Coloring, Edge, Graph};
use sc_hash::{OracleFn, SplitMix64};
use sc_stream::{
    edge_bits, CacheStats, QueryCache, SpaceMeter, StateReader, StateWriter, StreamingColorer,
};

/// The incremental per-bucket query state. The bucket hash is fixed for
/// the whole run, so the vertex partition is computed once; a new stored
/// (monochromatic) edge dirties exactly its own bucket, whose sub-coloring
/// is then recomputed in isolation and re-chained into the shared palette.
/// Harness bookkeeping — never charged to the meter.
#[derive(Debug, Clone)]
struct BucketState {
    /// Mirror of `Graph::from_edges` over the stored edges (append-only,
    /// so adjacency order matches a scratch rebuild).
    mirror: Graph,
    /// `group_by_block` over all vertices: `(block, members)`, static.
    groups: Vec<(u64, Vec<u32>)>,
    /// `group_of[v]` = index into `groups` (buckets are a partition).
    group_of: Vec<u32>,
    /// Per group: colors relative to the group's palette offset (aligned
    /// with its member list) and the group's span.
    rel: Vec<(Vec<Color>, u64)>,
    /// Assembled absolute coloring (the query answer).
    out: Coloring,
    /// All-`None` scratch coloring reused by per-group recomputes.
    scratch: Coloring,
    /// Stored edges already mirrored.
    synced: usize,
}

/// The BG18-style one-pass colorer.
#[derive(Debug, Clone)]
pub struct Bg18Colorer {
    n: usize,
    sketch: MonoSketch,
    meter: SpaceMeter,
    /// Pooled endpoint/hash-value columns for the batched ingestion path.
    scratch: EvalScratch,
    cache: QueryCache<BucketState>,
}

impl Bg18Colorer {
    /// Creates the colorer with `buckets` hash buckets (use `≈ ∆` for the
    /// `Õ(∆)`-color / `Õ(n)`-space point).
    pub fn new(n: usize, buckets: u64, seed: u64) -> Self {
        let f = OracleFn::new(SplitMix64::new(seed).fork(4).next_u64(), 0, buckets.max(1));
        Self {
            n,
            sketch: MonoSketch::new(f),
            meter: SpaceMeter::new(),
            scratch: EvalScratch::new(),
            cache: QueryCache::new(),
        }
    }

    /// Number of stored (intra-bucket) edges.
    pub fn stored_edges(&self) -> usize {
        self.sketch.len()
    }

    /// Recomputes group `gi`'s relative sub-coloring on the mirror.
    ///
    /// Stored edges are monochromatic, so a member's mirror-neighbors all
    /// lie in the same group: the group's first-fit run is independent of
    /// every other group and of the palette offset it will be chained at.
    fn recolor_group(state: &mut BucketState, gi: usize) {
        let members = &state.groups[gi].1;
        for &m in members {
            state.scratch.unset(m);
        }
        let span = greedy_color_in_order(&state.mirror, &mut state.scratch, members, 0);
        let rel: Vec<Color> =
            members.iter().map(|&m| state.scratch.get(m).expect("group member colored")).collect();
        for &m in members {
            state.scratch.unset(m); // keep the scratch all-None
        }
        state.rel[gi] = (rel, span);
    }

    /// Chains every group's relative coloring into the absolute answer,
    /// advancing the palette by `span.max(1)` per group exactly as the
    /// from-scratch query does.
    fn assemble(state: &mut BucketState) {
        let mut offset: Color = 0;
        for (gi, (_, members)) in state.groups.iter().enumerate() {
            let (rel, span) = &state.rel[gi];
            for (&m, &c) in members.iter().zip(rel) {
                state.out.set(m, offset + c);
            }
            offset += (*span).max(1);
        }
    }

    /// Builds the bucket state from scratch (cache-miss path).
    fn rebuild_state(&self) -> BucketState {
        let all: Vec<u32> = (0..self.n as u32).collect();
        let groups = group_by_block(&self.sketch, &all);
        let mut group_of = vec![0u32; self.n];
        for (gi, (_, members)) in groups.iter().enumerate() {
            for &m in members {
                group_of[m as usize] = gi as u32;
            }
        }
        let mut state = BucketState {
            mirror: Graph::from_edges(self.n, self.sketch.edges().iter().copied()),
            rel: vec![(Vec::new(), 0); groups.len()],
            groups,
            group_of,
            out: Coloring::empty(self.n),
            scratch: Coloring::empty(self.n),
            synced: self.sketch.len(),
        };
        for gi in 0..state.groups.len() {
            Self::recolor_group(&mut state, gi);
        }
        Self::assemble(&mut state);
        state
    }
}

impl StreamingColorer for Bg18Colorer {
    fn process(&mut self, e: Edge) {
        assert!((e.v() as usize) < self.n, "edge {e} out of range");
        if self.sketch.offer(e) {
            self.meter.charge(edge_bits(self.n));
        }
        self.cache.advance(1);
    }

    fn process_batch(&mut self, edges: &[Edge]) {
        for &e in edges {
            assert!((e.v() as usize) < self.n, "edge {e} out of range");
        }
        let stored = self.sketch.offer_batch(edges, &mut self.scratch);
        self.meter.charge(stored as u64 * edge_bits(self.n));
        self.cache.advance(edges.len() as u64);
    }

    fn query(&mut self) -> Coloring {
        let mut coloring = Coloring::empty(self.n);
        let mut offset = 0u64;
        let g = Graph::from_edges(self.n, self.sketch.edges().iter().copied());
        let all: Vec<u32> = (0..self.n as u32).collect();
        for (_, members) in group_by_block(&self.sketch, &all) {
            let span = greedy_color_in_order(&g, &mut coloring, &members, offset);
            offset += span.max(1);
        }
        coloring
    }

    fn query_incremental(&mut self) -> Coloring {
        if let Some(s) = self.cache.fresh() {
            return s.out.clone();
        }
        let state = match self.cache.take_for_patch() {
            Some((_, mut s)) => {
                // Every stored edge is monochromatic: it dirties exactly
                // the bucket holding both its endpoints.
                let mut dirty: Vec<usize> = Vec::new();
                for &e in &self.sketch.edges()[s.synced..] {
                    if s.mirror.add_edge(e) {
                        dirty.push(s.group_of[e.u() as usize] as usize);
                    }
                }
                s.synced = self.sketch.len();
                dirty.sort_unstable();
                dirty.dedup();
                if !dirty.is_empty() {
                    for gi in dirty {
                        Self::recolor_group(&mut s, gi);
                    }
                    // A changed span shifts every later bucket's offset.
                    Self::assemble(&mut s);
                }
                s
            }
            None => self.rebuild_state(),
        };
        let out = state.out.clone();
        self.cache.install(state);
        out
    }

    fn query_cache_stats(&self) -> Option<CacheStats> {
        Some(self.cache.stats())
    }

    fn peak_space_bits(&self) -> u64 {
        self.meter.peak_bits()
    }

    fn encode_state(&self) -> Result<String, String> {
        let mut w = StateWriter::new();
        w.field("algo", self.name());
        w.edges("edges", self.sketch.edges());
        w.field("space_cur", self.meter.current_bits());
        w.field("space_peak", self.meter.peak_bits());
        w.field("epoch", self.cache.epoch());
        Ok(w.finish())
    }

    fn decode_state(&mut self, state: &str) -> Result<(), String> {
        let mut r = StateReader::new(state);
        let algo = r.expect("algo")?;
        if algo != self.name() {
            return Err(format!("state: algo {algo:?} is not {:?}", self.name()));
        }
        let edges = r.edges_field("edges", self.n)?;
        let space_cur = r.u64_field("space_cur")?;
        let space_peak = r.u64_field("space_peak")?;
        let epoch = r.u64_field("epoch")?;
        r.done()?;
        // Re-offer so monochromaticity is validated, not trusted.
        for e in edges {
            if !self.sketch.offer(e) {
                return Err(format!("state: edges: edge {e} is not monochromatic"));
            }
        }
        self.meter =
            SpaceMeter::restored(space_cur, space_peak).map_err(|e| format!("state: {e}"))?;
        self.cache.restore_at_epoch(epoch);
        Ok(())
    }

    fn name(&self) -> &'static str {
        "bg18-bucket"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_graph::generators;
    use sc_stream::run_oblivious;

    #[test]
    fn proper_coloring_on_random_streams() {
        for seed in 0..4u64 {
            let g = generators::gnp_with_max_degree(120, 12, 0.4, seed);
            let mut c = Bg18Colorer::new(120, 12, seed + 1);
            let out = run_oblivious(&mut c, generators::shuffled_edges(&g, seed));
            assert!(out.is_proper_total(&g), "seed {seed}");
        }
    }

    #[test]
    fn palette_is_o_delta_not_delta_squared() {
        let delta = 32usize;
        let n = 800usize;
        let g = generators::random_with_exact_max_degree(n, delta, 3);
        let mut c = Bg18Colorer::new(n, delta as u64, 9);
        let out = run_oblivious(&mut c, g.edges());
        assert!(out.is_proper_total(&g));
        let colors = out.num_distinct_colors();
        assert!(colors < 20 * delta, "{colors} colors is not Õ(∆) for ∆ = {delta}");
    }

    #[test]
    fn stores_about_m_over_delta_edges() {
        let delta = 16usize;
        let g = generators::gnp_with_max_degree(400, delta, 0.3, 5);
        let mut c = Bg18Colorer::new(400, delta as u64, 2);
        run_oblivious(&mut c, g.edges());
        let expect = g.m() / delta;
        assert!(
            c.stored_edges() < 4 * expect + 40,
            "stored {} vs expected ≈ {expect}",
            c.stored_edges()
        );
    }

    #[test]
    fn single_bucket_degenerates_to_store_everything() {
        let g = generators::complete(10);
        let mut c = Bg18Colorer::new(10, 1, 1);
        let out = run_oblivious(&mut c, g.edges());
        assert!(out.is_proper_total(&g));
        assert_eq!(c.stored_edges(), 45);
        assert_eq!(out.num_distinct_colors(), 10);
    }
}
