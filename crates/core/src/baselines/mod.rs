//! Baselines the paper compares against (see DESIGN.md S4 for the
//! faithfulness discussion):
//!
//! * [`simple`] — offline greedy and the trivial `n`-coloring;
//! * [`batch_greedy`] — `O(∆)`-pass deterministic `(∆+1)`-coloring (the
//!   multi-pass comparator for experiment F6);
//! * [`palette_sparsification`] — ACK19-style randomized non-robust
//!   single-pass `(∆+1)`-coloring (the victim in experiment F5);
//! * [`cgs22`] — CGS22-style sketch-switching robust `O(∆³)`-coloring
//!   (the robust comparator for experiment F3);
//! * [`bg18`] — BG18-style randomized one-pass `Õ(∆)`-coloring;
//! * [`bcg20`] — BCG20-style degeneracy-based `κ(1+ε)`-coloring
//!   (non-robust; the sparse-graph comparator for the degeneracy
//!   experiment);
//! * [`hknt22`] — HKNT22-style `(deg+1)`-list palette sparsification
//!   (the randomized single-pass comparator for Theorem 2's
//!   deterministic multi-pass list coloring).

pub mod batch_greedy;
pub mod bcg20;
pub mod bg18;
pub mod cgs22;
pub mod hknt22;
pub mod palette_sparsification;
pub mod simple;

pub use batch_greedy::{batch_greedy_coloring, BatchGreedyReport};
pub use bcg20::Bcg20Colorer;
pub use bg18::Bg18Colorer;
pub use cgs22::Cgs22Colorer;
pub use hknt22::Hknt22Colorer;
pub use palette_sparsification::PaletteSparsification;
pub use simple::{offline_greedy, TrivialColorer};
