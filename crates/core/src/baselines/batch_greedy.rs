//! Batch-greedy: the simple deterministic multi-pass comparator.
//!
//! Colors vertices in batches of `⌈n/∆⌉` per pass, storing each batch's
//! full incident edge set (`≤ n·(∆+1)/∆ = O(n)` edges) and first-fit
//! coloring the batch against everything colored so far. A proper
//! `(∆+1)`-coloring in `O(∆)` passes and `O(n log n)` bits — the
//! pass-count baseline Theorem 1 beats exponentially (experiment F6).

use sc_graph::{greedy_color_in_order, Coloring, Graph, VertexId};
use sc_stream::{edge_bits, PassCounter, SpaceMeter, StreamSource};

/// Run report for the batch-greedy baseline.
#[derive(Debug, Clone)]
pub struct BatchGreedyReport {
    /// The proper `(∆+1)`-coloring.
    pub coloring: Coloring,
    /// Passes used (`⌈n / ⌈n/∆⌉⌉ ≈ ∆`).
    pub passes: u64,
    /// Peak space in bits.
    pub peak_space_bits: u64,
}

/// Deterministically `(∆+1)`-colors the stream in `O(∆)` passes.
pub fn batch_greedy_coloring<S: StreamSource + ?Sized>(
    stream: &S,
    n: usize,
    delta: usize,
) -> BatchGreedyReport {
    let counted = PassCounter::new(stream);
    let mut meter = SpaceMeter::new();
    meter.charge(n as u64 * sc_stream::color_bits(delta as u64 + 1));
    let mut coloring = Coloring::empty(n);
    let batch_size = (n / delta.max(1)).max(1);
    let mut next = 0u32;
    while (next as usize) < n {
        let lo = next;
        let hi = ((next as usize + batch_size).min(n)) as u32;
        let batch: Vec<VertexId> = (lo..hi).collect();
        next = hi;
        // Batches are contiguous vertex ranges, so membership is a range
        // check — no per-pass O(n) membership scratch.
        let mut local = Graph::empty(n);
        for item in counted.pass() {
            let Some(e) = item.as_edge() else { continue };
            if (lo..hi).contains(&e.u()) || (lo..hi).contains(&e.v()) {
                local.add_edge(e);
            }
        }
        meter.charge(local.m() as u64 * edge_bits(n));
        greedy_color_in_order(&local, &mut coloring, &batch, 0);
        meter.release(local.m() as u64 * edge_bits(n));
    }
    BatchGreedyReport { coloring, passes: counted.passes(), peak_space_bits: meter.peak_bits() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_graph::generators;
    use sc_stream::StoredStream;

    #[test]
    fn proper_delta_plus_one_coloring() {
        for seed in 0..3u64 {
            let g = generators::gnp_with_max_degree(50, 7, 0.4, seed);
            let stream = StoredStream::from_graph(&g);
            let r = batch_greedy_coloring(&stream, 50, 7);
            assert!(r.coloring.is_proper_total(&g));
            assert!(r.coloring.palette_span() <= 8);
        }
    }

    #[test]
    fn pass_count_is_about_delta() {
        let g = generators::random_with_exact_max_degree(128, 16, 1);
        let stream = StoredStream::from_graph(&g);
        let r = batch_greedy_coloring(&stream, 128, 16);
        assert!(r.coloring.is_proper_total(&g));
        assert!(r.passes >= 16 && r.passes <= 17, "passes = {}", r.passes);
    }

    #[test]
    fn single_batch_when_delta_one() {
        let g = generators::path(6);
        let stream = StoredStream::from_graph(&g);
        let r = batch_greedy_coloring(&stream, 6, 1);
        assert!(r.coloring.is_proper_total(&g));
        assert_eq!(r.passes, 1);
    }

    #[test]
    fn clique_uses_exactly_n_colors() {
        let g = generators::complete(9);
        let stream = StoredStream::from_graph(&g);
        let r = batch_greedy_coloring(&stream, 9, 8);
        assert!(r.coloring.is_proper_total(&g));
        assert_eq!(r.coloring.num_distinct_colors(), 9);
    }
}
