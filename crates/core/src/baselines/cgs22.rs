//! CGS22-style sketch-switching robust `O(∆³)`-coloring baseline.
//!
//! Chakrabarti–Ghosh–Stoeckl (ITCS 2022) gave the first robust coloring
//! algorithm: one coloring function `h_i : V → [∆²]` per epoch (buffer of
//! `n` edges), each `h_i`-sketch fed only the pre-epoch-`i` prefix
//! ("sketch switching" à la Ben-Eliezer et al.), and at query time each
//! `h_curr`-block is greedily `(degree+1)`-colored on `A_curr ∪ B` with a
//! fresh palette. Blocks can have internal degree up to `∆`, so the bound
//! is `∆² blocks × (∆+1) = O(∆³)` colors — exactly the baseline Theorem 3
//! improves to `O(∆^{5/2})` by adding the fast/slow split and degeneracy
//! coloring. Implemented here so experiment F3 compares the two shapes on
//! identical streams.

use crate::robust::sketch::{decode_sketch_bank, encode_sketch_bank, group_by_block, MonoSketch};
use sc_graph::{greedy_color_in_order, Coloring, Edge, Graph};
use sc_hash::{OracleFn, SplitMix64};
use sc_stream::{counter_bits, edge_bits, SpaceMeter, StateReader, StateWriter, StreamingColorer};

/// The CGS22-style robust colorer.
#[derive(Debug, Clone)]
pub struct Cgs22Colorer {
    n: usize,
    h_sketches: Vec<MonoSketch>,
    buffer: Vec<Edge>,
    curr: usize,
    num_epochs: usize,
    meter: SpaceMeter,
}

impl Cgs22Colorer {
    /// Creates the colorer for an `n`-vertex stream with degree bound `∆`.
    pub fn new(n: usize, delta: usize, seed: u64) -> Self {
        let delta = delta.max(1);
        let num_epochs = delta; // ≤ n∆/2 edges over buffers of n
        let range = (delta as u64 * delta as u64).max(1);
        let h_seed = SplitMix64::new(seed).fork(9).next_u64();
        let h_sketches = (0..num_epochs)
            .map(|i| MonoSketch::new(OracleFn::new(h_seed, i as u64, range)))
            .collect();
        let mut meter = SpaceMeter::new();
        meter.charge(n as u64 * counter_bits(delta as u64) + 128);
        Self { n, h_sketches, buffer: Vec::new(), curr: 1, num_epochs, meter }
    }

    /// Total stored edges (the `Õ(n)` space claim).
    pub fn stored_edges(&self) -> usize {
        self.buffer.len() + self.h_sketches.iter().map(MonoSketch::len).sum::<usize>()
    }
}

impl StreamingColorer for Cgs22Colorer {
    fn process(&mut self, e: Edge) {
        assert!((e.v() as usize) < self.n, "edge {e} out of range");
        let eb = edge_bits(self.n);
        if self.buffer.len() == self.n {
            self.meter.release(self.buffer.len() as u64 * eb);
            self.buffer.clear();
            self.curr += 1;
            assert!(self.curr <= self.num_epochs, "epoch overflow (degree budget violated)");
        }
        self.buffer.push(e);
        self.meter.charge(eb);
        for i in self.curr..self.num_epochs {
            if self.h_sketches[i].offer(e) {
                self.meter.charge(eb);
            }
        }
    }

    fn query(&mut self) -> Coloring {
        let n = self.n;
        let mut coloring = Coloring::empty(n);
        let mut offset = 0u64;
        let h_curr = &self.h_sketches[self.curr - 1];
        let mut g_blocks = Graph::empty(n);
        for e in h_curr.edges().iter().chain(self.buffer.iter()) {
            if h_curr.block_of(e.u()) == h_curr.block_of(e.v()) {
                g_blocks.add_edge(*e);
            }
        }
        let all: Vec<u32> = (0..n as u32).collect();
        for (_, members) in group_by_block(h_curr, &all) {
            let span = greedy_color_in_order(&g_blocks, &mut coloring, &members, offset);
            offset += span.max(1);
        }
        debug_assert!(coloring.is_total());
        coloring
    }

    fn peak_space_bits(&self) -> u64 {
        self.meter.peak_bits()
    }

    fn encode_state(&self) -> Result<String, String> {
        let mut w = StateWriter::new();
        w.field("algo", self.name());
        w.field("curr", self.curr);
        w.edges("buffer", &self.buffer);
        w.field("h", encode_sketch_bank(&self.h_sketches));
        w.field("space_cur", self.meter.current_bits());
        w.field("space_peak", self.meter.peak_bits());
        Ok(w.finish())
    }

    fn decode_state(&mut self, state: &str) -> Result<(), String> {
        let mut r = StateReader::new(state);
        let algo = r.expect("algo")?;
        if algo != self.name() {
            return Err(format!("state: algo {algo:?} is not {:?}", self.name()));
        }
        let curr = r.usize_field("curr")?;
        if !(1..=self.num_epochs).contains(&curr) {
            return Err(format!("state: curr={curr} outside 1..={}", self.num_epochs));
        }
        let buffer = r.edges_field("buffer", self.n)?;
        if buffer.len() > self.n {
            return Err(format!(
                "state: buffer holds {} edges over capacity {}",
                buffer.len(),
                self.n
            ));
        }
        decode_sketch_bank(&mut self.h_sketches, r.expect("h")?, self.n, "h")?;
        let space_cur = r.u64_field("space_cur")?;
        let space_peak = r.u64_field("space_peak")?;
        r.done()?;
        self.curr = curr;
        self.buffer = buffer;
        self.meter =
            SpaceMeter::restored(space_cur, space_peak).map_err(|e| format!("state: {e}"))?;
        Ok(())
    }

    fn name(&self) -> &'static str {
        "cgs22-robust"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_graph::generators;
    use sc_stream::run_oblivious;

    #[test]
    fn proper_on_random_streams() {
        for seed in 0..3u64 {
            let g = generators::gnp_with_max_degree(60, 9, 0.4, seed);
            let mut c = Cgs22Colorer::new(60, 9, seed + 3);
            let coloring = run_oblivious(&mut c, generators::shuffled_edges(&g, seed));
            assert!(coloring.is_proper_total(&g), "seed {seed}");
        }
    }

    #[test]
    fn mid_stream_queries_proper() {
        let g = generators::gnp_with_max_degree(40, 7, 0.5, 5);
        let edges = generators::shuffled_edges(&g, 5);
        let mut c = Cgs22Colorer::new(40, 7, 8);
        let mut prefix = Graph::empty(40);
        for (i, &e) in edges.iter().enumerate() {
            c.process(e);
            prefix.add_edge(e);
            if i % 11 == 0 {
                assert!(c.query().is_proper_total(&prefix));
            }
        }
    }

    #[test]
    fn uses_more_colors_than_alg2_on_same_stream() {
        // The F3 shape: CGS22's ∆³ structure uses ≥ as many colors as
        // Algorithm 2's ∆^{5/2} on dense streams (checked loosely: both
        // proper; CGS22 within ∆³ bound).
        let g = generators::gnp_with_max_degree(150, 16, 0.5, 2);
        let mut c = Cgs22Colorer::new(150, 16, 4);
        let coloring = run_oblivious(&mut c, generators::shuffled_edges(&g, 2));
        assert!(coloring.is_proper_total(&g));
        let bound = 16f64.powi(3) * 4.0;
        assert!((coloring.num_distinct_colors() as f64) < bound);
    }

    #[test]
    fn space_stays_small() {
        let g = generators::gnp_with_max_degree(100, 10, 0.5, 6);
        let mut c = Cgs22Colorer::new(100, 10, 1);
        run_oblivious(&mut c, generators::shuffled_edges(&g, 6));
        assert!(c.stored_edges() <= 20 * 100, "stored {}", c.stored_edges());
    }
}
