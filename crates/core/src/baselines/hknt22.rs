//! HKNT22-style palette sparsification for `(deg+1)`-list-coloring: the
//! randomized, **non-robust** single-pass comparator for Theorem 2.
//!
//! Halldórsson–Kuhn–Nolin–Tonoyan (STOC 2022) proved that palette
//! sparsification works for *arbitrary* per-vertex lists of size
//! `deg(x)+1`: sampling `Θ(log n)` colors from each list leaves, w.h.p., a
//! proper coloring using only sampled colors, so a single pass storing
//! conflict edges suffices. The paper reproduced here obtains the same
//! problem **deterministically** in `O(log ∆ log log ∆)` passes (Theorem
//! 2); this module provides the randomized single-pass point of
//! comparison for the list-coloring experiment.
//!
//! Stream contract: the `(x, L_x)` token must precede `x`'s edges for the
//! sparsification to apply. Tokens arriving out of that order are handled
//! *conservatively* — an edge whose endpoint lists are not both known yet
//! is stored unconditionally — so correctness never depends on the
//! interleaving, only the space savings do.

use sc_graph::{degeneracy_ordering, Color, Coloring, Edge, Graph};
use sc_hash::SplitMix64;
use sc_stream::{counter_bits, edge_bits, SpaceMeter, StreamItem};

/// The HKNT22-style list-coloring sparsifier.
#[derive(Debug, Clone)]
pub struct Hknt22Colorer {
    n: usize,
    list_size: usize,
    rng: SplitMix64,
    /// Sampled sublists `S_x ⊆ L_x` (sorted), populated as lists arrive.
    samples: Vec<Option<Vec<Color>>>,
    conflict_edges: Vec<Edge>,
    meter: SpaceMeter,
    failures: u64,
}

impl Hknt22Colorer {
    /// Creates the colorer; each vertex keeps `list_size` sampled colors
    /// from its list (theory: `Θ(log n)`).
    pub fn new(n: usize, list_size: usize, seed: u64) -> Self {
        Self {
            n,
            list_size: list_size.max(1),
            rng: SplitMix64::new(seed),
            samples: vec![None; n],
            conflict_edges: Vec::new(),
            meter: SpaceMeter::new(),
            failures: 0,
        }
    }

    /// Theory sizing: `list_size = ⌈4 log₂ n⌉`.
    pub fn with_theory_lists(n: usize, seed: u64) -> Self {
        Self::new(n, (4.0 * (n.max(2) as f64).log2()).ceil() as usize, seed)
    }

    /// Processes one stream token (edge or `(x, L_x)` list).
    pub fn process_item(&mut self, item: &StreamItem) {
        match item {
            StreamItem::ColorList(x, list) => {
                assert!((*x as usize) < self.n, "vertex {x} out of range");
                let keep = self.list_size.min(list.len());
                // Reservoir-less sample: shuffle indices via seeded draws.
                let mut chosen = std::collections::BTreeSet::new();
                while chosen.len() < keep {
                    chosen.insert(list[self.rng.below(list.len() as u64) as usize]);
                }
                let sample: Vec<Color> = chosen.into_iter().collect();
                self.meter.charge(sample.len() as u64 * counter_bits(u64::MAX));
                self.samples[*x as usize] = Some(sample);
            }
            StreamItem::Deletion(e) => {
                panic!("hknt22: insert-only algorithm cannot delete edge {e}")
            }
            StreamItem::Edge(e) => {
                assert!((e.v() as usize) < self.n, "edge {e} out of range");
                let keep = match (&self.samples[e.u() as usize], &self.samples[e.v() as usize]) {
                    (Some(a), Some(b)) => sorted_intersect(a, b),
                    // A list is still unknown: store conservatively.
                    _ => true,
                };
                if keep {
                    self.conflict_edges.push(*e);
                    self.meter.charge(edge_bits(self.n));
                }
            }
        }
    }

    /// Colors the conflict graph from the sampled lists (reverse
    /// degeneracy order).
    pub fn query(&mut self) -> Coloring {
        let g = Graph::from_edges(self.n, self.conflict_edges.iter().copied());
        let all: Vec<u32> = (0..self.n as u32).collect();
        let order: Vec<u32> = degeneracy_ordering(&g, &all).order.into_iter().rev().collect();
        let mut coloring = Coloring::empty(self.n);
        for &x in &order {
            let Some(sample) = self.samples[x as usize].as_ref() else {
                // No list ever arrived for x: cannot color it at all.
                self.failures += 1;
                continue;
            };
            let taken: Vec<Color> =
                g.neighbors(x).iter().filter_map(|&y| coloring.get(y)).collect();
            match sample.iter().find(|c| !taken.contains(c)) {
                Some(&c) => coloring.set(x, c),
                None => {
                    self.failures += 1;
                    coloring.set(x, sample[0]); // honest failure
                }
            }
        }
        coloring
    }

    /// Completion failures observed so far.
    pub fn failures(&self) -> u64 {
        self.failures
    }

    /// Number of stored conflict edges.
    pub fn stored_edges(&self) -> usize {
        self.conflict_edges.len()
    }

    /// Self-reported peak space in bits.
    pub fn peak_space_bits(&self) -> u64 {
        self.meter.peak_bits()
    }
}

fn sorted_intersect(a: &[Color], b: &[Color]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Equal => return true,
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_graph::generators;
    use sc_stream::{StoredStream, StreamSource};

    fn run(colorer: &mut Hknt22Colorer, stream: &StoredStream) -> Coloring {
        for item in stream.pass() {
            colorer.process_item(&item);
        }
        colorer.query()
    }

    #[test]
    fn lists_first_streams_color_properly() {
        for seed in 0..4u64 {
            let g = generators::gnp_with_max_degree(120, 10, 0.3, seed);
            let lists = generators::random_deg_plus_one_lists(&g, 600, seed + 9);
            let stream = StoredStream::from_graph_with_lists(&g, &lists);
            let mut c = Hknt22Colorer::with_theory_lists(120, seed + 1);
            let out = run(&mut c, &stream);
            assert!(out.is_proper_total(&g), "seed {seed}");
            assert_eq!(c.failures(), 0);
            assert!(out.respects_lists(&lists));
        }
    }

    #[test]
    fn small_universe_lists_also_work() {
        let g = generators::random_with_exact_max_degree(200, 12, 3);
        let lists = generators::random_deg_plus_one_lists(&g, 26, 5);
        let stream = StoredStream::from_graph_with_lists(&g, &lists);
        let mut c = Hknt22Colorer::with_theory_lists(200, 8);
        let out = run(&mut c, &stream);
        assert!(out.is_proper_total(&g));
        assert!(out.respects_lists(&lists));
    }

    #[test]
    fn edges_before_lists_are_stored_conservatively() {
        let g = generators::complete(8);
        let lists = generators::random_deg_plus_one_lists(&g, 30, 2);
        // Edges first, lists after: every edge must be stored.
        let mut items: Vec<StreamItem> = g.edges().map(StreamItem::Edge).collect();
        items.extend(
            lists.iter().enumerate().map(|(x, l)| StreamItem::ColorList(x as u32, l.clone())),
        );
        let mut c = Hknt22Colorer::new(8, 4, 1);
        let out = run(&mut c, &StoredStream::new(items));
        assert_eq!(c.stored_edges(), g.m(), "all edges pre-list must be stored");
        assert!(out.is_proper_total(&g));
        assert!(out.respects_lists(&lists));
    }

    #[test]
    fn missing_list_is_a_loud_failure() {
        // Path 0–1–2 where only vertices 0 and 1 get lists.
        let items = vec![
            StreamItem::ColorList(0, vec![1, 2]),
            StreamItem::ColorList(1, vec![2, 3]),
            StreamItem::Edge(Edge::new(0, 1)),
            StreamItem::Edge(Edge::new(1, 2)),
        ];
        let mut c = Hknt22Colorer::new(3, 4, 1);
        let out = run(&mut c, &StoredStream::new(items));
        assert!(c.failures() > 0);
        assert!(!out.is_colored(2));
    }

    #[test]
    fn sampling_shrinks_storage_on_large_universes() {
        let g = generators::gnp_with_max_degree(300, 16, 0.4, 4);
        let lists = generators::random_deg_plus_one_lists(&g, 100_000, 6);
        let stream = StoredStream::from_graph_with_lists(&g, &lists);
        let mut c = Hknt22Colorer::new(300, 6, 2);
        run(&mut c, &stream);
        assert!(
            c.stored_edges() * 2 < g.m(),
            "disjoint samples over a huge universe should drop most edges \
             ({} of {})",
            c.stored_edges(),
            g.m()
        );
    }

    #[test]
    fn tiny_samples_on_cliques_fail_loudly() {
        let g = generators::complete(20);
        let lists: Vec<Vec<Color>> = (0..20).map(|_| (0..20u64).collect()).collect();
        let stream = StoredStream::from_graph_with_lists(&g, &lists);
        let mut c = Hknt22Colorer::new(20, 1, 3);
        let out = run(&mut c, &stream);
        assert!(c.failures() > 0, "1-color samples on K_20 must clash");
        assert!(!out.is_proper_total(&g));
    }
}
