//! Per-stage tables: slack values, proposal weights, and the `g_w` map of
//! Lemma 3.2.
//!
//! After pass 1 of a stage, the algorithm holds, for each uncolored vertex
//! `x` and each pattern `j ∈ {0,1}^bw`, the slack `slack(x | P_x ∩ Q_j)`
//! (eq. 1). These integers determine the weights `w_{x,j}` (eq. 4) and,
//! via Lemma 3.2, a threshold function `g_w : U × [p] → {0,1}^bw` with
//! `|g_w^{-1}(x, j)|/p ≤ w_{x,j}(1 + 1/(8 log n))`.
//!
//! The construction is exact integer arithmetic: with `L = ⌈log₂ n⌉` and
//! `S_x = Σ_j slack(x | P_x ∩ Q_j)`, pattern `j` receives
//! `⌊p · s_{x,j} · (8L + 1) / (S_x · 8L)⌋` consecutive entries of `[p]`.
//! Lemma A.3's argument (every nonzero `w ≥ 1/n`, `p ≥ 8 n L`) guarantees
//! the blocks cover all of `[p]`; evaluation is a binary search over the
//! per-vertex prefix sums.

/// Dense per-stage tables for the uncolored set `U`.
#[derive(Debug, Clone)]
pub struct StageTables {
    /// Number of patterns `2^bw` for this stage.
    num_patterns: usize,
    /// `pos[x]` = dense index of vertex `x` in `U`, or `u32::MAX`.
    pos: Vec<u32>,
    /// Slack values, `|U| × num_patterns`, row-major by dense index.
    slack: Vec<u64>,
    /// Prefix sums of `g_w` block sizes, `|U| × (num_patterns + 1)`.
    gw_cum: Vec<u64>,
    /// The hash range `p`.
    p: u64,
}

impl StageTables {
    /// Builds the tables from raw slack values.
    ///
    /// `u_set` lists the uncolored vertices (dense order); `slack` is
    /// `|U| × num_patterns` row-major; `p` is the prime hash range;
    /// `log_n = max(1, ⌈log₂ n⌉)`.
    ///
    /// # Panics
    /// Panics if some vertex has all-zero slack row (violates the
    /// invariant `Σ_j slack ≥ slack(x | P_x) ≥ 1` of Lemmas 3.4/3.6 — an
    /// algorithm bug, not an input condition).
    pub fn build(
        n: usize,
        u_set: &[u32],
        num_patterns: usize,
        slack: Vec<u64>,
        p: u64,
        log_n: u64,
    ) -> Self {
        assert_eq!(slack.len(), u_set.len() * num_patterns);
        let mut pos = vec![u32::MAX; n];
        for (i, &x) in u_set.iter().enumerate() {
            pos[x as usize] = i as u32;
        }
        let mut gw_cum = Vec::with_capacity(u_set.len() * (num_patterns + 1));
        let eight_l = 8 * log_n;
        for (i, &x) in u_set.iter().enumerate() {
            let row = &slack[i * num_patterns..(i + 1) * num_patterns];
            let total: u64 = row.iter().sum();
            assert!(total >= 1, "vertex {x} has zero total slack (invariant violation)");
            let mut cum = 0u64;
            gw_cum.push(0);
            for &s in row {
                // ⌊p · s · (8L + 1) / (total · 8L)⌋ in exact u128 arithmetic.
                let block = (p as u128 * s as u128 * (eight_l as u128 + 1))
                    / (total as u128 * eight_l as u128);
                cum = cum.saturating_add(block as u64);
                gw_cum.push(cum);
            }
            debug_assert!(
                cum >= p,
                "g_w blocks cover only {cum} < p = {p} entries (Lemma A.3 violated)"
            );
        }
        Self { num_patterns, pos, slack, gw_cum, p }
    }

    /// Number of patterns for this stage.
    #[inline]
    pub fn num_patterns(&self) -> usize {
        self.num_patterns
    }

    /// The hash range `p`.
    #[inline]
    pub fn p(&self) -> u64 {
        self.p
    }

    /// Dense index of vertex `x`, if uncolored.
    #[inline]
    pub fn position(&self, x: u32) -> Option<usize> {
        let p = self.pos[x as usize];
        (p != u32::MAX).then_some(p as usize)
    }

    /// `slack(x | P_x ∩ Q_j)` by dense index.
    #[inline]
    pub fn slack_at(&self, dense: usize, j: usize) -> u64 {
        self.slack[dense * self.num_patterns + j]
    }

    /// Evaluates `g_w(x, t)` by dense index: the pattern whose threshold
    /// block contains `t ∈ [0, p)`.
    ///
    /// If the blocks over-cover `[p]` this is the standard construction;
    /// if `t` falls beyond the last block (cannot happen when Lemma A.3's
    /// preconditions hold, kept as a defensive clamp), the last pattern
    /// with positive slack is returned, preserving the `slack ≥ 1`
    /// invariant of Lemma 3.6.
    pub fn gw(&self, dense: usize, t: u64) -> usize {
        debug_assert!(t < self.p);
        let base = dense * (self.num_patterns + 1);
        let cum = &self.gw_cum[base..base + self.num_patterns + 1];
        // Find smallest j with cum[j+1] > t.
        let mut lo = 0usize;
        let mut hi = self.num_patterns;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if cum[mid + 1] > t {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        if lo < self.num_patterns {
            debug_assert!(self.slack_at(dense, lo) > 0, "g_w chose a zero-slack pattern");
            return lo;
        }
        // Defensive clamp: last positive-slack pattern.
        (0..self.num_patterns)
            .rev()
            .find(|&j| self.slack_at(dense, j) > 0)
            .expect("total slack ≥ 1 guarantees a positive pattern")
    }

    /// `Φ`-style reciprocal slack `1/slack(x | P_x ∩ Q_j)` used by the
    /// tournament accumulators; `j` must have positive slack.
    #[inline]
    pub fn inv_slack(&self, dense: usize, j: usize) -> f64 {
        1.0 / self.slack_at(dense, j) as f64
    }

    /// Number of uncolored vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.slack.len() / self.num_patterns.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_tables() -> StageTables {
        // 2 vertices, 4 patterns, p = 1000, L = 4.
        // v0 slacks: [1, 3, 0, 4]  total 8
        // v5 slacks: [2, 0, 0, 2]  total 4
        StageTables::build(6, &[0, 5], 4, vec![1, 3, 0, 4, 2, 0, 0, 2], 1000, 4)
    }

    #[test]
    fn positions() {
        let t = simple_tables();
        assert_eq!(t.position(0), Some(0));
        assert_eq!(t.position(5), Some(1));
        assert_eq!(t.position(3), None);
        assert_eq!(t.num_vertices(), 2);
        assert_eq!(t.num_patterns(), 4);
    }

    #[test]
    fn slack_lookup() {
        let t = simple_tables();
        assert_eq!(t.slack_at(0, 1), 3);
        assert_eq!(t.slack_at(1, 3), 2);
        assert_eq!(t.inv_slack(0, 3), 0.25);
    }

    #[test]
    fn gw_blocks_proportional_to_weights() {
        let t = simple_tables();
        // Count pattern frequencies over all of [p].
        let mut counts = [0u64; 4];
        for tt in 0..1000u64 {
            counts[t.gw(0, tt)] += 1;
        }
        // Weights 1/8, 3/8, 0, 4/8 → roughly 125, 375, 0, 500 (with the
        // (1 + 1/32) inflation, earlier patterns get slightly more).
        assert_eq!(counts[2], 0, "zero-slack pattern must never be chosen");
        assert!(counts[0] >= 125 && counts[0] <= 135, "{counts:?}");
        assert!(counts[1] >= 375 && counts[1] <= 390, "{counts:?}");
        assert!(counts[3] > 450, "{counts:?}");
        assert_eq!(counts.iter().sum::<u64>(), 1000);
    }

    #[test]
    fn gw_coverage_lemma_a3() {
        // Lemma A.3 bound check: |g_w^{-1}(x,j)|/p ≤ w_{x,j}(1 + 1/(8L)).
        let t = simple_tables();
        let weights = [1.0 / 8.0, 3.0 / 8.0, 0.0, 4.0 / 8.0];
        let mut counts = [0u64; 4];
        for tt in 0..1000u64 {
            counts[t.gw(0, tt)] += 1;
        }
        for j in 0..4 {
            let frac = counts[j] as f64 / 1000.0;
            assert!(frac <= weights[j] * (1.0 + 1.0 / 32.0) + 1e-9, "pattern {j}: {frac} > bound");
        }
    }

    #[test]
    fn gw_respects_second_vertex_weights() {
        let t = simple_tables();
        let mut counts = [0u64; 4];
        for tt in 0..1000u64 {
            counts[t.gw(1, tt)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert_eq!(counts[2], 0);
        // Equal weights halves.
        assert!(counts[0] > 450 && counts[3] > 430, "{counts:?}");
    }

    #[test]
    #[should_panic(expected = "zero total slack")]
    fn rejects_zero_slack_row() {
        StageTables::build(2, &[0], 2, vec![0, 0], 100, 3);
    }

    #[test]
    fn single_pattern_always_chosen() {
        let t = StageTables::build(1, &[0], 1, vec![5], 64, 2);
        for tt in 0..64 {
            assert_eq!(t.gw(0, tt), 0);
        }
    }
}
