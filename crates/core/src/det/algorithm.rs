//! The top-level deterministic `(∆+1)`-coloring driver
//! (`DETERMINISTIC-COLORING`, paper lines 1–7; Theorem 1).
//!
//! Repeats epochs until `|U| ≤ n/∆`, then makes one final pass collecting
//! every edge incident to `U` (at most `|U|·∆ ≤ n` of them) and greedily
//! completes the coloring. Deterministic end to end: same stream ⇒ same
//! coloring, bit for bit.

use crate::det::config::DetConfig;
use crate::det::epoch::{coloring_epoch, EpochOutcome};
use sc_graph::{greedy_complete, Coloring, Graph, VertexId};
use sc_stream::{color_bits, edge_bits, PassCounter, SpaceMeter, StreamSource};

/// Full run report for Theorem 1 experiments.
#[derive(Debug, Clone)]
pub struct DetReport {
    /// The final proper `(∆+1)`-coloring.
    pub coloring: Coloring,
    /// Streaming passes used (the `O(log ∆ · log log ∆)` quantity).
    pub passes: u64,
    /// Epochs run.
    pub epochs: usize,
    /// Total stages across epochs.
    pub stages: usize,
    /// Peak self-reported space in bits (the `O(n log² n)` quantity).
    pub peak_space_bits: u64,
    /// Distinct colors used.
    pub colors_used: usize,
    /// Per-epoch outcomes (F sizes, potential traces, …).
    pub epoch_outcomes: Vec<EpochOutcome>,
    /// Whether the safety fallback (batch-greedy completion) engaged.
    pub fallback_used: bool,
}

/// Deterministically `(∆+1)`-colors the streamed graph.
///
/// `n` and `delta` describe the stream (the paper, as is standard, assumes
/// `∆` is known; use [`max_degree_pass`] to measure it in one extra pass).
///
/// # Panics
/// Panics if the stream contains an edge with endpoint `≥ n` or a vertex
/// of degree `> delta`.
pub fn deterministic_coloring<S: StreamSource + ?Sized>(
    stream: &S,
    n: usize,
    delta: usize,
    config: &DetConfig,
) -> DetReport {
    let counted = PassCounter::new(stream);
    let mut meter = SpaceMeter::new();
    // Persistent state: χ (n colors) + U membership (n bits).
    meter.charge(n as u64 * color_bits(delta as u64 + 1) + n as u64);

    let mut coloring = Coloring::empty(n);
    let mut u_set: Vec<VertexId> = (0..n as u32).collect();
    let mut epoch_outcomes = Vec::new();
    let mut fallback_used = false;

    if delta == 0 {
        // Edgeless graph: one color, zero passes.
        for x in 0..n as u32 {
            coloring.set(x, 0);
        }
        u_set.clear();
    }

    // Epoch loop: until |U| ≤ n/∆ (equivalently |U|·∆ ≤ n).
    let mut epochs = 0usize;
    while !u_set.is_empty() && u_set.len() * delta > n {
        if epochs >= config.max_epochs {
            fallback_used = true;
            break;
        }
        let out = coloring_epoch(&counted, n, delta, &mut coloring, &mut u_set, config, &mut meter);
        epoch_outcomes.push(out);
        epochs += 1;
    }

    if fallback_used {
        batch_greedy_completion(&counted, n, delta, &mut coloring, &mut u_set, &mut meter);
    } else if !u_set.is_empty() {
        // Final pass (lines 6–7): collect all edges incident to U.
        let mut in_u = vec![false; n];
        for &x in &u_set {
            in_u[x as usize] = true;
        }
        let mut residual = Graph::empty(n);
        for item in counted.pass() {
            let Some(e) = item.as_edge() else { continue };
            if in_u[e.u() as usize] || in_u[e.v() as usize] {
                residual.add_edge(e);
            }
        }
        meter.charge(residual.m() as u64 * edge_bits(n));
        greedy_complete(&residual, &mut coloring);
        meter.release(residual.m() as u64 * edge_bits(n));
        u_set.clear();
    }

    let stages = epoch_outcomes.iter().map(|o| o.stages).sum();
    DetReport {
        colors_used: coloring.num_distinct_colors(),
        coloring,
        passes: counted.passes(),
        epochs,
        stages,
        peak_space_bits: meter.peak_bits(),
        epoch_outcomes,
        fallback_used,
    }
}

/// One extra pass computing the maximum degree of the streamed graph.
pub fn max_degree_pass<S: StreamSource + ?Sized>(stream: &S, n: usize) -> usize {
    let mut deg = vec![0usize; n];
    for item in stream.pass() {
        if let Some(e) = item.as_edge() {
            deg[e.u() as usize] += 1;
            deg[e.v() as usize] += 1;
        }
    }
    deg.into_iter().max().unwrap_or(0)
}

/// Safety fallback: colors the residual `U` in batches of `⌈n/∆⌉` vertices,
/// one pass each, storing only that batch's incident edges.
///
/// `O(∆)` passes in the worst case — the trivial multi-pass baseline — but
/// only ever reached if `max_epochs` epochs failed to shrink `U`, which the
/// theory rules out and we have never observed.
fn batch_greedy_completion<S: StreamSource + ?Sized>(
    stream: &S,
    n: usize,
    delta: usize,
    coloring: &mut Coloring,
    u_set: &mut Vec<VertexId>,
    meter: &mut SpaceMeter,
) {
    let batch_size = (n / delta.max(1)).max(1);
    while !u_set.is_empty() {
        let batch: Vec<VertexId> = u_set.iter().copied().take(batch_size).collect();
        let mut in_batch = vec![false; n];
        for &x in &batch {
            in_batch[x as usize] = true;
        }
        let mut local = Graph::empty(n);
        for item in stream.pass() {
            let Some(e) = item.as_edge() else { continue };
            if in_batch[e.u() as usize] || in_batch[e.v() as usize] {
                local.add_edge(e);
            }
        }
        meter.charge(local.m() as u64 * edge_bits(n));
        sc_graph::greedy_color_in_order(&local, coloring, &batch, 0);
        meter.release(local.m() as u64 * edge_bits(n));
        u_set.retain(|&x| !in_batch[x as usize]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_graph::generators;
    use sc_stream::StoredStream;

    fn check_run(g: &sc_graph::Graph, config: &DetConfig) -> DetReport {
        let stream = StoredStream::from_graph(g);
        let delta = g.max_degree();
        let report = deterministic_coloring(&stream, g.n(), delta, config);
        assert!(report.coloring.is_proper_total(g), "improper coloring on n={} ∆={delta}", g.n());
        assert!(
            report.coloring.palette_span() <= delta as u64 + 1,
            "used span {} > ∆+1 = {}",
            report.coloring.palette_span(),
            delta + 1
        );
        report
    }

    #[test]
    fn colors_random_graphs_with_delta_plus_one() {
        for seed in 0..4u64 {
            let g = generators::gnp_with_max_degree(60, 8, 0.3, seed);
            let r = check_run(&g, &DetConfig::default());
            assert!(!r.fallback_used);
        }
    }

    #[test]
    fn colors_clique_exactly() {
        let g = generators::complete(17);
        let r = check_run(&g, &DetConfig::default());
        assert_eq!(r.colors_used, 17, "K_17 needs all ∆+1 colors");
    }

    #[test]
    fn colors_structured_graphs() {
        check_run(&generators::cycle(31), &DetConfig::default());
        check_run(&generators::star(40), &DetConfig::default());
        check_run(&generators::complete_bipartite(10, 15), &DetConfig::default());
        check_run(&generators::clique_union(4, 6), &DetConfig::default());
    }

    #[test]
    fn edgeless_graph_zero_passes() {
        let g = sc_graph::Graph::empty(12);
        let stream = StoredStream::from_graph(&g);
        let r = deterministic_coloring(&stream, 12, 0, &DetConfig::default());
        assert!(r.coloring.is_proper_total(&g));
        assert_eq!(r.colors_used, 1);
        assert_eq!(r.passes, 0);
    }

    #[test]
    fn single_edge() {
        let g = sc_graph::Graph::from_edges(2, [sc_graph::Edge::new(0, 1)]);
        let r = check_run(&g, &DetConfig::default());
        assert_eq!(r.colors_used, 2);
    }

    #[test]
    fn determinism_same_stream_same_coloring() {
        let g = generators::gnp_with_max_degree(50, 7, 0.3, 11);
        let stream = StoredStream::from_graph(&g);
        let r1 = deterministic_coloring(&stream, 50, 7, &DetConfig::default());
        let r2 = deterministic_coloring(&stream, 50, 7, &DetConfig::default());
        assert_eq!(r1.coloring, r2.coloring);
        assert_eq!(r1.passes, r2.passes);
    }

    #[test]
    fn order_sensitivity_is_allowed_but_correctness_holds() {
        // Different arrival orders may give different colorings, but both
        // must be proper (∆+1)-colorings.
        let g = generators::gnp_with_max_degree(40, 6, 0.4, 8);
        let delta = g.max_degree();
        let s1 = StoredStream::from_edges(generators::shuffled_edges(&g, 1));
        let s2 = StoredStream::from_edges(generators::shuffled_edges(&g, 2));
        let r1 = deterministic_coloring(&s1, 40, delta, &DetConfig::default());
        let r2 = deterministic_coloring(&s2, 40, delta, &DetConfig::default());
        assert!(r1.coloring.is_proper_total(&g));
        assert!(r2.coloring.is_proper_total(&g));
    }

    #[test]
    fn full_family_mode_on_tiny_instance() {
        let g = generators::complete(5);
        let r = check_run(&g, &DetConfig::theory());
        assert_eq!(r.colors_used, 5);
    }

    #[test]
    fn pass_count_is_logarithmic_not_linear() {
        // For ∆ = 16 on n = 256, passes should be far below ∆ (the
        // batch-greedy cost) — the whole point of Theorem 1.
        let g = generators::random_with_exact_max_degree(256, 16, 5);
        let r = check_run(&g, &DetConfig::default());
        assert!(r.passes < 6 * 16, "{} passes is not polylogarithmic in spirit", r.passes);
        assert!(!r.fallback_used);
    }

    #[test]
    fn max_degree_pass_measures_correctly() {
        let g = generators::random_with_exact_max_degree(64, 9, 2);
        let stream = StoredStream::from_graph(&g);
        assert_eq!(max_degree_pass(&stream, 64), 9);
        assert_eq!(max_degree_pass(&StoredStream::new(vec![]), 5), 0);
    }

    #[test]
    fn space_grows_quasilinearly() {
        // Peak space for n = 256 should be well under the trivial m·log n
        // of storing the whole graph when the graph is dense enough.
        let g = generators::gnp_with_max_degree(256, 32, 0.5, 3);
        let stream = StoredStream::from_graph(&g);
        let r = deterministic_coloring(&stream, 256, g.max_degree(), &DetConfig::default());
        assert!(r.coloring.is_proper_total(&g));
        let n = 256u64;
        let log_n = 8u64;
        assert!(
            r.peak_space_bits <= 64 * n * log_n * log_n,
            "peak {} bits exceeds 64·n·log²n",
            r.peak_space_bits
        );
    }

    #[test]
    fn fallback_engages_when_epoch_budget_is_zero() {
        let g = generators::gnp_with_max_degree(30, 5, 0.4, 4);
        let cfg = DetConfig { max_epochs: 0, ..DetConfig::default() };
        let stream = StoredStream::from_graph(&g);
        let r = deterministic_coloring(&stream, 30, 5, &cfg);
        assert!(r.fallback_used);
        assert!(r.coloring.is_proper_total(&g));
        assert!(r.coloring.palette_span() <= 6);
    }

    #[test]
    fn grid_size_variants_all_work() {
        let g = generators::gnp_with_max_degree(40, 8, 0.35, 6);
        for l in [2usize, 4, 32] {
            let r = check_run(&g, &DetConfig::with_grid(l));
            assert!(!r.fallback_used, "grid l={l} needed fallback");
        }
    }
}
