//! Subcube proposal sets for Algorithm 1.
//!
//! §3.2 of the paper: colors are `b`-bit vectors (`b = ⌈log₂(∆+1)⌉`) and
//! each uncolored vertex's proposal set `P_x` is a **subcube** of `{0,1}^b`
//! in which the lowest `fixed` bits have been pinned to a specific value.
//! Stage `i` pins the next `k`-bit block (eq. 6). The representation is
//! `O(log ∆)` bits per vertex, exactly as the space analysis (Lemma 3.9)
//! requires.
//!
//! We index bits from the low end: after stage `i`, bits `0..i·k` are
//! fixed. The color associated with bit-vector `a` is the integer with
//! those bits (0-based palette `{0, …, 2^b − 1}`, of which `{0, …, ∆}`
//! are the *valid* colors `L_x = [∆+1]`; cf. the paper's footnote 4 — a
//! subcube may contain invalid colors, which simply carry zero slack).

use sc_graph::Color;

/// A subcube of `{0,1}^width` with the low `fixed` bits pinned to `value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Subcube {
    width: u32,
    fixed: u32,
    value: u64,
}

impl Subcube {
    /// The full cube `{0,1}^width` (no bits fixed).
    pub fn full(width: u32) -> Self {
        assert!(width <= 63, "color-space width {width} too large");
        Self { width, fixed: 0, value: 0 }
    }

    /// Total bit width `b`.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of fixed (pinned) low bits.
    #[inline]
    pub fn fixed_bits(&self) -> u32 {
        self.fixed
    }

    /// The pinned value of the low `fixed` bits.
    #[inline]
    pub fn fixed_value(&self) -> u64 {
        self.value
    }

    /// Number of free bits remaining.
    #[inline]
    pub fn free_bits(&self) -> u32 {
        self.width - self.fixed
    }

    /// Cardinality of the subcube (`2^free_bits`).
    #[inline]
    pub fn len(&self) -> u64 {
        1u64 << self.free_bits()
    }

    /// Subcubes are never empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether color `c` lies in the subcube.
    #[inline]
    pub fn contains(&self, c: Color) -> bool {
        c < (1u64 << self.width) && (c & self.mask()) == self.value
    }

    /// The block index (pattern) of `c`'s next `block_width` bits above the
    /// fixed prefix. Only meaningful when `self.contains(c)`.
    #[inline]
    pub fn block_of(&self, c: Color, block_width: u32) -> u64 {
        debug_assert!(self.fixed + block_width <= self.width);
        (c >> self.fixed) & ((1u64 << block_width) - 1)
    }

    /// The child subcube obtained by pinning the next `block_width` bits to
    /// `pattern` — the `P_x ∩ Q^{(i)}_j` of eq. (6).
    #[inline]
    pub fn child(&self, block_width: u32, pattern: u64) -> Subcube {
        debug_assert!(self.fixed + block_width <= self.width);
        debug_assert!(pattern < (1u64 << block_width));
        Subcube {
            width: self.width,
            fixed: self.fixed + block_width,
            value: self.value | (pattern << self.fixed),
        }
    }

    /// Whether all bits are fixed (the subcube is a single color).
    #[inline]
    pub fn is_singleton(&self) -> bool {
        self.fixed == self.width
    }

    /// The sole color of a singleton subcube.
    ///
    /// # Panics
    /// Panics if the subcube is not a singleton.
    #[inline]
    pub fn singleton_color(&self) -> Color {
        assert!(self.is_singleton(), "subcube still has {} free bits", self.free_bits());
        self.value
    }

    /// `|P_x ∩ L_x|` for the palette `L_x = {0, …, limit}`: the number of
    /// subcube members that are valid colors. O(1) arithmetic — this is
    /// why Algorithm 1 needs no streaming pass for the `|T ∩ L_x|` term of
    /// the slack (eq. 1).
    pub fn count_at_most(&self, limit: Color) -> u64 {
        if self.value > limit {
            return 0;
        }
        // Members are value + t·2^fixed for t ∈ [0, 2^{free}).
        let step = 1u64 << self.fixed;
        let max_t = (limit - self.value) / step;
        (max_t + 1).min(self.len())
    }

    #[inline]
    fn mask(&self) -> u64 {
        (1u64 << self.fixed) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_cube() {
        let s = Subcube::full(4);
        assert_eq!(s.len(), 16);
        assert_eq!(s.free_bits(), 4);
        for c in 0..16 {
            assert!(s.contains(c));
        }
        assert!(!s.contains(16));
        assert!(!s.is_singleton());
    }

    #[test]
    fn child_pins_low_blocks_first() {
        let s = Subcube::full(6).child(2, 0b11);
        assert_eq!(s.fixed_bits(), 2);
        assert_eq!(s.fixed_value(), 0b11);
        assert!(s.contains(0b000011));
        assert!(s.contains(0b101011));
        assert!(!s.contains(0b000010));
        let t = s.child(2, 0b01);
        assert_eq!(t.fixed_bits(), 4);
        assert_eq!(t.fixed_value(), 0b0111);
        assert!(t.contains(0b10_0111));
        assert!(!t.contains(0b10_1011));
    }

    #[test]
    fn block_extraction() {
        let s = Subcube::full(6).child(2, 0b10);
        // color 0b01_11_10: fixed block = 10, next 2-bit block = 11.
        assert_eq!(s.block_of(0b011110, 2), 0b11);
        assert_eq!(s.block_of(0b010010, 2), 0b00);
    }

    #[test]
    fn children_partition_the_parent() {
        let s = Subcube::full(5).child(2, 0b01);
        let kids: Vec<Subcube> = (0..4).map(|j| s.child(2, j)).collect();
        for c in 0..32u64 {
            let in_parent = s.contains(c);
            let in_kids = kids.iter().filter(|k| k.contains(c)).count();
            assert_eq!(in_kids, usize::from(in_parent), "color {c}");
        }
    }

    #[test]
    fn singleton() {
        let mut s = Subcube::full(4);
        s = s.child(2, 0b10);
        s = s.child(2, 0b01);
        assert!(s.is_singleton());
        assert_eq!(s.singleton_color(), 0b0110);
        assert_eq!(s.len(), 1);
        assert_eq!(s.count_at_most(15), 1);
        assert_eq!(s.count_at_most(5), 0); // 6 > 5
    }

    #[test]
    #[should_panic(expected = "free bits")]
    fn singleton_color_requires_singleton() {
        Subcube::full(3).singleton_color();
    }

    #[test]
    fn count_at_most_matches_enumeration() {
        for fixed_pattern in 0..4u64 {
            let s = Subcube::full(5).child(2, fixed_pattern);
            for limit in 0..40u64 {
                let expect = (0..32u64).filter(|&c| s.contains(c) && c <= limit).count() as u64;
                assert_eq!(s.count_at_most(limit), expect, "pattern {fixed_pattern} limit {limit}");
            }
        }
    }

    #[test]
    fn count_at_most_full_cube() {
        let s = Subcube::full(4);
        assert_eq!(s.count_at_most(8), 9); // colors 0..=8
        assert_eq!(s.count_at_most(100), 16); // capped at cube size
        assert_eq!(s.count_at_most(0), 1);
    }

    #[test]
    fn width_zero_cube_is_singleton_zero() {
        // ∆ = 0 gives b = 0: the one-color palette.
        let s = Subcube::full(0);
        assert!(s.is_singleton());
        assert_eq!(s.singleton_color(), 0);
        assert_eq!(s.len(), 1);
    }
}
