//! Theorem 1: deterministic semi-streaming `(∆+1)`-coloring in
//! `O(log ∆ · log log ∆)` passes and `O(n log² n)` bits.
//!
//! Module layout follows the paper's §3:
//! * [`subcube`] — proposal sets `P_x` as subcubes of `{0,1}^b` (§3.2);
//! * [`tables`] — slack counters (eq. 1), weights (eq. 4) and the `g_w`
//!   threshold map (Lemma 3.2);
//! * [`derand`] — the two-pass tournament that picks a below-average hash
//!   `h⋆` (lines 19–26);
//! * [`epoch`] — `COLORING-EPOCH` (lines 8–33);
//! * [`algorithm`] — the epoch loop and final greedy pass (lines 1–7).

pub mod algorithm;
pub mod communication;
pub mod config;
pub mod derand;
pub mod epoch;
pub mod subcube;
pub mod tables;

pub use algorithm::{deterministic_coloring, max_degree_pass, DetReport};
pub use communication::{two_party_coloring, ProtocolTranscript};
pub use config::{DerandStrategy, DetConfig};
pub use epoch::EpochOutcome;
pub use subcube::Subcube;
