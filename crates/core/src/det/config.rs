//! Configuration for the deterministic multi-pass algorithm.

/// How stage hash selection (Algorithm 1, lines 16–26) enumerates the
/// Carter–Wegman family `H = {z ↦ az + b : a, b ∈ F_p}`.
///
/// See DESIGN.md substitution S1 for the rationale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DerandStrategy {
    /// The paper-verbatim tournament over all `p²` functions, split into
    /// `p` parts by multiplier. Exact, but only feasible for tiny inputs
    /// (`p = Θ(n log n)` evaluations per edge per pass).
    FullFamily,
    /// A deterministic `l × l` sub-grid of `H`: `l` parts of `l` functions.
    /// Pass 2 computes exact part sums; pass 3 scans the winning part.
    Grid {
        /// Side length of the grid (number of parts = functions per part).
        l: usize,
    },
}

impl Default for DerandStrategy {
    fn default() -> Self {
        DerandStrategy::Grid { l: 16 }
    }
}

/// Configuration for [`crate::det::deterministic_coloring`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetConfig {
    /// Hash-selection strategy per stage.
    pub derand: DerandStrategy,
    /// Safety cap on epochs. The theory guarantees `⌈log_{3/2} ∆⌉` epochs;
    /// if the cap is hit (never observed; possible in principle under
    /// `Grid` derandomization), the algorithm falls back to batch-greedy
    /// completion so it always terminates with a proper coloring.
    pub max_epochs: usize,
    /// Record the per-stage potential trace (experiment F7).
    pub track_potential: bool,
}

impl Default for DetConfig {
    fn default() -> Self {
        Self { derand: DerandStrategy::default(), max_epochs: 200, track_potential: false }
    }
}

impl DetConfig {
    /// Paper-verbatim configuration (full family tournament). Only use
    /// with very small `n`.
    pub fn theory() -> Self {
        Self { derand: DerandStrategy::FullFamily, ..Self::default() }
    }

    /// Grid configuration with an explicit side length.
    pub fn with_grid(l: usize) -> Self {
        Self { derand: DerandStrategy::Grid { l }, ..Self::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = DetConfig::default();
        assert_eq!(c.derand, DerandStrategy::Grid { l: 16 });
        assert!(c.max_epochs >= 100);
        assert!(!c.track_potential);
    }

    #[test]
    fn constructors() {
        assert_eq!(DetConfig::theory().derand, DerandStrategy::FullFamily);
        assert_eq!(DetConfig::with_grid(8).derand, DerandStrategy::Grid { l: 8 });
    }
}
