//! One epoch of Algorithm 1 (`COLORING-EPOCH`, paper lines 8–33).
//!
//! An epoch starts from a partial coloring `(U, χ)`, initializes the
//! trivial PCC (`P_x = {0,1}^b` for all `x ∈ U`), runs `⌈b/k⌉` stages that
//! each pin `k` more bits of every proposal subcube (3 passes per stage),
//! then makes one more pass to collect the would-be-monochromatic edge set
//! `F`, commits the proposed colors on a Turán independent set of `(U, F)`,
//! and returns.
//!
//! Key invariants maintained (and asserted):
//! * `slack(x | P_x) ≥ 1` after every stage (Lemma 3.6) — enforced
//!   structurally because `g_w` never selects a zero-slack pattern;
//! * each committed color is valid (`≤ ∆`) and unused in the committed
//!   vertex's colored neighborhood;
//! * under theory parameters, `|F| ≤ |U|` (Lemma 3.7) — measured and
//!   reported, since the grid derandomization only guarantees it
//!   empirically.

use crate::det::config::DetConfig;
use crate::det::derand::{select_hash, SelectedHash};
use crate::det::subcube::Subcube;
use crate::det::tables::StageTables;
use sc_graph::{turan_independent_set, Coloring, Graph, VertexId};
use sc_hash::modp::ceil_log2;
use sc_hash::prime_in_range;
use sc_stream::{counter_bits, edge_bits, SpaceMeter, StreamSource};

/// What an epoch accomplished.
#[derive(Debug, Clone)]
pub struct EpochOutcome {
    /// Vertices committed (removed from `U`).
    pub committed: usize,
    /// `|F|` at epoch end.
    pub f_size: usize,
    /// `|U|` at epoch start.
    pub u_size: usize,
    /// Whether `|F| > |U|` (theory bound of Lemma 3.7 violated — possible
    /// only under grid derandomization; recorded for experiment F7).
    pub f_bound_violated: bool,
    /// Per-stage potential `Φ(P_{h⋆})` values (empty unless tracked).
    pub stage_phis: Vec<f64>,
    /// Number of stages run.
    pub stages: usize,
}

/// Runs one epoch, extending `coloring` and shrinking `u_set` in place.
#[allow(clippy::too_many_arguments)]
pub fn coloring_epoch<S: StreamSource + ?Sized>(
    stream: &S,
    n: usize,
    delta: usize,
    coloring: &mut Coloring,
    u_set: &mut Vec<VertexId>,
    config: &DetConfig,
    meter: &mut SpaceMeter,
) -> EpochOutcome {
    assert!(!u_set.is_empty(), "epoch requires a nonempty uncolored set");
    let u_size = u_set.len();
    let b = ceil_log2(delta as u64 + 1); // colors are b-bit vectors
    let log_n = u64::from(ceil_log2(n as u64)).max(1);
    // k = 1 + ⌊log₂(n/|U|)⌋, clamped into [1, b].
    let k = (1 + (n as u64 / u_size as u64).ilog2()).clamp(1, b.max(1));

    // The PCC: subcubes for uncolored vertices (b·|U| bits, paper's O(n log ∆)).
    let mut sub: Vec<Subcube> = vec![Subcube::full(b); n];
    let pcc_bits = u_size as u64 * u64::from(b.max(1));
    meter.charge(pcc_bits);

    let p = prime_in_range(8 * n as u64 * log_n, 16 * n as u64 * log_n)
        .expect("Bertrand: the interval [8nL, 16nL] contains a prime");

    let mut in_u = vec![false; n];
    for &x in u_set.iter() {
        in_u[x as usize] = true;
    }

    let num_stages = if b == 0 { 0 } else { b.div_ceil(k) as usize };
    let mut stage_phis = Vec::new();

    for stage in 0..num_stages {
        // Block width: k, except the final stage takes the remainder.
        let fixed_so_far = stage as u32 * k;
        let bw = k.min(b - fixed_so_far);
        let patterns = 1usize << bw;

        // ---- Pass 1: used-color counters → slack table (eq. 1). ----
        let counter_b = counter_bits(delta as u64 + 1);
        meter.charge(u_size as u64 * patterns as u64 * counter_b);
        let mut pos = vec![u32::MAX; n];
        for (i, &x) in u_set.iter().enumerate() {
            pos[x as usize] = i as u32;
        }
        let mut used = vec![0u64; u_size * patterns];
        for item in stream.pass() {
            let Some(e) = item.as_edge() else { continue };
            let (a, c) = e.endpoints();
            for (x, y) in [(a, c), (c, a)] {
                if !in_u[x as usize] || in_u[y as usize] {
                    continue;
                }
                if let Some(chi_y) = coloring.get(y) {
                    if sub[x as usize].contains(chi_y) {
                        let j = sub[x as usize].block_of(chi_y, bw);
                        used[pos[x as usize] as usize * patterns + j as usize] += 1;
                    }
                }
            }
        }
        let mut slack = vec![0u64; u_size * patterns];
        for (i, &x) in u_set.iter().enumerate() {
            for j in 0..patterns {
                let child = sub[x as usize].child(bw, j as u64);
                let avail = child.count_at_most(delta as u64);
                let u = used[i * patterns + j];
                slack[i * patterns + j] = avail.saturating_sub(u);
            }
        }
        let tables = StageTables::build(n, u_set, patterns, slack, p, log_n);

        // ---- Passes 2–3: tournament selection of h⋆. ----
        let group: Vec<u64> =
            (0..n).map(|x| if in_u[x] { sub[x].fixed_value() } else { u64::MAX }).collect();
        let SelectedHash { hash, phi, accumulators } =
            select_hash(stream, &group, &tables, config.derand);
        meter.charge(accumulators as u64 * 2 * log_n);
        if config.track_potential {
            stage_phis.push(phi);
        }

        // ---- Tighten the PCC (line 27). ----
        for &x in u_set.iter() {
            let dense = tables.position(x).expect("x is uncolored");
            let t = hash.eval(x as u64);
            let j = tables.gw(dense, t);
            sub[x as usize] = sub[x as usize].child(bw, j as u64);
        }

        meter.release(u_size as u64 * patterns as u64 * counter_b);
        meter.release(accumulators as u64 * 2 * log_n);
    }

    // ---- End-of-epoch pass: collect F (lines 28–29). ----
    debug_assert!(u_set.iter().all(|&x| sub[x as usize].is_singleton()));
    let mut f_edges = Vec::new();
    for item in stream.pass() {
        let Some(e) = item.as_edge() else { continue };
        let (u, v) = e.endpoints();
        if in_u[u as usize]
            && in_u[v as usize]
            && sub[u as usize].singleton_color() == sub[v as usize].singleton_color()
        {
            f_edges.push(e);
        }
    }
    let f_size = f_edges.len();
    meter.charge(f_size as u64 * edge_bits(n));
    let f_bound_violated = f_size > u_size;

    // ---- Independent set + commit (lines 30–33). ----
    let f_graph = Graph::from_edges(n, f_edges.iter().copied());
    let independent = turan_independent_set(&f_graph, u_set);
    for &x in &independent {
        let c = sub[x as usize].singleton_color();
        debug_assert!(c <= delta as u64, "committed color {c} > ∆ = {delta}");
        coloring.set(x, c);
        in_u[x as usize] = false;
    }
    u_set.retain(|&x| in_u[x as usize]);

    meter.release(f_size as u64 * edge_bits(n));
    meter.release(pcc_bits);

    EpochOutcome {
        committed: independent.len(),
        f_size,
        u_size,
        f_bound_violated,
        stage_phis,
        stages: num_stages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_graph::generators;
    use sc_stream::StoredStream;

    fn run_one_epoch(
        g: &sc_graph::Graph,
        config: &DetConfig,
    ) -> (Coloring, Vec<VertexId>, EpochOutcome) {
        let n = g.n();
        let delta = g.max_degree();
        let stream = StoredStream::from_graph(g);
        let mut coloring = Coloring::empty(n);
        let mut u_set: Vec<VertexId> = (0..n as u32).collect();
        let mut meter = SpaceMeter::new();
        let out = coloring_epoch(&stream, n, delta, &mut coloring, &mut u_set, config, &mut meter);
        (coloring, u_set, out)
    }

    #[test]
    fn epoch_commits_a_constant_fraction() {
        let g = generators::gnp_with_max_degree(48, 8, 0.4, 3);
        let (coloring, u_set, out) = run_one_epoch(&g, &DetConfig::default());
        assert!(coloring.is_proper_partial(&g));
        assert_eq!(out.u_size, 48);
        assert_eq!(out.committed + u_set.len(), 48);
        // Lemma 3.8: at least a third commits (needs |F| ≤ |U|).
        if !out.f_bound_violated {
            assert!(
                out.committed * 3 >= 48,
                "only {} of 48 committed with |F| = {}",
                out.committed,
                out.f_size
            );
        }
    }

    #[test]
    fn committed_colors_are_valid_and_proper() {
        let g = generators::gnp_with_max_degree(32, 6, 0.5, 9);
        let delta = g.max_degree() as u64;
        let (coloring, _, _) = run_one_epoch(&g, &DetConfig::default());
        assert!(coloring.is_proper_partial(&g));
        for (_, c) in coloring.assignments() {
            assert!(c <= delta);
        }
    }

    #[test]
    fn epoch_on_clique_still_progresses() {
        let g = generators::complete(9);
        let (coloring, u_set, out) = run_one_epoch(&g, &DetConfig::default());
        assert!(coloring.is_proper_partial(&g));
        assert!(out.committed >= 1);
        assert!(u_set.len() < 9);
    }

    #[test]
    fn epoch_with_edgeless_graph_commits_everything() {
        let g = sc_graph::Graph::empty(10);
        // ∆ = 0 would short-circuit in the driver; use ∆ = 1 semantics by
        // giving the epoch a positive delta.
        let stream = StoredStream::from_graph(&g);
        let mut coloring = Coloring::empty(10);
        let mut u_set: Vec<VertexId> = (0..10).collect();
        let mut meter = SpaceMeter::new();
        let out = coloring_epoch(
            &stream,
            10,
            1,
            &mut coloring,
            &mut u_set,
            &DetConfig::default(),
            &mut meter,
        );
        assert_eq!(out.f_size, 0);
        assert_eq!(out.committed, 10, "no conflicts ⇒ all commit");
        assert!(u_set.is_empty());
    }

    #[test]
    fn potential_trace_recorded_when_tracked() {
        let g = generators::gnp_with_max_degree(24, 6, 0.5, 1);
        let cfg = DetConfig { track_potential: true, ..DetConfig::default() };
        let (_, _, out) = run_one_epoch(&g, &cfg);
        assert_eq!(out.stage_phis.len(), out.stages);
        // Lemma 3.5: final potential ≤ 2|U| (grid mode: check generously).
        if let Some(&last) = out.stage_phis.last() {
            assert!(last <= 2.0 * out.u_size as f64 + 1e-6, "Φ_ℓ = {last} too large");
        }
    }

    #[test]
    fn f_bound_holds_on_random_graphs() {
        // Lemma 3.7 (|F| ≤ |U|) should hold in practice with grid derand.
        for seed in 0..4u64 {
            let g = generators::gnp_with_max_degree(40, 8, 0.35, seed);
            let (_, _, out) = run_one_epoch(&g, &DetConfig::default());
            assert!(
                !out.f_bound_violated,
                "seed {seed}: |F| = {} > |U| = {}",
                out.f_size, out.u_size
            );
        }
    }

    #[test]
    fn space_meter_returns_to_baseline() {
        let g = generators::gnp_with_max_degree(30, 5, 0.4, 2);
        let stream = StoredStream::from_graph(&g);
        let mut coloring = Coloring::empty(30);
        let mut u_set: Vec<VertexId> = (0..30).collect();
        let mut meter = SpaceMeter::new();
        coloring_epoch(
            &stream,
            30,
            5,
            &mut coloring,
            &mut u_set,
            &DetConfig::default(),
            &mut meter,
        );
        assert_eq!(meter.current_bits(), 0, "epoch must release all charges");
        assert!(meter.peak_bits() > 0);
    }
}
