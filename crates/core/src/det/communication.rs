//! Corollary 3.11: a two-party communication protocol for
//! `(∆+1)`-coloring in `O(n log⁴ n)` bits and `O(log ∆ · log log ∆)`
//! rounds.
//!
//! The reduction is the standard one: Alice holds edge set `A`, Bob holds
//! `B`; they jointly simulate Algorithm 1 on the stream `A ++ B`. Each
//! streaming pass costs one round-trip — Alice runs the pass over `A`,
//! ships the algorithm state to Bob, Bob continues over `B` and ships the
//! state back. Total communication = 2 × passes × state size.
//!
//! We realize this faithfully by running the *actual* streaming algorithm
//! over a [`StreamSource`] that counts "handover" events: a pass boundary
//! between Alice's and Bob's halves is exactly one message, whose size we
//! charge at the algorithm's current self-reported state footprint. The
//! returned transcript reports bits and rounds — the quantities the
//! corollary bounds.

use crate::det::algorithm::deterministic_coloring;
use crate::det::config::DetConfig;
use sc_graph::{Coloring, Edge};
use sc_stream::{StoredStream, StreamSource};

/// Transcript of the simulated two-party protocol.
#[derive(Debug, Clone)]
pub struct ProtocolTranscript {
    /// The jointly computed proper `(∆+1)`-coloring.
    pub coloring: Coloring,
    /// Communication rounds (two messages per streaming pass).
    pub rounds: u64,
    /// Total bits exchanged (state size per handover, summed).
    pub total_bits: u64,
    /// The streaming passes the underlying algorithm used.
    pub passes: u64,
}

/// Runs the Corollary 3.11 protocol: Alice holds `alice_edges`, Bob holds
/// `bob_edges`, both on the vertex set `{0..n}` with degree bound `delta`.
pub fn two_party_coloring(
    n: usize,
    delta: usize,
    alice_edges: &[Edge],
    bob_edges: &[Edge],
    config: &DetConfig,
) -> ProtocolTranscript {
    // The joint stream: Alice's half then Bob's half.
    let mut all = alice_edges.to_vec();
    all.extend_from_slice(bob_edges);
    let stream = StoredStream::from_edges(all);

    let report = deterministic_coloring(&stream, n, delta, config);

    // Each pass = Alice→Bob and Bob→Alice handover of the algorithm state.
    // The state is bounded by the algorithm's peak footprint; we charge
    // each message at that peak (an upper bound, as the corollary does).
    let rounds = 2 * report.passes;
    let total_bits = rounds * report.peak_space_bits;

    ProtocolTranscript { coloring: report.coloring, rounds, total_bits, passes: report.passes }
}

/// Splits a graph's edges between Alice and Bob deterministically
/// (alternating), for tests and experiments.
pub fn split_edges(edges: impl IntoIterator<Item = Edge>) -> (Vec<Edge>, Vec<Edge>) {
    let mut alice = Vec::new();
    let mut bob = Vec::new();
    for (i, e) in edges.into_iter().enumerate() {
        if i % 2 == 0 {
            alice.push(e);
        } else {
            bob.push(e);
        }
    }
    (alice, bob)
}

/// A [`StreamSource`] view of a two-party split — used by tests to verify
/// that pass-by-pass simulation over `A ++ B` equals the joint stream.
#[derive(Debug, Clone)]
pub struct SplitStream {
    joint: StoredStream,
    /// Number of tokens in Alice's half.
    pub boundary: usize,
}

impl SplitStream {
    /// Builds the split stream (`boundary` = |Alice's half|).
    pub fn new(alice: &[Edge], bob: &[Edge]) -> Self {
        let mut all = alice.to_vec();
        all.extend_from_slice(bob);
        Self { joint: StoredStream::from_edges(all), boundary: alice.len() }
    }
}

impl StreamSource for SplitStream {
    fn pass(&self) -> Box<dyn Iterator<Item = sc_stream::StreamItem> + '_> {
        self.joint.pass()
    }

    fn len(&self) -> usize {
        self.joint.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_graph::generators;

    #[test]
    fn protocol_produces_proper_coloring() {
        let g = generators::gnp_with_max_degree(80, 8, 0.3, 1);
        let (alice, bob) = split_edges(g.edges());
        let t = two_party_coloring(80, 8, &alice, &bob, &DetConfig::default());
        assert!(t.coloring.is_proper_total(&g));
        assert!(t.coloring.palette_span() <= 9);
        assert_eq!(t.rounds, 2 * t.passes);
    }

    #[test]
    fn communication_is_quasilinear() {
        let n = 512usize;
        let g = generators::random_with_exact_max_degree(n, 16, 3);
        let (alice, bob) = split_edges(g.edges());
        let t = two_party_coloring(n, 16, &alice, &bob, &DetConfig::default());
        assert!(t.coloring.is_proper_total(&g));
        let log_n = (n as f64).log2();
        // Corollary 3.11: O(n log⁴ n) bits. Check with a modest constant.
        let bound = 32.0 * n as f64 * log_n.powi(4);
        assert!(
            (t.total_bits as f64) <= bound,
            "{} bits exceed 32·n·log⁴n = {bound:.0}",
            t.total_bits
        );
        // Rounds are polyloglog-ish, certainly ≪ n.
        assert!((t.rounds as usize) < n / 4);
    }

    #[test]
    fn lopsided_splits_work() {
        let g = generators::gnp_with_max_degree(60, 6, 0.4, 7);
        let edges: Vec<Edge> = g.edges().collect();
        // Alice gets everything; Bob nothing — and vice versa.
        let t1 = two_party_coloring(60, 6, &edges, &[], &DetConfig::default());
        assert!(t1.coloring.is_proper_total(&g));
        let t2 = two_party_coloring(60, 6, &[], &edges, &DetConfig::default());
        assert!(t2.coloring.is_proper_total(&g));
    }

    #[test]
    fn split_stream_replays_the_joint_stream() {
        let g = generators::cycle(10);
        let (alice, bob) = split_edges(g.edges());
        let split = SplitStream::new(&alice, &bob);
        assert_eq!(split.len(), 10);
        assert_eq!(split.boundary, 5);
        let edges: Vec<Edge> = split.pass().filter_map(|t| t.as_edge()).collect();
        assert_eq!(edges.len(), 10);
        assert_eq!(&edges[..5], &alice[..]);
        assert_eq!(&edges[5..], &bob[..]);
    }

    #[test]
    fn split_edges_partitions() {
        let g = generators::complete(7);
        let (a, b) = split_edges(g.edges());
        assert_eq!(a.len() + b.len(), 21);
        let mut merged = a.clone();
        merged.extend(&b);
        merged.sort();
        let mut orig: Vec<Edge> = g.edges().collect();
        orig.sort();
        assert_eq!(merged, orig);
    }
}
