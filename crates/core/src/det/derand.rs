//! The two-pass derandomized hash selection (Algorithm 1, lines 19–26).
//!
//! Given the stage tables (slacks + `g_w`), the algorithm must pick a hash
//! `h⋆` from the Carter–Wegman family for which the tightened potential
//! `Φ(U, χ, P_{h⋆})` is at most (roughly) the family average. It does so
//! with **two** streaming passes:
//!
//! * pass 2 — split the family into parts (by multiplier `a`), accumulate
//!   `Σ_{h ∈ part} Φ(P_h)` per part, keep the minimizing part;
//! * pass 3 — accumulate `Φ(P_h)` for each member of that part, keep the
//!   minimizer.
//!
//! `Φ(P_h) = Σ_{{u,v} ∈ E(G[U]), P_u = P_v, j_h(u) = j_h(v)}
//!   (1/slack(u | P_{u,j}) + 1/slack(v | P_{v,j}))` where
//! `j_h(x) = g_w(x, h(x))`, so each edge contributes to an accumulator in
//! O(1) after two hash evaluations and two `g_w` lookups.
//!
//! The accumulators are `f64` (far exceeding the `(1 + 1/(8 log n))`
//! relative precision the analysis grants each pass); the space meter
//! charges them at the paper's `O(log n)` bits each.

use crate::det::config::DerandStrategy;
use crate::det::tables::StageTables;
use sc_hash::affine::GridSubfamily;
use sc_hash::{mulmod, AffineFamily, AffineHash};
use sc_stream::{StreamItem, StreamSource};

/// Result of a stage's hash selection.
#[derive(Debug, Clone)]
pub struct SelectedHash {
    /// The chosen function `h⋆`.
    pub hash: AffineHash,
    /// `Φ(U, χ, P_{h⋆})` — exact, as accumulated in pass 3.
    pub phi: f64,
    /// Number of accumulators the wider pass used (space accounting).
    pub accumulators: usize,
}

/// Runs passes 2 and 3 of a stage and returns the selected hash.
///
/// `group[x]` is a proposal-identity token: an edge `{u, v}` qualifies for
/// the potential iff both endpoints are uncolored (`group[x] ≠ u64::MAX`)
/// and `group[u] == group[v]` (i.e. `P_u = P_v`).
pub fn select_hash<S: StreamSource + ?Sized>(
    stream: &S,
    group: &[u64],
    tables: &StageTables,
    strategy: DerandStrategy,
) -> SelectedHash {
    let p = tables.p();
    let family = AffineFamily::new(p);
    let grid: GridSubfamily = match strategy {
        DerandStrategy::FullFamily => family.grid(p as usize),
        DerandStrategy::Grid { l } => family.grid(l),
    };

    // ---- Pass 2: part sums. ----
    let parts = grid.num_parts();
    let mut part_sums = vec![0.0f64; parts];
    for item in stream.pass() {
        let Some((u, v)) = qualifying(&item, group) else { continue };
        let du = tables.position(u).expect("grouped vertex must be uncolored");
        let dv = tables.position(v).expect("grouped vertex must be uncolored");
        for (pi, sum) in part_sums.iter_mut().enumerate() {
            for h in grid.part(pi) {
                *sum += phi_contribution(h, u, v, du, dv, tables);
            }
        }
    }
    let best_part = part_sums
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .expect("family has at least one part");

    // ---- Pass 3: members of the winning part. ----
    let members: Vec<AffineHash> = grid.part(best_part).collect();
    let mut member_sums = vec![0.0f64; members.len()];
    for item in stream.pass() {
        let Some((u, v)) = qualifying(&item, group) else { continue };
        let du = tables.position(u).expect("grouped vertex must be uncolored");
        let dv = tables.position(v).expect("grouped vertex must be uncolored");
        for (mi, h) in members.iter().enumerate() {
            member_sums[mi] += phi_contribution(*h, u, v, du, dv, tables);
        }
    }
    let (best_member, &phi) =
        member_sums.iter().enumerate().min_by(|a, b| a.1.total_cmp(b.1)).expect("part is nonempty");

    SelectedHash { hash: members[best_member], phi, accumulators: parts.max(members.len()) }
}

/// The edge's contribution to `Φ(P_h)`, or 0 if `h` separates the
/// endpoints' proposal patterns.
#[inline]
fn phi_contribution(
    h: AffineHash,
    u: u32,
    v: u32,
    du: usize,
    dv: usize,
    tables: &StageTables,
) -> f64 {
    let tu = (mulmod(h.a, u as u64, h.p) + h.b) % h.p;
    let tv = (mulmod(h.a, v as u64, h.p) + h.b) % h.p;
    let ju = tables.gw(du, tu);
    let jv = tables.gw(dv, tv);
    if ju == jv {
        tables.inv_slack(du, ju) + tables.inv_slack(dv, jv)
    } else {
        0.0
    }
}

#[inline]
fn qualifying(item: &StreamItem, group: &[u64]) -> Option<(u32, u32)> {
    let e = item.as_edge()?;
    let (u, v) = e.endpoints();
    let gu = group[u as usize];
    let gv = group[v as usize];
    (gu != u64::MAX && gu == gv).then_some((u, v))
}

/// Computes `Φ(P_h)` exactly for a single `h` (testing / experiment F7).
pub fn phi_of_hash<S: StreamSource + ?Sized>(
    stream: &S,
    group: &[u64],
    tables: &StageTables,
    h: AffineHash,
) -> f64 {
    let mut phi = 0.0;
    for item in stream.pass() {
        let Some((u, v)) = qualifying(&item, group) else { continue };
        let du = tables.position(u).unwrap();
        let dv = tables.position(v).unwrap();
        phi += phi_contribution(h, u, v, du, dv, tables);
    }
    phi
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_graph::{generators, Graph};
    use sc_stream::StoredStream;

    /// Builds toy tables where every vertex has the same slack row.
    fn uniform_tables(n: usize, u_set: &[u32], patterns: usize, p: u64) -> StageTables {
        let slack: Vec<u64> = u_set.iter().flat_map(|_| vec![2u64; patterns]).collect();
        StageTables::build(n, u_set, patterns, slack, p, 4)
    }

    fn group_all_same(n: usize, u_set: &[u32]) -> Vec<u64> {
        let mut g = vec![u64::MAX; n];
        for &x in u_set {
            g[x as usize] = 7;
        }
        g
    }

    #[test]
    fn selection_beats_family_average_on_small_instance() {
        let g = generators::complete(8);
        let stream = StoredStream::from_graph(&g);
        let u_set: Vec<u32> = (0..8).collect();
        let p = sc_hash::prime_in_range(257, 1 << 14).unwrap();
        let tables = uniform_tables(8, &u_set, 4, p);
        let group = group_all_same(8, &u_set);

        let sel = select_hash(&stream, &group, &tables, DerandStrategy::Grid { l: 8 });
        // Compute the grid average for comparison.
        let fam = AffineFamily::new(p);
        let grid = fam.grid(8);
        let mut total = 0.0;
        let mut count = 0usize;
        for pi in 0..grid.num_parts() {
            for h in grid.part(pi) {
                total += phi_of_hash(&stream, &group, &tables, h);
                count += 1;
            }
        }
        let avg = total / count as f64;
        assert!(
            sel.phi <= avg + 1e-9,
            "selected Φ = {} should not exceed grid average {avg}",
            sel.phi
        );
        // Consistency: the reported phi matches an exact recomputation.
        let recomputed = phi_of_hash(&stream, &group, &tables, sel.hash);
        assert!((sel.phi - recomputed).abs() < 1e-9);
    }

    #[test]
    fn full_family_matches_exhaustive_minimum_of_its_parts() {
        // Tiny instance so the p² tournament is feasible.
        let g = generators::cycle(4);
        let stream = StoredStream::from_graph(&g);
        let u_set: Vec<u32> = (0..4).collect();
        let p = 67u64; // small prime ≥ 8·4·2 = 64
        let tables = uniform_tables(4, &u_set, 2, p);
        let group = group_all_same(4, &u_set);

        let sel = select_hash(&stream, &group, &tables, DerandStrategy::FullFamily);
        // The tournament picks min-of(best part); verify it's ≤ the family
        // average (the guarantee the analysis needs).
        let fam = AffineFamily::new(p);
        let mut total = 0.0;
        for h in fam.iter_all() {
            total += phi_of_hash(&stream, &group, &tables, h);
        }
        let avg = total / (p * p) as f64;
        assert!(sel.phi <= avg + 1e-9, "{} > avg {avg}", sel.phi);
    }

    #[test]
    fn separated_groups_contribute_nothing() {
        // Two vertices in different groups: Φ must be 0 for every hash.
        let g = Graph::from_edges(2, [sc_graph::Edge::new(0, 1)]);
        let stream = StoredStream::from_graph(&g);
        let p = 97u64;
        let tables = uniform_tables(2, &[0, 1], 2, p);
        let group = vec![1u64, 2u64];
        let sel = select_hash(&stream, &group, &tables, DerandStrategy::Grid { l: 4 });
        assert_eq!(sel.phi, 0.0);
    }

    #[test]
    fn colored_vertices_are_excluded() {
        let g = generators::complete(3);
        let stream = StoredStream::from_graph(&g);
        let p = 97u64;
        // Only vertices 0 and 1 are uncolored.
        let tables = uniform_tables(3, &[0, 1], 2, p);
        let mut group = vec![5u64, 5u64, u64::MAX];
        group[2] = u64::MAX;
        let sel = select_hash(&stream, &group, &tables, DerandStrategy::Grid { l: 4 });
        // Only edge (0,1) can contribute; Φ ∈ {0, 1.0} since slacks are 2.
        assert!(sel.phi <= 1.0 + 1e-9);
    }

    #[test]
    fn accumulator_count_reported() {
        let g = generators::cycle(5);
        let stream = StoredStream::from_graph(&g);
        let p = 211u64;
        let tables = uniform_tables(5, &[0, 1, 2, 3, 4], 2, p);
        let group = group_all_same(5, &[0, 1, 2, 3, 4]);
        let sel = select_hash(&stream, &group, &tables, DerandStrategy::Grid { l: 6 });
        assert_eq!(sel.accumulators, 6);
    }
}
