//! Incremental/from-scratch query equivalence law (the query cache's
//! foundational contract): for every [`StreamingColorer`] with an
//! incremental path, [`query_incremental`] must be observationally
//! identical to [`query`] at every prefix, under arbitrary interleavings
//! of batched ingestion and queries of either kind. The epoch-keyed
//! caches in `alg2`/`alg3`/`store_all`/`bg18`/`bcg20` patch censuses,
//! mirror graphs, and per-phase colorings; this test is what makes that
//! reuse safe to trust.
//!
//! [`query`]: sc_stream::StreamingColorer::query
//! [`query_incremental`]: sc_stream::StreamingColorer::query_incremental

use proptest::prelude::*;
use sc_graph::{generators, Edge};
use sc_stream::{EngineConfig, QuerySchedule, StreamEngine, StreamingColorer};
use streamcolor::robust::{auto_robust_colorer, StoreAllColorer};
use streamcolor::{Bcg20Colorer, Bg18Colorer, RandEfficientColorer, RobustColorer, RobustParams};

/// Splits `edges` into chunks whose sizes are drawn from `cuts`.
fn chunkings(edges: &[Edge], cuts: &[usize]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut start = 0;
    let mut i = 0;
    while start < edges.len() {
        let size = cuts[i % cuts.len()].max(1).min(edges.len() - start);
        spans.push((start, start + size));
        start += size;
        i += 1;
    }
    spans
}

/// Feeds `inc` and `scr` identically chunk by chunk; after every chunk,
/// `inc.query_incremental()` must match `scr.query()`. Exercises the pure
/// hit path (back-to-back incremental queries) and mixed usage (scratch
/// queries interleaved on the *same* instance must not corrupt the cache).
fn assert_equivalent<C: StreamingColorer>(
    mut inc: C,
    mut scr: C,
    edges: &[Edge],
    cuts: &[usize],
    label: &str,
) -> Result<(), TestCaseError> {
    for (k, &(a, b)) in chunkings(edges, cuts).iter().enumerate() {
        inc.process_batch(&edges[a..b]);
        scr.process_batch(&edges[a..b]);
        let reference = scr.query();
        prop_assert_eq!(
            inc.query_incremental(),
            reference.clone(),
            "{}: incremental diverges from scratch after {} edges",
            label,
            b
        );
        if k % 2 == 0 {
            // No ingestion since the last query: the fresh-artifact path.
            prop_assert_eq!(
                inc.query_incremental(),
                reference.clone(),
                "{}: repeated incremental query diverges (hit path) after {} edges",
                label,
                b
            );
        }
        if k % 3 == 0 {
            // A scratch query on the incremental instance must agree and
            // must not poison later incremental queries.
            prop_assert_eq!(
                inc.query(),
                reference,
                "{}: scratch query on the cached instance diverges after {} edges",
                label,
                b
            );
        }
    }
    prop_assert_eq!(
        inc.peak_space_bits(),
        scr.peak_space_bits(),
        "{}: caching leaked into the space report",
        label
    );
    Ok(())
}

/// Ingestion/query interleavings every case sweeps: query-per-edge (the
/// adversarial-game cadence), small ragged chunks, and whole-stream.
fn cut_menu(whole: usize) -> Vec<Vec<usize>> {
    vec![vec![1], vec![2, 3], vec![7, 1, 13], vec![whole.max(1)]]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn alg2_incremental_equivalence((n, delta, seed) in (20usize..70, 3usize..9, any::<u64>())) {
        let g = generators::gnp_with_max_degree(n, delta, 0.5, seed);
        let edges = generators::shuffled_edges(&g, seed ^ 1);
        for cuts in cut_menu(edges.len()) {
            assert_equivalent(
                RobustColorer::new(n, delta, seed ^ 2),
                RobustColorer::new(n, delta, seed ^ 2),
                &edges,
                &cuts,
                "alg2",
            )?;
        }
    }

    #[test]
    fn alg2_incremental_equivalence_across_rotations(seed in any::<u64>()) {
        // Small buffers force mid-stream epoch rotations — every cached
        // phase must be dropped at each one.
        let params = RobustParams {
            buffer_capacity: 7,
            num_epochs: 96,
            ..RobustParams::theorem3(40, 12)
        };
        let g = generators::gnp_with_max_degree(40, 12, 0.6, seed);
        let edges = generators::shuffled_edges(&g, seed);
        for cuts in cut_menu(edges.len()) {
            assert_equivalent(
                RobustColorer::with_params(params, seed ^ 5),
                RobustColorer::with_params(params, seed ^ 5),
                &edges,
                &cuts,
                "alg2-rotating",
            )?;
        }
    }

    #[test]
    fn alg3_incremental_equivalence((n, delta, seed) in (20usize..60, 3usize..9, any::<u64>())) {
        // m can exceed n, so the n-edge alg3 buffer rotates mid-stream.
        let g = generators::gnp_with_max_degree(n, delta, 0.5, seed);
        let edges = generators::shuffled_edges(&g, seed ^ 1);
        for cuts in cut_menu(edges.len()) {
            assert_equivalent(
                RandEfficientColorer::new(n, delta, seed ^ 3),
                RandEfficientColorer::new(n, delta, seed ^ 3),
                &edges,
                &cuts,
                "alg3",
            )?;
        }
    }

    #[test]
    fn store_all_incremental_equivalence((n, seed) in (10usize..60, any::<u64>())) {
        let g = generators::gnp_with_max_degree(n, 6, 0.4, seed);
        let edges = generators::shuffled_edges(&g, seed);
        for cuts in cut_menu(edges.len()) {
            assert_equivalent(
                StoreAllColorer::new(n),
                StoreAllColorer::new(n),
                &edges,
                &cuts,
                "store-all",
            )?;
        }
    }

    #[test]
    fn auto_robust_incremental_equivalence((n, delta, seed) in (30usize..80, 3usize..40, any::<u64>())) {
        let g = generators::gnp_with_max_degree(n, delta, 0.5, seed);
        let edges = generators::shuffled_edges(&g, seed);
        for cuts in cut_menu(edges.len()) {
            assert_equivalent(
                auto_robust_colorer(n, delta, seed ^ 4),
                auto_robust_colorer(n, delta, seed ^ 4),
                &edges,
                &cuts,
                "auto",
            )?;
        }
    }

    #[test]
    fn bg18_incremental_equivalence((n, delta, seed) in (20usize..80, 2usize..12, any::<u64>())) {
        let g = generators::gnp_with_max_degree(n, delta, 0.4, seed);
        let edges = generators::shuffled_edges(&g, seed);
        for cuts in cut_menu(edges.len()) {
            assert_equivalent(
                Bg18Colorer::new(n, delta as u64, seed ^ 6),
                Bg18Colorer::new(n, delta as u64, seed ^ 6),
                &edges,
                &cuts,
                "bg18",
            )?;
        }
    }

    #[test]
    fn bcg20_incremental_equivalence((n, seed) in (20usize..70, any::<u64>())) {
        let g = generators::gnp_with_max_degree(n, 8, 0.4, seed);
        let edges = generators::shuffled_edges(&g, seed);
        for cuts in cut_menu(edges.len()) {
            assert_equivalent(
                Bcg20Colorer::for_graph(&g, 0.5, seed ^ 7),
                Bcg20Colorer::for_graph(&g, 0.5, seed ^ 7),
                &edges,
                &cuts,
                "bcg20",
            )?;
        }
    }

    #[test]
    fn engine_checkpoints_identical_under_both_query_paths(
        (n, delta, seed, every) in (30usize..70, 3usize..10, any::<u64>(), 1usize..9)
    ) {
        // The same schedule driven through the engine must produce
        // bit-identical checkpoints whether queries go incremental
        // (default) or from-scratch.
        let g = generators::gnp_with_max_degree(n, delta, 0.5, seed);
        let edges = generators::shuffled_edges(&g, seed);
        let schedule = QuerySchedule::EveryEdges(every);
        let base = EngineConfig::batched(8).with_schedule(schedule);
        let specs: Vec<Box<dyn Fn() -> Box<dyn StreamingColorer>>> = vec![
            Box::new(move || Box::new(RobustColorer::new(n, delta, seed ^ 11))),
            Box::new(move || Box::new(RandEfficientColorer::new(n, delta, seed ^ 12))),
            Box::new(move || Box::new(StoreAllColorer::new(n))),
            Box::new(move || Box::new(Bg18Colorer::new(n, delta as u64, seed ^ 13))),
        ];
        for build in &specs {
            let mut a = build();
            let ra = StreamEngine::new(base.clone()).run(a.as_mut(), &edges);
            let mut b = build();
            let rb = StreamEngine::new(base.clone().scratch_queries()).run(b.as_mut(), &edges);
            prop_assert_eq!(ra.final_coloring, rb.final_coloring, "{} final", a.name());
            prop_assert_eq!(ra.checkpoints.len(), rb.checkpoints.len());
            for (ca, cb) in ra.checkpoints.iter().zip(&rb.checkpoints) {
                prop_assert_eq!(ca.prefix_len, cb.prefix_len);
                prop_assert_eq!(&ca.coloring, &cb.coloring, "{} prefix {}", a.name(), ca.prefix_len);
                prop_assert_eq!(ca.space_bits, cb.space_bits, "{} prefix {}", a.name(), ca.prefix_len);
            }
            // The incremental run must actually have reused its cache.
            if let Some(stats) = a.query_cache_stats() {
                prop_assert!(
                    stats.queries() > 0 && stats.hits + stats.patches > 0,
                    "{}: incremental path never engaged ({:?})",
                    a.name(),
                    stats
                );
            }
        }
    }
}
