//! Batch/sequential equivalence law (the engine's foundational contract):
//! for every [`StreamingColorer`] this crate exposes, feeding a stream
//! through `process_batch` under an *arbitrary chunking* must produce
//! exactly the per-edge results — identical colorings from every later
//! query and an identical space report. The batched fast paths in
//! `alg2`/`alg3`/`store_all`/`bg18`/`bcg20` reorganize hashing and
//! candidate-census work per chunk; this test is what makes those
//! reorganizations safe to trust.

use proptest::prelude::*;
use sc_graph::{generators, Edge};
use sc_stream::StreamingColorer;
use streamcolor::robust::{auto_robust_colorer, StoreAllColorer};
use streamcolor::{
    Bcg20Colorer, Bg18Colorer, Cgs22Colorer, PaletteSparsification, RandEfficientColorer,
    RobustColorer, RobustParams, TrivialColorer,
};

/// Splits `edges` into chunks whose sizes are drawn from `cuts`.
fn chunkings(edges: &[Edge], cuts: &[usize]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut start = 0;
    let mut i = 0;
    while start < edges.len() {
        let size = cuts[i % cuts.len()].max(1).min(edges.len() - start);
        spans.push((start, start + size));
        start += size;
        i += 1;
    }
    spans
}

/// Feeds `edges` per-edge into `seq` and chunked into `bat`, comparing
/// the final coloring, an extra post-hoc query, and the space report.
fn assert_equivalent<C: StreamingColorer>(
    mut seq: C,
    mut bat: C,
    edges: &[Edge],
    cuts: &[usize],
    label: &str,
) -> Result<(), TestCaseError> {
    for &e in edges {
        seq.process(e);
    }
    for &(a, b) in &chunkings(edges, cuts) {
        bat.process_batch(&edges[a..b]);
    }
    let (cs, cb) = (seq.query(), bat.query());
    prop_assert_eq!(cs, cb, "{}: colorings diverge", label);
    prop_assert_eq!(
        seq.peak_space_bits(),
        bat.peak_space_bits(),
        "{}: space reports diverge",
        label
    );
    // Queries must stay equivalent if the stream continues afterwards.
    prop_assert_eq!(seq.query(), bat.query(), "{}: re-query diverges", label);
    Ok(())
}

/// The chunk-size menu every case sweeps: per-edge, tiny, ragged odd
/// sizes, and whole-stream.
fn cut_menu(whole: usize) -> Vec<Vec<usize>> {
    vec![vec![1], vec![2, 3], vec![7, 1, 13], vec![whole.max(1)], vec![5, whole.max(1)]]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn robust_alg2_batch_equivalence((n, delta, seed) in (20usize..70, 3usize..9, any::<u64>())) {
        let g = generators::gnp_with_max_degree(n, delta, 0.5, seed);
        let edges = generators::shuffled_edges(&g, seed ^ 1);
        for cuts in cut_menu(edges.len()) {
            assert_equivalent(
                RobustColorer::new(n, delta, seed ^ 2),
                RobustColorer::new(n, delta, seed ^ 2),
                &edges,
                &cuts,
                "alg2",
            )?;
        }
    }

    #[test]
    fn robust_alg2_beta_and_epoch_rotation(seed in any::<u64>()) {
        // Small buffers force mid-chunk epoch rotations — the trickiest
        // batched path (runs must split exactly at rotation points).
        let params = RobustParams {
            buffer_capacity: 7,
            num_epochs: 96,
            ..RobustParams::theorem3(40, 12)
        };
        let g = generators::gnp_with_max_degree(40, 12, 0.6, seed);
        let edges = generators::shuffled_edges(&g, seed);
        for cuts in cut_menu(edges.len()) {
            assert_equivalent(
                RobustColorer::with_params(params, seed ^ 5),
                RobustColorer::with_params(params, seed ^ 5),
                &edges,
                &cuts,
                "alg2-rotating",
            )?;
        }
    }

    #[test]
    fn robust_alg3_batch_equivalence((n, delta, seed) in (20usize..60, 3usize..9, any::<u64>())) {
        let g = generators::gnp_with_max_degree(n, delta, 0.5, seed);
        let edges = generators::shuffled_edges(&g, seed ^ 1);
        for cuts in cut_menu(edges.len()) {
            assert_equivalent(
                RandEfficientColorer::new(n, delta, seed ^ 3),
                RandEfficientColorer::new(n, delta, seed ^ 3),
                &edges,
                &cuts,
                "alg3",
            )?;
        }
    }

    #[test]
    fn robust_alg3_evaluation_tiers_equivalent((n, delta, seed) in (20usize..60, 3usize..9, any::<u64>())) {
        // The table-driven and generic (memoized) hash-evaluation tiers
        // must agree on every interleaving: same incremental answers,
        // same scratch answers, same space report.
        let g = generators::gnp_with_max_degree(n, delta, 0.5, seed);
        let edges = generators::shuffled_edges(&g, seed ^ 1);
        for cuts in cut_menu(edges.len()) {
            let mut tabled = RandEfficientColorer::new(n, delta, seed ^ 3);
            let mut generic = RandEfficientColorer::new(n, delta, seed ^ 3);
            prop_assert!(tabled.has_table_tier(), "small ranges must tabulate");
            generic.force_generic_tier();
            for &(a, b) in &chunkings(&edges, &cuts) {
                tabled.process_batch(&edges[a..b]);
                generic.process_batch(&edges[a..b]);
                prop_assert_eq!(
                    tabled.query_incremental(),
                    generic.query_incremental(),
                    "alg3 tiers diverge (incremental) after {} edges",
                    b
                );
            }
            prop_assert_eq!(tabled.query(), generic.query(), "alg3 tiers diverge (scratch)");
            prop_assert_eq!(
                tabled.peak_space_bits(),
                generic.peak_space_bits(),
                "the table tier leaked into the space report"
            );
        }
    }

    #[test]
    fn store_all_batch_equivalence((n, seed) in (10usize..60, any::<u64>())) {
        let g = generators::gnp_with_max_degree(n, 6, 0.4, seed);
        let edges = generators::shuffled_edges(&g, seed);
        for cuts in cut_menu(edges.len()) {
            assert_equivalent(
                StoreAllColorer::new(n),
                StoreAllColorer::new(n),
                &edges,
                &cuts,
                "store-all",
            )?;
        }
    }

    #[test]
    fn auto_robust_batch_equivalence((n, delta, seed) in (30usize..80, 3usize..40, any::<u64>())) {
        let g = generators::gnp_with_max_degree(n, delta, 0.5, seed);
        let edges = generators::shuffled_edges(&g, seed);
        for cuts in cut_menu(edges.len()) {
            assert_equivalent(
                auto_robust_colorer(n, delta, seed ^ 4),
                auto_robust_colorer(n, delta, seed ^ 4),
                &edges,
                &cuts,
                "auto",
            )?;
        }
    }

    #[test]
    fn bg18_batch_equivalence((n, delta, seed) in (20usize..80, 2usize..12, any::<u64>())) {
        let g = generators::gnp_with_max_degree(n, delta, 0.4, seed);
        let edges = generators::shuffled_edges(&g, seed);
        for cuts in cut_menu(edges.len()) {
            assert_equivalent(
                Bg18Colorer::new(n, delta as u64, seed ^ 6),
                Bg18Colorer::new(n, delta as u64, seed ^ 6),
                &edges,
                &cuts,
                "bg18",
            )?;
        }
    }

    #[test]
    fn bcg20_batch_equivalence((n, seed) in (20usize..70, any::<u64>())) {
        let g = generators::gnp_with_max_degree(n, 8, 0.4, seed);
        let edges = generators::shuffled_edges(&g, seed);
        for cuts in cut_menu(edges.len()) {
            assert_equivalent(
                Bcg20Colorer::for_graph(&g, 0.5, seed ^ 7),
                Bcg20Colorer::for_graph(&g, 0.5, seed ^ 7),
                &edges,
                &cuts,
                "bcg20",
            )?;
        }
    }

    #[test]
    fn default_batch_impls_equivalent((n, delta, seed) in (20usize..60, 3usize..8, any::<u64>())) {
        // These colorers use the trait's default sequential loop; the law
        // must hold for them too (it is the engine's interface contract).
        let g = generators::gnp_with_max_degree(n, delta, 0.4, seed);
        let edges = generators::shuffled_edges(&g, seed);
        for cuts in cut_menu(edges.len()) {
            assert_equivalent(
                Cgs22Colorer::new(n, delta, seed ^ 8),
                Cgs22Colorer::new(n, delta, seed ^ 8),
                &edges,
                &cuts,
                "cgs22",
            )?;
            assert_equivalent(
                PaletteSparsification::with_theory_lists(n, delta, seed ^ 9),
                PaletteSparsification::with_theory_lists(n, delta, seed ^ 9),
                &edges,
                &cuts,
                "palette-sparsification",
            )?;
            assert_equivalent(
                TrivialColorer::new(n),
                TrivialColorer::new(n),
                &edges,
                &cuts,
                "trivial",
            )?;
        }
    }
}
