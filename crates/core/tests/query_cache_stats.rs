//! Locked-in `QueryCache` outcome counters.
//!
//! The incremental-equivalence property test proves the incremental
//! query path *answers* correctly; this test pins down *how* it answers:
//! for one fixed ingest/query interleaving, each colorer's
//! hit/patch/miss/invalidation counters must match the committed table
//! exactly. A counter drifting (a hit degrading to a patch, a patch to a
//! from-scratch miss) would keep every equivalence test green while
//! silently giving back the PR 2 query speedups — this is the regression
//! net for that.
//!
//! The interleaving (5 `query_incremental` calls):
//!
//! ```text
//! ingest 10 edges · query · query      (miss: first build; hit: same epoch)
//! ingest 5 edges  · query              (patch: small gap)
//! ingest 150 edges · query · query     (alg2/alg3: the ingest crosses an
//!                                       n-edge buffer rotation → explicit
//!                                       invalidation, so a miss + a hit;
//!                                       mirror-based colorers patch + hit)
//! ```

use sc_graph::generators;
use sc_stream::{CacheStats, StreamOrder, StreamingColorer};
use streamcolor::{
    Bcg20Colorer, Bg18Colorer, Cgs22Colorer, PaletteSparsification, RandEfficientColorer,
    RobustColorer, StoreAllColorer, TrivialColorer,
};

const N: usize = 60;
const DELTA: usize = 6;

fn expected(hits: u64, patches: u64, misses: u64, invalidations: u64) -> CacheStats {
    // `patched_vertices` (patch *depth*) is workload- and colorer-shaped,
    // not part of the locked outcome table; the per-case assertions below
    // only require it to be consistent with the patch count.
    CacheStats { hits, patches, misses, invalidations, patched_vertices: 0 }
}

#[test]
fn counters_match_the_committed_table_per_colorer() {
    let g = generators::random_with_exact_max_degree(N, DELTA, 3);
    let edges = StreamOrder::Shuffled(5).arrange(&g);
    assert_eq!(edges.len(), 165, "the interleaving below assumes this stream");

    // (name, colorer, expected hit/patch/miss/invalidation counts)
    let cases: Vec<(&str, Box<dyn StreamingColorer>, CacheStats)> = vec![
        // Epoch-buffer colorers: the 150-edge ingest rotates the n-edge
        // buffer, invalidating the cached artifact → the 4th query is a
        // from-scratch miss instead of a patch.
        ("alg2", Box::new(RobustColorer::new(N, DELTA, 9)), expected(2, 1, 2, 1)),
        ("alg3", Box::new(RandEfficientColorer::new(N, DELTA, 9)), expected(2, 1, 2, 1)),
        // Mirror-based colorers never invalidate on this stream: one
        // build miss, then patches for every stale query, hits for every
        // same-epoch repeat.
        ("store_all", Box::new(StoreAllColorer::new(N)), expected(2, 2, 1, 0)),
        ("bg18", Box::new(Bg18Colorer::new(N, DELTA as u64, 9)), expected(2, 2, 1, 0)),
        ("bcg20", Box::new(Bcg20Colorer::for_graph(&g, 0.5, 9)), expected(2, 2, 1, 0)),
    ];

    for (name, mut colorer, want) in cases {
        colorer.process_batch(&edges[..10]);
        colorer.query_incremental();
        colorer.query_incremental();
        colorer.process_batch(&edges[10..15]);
        colorer.query_incremental();
        colorer.process_batch(&edges[15..]);
        colorer.query_incremental();
        colorer.query_incremental();

        let stats = colorer.query_cache_stats().unwrap_or_else(|| {
            panic!("{name} advertises an incremental path but reports no stats")
        });
        assert_eq!(
            (stats.hits, stats.patches, stats.misses, stats.invalidations),
            (want.hits, want.patches, want.misses, want.invalidations),
            "{name}: counters drifted from the committed table"
        );
        assert!(
            stats.patches > 0 || stats.patched_vertices == 0,
            "{name}: patch depth recorded without any patch"
        );
        assert_eq!(stats.queries(), 5, "{name}: every query_incremental classifies exactly once");
        let reuse = (want.hits + want.patches) as f64 / 5.0;
        assert!((stats.reuse_rate() - reuse).abs() < 1e-12, "{name}: reuse rate");
    }
}

#[test]
fn colorers_without_an_incremental_path_report_no_stats() {
    let g = generators::random_with_exact_max_degree(N, DELTA, 3);
    let edges = StreamOrder::Shuffled(5).arrange(&g);
    let plains: Vec<(&str, Box<dyn StreamingColorer>)> = vec![
        ("cgs22", Box::new(Cgs22Colorer::new(N, DELTA, 9))),
        ("trivial", Box::new(TrivialColorer::new(N))),
        ("ps", Box::new(PaletteSparsification::new(N, DELTA, 6, 9))),
    ];
    for (name, mut colorer) in plains {
        colorer.process_batch(&edges[..20]);
        colorer.query_incremental();
        colorer.query_incremental();
        assert_eq!(colorer.query_cache_stats(), None, "{name} has no cache to report on");
    }
}

#[test]
fn stats_accumulate_monotonically_across_a_query_per_edge_run() {
    // The adversary-game cadence: query after every single edge. Hits
    // can never occur (the epoch advances between queries), so every
    // query is a patch or a miss, and the counters partition the query
    // count — for any colorer with a cache.
    let g = generators::random_with_exact_max_degree(N, DELTA, 3);
    let edges = StreamOrder::Shuffled(7).arrange(&g);
    let mut colorer = StoreAllColorer::new(N);
    let mut last_total = 0u64;
    for &e in edges.iter().take(40) {
        colorer.process(e);
        colorer.query_incremental();
        let s = colorer.query_cache_stats().expect("store-all has a cache");
        assert_eq!(s.hits, 0, "same-epoch hits are impossible at one query per edge");
        assert_eq!(s.queries(), last_total + 1, "each query classified exactly once");
        last_total = s.queries();
    }
    let s = colorer.query_cache_stats().unwrap();
    assert_eq!(s.misses, 1, "only the first query builds from scratch");
    assert_eq!(s.patches, 39, "every later query patches the mirror");
}
