//! Property coverage for the s-sparse-recovery sketch, the primitive
//! the turnstile colorer stands on.
//!
//! Two guarantees, across random seeds, universes, budgets, and update
//! sequences:
//!
//! 1. **Exact recovery at support ≤ s** — after any signed update
//!    sequence whose net support fits the budget (including ids that
//!    cancel to zero, negative net counts, and multiplicities > 1),
//!    `decode` returns the exact `(id, net_count)` multiset.
//! 2. **Loud failure above s** — when the support exceeds the budget,
//!    decode may refuse, but it must never answer wrong: every `Ok` is
//!    checked against the true multiset, and overloads that do fail
//!    name the sparsity budget.

use proptest::prelude::*;
use std::collections::BTreeMap;
use streamcolor::SparseRecovery;

/// Applies `updates` to a fresh sketch and the true net-count map.
fn load(
    universe: u64,
    sparsity: usize,
    seed: u64,
    updates: &[(u64, i64)],
) -> (SparseRecovery, BTreeMap<u64, i64>) {
    let mut sketch = SparseRecovery::new(universe, sparsity, seed);
    let mut truth: BTreeMap<u64, i64> = BTreeMap::new();
    for &(id, delta) in updates {
        sketch.update(id, delta);
        let c = truth.entry(id).or_insert(0);
        *c += delta;
        if *c == 0 {
            truth.remove(&id);
        }
    }
    (sketch, truth)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Support within budget: decode is the exact multiset, always.
    #[test]
    fn decode_is_exact_whenever_support_fits_the_budget(
        seed in any::<u64>(),
        universe in 8u64..100_000,
        sparsity in 1usize..40,
        raw in prop::collection::vec((any::<u64>(), -3i64..4), 0..120),
    ) {
        // Shape the raw updates so the *net* support fits the budget:
        // fold ids into a pool of at most `sparsity` distinct values
        // (cancellations and multiplicities survive the fold).
        let pool: Vec<u64> = (0..sparsity as u64).map(|i| {
            // Spread pool ids across the universe deterministically.
            (seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i * 0x1_0001)) % universe
        }).collect();
        let updates: Vec<(u64, i64)> = raw
            .iter()
            .filter(|&&(_, d)| d != 0)
            .map(|&(id, d)| (pool[(id % pool.len() as u64) as usize], d))
            .collect();
        let (sketch, truth) = load(universe, sparsity, seed, &updates);
        let expected: Vec<(u64, i64)> = truth.into_iter().collect();
        let decoded = sketch.decode().expect("support ≤ s must decode");
        let empty = decoded.is_empty();
        prop_assert_eq!(decoded, expected);
        prop_assert_eq!(sketch.is_empty(), empty, "is_empty must agree with decode");
    }

    /// Support beyond budget: never a silently wrong answer. Refusals
    /// name the budget; the rare successful peel (the sketch's slack is
    /// real) must still be the exact multiset.
    #[test]
    fn overloaded_sketches_fail_loudly_or_answer_exactly(
        seed in any::<u64>(),
        sparsity in 1usize..8,
        extra in 1usize..40,
    ) {
        let universe = 100_000u64;
        let support = sparsity * 2 + extra;
        let updates: Vec<(u64, i64)> = (0..support as u64)
            .map(|i| ((i * 7919 + seed % 1000) % universe, 1))
            .collect();
        // 7919 is prime and support ≪ universe/7919 collisions aside —
        // dedup to be exact about the intended support.
        let (sketch, truth) = load(universe, sparsity, seed, &updates);
        prop_assume!(truth.len() > sparsity);
        match sketch.decode() {
            Ok(decoded) => {
                let expected: Vec<(u64, i64)> = truth.into_iter().collect();
                prop_assert_eq!(decoded, expected, "an Ok decode must never be wrong");
            }
            Err(message) => {
                prop_assert!(
                    message.contains(&format!("s={sparsity}")),
                    "refusal must name the budget: {}", message
                );
            }
        }
    }

    /// Deleting everything returns the sketch to empty — decode of the
    /// all-cancelled sketch is the empty multiset for any insert set,
    /// even ones far beyond the budget while live.
    #[test]
    fn full_cancellation_decodes_empty_regardless_of_peak_support(
        seed in any::<u64>(),
        sparsity in 1usize..10,
        raw_ids in prop::collection::vec(0u64..100_000, 1..60),
    ) {
        let ids: std::collections::BTreeSet<u64> = raw_ids.into_iter().collect();
        let mut sketch = SparseRecovery::new(100_000, sparsity, seed);
        for &id in &ids {
            sketch.update(id, 1);
        }
        for &id in &ids {
            sketch.update(id, -1);
        }
        prop_assert!(sketch.is_empty());
        prop_assert_eq!(sketch.decode().expect("empty sketch decodes"), vec![]);
    }
}
