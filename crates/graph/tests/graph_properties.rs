//! Property-based tests for the graph substrate: structural laws of
//! graphs, colorings, degeneracy, greedy coloring and Turán sets under
//! arbitrary generated inputs.

use proptest::prelude::*;
use sc_graph::{
    degeneracy_coloring, degeneracy_ordering, generators, greedy_complete, turan_independent_set,
    Coloring, Graph,
};

fn arb_graph() -> impl Strategy<Value = Graph> {
    (5usize..60, 2usize..8, any::<u64>())
        .prop_map(|(n, d, seed)| generators::gnp_with_max_degree(n, d, 0.4, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn handshake_lemma(g in arb_graph()) {
        let degsum: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degsum, 2 * g.m());
    }

    #[test]
    fn induced_subgraph_monotone(g in arb_graph(), cut in 0usize..60) {
        let keep: Vec<u32> = (0..g.n().min(cut) as u32).collect();
        let h = g.induced(&keep);
        prop_assert!(h.m() <= g.m());
        for e in h.edges() {
            prop_assert!(g.has_edge(e.u(), e.v()));
            prop_assert!(keep.contains(&e.u()) && keep.contains(&e.v()));
        }
    }

    #[test]
    fn degeneracy_le_max_degree(g in arb_graph()) {
        let all: Vec<u32> = (0..g.n() as u32).collect();
        let info = degeneracy_ordering(&g, &all);
        prop_assert!(info.degeneracy <= g.max_degree());
        prop_assert_eq!(info.order.len(), g.n());
        // Order is a permutation.
        let mut sorted = info.order.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), g.n());
    }

    #[test]
    fn degeneracy_coloring_within_kappa_plus_one(g in arb_graph()) {
        let all: Vec<u32> = (0..g.n() as u32).collect();
        let kappa = degeneracy_ordering(&g, &all).degeneracy;
        let mut c = Coloring::empty(g.n());
        let span = degeneracy_coloring(&g, &mut c, &all, 0);
        prop_assert!(c.is_proper_total(&g));
        prop_assert!(span <= kappa as u64 + 1);
    }

    #[test]
    fn greedy_within_delta_plus_one(g in arb_graph()) {
        let mut c = Coloring::empty(g.n());
        greedy_complete(&g, &mut c);
        prop_assert!(c.is_proper_total(&g));
        prop_assert!(c.palette_span() <= g.max_degree() as u64 + 1);
    }

    #[test]
    fn turan_set_is_independent_and_large(g in arb_graph()) {
        let all: Vec<u32> = (0..g.n() as u32).collect();
        let is = turan_independent_set(&g, &all);
        for (i, &u) in is.iter().enumerate() {
            for &v in &is[i + 1..] {
                prop_assert!(!g.has_edge(u, v));
            }
        }
        prop_assert!(is.len() >= g.n() * g.n() / (2 * g.m() + g.n()));
    }

    #[test]
    fn generators_respect_caps(n in 10usize..100, d in 1usize..12, seed in any::<u64>()) {
        prop_assert!(generators::gnp_with_max_degree(n, d, 0.5, seed).max_degree() <= d);
        prop_assert!(generators::random_bipartite(n/2, n/2, 0.4, d, seed).max_degree() <= d);
        prop_assert!(generators::preferential_attachment(n, 2, d.max(2), seed).max_degree() <= d.max(2));
    }

    #[test]
    fn shuffle_preserves_edge_multiset(g in arb_graph(), seed in any::<u64>()) {
        let mut shuffled = generators::shuffled_edges(&g, seed);
        shuffled.sort();
        let mut orig: Vec<_> = g.edges().collect();
        orig.sort();
        prop_assert_eq!(shuffled, orig);
    }
}

// ---- properties of the offline-theory modules (brooks / chromatic /
// components / io) on arbitrary graphs ----

use sc_graph::{
    biconnected_components, bipartition, brooks_bound, brooks_coloring, connected_components,
    greedy_clique, io, k_colorable,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn components_partition_the_vertex_set(g in arb_graph()) {
        let comps = connected_components(&g);
        let mut seen: Vec<u32> = comps.iter().flatten().copied().collect();
        seen.sort_unstable();
        let expect: Vec<u32> = (0..g.n() as u32).collect();
        prop_assert_eq!(seen, expect);
        // No edge crosses components.
        let mut comp_of = vec![usize::MAX; g.n()];
        for (i, c) in comps.iter().enumerate() {
            for &v in c {
                comp_of[v as usize] = i;
            }
        }
        for e in g.edges() {
            prop_assert_eq!(comp_of[e.u() as usize], comp_of[e.v() as usize]);
        }
    }

    #[test]
    fn blocks_partition_the_edge_set(g in arb_graph()) {
        let (blocks, cuts) = biconnected_components(&g);
        let mut all: Vec<_> = blocks.iter().flatten().copied().collect();
        all.sort_unstable();
        let mut orig: Vec<_> = g.edges().collect();
        orig.sort_unstable();
        prop_assert_eq!(all.len(), orig.len());
        prop_assert_eq!(all, orig);
        // Cut vertices are a subset of the vertex set, sorted and distinct.
        prop_assert!(cuts.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(cuts.iter().all(|&v| (v as usize) < g.n()));
    }

    #[test]
    fn bipartition_iff_no_odd_cycle_witness(g in arb_graph()) {
        match bipartition(&g) {
            Some(side) => {
                for e in g.edges() {
                    prop_assert_ne!(side[e.u() as usize], side[e.v() as usize]);
                }
            }
            None => {
                // Non-bipartite graphs need ≥ 3 colors.
                prop_assert!(k_colorable(&g, 2).is_none());
            }
        }
    }

    #[test]
    fn brooks_coloring_proper_within_bound(g in arb_graph()) {
        let c = brooks_coloring(&g);
        prop_assert!(c.is_proper_total(&g));
        if g.n() > 0 {
            prop_assert!(c.palette_span() <= brooks_bound(&g).max(1) as u64);
        }
    }

    #[test]
    fn clique_is_chromatic_lower_bound(g in arb_graph()) {
        let q = greedy_clique(&g);
        for (i, &u) in q.iter().enumerate() {
            for &v in &q[i + 1..] {
                prop_assert!(g.has_edge(u, v));
            }
        }
        // q.len() colors are necessary: q.len()−1 cannot color the clique,
        // hence not the graph.
        if q.len() >= 2 {
            prop_assert!(k_colorable(&g, q.len() - 1).is_none());
        }
    }

    #[test]
    fn io_round_trip_is_identity_on_edge_sets(g in arb_graph()) {
        let mut el = Vec::new();
        io::write_edge_list(&g, &mut el).unwrap();
        let b1 = io::read_edge_list(el.as_slice()).unwrap();
        let mut dc = Vec::new();
        io::write_dimacs(&g, &mut dc).unwrap();
        let b2 = io::read_dimacs(dc.as_slice()).unwrap();
        for back in [b1, b2] {
            prop_assert_eq!(back.n(), g.n());
            let mut a: Vec<_> = back.edges().collect();
            let mut b: Vec<_> = g.edges().collect();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn mycielski_preserves_triangle_freeness(n in 4usize..9) {
        // C_n for even n is triangle-free and bipartite; M(C_n) must stay
        // triangle-free (the construction's defining property).
        let base = generators::cycle(2 * n);
        let m = generators::mycielski(&base);
        for e in m.edges() {
            for &w in m.neighbors(e.u()) {
                prop_assert!(!(w != e.v() && m.has_edge(w, e.v())),
                    "triangle through {} and {}", e, w);
            }
        }
    }
}
