//! Exact chromatic number for small graphs.
//!
//! The streaming algorithms target palettes measured against `∆`; to put
//! their palette sizes in context, experiments also report the true
//! chromatic number `χ(G)` on small instances. This module provides an
//! exact branch-and-bound solver: a greedy clique gives the lower bound, a
//! degeneracy-greedy coloring the upper bound, and a DSATUR-ordered
//! backtracking search closes the gap.
//!
//! Worst-case exponential, as it must be — keep `n` in the hundreds and
//! the graphs sparse, which is all the experiment harness needs.

use crate::coloring::{Color, Coloring};
use crate::edge::VertexId;
use crate::graph::Graph;

/// A greedily grown clique (vertices, largest-degree-first seeding).
///
/// `|clique|` is a lower bound on `χ(G)`. Deterministic; linear-ish time.
pub fn greedy_clique(g: &Graph) -> Vec<VertexId> {
    let mut order: Vec<VertexId> = g.vertices().collect();
    order.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    let mut best: Vec<VertexId> = Vec::new();
    // Seed from each of the top-degree vertices; keep the largest clique.
    for &seed in order.iter().take(8.min(order.len())) {
        let mut clique = vec![seed];
        for &v in &order {
            if v != seed && clique.iter().all(|&c| g.has_edge(c, v)) {
                clique.push(v);
            }
        }
        if clique.len() > best.len() {
            best = clique;
        }
    }
    best.sort_unstable();
    best
}

/// Is `g` properly colorable with `k` colors? If so, returns a witness.
///
/// DSATUR-style backtracking: always branch on the uncolored vertex with
/// the most distinctly-colored neighbors (ties: higher degree), and prune
/// symmetric branches by never using more than one "fresh" color per node.
pub fn k_colorable(g: &Graph, k: usize) -> Option<Coloring> {
    let n = g.n();
    if k == 0 {
        return if g.n() == 0 { Some(Coloring::empty(0)) } else { None };
    }
    if n == 0 {
        return Some(Coloring::empty(0));
    }
    let mut assigned: Vec<Option<u32>> = vec![None; n];
    // sat_mask[v] = bitset of colors used in N(v); k ≤ 64 enforced below.
    assert!(k <= 64, "k_colorable supports palettes up to 64 colors (got {k})");
    let mut sat_mask: Vec<u64> = vec![0; n];
    let full: u64 = if k == 64 { u64::MAX } else { (1u64 << k) - 1 };

    fn pick(g: &Graph, assigned: &[Option<u32>], sat_mask: &[u64]) -> Option<VertexId> {
        let mut best: Option<(u32, usize, VertexId)> = None; // (sat, deg, v)
        for v in g.vertices() {
            if assigned[v as usize].is_some() {
                continue;
            }
            let key = (sat_mask[v as usize].count_ones(), g.degree(v), v);
            if best.is_none_or(|b| (key.0, key.1) > (b.0, b.1)) {
                best = Some(key);
            }
        }
        best.map(|(_, _, v)| v)
    }

    fn solve(
        g: &Graph,
        k: usize,
        full: u64,
        assigned: &mut [Option<u32>],
        sat_mask: &mut [u64],
        max_used: u32,
    ) -> bool {
        let Some(v) = pick(g, assigned, sat_mask) else {
            return true; // everything colored
        };
        if sat_mask[v as usize] == full {
            return false; // no color available: dead end
        }
        // Symmetry breaking: colors > max_used are interchangeable, so try
        // at most one of them.
        let cap = (max_used + 1).min(k as u32 - 1);
        for c in 0..=cap {
            if sat_mask[v as usize] & (1 << c) != 0 {
                continue;
            }
            assigned[v as usize] = Some(c);
            let mut touched: Vec<VertexId> = Vec::new();
            for &y in g.neighbors(v) {
                if assigned[y as usize].is_none() && sat_mask[y as usize] & (1 << c) == 0 {
                    sat_mask[y as usize] |= 1 << c;
                    touched.push(y);
                }
            }
            if solve(g, k, full, assigned, sat_mask, max_used.max(c)) {
                return true;
            }
            for y in touched {
                sat_mask[y as usize] &= !(1 << c);
            }
            assigned[v as usize] = None;
        }
        false
    }

    if solve(g, k, full, &mut assigned, &mut sat_mask, 0) {
        let mut coloring = Coloring::empty(n);
        for (v, c) in assigned.iter().enumerate() {
            coloring.set(v as VertexId, c.expect("search returned total") as Color);
        }
        Some(coloring)
    } else {
        None
    }
}

/// The exact chromatic number of `g` with an optimal witness coloring.
///
/// Runs `k_colorable` upward from the greedy-clique lower bound, stopping
/// at the degeneracy-greedy upper bound (which always succeeds).
///
/// # Examples
/// ```
/// use sc_graph::{chromatic_number, generators};
///
/// // The Grötzsch graph: triangle-free yet χ = 4.
/// let g = generators::mycielski(&generators::cycle(5));
/// let (chi, witness) = chromatic_number(&g);
/// assert_eq!(chi, 4);
/// assert!(witness.is_proper_total(&g));
/// ```
pub fn chromatic_number(g: &Graph) -> (usize, Coloring) {
    if g.n() == 0 {
        return (0, Coloring::empty(0));
    }
    if g.m() == 0 {
        let mut c = Coloring::empty(g.n());
        for v in g.vertices() {
            c.set(v, 0);
        }
        return (1, c);
    }
    let lower = greedy_clique(g).len().max(2);
    let all: Vec<VertexId> = g.vertices().collect();
    let mut upper_coloring = Coloring::empty(g.n());
    crate::degeneracy::degeneracy_coloring(g, &mut upper_coloring, &all, 0);
    let upper = upper_coloring.num_distinct_colors();
    debug_assert!(upper_coloring.is_proper_total(g));
    for k in lower..upper {
        if let Some(witness) = k_colorable(g, k) {
            debug_assert!(witness.is_proper_total(g));
            return (k, witness);
        }
    }
    (upper, upper_coloring)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn chromatic_of_structured_families() {
        assert_eq!(chromatic_number(&generators::complete(5)).0, 5);
        assert_eq!(chromatic_number(&generators::cycle(6)).0, 2);
        assert_eq!(chromatic_number(&generators::cycle(7)).0, 3);
        assert_eq!(chromatic_number(&generators::star(9)).0, 2);
        assert_eq!(chromatic_number(&generators::complete_bipartite(4, 5)).0, 2);
        assert_eq!(chromatic_number(&generators::path(6)).0, 2);
    }

    #[test]
    fn chromatic_of_trivial_graphs() {
        assert_eq!(chromatic_number(&Graph::empty(0)).0, 0);
        assert_eq!(chromatic_number(&Graph::empty(5)).0, 1);
    }

    #[test]
    fn witness_is_proper_and_optimal() {
        let g = generators::gnp_with_max_degree(30, 8, 0.3, 11);
        let (chi, witness) = chromatic_number(&g);
        assert!(witness.is_proper_total(&g));
        assert_eq!(witness.num_distinct_colors(), chi);
        assert!(k_colorable(&g, chi.saturating_sub(1)).is_none() || chi == 1);
    }

    #[test]
    fn clique_lower_bound_is_a_clique() {
        let g = generators::gnp_with_max_degree(40, 10, 0.4, 5);
        let q = greedy_clique(&g);
        for i in 0..q.len() {
            for j in i + 1..q.len() {
                assert!(g.has_edge(q[i], q[j]), "not a clique: {:?}", q);
            }
        }
        assert!(!q.is_empty());
    }

    #[test]
    fn k_colorable_boundary() {
        let g = generators::complete(4);
        assert!(k_colorable(&g, 3).is_none());
        let w = k_colorable(&g, 4).unwrap();
        assert!(w.is_proper_total(&g));
        // Odd cycle: 2 colors impossible, 3 fine.
        let c = generators::cycle(9);
        assert!(k_colorable(&c, 2).is_none());
        assert!(k_colorable(&c, 3).is_some());
    }

    #[test]
    fn mycielski_increments_chromatic_number() {
        // χ(Mycielski(G)) = χ(G) + 1 while staying triangle-free from C5.
        let c5 = generators::cycle(5);
        let m = generators::mycielski(&c5);
        assert_eq!(chromatic_number(&c5).0, 3);
        assert_eq!(chromatic_number(&m).0, 4);
    }

    #[test]
    fn chromatic_at_most_degeneracy_plus_one() {
        for seed in 0..3u64 {
            let g = generators::preferential_attachment(40, 2, 12, seed);
            let (chi, _) = chromatic_number(&g);
            let all: Vec<VertexId> = g.vertices().collect();
            let info = crate::degeneracy::degeneracy_ordering(&g, &all);
            assert!(chi <= info.degeneracy + 1, "χ = {chi} > κ+1 = {}", info.degeneracy + 1);
        }
    }
}
