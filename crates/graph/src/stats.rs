//! Workload statistics — the numbers EXPERIMENTS.md reports for each
//! input graph, and quick structural summaries used in diagnostics.

use crate::graph::Graph;

/// Summary statistics of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Vertex count.
    pub n: usize,
    /// Edge count.
    pub m: usize,
    /// Maximum degree `∆`.
    pub max_degree: usize,
    /// Minimum degree.
    pub min_degree: usize,
    /// Mean degree `2m/n`.
    pub mean_degree: f64,
    /// Number of isolated vertices.
    pub isolated: usize,
    /// Degree histogram: `histogram[d]` = number of vertices of degree `d`.
    pub histogram: Vec<usize>,
}

impl GraphStats {
    /// Computes all statistics in one sweep.
    pub fn of(g: &Graph) -> Self {
        let n = g.n();
        let degrees: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
        let max_degree = degrees.iter().copied().max().unwrap_or(0);
        let min_degree = degrees.iter().copied().min().unwrap_or(0);
        let isolated = degrees.iter().filter(|&&d| d == 0).count();
        let mut histogram = vec![0usize; max_degree + 1];
        for &d in &degrees {
            histogram[d] += 1;
        }
        Self {
            n,
            m: g.m(),
            max_degree,
            min_degree,
            mean_degree: if n == 0 { 0.0 } else { 2.0 * g.m() as f64 / n as f64 },
            isolated,
            histogram,
        }
    }

    /// The `p`-th percentile degree (`p ∈ [0, 100]`).
    pub fn degree_percentile(&self, p: f64) -> usize {
        assert!((0.0..=100.0).contains(&p));
        let total: usize = self.histogram.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((p / 100.0) * (total as f64 - 1.0)).round() as usize;
        let mut seen = 0usize;
        for (d, &count) in self.histogram.iter().enumerate() {
            seen += count;
            if seen > target {
                return d;
            }
        }
        self.max_degree
    }

    /// One-line description for experiment logs.
    pub fn describe(&self) -> String {
        format!(
            "n={} m={} ∆={} deg(min/mean/median)={}/{:.1}/{} isolated={}",
            self.n,
            self.m,
            self.max_degree,
            self.min_degree,
            self.mean_degree,
            self.degree_percentile(50.0),
            self.isolated
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn stats_of_star() {
        let s = GraphStats::of(&generators::star(10));
        assert_eq!(s.n, 10);
        assert_eq!(s.m, 9);
        assert_eq!(s.max_degree, 9);
        assert_eq!(s.min_degree, 1);
        assert_eq!(s.isolated, 0);
        assert_eq!(s.histogram[1], 9);
        assert_eq!(s.histogram[9], 1);
        assert!((s.mean_degree - 1.8).abs() < 1e-12);
    }

    #[test]
    fn stats_of_empty_graph() {
        let s = GraphStats::of(&Graph::empty(5));
        assert_eq!(s.max_degree, 0);
        assert_eq!(s.isolated, 5);
        assert_eq!(s.degree_percentile(50.0), 0);
    }

    #[test]
    fn stats_of_zero_vertices() {
        let s = GraphStats::of(&Graph::empty(0));
        assert_eq!(s.n, 0);
        assert_eq!(s.mean_degree, 0.0);
    }

    #[test]
    fn percentiles_of_regular_graph() {
        let s = GraphStats::of(&generators::cycle(20));
        assert_eq!(s.degree_percentile(0.0), 2);
        assert_eq!(s.degree_percentile(50.0), 2);
        assert_eq!(s.degree_percentile(100.0), 2);
    }

    #[test]
    fn percentiles_of_mixed_degrees() {
        // Path of 5: degrees [1, 2, 2, 2, 1].
        let s = GraphStats::of(&generators::path(5));
        assert_eq!(s.degree_percentile(0.0), 1);
        assert_eq!(s.degree_percentile(100.0), 2);
        assert_eq!(s.degree_percentile(50.0), 2);
    }

    #[test]
    fn histogram_sums_to_n() {
        let g = generators::gnp_with_max_degree(100, 9, 0.3, 4);
        let s = GraphStats::of(&g);
        assert_eq!(s.histogram.iter().sum::<usize>(), 100);
        assert_eq!(s.histogram.len(), s.max_degree + 1);
    }

    #[test]
    fn describe_contains_key_fields() {
        let d = GraphStats::of(&generators::complete(4)).describe();
        assert!(d.contains("n=4"));
        assert!(d.contains("m=6"));
        assert!(d.contains("∆=3"));
    }
}
