//! The constructive Turán-type independent set of Lemma 2.1 / A.1.
//!
//! Every epoch of Algorithm 1 ends by finding, in the graph `(V, F)` of
//! would-be-monochromatic edges, an independent set of size
//! `≥ |U|² / (2|F| + |U|)`; those vertices commit their proposed colors.
//!
//! The paper's procedure (Lemma A.1): maintain an "uncovered" set `U`,
//! repeatedly pick `x ∈ U` minimizing `Σ_{y ∈ N[x] ∩ U} 1/(deg_{G[U]}(y)+1)`,
//! add `x` to the independent set, and remove its closed neighborhood.
//! The potential argument shows the output size is at least the Caro–Wei
//! bound `Σ_x 1/(deg(x)+1) ≥ n²/(n + 2m)`.

use crate::edge::VertexId;
use crate::graph::Graph;

/// Finds an independent set of the subgraph of `g` induced by `vertices`,
/// of size at least `|vertices|² / (2m' + |vertices|)` where `m'` is the
/// number of induced edges (deterministic, polynomial time).
pub fn turan_independent_set(g: &Graph, vertices: &[VertexId]) -> Vec<VertexId> {
    let n = g.n();
    let mut alive = vec![false; n];
    for &v in vertices {
        alive[v as usize] = true;
    }
    // Degrees within the shrinking induced subgraph.
    let mut deg = vec![0usize; n];
    for &v in vertices {
        deg[v as usize] = g.neighbors(v).iter().filter(|&&y| alive[y as usize]).count();
    }
    let mut remaining: Vec<VertexId> = vertices.to_vec();
    let mut independent = Vec::new();
    while !remaining.is_empty() {
        // Pick x minimizing Σ_{y ∈ N[x]} 1/(deg(y)+1) over the live graph.
        let mut best: Option<(f64, VertexId)> = None;
        for &x in &remaining {
            let mut score = 1.0 / (deg[x as usize] as f64 + 1.0);
            for &y in g.neighbors(x) {
                if alive[y as usize] {
                    score += 1.0 / (deg[y as usize] as f64 + 1.0);
                }
            }
            match best {
                Some((s, _)) if s <= score => {}
                _ => best = Some((score, x)),
            }
        }
        let (_, x) = best.expect("remaining is nonempty");
        independent.push(x);
        // Remove N[x]: mark dead, then decrement degrees of their neighbors.
        let mut removed: Vec<VertexId> = vec![x];
        for &y in g.neighbors(x) {
            if alive[y as usize] {
                removed.push(y);
            }
        }
        for &r in &removed {
            alive[r as usize] = false;
        }
        for &r in &removed {
            for &z in g.neighbors(r) {
                if alive[z as usize] {
                    deg[z as usize] -= 1;
                }
            }
        }
        remaining.retain(|&v| alive[v as usize]);
    }
    independent
}

/// The Turán/Caro–Wei guarantee `⌈|V'|² / (2m' + |V'|)⌉` for the induced
/// subgraph on `vertices` — what [`turan_independent_set`] must achieve.
pub fn turan_guarantee(g: &Graph, vertices: &[VertexId]) -> usize {
    if vertices.is_empty() {
        return 0;
    }
    let mut in_set = vec![false; g.n()];
    for &v in vertices {
        in_set[v as usize] = true;
    }
    let m2: usize = vertices
        .iter()
        .map(|&v| g.neighbors(v).iter().filter(|&&y| in_set[y as usize]).count())
        .sum(); // = 2m'
    let nn = vertices.len();
    nn * nn / (m2 + nn) + usize::from(!(nn * nn).is_multiple_of(m2 + nn))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::Edge;
    use crate::generators;

    fn assert_independent(g: &Graph, set: &[VertexId]) {
        for (i, &u) in set.iter().enumerate() {
            for &v in &set[i + 1..] {
                assert!(!g.has_edge(u, v), "({u}, {v}) violates independence");
            }
        }
    }

    fn check(g: &Graph, vertices: &[VertexId]) {
        let is = turan_independent_set(g, vertices);
        assert_independent(g, &is);
        let bound = turan_guarantee(g, vertices);
        assert!(
            is.len() >= bound,
            "independent set size {} below Turán bound {bound} (n'={}, )",
            is.len(),
            vertices.len()
        );
        // All members come from the requested set.
        assert!(is.iter().all(|v| vertices.contains(v)));
    }

    #[test]
    fn empty_vertex_set() {
        let g = generators::complete(4);
        assert!(turan_independent_set(&g, &[]).is_empty());
        assert_eq!(turan_guarantee(&g, &[]), 0);
    }

    #[test]
    fn edgeless_graph_returns_everything() {
        let g = Graph::empty(6);
        let all: Vec<VertexId> = (0..6).collect();
        let is = turan_independent_set(&g, &all);
        assert_eq!(is.len(), 6);
    }

    #[test]
    fn clique_returns_single_vertex() {
        let g = generators::complete(8);
        let all: Vec<VertexId> = (0..8).collect();
        let is = turan_independent_set(&g, &all);
        assert_eq!(is.len(), 1);
        check(&g, &all);
    }

    #[test]
    fn star_picks_the_leaves() {
        let g = generators::star(9); // center 0, 8 leaves
        let all: Vec<VertexId> = (0..9).collect();
        let is = turan_independent_set(&g, &all);
        assert_eq!(is.len(), 8, "all leaves form the max independent set");
        assert!(!is.contains(&0));
    }

    #[test]
    fn cycle_meets_bound() {
        for n in [3usize, 4, 5, 8, 13] {
            let g = generators::cycle(n);
            let all: Vec<VertexId> = (0..n as u32).collect();
            check(&g, &all);
            let is = turan_independent_set(&g, &all);
            assert!(is.len() >= n / 3, "cycle IS too small: {} for C_{n}", is.len());
        }
    }

    #[test]
    fn bipartite_finds_large_side() {
        let g = generators::complete_bipartite(4, 12);
        let all: Vec<VertexId> = (0..16).collect();
        let is = turan_independent_set(&g, &all);
        assert_independent(&g, &is);
        assert!(is.len() >= 12, "should find the size-12 side, got {}", is.len());
    }

    #[test]
    fn restricted_vertex_set() {
        // Triangle 0-1-2 plus isolated-ish 3; restrict to {0, 1, 3}.
        let g = Graph::from_edges(
            4,
            [Edge::new(0, 1), Edge::new(1, 2), Edge::new(0, 2), Edge::new(2, 3)],
        );
        let is = turan_independent_set(&g, &[0, 1, 3]);
        assert_independent(&g, &is);
        assert!(is.len() >= 2); // {0 or 1} plus 3
        assert!(is.contains(&3));
    }

    #[test]
    fn random_graphs_meet_guarantee() {
        for seed in 0..8u64 {
            let g = generators::gnp_with_max_degree(40, 10, 0.3, seed);
            let all: Vec<VertexId> = (0..40).collect();
            check(&g, &all);
        }
    }

    /// Lemma 3.8's use: when |F| ≤ |U|, the IS has size ≥ |U|/3, so each
    /// epoch of Algorithm 1 colors ≥ a third of the uncolored vertices.
    #[test]
    fn epoch_progress_guarantee() {
        for seed in 0..5u64 {
            // Random graph with m ≤ n edges (the |F| ≤ |U| regime).
            let n = 30usize;
            let mut g = Graph::empty(n);
            let mut rng = 12345u64.wrapping_add(seed);
            let mut added = 0;
            while added < n {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let u = ((rng >> 33) % n as u64) as u32;
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let v = ((rng >> 33) % n as u64) as u32;
                if u != v && g.add_edge(Edge::new(u, v)) {
                    added += 1;
                }
            }
            let all: Vec<VertexId> = (0..n as u32).collect();
            let is = turan_independent_set(&g, &all);
            assert!(is.len() * 3 >= n, "with m = n, IS must be ≥ n/3: got {} of {n}", is.len());
        }
    }
}
