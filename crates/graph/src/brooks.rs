//! Constructive Brooks' theorem: `∆`-coloring when no component is a
//! clique or an odd cycle.
//!
//! The paper's related work highlights Assadi–Kumar–Mittal (STOC 2022),
//! who prove Brooks' theorem *in the semi-streaming model*. Offline
//! Brooks is the natural reference point: experiments use it to show how
//! far below `∆ + 1` an offline palette can go, and the chromatic-number
//! harness uses it as a certified upper bound.
//!
//! The construction follows Lovász's proof:
//!
//! * **Non-regular component** — root a spanning tree at a vertex of
//!   degree `< ∆` and greedy-color leaves-first; every non-root vertex has
//!   its parent still uncolored at its turn, so `∆` colors suffice.
//! * **Regular, with a cut vertex** — each block sees the cut vertex with
//!   reduced degree, so blocks are colorable with `∆` colors
//!   independently; palettes are transposed to agree at shared cut
//!   vertices (block-cut-tree BFS).
//! * **Regular, 2-connected** — find `v` with non-adjacent neighbors
//!   `u, w` such that `G − {u, w}` stays connected; color `u, w` the same
//!   color, everything else leaves-first toward `v`; the repeat at `u, w`
//!   saves one color at `v`.

use crate::coloring::{Color, Coloring};
use crate::components::{biconnected_components, connected_components};
use crate::edge::{Edge, VertexId};
use crate::graph::Graph;

/// The Brooks palette bound for `g`: the max over components of
/// (size for a clique; 3 for an odd cycle; 2 for paths/even cycles;
/// otherwise the component's max degree), and 1 for isolated vertices.
pub fn brooks_bound(g: &Graph) -> usize {
    connected_components(g).iter().map(|comp| component_bound(g, comp)).max().unwrap_or(0)
}

/// A proper coloring of `g` using at most [`brooks_bound`] colors.
///
/// Total over all vertices; each component is colored independently with
/// the shared palette `[0 .. brooks_bound)`.
///
/// # Examples
/// ```
/// use sc_graph::{brooks_bound, brooks_coloring, generators};
///
/// // Petersen: 3-regular, not a clique or odd cycle ⇒ ∆ = 3 colors
/// // (greedy would need ∆ + 1 = 4 in the worst order).
/// let g = generators::petersen();
/// let coloring = brooks_coloring(&g);
/// assert!(coloring.is_proper_total(&g));
/// assert_eq!(brooks_bound(&g), 3);
/// assert!(coloring.palette_span() <= 3);
/// ```
pub fn brooks_coloring(g: &Graph) -> Coloring {
    let mut coloring = Coloring::empty(g.n());
    for comp in connected_components(g) {
        color_component(g, &comp, &mut coloring);
    }
    debug_assert!(coloring.is_proper_total(g));
    coloring
}

fn component_bound(g: &Graph, comp: &[VertexId]) -> usize {
    let t = comp.len();
    if t == 1 {
        return 1;
    }
    let degs: Vec<usize> = comp.iter().map(|&v| g.degree(v)).collect();
    let delta = *degs.iter().max().expect("nonempty component");
    let m2: usize = degs.iter().sum(); // 2m within the component
    if m2 == t * (t - 1) {
        return t; // clique K_t
    }
    if delta <= 2 {
        // Path or cycle; an odd cycle needs 3.
        return if m2 == 2 * t && t % 2 == 1 { 3 } else { 2 };
    }
    delta
}

fn color_component(g: &Graph, comp: &[VertexId], coloring: &mut Coloring) {
    let t = comp.len();
    if t == 1 {
        coloring.set(comp[0], 0);
        return;
    }
    let bound = component_bound(g, comp);
    let degs: Vec<usize> = comp.iter().map(|&v| g.degree(v)).collect();
    let delta = *degs.iter().max().expect("nonempty");

    // Clique: assign 0..t.
    if bound == t && degs.iter().all(|&d| d == t - 1) {
        for (i, &v) in comp.iter().enumerate() {
            coloring.set(v, i as Color);
        }
        return;
    }

    // Paths and cycles (∆ ≤ 2): walk and alternate; odd cycles spend a
    // third color on the final vertex.
    if delta <= 2 {
        color_path_or_cycle(g, comp, coloring);
        return;
    }

    // Non-regular: spanning-tree greedy from a deficient root.
    if degs.iter().any(|&d| d < delta) {
        let root = comp[degs.iter().position(|&d| d < delta).expect("non-regular")];
        tree_greedy(g, comp, root, bound as Color, coloring);
        return;
    }

    // ∆-regular, ∆ ≥ 3, not complete.
    let sub = g.induced(comp);
    let (blocks, cuts) = biconnected_components(&sub);
    if blocks.len() == 1 {
        color_two_connected_regular(&sub, comp, bound as Color, coloring);
    } else {
        color_via_blocks(&sub, &blocks, &cuts, bound as Color, coloring);
    }
}

/// Alternating coloring of a path or cycle component (`∆ ≤ 2`).
fn color_path_or_cycle(g: &Graph, comp: &[VertexId], coloring: &mut Coloring) {
    // Start from an endpoint if one exists (path), else anywhere (cycle).
    let start = comp.iter().copied().find(|&v| g.degree(v) <= 1).unwrap_or(comp[0]);
    let mut walk = vec![start];
    let mut prev: Option<VertexId> = None;
    let mut cur = start;
    loop {
        let next = g
            .neighbors(cur)
            .iter()
            .copied()
            .find(|&y| Some(y) != prev && !walk[..walk.len() - 1].contains(&y));
        match next {
            Some(y) if y != start => {
                walk.push(y);
                prev = Some(cur);
                cur = y;
            }
            _ => break,
        }
    }
    debug_assert_eq!(walk.len(), comp.len(), "walk must cover the component");
    let is_cycle = g.degree(start) == 2;
    for (i, &v) in walk.iter().enumerate() {
        let c = if is_cycle && i == walk.len() - 1 && walk.len() % 2 == 1 {
            2 // odd cycle's last vertex
        } else {
            (i % 2) as Color
        };
        coloring.set(v, c);
    }
}

/// Greedy coloring in leaves-first BFS order from `root`; needs
/// `deg(root) < palette` for the final step to succeed.
fn tree_greedy(
    g: &Graph,
    comp: &[VertexId],
    root: VertexId,
    palette: Color,
    coloring: &mut Coloring,
) {
    let order = bfs_order(g, comp, root, &[]);
    greedy_within(g, order.iter().rev().copied(), palette, coloring);
}

/// BFS order over `comp` from `root`, skipping `excluded` vertices.
fn bfs_order(g: &Graph, comp: &[VertexId], root: VertexId, excluded: &[VertexId]) -> Vec<VertexId> {
    let mut in_comp = vec![false; g.n()];
    for &v in comp {
        in_comp[v as usize] = true;
    }
    for &v in excluded {
        in_comp[v as usize] = false;
    }
    let mut seen = vec![false; g.n()];
    let mut order = Vec::with_capacity(comp.len());
    let mut queue = std::collections::VecDeque::new();
    seen[root as usize] = true;
    queue.push_back(root);
    while let Some(x) = queue.pop_front() {
        order.push(x);
        for &y in g.neighbors(x) {
            if in_comp[y as usize] && !seen[y as usize] {
                seen[y as usize] = true;
                queue.push_back(y);
            }
        }
    }
    order
}

/// First-fit greedy over `order` against `g`, bounded by `palette`.
fn greedy_within(
    g: &Graph,
    order: impl Iterator<Item = VertexId>,
    palette: Color,
    coloring: &mut Coloring,
) {
    for v in order {
        if coloring.is_colored(v) {
            continue;
        }
        let used: std::collections::HashSet<Color> =
            g.neighbors(v).iter().filter_map(|&y| coloring.get(y)).collect();
        let c = (0..palette)
            .find(|c| !used.contains(c))
            .unwrap_or_else(|| panic!("palette {palette} exhausted at vertex {v}"));
        coloring.set(v, c);
    }
}

/// The Lovász step: 2-connected, `∆`-regular (`∆ ≥ 3`), not complete.
fn color_two_connected_regular(
    sub: &Graph,
    comp: &[VertexId],
    palette: Color,
    coloring: &mut Coloring,
) {
    let (v, u, w) =
        find_lovasz_triple(sub, comp).expect("2-connected regular non-complete graph has a triple");
    coloring.set(u, 0);
    coloring.set(w, 0);
    // Order the rest leaves-first toward v in G − {u, w}.
    let order = bfs_order(sub, comp, v, &[u, w]);
    debug_assert_eq!(order.len(), comp.len() - 2, "G − {{u,w}} must stay connected");
    greedy_within(sub, order.iter().rev().copied(), palette, coloring);
}

/// Finds `(v, u, w)`: `u, w ∈ N(v)` non-adjacent with `G − {u, w}`
/// connected. Exists for every 2-connected regular non-complete graph
/// with `∆ ≥ 3` (Lovász 1975).
fn find_lovasz_triple(sub: &Graph, comp: &[VertexId]) -> Option<(VertexId, VertexId, VertexId)> {
    let mut in_comp = vec![false; sub.n()];
    for &v in comp {
        in_comp[v as usize] = true;
    }
    for &v in comp {
        let nbrs = sub.neighbors(v);
        for (i, &u) in nbrs.iter().enumerate() {
            for &w in nbrs.iter().skip(i + 1) {
                if sub.has_edge(u, w) {
                    continue;
                }
                // Check G − {u, w} is connected and still contains v's side.
                let remaining: Vec<VertexId> =
                    comp.iter().copied().filter(|&x| x != u && x != w).collect();
                let reach = bfs_order(sub, &remaining, v, &[]);
                if reach.len() == remaining.len() {
                    return Some((v, u, w));
                }
            }
        }
    }
    None
}

/// Regular component with cut vertices: color blocks over a block-cut-tree
/// BFS, transposing palettes to agree at shared cut vertices.
fn color_via_blocks(
    sub: &Graph,
    blocks: &[Vec<Edge>],
    _cuts: &[VertexId],
    palette: Color,
    coloring: &mut Coloring,
) {
    // Vertex sets per block.
    let block_vertices: Vec<Vec<VertexId>> = blocks
        .iter()
        .map(|b| {
            let mut vs: Vec<VertexId> = b.iter().flat_map(|e| [e.u(), e.v()]).collect();
            vs.sort_unstable();
            vs.dedup();
            vs
        })
        .collect();
    // Map vertex -> blocks containing it, to walk the block-cut tree.
    let mut at: std::collections::HashMap<VertexId, Vec<usize>> = Default::default();
    for (bi, vs) in block_vertices.iter().enumerate() {
        for &v in vs {
            at.entry(v).or_default().push(bi);
        }
    }
    let mut done = vec![false; blocks.len()];
    let mut queue = std::collections::VecDeque::from([0usize]);
    done[0] = true;
    while let Some(bi) = queue.pop_front() {
        color_block(sub, &blocks[bi], &block_vertices[bi], palette, coloring);
        for &v in &block_vertices[bi] {
            for &bj in &at[&v] {
                if !done[bj] {
                    done[bj] = true;
                    queue.push_back(bj);
                }
            }
        }
    }
}

/// Colors one block with `palette` colors, honoring at most one
/// pre-colored (cut) vertex by a palette transposition.
fn color_block(
    sub: &Graph,
    edges: &[Edge],
    vertices: &[VertexId],
    palette: Color,
    coloring: &mut Coloring,
) {
    let precolored: Vec<(VertexId, Color)> =
        vertices.iter().filter_map(|&v| coloring.get(v).map(|c| (v, c))).collect();
    debug_assert!(
        precolored.len() <= 1,
        "block-cut-tree BFS colors blocks one shared vertex at a time"
    );
    // Color the block standalone on a scratch coloring.
    let local = Graph::from_edges(sub.n(), edges.iter().copied());
    let mut scratch = Coloring::empty(sub.n());
    color_component(&local, vertices, &mut scratch);
    // Transpose so the shared cut vertex keeps its existing color.
    if let Some(&(anchor, want)) = precolored.first() {
        let got = scratch.get(anchor).expect("block coloring is total");
        if got != want {
            for &v in vertices {
                let c = scratch.get(v).expect("total");
                let c2 = if c == got {
                    want
                } else if c == want {
                    got
                } else {
                    c
                };
                scratch.unset(v);
                scratch.set(v, c2);
            }
        }
    }
    let _ = palette; // block colorings stay within the component bound
    for &v in vertices {
        if !coloring.is_colored(v) {
            coloring.set(v, scratch.get(v).expect("total"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn check(g: &Graph) {
        let bound = brooks_bound(g);
        let c = brooks_coloring(g);
        assert!(c.is_proper_total(g), "improper coloring");
        assert!(
            c.palette_span() <= bound as Color,
            "used {} colors > Brooks bound {bound}",
            c.palette_span()
        );
    }

    #[test]
    fn bound_on_canonical_families() {
        assert_eq!(brooks_bound(&generators::complete(6)), 6);
        assert_eq!(brooks_bound(&generators::cycle(7)), 3);
        assert_eq!(brooks_bound(&generators::cycle(8)), 2);
        assert_eq!(brooks_bound(&generators::path(5)), 2);
        assert_eq!(brooks_bound(&generators::petersen()), 3);
        assert_eq!(brooks_bound(&generators::star(8)), 7);
        assert_eq!(brooks_bound(&Graph::empty(3)), 1);
        assert_eq!(brooks_bound(&Graph::empty(0)), 0);
    }

    #[test]
    fn cliques_odd_cycles_paths() {
        check(&generators::complete(5));
        check(&generators::cycle(9));
        check(&generators::cycle(10));
        check(&generators::path(7));
        check(&Graph::empty(4));
    }

    #[test]
    fn petersen_gets_three_colors() {
        // 3-regular, 2-connected, not complete: Brooks gives exactly ∆ = 3.
        let g = generators::petersen();
        let c = brooks_coloring(&g);
        assert!(c.is_proper_total(&g));
        assert!(c.palette_span() <= 3);
    }

    #[test]
    fn circulant_regular_graphs() {
        for (n, h) in [(9usize, 2usize), (12, 2), (11, 3), (16, 3)] {
            let g = generators::circulant(n, h);
            check(&g);
        }
    }

    #[test]
    fn non_regular_random_graphs() {
        for seed in 0..5u64 {
            check(&generators::gnp_with_max_degree(60, 8, 0.25, seed));
            check(&generators::preferential_attachment(50, 2, 10, seed));
        }
    }

    #[test]
    fn regular_with_cut_vertex() {
        // Two K4's sharing... K4 is complete per block; build instead two
        // C5's sharing one vertex — 2-regular with a cut vertex would be
        // a figure-eight, degree 4 at the cut. Use 3-regular gadget: two
        // K4-minus-an-edge glued by a bridge between the deficient ends.
        // K4 − e on {0,1,2,3}, missing (0,1); copy on {4,5,6,7}, missing
        // (4,5); bridges (0,4) and (1,5) make every vertex 3-regular and
        // the graph has no cut vertex — instead test a barbell: two
        // triangles joined by a path, which is non-regular; plus the
        // genuinely regular-with-cut case: two C4's sharing a vertex is
        // 2-regular? No — the shared vertex has degree 4. A ∆-regular
        // graph with a cut vertex requires ∆ even at the cut; use two C4's
        // sharing a vertex and add chords to make others degree 4 — skip
        // construction gymnastics and rely on the figure-eight (∆ = 4 at
        // the cut, others 2, non-regular ⇒ tree-greedy path) plus
        // block-path barbells.
        let mut g = Graph::empty(7);
        // figure-eight: C4 {0,1,2,3} and C4 {3,4,5,6} sharing vertex 3
        for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 0), (3, 4), (4, 5), (5, 6), (6, 3)] {
            g.add_edge(Edge::new(a, b));
        }
        check(&g);
    }

    #[test]
    fn bowtie_blocks() {
        // Two triangles sharing a cut vertex: components machinery routes
        // through blocks (cliques) and must agree at the shared vertex.
        let g = Graph::from_edges(
            5,
            [
                Edge::new(0, 1),
                Edge::new(1, 2),
                Edge::new(0, 2),
                Edge::new(2, 3),
                Edge::new(3, 4),
                Edge::new(2, 4),
            ],
        );
        let c = brooks_coloring(&g);
        assert!(c.is_proper_total(&g));
        // ∆ = 4 (vertex 2), graph is non-regular so bound is ∆ = 4; the
        // actual coloring should use only 3.
        assert!(c.palette_span() <= 4);
    }

    #[test]
    fn disconnected_mixture() {
        // A clique, an odd cycle, and a random part — all in one graph.
        let mut g = Graph::empty(25);
        for u in 0..5u32 {
            for v in u + 1..5 {
                g.add_edge(Edge::new(u, v));
            }
        }
        for i in 0..5u32 {
            g.add_edge(Edge::new(5 + i, 5 + (i + 1) % 5));
        }
        let rand = generators::gnp_with_max_degree(15, 5, 0.4, 3);
        for e in rand.edges() {
            g.add_edge(Edge::new(e.u() + 10, e.v() + 10));
        }
        check(&g);
        assert_eq!(brooks_bound(&g), 5); // the K5 dominates
    }

    #[test]
    fn blowup_of_triangle_is_regular_non_complete() {
        // K3[K̄_3]: 6-regular, 2-connected, not complete ⇒ 6 colors via
        // the Lovász step (χ is actually 3).
        let g = generators::blowup(&generators::complete(3), 3);
        check(&g);
    }

    #[test]
    fn complete_multipartite_regular_case() {
        let g = generators::complete_multipartite(3, 3);
        check(&g); // 6-regular, not complete
    }
}
