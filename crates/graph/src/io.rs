//! Graph (de)serialization: a plain edge-list format and the DIMACS
//! `.col` coloring-benchmark format.
//!
//! The CLI and the experiment harness read workloads from disk in either
//! format; both are line-oriented, so huge graphs stream through without
//! materializing intermediate strings.
//!
//! **Edge-list format** — first non-comment line `n <vertices>`, then one
//! `u v` pair per line, `#` starts a comment:
//!
//! ```text
//! # triangle
//! n 3
//! 0 1
//! 1 2
//! 0 2
//! ```
//!
//! **DIMACS `.col`** — `c` comment lines, one `p edge <n> <m>` problem
//! line, then `e u v` lines with **1-based** vertex ids (converted to our
//! 0-based [`VertexId`]s on read, and back on write).

use crate::edge::{Edge, VertexId};
use crate::graph::Graph;
use std::fmt;
use std::io::{BufRead, Write};

/// Errors produced while parsing a graph file.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line that does not conform to the grammar; carries the 1-based
    /// line number and a description.
    Malformed { line: usize, what: String },
    /// An edge endpoint `≥ n` (or `0` in 1-based DIMACS input).
    VertexOutOfRange { line: usize, vertex: u64, n: usize },
    /// A self-loop `u u`, which no proper coloring can satisfy.
    SelfLoop { line: usize, vertex: u64 },
    /// The header (`n …` / `p edge …`) is missing or appears twice.
    BadHeader { line: usize, what: String },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::Malformed { line, what } => {
                write!(f, "line {line}: malformed input: {what}")
            }
            ParseError::VertexOutOfRange { line, vertex, n } => {
                write!(f, "line {line}: vertex {vertex} out of range for n = {n}")
            }
            ParseError::SelfLoop { line, vertex } => {
                write!(f, "line {line}: self-loop at vertex {vertex}")
            }
            ParseError::BadHeader { line, what } => write!(f, "line {line}: {what}"),
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

fn parse_u64(tok: &str, line: usize) -> Result<u64, ParseError> {
    tok.parse::<u64>().map_err(|_| ParseError::Malformed {
        line,
        what: format!("expected an integer, got {tok:?}"),
    })
}

/// Reads the plain edge-list format (see module docs). Duplicate edges are
/// deduplicated, matching [`Graph::add_edge`] semantics.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<Graph, ParseError> {
    let mut g: Option<Graph> = None;
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let content = line.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let toks: Vec<&str> = content.split_whitespace().collect();
        match (g.as_mut(), toks.as_slice()) {
            (None, ["n", count]) => {
                let n = parse_u64(count, lineno)?;
                if n > VertexId::MAX as u64 {
                    return Err(ParseError::BadHeader {
                        line: lineno,
                        what: format!("n = {n} exceeds the u32 vertex-id space"),
                    });
                }
                g = Some(Graph::empty(n as usize));
            }
            (None, _) => {
                return Err(ParseError::BadHeader {
                    line: lineno,
                    what: "first line must be the header `n <count>`".into(),
                })
            }
            (Some(_), ["n", ..]) => {
                return Err(ParseError::BadHeader {
                    line: lineno,
                    what: "duplicate `n` header".into(),
                })
            }
            (Some(graph), [a, b]) => {
                let (u, v) = (parse_u64(a, lineno)?, parse_u64(b, lineno)?);
                let n = graph.n();
                for &x in [u, v].iter() {
                    if x >= n as u64 {
                        return Err(ParseError::VertexOutOfRange { line: lineno, vertex: x, n });
                    }
                }
                if u == v {
                    return Err(ParseError::SelfLoop { line: lineno, vertex: u });
                }
                graph.add_edge(Edge::new(u as VertexId, v as VertexId));
            }
            (Some(_), _) => {
                return Err(ParseError::Malformed {
                    line: lineno,
                    what: format!("expected `u v`, got {content:?}"),
                })
            }
        }
    }
    g.ok_or(ParseError::BadHeader { line: 0, what: "empty input: no `n` header".into() })
}

/// Writes the plain edge-list format.
pub fn write_edge_list<W: Write>(g: &Graph, mut w: W) -> std::io::Result<()> {
    writeln!(w, "n {}", g.n())?;
    for e in g.edges() {
        writeln!(w, "{} {}", e.u(), e.v())?;
    }
    Ok(())
}

/// Reads the DIMACS `.col` format (1-based vertex ids).
///
/// The `m` count on the problem line is advisory; the real edge count is
/// whatever the `e` lines produce after deduplication.
pub fn read_dimacs<R: BufRead>(reader: R) -> Result<Graph, ParseError> {
    let mut g: Option<Graph> = None;
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let content = line.trim();
        if content.is_empty() || content.starts_with('c') {
            continue;
        }
        let toks: Vec<&str> = content.split_whitespace().collect();
        match (g.as_mut(), toks.as_slice()) {
            (None, ["p", "edge" | "edges" | "col", n, _m]) => {
                let n = parse_u64(n, lineno)?;
                if n > VertexId::MAX as u64 {
                    return Err(ParseError::BadHeader {
                        line: lineno,
                        what: format!("n = {n} exceeds the u32 vertex-id space"),
                    });
                }
                g = Some(Graph::empty(n as usize));
            }
            (None, _) => {
                return Err(ParseError::BadHeader {
                    line: lineno,
                    what: "expected problem line `p edge <n> <m>`".into(),
                })
            }
            (Some(_), ["p", ..]) => {
                return Err(ParseError::BadHeader {
                    line: lineno,
                    what: "duplicate problem line".into(),
                })
            }
            (Some(graph), ["e", a, b]) => {
                let (u, v) = (parse_u64(a, lineno)?, parse_u64(b, lineno)?);
                let n = graph.n();
                for &x in [u, v].iter() {
                    if x == 0 || x > n as u64 {
                        return Err(ParseError::VertexOutOfRange { line: lineno, vertex: x, n });
                    }
                }
                if u == v {
                    return Err(ParseError::SelfLoop { line: lineno, vertex: u });
                }
                graph.add_edge(Edge::new((u - 1) as VertexId, (v - 1) as VertexId));
            }
            (Some(_), _) => {
                return Err(ParseError::Malformed {
                    line: lineno,
                    what: format!("expected `e u v`, got {content:?}"),
                })
            }
        }
    }
    g.ok_or(ParseError::BadHeader { line: 0, what: "empty input: no problem line".into() })
}

/// Writes the DIMACS `.col` format (1-based vertex ids).
pub fn write_dimacs<W: Write>(g: &Graph, mut w: W) -> std::io::Result<()> {
    writeln!(w, "c written by streamcolor")?;
    writeln!(w, "p edge {} {}", g.n(), g.m())?;
    for e in g.edges() {
        writeln!(w, "e {} {}", e.u() + 1, e.v() + 1)?;
    }
    Ok(())
}

/// Reads a coloring file: one `vertex color` pair per line, `#` comments;
/// vertices without a line stay uncolored.
///
/// `n` bounds the vertex ids (a graph file is normally read first).
pub fn read_coloring<R: BufRead>(reader: R, n: usize) -> Result<crate::Coloring, ParseError> {
    let mut coloring = crate::Coloring::empty(n);
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let content = line.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let toks: Vec<&str> = content.split_whitespace().collect();
        let [v, c] = toks.as_slice() else {
            return Err(ParseError::Malformed {
                line: lineno,
                what: format!("expected `vertex color`, got {content:?}"),
            });
        };
        let v = parse_u64(v, lineno)?;
        let c = parse_u64(c, lineno)?;
        if v >= n as u64 {
            return Err(ParseError::VertexOutOfRange { line: lineno, vertex: v, n });
        }
        if coloring.is_colored(v as VertexId) {
            return Err(ParseError::Malformed {
                line: lineno,
                what: format!("vertex {v} colored twice"),
            });
        }
        coloring.set(v as VertexId, c);
    }
    Ok(coloring)
}

/// Writes a coloring as `vertex color` lines (uncolored vertices are
/// omitted). Round-trips through [`read_coloring`].
pub fn write_coloring<W: Write>(coloring: &crate::Coloring, mut w: W) -> std::io::Result<()> {
    for (v, c) in coloring.assignments() {
        writeln!(w, "{v} {c}")?;
    }
    Ok(())
}

/// Convenience: parse either format, sniffing from the first significant
/// line (`p`/`c` ⇒ DIMACS, `n`/`#` ⇒ edge list).
pub fn read_auto(text: &str) -> Result<Graph, ParseError> {
    let first = text.lines().map(str::trim).find(|l| !l.is_empty()).unwrap_or("");
    if first.starts_with('p') || first.starts_with('c') {
        read_dimacs(text.as_bytes())
    } else {
        read_edge_list(text.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    /// Same vertex count and edge set (adjacency order may differ after a
    /// round trip, and `Graph` equality is representation-sensitive).
    fn assert_same_graph(a: &Graph, b: &Graph) {
        assert_eq!(a.n(), b.n());
        let mut ea: Vec<Edge> = a.edges().collect();
        let mut eb: Vec<Edge> = b.edges().collect();
        ea.sort_unstable();
        eb.sort_unstable();
        assert_eq!(ea, eb);
    }

    #[test]
    fn edge_list_round_trip() {
        let g = generators::gnp_with_max_degree(40, 6, 0.3, 7);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(buf.as_slice()).unwrap();
        assert_same_graph(&g, &back);
    }

    #[test]
    fn dimacs_round_trip() {
        let g = generators::preferential_attachment(50, 2, 10, 1);
        let mut buf = Vec::new();
        write_dimacs(&g, &mut buf).unwrap();
        let back = read_dimacs(buf.as_slice()).unwrap();
        assert_same_graph(&g, &back);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "# header comment\n\nn 3\n0 1  # inline comment\n\n1 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn missing_header_is_an_error() {
        let err = read_edge_list("0 1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ParseError::BadHeader { line: 1, .. }), "{err}");
        let err = read_edge_list("".as_bytes()).unwrap_err();
        assert!(matches!(err, ParseError::BadHeader { .. }));
    }

    #[test]
    fn duplicate_header_is_an_error() {
        let err = read_edge_list("n 3\nn 4\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ParseError::BadHeader { line: 2, .. }));
    }

    #[test]
    fn out_of_range_and_self_loop_are_errors() {
        let err = read_edge_list("n 3\n0 3\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ParseError::VertexOutOfRange { line: 2, vertex: 3, n: 3 }), "{err}");
        let err = read_edge_list("n 3\n1 1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ParseError::SelfLoop { line: 2, vertex: 1 }));
    }

    #[test]
    fn malformed_tokens_are_errors() {
        let err = read_edge_list("n 3\n0 x\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ParseError::Malformed { line: 2, .. }));
        let err = read_edge_list("n 3\n0 1 2\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ParseError::Malformed { line: 2, .. }));
    }

    #[test]
    fn dimacs_one_based_conversion() {
        let text = "c a triangle\np edge 3 3\ne 1 2\ne 2 3\ne 1 3\n";
        let g = read_dimacs(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 2) && g.has_edge(0, 2));
    }

    #[test]
    fn dimacs_rejects_zero_vertex() {
        let err = read_dimacs("p edge 3 1\ne 0 2\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ParseError::VertexOutOfRange { vertex: 0, .. }));
    }

    #[test]
    fn auto_sniffs_both_formats() {
        let g = generators::cycle(5);
        let mut el = Vec::new();
        write_edge_list(&g, &mut el).unwrap();
        let mut dc = Vec::new();
        write_dimacs(&g, &mut dc).unwrap();
        assert_same_graph(&read_auto(std::str::from_utf8(&el).unwrap()).unwrap(), &g);
        assert_same_graph(&read_auto(std::str::from_utf8(&dc).unwrap()).unwrap(), &g);
    }

    #[test]
    fn error_display_is_informative() {
        let err = read_edge_list("n 2\n0 5\n".as_bytes()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2") && msg.contains('5'), "{msg}");
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = Graph::empty(4);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        assert_eq!(read_edge_list(buf.as_slice()).unwrap(), g);
    }

    #[test]
    fn coloring_round_trip() {
        let g = generators::cycle(6);
        let mut c = crate::Coloring::empty(6);
        crate::greedy::greedy_complete(&g, &mut c);
        let mut buf = Vec::new();
        write_coloring(&c, &mut buf).unwrap();
        let back = read_coloring(buf.as_slice(), 6).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn partial_colorings_keep_gaps() {
        let text = "# partial\n0 5\n3 7\n";
        let c = read_coloring(text.as_bytes(), 4).unwrap();
        assert_eq!(c.get(0), Some(5));
        assert_eq!(c.get(3), Some(7));
        assert!(!c.is_colored(1));
        assert_eq!(c.num_uncolored(), 2);
    }

    #[test]
    fn coloring_errors() {
        assert!(matches!(
            read_coloring("9 1\n".as_bytes(), 4).unwrap_err(),
            ParseError::VertexOutOfRange { vertex: 9, .. }
        ));
        assert!(matches!(
            read_coloring("1 2\n1 3\n".as_bytes(), 4).unwrap_err(),
            ParseError::Malformed { line: 2, .. }
        ));
        assert!(matches!(
            read_coloring("1\n".as_bytes(), 4).unwrap_err(),
            ParseError::Malformed { line: 1, .. }
        ));
    }
}
