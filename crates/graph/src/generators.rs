//! Reproducible graph generators.
//!
//! Every generator is deterministic in its seed (via `rand::StdRng`), so
//! experiments and failing tests are replayable. The families mirror the
//! paper's motivating workloads (databases/scheduling interference graphs:
//! sparse random, bounded-degree, bipartite) plus the structured extremes
//! (cliques, cycles, stars) that exercise boundary behaviour.

use crate::edge::{Edge, VertexId};
use crate::graph::Graph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::empty(n);
    for u in 0..n as VertexId {
        for v in u + 1..n as VertexId {
            g.add_edge(Edge::new(u, v));
        }
    }
    g
}

/// The cycle `C_n` (`n ≥ 3`).
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    let mut g = Graph::empty(n);
    for i in 0..n {
        g.add_edge(Edge::new(i as VertexId, ((i + 1) % n) as VertexId));
    }
    g
}

/// The path `P_n`.
pub fn path(n: usize) -> Graph {
    let mut g = Graph::empty(n);
    for i in 1..n {
        g.add_edge(Edge::new((i - 1) as VertexId, i as VertexId));
    }
    g
}

/// A star: vertex 0 joined to all others.
pub fn star(n: usize) -> Graph {
    let mut g = Graph::empty(n);
    for v in 1..n as VertexId {
        g.add_edge(Edge::new(0, v));
    }
    g
}

/// The complete bipartite graph `K_{a,b}` (side A = `0..a`, side B = `a..a+b`).
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut g = Graph::empty(a + b);
    for u in 0..a as VertexId {
        for v in a as VertexId..(a + b) as VertexId {
            g.add_edge(Edge::new(u, v));
        }
    }
    g
}

/// Erdős–Rényi `G(n, p)` **capped at maximum degree** `max_deg`: edges are
/// sampled in random order and an edge is kept only if both endpoints are
/// below the cap. This gives a ∆-bounded random graph — the canonical
/// input family for ∆-based coloring experiments.
pub fn gnp_with_max_degree(n: usize, max_deg: usize, p: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut candidates: Vec<Edge> = Vec::new();
    for u in 0..n as VertexId {
        for v in u + 1..n as VertexId {
            if rng.gen_bool(p) {
                candidates.push(Edge::new(u, v));
            }
        }
    }
    candidates.shuffle(&mut rng);
    let mut g = Graph::empty(n);
    for e in candidates {
        if g.degree(e.u()) < max_deg && g.degree(e.v()) < max_deg {
            g.add_edge(e);
        }
    }
    g
}

/// A random graph with **exactly** max degree `delta` (when feasible):
/// takes a ∆-capped random graph and plants one vertex of full degree.
///
/// Experiments that sweep ∆ use this so the x-axis is the realized ∆,
/// not just a cap.
pub fn random_with_exact_max_degree(n: usize, delta: usize, seed: u64) -> Graph {
    assert!(delta < n, "need ∆ < n");
    let density = (2.0 * delta as f64 / n as f64).min(0.8);
    let mut g = gnp_with_max_degree(n, delta, density, seed);
    // Plant: raise vertex 0 to degree exactly delta.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E3779B97F4A7C15);
    let mut others: Vec<VertexId> = (1..n as VertexId).collect();
    others.shuffle(&mut rng);
    for v in others {
        if g.degree(0) >= delta {
            break;
        }
        if g.degree(v) < delta {
            g.add_edge(Edge::new(0, v));
        }
    }
    g
}

/// A disjoint union of `k` cliques of size `size` (χ = size; degeneracy =
/// size − 1). Stresses the per-block recoloring paths.
pub fn clique_union(k: usize, size: usize) -> Graph {
    let mut g = Graph::empty(k * size);
    for c in 0..k {
        let base = (c * size) as VertexId;
        for i in 0..size as VertexId {
            for j in i + 1..size as VertexId {
                g.add_edge(Edge::new(base + i, base + j));
            }
        }
    }
    g
}

/// A random bipartite graph with side sizes `a`, `b` and edge probability
/// `p`, degree-capped at `max_deg`.
pub fn random_bipartite(a: usize, b: usize, p: f64, max_deg: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::empty(a + b);
    let mut candidates = Vec::new();
    for u in 0..a as VertexId {
        for v in a as VertexId..(a + b) as VertexId {
            if rng.gen_bool(p) {
                candidates.push(Edge::new(u, v));
            }
        }
    }
    candidates.shuffle(&mut rng);
    for e in candidates {
        if g.degree(e.u()) < max_deg && g.degree(e.v()) < max_deg {
            g.add_edge(e);
        }
    }
    g
}

/// A preferential-attachment ("power-law-ish") graph: each new vertex
/// attaches to `k` existing vertices chosen proportionally to degree+1,
/// capped at `max_deg`. Models skewed-degree interference graphs.
pub fn preferential_attachment(n: usize, k: usize, max_deg: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::empty(n);
    // Repeated-endpoint list for proportional sampling.
    let mut endpoints: Vec<VertexId> = vec![0];
    for v in 1..n as VertexId {
        let mut attached = 0;
        let mut attempts = 0;
        while attached < k.min(v as usize) && attempts < 20 * k + 20 {
            attempts += 1;
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != v && !g.has_edge(v, t) && g.degree(t) < max_deg && g.degree(v) < max_deg {
                g.add_edge(Edge::new(v, t));
                endpoints.push(t);
                attached += 1;
            }
        }
        endpoints.push(v);
    }
    g
}

/// The Mycielski construction `M(g)`: `χ` increases by exactly 1 while the
/// clique number stays put.
///
/// Vertices: originals `0..n`, shadows `n..2n`, apex `2n`. Edges: originals
/// keep theirs; shadow `n+i` joins `N(i)`; the apex joins every shadow.
/// Iterating from `K_2` yields triangle-free graphs of unbounded `χ` — the
/// classical family separating `χ` from `ω`, used to sanity-check the
/// chromatic solver and to stress palette-vs-χ reporting.
pub fn mycielski(g: &Graph) -> Graph {
    let n = g.n();
    let mut out = Graph::empty(2 * n + 1);
    for e in g.edges() {
        out.add_edge(e);
        out.add_edge(Edge::new(e.u(), n as VertexId + e.v()));
        out.add_edge(Edge::new(e.v(), n as VertexId + e.u()));
    }
    let apex = (2 * n) as VertexId;
    for i in 0..n as VertexId {
        out.add_edge(Edge::new(n as VertexId + i, apex));
    }
    out
}

/// The Petersen graph: 10 vertices, 15 edges, 3-regular, `χ = 3`,
/// girth 5. A classic worst case for naive coloring heuristics.
pub fn petersen() -> Graph {
    let mut g = Graph::empty(10);
    for i in 0..5u32 {
        g.add_edge(Edge::new(i, (i + 1) % 5)); // outer C5
        g.add_edge(Edge::new(5 + i, 5 + (i + 2) % 5)); // inner pentagram
        g.add_edge(Edge::new(i, 5 + i)); // spokes
    }
    g
}

/// The blow-up `g[K̄_t]`: each vertex becomes an independent set of `t`
/// copies; copies are adjacent iff the originals were.
///
/// `χ` is preserved while `∆` scales by `t` — handy for growing `∆` along
/// a sweep without changing the chromatic structure.
pub fn blowup(g: &Graph, t: usize) -> Graph {
    assert!(t >= 1, "blow-up factor must be ≥ 1");
    let mut out = Graph::empty(g.n() * t);
    for e in g.edges() {
        for a in 0..t {
            for b in 0..t {
                out.add_edge(Edge::new(
                    (e.u() as usize * t + a) as VertexId,
                    (e.v() as usize * t + b) as VertexId,
                ));
            }
        }
    }
    out
}

/// A balanced complete `k`-partite graph ("Turán-style"): `k` sides of
/// `size` vertices each; all inter-side pairs are edges. `χ = k`,
/// `∆ = (k−1)·size`. The densest graph with its chromatic number.
pub fn complete_multipartite(k: usize, size: usize) -> Graph {
    let n = k * size;
    let mut g = Graph::empty(n);
    for u in 0..n as VertexId {
        for v in u + 1..n as VertexId {
            if (u as usize) / size != (v as usize) / size {
                g.add_edge(Edge::new(u, v));
            }
        }
    }
    g
}

/// A ∆-regular "circulant" graph: vertex `i` joins `i ± 1, …, i ± ∆/2`
/// (mod n). Regular graphs are Brooks' theorem's interesting regime.
pub fn circulant(n: usize, half_degree: usize) -> Graph {
    assert!(n > 2 * half_degree, "need n > 2·half_degree for simple circulant");
    let mut g = Graph::empty(n);
    for i in 0..n {
        for d in 1..=half_degree {
            g.add_edge(Edge::new(i as VertexId, ((i + d) % n) as VertexId));
        }
    }
    g
}

/// The edges of `g` in a deterministic shuffled order (an "adversarial
/// arrival order" for the static-stream experiments).
pub fn shuffled_edges(g: &Graph, seed: u64) -> Vec<Edge> {
    let mut edges: Vec<Edge> = g.edges().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    edges.shuffle(&mut rng);
    edges
}

/// Random `(deg+1)` color lists over universe `[universe]` for each vertex
/// of `g` — the input format of Theorem 2. Each list has exactly
/// `deg(x) + 1` distinct colors.
pub fn random_deg_plus_one_lists(g: &Graph, universe: u64, seed: u64) -> Vec<Vec<u64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..g.n() as VertexId)
        .map(|x| {
            let need = g.degree(x) + 1;
            assert!(
                (universe as usize) >= need,
                "universe {universe} too small for degree {}",
                need - 1
            );
            let mut list = std::collections::HashSet::new();
            while list.len() < need {
                list.insert(rng.gen_range(0..universe));
            }
            let mut v: Vec<u64> = list.into_iter().collect();
            v.sort_unstable();
            v
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_graph_counts() {
        let g = complete(7);
        assert_eq!(g.m(), 21);
        assert_eq!(g.max_degree(), 6);
    }

    #[test]
    fn cycle_and_path() {
        let c = cycle(5);
        assert_eq!(c.m(), 5);
        assert!(c.vertices().all(|v| c.degree(v) == 2));
        let p = path(5);
        assert_eq!(p.m(), 4);
        assert_eq!(p.degree(0), 1);
        assert_eq!(p.degree(2), 2);
    }

    #[test]
    fn star_shape() {
        let g = star(6);
        assert_eq!(g.degree(0), 5);
        for v in 1..6 {
            assert_eq!(g.degree(v), 1);
        }
    }

    #[test]
    fn bipartite_structure() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.m(), 12);
        assert!(!g.has_edge(0, 1));
        assert!(!g.has_edge(3, 4));
        assert!(g.has_edge(0, 3));
    }

    #[test]
    fn gnp_respects_degree_cap() {
        let g = gnp_with_max_degree(100, 7, 0.5, 42);
        assert!(g.max_degree() <= 7);
        assert!(g.m() > 0);
    }

    #[test]
    fn gnp_is_seed_deterministic() {
        let a = gnp_with_max_degree(50, 6, 0.3, 9);
        let b = gnp_with_max_degree(50, 6, 0.3, 9);
        assert_eq!(a, b);
        let c = gnp_with_max_degree(50, 6, 0.3, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn exact_max_degree_hits_target() {
        for delta in [3usize, 8, 15] {
            let g = random_with_exact_max_degree(60, delta, 7);
            assert_eq!(g.max_degree(), delta, "∆ should be exactly {delta}");
        }
    }

    #[test]
    fn clique_union_shape() {
        let g = clique_union(3, 4);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 6);
        assert!(g.has_edge(0, 3));
        assert!(!g.has_edge(0, 4));
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn random_bipartite_no_intra_side_edges() {
        let g = random_bipartite(20, 20, 0.4, 10, 3);
        for e in g.edges() {
            assert!(e.u() < 20 && e.v() >= 20, "edge {e} crosses wrongly");
        }
        assert!(g.max_degree() <= 10);
    }

    #[test]
    fn preferential_attachment_connected_ish() {
        let g = preferential_attachment(80, 2, 20, 11);
        assert!(g.m() >= 80, "should attach ~2 edges per vertex, got {}", g.m());
        assert!(g.max_degree() <= 20);
    }

    #[test]
    fn shuffled_edges_is_permutation() {
        let g = complete(6);
        let s = shuffled_edges(&g, 1);
        assert_eq!(s.len(), g.m());
        let mut sorted = s.clone();
        sorted.sort();
        let mut orig: Vec<Edge> = g.edges().collect();
        orig.sort();
        assert_eq!(sorted, orig);
        assert_eq!(shuffled_edges(&g, 1), s, "seed determinism");
    }

    #[test]
    fn lists_have_deg_plus_one_distinct_colors() {
        let g = gnp_with_max_degree(30, 6, 0.4, 2);
        let lists = random_deg_plus_one_lists(&g, 100, 5);
        for x in 0..30u32 {
            let l = &lists[x as usize];
            assert_eq!(l.len(), g.degree(x) + 1);
            let mut d = l.clone();
            d.dedup();
            assert_eq!(d.len(), l.len(), "duplicate colors in list");
            assert!(l.iter().all(|&c| c < 100));
        }
    }

    #[test]
    #[should_panic(expected = "universe")]
    fn lists_reject_tiny_universe() {
        let g = complete(5);
        random_deg_plus_one_lists(&g, 3, 0);
    }

    #[test]
    fn mycielski_counts() {
        // M(K2) = C5: 5 vertices, 5 edges.
        let k2 = complete(2);
        let m = mycielski(&k2);
        assert_eq!(m.n(), 5);
        assert_eq!(m.m(), 5);
        assert!(m.vertices().all(|v| m.degree(v) == 2));
        // M(C5) = Grötzsch graph: 11 vertices, 20 edges, ∆ = 4.
        let g = mycielski(&cycle(5));
        assert_eq!(g.n(), 11);
        assert_eq!(g.m(), 20);
        assert_eq!(g.max_degree(), 5); // apex joins all 5 shadows
    }

    #[test]
    fn petersen_is_three_regular() {
        let g = petersen();
        assert_eq!(g.n(), 10);
        assert_eq!(g.m(), 15);
        assert!(g.vertices().all(|v| g.degree(v) == 3));
        // Girth 5: no triangles.
        for e in g.edges() {
            for &w in g.neighbors(e.u()) {
                assert!(!(w != e.v() && g.has_edge(w, e.v())), "triangle at {e}");
            }
        }
    }

    #[test]
    fn blowup_scales_degree_not_chromatic_structure() {
        let g = blowup(&complete(3), 4);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 16);
        assert!(g.vertices().all(|v| g.degree(v) == 8));
        // Copies of the same original are non-adjacent.
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(0, 4));
    }

    #[test]
    fn complete_multipartite_structure() {
        let g = complete_multipartite(3, 2);
        assert_eq!(g.n(), 6);
        assert_eq!(g.m(), 12); // K6 minus 3 disjoint edges
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(0, 2));
        assert!(g.vertices().all(|v| g.degree(v) == 4));
    }

    #[test]
    fn circulant_is_regular() {
        let g = circulant(11, 3);
        assert!(g.vertices().all(|v| g.degree(v) == 6));
        assert_eq!(g.m(), 33);
    }

    #[test]
    #[should_panic(expected = "n > 2·half_degree")]
    fn circulant_rejects_overfull_degree() {
        circulant(6, 3);
    }
}
