//! # `sc-graph` — graph substrate for `streamcolor`
//!
//! Everything the streaming-coloring algorithms of
//! Assadi–Chakrabarti–Ghosh–Stoeckl (PODS 2023) need from "classical"
//! (offline) graph machinery:
//!
//! * [`Graph`] — a compact adjacency-list graph over `u32` vertex ids, with
//!   induced-subgraph extraction (Algorithm 2 recolors induced blocks at
//!   query time).
//! * [`Coloring`] — partial/total colorings with properness validation
//!   against a graph and against per-vertex color lists.
//! * [`generators`] — reproducible random and structured graph families for
//!   tests, examples and the experiment harness.
//! * [`degeneracy`] — bucket-queue degeneracy ordering and
//!   `(degeneracy+1)`-coloring (Definition 4.1 / line 26 of Algorithm 2).
//! * [`greedy`] — first-fit greedy coloring, including the list variant the
//!   end-of-algorithm completion passes use.
//! * [`turan`] — the constructive Turán-type independent-set procedure of
//!   Lemma 2.1 / A.1, which ends every epoch of Algorithm 1.
//!
//! **Ownership contract** (see ROADMAP.md, "which layer owns what"):
//! this crate owns *offline* structures and algorithms only — it knows
//! nothing of streams, passes, chunking, or space accounting. A
//! [`Graph`] held by a streaming colorer is not free: the colorer must
//! self-report its bits through `sc_stream::SpaceMeter`; nothing here
//! meters itself.

pub mod brooks;
pub mod chromatic;
pub mod coloring;
pub mod components;
pub mod degeneracy;
pub mod edge;
pub mod generators;
pub mod graph;
pub mod greedy;
pub mod io;
pub mod stats;
pub mod turan;
pub mod validate;

pub use brooks::{brooks_bound, brooks_coloring};
pub use chromatic::{chromatic_number, greedy_clique, k_colorable};
pub use coloring::{Color, Coloring};
pub use components::{
    biconnected_components, bipartition, connected_components, is_connected, UnionFind,
};
pub use degeneracy::{degeneracy_coloring, degeneracy_ordering, DegeneracyInfo};
pub use edge::{Edge, VertexId};
pub use graph::Graph;
pub use greedy::{
    greedy_color_in_order, greedy_complete, greedy_list_color, greedy_repair_ascending,
};
pub use stats::GraphStats;
pub use turan::turan_independent_set;
pub use validate::{audit, audit_lists, Audit};
