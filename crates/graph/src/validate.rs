//! Detailed coloring audits.
//!
//! `Coloring::is_proper_total` answers yes/no; experiment harnesses and
//! the adversarial game want *why not*: which edges are violated, how
//! color classes are distributed, whether lists were honored per vertex.
//! [`audit`] collects the full picture in one pass over the graph.

use crate::coloring::{Color, Coloring};
use crate::edge::Edge;
use crate::graph::Graph;

/// The result of a full coloring audit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Audit {
    /// Monochromatic edges (both endpoints colored identically).
    pub violations: Vec<Edge>,
    /// Edges with at least one uncolored endpoint.
    pub uncolored_edges: Vec<Edge>,
    /// Uncolored vertices.
    pub uncolored_vertices: Vec<u32>,
    /// Distinct colors used.
    pub distinct_colors: usize,
    /// Size of the largest color class.
    pub largest_class: usize,
}

impl Audit {
    /// Whether the coloring is a proper total coloring.
    pub fn is_proper_total(&self) -> bool {
        self.violations.is_empty()
            && self.uncolored_edges.is_empty()
            && self.uncolored_vertices.is_empty()
    }

    /// A human-readable verdict for logs and assertion messages.
    pub fn verdict(&self) -> String {
        if self.is_proper_total() {
            format!("proper: {} colors, largest class {}", self.distinct_colors, self.largest_class)
        } else {
            format!(
                "IMPROPER: {} monochromatic edges (first: {:?}), {} uncolored vertices",
                self.violations.len(),
                self.violations.first(),
                self.uncolored_vertices.len()
            )
        }
    }
}

/// Audits `coloring` against `g` in `O(n + m)`.
pub fn audit(g: &Graph, coloring: &Coloring) -> Audit {
    let mut violations = Vec::new();
    let mut uncolored_edges = Vec::new();
    for e in g.edges() {
        match (coloring.get(e.u()), coloring.get(e.v())) {
            (Some(a), Some(b)) if a == b => violations.push(e),
            (Some(_), Some(_)) => {}
            _ => uncolored_edges.push(e),
        }
    }
    let uncolored_vertices = coloring.uncolored();
    let mut classes: std::collections::HashMap<Color, usize> = std::collections::HashMap::new();
    for (_, c) in coloring.assignments() {
        *classes.entry(c).or_default() += 1;
    }
    Audit {
        violations,
        uncolored_edges,
        uncolored_vertices,
        distinct_colors: classes.len(),
        largest_class: classes.values().copied().max().unwrap_or(0),
    }
}

/// Audits list compliance: returns the vertices whose assigned color is
/// not in their list.
pub fn audit_lists(coloring: &Coloring, lists: &[Vec<Color>]) -> Vec<u32> {
    coloring
        .assignments()
        .filter(|(x, c)| !lists[*x as usize].contains(c))
        .map(|(x, _)| x)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn proper_coloring_audits_clean() {
        let g = generators::cycle(6);
        let mut c = Coloring::empty(6);
        for x in 0..6u32 {
            c.set(x, (x % 2) as u64);
        }
        let a = audit(&g, &c);
        assert!(a.is_proper_total());
        assert_eq!(a.distinct_colors, 2);
        assert_eq!(a.largest_class, 3);
        assert!(a.verdict().starts_with("proper"));
    }

    #[test]
    fn monochromatic_edges_are_listed() {
        let g = generators::complete(3);
        let mut c = Coloring::empty(3);
        c.set(0, 1);
        c.set(1, 1);
        c.set(2, 2);
        let a = audit(&g, &c);
        assert_eq!(a.violations, vec![Edge::new(0, 1)]);
        assert!(!a.is_proper_total());
        assert!(a.verdict().contains("IMPROPER"));
    }

    #[test]
    fn uncolored_parts_are_reported() {
        let g = generators::path(4);
        let mut c = Coloring::empty(4);
        c.set(0, 0);
        let a = audit(&g, &c);
        assert_eq!(a.uncolored_vertices, vec![1, 2, 3]);
        assert_eq!(a.uncolored_edges.len(), 3);
        assert!(!a.is_proper_total());
    }

    #[test]
    fn audit_matches_is_proper_total_on_random_instances() {
        for seed in 0..5u64 {
            let g = generators::gnp_with_max_degree(60, 8, 0.4, seed);
            let mut c = Coloring::empty(60);
            crate::greedy::greedy_complete(&g, &mut c);
            let a = audit(&g, &c);
            assert_eq!(a.is_proper_total(), c.is_proper_total(&g));
            assert_eq!(a.distinct_colors, c.num_distinct_colors());
        }
    }

    #[test]
    fn list_audit_flags_offenders() {
        let mut c = Coloring::empty(3);
        c.set(0, 5);
        c.set(1, 7);
        let lists = vec![vec![5, 6], vec![5, 6], vec![1]];
        assert_eq!(audit_lists(&c, &lists), vec![1]);
        c.set(1, 6);
        assert!(audit_lists(&c, &lists).is_empty());
    }

    #[test]
    fn empty_graph_audit() {
        let g = Graph::empty(3);
        let c = Coloring::empty(3);
        let a = audit(&g, &c);
        assert!(!a.is_proper_total()); // vertices uncolored
        assert!(a.violations.is_empty());
        assert_eq!(a.largest_class, 0);
    }
}
