//! Connectivity machinery: union-find, connected components, bipartiteness
//! and biconnected components.
//!
//! Brooks' theorem (`crate::brooks`) needs connected and biconnected
//! decompositions, the chromatic solver prunes per component, and several
//! experiments report per-component structure of generated workloads.

use crate::edge::{Edge, VertexId};
use crate::graph::Graph;

/// Disjoint-set union with path halving and union by size.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets `{0}, …, {n−1}`.
    pub fn new(n: usize) -> Self {
        Self { parent: (0..n as u32).collect(), size: vec![1; n], components: n }
    }

    /// Representative of `x`'s set (path halving keeps trees shallow
    /// without recursion).
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    /// Merges the sets of `a` and `b`. Returns whether they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) =
            if self.size[ra as usize] >= self.size[rb as usize] { (ra, rb) } else { (rb, ra) };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets.
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Size of the set containing `x`.
    pub fn component_size(&mut self, x: u32) -> usize {
        let r = self.find(x);
        self.size[r as usize] as usize
    }
}

/// The connected components of `g`, each a sorted vertex list; components
/// are ordered by smallest member.
pub fn connected_components(g: &Graph) -> Vec<Vec<VertexId>> {
    let mut uf = UnionFind::new(g.n());
    for e in g.edges() {
        uf.union(e.u(), e.v());
    }
    let mut by_root: std::collections::BTreeMap<u32, Vec<VertexId>> = Default::default();
    for v in g.vertices() {
        by_root.entry(uf.find(v)).or_default().push(v);
    }
    let mut comps: Vec<Vec<VertexId>> = by_root.into_values().collect();
    comps.sort_by_key(|c| c[0]);
    comps
}

/// Whether `g` is connected (the empty graph and `n = 1` count as
/// connected).
pub fn is_connected(g: &Graph) -> bool {
    g.n() <= 1 || connected_components(g).len() == 1
}

/// If `g` is bipartite, returns a 2-coloring sides vector (`side[v] ∈
/// {0, 1}`); otherwise `None` (an odd cycle exists).
pub fn bipartition(g: &Graph) -> Option<Vec<u8>> {
    let mut side = vec![u8::MAX; g.n()];
    let mut queue = std::collections::VecDeque::new();
    for s in g.vertices() {
        if side[s as usize] != u8::MAX {
            continue;
        }
        side[s as usize] = 0;
        queue.push_back(s);
        while let Some(x) = queue.pop_front() {
            for &y in g.neighbors(x) {
                if side[y as usize] == u8::MAX {
                    side[y as usize] = 1 - side[x as usize];
                    queue.push_back(y);
                } else if side[y as usize] == side[x as usize] {
                    return None;
                }
            }
        }
    }
    Some(side)
}

/// Biconnected components ("blocks") of `g`, as edge lists, via the
/// classical Hopcroft–Tarjan lowpoint DFS (implemented iteratively so deep
/// paths do not overflow the stack).
///
/// Also returns the set of cut vertices. Every edge appears in exactly one
/// block; a bridge forms a 2-vertex block by itself.
pub fn biconnected_components(g: &Graph) -> (Vec<Vec<Edge>>, Vec<VertexId>) {
    let n = g.n();
    let mut disc = vec![0u32; n]; // 0 = unvisited; else discovery time + 1
    let mut low = vec![0u32; n];
    let mut is_cut = vec![false; n];
    let mut timer = 0u32;
    let mut blocks: Vec<Vec<Edge>> = Vec::new();
    let mut edge_stack: Vec<Edge> = Vec::new();

    // Iterative DFS frame: (vertex, parent, next-neighbor-index, child count
    // for the root cut-vertex rule).
    for root in g.vertices() {
        if disc[root as usize] != 0 {
            continue;
        }
        let mut stack: Vec<(VertexId, Option<VertexId>, usize)> = vec![(root, None, 0)];
        let mut root_children = 0usize;
        timer += 1;
        disc[root as usize] = timer;
        low[root as usize] = timer;
        while let Some(&mut (x, parent, ref mut idx)) = stack.last_mut() {
            if *idx < g.degree(x) {
                let y = g.neighbors(x)[*idx];
                *idx += 1;
                if disc[y as usize] == 0 {
                    // Tree edge: descend.
                    edge_stack.push(Edge::new(x, y));
                    timer += 1;
                    disc[y as usize] = timer;
                    low[y as usize] = timer;
                    if x == root {
                        root_children += 1;
                    }
                    stack.push((y, Some(x), 0));
                } else if Some(y) != parent && disc[y as usize] < disc[x as usize] {
                    // Back edge to an ancestor.
                    edge_stack.push(Edge::new(x, y));
                    low[x as usize] = low[x as usize].min(disc[y as usize]);
                }
            } else {
                // Done with x: propagate lowpoint to parent, emit block.
                stack.pop();
                if let Some(p) = parent {
                    low[p as usize] = low[p as usize].min(low[x as usize]);
                    if low[x as usize] >= disc[p as usize] {
                        // p separates x's subtree: pop the block.
                        let mut block = Vec::new();
                        let cut_edge = Edge::new(p, x);
                        while let Some(e) = edge_stack.pop() {
                            block.push(e);
                            if e == cut_edge {
                                break;
                            }
                        }
                        blocks.push(block);
                        if p != root {
                            is_cut[p as usize] = true;
                        }
                    }
                }
            }
        }
        if root_children >= 2 {
            is_cut[root as usize] = true;
        }
    }

    let cuts = (0..n as VertexId).filter(|&v| is_cut[v as usize]).collect();
    (blocks, cuts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_components(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already merged");
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
        assert_eq!(uf.num_components(), 3);
        assert_eq!(uf.component_size(2), 3);
        assert_eq!(uf.component_size(4), 1);
    }

    #[test]
    fn components_of_disjoint_cliques() {
        let g = generators::clique_union(3, 4);
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![0, 1, 2, 3]);
        assert_eq!(comps[2], vec![8, 9, 10, 11]);
        assert!(!is_connected(&g));
        assert!(is_connected(&generators::cycle(5)));
    }

    #[test]
    fn empty_and_single_vertex_are_connected() {
        assert!(is_connected(&Graph::empty(0)));
        assert!(is_connected(&Graph::empty(1)));
        assert!(!is_connected(&Graph::empty(2)));
    }

    #[test]
    fn bipartition_detects_odd_cycles() {
        assert!(bipartition(&generators::cycle(4)).is_some());
        assert!(bipartition(&generators::cycle(5)).is_none());
        assert!(bipartition(&generators::complete(3)).is_none());
        let g = generators::complete_bipartite(3, 4);
        let side = bipartition(&g).unwrap();
        for e in g.edges() {
            assert_ne!(side[e.u() as usize], side[e.v() as usize]);
        }
    }

    #[test]
    fn bipartition_handles_disconnected_graphs() {
        let g = generators::clique_union(4, 2); // disjoint edges
        let side = bipartition(&g).unwrap();
        for e in g.edges() {
            assert_ne!(side[e.u() as usize], side[e.v() as usize]);
        }
    }

    #[test]
    fn blocks_of_two_triangles_sharing_a_vertex() {
        // Bowtie: triangles {0,1,2} and {2,3,4} share cut vertex 2.
        let g = Graph::from_edges(
            5,
            [
                Edge::new(0, 1),
                Edge::new(1, 2),
                Edge::new(0, 2),
                Edge::new(2, 3),
                Edge::new(3, 4),
                Edge::new(2, 4),
            ],
        );
        let (blocks, cuts) = biconnected_components(&g);
        assert_eq!(blocks.len(), 2);
        assert_eq!(cuts, vec![2]);
        let mut sizes: Vec<usize> = blocks.iter().map(Vec::len).collect();
        sizes.sort();
        assert_eq!(sizes, vec![3, 3]);
    }

    #[test]
    fn every_edge_in_exactly_one_block() {
        let g = generators::gnp_with_max_degree(60, 8, 0.2, 3);
        let (blocks, _) = biconnected_components(&g);
        let mut seen = std::collections::HashSet::new();
        for b in &blocks {
            for &e in b {
                assert!(seen.insert(e), "edge {e} in two blocks");
            }
        }
        assert_eq!(seen.len(), g.m());
    }

    #[test]
    fn bridge_is_its_own_block() {
        let g = generators::path(4);
        let (blocks, cuts) = biconnected_components(&g);
        assert_eq!(blocks.len(), 3);
        assert!(blocks.iter().all(|b| b.len() == 1));
        assert_eq!(cuts, vec![1, 2]);
    }

    #[test]
    fn biconnected_graph_is_one_block_no_cuts() {
        let g = generators::cycle(7);
        let (blocks, cuts) = biconnected_components(&g);
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].len(), 7);
        assert!(cuts.is_empty());
        let k = generators::complete(6);
        let (blocks, cuts) = biconnected_components(&k);
        assert_eq!(blocks.len(), 1);
        assert!(cuts.is_empty());
    }

    #[test]
    fn blocks_cover_isolated_free_graph_across_components() {
        let g = generators::clique_union(2, 3);
        let (blocks, cuts) = biconnected_components(&g);
        assert_eq!(blocks.len(), 2);
        assert!(cuts.is_empty());
    }
}
