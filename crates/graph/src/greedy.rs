//! Greedy (first-fit) coloring subroutines.
//!
//! These are the offline completion steps the streaming algorithms invoke:
//!
//! * Algorithm 1, line 7: "greedily complete χ to a proper coloring" once
//!   all edges incident to the residual uncolored set are in memory.
//! * Algorithm 2, line 22: "(degree+1)-color subgraph induced by …".
//! * Algorithm 3, line 16: "greedy coloring of `D ∪ B`".
//!
//! First-fit over any vertex order uses at most `deg(x) + 1` colors for
//! each `x` restricted to its visible neighborhood — the combinatorial fact
//! all the paper's palette bounds bottom out in.

use crate::coloring::{Color, Coloring};
use crate::edge::VertexId;
use crate::graph::Graph;

/// First-fit colors `targets` (in the given order) in graph `g`, extending
/// the existing partial `coloring` and never recoloring already-colored
/// vertices. Colors are drawn from `offset..` (fresh-palette support for
/// the per-block recoloring of Algorithm 2).
///
/// Returns the number of distinct colors the *new* assignments used, i.e.
/// `max(assigned − offset) + 1`, or 0 if `targets` is empty.
pub fn greedy_color_in_order(
    g: &Graph,
    coloring: &mut Coloring,
    targets: &[VertexId],
    offset: Color,
) -> u64 {
    let mut span = 0u64;
    let mut forbidden: Vec<Color> = Vec::new();
    for &x in targets {
        if coloring.is_colored(x) {
            continue;
        }
        forbidden.clear();
        forbidden.extend(g.neighbors(x).iter().filter_map(|&y| coloring.get(y)));
        forbidden.sort_unstable();
        forbidden.dedup();
        // Smallest color ≥ offset not in forbidden.
        let mut c = offset;
        for &f in &forbidden {
            if f < c {
                continue;
            }
            if f == c {
                c += 1;
            } else {
                break;
            }
        }
        coloring.set(x, c);
        span = span.max(c - offset + 1);
    }
    span
}

/// Greedily completes a partial coloring to a total proper coloring of `g`,
/// visiting uncolored vertices in id order with palette starting at 0.
///
/// This is exactly Algorithm 1's final step; for a graph of maximum degree
/// `∆` and palette `[∆+1]` it always succeeds within the palette because
/// each vertex sees at most `∆` forbidden colors.
pub fn greedy_complete(g: &Graph, coloring: &mut Coloring) {
    let uncolored = coloring.uncolored();
    greedy_color_in_order(g, coloring, &uncolored, 0);
}

/// Repairs a first-fit-ascending coloring after edge insertions, touching
/// only the vertices the insertions can actually affect.
///
/// Precondition: `coloring` equals the result of first-fit coloring all
/// vertices of some graph `g₀` in ascending id order with palette `0..`
/// (i.e. [`greedy_complete`] on an empty partial), and `g` is `g₀` plus
/// some new edges. `seeds` names the vertices whose *lower* neighborhood
/// changed — for a new edge `{u, v}` with `u < v` that is `v` alone (`u`'s
/// first-fit color never looks at higher neighbors).
///
/// Postcondition: `coloring` equals first-fit ascending on `g` from
/// scratch. This holds by induction on vertex id: processing the worklist
/// in ascending order means every vertex below the current one already
/// carries its final (from-scratch) color, and first-fit only reads
/// lower-neighbor colors; a vertex whose color is unchanged propagates
/// nothing, which is exactly when the scratch run would assign the same
/// downstream colors.
///
/// Returns the vertices whose color changed, in ascending order — the
/// incremental query paths patch derived outputs (e.g. Algorithm 3's pair
/// encoding) from exactly this set.
///
/// The worklist is a min-heap that tolerates duplicates: a change at the
/// current minimum `y` only enqueues neighbors `> y`, so pops form a
/// non-decreasing sequence and a duplicate resurfaces immediately after
/// its twin, where the recheck is a no-op (the color is already
/// first-fit). That keeps every operation `O(log)` on a flat buffer
/// instead of the pointer-chasing of an ordered set.
pub fn greedy_repair_ascending(
    g: &Graph,
    coloring: &mut Coloring,
    seeds: impl IntoIterator<Item = VertexId>,
) -> Vec<VertexId> {
    use std::cmp::Reverse;
    let mut worklist: std::collections::BinaryHeap<Reverse<VertexId>> =
        seeds.into_iter().map(Reverse).collect();
    let mut changed = Vec::new();
    let mut forbidden: Vec<Color> = Vec::new();
    let mut last: Option<VertexId> = None;
    while let Some(Reverse(x)) = worklist.pop() {
        if last == Some(x) {
            continue;
        }
        last = Some(x);
        forbidden.clear();
        forbidden
            .extend(g.neighbors(x).iter().filter(|&&y| y < x).filter_map(|&y| coloring.get(y)));
        forbidden.sort_unstable();
        forbidden.dedup();
        let mut c = 0;
        for &f in &forbidden {
            if f < c {
                continue;
            }
            if f == c {
                c += 1;
            } else {
                break;
            }
        }
        if coloring.get(x) != Some(c) {
            coloring.set(x, c);
            changed.push(x);
            worklist.extend(g.neighbors(x).iter().copied().filter(|&y| y > x).map(Reverse));
        }
    }
    changed
}

/// Greedy **list** coloring: colors `targets` in order, choosing for each
/// the first color in its list not used by a colored neighbor.
///
/// Returns `Err(x)` for the first vertex whose list is exhausted. Always
/// succeeds when `|L_x| ≥ deg(x) + 1` within the subgraph visible to the
/// order (the `(deg+1)`-list-coloring setting of Theorem 2).
pub fn greedy_list_color(
    g: &Graph,
    coloring: &mut Coloring,
    targets: &[VertexId],
    lists: &[Vec<Color>],
) -> Result<(), VertexId> {
    for &x in targets {
        if coloring.is_colored(x) {
            continue;
        }
        let taken: Vec<Color> = g.neighbors(x).iter().filter_map(|&y| coloring.get(y)).collect();
        match lists[x as usize].iter().find(|c| !taken.contains(c)) {
            Some(&c) => coloring.set(x, c),
            None => return Err(x),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::Edge;
    use crate::generators;

    #[test]
    fn greedy_uses_at_most_delta_plus_one_colors() {
        let g = generators::complete(6);
        let mut c = Coloring::empty(6);
        greedy_complete(&g, &mut c);
        assert!(c.is_proper_total(&g));
        assert_eq!(c.num_distinct_colors(), 6); // K6 needs exactly 6
        assert!(c.palette_span() <= g.max_degree() as u64 + 1);
    }

    #[test]
    fn greedy_respects_existing_partial() {
        let g = Graph::from_edges(3, [Edge::new(0, 1), Edge::new(1, 2)]);
        let mut c = Coloring::empty(3);
        c.set(1, 0);
        greedy_complete(&g, &mut c);
        assert!(c.is_proper_total(&g));
        assert_eq!(c.get(1), Some(0), "pre-colored vertex must not change");
        assert_eq!(c.get(0), Some(1));
        assert_eq!(c.get(2), Some(1));
    }

    #[test]
    fn fresh_palette_offset() {
        let g = generators::complete(4);
        let mut c = Coloring::empty(4);
        let span = greedy_color_in_order(&g, &mut c, &[0, 1, 2, 3], 100);
        assert!(c.is_proper_total(&g));
        assert_eq!(span, 4);
        for x in 0..4u32 {
            assert!(c.get(x).unwrap() >= 100);
        }
    }

    #[test]
    fn greedy_on_empty_targets() {
        let g = generators::complete(3);
        let mut c = Coloring::empty(3);
        assert_eq!(greedy_color_in_order(&g, &mut c, &[], 0), 0);
        assert_eq!(c.num_uncolored(), 3);
    }

    #[test]
    fn greedy_first_fit_skips_gaps() {
        // Neighbor colors {0, 2}: first fit should pick 1.
        let g = Graph::from_edges(3, [Edge::new(0, 2), Edge::new(1, 2)]);
        let mut c = Coloring::empty(3);
        c.set(0, 0);
        c.set(1, 2);
        greedy_color_in_order(&g, &mut c, &[2], 0);
        assert_eq!(c.get(2), Some(1));
    }

    #[test]
    fn repair_matches_scratch_after_every_insertion() {
        // Insert a random graph's edges one at a time; after each, repair
        // must equal a from-scratch first-fit-ascending run.
        let full = generators::gnp_with_max_degree(40, 7, 0.4, 12);
        let edges: Vec<Edge> = generators::shuffled_edges(&full, 12);
        let mut g = Graph::empty(40);
        let mut c = Coloring::empty(40);
        greedy_complete(&g, &mut c); // all isolated: everything color 0
        for &e in &edges {
            g.add_edge(e);
            let changed = greedy_repair_ascending(&g, &mut c, [e.u().max(e.v())]);
            let mut scratch = Coloring::empty(40);
            greedy_complete(&g, &mut scratch);
            assert_eq!(c, scratch, "repair diverged after inserting {e}");
            // Changed vertices come back ascending and deduplicated.
            assert!(changed.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn repair_with_no_seeds_is_a_no_op() {
        let g = generators::complete(5);
        let mut c = Coloring::empty(5);
        greedy_complete(&g, &mut c);
        let before = c.clone();
        assert!(greedy_repair_ascending(&g, &mut c, []).is_empty());
        assert_eq!(c, before);
    }

    #[test]
    fn repair_cascades_through_higher_neighbors() {
        // Path 0–1–2–3 colored 0,1,0,1; adding {0,2} flips 2 and then 3.
        let mut g = Graph::from_edges(4, [Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 3)]);
        let mut c = Coloring::empty(4);
        greedy_complete(&g, &mut c);
        assert_eq!(c.get(2), Some(0));
        g.add_edge(Edge::new(0, 2));
        let changed = greedy_repair_ascending(&g, &mut c, [2]);
        assert_eq!(changed, vec![2, 3]);
        let mut scratch = Coloring::empty(4);
        greedy_complete(&g, &mut scratch);
        assert_eq!(c, scratch);
        assert_eq!(c.get(2), Some(2));
        assert_eq!(c.get(3), Some(0));
    }

    #[test]
    fn list_coloring_success() {
        let g = Graph::from_edges(3, [Edge::new(0, 1), Edge::new(1, 2), Edge::new(0, 2)]);
        let lists = vec![vec![1, 2, 3], vec![1, 2, 3], vec![1, 2, 3]];
        let mut c = Coloring::empty(3);
        greedy_list_color(&g, &mut c, &[0, 1, 2], &lists).unwrap();
        assert!(c.is_proper_total(&g));
        assert!(c.respects_lists(&lists));
    }

    #[test]
    fn list_coloring_failure_reports_vertex() {
        let g = Graph::from_edges(2, [Edge::new(0, 1)]);
        let lists = vec![vec![5], vec![5]];
        let mut c = Coloring::empty(2);
        let err = greedy_list_color(&g, &mut c, &[0, 1], &lists).unwrap_err();
        assert_eq!(err, 1);
    }

    #[test]
    fn deg_plus_one_lists_always_suffice() {
        let g = generators::gnp_with_max_degree(40, 8, 0.3, 99);
        let lists: Vec<Vec<Color>> =
            (0..40u32).map(|x| (0..=g.degree(x) as Color).map(|c| c * 3 + 17).collect()).collect();
        let order: Vec<VertexId> = (0..40).collect();
        let mut c = Coloring::empty(40);
        greedy_list_color(&g, &mut c, &order, &lists).unwrap();
        assert!(c.is_proper_total(&g));
        assert!(c.respects_lists(&lists));
    }
}
