//! Degeneracy ordering and `(degeneracy+1)`-coloring.
//!
//! Definition 4.1 of the paper: the degeneracy `κ` of `G` is the least
//! value such that every induced subgraph has a vertex of degree `≤ κ`;
//! greedily coloring in reverse order of repeated minimum-degree removal
//! (the Matula–Beck ordering) yields a proper `(κ+1)`-coloring.
//!
//! Algorithm 2 uses exactly this on the fast-vertex blocks: Lemma 4.5
//! shows those blocks have degeneracy `O(√∆)` (on the stored edge set), so
//! `(degeneracy+1)`-coloring them costs only `O(√∆)` fresh colors each.
//!
//! The implementation is the standard linear-time bucket queue.

use crate::coloring::{Color, Coloring};
use crate::edge::VertexId;
use crate::graph::Graph;

/// Result of a degeneracy computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegeneracyInfo {
    /// The degeneracy `κ`.
    pub degeneracy: usize,
    /// Vertices in removal order (each has `≤ κ` neighbors among the
    /// vertices *after* it in this order).
    pub order: Vec<VertexId>,
}

/// Computes the degeneracy and a degeneracy ordering of the subgraph of
/// `g` induced by `targets` (O(n + m) bucket queue).
pub fn degeneracy_ordering(g: &Graph, targets: &[VertexId]) -> DegeneracyInfo {
    let n = g.n();
    let mut in_set = vec![false; n];
    for &v in targets {
        in_set[v as usize] = true;
    }
    // Current degrees within the (shrinking) induced subgraph.
    let mut deg = vec![0usize; n];
    let mut max_deg = 0usize;
    for &v in targets {
        let d = g.neighbors(v).iter().filter(|&&y| in_set[y as usize]).count();
        deg[v as usize] = d;
        max_deg = max_deg.max(d);
    }
    // Bucket queue: buckets[d] holds vertices with current degree d.
    let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new(); max_deg + 1];
    for &v in targets {
        buckets[deg[v as usize]].push(v);
    }
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(targets.len());
    let mut degeneracy = 0usize;
    let mut cursor = 0usize;
    while order.len() < targets.len() {
        // Find the lowest nonempty bucket; cursor only needs to back up by
        // one per removal (degrees drop by at most 1 per removed neighbor).
        while cursor < buckets.len() && buckets[cursor].is_empty() {
            cursor += 1;
        }
        debug_assert!(cursor < buckets.len(), "bucket queue exhausted early");
        let v = loop {
            match buckets[cursor].pop() {
                // Skip stale entries (vertex moved to a lower bucket or was
                // removed since being pushed here).
                Some(v) if !removed[v as usize] && deg[v as usize] == cursor => break v,
                Some(_) => continue,
                None => {
                    cursor += 1;
                    while cursor < buckets.len() && buckets[cursor].is_empty() {
                        cursor += 1;
                    }
                    debug_assert!(cursor < buckets.len());
                }
            }
        };
        degeneracy = degeneracy.max(cursor);
        removed[v as usize] = true;
        order.push(v);
        for &y in g.neighbors(v) {
            if in_set[y as usize] && !removed[y as usize] {
                let d = deg[y as usize];
                deg[y as usize] = d - 1;
                buckets[d - 1].push(y);
                if d - 1 < cursor {
                    cursor = d - 1;
                }
            }
        }
    }
    DegeneracyInfo { degeneracy, order }
}

/// `(degeneracy+1)`-colors the subgraph of `g` induced by `targets`,
/// extending `coloring` with fresh colors from `offset..`.
///
/// Returns the number of colors used. Reverse degeneracy order guarantees
/// each vertex sees `≤ κ` already-colored neighbors, so the span is
/// `≤ κ + 1`.
pub fn degeneracy_coloring(
    g: &Graph,
    coloring: &mut Coloring,
    targets: &[VertexId],
    offset: Color,
) -> u64 {
    let info = degeneracy_ordering(g, targets);
    let reverse: Vec<VertexId> = info.order.iter().rev().copied().collect();
    let span = crate::greedy::greedy_color_in_order(g, coloring, &reverse, offset);
    debug_assert!(
        span <= info.degeneracy as u64 + 1,
        "degeneracy coloring used {span} > κ+1 = {} colors",
        info.degeneracy + 1
    );
    span
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::Edge;
    use crate::generators;

    fn all_vertices(g: &Graph) -> Vec<VertexId> {
        (0..g.n() as VertexId).collect()
    }

    #[test]
    fn tree_has_degeneracy_one() {
        // A star: center 0 with 5 leaves.
        let g = generators::star(6);
        let info = degeneracy_ordering(&g, &all_vertices(&g));
        assert_eq!(info.degeneracy, 1);
        assert_eq!(info.order.len(), 6);
    }

    #[test]
    fn clique_has_degeneracy_n_minus_one() {
        let g = generators::complete(5);
        let info = degeneracy_ordering(&g, &all_vertices(&g));
        assert_eq!(info.degeneracy, 4);
    }

    #[test]
    fn cycle_has_degeneracy_two() {
        let g = generators::cycle(7);
        let info = degeneracy_ordering(&g, &all_vertices(&g));
        assert_eq!(info.degeneracy, 2);
    }

    #[test]
    fn empty_graph_degeneracy_zero() {
        let g = Graph::empty(4);
        let info = degeneracy_ordering(&g, &all_vertices(&g));
        assert_eq!(info.degeneracy, 0);
        assert_eq!(info.order.len(), 4);
    }

    #[test]
    fn ordering_property_holds() {
        // Each vertex has ≤ κ neighbors later in the order.
        let g = generators::gnp_with_max_degree(60, 10, 0.2, 5);
        let targets = all_vertices(&g);
        let info = degeneracy_ordering(&g, &targets);
        let pos: std::collections::HashMap<VertexId, usize> =
            info.order.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        for (i, &v) in info.order.iter().enumerate() {
            let later = g.neighbors(v).iter().filter(|&&y| pos[&y] > i).count();
            assert!(
                later <= info.degeneracy,
                "vertex {v} has {later} later neighbors > κ = {}",
                info.degeneracy
            );
        }
    }

    #[test]
    fn degeneracy_on_subset_only() {
        // Kite: triangle {0,1,2} plus pendant 3; restrict to {0, 3}.
        let g = Graph::from_edges(
            4,
            [Edge::new(0, 1), Edge::new(1, 2), Edge::new(0, 2), Edge::new(2, 3)],
        );
        let info = degeneracy_ordering(&g, &[0, 3]);
        assert_eq!(info.degeneracy, 0); // 0 and 3 are not adjacent
        assert_eq!(info.order.len(), 2);
    }

    #[test]
    fn coloring_uses_kappa_plus_one() {
        let g = generators::complete_bipartite(8, 8); // κ = 8, but χ = 2
        let mut c = Coloring::empty(16);
        let span = degeneracy_coloring(&g, &mut c, &all_vertices(&g), 0);
        assert!(c.is_proper_total(&g));
        assert!(span <= 9);
    }

    #[test]
    fn coloring_with_offset_is_fresh() {
        let g = generators::cycle(5);
        let mut c = Coloring::empty(5);
        let span = degeneracy_coloring(&g, &mut c, &all_vertices(&g), 50);
        assert!(c.is_proper_total(&g));
        assert!(span <= 3); // odd cycle: κ+1 = 3
        assert!(c.assignments().all(|(_, col)| col >= 50));
    }

    #[test]
    fn planar_like_sparse_graph_low_degeneracy() {
        // A 2-degenerate "fan": path + one apex connected to all.
        let mut g = Graph::empty(10);
        for i in 0..8u32 {
            g.add_edge(Edge::new(i, i + 1));
        }
        for i in 0..9u32 {
            g.add_edge(Edge::new(i, 9));
        }
        let info = degeneracy_ordering(&g, &all_vertices(&g));
        assert_eq!(info.degeneracy, 2);
        let mut c = Coloring::empty(10);
        let span = degeneracy_coloring(&g, &mut c, &all_vertices(&g), 0);
        assert!(span <= 3);
        assert!(c.is_proper_total(&g));
    }

    #[test]
    fn random_graph_degeneracy_at_most_max_degree() {
        for seed in 0..5u64 {
            let g = generators::gnp_with_max_degree(50, 12, 0.25, seed);
            let info = degeneracy_ordering(&g, &all_vertices(&g));
            assert!(info.degeneracy <= g.max_degree());
            let mut c = Coloring::empty(50);
            degeneracy_coloring(&g, &mut c, &all_vertices(&g), 0);
            assert!(c.is_proper_total(&g));
        }
    }
}
