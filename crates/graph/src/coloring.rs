//! Partial and total vertex colorings.
//!
//! The paper (§2, "Colorings") defines a *partial coloring* as a pair
//! `(U, χ)` with `χ(x) = ⊥ ⇔ x ∈ U`; this module represents `χ` as
//! `Vec<Option<Color>>` so `U` is implicit. Properness and list-compliance
//! checks are the ground truth every test and experiment validates against.

use crate::edge::VertexId;
use crate::graph::Graph;

/// A color. The paper's palettes are `[∆+1]`, `[∆²]`, `[∆³]`, …; `u64`
/// comfortably covers products like `(∆+1)·∆²`.
pub type Color = u64;

/// A (possibly partial) coloring of vertices `{0, …, n−1}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coloring {
    colors: Vec<Option<Color>>,
}

impl Coloring {
    /// The all-uncolored coloring on `n` vertices.
    pub fn empty(n: usize) -> Self {
        Self { colors: vec![None; n] }
    }

    /// Builds from explicit assignments.
    pub fn from_vec(colors: Vec<Option<Color>>) -> Self {
        Self { colors }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.colors.len()
    }

    /// The color of `x`, or `None` if uncolored.
    #[inline]
    pub fn get(&self, x: VertexId) -> Option<Color> {
        self.colors[x as usize]
    }

    /// Assigns color `c` to `x` (overwriting any previous assignment).
    #[inline]
    pub fn set(&mut self, x: VertexId, c: Color) {
        self.colors[x as usize] = Some(c);
    }

    /// Removes the color of `x`.
    #[inline]
    pub fn unset(&mut self, x: VertexId) {
        self.colors[x as usize] = None;
    }

    /// Uncolors every vertex, keeping the allocation — the pooled-arena
    /// counterpart of building a fresh [`Coloring::empty`].
    #[inline]
    pub fn reset(&mut self) {
        self.colors.fill(None);
    }

    /// Whether `x` is colored.
    #[inline]
    pub fn is_colored(&self, x: VertexId) -> bool {
        self.colors[x as usize].is_some()
    }

    /// The uncolored set `U`.
    pub fn uncolored(&self) -> Vec<VertexId> {
        self.colors
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_none())
            .map(|(i, _)| i as VertexId)
            .collect()
    }

    /// Number of uncolored vertices `|U|`.
    pub fn num_uncolored(&self) -> usize {
        self.colors.iter().filter(|c| c.is_none()).count()
    }

    /// Whether every vertex is colored.
    pub fn is_total(&self) -> bool {
        self.colors.iter().all(Option::is_some)
    }

    /// Number of **distinct** colors used.
    pub fn num_distinct_colors(&self) -> usize {
        let mut used: Vec<Color> = self.colors.iter().flatten().copied().collect();
        used.sort_unstable();
        used.dedup();
        used.len()
    }

    /// The largest color value used plus one (palette-size upper bound), or
    /// 0 if nothing is colored.
    pub fn palette_span(&self) -> Color {
        self.colors.iter().flatten().copied().max().map_or(0, |c| c + 1)
    }

    /// Properness on colored vertices: no edge has two equal-colored,
    /// colored endpoints (the paper's definition of a proper *partial*
    /// coloring).
    pub fn is_proper_partial(&self, g: &Graph) -> bool {
        self.monochromatic_edge(g).is_none()
    }

    /// Properness as a *total* coloring: total and proper.
    pub fn is_proper_total(&self, g: &Graph) -> bool {
        self.is_total() && self.is_proper_partial(g)
    }

    /// Finds a monochromatic edge if one exists (diagnostic for tests).
    pub fn monochromatic_edge(&self, g: &Graph) -> Option<crate::edge::Edge> {
        g.edges().find(|e| {
            matches!(
                (self.get(e.u()), self.get(e.v())),
                (Some(a), Some(b)) if a == b
            )
        })
    }

    /// Checks list-compliance: every colored vertex's color belongs to its
    /// list. `lists[x]` is `L_x`.
    pub fn respects_lists(&self, lists: &[Vec<Color>]) -> bool {
        self.colors.iter().enumerate().all(|(x, c)| match c {
            None => true,
            Some(c) => lists[x].contains(c),
        })
    }

    /// Extends `self` by the assignments of `other` (which must not clash
    /// with existing assignments on any vertex).
    ///
    /// # Panics
    /// Panics if a vertex is colored in both (conflicting commits indicate
    /// an algorithm bug — the robust algorithms color disjoint blocks).
    pub fn extend_disjoint(&mut self, other: &Coloring) {
        assert_eq!(self.n(), other.n());
        for x in 0..self.n() {
            if let Some(c) = other.colors[x] {
                assert!(self.colors[x].is_none(), "vertex {x} colored twice (extend_disjoint)");
                self.colors[x] = Some(c);
            }
        }
    }

    /// Iterator over `(vertex, color)` pairs for colored vertices.
    pub fn assignments(&self) -> impl Iterator<Item = (VertexId, Color)> + '_ {
        self.colors.iter().enumerate().filter_map(|(x, c)| c.map(|c| (x as VertexId, c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::Edge;

    fn path3() -> Graph {
        Graph::from_edges(3, [Edge::new(0, 1), Edge::new(1, 2)])
    }

    #[test]
    fn reset_equals_fresh_empty() {
        let mut c = Coloring::empty(4);
        c.set(0, 3);
        c.set(2, 1);
        c.reset();
        assert_eq!(c, Coloring::empty(4));
    }

    #[test]
    fn empty_is_trivially_proper_partial() {
        let g = path3();
        let c = Coloring::empty(3);
        assert!(c.is_proper_partial(&g));
        assert!(!c.is_proper_total(&g));
        assert_eq!(c.num_uncolored(), 3);
        assert_eq!(c.uncolored(), vec![0, 1, 2]);
    }

    #[test]
    fn set_get_unset() {
        let mut c = Coloring::empty(4);
        c.set(2, 7);
        assert_eq!(c.get(2), Some(7));
        assert!(c.is_colored(2));
        c.unset(2);
        assert_eq!(c.get(2), None);
    }

    #[test]
    fn properness_detection() {
        let g = path3();
        let mut c = Coloring::empty(3);
        c.set(0, 1);
        c.set(1, 1);
        assert!(!c.is_proper_partial(&g));
        assert_eq!(c.monochromatic_edge(&g), Some(Edge::new(0, 1)));
        c.set(1, 2);
        assert!(c.is_proper_partial(&g));
        c.set(2, 1); // 0 and 2 are not adjacent
        assert!(c.is_proper_total(&g));
    }

    #[test]
    fn distinct_colors_and_span() {
        let mut c = Coloring::empty(5);
        c.set(0, 3);
        c.set(1, 3);
        c.set(2, 9);
        assert_eq!(c.num_distinct_colors(), 2);
        assert_eq!(c.palette_span(), 10);
        assert_eq!(Coloring::empty(2).palette_span(), 0);
    }

    #[test]
    fn list_compliance() {
        let mut c = Coloring::empty(2);
        let lists = vec![vec![1, 2], vec![3]];
        c.set(0, 2);
        assert!(c.respects_lists(&lists));
        c.set(1, 4);
        assert!(!c.respects_lists(&lists));
    }

    #[test]
    fn extend_disjoint_merges() {
        let mut a = Coloring::empty(3);
        a.set(0, 1);
        let mut b = Coloring::empty(3);
        b.set(2, 5);
        a.extend_disjoint(&b);
        assert_eq!(a.get(0), Some(1));
        assert_eq!(a.get(2), Some(5));
        assert_eq!(a.get(1), None);
    }

    #[test]
    #[should_panic(expected = "colored twice")]
    fn extend_disjoint_rejects_overlap() {
        let mut a = Coloring::empty(2);
        a.set(0, 1);
        let mut b = Coloring::empty(2);
        b.set(0, 2);
        a.extend_disjoint(&b);
    }

    #[test]
    fn assignments_iterator() {
        let mut c = Coloring::empty(4);
        c.set(1, 10);
        c.set(3, 20);
        let pairs: Vec<_> = c.assignments().collect();
        assert_eq!(pairs, vec![(1, 10), (3, 20)]);
    }
}
