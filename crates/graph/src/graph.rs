//! Adjacency-list graph representation.

use crate::edge::{Edge, VertexId};

/// An undirected simple graph on vertex set `{0, …, n−1}`.
///
/// Stored as per-vertex adjacency lists. Duplicate edge insertions are
/// ignored (the streaming algorithms may legitimately present the same
/// edge twice across passes; graph construction dedups).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    adj: Vec<Vec<VertexId>>,
    m: usize,
}

impl Graph {
    /// Creates an empty graph with `n` vertices and no edges.
    pub fn empty(n: usize) -> Self {
        Self { adj: vec![Vec::new(); n], m: 0 }
    }

    /// Builds a graph from an edge list, deduplicating.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = Edge>) -> Self {
        let mut g = Self::empty(n);
        for e in edges {
            g.add_edge(e);
        }
        g
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Adds an edge if not already present. Returns whether it was new.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    pub fn add_edge(&mut self, e: Edge) -> bool {
        let (u, v) = e.endpoints();
        assert!((v as usize) < self.n(), "edge {e} out of range for n = {}", self.n());
        if self.adj[u as usize].contains(&v) {
            return false;
        }
        self.adj[u as usize].push(v);
        self.adj[v as usize].push(u);
        self.m += 1;
        true
    }

    /// Removes an edge if present. Returns whether it was present.
    ///
    /// Remaining neighbors keep their relative adjacency order, so a
    /// graph built by sorted insertion stays canonically ordered across
    /// turnstile churn (the dynamic suites compare such graphs byte for
    /// byte).
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    pub fn remove_edge(&mut self, e: Edge) -> bool {
        let (u, v) = e.endpoints();
        assert!((v as usize) < self.n(), "edge {e} out of range for n = {}", self.n());
        let Some(i) = self.adj[u as usize].iter().position(|&x| x == v) else {
            return false;
        };
        self.adj[u as usize].remove(i);
        let j = self.adj[v as usize]
            .iter()
            .position(|&x| x == u)
            .expect("adjacency lists out of sync");
        self.adj[v as usize].remove(j);
        self.m -= 1;
        true
    }

    /// Removes every edge incident to the vertices in `touched`, keeping
    /// the adjacency-list allocations for reuse.
    ///
    /// This is the pooled-arena clear: when the caller has tracked the set
    /// of vertices it ever added edges to, clearing costs
    /// `O(|touched|)` instead of `O(n)` and later re-insertion pushes into
    /// already-grown `Vec`s instead of re-allocating per list.
    ///
    /// # Contract
    /// `touched` must cover **both** endpoints of every present edge
    /// (guaranteed when it is exactly the set of endpoints ever inserted
    /// since the last clear); otherwise dangling half-edges would remain.
    /// Checked exhaustively under `debug_assertions`.
    pub fn clear_incident(&mut self, touched: &[VertexId]) {
        for &v in touched {
            self.adj[v as usize].clear();
        }
        self.m = 0;
        debug_assert!(
            self.adj.iter().all(Vec::is_empty),
            "clear_incident: touched set did not cover every endpoint"
        );
    }

    /// Whether the edge `{u, v}` is present.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        u != v && self.adj[u as usize].contains(&v)
    }

    /// Neighbors of `x`.
    #[inline]
    pub fn neighbors(&self, x: VertexId) -> &[VertexId] {
        &self.adj[x as usize]
    }

    /// Degree of `x`.
    #[inline]
    pub fn degree(&self, x: VertexId) -> usize {
        self.adj[x as usize].len()
    }

    /// Maximum degree `∆` (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Iterates every edge once, in normalized form.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, nbrs)| {
            nbrs.iter()
                .filter(move |&&v| (u as VertexId) < v)
                .map(move |&v| Edge::new(u as VertexId, v))
        })
    }

    /// All vertex ids `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        0..self.n() as VertexId
    }

    /// The subgraph induced by `vertex_set`, **keeping original vertex
    /// ids** (vertices outside the set become isolated).
    ///
    /// Algorithm 2 recolors induced blocks at query time; keeping ids
    /// stable avoids an index-translation layer in every caller.
    pub fn induced(&self, vertex_set: &[VertexId]) -> Graph {
        let mut in_set = vec![false; self.n()];
        for &v in vertex_set {
            in_set[v as usize] = true;
        }
        let mut g = Graph::empty(self.n());
        for e in self.edges() {
            if in_set[e.u() as usize] && in_set[e.v() as usize] {
                g.add_edge(e);
            }
        }
        g
    }

    /// Builds a graph (again with original ids) from an edge set restricted
    /// to the vertices in `vertex_set`.
    ///
    /// This is the "subgraph induced by vertex set `X` on edge set `E'`"
    /// operation that Algorithm 2's query routine performs with
    /// `E' = A_{curr−1} ∪ B` or `C_ℓ ∪ B`.
    pub fn from_edge_subset(
        n: usize,
        edges: impl IntoIterator<Item = Edge>,
        vertex_set: &[VertexId],
    ) -> Graph {
        let mut in_set = vec![false; n];
        for &v in vertex_set {
            in_set[v as usize] = true;
        }
        let mut g = Graph::empty(n);
        for e in edges {
            if in_set[e.u() as usize] && in_set[e.v() as usize] {
                g.add_edge(e);
            }
        }
        g
    }

    /// Sum of `1/(deg(x)+1)` over all vertices — the Caro–Wei bound that
    /// [`crate::turan_independent_set`] meets constructively.
    pub fn caro_wei_bound(&self) -> f64 {
        self.adj.iter().map(|nbrs| 1.0 / (nbrs.len() as f64 + 1.0)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, [Edge::new(0, 1), Edge::new(1, 2), Edge::new(0, 2)])
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn clear_incident_resets_to_empty_and_rebuilds_identically() {
        let mut g = triangle();
        g.clear_incident(&[0, 1, 2]);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g, Graph::empty(3), "pooled clear must be observationally empty");
        // Re-adding in the same order reproduces a fresh build exactly,
        // adjacency order included.
        g.add_edge(Edge::new(0, 1));
        g.add_edge(Edge::new(1, 2));
        g.add_edge(Edge::new(0, 2));
        assert_eq!(g, triangle());
    }

    #[test]
    fn clear_incident_tolerates_untouched_vertices_in_list() {
        let mut g = Graph::empty(6);
        g.add_edge(Edge::new(4, 5));
        g.clear_incident(&[0, 4, 5]); // 0 was never touched: harmless
        assert_eq!(g, Graph::empty(6));
    }

    #[test]
    fn triangle_basics() {
        let g = triangle();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert_eq!(g.max_degree(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 0));
        let mut es: Vec<_> = g.edges().collect();
        es.sort();
        assert_eq!(es, vec![Edge::new(0, 1), Edge::new(0, 2), Edge::new(1, 2)]);
    }

    #[test]
    fn duplicate_edges_ignored() {
        let mut g = Graph::empty(4);
        assert!(g.add_edge(Edge::new(0, 1)));
        assert!(!g.add_edge(Edge::new(1, 0)));
        assert_eq!(g.m(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge() {
        Graph::empty(3).add_edge(Edge::new(0, 3));
    }

    #[test]
    fn induced_subgraph_keeps_ids() {
        let g = Graph::from_edges(
            5,
            [Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 3), Edge::new(3, 4), Edge::new(0, 4)],
        );
        let h = g.induced(&[0, 1, 2]);
        assert_eq!(h.n(), 5);
        assert_eq!(h.m(), 2); // (0,1) and (1,2); (0,4),(2,3),(3,4) cross the cut
        assert!(h.has_edge(0, 1));
        assert!(h.has_edge(1, 2));
        assert!(!h.has_edge(0, 4));
        assert_eq!(h.degree(4), 0);
    }

    #[test]
    fn from_edge_subset_filters_both_sides() {
        let edges = [Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 3)];
        let h = Graph::from_edge_subset(4, edges, &[1, 2]);
        assert_eq!(h.m(), 1);
        assert!(h.has_edge(1, 2));
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = triangle();
        for v in 0..3 {
            assert_eq!(g.degree(v), 2);
            assert_eq!(g.neighbors(v).len(), 2);
            assert!(!g.neighbors(v).contains(&v));
        }
    }

    #[test]
    fn caro_wei_on_triangle() {
        let g = triangle();
        let expect = 3.0 / 3.0; // 3 vertices × 1/(2+1)
        assert!((g.caro_wei_bound() - expect).abs() < 1e-12);
    }

    #[test]
    fn remove_edge_preserves_adjacency_order() {
        let mut g = Graph::from_edges(
            5,
            [Edge::new(0, 1), Edge::new(0, 2), Edge::new(0, 3), Edge::new(0, 4)],
        );
        assert!(g.remove_edge(Edge::new(0, 2)));
        assert!(!g.remove_edge(Edge::new(0, 2)), "already gone");
        assert_eq!(g.m(), 3);
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.neighbors(0), &[1, 3, 4], "surviving order intact");
        // Re-adding appends at the end, matching fresh sorted insertion
        // of the same live set only when churn is tail-only — callers
        // needing canonical order rebuild via from_edges.
        assert!(g.add_edge(Edge::new(0, 2)));
        assert_eq!(g.m(), 4);
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g =
            Graph::from_edges(6, (0..6u32).flat_map(|u| (u + 1..6).map(move |v| Edge::new(u, v))));
        assert_eq!(g.m(), 15);
        assert_eq!(g.edges().count(), 15);
        let set: std::collections::HashSet<_> = g.edges().collect();
        assert_eq!(set.len(), 15);
    }
}
