//! Edge and vertex-id primitives.

/// Vertex identifier. Graphs with up to `2^32 − 1` vertices are supported;
/// `u32` halves the memory traffic of adjacency structures versus `usize`
/// (the perf-book "smaller integers" idiom).
pub type VertexId = u32;

/// An undirected edge, stored in normalized form (`u < v`).
///
/// Normalization makes `Edge` values canonical: equality, hashing, and
/// dedup all work structurally, and every algorithm in the workspace can
/// assume `u() < v()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge {
    u: VertexId,
    v: VertexId,
}

impl Edge {
    /// Creates a normalized edge between two **distinct** endpoints.
    ///
    /// # Panics
    /// Panics on a self-loop — proper colorings cannot exist for graphs
    /// with self-loops, so they are rejected at construction.
    #[inline]
    pub fn new(a: VertexId, b: VertexId) -> Self {
        assert!(a != b, "self-loop ({a}, {a}) is not a valid edge");
        if a < b {
            Self { u: a, v: b }
        } else {
            Self { u: b, v: a }
        }
    }

    /// The smaller endpoint.
    #[inline]
    pub fn u(&self) -> VertexId {
        self.u
    }

    /// The larger endpoint.
    #[inline]
    pub fn v(&self) -> VertexId {
        self.v
    }

    /// Both endpoints as a tuple `(u, v)` with `u < v`.
    #[inline]
    pub fn endpoints(&self) -> (VertexId, VertexId) {
        (self.u, self.v)
    }

    /// Whether `x` is an endpoint.
    #[inline]
    pub fn touches(&self, x: VertexId) -> bool {
        self.u == x || self.v == x
    }

    /// Given one endpoint, returns the other.
    ///
    /// # Panics
    /// Panics if `x` is not an endpoint.
    #[inline]
    pub fn other(&self, x: VertexId) -> VertexId {
        if x == self.u {
            self.v
        } else if x == self.v {
            self.u
        } else {
            panic!("vertex {x} is not an endpoint of ({}, {})", self.u, self.v)
        }
    }
}

impl From<(VertexId, VertexId)> for Edge {
    #[inline]
    fn from((a, b): (VertexId, VertexId)) -> Self {
        Edge::new(a, b)
    }
}

impl std::fmt::Display for Edge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.u, self.v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(Edge::new(5, 2), Edge::new(2, 5));
        assert_eq!(Edge::new(0, 1).endpoints(), (0, 1));
        assert_eq!(Edge::new(9, 3).endpoints(), (3, 9));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        Edge::new(4, 4);
    }

    #[test]
    fn touches_and_other() {
        let e = Edge::new(7, 3);
        assert!(e.touches(3));
        assert!(e.touches(7));
        assert!(!e.touches(5));
        assert_eq!(e.other(3), 7);
        assert_eq!(e.other(7), 3);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_rejects_non_endpoint() {
        Edge::new(1, 2).other(3);
    }

    #[test]
    fn tuple_conversion_and_ordering() {
        let e: Edge = (9u32, 1u32).into();
        assert_eq!(e.endpoints(), (1, 9));
        let mut edges = vec![Edge::new(2, 3), Edge::new(0, 5), Edge::new(2, 1)];
        edges.sort();
        assert_eq!(edges, vec![Edge::new(0, 5), Edge::new(1, 2), Edge::new(2, 3)]);
    }

    #[test]
    fn display() {
        assert_eq!(Edge::new(4, 1).to_string(), "(1, 4)");
    }
}
