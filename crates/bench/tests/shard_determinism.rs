//! The shard determinism law, end to end with real worker processes.
//!
//! A sharded run — coordinator spawning `shard_worker` binaries — must
//! merge to output *byte-identical* to the single-process
//! `run_in_process` reference, for every worker count (1, 2, 7), every
//! worker-internal thread count, and every coordinator-side `Runner`
//! thread count, for both scenario grids and attack-trial sweeps.
//! `CARGO_BIN_EXE_shard_worker` names the binary cargo built for this
//! test, so this exercises the same process boundary CI's `shard-smoke`
//! job does.

use sc_engine::shard::{run_in_process, Coordinator, ShardJob, ShardOutcome};
use sc_engine::{AdversarySpec, AttackScenario, ColorerSpec, Runner, Scenario, SourceSpec};
use sc_graph::generators;
use sc_stream::{QuerySchedule, StreamOrder};

const WORKER: &str = env!("CARGO_BIN_EXE_shard_worker");

/// A small mixed grid: streaming + multi-pass + offline specs, a stored
/// source (exercising wire canonicalization of adjacency order), varied
/// arrival orders and checkpoint schedules.
fn grid_job() -> ShardJob {
    let family = SourceSpec::exact_degree(60, 6, 3);
    let stored = SourceSpec::stored(generators::gnp_with_max_degree(50, 5, 0.4, 2));
    ShardJob::Grid(vec![
        Scenario::new(family.clone(), ColorerSpec::Robust { beta: None })
            .with_order(StreamOrder::Shuffled(1))
            .with_seed(11)
            .with_schedule(QuerySchedule::EveryEdges(13)),
        Scenario::new(stored.clone(), ColorerSpec::RandEfficient)
            .with_order(StreamOrder::Interleaved(4))
            .with_seed(12),
        Scenario::new(family.clone(), ColorerSpec::Bg18 { buckets: None }).with_seed(13),
        Scenario::new(stored.clone(), ColorerSpec::StoreAll)
            .with_seed(14)
            .with_schedule(QuerySchedule::AtPrefixes(vec![9, 30, 9])),
        Scenario::new(family.clone(), ColorerSpec::PaletteSparsification { lists: Some(6) })
            .with_order(StreamOrder::HubsLast)
            .with_seed(15),
        Scenario::new(stored.clone(), ColorerSpec::Bcg20 { epsilon: 0.5 })
            .with_order(StreamOrder::VertexContiguous)
            .with_seed(16),
        Scenario::new(family.clone(), ColorerSpec::Trivial).with_seed(17),
        Scenario::new(stored, ColorerSpec::OfflineGreedy).with_seed(18),
    ])
}

fn attack_job() -> ShardJob {
    ShardJob::Attack {
        scenario: AttackScenario::new(
            ColorerSpec::PaletteSparsification { lists: Some(3) },
            AdversarySpec::Monochromatic,
            50,
            12,
        )
        .with_rounds(300)
        .with_seed(70),
        trials: 9,
    }
}

fn sharded(job: &ShardJob, workers: usize, worker_threads: usize) -> String {
    let mut coordinator = Coordinator::new(workers, WORKER);
    coordinator.worker_threads = worker_threads;
    coordinator.run(job).expect("sharded run").encode()
}

#[test]
fn grid_shards_merge_byte_identically() {
    let job = grid_job();
    let reference = run_in_process(&job, 1).unwrap().encode();
    assert_eq!(
        run_in_process(&job, 4).unwrap().encode(),
        reference,
        "in-process thread count leaked into the output"
    );
    for workers in [1usize, 2, 7] {
        assert_eq!(
            sharded(&job, workers, 1),
            reference,
            "{workers} worker(s) diverged from the single-process run"
        );
    }
    assert_eq!(sharded(&job, 2, 3), reference, "worker-internal threads leaked into the output");
}

#[test]
fn grids_smaller_than_the_worker_count_still_merge_byte_identically() {
    // 2 scenarios, 7 requested workers: the coordinator clamps to the
    // job size and spawns 2 real processes — a degenerate but correct
    // merge, identical to the single-process reference.
    let ShardJob::Grid(scenarios) = grid_job() else { unreachable!("grid_job is a grid") };
    let tiny = ShardJob::Grid(scenarios[..2].to_vec());
    let reference = run_in_process(&tiny, 1).unwrap().encode();
    assert_eq!(sharded(&tiny, 7, 1), reference, "over-provisioned workers diverged");
    // The empty grid is the fully degenerate case: nothing to run,
    // canonical empty output, no worker mix-ups.
    let empty = ShardJob::Grid(Vec::new());
    assert_eq!(sharded(&empty, 7, 1), run_in_process(&empty, 1).unwrap().encode());
}

#[test]
fn attack_trials_merge_byte_identically() {
    let job = attack_job();
    let reference = run_in_process(&job, 1).unwrap().encode();
    assert_eq!(run_in_process(&job, 4).unwrap().encode(), reference);
    for workers in [1usize, 2, 7] {
        assert_eq!(
            sharded(&job, workers, 1),
            reference,
            "{workers} worker(s) diverged from the single-process sweep"
        );
    }

    // The merged summary is exactly what Runner::run_attack_trials
    // reports in-process (attack jobs canonicalize losslessly), and the
    // fragile victim really breaks — the sweep has signal to disagree on.
    let ShardJob::Attack { scenario, trials } = &job else { unreachable!() };
    let direct = Runner::with_threads(2).run_attack_trials(scenario, *trials);
    assert!(direct.broken > 0, "tiny lists must break under the attack");
    match ShardOutcome::decode(&reference).unwrap() {
        ShardOutcome::Attack(summary) => assert_eq!(summary, direct),
        other => panic!("expected an attack outcome, got {other:?}"),
    }
}

#[test]
fn empty_and_undersized_jobs_shard_cleanly() {
    let empty = ShardJob::Grid(Vec::new());
    let reference = run_in_process(&empty, 1).unwrap().encode();
    assert_eq!(reference, "[]\n");
    assert_eq!(sharded(&empty, 3, 1), reference);

    // More workers than items: the clamp plus empty ranges both work.
    let ShardJob::Grid(scenarios) = grid_job() else { unreachable!() };
    let tiny = ShardJob::Grid(scenarios[..2].to_vec());
    assert_eq!(sharded(&tiny, 7, 1), run_in_process(&tiny, 1).unwrap().encode());
}

#[test]
fn worker_rejects_malformed_invocations() {
    let run = |args: &[&str]| {
        std::process::Command::new(WORKER).args(args).output().expect("spawn worker")
    };
    let out = run(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--spec"));

    let out = run(&["--spec", "x.json", "--shard", "5", "--of", "2", "--out", "y.json"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("out of range"));

    let out = run(&["--spec", "/nonexistent.json", "--shard", "0", "--of", "1", "--out", "y"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read spec"));
}
