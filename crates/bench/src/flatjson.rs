//! A minimal reader for the flat JSON this workspace's benches emit.
//!
//! The container vendors no serde (see `crates/compat/README.md`), and
//! the perf-trajectory files (`BENCH_engine.json`, `BENCH_query.json`,
//! `ci/bench_baselines.json`) are all the same tiny shape: an array of
//! flat objects whose values are strings or numbers. This module parses
//! exactly that shape — nested containers are rejected loudly — which is
//! all the `bench_gate` regression gate needs. Drop-in replaceable by
//! serde_json when network exists.

use std::collections::BTreeMap;

/// A scalar field of a flat object.
#[derive(Debug, Clone, PartialEq)]
pub enum Scalar {
    /// A JSON string (no escape handling beyond `\"` and `\\`).
    Str(String),
    /// Any JSON number, kept as `f64`.
    Num(f64),
}

impl Scalar {
    /// The string value, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Scalar::Str(s) => Some(s),
            Scalar::Num(_) => None,
        }
    }

    /// The numeric value, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Scalar::Num(x) => Some(*x),
            Scalar::Str(_) => None,
        }
    }
}

/// One flat object: field name → scalar value, order-insensitive.
pub type FlatObject = BTreeMap<String, Scalar>;

/// Parses `[ {..}, {..}, … ]` where every object is flat and every value
/// is a string or number.
///
/// # Errors
/// Returns a human-readable description of the first syntax problem —
/// the gate surfaces it verbatim, so messages name what was expected.
pub fn parse_array(text: &str) -> Result<Vec<FlatObject>, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    p.expect(b'[')?;
    let mut out = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b']') {
        return Ok(out);
    }
    loop {
        p.skip_ws();
        out.push(p.object()?);
        p.skip_ws();
        match p.next() {
            Some(b',') => continue,
            Some(b']') => break,
            other => return Err(format!("expected ',' or ']' after object, got {other:?}")),
        }
    }
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => {
                Err(format!("expected {:?} at byte {}, got {other:?}", want as char, self.pos))
            }
        }
    }

    fn object(&mut self) -> Result<FlatObject, String> {
        self.expect(b'{')?;
        let mut obj = FlatObject::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(obj);
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = match self.peek() {
                Some(b'"') => Scalar::Str(self.string()?),
                Some(b'{' | b'[') => {
                    return Err(format!("field {key:?}: nested containers are not flat JSON"))
                }
                _ => Scalar::Num(self.number()?),
            };
            obj.insert(key, value);
            self.skip_ws();
            match self.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return Err(format!("expected ',' or '}}' in object, got {other:?}")),
            }
        }
        Ok(obj)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.next() {
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.next() {
                    Some(c @ (b'"' | b'\\')) => s.push(c as char),
                    other => return Err(format!("unsupported escape {other:?}")),
                },
                Some(c) => s.push(c as char),
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<f64, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        text.parse::<f64>().map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_bench_engine_shape() {
        let text = r#"[
  {"algo":"alg2","n":3000,"delta":32,"m":46724,"per_edge_ms":120.5,"batched_ms":41.25,"chunk":256,"speedup":2.921},
  {"algo":"alg3","n":3000,"delta":32,"m":46724,"per_edge_ms":99.0,"batched_ms":52.0,"chunk":256,"speedup":1.903}
]
"#;
        let objs = parse_array(text).unwrap();
        assert_eq!(objs.len(), 2);
        assert_eq!(objs[0]["algo"].as_str(), Some("alg2"));
        assert_eq!(objs[0]["speedup"].as_f64(), Some(2.921));
        assert_eq!(objs[1]["n"].as_f64(), Some(3000.0));
        assert!(objs[0]["algo"].as_f64().is_none());
        assert!(objs[0]["speedup"].as_str().is_none());
    }

    #[test]
    fn empty_array_and_object() {
        assert_eq!(parse_array("[]").unwrap(), Vec::new());
        assert_eq!(parse_array(" [ { } ] ").unwrap(), vec![FlatObject::new()]);
    }

    #[test]
    fn negative_and_exponent_numbers() {
        let objs = parse_array(r#"[{"x":-1.5e-3}]"#).unwrap();
        assert_eq!(objs[0]["x"].as_f64(), Some(-0.0015));
    }

    #[test]
    fn rejects_nesting_and_garbage() {
        assert!(parse_array(r#"[{"x":{}}]"#).unwrap_err().contains("nested"));
        assert!(parse_array("{}").is_err());
        assert!(parse_array(r#"[{"x":1} {"y":2}]"#).is_err());
        assert!(parse_array(r#"[{"x":"unterminated]"#).is_err());
    }
}
