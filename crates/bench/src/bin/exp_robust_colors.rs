//! Experiment F3 — robust palette growth: colors vs ∆ for Algorithm 2
//! (`∆^{5/2}`), Algorithm 3 (`∆³`) and the CGS22 baseline (`∆³`), on both
//! oblivious dense streams and the adaptive monochromatic attack.
//!
//! What the theory predicts — and what we check — is that each palette is
//! bounded by its theorem's envelope (`∆^{5/2}` for Algorithm 2, `∆³` for
//! Algorithm 3/CGS22) and that all three survive an adaptive adversary.
//! On *random oblivious* streams the realized palettes are conflict-driven
//! and sit far below the worst-case envelopes for every algorithm (their
//! measured log-log slopes are all ≈ 1.2–1.4), so the measured curves
//! verify the bounds as upper envelopes rather than as tight shapes: the
//! ∆^{5/2}-vs-∆³ separation is a worst-case guarantee, not a random-case
//! one. The attack column reports the larger palettes an adaptive
//! adversary forces.
//!
//! The oblivious sweeps and the adaptive games are all declarative
//! scenarios executed by `sc-engine`'s [`Runner`] — the per-∆ grid runs
//! in parallel across workers.

use sc_bench::{loglog_slope, Table};
use sc_engine::{AdversarySpec, AttackScenario, ColorerSpec, Runner, Scenario, SourceSpec};
use sc_graph::generators;
use sc_stream::StreamOrder;

fn main() {
    let n = 3000usize;
    println!("# F3: robust colors vs ∆ (n = {n})");
    let runner = Runner::default();
    let mut table = Table::new(&[
        "∆",
        "alg2 colors",
        "alg3 colors",
        "cgs22 colors",
        "∆^2.5",
        "∆^3",
        "attacked colors (n=400)",
        "attack ok?",
    ]);
    let mut pts2 = Vec::new();
    let mut pts3 = Vec::new();
    let mut ptsc = Vec::new();

    let deltas = sc_bench::delta_sweep(8, 64);

    // Oblivious sweeps: one scenario per (∆, algorithm), run in parallel.
    let grid: Vec<Scenario> = deltas
        .iter()
        .flat_map(|&delta| {
            // Materialize once per ∆; the three scenarios share the Arc.
            let source = SourceSpec::stored(generators::random_with_exact_max_degree(
                n,
                delta,
                9 + delta as u64,
            ));
            [
                (ColorerSpec::Robust { beta: None }, 21u64),
                (ColorerSpec::RandEfficient, 22),
                (ColorerSpec::Cgs22, 23),
            ]
            .into_iter()
            .map(move |(spec, seed)| {
                Scenario::new(source.clone(), spec)
                    .with_order(StreamOrder::Shuffled(4))
                    .with_seed(seed)
            })
        })
        .collect();
    let outcomes = runner.run_all(&grid);

    for (i, &delta) in deltas.iter().enumerate() {
        let (o2, o3, oc) = (&outcomes[3 * i], &outcomes[3 * i + 1], &outcomes[3 * i + 2]);
        for o in [o2, o3, oc] {
            assert!(o.proper, "{} improper at ∆ = {delta}", o.algo);
        }
        let (k2, k3, kc) = (o2.colors, o3.colors, oc.colors);

        // Adaptive games on a smaller instance (games query per edge):
        // robustness check + the palette an adaptive adversary forces.
        let an = 400.min(n);
        let r2 = runner.run_attack(
            &AttackScenario::new(
                ColorerSpec::Robust { beta: None },
                AdversarySpec::Monochromatic,
                an,
                delta,
            )
            .with_rounds(4 * an)
            .with_seed(31),
        );
        let r3 = runner.run_attack(
            &AttackScenario::new(
                ColorerSpec::RandEfficient,
                AdversarySpec::Monochromatic,
                an,
                delta,
            )
            .with_rounds(4 * an)
            .with_seed(33),
        );
        let attack_ok = r2.survived() && r3.survived();
        let attacked_colors = r2.max_colors.max(r3.max_colors);

        pts2.push((delta as f64, k2 as f64));
        pts3.push((delta as f64, k3 as f64));
        ptsc.push((delta as f64, kc as f64));
        // The theorem envelopes must dominate the measurements.
        assert!((k2 as f64) <= 4.0 * (delta as f64).powf(2.5), "alg2 exceeded its envelope");
        assert!(o3.coloring.palette_span() <= (delta as u64 + 1) * (delta as u64).pow(2).max(1));
        table.row(&[
            &delta,
            &k2,
            &k3,
            &kc,
            &((delta as f64).powf(2.5).round() as u64),
            &(delta as u64).pow(3),
            &attacked_colors,
            &attack_ok,
        ]);
    }
    table.print("F3: palette sizes");

    println!("\nlog-log slopes of the measured (oblivious-stream) curves:");
    println!("  Algorithm 2 (envelope slope 2.5): {:.2}", loglog_slope(&pts2));
    println!("  Algorithm 3 (envelope slope 3.0): {:.2}", loglog_slope(&pts3));
    println!("  CGS22       (envelope slope 3.0): {:.2}", loglog_slope(&ptsc));
    println!(
        "\nShape check: every measured palette sits below its theorem's envelope with \
         large headroom (the envelopes are worst-case, the streams random), all three \
         algorithms survive the adaptive attack, and the adversary forces notably larger \
         palettes than oblivious streams do — the robustness price the paper quantifies."
    );
}
