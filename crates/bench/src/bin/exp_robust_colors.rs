//! Experiment F3 — robust palette growth: colors vs ∆ for Algorithm 2
//! (`∆^{5/2}`), Algorithm 3 (`∆³`) and the CGS22 baseline (`∆³`), on both
//! oblivious dense streams and the adaptive monochromatic attack.
//!
//! What the theory predicts — and what we check — is that each palette is
//! bounded by its theorem's envelope (`∆^{5/2}` for Algorithm 2, `∆³` for
//! Algorithm 3/CGS22) and that all three survive an adaptive adversary.
//! On *random oblivious* streams the realized palettes are conflict-driven
//! and sit far below the worst-case envelopes for every algorithm (their
//! measured log-log slopes are all ≈ 1.2–1.4), so the measured curves
//! verify the bounds as upper envelopes rather than as tight shapes: the
//! ∆^{5/2}-vs-∆³ separation is a worst-case guarantee, not a random-case
//! one. The attack column reports the larger palettes an adaptive
//! adversary forces.

use sc_adversary::{run_game, MonochromaticAttacker};
use sc_bench::{loglog_slope, Table};
use sc_graph::generators;
use sc_stream::run_oblivious;
use streamcolor::{Cgs22Colorer, RandEfficientColorer, RobustColorer};

fn main() {
    let n = 3000usize;
    println!("# F3: robust colors vs ∆ (n = {n})");
    let mut table = Table::new(&[
        "∆", "alg2 colors", "alg3 colors", "cgs22 colors", "∆^2.5", "∆^3",
        "attacked colors (n=400)", "attack ok?",
    ]);
    let mut pts2 = Vec::new();
    let mut pts3 = Vec::new();
    let mut ptsc = Vec::new();

    for delta in sc_bench::delta_sweep(8, 64) {
        let g = generators::random_with_exact_max_degree(n, delta, 9 + delta as u64);
        let edges = generators::shuffled_edges(&g, 4);

        let mut alg2 = RobustColorer::new(n, delta, 21);
        let c2 = run_oblivious(&mut alg2, edges.iter().copied());
        assert!(c2.is_proper_total(&g));
        let k2 = c2.num_distinct_colors();

        let mut alg3 = RandEfficientColorer::new(n, delta, 22);
        let c3 = run_oblivious(&mut alg3, edges.iter().copied());
        assert!(c3.is_proper_total(&g));
        let k3 = c3.num_distinct_colors();

        let mut cgs = Cgs22Colorer::new(n, delta, 23);
        let cc = run_oblivious(&mut cgs, edges.iter().copied());
        assert!(cc.is_proper_total(&g));
        let kc = cc.num_distinct_colors();

        // Adaptive games on a smaller instance (games query per edge):
        // robustness check + the palette an adaptive adversary forces.
        let an = 400.min(n);
        let mut adv2 = MonochromaticAttacker::new(an, delta, 31);
        let mut g2 = RobustColorer::new(an, delta, 32);
        let r2 = run_game(&mut g2, &mut adv2, an, 4 * an);
        let mut adv3 = MonochromaticAttacker::new(an, delta, 33);
        let mut g3 = RandEfficientColorer::new(an, delta, 34);
        let r3 = run_game(&mut g3, &mut adv3, an, 4 * an);
        let attack_ok = r2.survived() && r3.survived();
        let attacked_colors = r2.max_colors.max(r3.max_colors);

        pts2.push((delta as f64, k2 as f64));
        pts3.push((delta as f64, k3 as f64));
        ptsc.push((delta as f64, kc as f64));
        // The theorem envelopes must dominate the measurements.
        assert!((k2 as f64) <= 4.0 * (delta as f64).powf(2.5), "alg2 exceeded its envelope");
        assert!(c3.palette_span() <= (delta as u64 + 1) * (delta as u64).pow(2).max(1));
        table.row(&[
            &delta,
            &k2,
            &k3,
            &kc,
            &((delta as f64).powf(2.5).round() as u64),
            &(delta as u64).pow(3),
            &attacked_colors,
            &attack_ok,
        ]);
    }
    table.print("F3: palette sizes");

    println!("\nlog-log slopes of the measured (oblivious-stream) curves:");
    println!("  Algorithm 2 (envelope slope 2.5): {:.2}", loglog_slope(&pts2));
    println!("  Algorithm 3 (envelope slope 3.0): {:.2}", loglog_slope(&pts3));
    println!("  CGS22       (envelope slope 3.0): {:.2}", loglog_slope(&ptsc));
    println!(
        "\nShape check: every measured palette sits below its theorem's envelope with \
         large headroom (the envelopes are worst-case, the streams random), all three \
         algorithms survive the adaptive attack, and the adversary forces notably larger \
         palettes than oblivious streams do — the robustness price the paper quantifies."
    );
}
