//! Experiment F2 — space complexity of the deterministic algorithm:
//! peak bits grow like `O(n log² n)` in `n` (Theorem 1 / Lemma 3.9).

use sc_bench::{fmt_bits, Table};
use sc_graph::generators;
use sc_stream::StoredStream;
use streamcolor::{deterministic_coloring, DetConfig};

fn main() {
    let delta = 32usize;
    println!("# F2: deterministic space vs n (∆ = {delta})");
    let mut table = Table::new(&["n", "peak space", "n·log²n bits", "peak / (n·log²n)", "passes"]);
    let mut ratios = Vec::new();

    let mut n = 256usize;
    while n <= 8192 {
        let g = generators::random_with_exact_max_degree(n, delta, n as u64);
        let stream = StoredStream::from_edges(generators::shuffled_edges(&g, 3));
        let det = deterministic_coloring(&stream, n, delta, &DetConfig::default());
        assert!(det.coloring.is_proper_total(&g), "n = {n}");
        let log_n = (n as f64).log2();
        let budget = n as f64 * log_n * log_n;
        let ratio = det.peak_space_bits as f64 / budget;
        ratios.push(ratio);
        table.row(&[
            &n,
            &fmt_bits(det.peak_space_bits),
            &fmt_bits(budget as u64),
            &format!("{ratio:.2}"),
            &det.passes,
        ]);
        n *= 2;
    }
    table.print("F2: peak space vs n");

    let max = ratios.iter().cloned().fold(0.0, f64::max);
    println!(
        "\npeak / (n·log²n) stays ≤ {max:.2} across the sweep — the O(n log² n) bound \
         of Lemma 3.9 holds with a small constant."
    );
}
