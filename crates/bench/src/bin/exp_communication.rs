//! Experiment T3 — Corollary 3.11: the two-party communication protocol
//! for `(∆+1)`-coloring in `O(n log⁴ n)` bits and `O(log ∆ log log ∆)`
//! rounds.

use sc_bench::{fmt_bits, Table};
use sc_graph::generators;
use streamcolor::det::communication::{split_edges, two_party_coloring};
use streamcolor::DetConfig;

fn main() {
    println!("# T3: Corollary 3.11 — two-party (∆+1)-coloring protocol");
    let mut table =
        Table::new(&["n", "∆", "rounds", "bits exchanged", "n·log⁴n bits", "ratio", "proper?"]);
    for (n, delta) in [(512usize, 16usize), (1024, 16), (2048, 32)] {
        let g = generators::random_with_exact_max_degree(n, delta, 7);
        let (alice, bob) = split_edges(generators::shuffled_edges(&g, 2));
        let t = two_party_coloring(n, delta, &alice, &bob, &DetConfig::default());
        let ok = t.coloring.is_proper_total(&g) && t.coloring.palette_span() <= delta as u64 + 1;
        assert!(ok);
        let log_n = (n as f64).log2();
        let budget = n as f64 * log_n.powi(4);
        table.row(&[
            &n,
            &delta,
            &t.rounds,
            &fmt_bits(t.total_bits),
            &fmt_bits(budget as u64),
            &format!("{:.3}", t.total_bits as f64 / budget),
            &ok,
        ]);
    }
    table.print("T3: protocol transcripts");
    println!(
        "\nBoth quantities sit well inside Corollary 3.11's bounds; the interesting part \
         (per the paper) is the round count — polyloglog in ∆ rather than the Θ(n)-round \
         greedy simulation."
    );
}
