//! Experiment F9 — degeneracy-parameterized coloring on sparse graphs.
//!
//! The paper cites BCG20 twice: `(degeneracy+1)`-coloring is Algorithm 2's
//! offline subroutine, and κ-based palettes motivate the degeneracy-vs-∆
//! gap on sparse graphs. This experiment quantifies that gap: on skewed
//! (preferential-attachment) workloads, κ ≪ ∆, so the BCG20-style
//! `κ(1+ε)`-colorer uses a small fraction of ∆ colors while ∆-based
//! single-pass algorithms cannot.

use sc_bench::Table;
use sc_graph::{brooks_bound, degeneracy_ordering, generators};
use sc_stream::run_oblivious;
use streamcolor::{Bcg20Colorer, Bg18Colorer, RobustColorer};

fn main() {
    let n = 2000usize;
    println!("# F9: degeneracy vs ∆-based palettes (n = {n}, preferential attachment)");
    let mut table = Table::new(&[
        "attach k",
        "∆",
        "κ",
        "Brooks ∆-bound",
        "bcg20 colors",
        "bg18 colors",
        "alg2 colors",
    ]);

    for attach in [2usize, 3, 5] {
        let cap = 40 * attach;
        let g = generators::preferential_attachment(n, attach, cap, 11 + attach as u64);
        let delta = g.max_degree();
        let all: Vec<u32> = (0..n as u32).collect();
        let kappa = degeneracy_ordering(&g, &all).degeneracy;
        let edges = generators::shuffled_edges(&g, 7);

        let mut bcg = Bcg20Colorer::for_graph(&g, 0.5, 3);
        let c_bcg = run_oblivious(&mut bcg, edges.iter().copied());
        assert!(c_bcg.is_proper_total(&g), "bcg20 must be proper");
        assert_eq!(bcg.failures(), 0, "bcg20 completion failed");

        let mut bg = Bg18Colorer::new(n, delta as u64, 5);
        let c_bg = run_oblivious(&mut bg, edges.iter().copied());
        assert!(c_bg.is_proper_total(&g));

        let mut alg2 = RobustColorer::new(n, delta, 9);
        let c_a2 = run_oblivious(&mut alg2, edges.iter().copied());
        assert!(c_a2.is_proper_total(&g));

        table.row(&[
            &attach,
            &delta,
            &kappa,
            &brooks_bound(&g),
            &c_bcg.num_distinct_colors(),
            &c_bg.num_distinct_colors(),
            &c_a2.num_distinct_colors(),
        ]);
    }
    table.print("F9: palette sizes on sparse skewed graphs");
    println!(
        "\nShape check: κ ≪ ∆ on these workloads, and the κ-parameterized \
         palette (bcg20) stays near κ while the ∆-based single-pass palettes \
         scale with ∆ (bg18 ≈ Õ(∆)) or poly(∆) (alg2, which buys robustness). \
         This is the BCG20 separation the paper's related-work section invokes."
    );
}
