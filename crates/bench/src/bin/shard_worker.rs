//! One shard of a distributed scenario grid or attack-trial sweep.
//!
//! The worker half of `sc_engine::shard`: reads a wire-format spec file
//! (written by the `Coordinator` or `streamcolor shard`, or by hand with
//! `ShardJob::encode`), runs the deterministic contiguous slice that
//! `--shard I --of N` selects through the ordinary `Runner`, and writes
//! a mergeable result file. Merging every worker's output reproduces the
//! single-process run byte-for-byte (the determinism law tested in
//! `tests/shard_determinism.rs` and gated by CI's `shard-smoke` job).
//!
//! Usage (copy-pastable; shard indices are 0-based):
//!
//! ```text
//! cargo build --release --bin shard_worker
//! target/release/shard_worker --spec spec.json --shard 0 --of 2 --out out-0.json
//! target/release/shard_worker --spec spec.json --shard 1 --of 2 --out out-1.json
//! ```
//!
//! `--threads K` (default 1) sets the `Runner` thread count *inside*
//! this worker; results are identical for every value, so it only trades
//! process-level against thread-level parallelism. Exits non-zero with a
//! message on stderr for malformed specs or I/O failures — the
//! coordinator surfaces both.
//!
//! `--serve` switches to **cluster-worker mode**: instead of one
//! file-based slice, the process speaks the `sc-service` line protocol
//! over stdin/stdout and answers `run_job` dispatch lines until EOF —
//! the endpoint an `sc_cluster::ChildStdio` transport spawns (equivalent
//! to `streamcolor serve` and `cluster_worker`). No other flags apply.

use sc_engine::shard::{encode_worker_output, partition, run_job, ShardJob};
use sc_engine::Runner;
use std::process::ExitCode;

struct Args {
    spec: String,
    shard: usize,
    of: usize,
    out: String,
    threads: usize,
}

/// The `--serve` loop: a stdio cluster worker (see module docs).
fn serve() -> Result<(), String> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    sc_service::Service::new().serve(stdin.lock(), &mut out).map_err(|e| e.to_string())
}

fn parse_args() -> Result<Args, String> {
    let mut spec = None;
    let mut shard = None;
    let mut of = None;
    let mut out = None;
    let mut threads = 1usize;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        let parse = |name: &str, raw: String| {
            raw.parse::<usize>().map_err(|e| format!("bad {name} {raw:?}: {e}"))
        };
        match flag.as_str() {
            "--spec" => spec = Some(value("--spec")?),
            "--shard" => shard = Some(parse("--shard", value("--shard")?)?),
            "--of" => of = Some(parse("--of", value("--of")?)?),
            "--out" => out = Some(value("--out")?),
            "--threads" => threads = parse("--threads", value("--threads")?)?.max(1),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    let args = Args {
        spec: spec.ok_or("missing --spec <file>")?,
        shard: shard.ok_or("missing --shard <index>")?,
        of: of.ok_or("missing --of <count>")?,
        out: out.ok_or("missing --out <file>")?,
        threads,
    };
    if args.of == 0 {
        return Err("--of must be ≥ 1".to_string());
    }
    if args.shard >= args.of {
        return Err(format!("--shard {} out of range for --of {}", args.shard, args.of));
    }
    Ok(args)
}

fn run() -> Result<(), String> {
    if std::env::args().skip(1).any(|a| a == "--serve") {
        if std::env::args().skip(1).count() > 1 {
            return Err("--serve takes no other flags".to_string());
        }
        return serve();
    }
    let args = parse_args()?;
    let text = std::fs::read_to_string(&args.spec)
        .map_err(|e| format!("cannot read spec {:?}: {e}", args.spec))?;
    let job = ShardJob::decode(&text).map_err(|e| format!("spec {:?}: {e}", args.spec))?;
    let range = partition(job.len(), args.of)[args.shard].clone();
    let outcome = run_job(&Runner::with_threads(args.threads), &job, range);
    let encoded = encode_worker_output(args.shard, args.of, &outcome);
    std::fs::write(&args.out, encoded).map_err(|e| format!("cannot write {:?}: {e}", args.out))
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("shard_worker: {e}");
            ExitCode::FAILURE
        }
    }
}
