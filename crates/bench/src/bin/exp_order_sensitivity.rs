//! Experiment F10 — arrival-order sensitivity.
//!
//! Every theorem promises correctness for edges "arriving in an adversarial
//! order". This experiment fixes one graph and replays it under six
//! arrival orders (natural, shuffled, hubs-first, hubs-last,
//! vertex-contiguous, interleaved), checking that:
//!
//! * Theorem 1's colors stay at `∆+1` and its passes stay within the bound
//!   for **every** order (determinism means order affects nothing but the
//!   internal tournament outcomes);
//! * Algorithm 2/3 remain proper and their palettes move only modestly
//!   (order shifts which vertices are "fast" at query time, not
//!   correctness).

use sc_bench::Table;
use sc_graph::generators;
use sc_stream::{run_oblivious, StoredStream, StreamOrder};
use streamcolor::{deterministic_coloring, DetConfig, RandEfficientColorer, RobustColorer};

fn main() {
    let (n, delta) = (1024usize, 32usize);
    let g = generators::random_with_exact_max_degree(n, delta, 5);
    println!("# F10: arrival-order sensitivity (n = {n}, ∆ = {}, m = {})", g.max_degree(), g.m());

    let mut table = Table::new(&[
        "order", "thm1 colors", "thm1 passes", "alg2 colors", "alg3 colors",
    ]);
    let mut det_pass_counts = Vec::new();

    for order in StreamOrder::sweep(23) {
        let edges = order.arrange(&g);
        let stream = StoredStream::from_edges(edges.iter().copied());

        let det = deterministic_coloring(&stream, n, delta, &DetConfig::default());
        assert!(det.coloring.is_proper_total(&g), "{}: thm1 improper", order.label());
        assert!(
            det.coloring.palette_span() <= delta as u64 + 1,
            "{}: thm1 palette exceeded ∆+1",
            order.label()
        );
        det_pass_counts.push(det.passes);

        let mut a2 = RobustColorer::new(n, delta, 7);
        let c2 = run_oblivious(&mut a2, edges.iter().copied());
        assert!(c2.is_proper_total(&g), "{}: alg2 improper", order.label());

        let mut a3 = RandEfficientColorer::new(n, delta, 8);
        let c3 = run_oblivious(&mut a3, edges.iter().copied());
        assert!(c3.is_proper_total(&g), "{}: alg3 improper", order.label());

        table.row(&[
            &order.label(),
            &det.colors_used,
            &det.passes,
            &c2.num_distinct_colors(),
            &c3.num_distinct_colors(),
        ]);
    }
    table.print("F10: six arrival orders, one graph");

    let (lo, hi) = (
        det_pass_counts.iter().min().expect("nonempty"),
        det_pass_counts.iter().max().expect("nonempty"),
    );
    println!(
        "\nShape check: all orders produce proper colorings; Theorem 1 stays at \
         ≤ ∆+1 colors with passes in [{lo}, {hi}] — order changes tournament \
         outcomes, never correctness or the pass-count regime."
    );
}
