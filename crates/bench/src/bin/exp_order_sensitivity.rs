//! Experiment F10 — arrival-order sensitivity.
//!
//! Every theorem promises correctness for edges "arriving in an adversarial
//! order". This experiment fixes one graph and replays it under six
//! arrival orders (natural, shuffled, hubs-first, hubs-last,
//! vertex-contiguous, interleaved) as one declarative scenario grid — all
//! 18 runs execute in parallel through `sc-engine`'s [`Runner`] — checking
//! that:
//!
//! * Theorem 1's colors stay at `∆+1` and its passes stay within the bound
//!   for **every** order (determinism means order affects nothing but the
//!   internal tournament outcomes);
//! * Algorithm 2/3 remain proper and their palettes move only modestly
//!   (order shifts which vertices are "fast" at query time, not
//!   correctness).

use sc_bench::Table;
use sc_engine::{ColorerSpec, Runner, Scenario, SourceSpec};
use sc_graph::generators;
use sc_stream::StreamOrder;
use streamcolor::DetConfig;

fn main() {
    let (n, delta) = (1024usize, 32usize);
    let g = generators::random_with_exact_max_degree(n, delta, 5);
    println!("# F10: arrival-order sensitivity (n = {n}, ∆ = {}, m = {})", g.max_degree(), g.m());
    let source = SourceSpec::stored(g);

    let orders = StreamOrder::sweep(23);
    let grid: Vec<Scenario> = orders
        .iter()
        .flat_map(|&order| {
            let source = source.clone();
            [
                (ColorerSpec::Det(DetConfig::default()), 0u64),
                (ColorerSpec::Robust { beta: None }, 7),
                (ColorerSpec::RandEfficient, 8),
            ]
            .into_iter()
            .map(move |(spec, seed)| {
                Scenario::new(source.clone(), spec).with_order(order).with_seed(seed)
            })
        })
        .collect();
    let outcomes = Runner::default().run_all(&grid);

    let mut table =
        Table::new(&["order", "thm1 colors", "thm1 passes", "alg2 colors", "alg3 colors"]);
    let mut det_pass_counts = Vec::new();

    for (i, order) in orders.iter().enumerate() {
        let (det, a2, a3) = (&outcomes[3 * i], &outcomes[3 * i + 1], &outcomes[3 * i + 2]);
        assert!(det.proper, "{}: thm1 improper", order.label());
        assert!(
            det.coloring.palette_span() <= delta as u64 + 1,
            "{}: thm1 palette exceeded ∆+1",
            order.label()
        );
        assert!(a2.proper, "{}: alg2 improper", order.label());
        assert!(a3.proper, "{}: alg3 improper", order.label());
        let det_passes = det.passes.expect("multi-pass run reports passes");
        det_pass_counts.push(det_passes);

        table.row(&[&order.label(), &det.colors, &det_passes, &a2.colors, &a3.colors]);
    }
    table.print("F10: six arrival orders, one graph");

    let (lo, hi) = (
        det_pass_counts.iter().min().expect("nonempty"),
        det_pass_counts.iter().max().expect("nonempty"),
    );
    println!(
        "\nShape check: all orders produce proper colorings; Theorem 1 stays at \
         ≤ ∆+1 colors with passes in [{lo}, {hi}] — order changes tournament \
         outcomes, never correctness or the pass-count regime."
    );
}
