//! Experiment F7 — the potential-function machinery of Algorithm 1.
//!
//! Checks, per epoch, the quantities the analysis tracks:
//! * `Φ₀ ≤ |U|` and `Φ_ℓ ≤ 2|U|` (Lemma 3.5) — via the recorded per-stage
//!   potential trace;
//! * `|F| ≤ |U|` (Lemma 3.7);
//! * grid-vs-full-family derandomization quality on a tiny instance: the
//!   grid's selected `Φ` is compared with the full `p²`-member family's
//!   minimum and average (DESIGN.md substitution S1).

use sc_bench::Table;
use sc_graph::generators;
use sc_stream::StoredStream;
use streamcolor::{deterministic_coloring, DetConfig};

fn main() {
    println!("# F7: potential traces and |F| bounds (Lemmas 3.5/3.7)");
    let n = 1024usize;
    let mut table =
        Table::new(&["∆", "epoch", "|U|", "stages", "Φ_final", "2|U| bound", "|F|", "|F| ≤ |U|?"]);
    let mut violations = 0usize;

    for delta in [16usize, 64] {
        let g = generators::random_with_exact_max_degree(n, delta, 3);
        let stream = StoredStream::from_edges(generators::shuffled_edges(&g, 2));
        let cfg = DetConfig { track_potential: true, ..DetConfig::default() };
        let det = deterministic_coloring(&stream, n, delta, &cfg);
        assert!(det.coloring.is_proper_total(&g));
        for (i, out) in det.epoch_outcomes.iter().enumerate() {
            let phi_final = out.stage_phis.last().copied().unwrap_or(0.0);
            let ok = !out.f_bound_violated;
            violations += usize::from(!ok);
            table.row(&[
                &delta,
                &(i + 1),
                &out.u_size,
                &out.stages,
                &format!("{phi_final:.1}"),
                &(2 * out.u_size),
                &out.f_size,
                &ok,
            ]);
        }
    }
    table.print("F7: per-epoch potential and F-size");
    println!("\nLemma 3.7 violations across all epochs: {violations} (theory predicts 0).");

    // Grid vs full family on a tiny instance.
    use sc_hash::AffineFamily;
    use streamcolor::det::derand::{phi_of_hash, select_hash};
    use streamcolor::det::tables::StageTables;
    use streamcolor::det::DerandStrategy;

    let gt = generators::complete(6);
    let stream = StoredStream::from_graph(&gt);
    let p = sc_hash::prime_in_range(8 * 6 * 3, 16 * 6 * 3).unwrap();
    let u: Vec<u32> = (0..6).collect();
    let slack: Vec<u64> = vec![2; 6 * 4];
    let tables = StageTables::build(6, &u, 4, slack, p, 3);
    let group = vec![1u64; 6];

    let grid_sel = select_hash(&stream, &group, &tables, DerandStrategy::Grid { l: 8 });
    let full_sel = select_hash(&stream, &group, &tables, DerandStrategy::FullFamily);
    let fam = AffineFamily::new(p);
    let mut sum = 0.0;
    let mut min = f64::MAX;
    let mut count = 0u64;
    for h in fam.iter_all() {
        let phi = phi_of_hash(&stream, &group, &tables, h);
        sum += phi;
        min = min.min(phi);
        count += 1;
    }
    println!("\n## F7b: grid-vs-full derandomization on K6 (p = {p}, |H| = {count})");
    println!("  family average Φ : {:.3}", sum / count as f64);
    println!("  family minimum Φ : {min:.3}");
    println!("  full tournament  : {:.3}", full_sel.phi);
    println!("  8×8 grid select  : {:.3}", grid_sel.phi);
    assert!(grid_sel.phi <= sum / count as f64 + 1e-9, "grid must beat the family average");
    println!("\nThe grid's selection is at or below the family average — the property the\npass-count analysis needs (inequality (9)).");
}
