//! Experiment T2 — (deg+1)-list-coloring (Theorem 2): validity, passes,
//! and space across list-universe regimes.

use sc_bench::{fmt_bits, Table};
use sc_graph::generators;
use sc_stream::{StoredStream, StreamSource};
use streamcolor::{list_coloring, Hknt22Colorer, ListConfig};

fn main() {
    let n = 1024usize;
    println!("# T2: (deg+1)-list-coloring (n = {n})");
    let mut table = Table::new(&[
        "∆",
        "universe |C|",
        "valid?",
        "respects lists?",
        "passes",
        "epochs",
        "space",
        "hknt22 valid?",
        "hknt22 space",
    ]);

    for delta in [8usize, 16, 32] {
        for universe in [2 * delta as u64, (n * n / 64) as u64] {
            let g = generators::random_with_exact_max_degree(n, delta, 17 + delta as u64);
            let lists = generators::random_deg_plus_one_lists(&g, universe, 23);
            let stream = StoredStream::from_graph_with_lists(&g, &lists);
            let r = list_coloring(&stream, n, delta, universe, &ListConfig::default());
            let valid = r.coloring.is_proper_total(&g);
            let respects = r.coloring.respects_lists(&lists);
            assert!(valid && respects, "∆ = {delta}, |C| = {universe}");

            // The randomized single-pass comparator (HKNT22-style).
            let mut hk = Hknt22Colorer::with_theory_lists(n, 31 + delta as u64);
            for item in stream.pass() {
                hk.process_item(&item);
            }
            let hc = hk.query();
            let hk_valid = hc.is_proper_total(&g) && hc.respects_lists(&lists);

            table.row(&[
                &delta,
                &universe,
                &valid,
                &respects,
                &r.passes,
                &r.epochs,
                &fmt_bits(r.peak_space_bits),
                &hk_valid,
                &fmt_bits(hk.peak_space_bits()),
            ]);
        }
    }
    table.print("T2: list-coloring runs (Theorem 2 vs HKNT22-style single pass)");
    println!(
        "\nEvery Theorem 2 run produced a proper coloring drawn from the per-vertex \
         lists, in a polylogarithmic number of passes — including the |C| = O(n²) \
         universe regime. The randomized HKNT22-style comparator achieves the same \
         in one pass (with error probability); Theorem 2's point is doing it with \
         zero error and zero randomness."
    );
}
