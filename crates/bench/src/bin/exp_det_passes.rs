//! Experiments F1 + F6 — pass complexity of the deterministic algorithm.
//!
//! F1 (Theorem 1): passes grow like `O(log ∆ · log log ∆)` in ∆ and the
//! palette never exceeds `∆+1`.
//! F6: comparison against the `O(∆)`-pass batch-greedy baseline — the
//! gap that is the theorem's whole point.

use sc_bench::Table;
use sc_graph::generators;
use sc_stream::StoredStream;
use streamcolor::{batch_greedy_coloring, deterministic_coloring, DetConfig};

fn main() {
    let n = 4096usize;
    println!("# F1/F6: deterministic passes vs ∆ (n = {n})");
    let mut table = Table::new(&[
        "∆",
        "colors",
        "∆+1",
        "det passes",
        "log∆·loglog∆",
        "batch passes (F6)",
        "epochs",
        "stages",
    ]);
    let mut ratio_track: Vec<f64> = Vec::new();

    for delta in sc_bench::delta_sweep(4, 256) {
        let g = generators::random_with_exact_max_degree(n, delta, 42 + delta as u64);
        let stream = StoredStream::from_edges(generators::shuffled_edges(&g, 5));
        let det = deterministic_coloring(&stream, n, delta, &DetConfig::default());
        assert!(det.coloring.is_proper_total(&g), "∆ = {delta}");
        assert!(det.coloring.palette_span() <= delta as u64 + 1);
        assert!(!det.fallback_used);

        let bg = batch_greedy_coloring(&stream, n, delta);
        assert!(bg.coloring.is_proper_total(&g));

        let log_d = (delta as f64).log2().max(1.0);
        let predictor = log_d * log_d.log2().max(1.0);
        ratio_track.push(det.passes as f64 / predictor);
        table.row(&[
            &delta,
            &det.colors_used,
            &(delta + 1),
            &det.passes,
            &format!("{predictor:.1}"),
            &bg.passes,
            &det.epochs,
            &det.stages,
        ]);
    }
    table.print("F1/F6: passes (deterministic vs batch-greedy)");

    let max_ratio = ratio_track.iter().cloned().fold(0.0, f64::max);
    let min_ratio = ratio_track.iter().cloned().fold(f64::MAX, f64::min);
    println!(
        "\npasses / (log∆·loglog∆) stays in [{min_ratio:.1}, {max_ratio:.1}] — bounded, \
         as Theorem 1 predicts; batch-greedy grows linearly in ∆."
    );
}
