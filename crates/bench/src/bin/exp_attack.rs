//! Experiment F5 — the robustness separation.
//!
//! Runs the monochromatic feedback attack against the non-robust
//! palette-sparsification baseline and the paper's two robust algorithms.
//! Expected outcome (the trichotomy of §1): palette sparsification, whose
//! correctness argument only holds for oblivious streams, gets broken
//! (improper outputs) once the adversary drains its per-vertex sampled
//! lists; Algorithms 2 and 3 survive every query.

use sc_adversary::{run_game, MonochromaticAttacker};
use sc_bench::Table;

use streamcolor::{PaletteSparsification, RandEfficientColorer, RobustColorer};

fn main() {
    let n = 1000usize;
    let trials = 10u64;
    println!("# F5: adaptive attack — non-robust vs robust (n = {n}, {trials} trials each)");
    let mut table = Table::new(&[
        "algorithm", "∆", "broken trials", "median failure round", "max colors seen",
    ]);

    for delta in [32usize, 64] {
        let rounds = n * delta / 4;

        // Palette sparsification with Θ(log n)-sized lists (the theory
        // sizing — still breakable because the adversary adapts).
        let mut broken = 0u64;
        let mut failure_rounds = Vec::new();
        let mut max_colors = 0usize;
        for t in 0..trials {
            let mut adv = MonochromaticAttacker::new(n, delta, 100 + t);
            let mut ps = PaletteSparsification::new(n, delta, 8, 200 + t);
            let r = run_game(&mut ps, &mut adv, n, rounds);
            max_colors = max_colors.max(r.max_colors);
            if !r.survived() {
                broken += 1;
                failure_rounds.push(r.first_failure_round.unwrap());
            }
        }
        failure_rounds.sort_unstable();
        let median = failure_rounds
            .get(failure_rounds.len() / 2)
            .map_or("—".to_string(), |r| r.to_string());
        table.row(&[&"palette-spars (non-robust)", &delta, &broken, &median, &max_colors]);

        // Algorithm 2.
        let mut broken2 = 0u64;
        let mut mc2 = 0usize;
        for t in 0..trials {
            let mut adv = MonochromaticAttacker::new(n, delta, 300 + t);
            let mut alg = RobustColorer::new(n, delta, 400 + t);
            let r = run_game(&mut alg, &mut adv, n, rounds);
            mc2 = mc2.max(r.max_colors);
            broken2 += u64::from(!r.survived());
        }
        table.row(&[&"robust ∆^2.5 [Thm 3]", &delta, &broken2, &"—", &mc2]);

        // Algorithm 3.
        let mut broken3 = 0u64;
        let mut mc3 = 0usize;
        for t in 0..trials {
            let mut adv = MonochromaticAttacker::new(n, delta, 500 + t);
            let mut alg = RandEfficientColorer::new(n, delta, 600 + t);
            let r = run_game(&mut alg, &mut adv, n, rounds);
            mc3 = mc3.max(r.max_colors);
            broken3 += u64::from(!r.survived());
        }
        table.row(&[&"robust ∆^3 [Thm 4]", &delta, &broken3, &"—", &mc3]);
    }

    table.print("F5: attack outcomes");
    println!(
        "\nSeparation: the non-robust baseline is broken in most/all trials; the robust \
         algorithms never produce an improper output, at the cost of poly(∆)-factor \
         larger palettes — exactly the trichotomy the paper formalizes."
    );
}
