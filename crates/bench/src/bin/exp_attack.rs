//! Experiment F5 — the robustness separation.
//!
//! Runs the monochromatic feedback attack against the non-robust
//! palette-sparsification baseline and the paper's two robust algorithms.
//! Expected outcome (the trichotomy of §1): palette sparsification, whose
//! correctness argument only holds for oblivious streams, gets broken
//! (improper outputs) once the adversary drains its per-vertex sampled
//! lists; Algorithms 2 and 3 survive every query.
//!
//! Each (victim, ∆) cell is a declarative [`AttackScenario`] whose trials
//! `sc-engine`'s [`Runner`] plays in parallel across workers.

use sc_bench::Table;
use sc_engine::{AdversarySpec, AttackScenario, ColorerSpec, Runner};

fn main() {
    let n = 1000usize;
    let trials = 10usize;
    println!("# F5: adaptive attack — non-robust vs robust (n = {n}, {trials} trials each)");
    let started = std::time::Instant::now();
    let runner = Runner::default();
    let mut table =
        Table::new(&["algorithm", "∆", "broken trials", "median failure round", "max colors seen"]);

    // (label, victim, seed, must_survive)
    let victims: Vec<(&str, ColorerSpec, u64, bool)> = vec![
        // Palette sparsification with small sampled lists (breakable
        // because the adversary adapts).
        (
            "palette-spars (non-robust)",
            ColorerSpec::PaletteSparsification { lists: Some(6) },
            100,
            false,
        ),
        ("robust ∆^2.5 [Thm 3]", ColorerSpec::Robust { beta: None }, 300, true),
        ("robust ∆^3 [Thm 4]", ColorerSpec::RandEfficient, 500, true),
    ];

    for delta in [32usize, 64] {
        let rounds = n * delta / 4;
        for (label, victim, seed, must_survive) in &victims {
            let scenario =
                AttackScenario::new(victim.clone(), AdversarySpec::Monochromatic, n, delta)
                    .with_rounds(rounds)
                    .with_seed(*seed);
            let s = runner.run_attack_trials(&scenario, trials);
            let median = s.median_failure_round().map_or("—".to_string(), |r| r.to_string());
            table.row(&[label, &delta, &s.broken, &median, &s.max_colors]);
            if *must_survive {
                assert_eq!(s.broken, 0, "{label} must survive the feedback attack");
            }
        }
    }

    table.print("F5: attack outcomes");
    println!(
        "\nSeparation: the non-robust baseline is broken in most/all trials; the robust \
         algorithms never produce an improper output, at the cost of poly(∆)-factor \
         larger palettes — exactly the trichotomy the paper formalizes."
    );
    // Games query after every insertion, so wall-clock here tracks the
    // incremental query path (BENCH_query.json quantifies it vs scratch).
    println!("total game wall-clock: {:.2}s", started.elapsed().as_secs_f64());
}
