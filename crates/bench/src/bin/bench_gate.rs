//! CI perf-regression gate over the `BENCH_*.json` trajectory files.
//!
//! Usage:
//!
//! ```text
//! bench_gate --baseline ci/bench_baselines.json \
//!            --measured BENCH_engine.json --measured BENCH_query.json \
//!            [--tolerance 0.30]
//! ```
//!
//! The baseline file is a flat JSON array of
//! `{"file": …, "algo": …, "field": …, "min": …}` entries: `file` names
//! which measured file to look in (by basename), `algo`/`field` select
//! the entry and its metric, and `min` is the committed expectation. The
//! gate passes while `measured ≥ min · (1 − tolerance)` for every entry —
//! speedup ratios are dimensionless, so a generous tolerance absorbs
//! runner-hardware noise while still catching a real regression (a
//! batched or incremental path silently degrading to its from-scratch
//! cost). A baseline entry with no matching measurement fails too:
//! that is coverage rot, not noise.

use sc_bench::flatjson::{parse_array, FlatObject};
use std::process::ExitCode;

struct Args {
    baseline: String,
    measured: Vec<String>,
    tolerance: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { baseline: String::new(), measured: Vec::new(), tolerance: 0.30 };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--baseline" => args.baseline = value("--baseline")?,
            "--measured" => args.measured.push(value("--measured")?),
            "--tolerance" => {
                args.tolerance =
                    value("--tolerance")?.parse().map_err(|e| format!("bad --tolerance: {e}"))?;
                if !(0.0..1.0).contains(&args.tolerance) {
                    return Err("--tolerance must lie in [0, 1)".to_string());
                }
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.baseline.is_empty() || args.measured.is_empty() {
        return Err("need --baseline <file> and at least one --measured <file>".to_string());
    }
    Ok(args)
}

fn basename(path: &str) -> &str {
    path.rsplit(['/', '\\']).next().unwrap_or(path)
}

fn load(path: &str) -> Result<Vec<FlatObject>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_array(&text).map_err(|e| format!("{path}: {e}"))
}

fn str_field<'a>(obj: &'a FlatObject, key: &str, ctx: &str) -> Result<&'a str, String> {
    obj.get(key).and_then(|v| v.as_str()).ok_or(format!("{ctx}: missing string field {key:?}"))
}

fn num_field(obj: &FlatObject, key: &str, ctx: &str) -> Result<f64, String> {
    obj.get(key).and_then(|v| v.as_f64()).ok_or(format!("{ctx}: missing numeric field {key:?}"))
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let baselines = load(&args.baseline)?;
    // (basename, entries) per measured file.
    let measured: Vec<(String, Vec<FlatObject>)> = args
        .measured
        .iter()
        .map(|p| load(p).map(|objs| (basename(p).to_string(), objs)))
        .collect::<Result<_, _>>()?;

    let mut all_ok = true;
    println!(
        "# bench_gate: {} baseline entries, tolerance {:.0}%",
        baselines.len(),
        args.tolerance * 100.0
    );
    for (i, b) in baselines.iter().enumerate() {
        let ctx = format!("baseline entry {i}");
        let file = str_field(b, "file", &ctx)?;
        let algo = str_field(b, "algo", &ctx)?;
        let field = str_field(b, "field", &ctx)?;
        let min = num_field(b, "min", &ctx)?;
        let floor = min * (1.0 - args.tolerance);

        let entry = measured
            .iter()
            .filter(|(name, _)| name == file)
            .flat_map(|(_, objs)| objs)
            .find(|o| o.get("algo").and_then(|v| v.as_str()) == Some(algo));
        match entry {
            None => {
                all_ok = false;
                println!("FAIL {file} {algo}: no measured entry (coverage regression)");
            }
            Some(o) => {
                let got = num_field(o, field, &format!("{file} entry {algo:?}"))?;
                if got >= floor {
                    println!(
                        "ok   {file} {algo} {field} = {got:.3} (baseline {min:.3}, floor {floor:.3})"
                    );
                } else {
                    all_ok = false;
                    println!(
                        "FAIL {file} {algo} {field} = {got:.3} < floor {floor:.3} \
                         (baseline {min:.3} − {:.0}%)",
                        args.tolerance * 100.0
                    );
                }
            }
        }
    }
    Ok(all_ok)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => {
            println!("bench_gate: all checks passed");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            eprintln!("bench_gate: performance regression detected (see FAIL lines above)");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bench_gate: {e}");
            ExitCode::FAILURE
        }
    }
}
