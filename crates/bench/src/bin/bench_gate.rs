//! CI perf-regression gate over the `BENCH_*.json` trajectory files.
//!
//! Usage:
//!
//! ```text
//! bench_gate --baseline ci/bench_baselines.json \
//!            --measured BENCH_engine.json --measured BENCH_query.json \
//!            [--tolerance 0.30]
//! ```
//!
//! The baseline file is a flat JSON array of
//! `{"file": …, "algo": …, "field": …, "min": …}` entries: `file` names
//! which measured file to look in (by basename), `algo`/`field` select
//! the entry and its metric, and `min` is the committed expectation. The
//! gate passes while `measured ≥ min · (1 − tolerance)` for every entry —
//! speedup ratios are dimensionless, so a generous tolerance absorbs
//! runner-hardware noise while still catching a real regression (a
//! batched or incremental path silently degrading to its from-scratch
//! cost). A baseline entry with no matching measurement — the entry
//! missing entirely, or present without the gated field — fails with a
//! per-entry `FAIL` line naming what is absent: that is coverage rot,
//! not noise, and it must not read like a gate crash. Only a malformed
//! *baseline* file aborts the run.

use sc_bench::flatjson::{parse_array, FlatObject};
use std::process::ExitCode;

struct Args {
    baseline: String,
    measured: Vec<String>,
    tolerance: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { baseline: String::new(), measured: Vec::new(), tolerance: 0.30 };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--baseline" => args.baseline = value("--baseline")?,
            "--measured" => args.measured.push(value("--measured")?),
            "--tolerance" => {
                args.tolerance =
                    value("--tolerance")?.parse().map_err(|e| format!("bad --tolerance: {e}"))?;
                if !(0.0..1.0).contains(&args.tolerance) {
                    return Err("--tolerance must lie in [0, 1)".to_string());
                }
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.baseline.is_empty() || args.measured.is_empty() {
        return Err("need --baseline <file> and at least one --measured <file>".to_string());
    }
    Ok(args)
}

fn basename(path: &str) -> &str {
    path.rsplit(['/', '\\']).next().unwrap_or(path)
}

fn load(path: &str) -> Result<Vec<FlatObject>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_array(&text).map_err(|e| format!("{path}: {e}"))
}

fn str_field<'a>(obj: &'a FlatObject, key: &str, ctx: &str) -> Result<&'a str, String> {
    obj.get(key).and_then(|v| v.as_str()).ok_or(format!("{ctx}: missing string field {key:?}"))
}

fn num_field(obj: &FlatObject, key: &str, ctx: &str) -> Result<f64, String> {
    obj.get(key).and_then(|v| v.as_f64()).ok_or(format!("{ctx}: missing numeric field {key:?}"))
}

/// Checks every baseline entry against the measured files, returning
/// `(all_ok, report_lines)`.
///
/// Missing measured *entries* and missing measured *fields* are per-entry
/// `FAIL` lines (coverage regressions the summary should enumerate), not
/// errors; only a malformed baseline entry errors.
fn gate(
    baselines: &[FlatObject],
    measured: &[(String, Vec<FlatObject>)],
    tolerance: f64,
) -> Result<(bool, Vec<String>), String> {
    let mut all_ok = true;
    let mut lines = Vec::with_capacity(baselines.len());
    for (i, b) in baselines.iter().enumerate() {
        let ctx = format!("baseline entry {i}");
        let file = str_field(b, "file", &ctx)?;
        let algo = str_field(b, "algo", &ctx)?;
        let field = str_field(b, "field", &ctx)?;
        let min = num_field(b, "min", &ctx)?;
        let floor = min * (1.0 - tolerance);

        let entry = measured
            .iter()
            .filter(|(name, _)| name == file)
            .flat_map(|(_, objs)| objs)
            .find(|o| o.get("algo").and_then(|v| v.as_str()) == Some(algo));
        let line = match entry {
            None => {
                all_ok = false;
                format!("FAIL {file} {algo}: no measured entry (coverage regression)")
            }
            Some(o) => match o.get(field).and_then(|v| v.as_f64()) {
                None => {
                    all_ok = false;
                    format!(
                        "FAIL {file} {algo}: measured entry has no numeric field {field:?} \
                         (baseline key missing from measured JSON — coverage regression)"
                    )
                }
                Some(got) if got >= floor => format!(
                    "ok   {file} {algo} {field} = {got:.3} (baseline {min:.3}, floor {floor:.3})"
                ),
                Some(got) => {
                    all_ok = false;
                    format!(
                        "FAIL {file} {algo} {field} = {got:.3} < floor {floor:.3} \
                         (baseline {min:.3} − {:.0}%)",
                        tolerance * 100.0
                    )
                }
            },
        };
        lines.push(line);
    }
    Ok((all_ok, lines))
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let baselines = load(&args.baseline)?;
    // (basename, entries) per measured file.
    let measured: Vec<(String, Vec<FlatObject>)> = args
        .measured
        .iter()
        .map(|p| load(p).map(|objs| (basename(p).to_string(), objs)))
        .collect::<Result<_, _>>()?;

    println!(
        "# bench_gate: {} baseline entries, tolerance {:.0}%",
        baselines.len(),
        args.tolerance * 100.0
    );
    let (all_ok, lines) = gate(&baselines, &measured, args.tolerance)?;
    for line in lines {
        println!("{line}");
    }
    Ok(all_ok)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => {
            println!("bench_gate: all checks passed");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            eprintln!("bench_gate: performance regression detected (see FAIL lines above)");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bench_gate: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_bench::flatjson::parse_array;

    fn fixture(measured_speedup: &str) -> (Vec<FlatObject>, Vec<(String, Vec<FlatObject>)>) {
        let baselines =
            parse_array(r#"[{"file":"BENCH_x.json","algo":"alg2","field":"speedup","min":2.0}]"#)
                .unwrap();
        let measured = parse_array(&format!(r#"[{{"algo":"alg2",{measured_speedup}}}]"#)).unwrap();
        (baselines, vec![("BENCH_x.json".to_string(), measured)])
    }

    #[test]
    fn downward_drift_beyond_tolerance_fails() {
        let (baselines, measured) = fixture(r#""speedup":1.3"#);
        let (ok, lines) = gate(&baselines, &measured, 0.30).unwrap();
        assert!(!ok, "1.3 < 2.0·0.7 must fail");
        assert!(lines[0].starts_with("FAIL"), "{lines:?}");
        assert!(lines[0].contains("floor 1.400"), "{lines:?}");
    }

    #[test]
    fn downward_drift_within_tolerance_and_upward_drift_pass() {
        // Slightly down but above the floor: noise, not regression.
        let (baselines, measured) = fixture(r#""speedup":1.5"#);
        let (ok, lines) = gate(&baselines, &measured, 0.30).unwrap();
        assert!(ok, "1.5 ≥ 1.4 floor: {lines:?}");
        // Improvement: always passes.
        let (baselines, measured) = fixture(r#""speedup":9.75"#);
        let (ok, lines) = gate(&baselines, &measured, 0.30).unwrap();
        assert!(ok, "{lines:?}");
        assert!(lines[0].starts_with("ok"), "{lines:?}");
    }

    #[test]
    fn missing_field_is_a_clear_fail_line_not_an_error() {
        // The measured entry exists but lacks the gated key (e.g. a
        // renamed field): the gate must keep going and say exactly that.
        let (baselines, measured) = fixture(r#""other":1.0"#);
        let (ok, lines) = gate(&baselines, &measured, 0.30).unwrap();
        assert!(!ok);
        assert!(
            lines[0].contains("no numeric field \"speedup\""),
            "message must name the missing key: {lines:?}"
        );
        // A string where a number belongs is the same failure.
        let (baselines, measured) = fixture(r#""speedup":"2.9""#);
        let (ok, lines) = gate(&baselines, &measured, 0.30).unwrap();
        assert!(!ok);
        assert!(lines[0].contains("no numeric field"), "{lines:?}");
    }

    #[test]
    fn missing_entry_is_a_coverage_fail_and_malformed_baseline_errors() {
        let baselines =
            parse_array(r#"[{"file":"BENCH_x.json","algo":"ghost","field":"speedup","min":2.0}]"#)
                .unwrap();
        let (ok, lines) = gate(&baselines, &fixture(r#""speedup":2.0"#).1, 0.30).unwrap();
        assert!(!ok);
        assert!(lines[0].contains("no measured entry"), "{lines:?}");

        let bad = parse_array(r#"[{"algo":"alg2","field":"speedup","min":2.0}]"#).unwrap();
        let e = gate(&bad, &[], 0.30).unwrap_err();
        assert!(e.contains("file"), "baseline problems still abort: {e}");
    }
}
