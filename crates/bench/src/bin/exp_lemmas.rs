//! Experiment F8 — lemma-level measurements.
//!
//! * Lemma 2.1: the constructive Turán independent set meets
//!   `|I| ≥ n²/(2m+n)` across graph densities.
//! * Lemma 3.10: the selected partition's cost vs the `(1/√s)·mass` bound.
//! * Lemma 4.5: degeneracy of fast blocks is `O(√∆)`.
//! * Lemma 4.8: Algorithm 3's `D_{i,j}` sizes concentrate below `7n/∆` —
//!   measured via the surviving-candidate rate.
//! * Lemmas 4.2/4.3: per-vertex sketch-degree totals stay `O(log n)`
//!   (via `robust::analysis`), plus the per-block fast degeneracies and
//!   the candidate census.

use sc_bench::Table;
use sc_graph::{degeneracy_ordering, generators, turan_independent_set};
use sc_stream::{run_oblivious, StreamingColorer};
use streamcolor::listcolor::partition::{
    candidate_partitions, partition_cost_for_list, total_list_mass, PartitionSearch,
};
use streamcolor::robust::{candidate_census, fast_block_degeneracies, sketch_concentration};
use streamcolor::{RandEfficientColorer, RobustColorer};

fn main() {
    println!("# F8: lemma-level checks");

    // ---- Lemma 2.1 (Turán). ----
    let mut t1 = Table::new(&["graph", "n", "m", "bound n²/(2m+n)", "|I| found", "ok?"]);
    let n = 600usize;
    for (name, g) in [
        ("sparse", generators::gnp_with_max_degree(n, 8, 0.05, 1)),
        ("medium", generators::gnp_with_max_degree(n, 32, 0.2, 2)),
        ("dense", generators::gnp_with_max_degree(n, 128, 0.8, 3)),
        ("clique-union", generators::clique_union(30, 20)),
    ] {
        let all: Vec<u32> = (0..g.n() as u32).collect();
        let is = turan_independent_set(&g, &all);
        let bound = g.n() * g.n() / (2 * g.m() + g.n());
        t1.row(&[&name, &g.n(), &g.m(), &bound, &is.len(), &(is.len() >= bound)]);
        assert!(is.len() >= bound);
    }
    t1.print("F8a: Lemma 2.1 — Turán independent sets");

    // ---- Lemma 3.10 (partition quality). ----
    let mut t2 = Table::new(&["s", "mass before", "bound mass/√s", "best candidate cost"]);
    let universe = 4096u64;
    let lists: Vec<Vec<u64>> =
        (0..400u64).map(|x| (0..17u64).map(|i| (x * 131 + i * 97) % universe).collect()).collect();
    for s in [4u64, 16, 64] {
        let cands = candidate_partitions(universe, s, PartitionSearch::Sampled(16));
        let mut scratch = vec![0u32; s as usize];
        let best: u64 = cands
            .iter()
            .map(|r| lists.iter().map(|l| partition_cost_for_list(r, l, &mut scratch)).sum::<u64>())
            .min()
            .unwrap();
        let mass = total_list_mass(&lists);
        let bound = mass as f64 / (s as f64).sqrt();
        t2.row(&[&s, &mass, &format!("{bound:.0}"), &best]);
        assert!(
            (best as f64) <= bound * 1.25,
            "best sampled partition {best} way above Lemma 3.10 bound {bound:.0}"
        );
    }
    t2.print("F8b: Lemma 3.10 — partition shrinkage");

    // ---- Lemma 4.5 (level edge-set degeneracy = O(√∆ + log n)). ----
    let mut t3 = Table::new(&["∆", "√∆ + log n", "max level-set degeneracy", "ok?"]);
    for delta in [16usize, 64, 144] {
        let gn = 800usize;
        let g = generators::random_with_exact_max_degree(gn, delta, 7);
        let mut colorer = RobustColorer::new(gn, delta, 5);
        run_oblivious(&mut colorer, generators::shuffled_edges(&g, 7));
        let c = colorer.query();
        assert!(c.is_proper_total(&g));
        let all: Vec<u32> = (0..gn as u32).collect();
        let mut worst = 0usize;
        for level in 1..=colorer.params().num_levels {
            let edges = colorer.level_edge_set(level);
            let sub = sc_graph::Graph::from_edges(gn, edges);
            worst = worst.max(degeneracy_ordering(&sub, &all).degeneracy);
        }
        let bound = (delta as f64).sqrt() + (gn as f64).log2();
        // Allow the constant the lemma hides.
        let ok = (worst as f64) <= 4.0 * bound;
        assert!(ok, "∆ = {delta}: degeneracy {worst} > 4·(√∆+log n) = {:.0}", 4.0 * bound);
        t3.row(&[&delta, &format!("{bound:.0}"), &worst, &ok]);
    }
    t3.print("F8c: Lemma 4.5 — degeneracy of C_ℓ ∪ B");

    // ---- Lemma 4.8 (candidate survival in Algorithm 3). ----
    let mut t4 = Table::new(&["∆", "P copies", "query failures", "stored edges"]);
    for delta in [8usize, 32] {
        let gn = 1000usize;
        let g = generators::random_with_exact_max_degree(gn, delta, 13);
        let mut colorer = RandEfficientColorer::new(gn, delta, 6);
        let edges = generators::shuffled_edges(&g, 13);
        let mut processed = 0usize;
        for e in edges {
            colorer.process(e);
            processed += 1;
            if processed.is_multiple_of(200) {
                let _ = colorer.query();
            }
        }
        t4.row(&[&delta, &colorer.copies(), &colorer.failures(), &colorer.stored_edges()]);
        assert_eq!(colorer.failures(), 0, "Lemma 4.8: some candidate must survive");
    }
    t4.print("F8d: Lemma 4.8 — Algorithm 3 candidate survival");

    // ---- Lemmas 4.2/4.3 (sketch-degree concentration), per-block
    // degeneracy, and the candidate census — via robust::analysis. ----
    let mut t5 = Table::new(&[
        "∆",
        "8·log n",
        "Σ d_{A_i}(v) (max/p99/mean)",
        "Σ d_{C_ℓ}(v) (max/p99/mean)",
        "fast blocks",
        "max block degen",
        "alg3 survivors",
    ]);
    for delta in [25usize, 100] {
        let gn = 900usize;
        let g = generators::random_with_exact_max_degree(gn, delta, 21);
        // Hubs-last arrival: the final (un-rotated) buffer is hub-heavy,
        // so the fast zone is populated at measurement time.
        let edges = sc_stream::StreamOrder::HubsLast.arrange(&g);

        let mut a2 = RobustColorer::new(gn, delta, 23);
        for &e in &edges {
            a2.process(e);
        }
        let sc = sketch_concentration(&a2);
        let blocks = fast_block_degeneracies(&a2);
        let max_block_degen = blocks.iter().map(|b| b.degeneracy).max().unwrap_or(0);

        let mut a3 = RandEfficientColorer::new(gn, delta, 24);
        for &e in &edges {
            a3.process(e);
        }
        let census = candidate_census(&a3);

        let log_bound = 8.0 * (gn as f64).log2();
        assert!(
            (sc.h_totals.max as f64) <= log_bound && (sc.g_totals.max as f64) <= log_bound,
            "∆ = {delta}: sketch degrees not O(log n)"
        );
        assert!(census.valid >= 1);
        t5.row(&[
            &delta,
            &format!("{log_bound:.0}"),
            &format!("{}", sc.h_totals),
            &format!("{}", sc.g_totals),
            &blocks.len(),
            &max_block_degen,
            &format!("{}/{}", census.valid, census.valid + census.wiped),
        ]);
    }
    t5.print("F8e: Lemmas 4.2/4.3 — sketch-degree concentration (robust::analysis)");

    println!("\nAll lemma-level bounds hold on every tested instance.");
}
