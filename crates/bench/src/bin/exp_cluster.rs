//! Experiment — the cluster layer's overhead curve: what dispatching a
//! shard job through `sc-cluster` transports costs relative to the
//! single-process `run_in_process` reference, and what a worker death's
//! re-dispatch costs on top.
//!
//! Three fleet shapes, each first asserted **byte-identical** to the
//! reference (the determinism law re-checked where the numbers are
//! produced), then timed:
//!
//! * `process` — loopback [`InProcess`] workers: full protocol
//!   encode/decode, no extra parallelism, so its `efficiency =
//!   in_process_ms / cluster_ms` is the pure protocol-overhead floor
//!   (≈ 1.0; a sustained drop means the `run_job` line codec or spec
//!   re-encoding got expensive);
//! * `stdio` — real `shard_worker --serve` child processes: protocol
//!   overhead plus spawn cost, minus process-level parallelism, so
//!   efficiency can exceed 1.0 on multi-core hosts;
//! * `retry` — loopback workers plus one injected mid-job death
//!   ([`Unreliable`]): efficiency measures what re-running one orphaned
//!   slice costs (the straggler/re-dispatch tax);
//! * `skew` — loopback workers plus one [`Unreliable::slowed_by`]
//!   straggler, timed under static dispatch vs work stealing with
//!   speculative re-dispatch: `efficiency = static_ms / stealing_ms`
//!   is the scheduling win (> 1 means stealing + speculation rescued
//!   the straggler's slice).
//!
//! Emits `BENCH_cluster.json`; `--smoke` shrinks the grid and writes
//! `BENCH_cluster.smoke.json` (CI-sized; never clobbers the committed
//! full-profile file). CI's `cluster-smoke` job gates the efficiency
//! fields via `ci/bench_baselines.json`.

use sc_cluster::{ChildStdio, InProcess, Transport, Unreliable, WorkerPool};
use sc_engine::shard::{run_in_process, smoke_grid, ShardJob};
use sc_engine::{ColorerSpec, Scenario, SourceSpec};
use sc_stream::{QuerySchedule, StreamOrder};
use std::io::Write as _;
use std::time::{Duration, Instant};

struct Profile {
    smoke: bool,
    /// Healthy workers per fleet.
    workers: usize,
    /// Timing repetitions (median goes into the file).
    reps: usize,
}

impl Profile {
    fn full() -> Self {
        Self { smoke: false, workers: 4, reps: 5 }
    }

    fn smoke() -> Self {
        // The smoke grid runs in ~15 ms, so single-run noise is a large
        // fraction of the signal; more reps keep the gated medians stable.
        Self { smoke: true, workers: 3, reps: 7 }
    }

    fn bench_path(&self) -> &'static str {
        if self.smoke {
            "BENCH_cluster.smoke.json"
        } else {
            "BENCH_cluster.json"
        }
    }

    /// The job under test: the CI smoke grid, or a heavier full-profile
    /// grid (same shape, larger instances, more scenarios).
    fn job(&self) -> ShardJob {
        if self.smoke {
            return ShardJob::Grid(smoke_grid());
        }
        let mut scenarios = Vec::new();
        for (i, n) in [(0u64, 900usize), (1, 1400)] {
            let exact = SourceSpec::exact_degree(n, 14, 7 + i);
            let gnp = SourceSpec::gnp(n, 14, 0.3, 11 + i);
            scenarios.extend([
                Scenario::new(exact.clone(), ColorerSpec::Robust { beta: None })
                    .labeled(format!("cluster robust n={n}"))
                    .with_order(StreamOrder::Shuffled(1))
                    .with_seed(21 + i)
                    .with_schedule(QuerySchedule::EveryEdges(997)),
                Scenario::new(gnp.clone(), ColorerSpec::RandEfficient)
                    .labeled(format!("cluster alg3 n={n}"))
                    .with_seed(22 + i),
                Scenario::new(exact.clone(), ColorerSpec::Bg18 { buckets: None })
                    .labeled(format!("cluster bg18 n={n}"))
                    .with_seed(23 + i),
                Scenario::new(gnp, ColorerSpec::StoreAll)
                    .labeled(format!("cluster store-all n={n}"))
                    .with_seed(24 + i)
                    .with_schedule(QuerySchedule::EveryEdges(1499)),
                Scenario::new(exact, ColorerSpec::Bcg20 { epsilon: 0.5 })
                    .labeled(format!("cluster bcg20 n={n}"))
                    .with_order(StreamOrder::VertexContiguous)
                    .with_seed(25 + i),
            ]);
        }
        ShardJob::Grid(scenarios)
    }
}

/// Locates `shard_worker` next to this executable.
fn sibling_worker() -> Result<std::path::PathBuf, String> {
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate myself: {e}"))?;
    let dir = exe.parent().ok_or("executable has no parent directory")?;
    let candidate = dir.join(if cfg!(windows) { "shard_worker.exe" } else { "shard_worker" });
    if candidate.exists() {
        Ok(candidate)
    } else {
        Err(format!(
            "worker binary not found at {candidate:?}; build it with \
             `cargo build --release --bin shard_worker`"
        ))
    }
}

enum Fleet {
    Process,
    Stdio,
    Retry,
}

impl Fleet {
    fn name(&self) -> &'static str {
        match self {
            Fleet::Process => "process",
            Fleet::Stdio => "stdio",
            Fleet::Retry => "retry",
        }
    }

    /// Builds a fresh fleet (transports are consumed per dispatch rep:
    /// stdio workers die with their pool, and the retry fleet's injected
    /// death must re-arm).
    fn build(&self, workers: usize) -> Result<Vec<Box<dyn Transport>>, String> {
        let mut fleet: Vec<Box<dyn Transport>> = match self {
            Fleet::Process | Fleet::Retry => {
                (0..workers).map(|_| Box::new(InProcess::new()) as Box<dyn Transport>).collect()
            }
            Fleet::Stdio => {
                let worker = sibling_worker()?;
                (0..workers)
                    .map(|_| -> Result<Box<dyn Transport>, String> {
                        Ok(Box::new(ChildStdio::spawn(&worker, &["--serve"])?))
                    })
                    .collect::<Result<_, _>>()?
            }
        };
        if matches!(self, Fleet::Retry) {
            // One extra worker that accepts its slice and dies before
            // answering — every rep pays exactly one re-dispatch.
            fleet.push(Box::new(Unreliable::dying_after(InProcess::new(), 0)));
        }
        Ok(fleet)
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let profile = if smoke { Profile::smoke() } else { Profile::full() };
    let job = profile.job();
    println!(
        "# cluster bench: {} grid item(s), {} worker(s), {} rep(s){}",
        job.len(),
        profile.workers,
        profile.reps,
        if smoke { ", smoke profile" } else { "" }
    );

    let reference = run_in_process(&job, 1).expect("reference run");
    let reference_bytes = reference.encode();
    // Warm caches (and the allocator) before any timed run.
    let _ = run_in_process(&job, 1).expect("warmup run");
    let median = |times: &mut Vec<f64>| -> f64 {
        times.sort_by(f64::total_cmp);
        times[times.len() / 2]
    };
    let mut in_process_times: Vec<f64> = (0..profile.reps)
        .map(|_| {
            let start = Instant::now();
            let _ = run_in_process(&job, 1).expect("reference run");
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    let in_process_ms = median(&mut in_process_times);
    println!("in-process reference: {in_process_ms:.1} ms");

    let mut entries = Vec::new();
    for fleet in [Fleet::Process, Fleet::Stdio, Fleet::Retry] {
        // Determinism first: the dispatched merge must be byte-identical
        // to the reference (including the retry fleet's re-dispatch).
        let transports = fleet.build(profile.workers).expect("fleet build");
        let mut pool = WorkerPool::new(transports).with_timeout(Duration::from_secs(600));
        let report = pool.dispatch(&job).expect("dispatch");
        assert_eq!(
            report.outcome.encode(),
            reference_bytes,
            "{} fleet diverged from the in-process reference",
            fleet.name()
        );
        let expected_retries = usize::from(matches!(fleet, Fleet::Retry));
        assert_eq!(report.retries, expected_retries, "{} fleet retry count", fleet.name());

        let mut times: Vec<f64> = (0..profile.reps)
            .map(|_| {
                let transports = fleet.build(profile.workers).expect("fleet build");
                let mut pool = WorkerPool::new(transports).with_timeout(Duration::from_secs(600));
                let start = Instant::now();
                let report = pool.dispatch(&job).expect("dispatch");
                let elapsed = start.elapsed().as_secs_f64() * 1e3;
                assert_eq!(report.outcome.encode(), reference_bytes);
                elapsed
            })
            .collect();
        let cluster_ms = median(&mut times);
        let efficiency = in_process_ms / cluster_ms.max(1e-9);
        println!(
            "{:>8}: {} worker(s) — dispatch {cluster_ms:.1} ms, efficiency {efficiency:.3}{}",
            fleet.name(),
            profile.workers,
            if expected_retries > 0 { " (1 injected death per run)" } else { "" },
        );
        entries.push(format!(
            "  {{\"algo\":\"{}\",\"kind\":\"cluster\",\"workers\":{},\"items\":{},\"in_process_ms\":{:.3},\"cluster_ms\":{:.3},\"efficiency\":{:.3},\"retries\":{}}}",
            fleet.name(),
            profile.workers,
            job.len(),
            in_process_ms,
            cluster_ms,
            efficiency,
            expected_retries,
        ));
    }

    // The skewed fleet: healthy workers plus one whose answers straggle
    // by `skew_delay`. Fixed partitions (static dispatch) are bounded by
    // the straggler; work stealing + speculative re-dispatch routes its
    // slice to an idle fast worker after `SPECULATE_FRACTION × timeout`.
    // `efficiency = static_ms / stealing_ms` measures that rescue and is
    // gated in ci/bench_baselines.json — both modes are first asserted
    // byte-identical to the reference (speculation is byte-invisible).
    const SPECULATE_FRACTION: f64 = 0.05;
    let skew_delay = Duration::from_millis(800);
    let skew_timeout = Duration::from_secs(4);
    let skew_fleet = || -> Vec<Box<dyn Transport>> {
        let mut fleet: Vec<Box<dyn Transport>> = (0..profile.workers)
            .map(|_| Box::new(InProcess::new()) as Box<dyn Transport>)
            .collect();
        fleet.push(Box::new(Unreliable::slowed_by(InProcess::new(), skew_delay)));
        fleet
    };
    let stealing_pool = || {
        WorkerPool::new(skew_fleet())
            .with_timeout(skew_timeout)
            .with_speculation(SPECULATE_FRACTION)
    };
    let static_pool =
        || WorkerPool::new(skew_fleet()).with_timeout(skew_timeout).with_static_dispatch();
    let report = stealing_pool().dispatch(&job).expect("skewed stealing dispatch");
    assert_eq!(report.outcome.encode(), reference_bytes, "skewed stealing fleet diverged");
    assert!(report.speculative >= 1, "the straggler's slice must be speculated");
    let speculated = report.speculative;
    let report = static_pool().dispatch(&job).expect("skewed static dispatch");
    assert_eq!(report.outcome.encode(), reference_bytes, "skewed static fleet diverged");
    assert_eq!(report.speculative, 0, "static dispatch never speculates");
    let time_mode = |build: &dyn Fn() -> WorkerPool| -> Vec<f64> {
        (0..profile.reps)
            .map(|_| {
                let mut pool = build();
                let start = Instant::now();
                let report = pool.dispatch(&job).expect("skewed dispatch");
                let elapsed = start.elapsed().as_secs_f64() * 1e3;
                assert_eq!(report.outcome.encode(), reference_bytes);
                elapsed
            })
            .collect()
    };
    let stealing_ms = median(&mut time_mode(&stealing_pool));
    let static_ms = median(&mut time_mode(&static_pool));
    let efficiency = static_ms / stealing_ms.max(1e-9);
    println!(
        "    skew: {} worker(s) + 1 slowed {skew_delay:?} — static {static_ms:.1} ms, \
         stealing {stealing_ms:.1} ms, efficiency {efficiency:.3} ({speculated} speculated)",
        profile.workers,
    );
    entries.push(format!(
        "  {{\"algo\":\"skew\",\"kind\":\"cluster\",\"workers\":{},\"items\":{},\"static_ms\":{:.3},\"stealing_ms\":{:.3},\"efficiency\":{:.3},\"speculated\":{}}}",
        profile.workers + 1,
        job.len(),
        static_ms,
        stealing_ms,
        efficiency,
        speculated,
    ));

    let path = profile.bench_path();
    let json = format!("[\n{}\n]\n", entries.join(",\n"));
    match std::fs::File::create(path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("\nwrote {path} (cluster dispatch overhead + retry cost vs in-process)"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
    print!("{json}");
}
