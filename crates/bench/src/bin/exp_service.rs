//! Experiment — the serving layer's overhead curve: multi-session
//! interleaved ingest+query throughput vs N separate single-session
//! runs, driven entirely through the `sc-service` line protocol.
//!
//! The service hosts K independent tenants; its value is multiplexing,
//! and its cost must be ~zero — hosting K interleaved sessions should
//! take the same total time as running the K sessions one after another
//! on fresh single-tenant services. This binary measures exactly that
//! ratio per algorithm and emits `BENCH_service.json`, so the serving
//! layer enters the perf trajectory from day one:
//!
//! * `isolated_ms` — sum over sessions of a fresh service executing that
//!   session's whole command script;
//! * `interleaved_ms` — one service, the same scripts interleaved
//!   round-robin (the serving cadence: every tenant advances a chunk,
//!   then observes);
//! * `ratio = isolated_ms / interleaved_ms` — ≈ 1.0 when multiplexing is
//!   free; CI gates it via `ci/bench_baselines.json` (a sustained drop
//!   means per-command dispatch or session lookup got expensive).
//!
//! Before timing, the two modes' response transcripts are asserted
//! byte-identical per session — the determinism law, re-checked where
//! the numbers are produced.
//!
//! A final section leaves process memory and times the two `--listen`
//! serving modes over real sockets: the same K tenant scripts fanned
//! across K pipelined TCP connections against the single-threaded
//! [`Reactor`] and against the thread-per-connection [`TcpServer`],
//! transcripts asserted byte-identical first. Its `ratio = threads_ms / reactor_ms` (the
//! reactor's throughput relative to the threaded reference) is gated in
//! `ci/bench_baselines.json` so an event-loop regression — a busy poll,
//! a quadratic buffer drain — shows up as a gate failure, not a hunch.
//!
//! A persistence section snapshots one fully-ingested session and
//! times the snapshot→restore round trip against replaying the same
//! session's stream from scratch. Its `ratio = replay_ms /
//! roundtrip_ms` is gated in `ci/bench_baselines.json`: restore must
//! stay decisively cheaper than replay, or evict-to-disk and live
//! migration stop paying for themselves.
//!
//! `--smoke` shrinks the instances and writes `BENCH_service.smoke.json`
//! (CI-sized; never clobbers the committed full-profile file).

use sc_cluster::transport::{Tcp, Transport as _};
use sc_cluster::{Reactor, TcpServer};
use sc_engine::{wire, ColorerSpec};
use sc_graph::generators;
use sc_service::Service;
use std::io::Write as _;
use std::time::{Duration, Instant};

struct Profile {
    smoke: bool,
    /// Concurrent sessions per algorithm.
    sessions: usize,
    /// Vertices / max degree of each session's stream.
    n: usize,
    delta: usize,
    /// Edges per push_batch (an observe follows every batch).
    batch: usize,
    /// Timing repetitions (median goes into the file).
    reps: usize,
}

impl Profile {
    fn full() -> Self {
        Self { smoke: false, sessions: 8, n: 1200, delta: 16, batch: 64, reps: 5 }
    }

    fn smoke() -> Self {
        Self { smoke: true, sessions: 4, n: 400, delta: 8, batch: 32, reps: 3 }
    }

    fn bench_path(&self) -> &'static str {
        if self.smoke {
            "BENCH_service.smoke.json"
        } else {
            "BENCH_service.json"
        }
    }
}

/// One tenant's full command script: open, then per chunk push_batch +
/// observe, then stats + finish — the interactive serving cadence.
fn session_script(name: &str, spec: &ColorerSpec, profile: &Profile, seed: u64) -> Vec<String> {
    let g = generators::gnp_with_max_degree(profile.n, profile.delta, 0.4, seed);
    let edges: Vec<_> = generators::shuffled_edges(&g, seed ^ 0xBEEF);
    let mut open = sc_engine::flatjson::FlatObject::new();
    use sc_engine::flatjson::Scalar;
    open.insert("cmd".into(), Scalar::Str("open".into()));
    open.insert("session".into(), Scalar::Str(name.into()));
    open.insert("n".into(), Scalar::Uint(profile.n as u64));
    open.insert("delta".into(), Scalar::Uint(profile.delta as u64));
    open.insert("seed".into(), Scalar::Uint(seed));
    wire::colorer_to_wire(spec, &mut open);
    let mut lines = vec![sc_engine::flatjson::encode_object(&open)];
    for chunk in edges.chunks(profile.batch) {
        let batch = wire::encode_edges(chunk.iter().copied());
        lines.push(format!(r#"{{"cmd":"push_batch","session":"{name}","edges":"{batch}"}}"#));
        lines.push(format!(r#"{{"cmd":"observe","session":"{name}"}}"#));
    }
    lines.push(format!(r#"{{"cmd":"stats","session":"{name}"}}"#));
    lines.push(format!(r#"{{"cmd":"finish","session":"{name}"}}"#));
    lines
}

/// Round-robin interleaving of the tenants' scripts (per-session order
/// preserved), tagged with the owning session index.
fn interleave(scripts: &[Vec<String>]) -> Vec<(usize, &String)> {
    let mut cursors = vec![0usize; scripts.len()];
    let mut out = Vec::with_capacity(scripts.iter().map(Vec::len).sum());
    loop {
        let mut advanced = false;
        for (s, script) in scripts.iter().enumerate() {
            if cursors[s] < script.len() {
                out.push((s, &script[cursors[s]]));
                cursors[s] += 1;
                advanced = true;
            }
        }
        if !advanced {
            return out;
        }
    }
}

/// Runs the tenants isolated (fresh service each), returning per-session
/// transcripts and the total wall time in ms.
fn run_isolated(scripts: &[Vec<String>]) -> (Vec<Vec<String>>, f64) {
    let start = Instant::now();
    let transcripts = scripts
        .iter()
        .map(|script| {
            let mut service = Service::new();
            script.iter().filter_map(|line| service.respond(line)).collect()
        })
        .collect();
    (transcripts, start.elapsed().as_secs_f64() * 1e3)
}

/// Runs the tenants interleaved on one service, returning per-session
/// transcripts and the wall time in ms.
fn run_interleaved(scripts: &[Vec<String>]) -> (Vec<Vec<String>>, f64) {
    let lines = interleave(scripts);
    let mut transcripts: Vec<Vec<String>> = vec![Vec::new(); scripts.len()];
    let start = Instant::now();
    let mut service = Service::new();
    for (s, line) in lines {
        if let Some(response) = service.respond(line) {
            transcripts[s].push(response);
        }
    }
    (transcripts, start.elapsed().as_secs_f64() * 1e3)
}

/// Drives one connection through its session script with a bounded
/// pipelining window — deep enough to amortize round trips, shallow
/// enough that neither side's socket buffer can fill while the peer is
/// also blocked writing (which would deadlock a full-pipeline client
/// against a lock-step server).
fn drive_connection(addr: &str, lines: &[String]) -> Vec<String> {
    const WINDOW: usize = 16;
    let mut t = Tcp::connect(addr).expect("bench client connects");
    let mut out = Vec::with_capacity(lines.len());
    let mut sent = 0;
    while out.len() < lines.len() {
        while sent < lines.len() && sent - out.len() < WINDOW {
            t.send(&lines[sent]).expect("bench client sends");
            sent += 1;
        }
        out.push(t.recv(Duration::from_secs(60)).expect("bench client receives"));
    }
    out
}

/// Fans the tenant scripts across one connection each (a client thread
/// per connection), returning per-session transcripts and the wall time
/// in ms. The server behind `addr` is whichever mode is being measured.
fn run_over_wire(addr: &str, scripts: &[Vec<String>]) -> (Vec<Vec<String>>, f64) {
    let start = Instant::now();
    let workers: Vec<_> = scripts
        .iter()
        .cloned()
        .map(|lines| {
            let addr = addr.to_string();
            std::thread::spawn(move || drive_connection(&addr, &lines))
        })
        .collect();
    let transcripts = workers.into_iter().map(|w| w.join().expect("bench client thread")).collect();
    (transcripts, start.elapsed().as_secs_f64() * 1e3)
}

/// One timed pass of the reactor mode: bind, serve exactly K
/// connections, join. Setup and teardown ride the measurement for both
/// modes equally.
fn run_reactor(scripts: &[Vec<String>]) -> (Vec<Vec<String>>, f64) {
    let mut reactor = Reactor::bind("127.0.0.1:0").expect("reactor binds");
    let addr = reactor.local_addr().expect("reactor addr").to_string();
    let k = scripts.len();
    let server = std::thread::spawn(move || reactor.run(Some(k)).expect("reactor serves"));
    let result = run_over_wire(&addr, scripts);
    server.join().expect("reactor thread");
    result
}

/// One timed pass of the thread-per-connection mode, same shape.
fn run_threads(scripts: &[Vec<String>]) -> (Vec<Vec<String>>, f64) {
    let server = TcpServer::bind("127.0.0.1:0").expect("server binds");
    let addr = server.local_addr().expect("server addr").to_string();
    let k = scripts.len();
    let handle = std::thread::spawn(move || server.run(Some(k)).expect("server serves"));
    let result = run_over_wire(&addr, scripts);
    handle.join().expect("server thread");
    result
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let profile = if smoke { Profile::smoke() } else { Profile::full() };
    let algos: Vec<(&str, ColorerSpec)> = vec![
        ("alg2", ColorerSpec::Robust { beta: None }),
        ("alg3", ColorerSpec::RandEfficient),
        ("bg18", ColorerSpec::Bg18 { buckets: None }),
        ("store_all", ColorerSpec::StoreAll),
    ];
    println!(
        "# service bench: {} sessions x (n = {}, delta = {}, batch = {}){}",
        profile.sessions,
        profile.n,
        profile.delta,
        profile.batch,
        if smoke { ", smoke profile" } else { "" }
    );

    let mut entries = Vec::new();
    for (name, spec) in &algos {
        let scripts: Vec<Vec<String>> = (0..profile.sessions)
            .map(|s| session_script(&format!("{name}-{s}"), spec, &profile, 100 + s as u64))
            .collect();
        let commands: usize = scripts.iter().map(Vec::len).sum();

        // Determinism first: interleaving must not change a byte of any
        // tenant's transcript.
        let (isolated_transcripts, _) = run_isolated(&scripts);
        let (interleaved_transcripts, _) = run_interleaved(&scripts);
        assert_eq!(
            interleaved_transcripts, isolated_transcripts,
            "{name}: interleaving changed a tenant's responses"
        );

        let median = |times: &mut Vec<f64>| -> f64 {
            times.sort_by(f64::total_cmp);
            times[times.len() / 2]
        };
        let mut isolated_times: Vec<f64> =
            (0..profile.reps).map(|_| run_isolated(&scripts).1).collect();
        let mut interleaved_times: Vec<f64> =
            (0..profile.reps).map(|_| run_interleaved(&scripts).1).collect();
        let isolated_ms = median(&mut isolated_times);
        let interleaved_ms = median(&mut interleaved_times);
        let ratio = isolated_ms / interleaved_ms.max(1e-9);
        println!(
            "{name:>9}: {sessions} sessions, {commands} commands — isolated {isolated_ms:.1} ms, \
             interleaved {interleaved_ms:.1} ms, ratio {ratio:.3}",
            sessions = profile.sessions,
        );
        entries.push(format!(
            "  {{\"algo\":\"{}\",\"kind\":\"service\",\"sessions\":{},\"n\":{},\"delta\":{},\"commands\":{},\"isolated_ms\":{:.3},\"interleaved_ms\":{:.3},\"ratio\":{:.3}}}",
            name,
            profile.sessions,
            profile.n,
            profile.delta,
            commands,
            isolated_ms,
            interleaved_ms,
            ratio,
        ));
    }

    // Reactor vs thread-per-connection serving over real sockets. The
    // store-all colorer keeps per-command compute cheap, so the numbers
    // weigh what this section is about: event-loop dispatch, buffering,
    // and syscall overhead per protocol line.
    {
        let spec = ColorerSpec::StoreAll;
        let scripts: Vec<Vec<String>> = (0..profile.sessions)
            .map(|s| session_script(&format!("wire-{s}"), &spec, &profile, 200 + s as u64))
            .collect();
        let commands: usize = scripts.iter().map(Vec::len).sum();

        // Determinism first: both serving modes must answer exactly what
        // isolated in-process services answer.
        let (reference, _) = run_isolated(&scripts);
        let (from_reactor, _) = run_reactor(&scripts);
        let (from_threads, _) = run_threads(&scripts);
        assert_eq!(from_reactor, reference, "reactor responses diverged from isolated services");
        assert_eq!(from_threads, reference, "per-connection responses diverged");

        let median = |times: &mut Vec<f64>| -> f64 {
            times.sort_by(f64::total_cmp);
            times[times.len() / 2]
        };
        let mut reactor_times: Vec<f64> =
            (0..profile.reps).map(|_| run_reactor(&scripts).1).collect();
        let mut threads_times: Vec<f64> =
            (0..profile.reps).map(|_| run_threads(&scripts).1).collect();
        let reactor_ms = median(&mut reactor_times);
        let threads_ms = median(&mut threads_times);
        let ratio = threads_ms / reactor_ms.max(1e-9);
        println!(
            "  reactor: {sessions} connections, {commands} commands — reactor {reactor_ms:.1} ms, \
             threads {threads_ms:.1} ms, ratio {ratio:.3}",
            sessions = profile.sessions,
        );
        entries.push(format!(
            "  {{\"algo\":\"reactor\",\"kind\":\"serving\",\"sessions\":{},\"n\":{},\"delta\":{},\"commands\":{},\"reactor_ms\":{:.3},\"threads_ms\":{:.3},\"ratio\":{:.3}}}",
            profile.sessions, profile.n, profile.delta, commands, reactor_ms, threads_ms, ratio,
        ));
    }

    // Snapshot+restore round trip vs replay-from-scratch. A restore
    // rebuilds the colorer from its state blob instead of re-processing
    // the stream, so the round trip must be decisively cheaper than
    // replay — that margin is what makes evict-to-disk and live
    // migration worth having, and the gate keeps it from eroding.
    {
        use sc_engine::flatjson::{encode_object, parse_object, FlatObject, Scalar};
        let spec = ColorerSpec::Robust { beta: None };
        let script = session_script("persist", &spec, &profile, 300);
        // Everything but the trailing stats + finish: the session stays
        // open, mid-stream, exactly where eviction or migration strikes.
        let ingest = &script[..script.len() - 2];
        let build = || {
            let mut service = Service::new();
            for line in ingest {
                service.respond(line);
            }
            service
        };
        let snapshot_blob = |service: &mut Service| -> String {
            let response = service
                .respond(r#"{"cmd":"snapshot","session":"persist"}"#)
                .expect("snapshot answers");
            let obj = parse_object(&response).expect("snapshot response parses");
            assert_eq!(obj["ok"].as_bool(), Some(true), "snapshot failed: {response}");
            obj["snapshot"].as_str().expect("snapshot field").to_string()
        };
        let restore_line = |blob: &str| {
            let mut line = FlatObject::new();
            line.insert("cmd".into(), Scalar::Str("restore".into()));
            line.insert("session".into(), Scalar::Str("persist".into()));
            line.insert("snapshot".into(), Scalar::Str(blob.to_string()));
            encode_object(&line)
        };

        // Determinism first: the restored session's finish must be
        // byte-identical to the uninterrupted source's (the persistence
        // law, re-checked where the numbers are produced).
        let mut source = build();
        let blob = snapshot_blob(&mut source);
        let snapshot_bytes = blob.len();
        let mut restored = Service::new();
        let ack = restored.respond(&restore_line(&blob)).expect("restore answers");
        assert!(ack.contains("\"ok\":true"), "restore failed: {ack}");
        let finish = |service: &mut Service| {
            service.respond(r#"{"cmd":"finish","session":"persist"}"#).expect("finish answers")
        };
        assert_eq!(
            finish(&mut restored),
            finish(&mut source),
            "restored session diverged from the uninterrupted source"
        );

        let median = |times: &mut Vec<f64>| -> f64 {
            times.sort_by(f64::total_cmp);
            times[times.len() / 2]
        };
        // One timed pass is several round trips off a live source
        // (snapshot is non-destructive), reported per trip so the
        // number stays comparable to a single replay.
        const TRIPS: usize = 8;
        let mut source = build();
        let mut roundtrip_times: Vec<f64> = (0..profile.reps)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..TRIPS {
                    let blob = snapshot_blob(&mut source);
                    let mut target = Service::new();
                    let ack = target.respond(&restore_line(&blob)).expect("restore answers");
                    assert!(ack.contains("\"ok\":true"), "restore failed: {ack}");
                }
                start.elapsed().as_secs_f64() * 1e3 / TRIPS as f64
            })
            .collect();
        let mut replay_times: Vec<f64> = (0..profile.reps)
            .map(|_| {
                let start = Instant::now();
                build();
                start.elapsed().as_secs_f64() * 1e3
            })
            .collect();
        let roundtrip_ms = median(&mut roundtrip_times);
        let replay_ms = median(&mut replay_times);
        let ratio = replay_ms / roundtrip_ms.max(1e-9);
        println!(
            " snapshot: {snapshot_bytes} blob bytes — round trip {roundtrip_ms:.3} ms, \
             replay {replay_ms:.1} ms, ratio {ratio:.1}"
        );
        entries.push(format!(
            "  {{\"algo\":\"snapshot\",\"kind\":\"persistence\",\"n\":{},\"delta\":{},\"snapshot_bytes\":{},\"roundtrip_ms\":{:.3},\"replay_ms\":{:.3},\"ratio\":{:.3}}}",
            profile.n, profile.delta, snapshot_bytes, roundtrip_ms, replay_ms, ratio,
        ));
    }

    let path = profile.bench_path();
    let json = format!("[\n{}\n]\n", entries.join(",\n"));
    match std::fs::File::create(path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("\nwrote {path} (multi-session interleaved vs isolated service runs)"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
    print!("{json}");
}
