//! Experiment T1 — the summary table: every algorithm and baseline on the
//! same streams, reporting colors, passes, space, and theory bounds.
//!
//! Regenerates the paper's "contributions" table (§1.1) empirically. All
//! edge-stream algorithms run as a declarative scenario grid through
//! `sc-engine`'s [`Runner`] (in parallel across workers); Theorem 2 runs
//! separately because its input is an interleaved edge/color-list stream,
//! not a pure edge stream.
//!
//! Also emits `BENCH_engine.json`: a machine-readable batched-vs-per-edge
//! ingestion comparison, so successive PRs accumulate a perf trajectory.

use sc_bench::{fmt_bits, Table};
use sc_engine::{ColorerSpec, RunOutcome, Runner, Scenario, SourceSpec};
use sc_graph::generators;
use sc_stream::{EngineConfig, StreamOrder};
use std::io::Write as _;
use streamcolor::{list_coloring, DetConfig, ListConfig};

fn scenario_grid(source: &SourceSpec) -> Vec<Scenario> {
    let specs: Vec<(&str, ColorerSpec)> = vec![
        ("det (∆+1) [Thm 1]", ColorerSpec::Det(DetConfig::default())),
        ("robust ∆^2.5 [Thm 3]", ColorerSpec::Robust { beta: None }),
        ("robust ∆^3 [Thm 4]", ColorerSpec::RandEfficient),
        ("robust ∆^3 [CGS22]", ColorerSpec::Cgs22),
        ("palette-spars [ACK19]", ColorerSpec::PaletteSparsification { lists: None }),
        ("bucket Õ(∆) [BG18]", ColorerSpec::Bg18 { buckets: None }),
        ("degeneracy κ(1+ε) [BCG20]", ColorerSpec::Bcg20 { epsilon: 0.5 }),
        ("batch-greedy", ColorerSpec::BatchGreedy),
        ("trivial n-coloring", ColorerSpec::Trivial),
    ];
    specs
        .into_iter()
        .enumerate()
        .map(|(i, (label, spec))| {
            Scenario::new(source.clone(), spec)
                .labeled(label)
                .with_order(StreamOrder::Shuffled(1))
                .with_seed(11 + i as u64)
        })
        .collect()
}

fn main() {
    let n = 2000usize;
    println!("# T1: algorithm summary (n = {n}, random ∆-bounded graphs)");
    let runner = Runner::default();
    let mut table =
        Table::new(&["algorithm", "∆", "colors", "∆+1", "∆^2.5", "∆^3", "passes", "space"]);

    for delta in [16usize, 64] {
        let d1 = delta as u64 + 1;
        let d25 = (delta as f64).powf(2.5).round() as u64;
        let d3 = (delta as f64).powi(3) as u64;

        // One materialized graph shared (via Arc) by the whole grid of
        // edge-stream algorithms, which then runs in parallel.
        let g = generators::random_with_exact_max_degree(n, delta, 7);
        let source = SourceSpec::stored(g.clone());
        let outcomes: Vec<RunOutcome> = runner.run_all(&scenario_grid(&source));
        for o in &outcomes {
            assert!(o.proper, "{} produced an improper coloring", o.label);
            table.row(&[
                &o.label,
                &delta,
                &o.colors,
                &d1,
                &d25,
                &d3,
                &o.passes.map_or("—".to_string(), |p| p.to_string()),
                &o.space_bits.map_or("—".to_string(), fmt_bits),
            ]);
        }

        // Theorem 2 (list coloring): interleaved edge/list stream — the
        // one input shape the edge-scenario grid cannot express.
        let lists = generators::random_deg_plus_one_lists(&g, 2 * delta as u64, 3);
        let lstream = sc_stream::StoredStream::from_graph_with_lists(&g, &lists);
        let lr = list_coloring(&lstream, n, delta, 2 * delta as u64, &ListConfig::default());
        assert!(lr.coloring.is_proper_total(&g) && lr.coloring.respects_lists(&lists));
        table.row(&[
            &"list (deg+1) [Thm 2]",
            &delta,
            &lr.coloring.num_distinct_colors(),
            &d1,
            &d25,
            &d3,
            &lr.passes,
            &fmt_bits(lr.peak_space_bits),
        ]);
    }

    table.print("T1: colors / passes / space across all algorithms");
    println!("\nAll outputs validated as proper colorings of their input graphs.");

    emit_engine_bench();
}

/// Times batched vs per-edge ingestion on one `gnp_with_max_degree`
/// stream per algorithm and writes `BENCH_engine.json`.
///
/// Ingest-only: the graph is materialized and arranged once, the
/// colorer is rebuilt per repetition, and only the `StreamEngine::run`
/// call is inside the clock (no generation, no arranging). The median
/// of several repetitions goes into the file so the cross-PR perf
/// trajectory is stable.
fn emit_engine_bench() {
    use sc_stream::StreamEngine;

    let (n, delta, reps) = (3000usize, 32usize, 5);
    let g = generators::gnp_with_max_degree(n, delta, 0.4, 19);
    let edges = StreamOrder::AsGenerated.arrange(&g);
    let algos: Vec<(&str, ColorerSpec)> = vec![
        ("alg2", ColorerSpec::Robust { beta: None }),
        ("alg3", ColorerSpec::RandEfficient),
        ("bg18", ColorerSpec::Bg18 { buckets: None }),
        ("store_all", ColorerSpec::StoreAll),
    ];
    let median_ms = |config: &EngineConfig, spec: &ColorerSpec| -> (f64, sc_graph::Coloring) {
        let engine = StreamEngine::new(config.clone());
        let mut times: Vec<f64> = Vec::with_capacity(reps);
        let mut coloring = None;
        for _ in 0..reps {
            let mut colorer = spec.build_streaming(n, delta, 5, Some(&g)).expect("streaming spec");
            let report = engine.run(colorer.as_mut(), &edges);
            times.push(report.elapsed.as_secs_f64() * 1e3);
            coloring = Some(report.final_coloring);
        }
        times.sort_by(f64::total_cmp);
        (times[times.len() / 2], coloring.expect("reps >= 1"))
    };
    let mut entries = Vec::new();
    for (name, spec) in &algos {
        let (per_edge_ms, c1) = median_ms(&EngineConfig::per_edge(), spec);
        let (batched_ms, c2) = median_ms(&EngineConfig::batched(256), spec);
        assert_eq!(c1, c2, "{name}: batching changed the coloring");
        entries.push(format!(
            "  {{\"algo\":\"{}\",\"n\":{},\"delta\":{},\"m\":{},\"per_edge_ms\":{:.3},\"batched_ms\":{:.3},\"chunk\":256,\"speedup\":{:.3}}}",
            name,
            n,
            delta,
            g.m(),
            per_edge_ms,
            batched_ms,
            per_edge_ms / batched_ms.max(1e-9),
        ));
    }
    let json = format!("[\n{}\n]\n", entries.join(",\n"));
    let path = "BENCH_engine.json";
    match std::fs::File::create(path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("\nwrote {path} (batched vs per-edge ingestion timings)"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
    print!("{json}");
}
