//! Experiment T1 — the summary table: every algorithm and baseline on the
//! same streams, reporting colors, passes, space, and theory bounds.
//!
//! Regenerates the paper's "contributions" table (§1.1) empirically. All
//! edge-stream algorithms run as a declarative scenario grid through
//! `sc-engine`'s [`Runner`] (in parallel across workers); Theorem 2 runs
//! separately because its input is an interleaved edge/color-list stream,
//! not a pure edge stream.
//!
//! Also emits the perf trajectory, so successive PRs accumulate
//! machine-readable curves:
//!
//! * `BENCH_engine.json` — batched vs per-edge **ingestion**;
//! * `BENCH_query.json` — incremental vs from-scratch **queries**, both
//!   on checkpointed engine runs and end-to-end adversary games.
//!
//! `--smoke` shrinks every instance to a CI-sized fixed config, writing
//! `BENCH_*.smoke.json` instead (same JSON shape, different filenames,
//! so a local reproduction of CI never clobbers the committed
//! full-profile trajectory); the `bench-smoke` CI job runs it and gates
//! the `speedup` fields against `ci/bench_baselines.json` via
//! `bench_gate`.

use sc_adversary::{run_game_with_config, MonochromaticAttacker};
use sc_bench::{fmt_bits, Table};
use sc_engine::{ColorerSpec, RunOutcome, Runner, Scenario, SourceSpec};
use sc_graph::generators;
use sc_stream::{EngineConfig, QuerySchedule, StreamEngine, StreamOrder};
use std::io::Write as _;
use std::time::Instant;
use streamcolor::{list_coloring, DetConfig, ListConfig};

/// Instance sizes for the full run vs the CI smoke run.
struct Profile {
    /// Smoke runs write `BENCH_*.smoke.json` so reproducing the CI gate
    /// locally can never clobber the committed full-profile trajectory.
    smoke: bool,
    /// Summary-table vertices and max-degree sweep.
    summary_n: usize,
    summary_deltas: Vec<usize>,
    /// Ingestion bench (BENCH_engine.json): graph size and repetitions.
    ingest: (usize, usize, usize),
    /// Checkpointed-query bench (BENCH_query.json): graph size,
    /// repetitions, and scheduled query count.
    query: (usize, usize, usize, usize),
    /// Adversary-game bench (BENCH_query.json): vertices, ∆, rounds,
    /// repetitions.
    game: (usize, usize, usize, usize),
}

impl Profile {
    /// `BENCH_<stem>.json`, or `BENCH_<stem>.smoke.json` for smoke runs.
    fn bench_path(&self, stem: &str) -> String {
        format!("BENCH_{stem}{}.json", if self.smoke { ".smoke" } else { "" })
    }

    fn full() -> Self {
        Self {
            smoke: false,
            summary_n: 2000,
            summary_deltas: vec![16, 64],
            ingest: (3000, 32, 5),
            query: (3000, 32, 5, 64),
            game: (400, 16, 1600, 3),
        }
    }

    /// Small fixed config for CI: same shapes, minutes → seconds.
    fn smoke() -> Self {
        Self {
            smoke: true,
            summary_n: 600,
            summary_deltas: vec![16],
            ingest: (800, 16, 3),
            query: (800, 16, 3, 32),
            game: (200, 8, 600, 3),
        }
    }
}

fn scenario_grid(source: &SourceSpec) -> Vec<Scenario> {
    let specs: Vec<(&str, ColorerSpec)> = vec![
        ("det (∆+1) [Thm 1]", ColorerSpec::Det(DetConfig::default())),
        ("robust ∆^2.5 [Thm 3]", ColorerSpec::Robust { beta: None }),
        ("robust ∆^3 [Thm 4]", ColorerSpec::RandEfficient),
        ("robust ∆^3 [CGS22]", ColorerSpec::Cgs22),
        ("palette-spars [ACK19]", ColorerSpec::PaletteSparsification { lists: None }),
        ("bucket Õ(∆) [BG18]", ColorerSpec::Bg18 { buckets: None }),
        ("degeneracy κ(1+ε) [BCG20]", ColorerSpec::Bcg20 { epsilon: 0.5 }),
        ("batch-greedy", ColorerSpec::BatchGreedy),
        ("dynamic-sr (turnstile)", ColorerSpec::DynamicSr { sparsity: None }),
        ("trivial n-coloring", ColorerSpec::Trivial),
    ];
    specs
        .into_iter()
        .enumerate()
        .map(|(i, (label, spec))| {
            Scenario::new(source.clone(), spec)
                .labeled(label)
                .with_order(StreamOrder::Shuffled(1))
                .with_seed(11 + i as u64)
        })
        .collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let profile = if smoke { Profile::smoke() } else { Profile::full() };
    let n = profile.summary_n;
    println!(
        "# T1: algorithm summary (n = {n}, random ∆-bounded graphs{})",
        if smoke { ", smoke profile" } else { "" }
    );
    let runner = Runner::default();
    let mut table =
        Table::new(&["algorithm", "∆", "colors", "∆+1", "∆^2.5", "∆^3", "passes", "space"]);

    for &delta in &profile.summary_deltas {
        let d1 = delta as u64 + 1;
        let d25 = (delta as f64).powf(2.5).round() as u64;
        let d3 = (delta as f64).powi(3) as u64;

        // One materialized graph shared (via Arc) by the whole grid of
        // edge-stream algorithms, which then runs in parallel.
        let g = generators::random_with_exact_max_degree(n, delta, 7);
        let source = SourceSpec::stored(g.clone());
        let outcomes: Vec<RunOutcome> = runner.run_all(&scenario_grid(&source));
        for o in &outcomes {
            assert!(o.proper, "{} produced an improper coloring", o.label);
            table.row(&[
                &o.label,
                &delta,
                &o.colors,
                &d1,
                &d25,
                &d3,
                &o.passes.map_or("—".to_string(), |p| p.to_string()),
                &o.space_bits.map_or("—".to_string(), fmt_bits),
            ]);
        }

        // Theorem 2 (list coloring): interleaved edge/list stream — the
        // one input shape the edge-scenario grid cannot express.
        let lists = generators::random_deg_plus_one_lists(&g, 2 * delta as u64, 3);
        let lstream = sc_stream::StoredStream::from_graph_with_lists(&g, &lists);
        let lr = list_coloring(&lstream, n, delta, 2 * delta as u64, &ListConfig::default());
        assert!(lr.coloring.is_proper_total(&g) && lr.coloring.respects_lists(&lists));
        table.row(&[
            &"list (deg+1) [Thm 2]",
            &delta,
            &lr.coloring.num_distinct_colors(),
            &d1,
            &d25,
            &d3,
            &lr.passes,
            &fmt_bits(lr.peak_space_bits),
        ]);
    }

    table.print("T1: colors / passes / space across all algorithms");
    println!("\nAll outputs validated as proper colorings of their input graphs.");

    emit_engine_bench(&profile);
    emit_query_bench(&profile);
}

/// Times batched vs per-edge ingestion on one `gnp_with_max_degree`
/// stream per algorithm and writes `BENCH_engine.json`.
///
/// Ingest-only: the graph is materialized and arranged once, the
/// colorer is rebuilt per repetition, and only the `StreamEngine::run`
/// call is inside the clock (no generation, no arranging). The median
/// of several repetitions goes into the file so the cross-PR perf
/// trajectory is stable.
fn emit_engine_bench(profile: &Profile) {
    let (n, delta, reps) = profile.ingest;
    let g = generators::gnp_with_max_degree(n, delta, 0.4, 19);
    let edges = StreamOrder::AsGenerated.arrange(&g);
    let algos: Vec<(&str, ColorerSpec)> = vec![
        ("alg2", ColorerSpec::Robust { beta: None }),
        ("alg3", ColorerSpec::RandEfficient),
        ("bg18", ColorerSpec::Bg18 { buckets: None }),
        ("store_all", ColorerSpec::StoreAll),
    ];
    let median_ms = |config: &EngineConfig, spec: &ColorerSpec| -> (f64, sc_graph::Coloring) {
        let engine = StreamEngine::new(config.clone());
        let mut times: Vec<f64> = Vec::with_capacity(reps);
        let mut coloring = None;
        for _ in 0..reps {
            let mut colorer = spec.build(n, delta, 5, Some(&g)).expect("streaming spec");
            let report = engine.run(colorer.as_mut(), &edges);
            times.push(report.elapsed.as_secs_f64() * 1e3);
            coloring = Some(report.final_coloring);
        }
        times.sort_by(f64::total_cmp);
        (times[times.len() / 2], coloring.expect("reps >= 1"))
    };
    let mut entries = hash_tier_entries(profile);
    for (name, spec) in &algos {
        let (per_edge_ms, c1) = median_ms(&EngineConfig::per_edge(), spec);
        let (batched_ms, c2) = median_ms(&EngineConfig::batched(256), spec);
        assert_eq!(c1, c2, "{name}: batching changed the coloring");
        entries.push(format!(
            "  {{\"algo\":\"{}\",\"n\":{},\"delta\":{},\"m\":{},\"per_edge_ms\":{:.3},\"batched_ms\":{:.3},\"chunk\":256,\"speedup\":{:.3}}}",
            name,
            n,
            delta,
            g.m(),
            per_edge_ms,
            batched_ms,
            per_edge_ms / batched_ms.max(1e-9),
        ));
    }

    // The dynamic section: turnstile (churn) ingest through the signed
    // route — same median protocol, but the stream carries deletions
    // and oscillations, so this times the sparse-recovery sketch's
    // update path rather than an insert-only append.
    let churn = SourceSpec::churn(n, delta, 19, n / 2);
    let tokens = churn.signed_tokens();
    let dyn_delta = churn.stream_delta();
    let deletions = tokens.iter().filter(|t| !t.is_insert()).count();
    let spec = ColorerSpec::DynamicSr { sparsity: None };
    let median_signed = |config: &EngineConfig| -> (f64, sc_graph::Coloring) {
        let engine = StreamEngine::new(config.clone());
        let mut times: Vec<f64> = Vec::with_capacity(reps);
        let mut coloring = None;
        for _ in 0..reps {
            let mut colorer = spec.build(n, dyn_delta, 5, None).expect("dynamic spec");
            let report = engine
                .run_signed(colorer.as_mut(), &tokens)
                .expect("churn sources emit well-formed turnstile streams");
            times.push(report.elapsed.as_secs_f64() * 1e3);
            coloring = Some(report.final_coloring);
        }
        times.sort_by(f64::total_cmp);
        (times[times.len() / 2], coloring.expect("reps >= 1"))
    };
    let (per_edge_ms, c1) = median_signed(&EngineConfig::per_edge());
    let (batched_ms, c2) = median_signed(&EngineConfig::batched(256));
    assert_eq!(c1, c2, "dynamic_sr: batching changed the coloring");
    entries.push(format!(
        "  {{\"algo\":\"dynamic_sr\",\"kind\":\"churn-ingest\",\"n\":{},\"delta\":{},\"tokens\":{},\"deletions\":{},\"per_edge_ms\":{:.3},\"batched_ms\":{:.3},\"chunk\":256,\"speedup\":{:.3}}}",
        n,
        dyn_delta,
        tokens.len(),
        deletions,
        per_edge_ms,
        batched_ms,
        per_edge_ms / batched_ms.max(1e-9),
    ));

    write_bench_file(
        &profile.bench_path("engine"),
        &entries,
        "batched vs per-edge ingestion timings (insert-only + turnstile churn)",
    );
}

/// Times the hashing substrate's batched tier against the scalar
/// reference on identical inputs — the micro-curve under the alg2/alg3
/// ingestion speedups above, emitted into the same `BENCH_engine.json`
/// so the gate can hold the tier advantage directly. Both paths are
/// asserted bit-identical before anything is timed.
fn hash_tier_entries(profile: &Profile) -> Vec<String> {
    use sc_hash::{OracleFn, PolynomialFamily, SplitMix64};
    let (points, reps) = if profile.smoke { (20_000usize, 5usize) } else { (200_000, 7) };
    let xs: Vec<u32> = (0..points as u32).map(|i| i.wrapping_mul(2_654_435_761)).collect();
    let mut out = vec![0u64; xs.len()];
    let median = |mut f: Box<dyn FnMut() -> u64>| -> f64 {
        let mut times: Vec<f64> = (0..reps)
            .map(|_| {
                let start = Instant::now();
                std::hint::black_box(f());
                start.elapsed().as_secs_f64() * 1e3
            })
            .collect();
        times.sort_by(f64::total_cmp);
        times[times.len() / 2]
    };

    let mut entries = Vec::new();

    // Degree-4 polynomial over an alg3-shaped field (range = ℓ²).
    let fam = PolynomialFamily::for_domain(points as u64, 4096, 4);
    let h = fam.sample(&mut SplitMix64::new(41));
    h.eval_batch(&xs, &mut out);
    for (&x, &o) in xs.iter().zip(&out) {
        assert_eq!(o, h.eval(x as u64), "poly4 tiers must be bit-identical");
    }
    let scalar_ms = {
        let (h, xs) = (h.clone(), xs.clone());
        median(Box::new(move || xs.iter().map(|&x| h.eval(x as u64)).fold(0, u64::wrapping_add)))
    };
    let batched_ms = {
        let (h, xs) = (h.clone(), xs.clone());
        let mut out = vec![0u64; xs.len()];
        median(Box::new(move || {
            h.eval_batch(&xs, &mut out);
            out[out.len() - 1]
        }))
    };
    entries.push(format!(
        "  {{\"algo\":\"hash-poly4\",\"points\":{},\"scalar_ms\":{:.3},\"batched_ms\":{:.3},\"speedup\":{:.3}}}",
        points,
        scalar_ms,
        batched_ms,
        scalar_ms / batched_ms.max(1e-9),
    ));

    // The alg2 sketch oracle (PRF + range reduction).
    let f = OracleFn::new(41, 3, 4096);
    f.eval_batch(&xs, &mut out);
    for (&x, &o) in xs.iter().zip(&out) {
        assert_eq!(o, f.eval(x as u64), "oracle tiers must be bit-identical");
    }
    let scalar_ms = {
        let (f, xs) = (f, xs.clone());
        median(Box::new(move || xs.iter().map(|&x| f.eval(x as u64)).fold(0, u64::wrapping_add)))
    };
    let batched_ms = {
        let (f, xs) = (f, xs.clone());
        let mut out = vec![0u64; xs.len()];
        median(Box::new(move || {
            f.eval_batch(&xs, &mut out);
            out[out.len() - 1]
        }))
    };
    entries.push(format!(
        "  {{\"algo\":\"hash-oracle\",\"points\":{},\"scalar_ms\":{:.3},\"batched_ms\":{:.3},\"speedup\":{:.3}}}",
        points,
        scalar_ms,
        batched_ms,
        scalar_ms / batched_ms.max(1e-9),
    ));

    entries
}

/// Times incremental vs from-scratch queries and writes
/// `BENCH_query.json`: one `kind = "checkpointed"` entry per colorer
/// (an engine run under a periodic [`QuerySchedule`]) plus
/// `kind = "adversary-game"` entries (full adaptive games, where a query
/// follows every insertion). The two modes are asserted observationally
/// identical before anything is timed.
fn emit_query_bench(profile: &Profile) {
    let (n, delta, reps, queries) = profile.query;
    let g = generators::gnp_with_max_degree(n, delta, 0.4, 23);
    let edges = StreamOrder::AsGenerated.arrange(&g);
    let every = (edges.len() / queries).max(1);
    let schedule = QuerySchedule::EveryEdges(every);
    let algos: Vec<(&str, ColorerSpec)> = vec![
        ("alg2", ColorerSpec::Robust { beta: None }),
        ("alg3", ColorerSpec::RandEfficient),
        ("bg18", ColorerSpec::Bg18 { buckets: None }),
        ("store_all", ColorerSpec::StoreAll),
        ("bcg20", ColorerSpec::Bcg20 { epsilon: 0.5 }),
    ];

    let mut entries = Vec::new();
    for (name, spec) in &algos {
        let run_once = |config: EngineConfig| {
            let mut colorer = spec.build(n, delta, 5, Some(&g)).expect("streaming spec");
            let report = StreamEngine::new(config).run(colorer.as_mut(), &edges);
            (report.elapsed.as_secs_f64() * 1e3, report)
        };
        let base = EngineConfig::batched(256).with_schedule(schedule.clone());
        // Equivalence first (the law the property tests prove; cheap to
        // re-assert where the numbers are produced).
        let (_, ri) = run_once(base.clone());
        let (_, rs) = run_once(base.clone().scratch_queries());
        assert_eq!(ri.final_coloring, rs.final_coloring, "{name}: query paths diverge");
        for (a, b) in ri.checkpoints.iter().zip(&rs.checkpoints) {
            assert_eq!(a.coloring, b.coloring, "{name}: checkpoint diverges at {}", a.prefix_len);
        }
        let median = |config: EngineConfig| -> f64 {
            let mut times: Vec<f64> = (0..reps).map(|_| run_once(config.clone()).0).collect();
            times.sort_by(f64::total_cmp);
            times[times.len() / 2]
        };
        let incremental_ms = median(base.clone());
        let scratch_ms = median(base.scratch_queries());
        entries.push(format!(
            "  {{\"algo\":\"{}\",\"kind\":\"checkpointed\",\"n\":{},\"delta\":{},\"m\":{},\"queries\":{},\"scratch_ms\":{:.3},\"incremental_ms\":{:.3},\"speedup\":{:.3}}}",
            name,
            n,
            delta,
            g.m(),
            ri.checkpoints.len() + 1,
            scratch_ms,
            incremental_ms,
            scratch_ms / incremental_ms.max(1e-9),
        ));
    }

    // The dynamic section: checkpointed queries over a turnstile
    // (churn) stream — every scheduled observation lands on a sketch
    // that has absorbed deletions, so this times `query_incremental`'s
    // cache against from-scratch decodes under real churn.
    {
        let churn = SourceSpec::churn(n, delta, 23, n / 2);
        let tokens = churn.signed_tokens();
        let dyn_delta = churn.stream_delta();
        let every = (tokens.len() / queries).max(1);
        let schedule = QuerySchedule::EveryEdges(every);
        let spec = ColorerSpec::DynamicSr { sparsity: None };
        let run_once = |config: EngineConfig| {
            let mut colorer = spec.build(n, dyn_delta, 5, None).expect("dynamic spec");
            let start = Instant::now();
            let report = StreamEngine::new(config)
                .run_signed(colorer.as_mut(), &tokens)
                .expect("churn sources emit well-formed turnstile streams");
            (start.elapsed().as_secs_f64() * 1e3, report)
        };
        let base = EngineConfig::batched(256).with_schedule(schedule);
        let (_, ri) = run_once(base.clone());
        let (_, rs) = run_once(base.clone().scratch_queries());
        assert_eq!(ri.final_coloring, rs.final_coloring, "dynamic_sr: query paths diverge");
        for (a, b) in ri.checkpoints.iter().zip(&rs.checkpoints) {
            assert_eq!(a.coloring, b.coloring, "dynamic_sr: checkpoint diverges at {}", a.prefix_len);
        }
        let median = |config: EngineConfig| -> f64 {
            let mut times: Vec<f64> = (0..reps).map(|_| run_once(config.clone()).0).collect();
            times.sort_by(f64::total_cmp);
            times[times.len() / 2]
        };
        let incremental_ms = median(base.clone());
        let scratch_ms = median(base.scratch_queries());
        entries.push(format!(
            "  {{\"algo\":\"dynamic_sr\",\"kind\":\"checkpointed-churn\",\"n\":{},\"delta\":{},\"tokens\":{},\"queries\":{},\"scratch_ms\":{:.3},\"incremental_ms\":{:.3},\"speedup\":{:.3}}}",
            n,
            dyn_delta,
            tokens.len(),
            ri.checkpoints.len() + 1,
            scratch_ms,
            incremental_ms,
            scratch_ms / incremental_ms.max(1e-9),
        ));
    }

    // End-to-end adversary games: the paper's query-per-round cadence.
    let (gn, gdelta, rounds, greps) = profile.game;
    let victims: Vec<(&str, ColorerSpec)> = vec![
        ("game-alg2", ColorerSpec::Robust { beta: None }),
        ("game-alg3", ColorerSpec::RandEfficient),
        ("game-store_all", ColorerSpec::StoreAll),
    ];
    for (name, spec) in &victims {
        let play = |config: EngineConfig| -> (f64, usize) {
            let mut times: Vec<f64> = Vec::with_capacity(greps);
            let mut played = 0;
            for _ in 0..greps {
                let mut attacker = MonochromaticAttacker::new(gn, gdelta, 9);
                let mut victim = spec.build(gn, gdelta, 13, None).expect("streaming victim");
                let start = Instant::now();
                let report = run_game_with_config(
                    victim.as_mut(),
                    &mut attacker,
                    gn,
                    rounds,
                    config.clone(),
                );
                times.push(start.elapsed().as_secs_f64() * 1e3);
                played = report.rounds;
            }
            times.sort_by(f64::total_cmp);
            (times[times.len() / 2], played)
        };
        let (incremental_ms, ri) = play(EngineConfig::per_edge());
        let (scratch_ms, rs) = play(EngineConfig::per_edge().scratch_queries());
        assert_eq!(ri, rs, "{name}: query path changed the game transcript length");
        entries.push(format!(
            "  {{\"algo\":\"{}\",\"kind\":\"adversary-game\",\"n\":{},\"delta\":{},\"rounds\":{},\"scratch_ms\":{:.3},\"incremental_ms\":{:.3},\"speedup\":{:.3}}}",
            name,
            gn,
            gdelta,
            ri,
            scratch_ms,
            incremental_ms,
            scratch_ms / incremental_ms.max(1e-9),
        ));
    }

    write_bench_file(
        &profile.bench_path("query"),
        &entries,
        "incremental vs from-scratch query timings (checkpointed runs + adversary games)",
    );
}

fn write_bench_file(path: &str, entries: &[String], what: &str) {
    let json = format!("[\n{}\n]\n", entries.join(",\n"));
    match std::fs::File::create(path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("\nwrote {path} ({what})"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
    print!("{json}");
}
