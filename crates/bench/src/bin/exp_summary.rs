//! Experiment T1 — the summary table: every algorithm and baseline on the
//! same streams, reporting colors, passes, space, and theory bounds.
//!
//! Regenerates the paper's "contributions" table (§1.1) empirically.

use sc_bench::{fmt_bits, Table};
use sc_graph::generators;
use sc_stream::{run_oblivious, StoredStream, StreamingColorer};
use streamcolor::{
    batch_greedy_coloring, deterministic_coloring, list_coloring, Bcg20Colorer, Bg18Colorer,
    Cgs22Colorer, DetConfig, ListConfig, PaletteSparsification, RandEfficientColorer,
    RobustColorer, TrivialColorer,
};

fn main() {
    let n = 2000usize;
    println!("# T1: algorithm summary (n = {n}, random ∆-bounded graphs)");
    let mut table = Table::new(&[
        "algorithm", "∆", "colors", "∆+1", "∆^2.5", "∆^3", "passes", "space",
    ]);

    for delta in [16usize, 64] {
        let g = generators::random_with_exact_max_degree(n, delta, 7);
        let edges = generators::shuffled_edges(&g, 1);
        let stream = StoredStream::from_edges(edges.clone());
        let d1 = delta as u64 + 1;
        let d25 = (delta as f64).powf(2.5).round() as u64;
        let d3 = (delta as f64).powi(3) as u64;

        // Theorem 1 (deterministic multi-pass).
        let det = deterministic_coloring(&stream, n, delta, &DetConfig::default());
        assert!(det.coloring.is_proper_total(&g));
        table.row(&[
            &"det (∆+1) [Thm 1]", &delta, &det.colors_used, &d1, &d25, &d3, &det.passes,
            &fmt_bits(det.peak_space_bits),
        ]);

        // Theorem 2 (list coloring with L_x = [deg+1] random lists).
        let lists = generators::random_deg_plus_one_lists(&g, 2 * delta as u64, 3);
        let lstream = StoredStream::from_graph_with_lists(&g, &lists);
        let lr = list_coloring(&lstream, n, delta, 2 * delta as u64, &ListConfig::default());
        assert!(lr.coloring.is_proper_total(&g) && lr.coloring.respects_lists(&lists));
        table.row(&[
            &"list (deg+1) [Thm 2]", &delta, &lr.coloring.num_distinct_colors(), &d1, &d25,
            &d3, &lr.passes, &fmt_bits(lr.peak_space_bits),
        ]);

        // Theorem 3 (robust ∆^{5/2}).
        let mut alg2 = RobustColorer::new(n, delta, 11);
        let c2 = run_oblivious(&mut alg2, edges.iter().copied());
        assert!(c2.is_proper_total(&g));
        table.row(&[
            &"robust ∆^2.5 [Thm 3]", &delta, &c2.num_distinct_colors(), &d1, &d25, &d3, &1,
            &fmt_bits(alg2.peak_space_bits()),
        ]);

        // Theorem 4 (randomness-efficient ∆³).
        let mut alg3 = RandEfficientColorer::new(n, delta, 12);
        let c3 = run_oblivious(&mut alg3, edges.iter().copied());
        assert!(c3.is_proper_total(&g));
        table.row(&[
            &"robust ∆^3 [Thm 4]", &delta, &c3.num_distinct_colors(), &d1, &d25, &d3, &1,
            &fmt_bits(alg3.peak_space_bits()),
        ]);

        // CGS22 baseline.
        let mut cgs = Cgs22Colorer::new(n, delta, 13);
        let cc = run_oblivious(&mut cgs, edges.iter().copied());
        assert!(cc.is_proper_total(&g));
        table.row(&[
            &"robust ∆^3 [CGS22]", &delta, &cc.num_distinct_colors(), &d1, &d25, &d3, &1,
            &fmt_bits(cgs.peak_space_bits()),
        ]);

        // Palette sparsification (non-robust randomized).
        let mut ps = PaletteSparsification::with_theory_lists(n, delta, 14);
        let cp = run_oblivious(&mut ps, edges.iter().copied());
        assert!(cp.is_proper_total(&g));
        table.row(&[
            &"palette-spars [ACK19]", &delta, &cp.num_distinct_colors(), &d1, &d25, &d3, &1,
            &fmt_bits(ps.peak_space_bits()),
        ]);

        // BG18-style Õ(∆) bucket coloring (non-robust randomized).
        let mut bg18 = Bg18Colorer::new(n, delta as u64, 15);
        let cb = run_oblivious(&mut bg18, edges.iter().copied());
        assert!(cb.is_proper_total(&g));
        table.row(&[
            &"bucket Õ(∆) [BG18]", &delta, &cb.num_distinct_colors(), &d1, &d25, &d3, &1,
            &fmt_bits(bg18.peak_space_bits()),
        ]);

        // BCG20-style κ(1+ε) degeneracy coloring (non-robust randomized).
        let mut bcg = Bcg20Colorer::for_graph(&g, 0.5, 16);
        let ck = run_oblivious(&mut bcg, edges.iter().copied());
        assert!(ck.is_proper_total(&g));
        table.row(&[
            &"degeneracy κ(1+ε) [BCG20]", &delta, &ck.num_distinct_colors(), &d1, &d25, &d3,
            &1, &fmt_bits(bcg.peak_space_bits()),
        ]);

        // Batch greedy (O(∆) passes).
        let bg = batch_greedy_coloring(&stream, n, delta);
        assert!(bg.coloring.is_proper_total(&g));
        table.row(&[
            &"batch-greedy", &delta, &bg.coloring.num_distinct_colors(), &d1, &d25, &d3,
            &bg.passes, &fmt_bits(bg.peak_space_bits),
        ]);

        // Trivial n-coloring.
        let mut tr = TrivialColorer::new(n);
        let ct = run_oblivious(&mut tr, edges.iter().copied());
        table.row(&[
            &"trivial n-coloring", &delta, &ct.num_distinct_colors(), &d1, &d25, &d3, &1,
            &fmt_bits(0),
        ]);
    }

    table.print("T1: colors / passes / space across all algorithms");
    println!("\nAll outputs validated as proper colorings of their input graphs.");
}
