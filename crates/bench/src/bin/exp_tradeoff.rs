//! Experiment F4 — the colors/space tradeoff of Corollary 4.7.
//!
//! Sweeps `β ∈ {0, ¼, ⅓, ½}` as a declarative scenario grid (executed in
//! parallel by `sc-engine`'s [`Runner`]) and reports measured colors and
//! measured space against the predicted `O(∆^{(5−3β)/2})` colors in
//! `O(n∆^β)` space, including the two headline points:
//! * `β = ⅓`: `O(∆²)` colors in `O(n∆^{1/3})` space (improves CGS22's
//!   `O(∆²)` @ `O(n√∆)`),
//! * `β = ½`: `O(∆^{7/4})` colors in `O(n√∆)` space.

use sc_bench::{fmt_bits, Table};
use sc_engine::{ColorerSpec, Runner, Scenario, SourceSpec};
use sc_graph::generators;
use sc_stream::StreamOrder;
use streamcolor::RobustParams;

fn main() {
    let n = 2000usize;
    println!("# F4: Corollary 4.7 tradeoff (n = {n})");
    let runner = Runner::default();
    let betas = [0.0, 0.25, 1.0 / 3.0, 0.5];
    for delta in [64usize, 256] {
        // Materialize once per ∆; the β sweep shares the Arc.
        let source = SourceSpec::stored(generators::random_with_exact_max_degree(n, delta, 5));
        let grid: Vec<_> = betas
            .iter()
            .map(|&beta| {
                Scenario::new(source.clone(), ColorerSpec::Robust { beta: Some(beta) })
                    .with_order(StreamOrder::Shuffled(8))
                    .with_seed(77)
            })
            .collect();
        let outcomes = runner.run_all(&grid);

        let mut table = Table::new(&[
            "β",
            "colors",
            "bound ∆^((5-3β)/2)",
            "buffer cap",
            "space",
            "space bound n·∆^β",
        ]);
        let mut prev_colors = usize::MAX;
        for (&beta, o) in betas.iter().zip(&outcomes) {
            assert!(o.proper, "β = {beta}");
            let params = RobustParams::with_beta(n, delta, beta);
            let colors = o.colors;
            table.row(&[
                &format!("{beta:.3}"),
                &colors,
                &(params.color_bound(beta).round() as u64),
                &params.buffer_capacity,
                &fmt_bits(o.space_bits.expect("streaming runs report space")),
                &((n as f64 * (delta as f64).powf(beta)).round() as u64 * 32),
            ]);
            // The tradeoff shape: more space (larger β) ⇒ fewer colors.
            assert!(
                colors <= prev_colors + prev_colors / 4,
                "β = {beta}: colors did not trend down ({colors} vs {prev_colors})"
            );
            prev_colors = colors.min(prev_colors);
        }
        table.print(&format!("F4: β sweep at ∆ = {delta}"));
    }
    println!(
        "\nShape check: colors decrease monotonically in β while the buffer (space) \
         grows as n·∆^β — the smooth tradeoff of Corollary 4.7. At β = 1/3 the measured \
         colors sit near the ∆² bound (CGS22 needed n·√∆ space for that); at β = 1/2 \
         they drop toward ∆^{{7/4}}."
    );
}
