//! # `streamcolor-bench` — experiment harness
//!
//! Shared plumbing for the experiment binaries (`src/bin/exp_*.rs`) that
//! regenerate every table/figure claim listed in DESIGN.md §5 and recorded
//! in EXPERIMENTS.md. The paper is theory-only, so each "figure" is a
//! theorem bound rendered as a measured curve; binaries print aligned
//! text tables to stdout.
//!
//! The flat-JSON reader/writer the `bench_gate` and `shard_worker` bins
//! use lives in [`sc_engine::flatjson`] (it moved there when the shard
//! wire format needed it lower in the stack); [`flatjson`] re-exports it
//! under the old path.
//!
//! **Ownership contract** (see ROADMAP.md, "which layer owns what"):
//! this crate owns *measurement and reporting* — the `exp_*` binaries,
//! the committed `BENCH_*.json` trajectory files, and the `bench_gate`
//! regression gate over `ci/bench_baselines.json`. It owns no
//! algorithmic or protocol semantics: every run goes through the same
//! `sc-engine` scenario vocabulary as everything else, so a bench can
//! never observe behavior the tests don't.

pub use sc_engine::flatjson;

use std::fmt::Display;

/// A fixed-width text table writer for experiment output.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Renders with per-column alignment.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cells[i], width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }

    /// Renders and prints to stdout with a caption.
    pub fn print(&self, caption: &str) {
        println!("\n## {caption}\n");
        print!("{}", self.render());
    }
}

/// Formats a bit count as a human-friendly string (`"12.3 Kb"`).
pub fn fmt_bits(bits: u64) -> String {
    if bits >= 1 << 23 {
        format!("{:.1} Mb", bits as f64 / (1 << 20) as f64)
    } else if bits >= 1 << 13 {
        format!("{:.1} Kb", bits as f64 / (1 << 10) as f64)
    } else {
        format!("{bits} b")
    }
}

/// Least-squares slope of `log(y)` against `log(x)` — the empirical
/// exponent used to check `colors ≈ ∆^c` shapes (experiments F3/F4).
pub fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    let n = pts.len() as f64;
    assert!(n >= 2.0, "need at least two positive points for a slope");
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// Geometric sweep of ∆ values `start, 2·start, …` up to `end` inclusive.
pub fn delta_sweep(start: usize, end: usize) -> Vec<usize> {
    let mut v = Vec::new();
    let mut d = start;
    while d <= end {
        v.push(d);
        d *= 2;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["x", "value"]);
        t.row(&[&1, &"short"]);
        t.row(&[&100, &"longer-cell"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("value"));
        assert!(lines[2].ends_with("short"));
        assert!(lines[3].ends_with("longer-cell"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_bad_row() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&[&1]);
    }

    #[test]
    fn bits_formatting() {
        assert_eq!(fmt_bits(100), "100 b");
        assert_eq!(fmt_bits(1 << 14), "16.0 Kb");
        assert_eq!(fmt_bits(1 << 24), "16.0 Mb");
    }

    #[test]
    fn slope_of_exact_power_law() {
        let pts: Vec<(f64, f64)> =
            [2.0f64, 4.0, 8.0, 16.0].iter().map(|&x| (x, x.powf(2.5))).collect();
        assert!((loglog_slope(&pts) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn slope_ignores_nonpositive_points() {
        let pts = vec![(0.0, 5.0), (2.0, 4.0), (4.0, 16.0), (8.0, 64.0)];
        assert!((loglog_slope(&pts) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sweep() {
        assert_eq!(delta_sweep(4, 32), vec![4, 8, 16, 32]);
        assert_eq!(delta_sweep(5, 9), vec![5]);
    }
}
