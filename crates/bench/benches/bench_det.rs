//! Benches for Algorithm 1 (Theorem 1): full runs and the dominant
//! per-stage tournament cost, across derandomization grid sizes — the
//! ablation DESIGN.md calls out for substitution S1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sc_graph::generators;
use sc_stream::StoredStream;
use streamcolor::{deterministic_coloring, DetConfig};

fn bench_full_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("det_coloring");
    group.sample_size(10);
    for delta in [8usize, 32] {
        let n = 512;
        let g = generators::random_with_exact_max_degree(n, delta, 1);
        let stream = StoredStream::from_edges(generators::shuffled_edges(&g, 1));
        group.bench_with_input(BenchmarkId::new("n512", delta), &delta, |b, &delta| {
            b.iter(|| deterministic_coloring(&stream, n, delta, &DetConfig::default()))
        });
    }
    group.finish();
}

fn bench_grid_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("det_grid_ablation");
    group.sample_size(10);
    let n = 512;
    let delta = 16;
    let g = generators::random_with_exact_max_degree(n, delta, 2);
    let stream = StoredStream::from_edges(generators::shuffled_edges(&g, 2));
    for l in [4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::new("grid_l", l), &l, |b, &l| {
            b.iter(|| deterministic_coloring(&stream, n, delta, &DetConfig::with_grid(l)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_full_runs, bench_grid_ablation);
criterion_main!(benches);
