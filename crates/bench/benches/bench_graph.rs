//! Microbenches for the graph substrate: degeneracy ordering, Turán
//! independent sets, and greedy coloring — the offline subroutines every
//! query path leans on.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sc_graph::{degeneracy_ordering, generators, greedy_complete, turan_independent_set, Coloring};

fn bench_degeneracy(c: &mut Criterion) {
    let g = generators::gnp_with_max_degree(2000, 32, 0.2, 1);
    let all: Vec<u32> = (0..2000).collect();
    c.bench_function("degeneracy_ordering_n2000", |b| {
        b.iter(|| degeneracy_ordering(black_box(&g), black_box(&all)))
    });
}

fn bench_turan(c: &mut Criterion) {
    // The end-of-epoch case: |F| ≈ |U| edges.
    let g = generators::gnp_with_max_degree(1000, 4, 0.01, 2);
    let all: Vec<u32> = (0..1000).collect();
    c.bench_function("turan_is_sparse_n1000", |b| {
        b.iter(|| turan_independent_set(black_box(&g), black_box(&all)))
    });
}

fn bench_greedy(c: &mut Criterion) {
    let g = generators::gnp_with_max_degree(2000, 32, 0.2, 3);
    c.bench_function("greedy_complete_n2000", |b| {
        b.iter(|| {
            let mut coloring = Coloring::empty(2000);
            greedy_complete(black_box(&g), &mut coloring);
            coloring
        })
    });
}

fn bench_generator(c: &mut Criterion) {
    c.bench_function("gnp_generator_n1000_d16", |b| {
        b.iter(|| generators::gnp_with_max_degree(black_box(1000), 16, 0.1, 7))
    });
}

criterion_group!(benches, bench_degeneracy, bench_turan, bench_greedy, bench_generator);
criterion_main!(benches);
