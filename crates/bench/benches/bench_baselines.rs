//! Benches for the non-robust baselines (BG18, BCG20, palette
//! sparsification) and the offline subroutines new to this release
//! (Brooks coloring, exact chromatic search, Turán vs Brooks).
//!
//! The interesting comparison: non-robust one-pass colorers process an
//! edge with one hash + one list intersection, so they should sit within
//! a small factor of each other and well above the robust colorers'
//! fan-out (benched in `bench_robust`).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sc_graph::{brooks_coloring, chromatic_number, generators};
use sc_stream::StreamingColorer;
use streamcolor::{Bcg20Colorer, Bg18Colorer, PaletteSparsification};

fn bench_baseline_throughput(c: &mut Criterion) {
    let n = 2000;
    let delta = 32;
    let g = generators::random_with_exact_max_degree(n, delta, 1);
    let edges = generators::shuffled_edges(&g, 1);
    let mut group = c.benchmark_group("baseline_process_stream");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("bg18", delta), |b| {
        b.iter(|| {
            let mut colorer = Bg18Colorer::new(n, delta as u64, 7);
            for &e in &edges {
                colorer.process(black_box(e));
            }
            colorer
        })
    });
    group.bench_function(BenchmarkId::new("bcg20", delta), |b| {
        b.iter(|| {
            let mut colorer = Bcg20Colorer::new(n, delta, 0.5, 8, 7);
            for &e in &edges {
                colorer.process(black_box(e));
            }
            colorer
        })
    });
    group.bench_function(BenchmarkId::new("palette-sparsification", delta), |b| {
        b.iter(|| {
            let mut colorer = PaletteSparsification::new(n, delta, 8, 7);
            for &e in &edges {
                colorer.process(black_box(e));
            }
            colorer
        })
    });
    group.finish();
}

fn bench_offline_subroutines(c: &mut Criterion) {
    let mut group = c.benchmark_group("offline_subroutines");
    group.sample_size(10);

    let sparse = generators::preferential_attachment(2000, 3, 60, 2);
    group.bench_function("brooks_pa_2000", |b| b.iter(|| brooks_coloring(black_box(&sparse))));

    let regular = generators::circulant(1001, 4);
    group
        .bench_function("brooks_regular_1001", |b| b.iter(|| brooks_coloring(black_box(&regular))));

    let small = generators::gnp_with_max_degree(40, 8, 0.3, 3);
    group.bench_function("chromatic_exact_n40", |b| b.iter(|| chromatic_number(black_box(&small))));
    group.finish();
}

criterion_group!(benches, bench_baseline_throughput, bench_offline_subroutines);
criterion_main!(benches);
