//! Benches for the robust colorers: edge-processing throughput and query
//! latency (the two costs an adaptive deployment pays), plus the CGS22
//! baseline for comparison.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sc_graph::generators;
use sc_stream::StreamingColorer;
use streamcolor::{Cgs22Colorer, RandEfficientColorer, RobustColorer};

fn bench_process_throughput(c: &mut Criterion) {
    let n = 2000;
    let delta = 32;
    let g = generators::random_with_exact_max_degree(n, delta, 1);
    let edges = generators::shuffled_edges(&g, 1);
    let mut group = c.benchmark_group("robust_process_stream");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("alg2", delta), |b| {
        b.iter(|| {
            let mut colorer = RobustColorer::new(n, delta, 7);
            for &e in &edges {
                colorer.process(black_box(e));
            }
            colorer
        })
    });
    group.bench_function(BenchmarkId::new("alg3", delta), |b| {
        b.iter(|| {
            let mut colorer = RandEfficientColorer::new(n, delta, 7);
            for &e in &edges {
                colorer.process(black_box(e));
            }
            colorer
        })
    });
    group.bench_function(BenchmarkId::new("cgs22", delta), |b| {
        b.iter(|| {
            let mut colorer = Cgs22Colorer::new(n, delta, 7);
            for &e in &edges {
                colorer.process(black_box(e));
            }
            colorer
        })
    });
    group.finish();
}

fn bench_query_latency(c: &mut Criterion) {
    let n = 2000;
    let delta = 32;
    let g = generators::random_with_exact_max_degree(n, delta, 2);
    let edges = generators::shuffled_edges(&g, 2);
    let mut group = c.benchmark_group("robust_query");
    group.sample_size(10);

    let mut alg2 = RobustColorer::new(n, delta, 9);
    for &e in &edges {
        alg2.process(e);
    }
    group.bench_function("alg2", |b| b.iter(|| alg2.query()));

    let mut alg3 = RandEfficientColorer::new(n, delta, 9);
    for &e in &edges {
        alg3.process(e);
    }
    group.bench_function("alg3", |b| b.iter(|| alg3.query()));

    let mut cgs = Cgs22Colorer::new(n, delta, 9);
    for &e in &edges {
        cgs.process(e);
    }
    group.bench_function("cgs22", |b| b.iter(|| cgs.query()));
    group.finish();
}

criterion_group!(benches, bench_process_throughput, bench_query_latency);
criterion_main!(benches);
