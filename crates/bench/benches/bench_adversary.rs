//! Benches for the adversarial game: rounds/second of the monochromatic
//! attack against each robust algorithm (every round = one insertion +
//! one full query + one validation).

use criterion::{criterion_group, criterion_main, Criterion};
use sc_adversary::{run_game, MonochromaticAttacker};
use streamcolor::{RandEfficientColorer, RobustColorer};

fn bench_attack_games(c: &mut Criterion) {
    let n = 300;
    let delta = 16;
    let mut group = c.benchmark_group("attack_game_100_rounds");
    group.sample_size(10);
    group.bench_function("alg2", |b| {
        b.iter(|| {
            let mut adv = MonochromaticAttacker::new(n, delta, 1);
            let mut colorer = RobustColorer::new(n, delta, 2);
            run_game(&mut colorer, &mut adv, n, 100)
        })
    });
    group.bench_function("alg3", |b| {
        b.iter(|| {
            let mut adv = MonochromaticAttacker::new(n, delta, 1);
            let mut colorer = RandEfficientColorer::new(n, delta, 2);
            run_game(&mut colorer, &mut adv, n, 100)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_attack_games);
criterion_main!(benches);
