//! Batched vs per-edge ingestion through the stream engine.
//!
//! The engine's whole point is that `process_batch` amortizes hashing and
//! candidate-census work per chunk; this bench quantifies the win on
//! `gnp_with_max_degree` streams for the colorers with real batched
//! implementations, sweeping chunk sizes (1 = the old per-edge path).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sc_graph::generators;
use sc_stream::{EngineConfig, StreamEngine};
use streamcolor::{Bg18Colorer, RandEfficientColorer, RobustColorer};

fn bench_ingestion_chunks(c: &mut Criterion) {
    let n = 2000;
    let delta = 32;
    let g = generators::gnp_with_max_degree(n, delta, 0.4, 1);
    let edges = generators::shuffled_edges(&g, 1);
    let mut group = c.benchmark_group("engine_ingest_alg2");
    group.sample_size(10);
    for chunk in [1usize, 16, 256, 4096] {
        group.bench_with_input(BenchmarkId::new("chunk", chunk), &chunk, |b, &chunk| {
            let engine = StreamEngine::new(EngineConfig::batched(chunk));
            b.iter(|| {
                let mut colorer = RobustColorer::new(n, delta, 7);
                engine.run(&mut colorer, black_box(&edges))
            })
        });
    }
    group.finish();
}

fn bench_batched_vs_per_edge(c: &mut Criterion) {
    let n = 2000;
    let delta = 32;
    let g = generators::gnp_with_max_degree(n, delta, 0.4, 2);
    let edges = generators::shuffled_edges(&g, 2);
    let per_edge = StreamEngine::new(EngineConfig::per_edge());
    let batched = StreamEngine::new(EngineConfig::batched(256));

    let mut group = c.benchmark_group("engine_ingest");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("alg2", "per-edge"), |b| {
        b.iter(|| per_edge.run(&mut RobustColorer::new(n, delta, 7), black_box(&edges)))
    });
    group.bench_function(BenchmarkId::new("alg2", "batched-256"), |b| {
        b.iter(|| batched.run(&mut RobustColorer::new(n, delta, 7), black_box(&edges)))
    });
    group.bench_function(BenchmarkId::new("alg3", "per-edge"), |b| {
        b.iter(|| per_edge.run(&mut RandEfficientColorer::new(n, delta, 7), black_box(&edges)))
    });
    group.bench_function(BenchmarkId::new("alg3", "batched-256"), |b| {
        b.iter(|| batched.run(&mut RandEfficientColorer::new(n, delta, 7), black_box(&edges)))
    });
    group.bench_function(BenchmarkId::new("bg18", "per-edge"), |b| {
        b.iter(|| per_edge.run(&mut Bg18Colorer::new(n, delta as u64, 7), black_box(&edges)))
    });
    group.bench_function(BenchmarkId::new("bg18", "batched-256"), |b| {
        b.iter(|| batched.run(&mut Bg18Colorer::new(n, delta as u64, 7), black_box(&edges)))
    });
    group.finish();
}

criterion_group!(benches, bench_batched_vs_per_edge, bench_ingestion_chunks);
criterion_main!(benches);
