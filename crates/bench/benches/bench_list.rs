//! Benches for Theorem 2's list-coloring: full runs plus the ablation over
//! the partition-candidate count (Lemma 3.10 selection quality vs cost,
//! the second knob of DESIGN.md substitution S1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sc_graph::generators;
use sc_stream::StoredStream;
use streamcolor::listcolor::PartitionSearch;
use streamcolor::{list_coloring, ListConfig};

fn bench_list_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("list_coloring");
    group.sample_size(10);
    let n = 256;
    for delta in [8usize, 16] {
        let g = generators::random_with_exact_max_degree(n, delta, 3);
        let lists = generators::random_deg_plus_one_lists(&g, 4 * delta as u64, 5);
        let stream = StoredStream::from_graph_with_lists(&g, &lists);
        group.bench_with_input(BenchmarkId::new("n256", delta), &delta, |b, &delta| {
            b.iter(|| list_coloring(&stream, n, delta, 4 * delta as u64, &ListConfig::default()))
        });
    }
    group.finish();
}

fn bench_partition_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("list_partition_candidates");
    group.sample_size(10);
    let n = 256;
    let delta = 12;
    let g = generators::random_with_exact_max_degree(n, delta, 4);
    let lists = generators::random_deg_plus_one_lists(&g, 64, 6);
    let stream = StoredStream::from_graph_with_lists(&g, &lists);
    for cands in [4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::new("sampled", cands), &cands, |b, &cands| {
            let cfg = ListConfig {
                partition_search: PartitionSearch::Sampled(cands),
                ..ListConfig::default()
            };
            b.iter(|| list_coloring(&stream, n, delta, 64, &cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_list_runs, bench_partition_ablation);
criterion_main!(benches);
