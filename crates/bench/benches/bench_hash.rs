//! Microbenches for the hashing substrate: family evaluation throughput
//! and prime search (the per-edge inner loops of every algorithm).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sc_hash::{
    AffineFamily, MersenneAffine, OracleFn, PolynomialFamily, SplitMix64, TwoUniversalFamily,
};

fn bench_affine(c: &mut Criterion) {
    let fam = AffineFamily::new(sc_hash::next_prime(1 << 20));
    let h = fam.member(12345, 67890);
    c.bench_function("affine_eval", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for z in 0..1000u64 {
                acc ^= h.eval(black_box(z));
            }
            acc
        })
    });
}

/// The Mersenne field avoids hardware division; compare with
/// `affine_eval` (generic mod-p) — the tournament's inner loop.
fn bench_mersenne_affine(c: &mut Criterion) {
    let h = MersenneAffine::new(12345, 67890);
    c.bench_function("mersenne_affine_eval", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for z in 0..1000u64 {
                acc ^= h.eval(black_box(z));
            }
            acc
        })
    });
}

fn bench_two_universal(c: &mut Criterion) {
    let fam = TwoUniversalFamily::for_domain(1 << 20, 64);
    let h = fam.member(999);
    c.bench_function("two_universal_eval", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for z in 0..1000u64 {
                acc ^= h.eval(black_box(z));
            }
            acc
        })
    });
}

fn bench_polynomial(c: &mut Criterion) {
    let fam = PolynomialFamily::for_domain(1 << 20, 4096, 4);
    let h = fam.sample(&mut SplitMix64::new(1));
    c.bench_function("poly4_eval", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for z in 0..1000u64 {
                acc ^= h.eval(black_box(z));
            }
            acc
        })
    });
}

fn bench_oracle(c: &mut Criterion) {
    let f = OracleFn::new(7, 3, 4096);
    c.bench_function("oracle_eval", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for z in 0..1000u64 {
                acc ^= f.eval(black_box(z));
            }
            acc
        })
    });
}

fn bench_prime_search(c: &mut Criterion) {
    c.bench_function("prime_in_range_8nlogn", |b| {
        b.iter(|| sc_hash::prime_in_range(black_box(8 * 4096 * 12), 16 * 4096 * 12))
    });
}

criterion_group!(
    benches,
    bench_affine,
    bench_mersenne_affine,
    bench_two_universal,
    bench_polynomial,
    bench_oracle,
    bench_prime_search
);
criterion_main!(benches);
