//! Microbenches for the hashing substrate: family evaluation throughput
//! and prime search (the per-edge inner loops of every algorithm).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sc_hash::{
    AffineFamily, MersenneAffine, OracleFn, PolynomialFamily, SplitMix64, TwoUniversalFamily,
    VertexSlotTable,
};

fn bench_affine(c: &mut Criterion) {
    let fam = AffineFamily::new(sc_hash::next_prime(1 << 20));
    let h = fam.member(12345, 67890);
    c.bench_function("affine_eval", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for z in 0..1000u64 {
                acc ^= h.eval(black_box(z));
            }
            acc
        })
    });
}

/// The Mersenne field avoids hardware division; compare with
/// `affine_eval` (generic mod-p) — the tournament's inner loop.
fn bench_mersenne_affine(c: &mut Criterion) {
    let h = MersenneAffine::new(12345, 67890);
    c.bench_function("mersenne_affine_eval", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for z in 0..1000u64 {
                acc ^= h.eval(black_box(z));
            }
            acc
        })
    });
}

fn bench_two_universal(c: &mut Criterion) {
    let fam = TwoUniversalFamily::for_domain(1 << 20, 64);
    let h = fam.member(999);
    c.bench_function("two_universal_eval", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for z in 0..1000u64 {
                acc ^= h.eval(black_box(z));
            }
            acc
        })
    });
}

fn bench_polynomial(c: &mut Criterion) {
    let fam = PolynomialFamily::for_domain(1 << 20, 4096, 4);
    let h = fam.sample(&mut SplitMix64::new(1));
    c.bench_function("poly4_eval", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for z in 0..1000u64 {
                acc ^= h.eval(black_box(z));
            }
            acc
        })
    });
}

/// Batched tier of the same degree-4 polynomial over the same 1000
/// points as `poly4_eval` — the direct scalar-vs-batched comparison for
/// alg3's ingest hashing.
fn bench_polynomial_batch(c: &mut Criterion) {
    let fam = PolynomialFamily::for_domain(1 << 20, 4096, 4);
    let h = fam.sample(&mut SplitMix64::new(1));
    let xs: Vec<u32> = (0..1000u32).collect();
    let mut out = vec![0u64; xs.len()];
    c.bench_function("poly4_eval_batch", |b| {
        b.iter(|| {
            h.eval_batch(black_box(&xs), &mut out);
            out[999]
        })
    });
}

/// Table tier: build cost (paid once per alg3 colorer) and the per-edge
/// row scan that replaces 2·slots polynomial evaluations at ingest.
fn bench_slot_table(c: &mut Criterion) {
    let n = 4096usize;
    let slots = 64usize;
    let fam = PolynomialFamily::for_domain(n as u64, 4096, 4);
    let mut rng = SplitMix64::new(2);
    let hashes: Vec<_> = (0..slots).map(|_| fam.sample(&mut rng)).collect();
    c.bench_function("slot_table_build_64x4096", |b| {
        b.iter(|| VertexSlotTable::build(black_box(&hashes), n).expect("fits").bytes())
    });
    let table = VertexSlotTable::build(&hashes, n).expect("fits");
    c.bench_function("slot_table_scan_1000_edges", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for v in 1..1001u32 {
                table.equal_slots(black_box(0), black_box(v), 0, |s| acc ^= s);
            }
            acc
        })
    });
    // The scalar work the scan replaces: 2 evals × 64 slots × 1000 edges.
    c.bench_function("scalar_scan_1000_edges", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for v in 1..1001u32 {
                for (s, h) in hashes.iter().enumerate() {
                    if h.eval(0) == h.eval(black_box(v) as u64) {
                        acc ^= s;
                    }
                }
            }
            acc
        })
    });
}

fn bench_oracle(c: &mut Criterion) {
    let f = OracleFn::new(7, 3, 4096);
    c.bench_function("oracle_eval", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for z in 0..1000u64 {
                acc ^= f.eval(black_box(z));
            }
            acc
        })
    });
}

/// Batched tier of the same oracle over the same 1000 points as
/// `oracle_eval` — the scalar-vs-batched comparison for alg2's sketches.
fn bench_oracle_batch(c: &mut Criterion) {
    let f = OracleFn::new(7, 3, 4096);
    let xs: Vec<u32> = (0..1000u32).collect();
    let mut out = vec![0u64; xs.len()];
    c.bench_function("oracle_eval_batch", |b| {
        b.iter(|| {
            f.eval_batch(black_box(&xs), &mut out);
            out[999]
        })
    });
}

fn bench_prime_search(c: &mut Criterion) {
    c.bench_function("prime_in_range_8nlogn", |b| {
        b.iter(|| sc_hash::prime_in_range(black_box(8 * 4096 * 12), 16 * 4096 * 12))
    });
}

criterion_group!(
    benches,
    bench_affine,
    bench_mersenne_affine,
    bench_two_universal,
    bench_polynomial,
    bench_polynomial_batch,
    bench_slot_table,
    bench_oracle,
    bench_oracle_batch,
    bench_prime_search
);
criterion_main!(benches);
